// T6 — Theorem 6.2: m = 2*ceil(log(n)/2) uniform values in [1, 2] contain
// an (m/2)-element subset with sum in [y - log(n)/n, y] with probability
// Omega(1), for any y in (3/4)m ± 1.
//
// Shape to reproduce: the empirical success rate stays bounded away from 0
// as m grows (the window shrinks like log(n)/n = m/2^m-ish, yet the number
// of (m/2)-subsets grows like 2^m/sqrt(m) — the second-moment argument).
// Also: meet-in-the-middle decision time ~2^{m/2}.
#include <chrono>

#include "bench_common.h"
#include "subsetsum/subsetsum.h"
#include "util/rng.h"

namespace {

using namespace memreal;
using namespace memreal::bench;

void run_tables() {
  const int trials = fast_mode() ? 100 : 1'000;

  print_header("T6 — Theorem 6.2 (subset sums of random sets)",
               "Claim: random m-sets contain an (m/2)-subset hitting a "
               "width-(log n)/n window with probability Omega(1).");

  BenchJson artifact("subset_sum");
  artifact.set_seeds({1337, 7331});
  Json rec = series_record("success_rate", "T6", "half-cardinality");
  rec.set("workload",
          "random m-sets in [1, 2], window (log n)/n, exactly m/2 picks");
  Json rows = Json::array();

  Table t({"m", "n = 2^m", "window/scale", "success rate",
           "decide_us/check"});
  const double scale = 1e12;
  for (std::size_t m : {8u, 10u, 12u, 14u, 16u, 18u, 20u}) {
    const double n = std::pow(2.0, static_cast<double>(m));
    const double window_frac = std::log2(n) / n;
    const auto window =
        std::max<Tick>(1, static_cast<Tick>(window_frac * scale));
    Rng rng(m * 1337);
    int hits = 0;
    double decide_us = 0;
    for (int tr = 0; tr < trials; ++tr) {
      std::vector<Tick> v(m);
      for (auto& x : v) {
        x = static_cast<Tick>((1.0 + rng.next_double()) * scale);
      }
      const double y_d = 0.75 * static_cast<double>(m) * scale +
                         (rng.next_double() * 2.0 - 1.0) * scale;
      const auto y = static_cast<Tick>(y_d);
      const auto t0 = std::chrono::steady_clock::now();
      const bool ok =
          subset_in_range_mitm(v, y - window, y, m / 2).has_value();
      decide_us += std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
      hits += ok;
    }
    t.add_row({std::to_string(m), Table::num(n, 7),
               Table::num(window_frac, 4),
               Table::num(static_cast<double>(hits) / trials, 3),
               Table::num(decide_us / trials, 4)});
    Json row = Json::object();
    row.set("m", static_cast<std::uint64_t>(m))
        .set("n", n)
        .set("window_frac", window_frac)
        .set("rate", static_cast<double>(hits) / trials)
        .set("decide_us", decide_us / trials);
    rows.push(std::move(row));
  }
  rec.set("rows", std::move(rows));
  artifact.add(std::move(rec));
  t.print(std::cout);
  std::cout << "(success rate stays Omega(1) while the window shrinks "
               "geometrically; decide time doubles per +2 in m — the "
               "2^{m/2} meet-in-the-middle cost)\n";

  // Cardinality ablation: unrestricted subsets succeed at least as often.
  std::cout << "\nAblation: any-cardinality subsets vs exactly m/2:\n";
  Json abl = series_record("info", "T6", "cardinality-ablation");
  abl.set("workload", "any-cardinality subsets vs exactly m/2");
  Json abl_rows = Json::array();
  Table a({"m", "rate (m/2)", "rate (any)"});
  for (std::size_t m : {8u, 12u, 16u}) {
    Rng rng(m * 7331);
    int hits_half = 0, hits_any = 0;
    const double n = std::pow(2.0, static_cast<double>(m));
    const auto window = std::max<Tick>(
        1, static_cast<Tick>(std::log2(n) / n * scale));
    for (int tr = 0; tr < trials; ++tr) {
      std::vector<Tick> v(m);
      for (auto& x : v) {
        x = static_cast<Tick>((1.0 + rng.next_double()) * scale);
      }
      const auto y = static_cast<Tick>(0.75 * static_cast<double>(m) *
                                       scale);
      hits_half +=
          subset_in_range_mitm(v, y - window, y, m / 2).has_value();
      hits_any += subset_in_range_mitm(v, y - window, y).has_value();
    }
    a.add_row({std::to_string(m),
               Table::num(static_cast<double>(hits_half) / trials, 3),
               Table::num(static_cast<double>(hits_any) / trials, 3)});
    Json row = Json::object();
    row.set("m", static_cast<std::uint64_t>(m))
        .set("rate_half", static_cast<double>(hits_half) / trials)
        .set("rate_any", static_cast<double>(hits_any) / trials);
    abl_rows.push(std::move(row));
  }
  a.print(std::cout);
  abl.set("rows", std::move(abl_rows));
  artifact.add(std::move(abl));
  artifact.write();
}

}  // namespace

int main(int argc, char** argv) {
  run_tables();
  benchmark::RegisterBenchmark("mitm_m20", [](benchmark::State& state) {
    Rng rng(99);
    std::vector<Tick> v(20);
    for (auto& x : v) x = rng.next_in(1'000'000, 2'000'000);
    for (auto _ : state) {
      auto r = subset_in_range_mitm(v, 14'000'000, 14'001'000, 10);
      benchmark::DoNotOptimize(r);
    }
  });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
