// Shared scaffolding for the experiment binaries.
//
// Each bench binary prints its paper-shaped experiment table(s) first (the
// reproduction artifact recorded in EXPERIMENTS.md), then runs a small
// google-benchmark section for wall-clock throughput of the same
// allocators.  `MEMREAL_FAST=1` in the environment shrinks the sweeps
// (useful for smoke runs).
#pragma once

#include <benchmark/benchmark.h>

#include <cmath>

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>

#include "core/engine.h"
#include "harness/experiment.h"
#include "harness/sweep.h"
#include "util/json.h"
#include "util/table.h"

namespace memreal::bench {

inline bool fast_mode() {
  const char* v = std::getenv("MEMREAL_FAST");
  return v != nullptr && v[0] == '1';
}

/// Machine-readable companion to the printed tables: a bench collects one
/// JSON record per measured configuration and writes BENCH_<name>.json
/// (CI uploads these as artifacts — the perf trajectory across PRs).
/// MEMREAL_BENCH_DIR overrides the output directory (default: cwd).
class BenchJson {
 public:
  explicit BenchJson(std::string bench) : bench_(std::move(bench)) {}

  void add(Json record) { records_.push(std::move(record)); }

  /// Writes the artifact and prints its path; returns the path.
  std::string write() const {
    const char* dir = std::getenv("MEMREAL_BENCH_DIR");
    std::string path = (dir != nullptr && dir[0] != '\0')
                           ? std::string(dir) + "/"
                           : std::string();
    path += "BENCH_" + bench_ + ".json";
    Json doc = Json::object();
    doc.set("bench", bench_).set("schema", std::uint64_t{1});
    doc.set("fast_mode", fast_mode());
    doc.set("records", records_);
    std::ofstream out(path);
    out << doc.dump(2) << "\n";
    out.flush();
    if (!out) {
      std::cerr << "BenchJson: FAILED to write " << path << "\n";
      return "";
    }
    std::cout << "wrote " << path << " (" << records_.size()
              << " records)\n";
    return path;
  }

 private:
  std::string bench_;
  Json records_ = Json::array();
};

inline void print_header(const std::string& id, const std::string& claim) {
  std::cout << "\n==================================================\n"
            << id << "\n" << claim << "\n"
            << "==================================================\n";
}

inline void print_fit(const std::string& label, const PowerLawFit& fit) {
  std::cout << label << ": cost ~ (1/eps)^" << Table::num(fit.exponent, 3)
            << "  (r^2 = " << Table::num(fit.r2, 3) << ")\n";
}

inline void print_fit(const std::string& label, const LinearFit& fit) {
  std::cout << label << ": cost ~ " << Table::num(fit.intercept, 3) << " + "
            << Table::num(fit.slope, 3) << " * log2(1/eps)  (r^2 = "
            << Table::num(fit.r2, 3) << ")\n";
}

/// Registers a google-benchmark measuring updates/second of `allocator` on
/// the sequence produced by `make_seq(eps, seed)`.
inline void register_throughput(const std::string& name,
                                const std::string& allocator, double eps,
                                SequenceFactory make_seq,
                                double delta = 0.0) {
  benchmark::RegisterBenchmark(
      name.c_str(),
      [allocator, eps, make_seq, delta](benchmark::State& state) {
        const Sequence seq = make_seq(eps, 1);
        for (auto _ : state) {
          ValidationPolicy policy;
          policy.incremental = false;  // pure allocator throughput
          Memory mem(seq.capacity, seq.eps_ticks, policy);
          AllocatorParams params;
          params.eps = eps;
          params.delta = delta;
          params.seed = 1;
          auto alloc = make_allocator(allocator, mem, params);
          Engine engine(mem, *alloc);
          const RunStats stats = engine.run(seq.updates);
          benchmark::DoNotOptimize(stats.moved_mass);
          state.counters["mean_cost"] = stats.mean_cost();
          state.counters["updates"] =
              static_cast<double>(stats.updates);
        }
        state.SetItemsProcessed(
            static_cast<std::int64_t>(state.iterations() *
                                      seq.updates.size()));
      });
}

}  // namespace memreal::bench
