// Shared scaffolding for the experiment binaries.
//
// Each bench binary prints its paper-shaped experiment table(s) first (the
// reproduction artifact recorded in EXPERIMENTS.md), then runs a small
// google-benchmark section for wall-clock throughput of the same
// allocators.  `MEMREAL_FAST=1` in the environment shrinks the sweeps
// (useful for smoke runs).
#pragma once

#include <benchmark/benchmark.h>

#include <cmath>

#include <cstdlib>
#include <fstream>
#include <initializer_list>
#include <iostream>
#include <string>
#include <utility>

#include "core/engine.h"
#include "harness/experiment.h"
#include "harness/sweep.h"
#include "mem/memory.h"
#include "util/json.h"
#include "util/table.h"

namespace memreal::bench {

inline bool fast_mode() {
  const char* v = std::getenv("MEMREAL_FAST");
  return v != nullptr && v[0] == '1';
}

/// Build provenance stamped into every BENCH_*.json.  The
/// MEMREAL_GIT_DESCRIBE env var wins (CI sets it from the checkout);
/// otherwise the configure-time value baked in by CMake, else "unknown".
inline std::string git_describe() {
  const char* v = std::getenv("MEMREAL_GIT_DESCRIBE");
  if (v != nullptr && v[0] != '\0') return v;
#ifdef MEMREAL_GIT_DESCRIBE
  return MEMREAL_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

/// Machine-readable companion to the printed tables: a bench collects one
/// JSON record per measured series and writes BENCH_<name>.json — the
/// input `memreal_report` aggregates into docs/REPORT.md and the
/// EXPERIMENTS.md marker blocks (CI uploads the files as artifacts — the
/// perf trajectory across PRs).
///
/// Schema 2: {bench, schema: 2, git_describe, fast_mode, seeds,
/// records: [...]}; every record is {kind, claim, series, ..., rows: [...]}
/// with `series` unique within the bench.  `memreal_report` rejects any
/// other schema version.  MEMREAL_BENCH_DIR overrides the output
/// directory (default: cwd).
class BenchJson {
 public:
  static constexpr std::uint64_t kSchema = 2;

  explicit BenchJson(std::string bench) : bench_(std::move(bench)) {}

  /// Declares the workload/allocator seeds the sweeps derive from, for
  /// the report's provenance table.
  void set_seeds(std::initializer_list<std::uint64_t> seeds) {
    seeds_ = Json::array();
    for (const std::uint64_t s : seeds) seeds_.push(s);
  }

  void add(Json record) { records_.push(std::move(record)); }

  /// Writes the artifact and prints its path; returns the path.
  std::string write() const {
    const char* dir = std::getenv("MEMREAL_BENCH_DIR");
    std::string path = (dir != nullptr && dir[0] != '\0')
                           ? std::string(dir) + "/"
                           : std::string();
    path += "BENCH_" + bench_ + ".json";
    Json doc = Json::object();
    doc.set("bench", bench_).set("schema", kSchema);
    doc.set("git_describe", git_describe());
    doc.set("fast_mode", fast_mode());
    doc.set("seeds", seeds_);
    doc.set("records", records_);
    std::ofstream out(path);
    out << doc.dump(2) << "\n";
    out.flush();
    if (!out) {
      std::cerr << "BenchJson: FAILED to write " << path << "\n";
      return "";
    }
    std::cout << "wrote " << path << " (" << records_.size()
              << " records)\n";
    return path;
  }

 private:
  std::string bench_;
  Json seeds_ = Json::array();
  Json records_ = Json::array();
};

inline void print_header(const std::string& id, const std::string& claim) {
  std::cout << "\n==================================================\n"
            << id << "\n" << claim << "\n"
            << "==================================================\n";
}

inline void print_fit(const std::string& label, const PowerLawFit& fit) {
  std::cout << label << ": cost ~ (1/eps)^" << Table::num(fit.exponent, 3)
            << "  (r^2 = " << Table::num(fit.r2, 3) << ")\n";
}

inline void print_fit(const std::string& label, const LinearFit& fit) {
  std::cout << label << ": cost ~ " << Table::num(fit.intercept, 3) << " + "
            << Table::num(fit.slope, 3) << " * log2(1/eps)  (r^2 = "
            << Table::num(fit.r2, 3) << ")\n";
}

/// One measured series of a paper claim: names the claim (the report's
/// key), the series (unique within the bench), and which fit model the
/// rows are meant to reproduce ("power", "log", "both" or "none").
struct SeriesSpec {
  std::string claim;
  std::string series;
  std::string allocator;
  std::string workload;
  std::string fit = "power";
};

/// The single path every eps-sweep series goes through: prints the rows
/// table plus the requested fit(s) and appends the schema-2 `eps_sweep`
/// record to the artifact, so the human tables and the machine-readable
/// fit inputs cannot drift apart.
inline void emit_eps_series(BenchJson& artifact, const SeriesSpec& spec,
                            const std::vector<EpsRow>& rows) {
  std::cout << "\nWorkload: " << spec.workload << "\n";
  rows_table(spec.allocator, rows).print(std::cout);
  if (spec.fit == "power" || spec.fit == "both") {
    print_fit(spec.allocator, fit_cost_exponent(rows));
  }
  if (spec.fit == "log" || spec.fit == "both") {
    print_fit(spec.allocator + " (log model)", fit_cost_log(rows));
  }
  Json rec = Json::object();
  rec.set("kind", "eps_sweep")
      .set("claim", spec.claim)
      .set("series", spec.series)
      .set("allocator", spec.allocator)
      .set("workload", spec.workload)
      .set("fit", spec.fit)
      .set("rows", eps_rows_json(rows));
  artifact.add(std::move(rec));
}

/// Registry allocator names as JSON row keys ("folklore-compact" ->
/// "folklore_compact") — the report's verdict rules look rows up by
/// these keys.
inline std::string json_key(std::string name) {
  for (char& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name;
}

/// Starts a non-eps-sweep record (`kind` in {bound_check, success_rate,
/// lb_floor, ablation, flat_check, validation_speedup, shard_scaling,
/// info}); the caller fills `rows` with flat objects sharing one key set.
inline Json series_record(const std::string& kind, const std::string& claim,
                          const std::string& series) {
  Json rec = Json::object();
  rec.set("kind", kind).set("claim", claim).set("series", series);
  return rec;
}

/// Registers a google-benchmark measuring updates/second of `allocator` on
/// the sequence produced by `make_seq(eps, seed)`.
inline void register_throughput(const std::string& name,
                                const std::string& allocator, double eps,
                                SequenceFactory make_seq,
                                double delta = 0.0) {
  benchmark::RegisterBenchmark(
      name.c_str(),
      [allocator, eps, make_seq, delta](benchmark::State& state) {
        const Sequence seq = make_seq(eps, 1);
        for (auto _ : state) {
          ValidationPolicy policy;
          policy.incremental = false;  // pure allocator throughput
          Memory mem(seq.capacity, seq.eps_ticks, policy);
          AllocatorParams params;
          params.eps = eps;
          params.delta = delta;
          params.seed = 1;
          auto alloc = make_allocator(allocator, mem, params);
          Engine engine(mem, *alloc);
          const RunStats stats = engine.run(seq.updates);
          benchmark::DoNotOptimize(stats.moved_mass);
          state.counters["mean_cost"] = stats.mean_cost();
          state.counters["updates"] =
              static_cast<double>(stats.updates);
        }
        state.SetItemsProcessed(
            static_cast<std::int64_t>(state.iterations() *
                                      seq.updates.size()));
      });
}

}  // namespace memreal::bench
