// Adversarial-search experiment: run the memreal_adv campaign (scenario-
// zoo seeding, mutation hill climb, cost-preserving shrink) against the
// registry and record, per allocator, the worst realized cost ratio the
// search found against the lower-bound floor.
//
// One series under claim T-ADV:
//   adv-ratio — per-allocator best zoo baseline, found ratio after the
//     guided search, search gain, and the shrunk reproducer's retained
//     ratio, next to the allocator's CostBudget ceiling.  The claim holds
//     when every found ratio stays under its ceiling (the paper bounds
//     survive guided adversarial pressure) and the folklore allocators —
//     the only ones with a Theta(eps^-1) lower bound — remain clearly
//     easier to hurt than SIMPLE.
//
// Fast mode keeps the cheap allocators only (GEO/TINYSLAB/FLEXHASH/
// COMBINED evaluations move orders of magnitude more mass per run, so a
// full campaign takes minutes, not seconds).  Emitted to BENCH_adv.json;
// memreal_report renders the T-ADV claim from the records.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "perfadv/campaign.h"
#include "perfadv/search.h"
#include "util/json.h"
#include "util/table.h"

namespace memreal::bench {
namespace {

constexpr std::uint64_t kSeed = 1;
constexpr std::size_t kIterations = 300;
constexpr std::size_t kUpdates = 300;

AdvCampaignConfig campaign_config() {
  AdvCampaignConfig cfg;
  cfg.base.seed = kSeed;
  cfg.base.iterations = kIterations;
  cfg.base.updates = kUpdates;
  cfg.base.engine = "release";
  if (fast_mode()) {
    cfg.allocators = {"folklore-compact", "folklore-windowed", "simple",
                      "rsum", "discrete"};
  }
  return cfg;
}

void print_experiment() {
  BenchJson artifact("adv");
  artifact.set_seeds({kSeed});

  print_header("T-ADV — adversarial search vs the cost budgets",
               "A guided mutation search seeded from the scenario zoo "
               "maximizes realized cost over the lower-bound floor; every "
               "allocator's found ratio must stay under its CostBudget "
               "ceiling, and folklore must stay the easiest target.");

  const AdvCampaign campaign = run_adv_campaign(campaign_config());

  Json rec = series_record("bound_check", "T-ADV", "adv-ratio");
  rec.set("engine", "release")
      .set("iterations", static_cast<std::uint64_t>(kIterations))
      .set("updates", static_cast<std::uint64_t>(kUpdates));
  Json rows = Json::array();
  Table table({"allocator", "eps", "baseline (scenario)", "found", "gain",
               "shrunk", "updates", "budget"});
  bool all_under = true;
  for (const AdvResult& r : campaign.results) {
    all_under = all_under && r.found_ratio < r.budget_ceiling;
    table.add_row({r.allocator, Table::num(r.eps, 5),
                   Table::num(r.baseline_ratio, 3) + " (" +
                       r.baseline_scenario + ")",
                   Table::num(r.found_ratio, 3),
                   Table::num(r.gain(), 2) + "x",
                   Table::num(r.shrunk_ratio, 3),
                   std::to_string(r.original_updates) + " -> " +
                       std::to_string(r.shrunk_updates),
                   Table::num(r.budget_ceiling, 1)});
    Json row = Json::object();
    row.set("allocator", json_key(r.allocator))
        .set("eps", r.eps)
        .set("baseline_scenario", r.baseline_scenario)
        .set("baseline_ratio", r.baseline_ratio)
        .set("found_ratio", r.found_ratio)
        .set("gain", r.gain())
        .set("shrunk_ratio", r.shrunk_ratio)
        .set("shrink_retained",
             r.found_ratio > 0 ? r.shrunk_ratio / r.found_ratio : 0.0)
        .set("original_updates",
             static_cast<std::uint64_t>(r.original_updates))
        .set("shrunk_updates", static_cast<std::uint64_t>(r.shrunk_updates))
        .set("evaluations", static_cast<std::uint64_t>(r.evaluations))
        .set("budget_ceiling", r.budget_ceiling);
    rows.push(std::move(row));
  }
  rec.set("rows", std::move(rows));
  artifact.add(std::move(rec));
  table.print(std::cout);
  std::cout << "every found ratio under its budget ceiling: "
            << (all_under ? "yes" : "NO") << "\n";

  artifact.write();
}

/// Wall clock of one small guided search (the CI smoke configuration).
void bm_adv_search(benchmark::State& state) {
  for (auto _ : state) {
    AdvSearchConfig cfg;
    cfg.allocator = "folklore-windowed";
    cfg.seed = kSeed;
    cfg.iterations = 60;
    cfg.updates = 200;
    cfg.shrink = false;
    const AdvResult r = run_adv_search(cfg);
    benchmark::DoNotOptimize(r.found_ratio);
    state.counters["evals"] = static_cast<double>(r.evaluations);
  }
}

}  // namespace
}  // namespace memreal::bench

int main(int argc, char** argv) {
  memreal::bench::print_experiment();

  benchmark::RegisterBenchmark("BM_AdvSearch/folklore-windowed",
                               memreal::bench::bm_adv_search);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
