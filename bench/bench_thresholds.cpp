// T7 — Lemmas 4.3 and 4.4: the randomized-threshold crossing bounds that
// power GEO's waste recovery, its level rebuilds, FLEXHASH's buffer
// rebuilds and RSUM's rebuild threshold.
//
// Lemma 4.3: partial sums of U(W/2, W) draws hit a window [a, b] with
//            probability at most 4(b-a)/W.
// Lemma 4.4: partial sums of U[ceil(N/4), ceil(N/3)] integer draws hit a
//            fixed value y with probability at most 100/N.
#include "bench_common.h"
#include "util/rng.h"
#include "util/thresholds.h"

namespace {

using namespace memreal;
using namespace memreal::bench;

void run_tables() {
  const int trials = fast_mode() ? 2'000 : 40'000;

  print_header("T7 — Lemmas 4.3 / 4.4 (randomized thresholds)",
               "Claim: threshold randomization caps the probability that "
               "any fixed update pays for maintenance.");

  BenchJson artifact("thresholds");
  artifact.set_seeds({1000, 5000});

  std::cout << "\nLemma 4.3 (continuous):\n";
  Json rec43 = series_record("bound_check", "T7", "lemma-4.3");
  rec43.set("workload", "partial sums of U(W/2, W) vs window [a, b]");
  Json rows43 = Json::array();
  Table t43({"W", "window b-a", "empirical P", "bound 4(b-a)/W"});
  const Tick W = 1'000'000;
  for (Tick width : {1'000u, 10'000u, 50'000u, 100'000u, 250'000u}) {
    const Tick a = 20 * W;
    const Tick b = a + width;
    int hits = 0;
    for (int tr = 0; tr < trials; ++tr) {
      Rng rng(1000 + tr);
      Tick sum = 0;
      while (sum < b) {
        sum += rng.next_tick_in(W / 2, W);
        if (sum >= a && sum <= b) {
          ++hits;
          break;
        }
      }
    }
    t43.add_row({std::to_string(W), std::to_string(width),
                 Table::num(static_cast<double>(hits) / trials, 4),
                 Table::num(4.0 * static_cast<double>(width) /
                                static_cast<double>(W), 4)});
    Json row = Json::object();
    row.set("w", static_cast<std::uint64_t>(W))
        .set("width", static_cast<std::uint64_t>(width))
        .set("empirical", static_cast<double>(hits) / trials)
        .set("bound",
             4.0 * static_cast<double>(width) / static_cast<double>(W));
    rows43.push(std::move(row));
  }
  rec43.set("rows", std::move(rows43));
  artifact.add(std::move(rec43));
  t43.print(std::cout);

  std::cout << "\nLemma 4.4 (discrete):\n";
  Json rec44 = series_record("bound_check", "T7", "lemma-4.4");
  rec44.set("workload",
            "partial sums of U[ceil(N/4), ceil(N/3)] vs fixed y");
  Json rows44 = Json::array();
  Table t44({"N", "empirical P", "bound 100/N", "ratio"});
  for (std::uint64_t n : {16u, 64u, 256u, 1024u}) {
    const std::uint64_t y = 40 * n;
    int hits = 0;
    for (int tr = 0; tr < trials; ++tr) {
      Rng rng(5000 + tr);
      std::uint64_t sum = 0;
      while (sum < y) {
        sum += rng.next_in(ceil_div(n, 4), ceil_div(n, 3));
        if (sum == y) {
          ++hits;
          break;
        }
      }
    }
    const double p = static_cast<double>(hits) / trials;
    t44.add_row({std::to_string(n), Table::num(p, 5),
                 Table::num(100.0 / static_cast<double>(n), 5),
                 Table::num(p * static_cast<double>(n) / 100.0, 4)});
    Json row = Json::object();
    row.set("n", n)
        .set("empirical", p)
        .set("bound", 100.0 / static_cast<double>(n))
        .set("ratio", p * static_cast<double>(n) / 100.0);
    rows44.push(std::move(row));
  }
  rec44.set("rows", std::move(rows44));
  artifact.add(std::move(rec44));
  t44.print(std::cout);
  std::cout << "(empirical P sits well under both bounds; the discrete "
               "hit rate actually scales like ~3.6/N, far inside 100/N)\n";
  artifact.write();
}

}  // namespace

int main(int argc, char** argv) {
  run_tables();
  benchmark::RegisterBenchmark("threshold_draws", [](benchmark::State& s) {
    Rng rng(3);
    ContinuousThreshold t(1'000'000, rng);
    Tick x = 0;
    for (auto _ : s) {
      x += t.add(12'345) ? 1 : 0;
    }
    benchmark::DoNotOptimize(x);
  });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
