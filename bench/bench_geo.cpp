// T2 — Theorem 4.1: GEO achieves expected O~(eps^-1/2) for sizes in
// [eps^5, 1].
//
// Shape to reproduce: GEO's fitted cost exponent is clearly sub-linear in
// 1/eps (around 0.5 + log-slack), versus ~1 for the folklore worst case.
// Note on constants: GEO's per-update cost carries a C = Theta(eps^-1/2
// log eps^-1) class-count factor with a sizable constant, so absolute
// crossover vs first-fit on random workloads lies below the eps reachable
// with 64-bit tick resolution (eps^5 >= 1 tick); the exponent is the
// reproducible claim.  See EXPERIMENTS.md.
#include "bench_common.h"
#include "workload/churn.h"

namespace {

using namespace memreal;
using namespace memreal::bench;

// eps^5 resolution requires a large capacity.
constexpr Tick kCap = Tick{1} << 60;

void run_tables() {
  const bool fast = fast_mode();
  const std::size_t updates = fast ? 800 : 8'000;
  std::vector<double> eps_values{1.0 / 16, 1.0 / 64, 1.0 / 256};
  if (!fast) eps_values.push_back(1.0 / 1024);

  print_header("T2 — Theorem 4.1 (GEO)",
               "Claim: sizes in [eps^5, 1] => worst-case expected update "
               "cost O~(eps^-1/2).");

  SequenceFactory seq = [updates](double eps, std::uint64_t seed) {
    GeoRegimeConfig c;
    c.capacity = kCap;
    c.eps = eps;
    c.band_ratio = 64;
    c.huge_fraction = 0.02;
    c.churn_updates = updates;
    c.seed = seed;
    return make_geo_regime(c);
  };

  BenchJson artifact("geo");
  artifact.set_seeds({1, 2, 3});

  ComparisonConfig c;
  c.allocators = {"folklore-compact", "geo"};
  c.make_sequence = seq;
  c.eps_values = eps_values;
  c.seeds = 3;
  c.audit_every = 2048;
  const auto result = run_comparison(c);

  std::cout << "\nMean cost per update (geo regime: log-uniform band below "
               "the huge threshold, 2% huge):\n";
  result.cost_table().print(std::cout);
  result.exponent_table().print(std::cout);
  for (std::size_t i = 0; i < result.allocators.size(); ++i) {
    emit_eps_series(artifact,
                    {"T2", "geo-regime/" + result.allocators[i],
                     result.allocators[i],
                     "geo regime (log-uniform band, 2% huge)", "power"},
                    result.rows[i]);
  }

  // Normalized view: cost / (eps^-1/2 * log2^2(1/eps)) should stay roughly
  // flat if the O~(eps^-1/2) claim holds.
  std::cout << "\nGEO cost normalized by eps^-1/2 * log2^2(1/eps):\n";
  for (const auto& r : result.rows[1]) {
    const double l = std::log2(1.0 / r.eps);
    const double norm = std::sqrt(1.0 / r.eps) * l * l;
    std::cout << "  1/eps = " << Table::num(1 / r.eps, 5) << ": "
              << Table::num(r.mean_cost / norm, 4) << "\n";
  }
  artifact.write();
}

}  // namespace

int main(int argc, char** argv) {
  run_tables();
  memreal::bench::register_throughput(
      "geo_throughput/eps=1/64", "geo", 1.0 / 64,
      [](double eps, std::uint64_t seed) {
        memreal::GeoRegimeConfig c;
        c.capacity = kCap;
        c.eps = eps;
        c.band_ratio = 64;
        c.churn_updates = 2'000;
        c.seed = seed;
        return memreal::make_geo_regime(c);
      });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
