// T4 — Theorem 5.1: the Omega(log eps^-1) lower bound.
//
// The two-size sequence S (A = sqrt(eps) + 2eps, B = sqrt(eps)) forces any
// resizable allocator to pay amortized Omega(log eps^-1).  The certifier
// replays each runnable allocator on S, tracks the potential Phi from the
// actual layouts, and reports measured amortized cost against the
// potential-derived floor.  Shape to reproduce: floor grows linearly in
// log2(1/eps) and every allocator's measured cost dominates it.
#include "bench_common.h"
#include "lb/lower_bound.h"
#include "lb/potential.h"

namespace {

using namespace memreal;
using namespace memreal::bench;

constexpr Tick kCap = Tick{1} << 50;

void run_tables() {
  print_header("T4 — Theorem 5.1 (lower bound)",
               "Claim: an update sequence with two item sizes forces "
               "amortized cost >= Omega(log eps^-1) for ANY resizable "
               "allocator.");

  std::vector<double> eps_values{1.0 / 256, 1.0 / 1024, 1.0 / 4096,
                                 1.0 / 16384};
  if (!fast_mode()) eps_values.push_back(1.0 / 65536);

  // folklore-windowed is shown for contrast: it is NOT resizable (it
  // fragments the whole of [0, 1]), so Theorem 5.1 does not apply to it —
  // and indeed its cost stays O(1).  The floor binds the resizable ones.
  const std::vector<std::string> resizable{"folklore-compact", "rsum"};

  BenchJson artifact("lower_bound");
  artifact.set_seeds({1});
  Json rec = series_record("lb_floor", "T4", "two-size-floor");
  rec.set("workload",
          "two-size sequence S (A = sqrt(eps) + 2eps, B = sqrt(eps))");
  Json rows = Json::array();

  Table t({"1/eps", "n", "floor", "folklore-compact", "rsum",
           "windowed (non-resizable)", "min resizable ratio"});
  std::vector<double> log_inv, floors;
  for (double eps : eps_values) {
    const auto spec = make_lower_bound_spec(kCap, eps);
    std::vector<std::string> cells{Table::num(1.0 / eps, 6),
                                   std::to_string(spec.n),
                                   Table::num(spec.amortized_floor(), 4)};
    Json row = Json::object();
    row.set("inv_eps", 1.0 / eps)
        .set("n", static_cast<std::uint64_t>(spec.n))
        .set("floor", spec.amortized_floor());
    double min_ratio = 1e300;
    for (const auto& name : resizable) {
      const CertifiedRun run = run_certified_lower_bound(spec, name);
      cells.push_back(Table::num(run.measured_amortized_cost, 4));
      min_ratio = std::min(min_ratio, run.floor_ratio());
      row.set(json_key(name), run.measured_amortized_cost);
    }
    const CertifiedRun win =
        run_certified_lower_bound(spec, "folklore-windowed");
    cells.push_back(Table::num(win.measured_amortized_cost, 4));
    cells.push_back(Table::num(min_ratio, 4));
    row.set("windowed_nonresizable", win.measured_amortized_cost);
    row.set("min_resizable_ratio", min_ratio);
    rows.push(std::move(row));
    t.add_row(std::move(cells));
    log_inv.push_back(std::log2(1.0 / eps));
    floors.push_back(spec.amortized_floor());
  }
  rec.set("rows", std::move(rows));
  artifact.add(std::move(rec));
  std::cout << "\nMeasured amortized cost on S vs the certified floor:\n";
  t.print(std::cout);
  const LinearFit fit = fit_linear(log_inv, floors);
  print_fit("certified floor", fit);
  std::cout << "(floor slope > 0 with r^2 ~ 1 reproduces the "
               "Omega(log eps^-1) growth; every *resizable* allocator's "
               "ratio >= 1.  The non-resizable windowed baseline escaping "
               "the floor at O(1) is itself instructive: resizability is "
               "exactly what the theorem charges for.)\n";

  // Potential mechanics: conversion gains vs allocator drops.
  std::cout << "\nPotential mechanics on 1/eps = 4096 "
               "(folklore-compact):\n";
  const auto spec = make_lower_bound_spec(kCap, 1.0 / 4096);
  const CertifiedRun run =
      run_certified_lower_bound(spec, "folklore-compact");
  Table m({"metric", "value"});
  m.add_row({"n", std::to_string(run.n)});
  m.add_row({"phi final", Table::num(run.phi_final, 5)});
  m.add_row({"phi conversion gain", Table::num(run.phi_conversion_gain, 5)});
  m.add_row({"phi allocator drop", Table::num(run.phi_allocator_drop, 5)});
  m.add_row({"items moved", std::to_string(run.items_moved)});
  m.add_row({"per-update drop <= moved items",
             run.potential_inequality_ok ? "yes" : "no"});
  m.print(std::cout);

  Json mech = series_record("info", "T4", "potential-mechanics");
  mech.set("workload", "potential mechanics at 1/eps = 4096 "
                       "(folklore-compact)");
  Json mech_rows = Json::array();
  Json mech_row = Json::object();
  mech_row.set("n", static_cast<std::uint64_t>(run.n))
      .set("phi_final", run.phi_final)
      .set("phi_conversion_gain", run.phi_conversion_gain)
      .set("phi_allocator_drop", run.phi_allocator_drop)
      .set("items_moved", static_cast<std::uint64_t>(run.items_moved))
      .set("inequality_ok", run.potential_inequality_ok);
  mech_rows.push(std::move(mech_row));
  mech.set("rows", std::move(mech_rows));
  artifact.add(std::move(mech));
  artifact.write();
}

}  // namespace

int main(int argc, char** argv) {
  run_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
