// T5 — Theorem 6.1: RSUM handles delta-random-item sequences at expected
// O(log eps^-1) cost, with strategy computation in O(eps^-1/2) time.
//
// Shape to reproduce: mean cost grows linearly in log2(1/eps) (not
// polynomially in 1/eps), and the measured decision time per update scales
// like 2^{m/2} ~ eps^-1/2.
#include "bench_common.h"
#include "workload/random_item.h"

namespace {

using namespace memreal;
using namespace memreal::bench;

constexpr Tick kCap = Tick{1} << 50;

void run_tables() {
  const bool fast = fast_mode();
  const std::size_t pairs = fast ? 1'000 : 10'000;

  print_header("T5 — Theorem 6.1 (RSUM)",
               "Claim: delta-random-item sequences => expected update cost "
               "O(log eps^-1); strategy computable in O(eps^-1/2) time.");

  std::vector<double> eps_values{1.0 / 256,  1.0 / 1024,
                                 1.0 / 4096, 1.0 / 16384};
  if (!fast) eps_values.push_back(1.0 / 65536);

  // delta = eps^{3/4} (poly(eps), small-delta regime at these eps).
  SequenceFactory seq = [pairs](double eps, std::uint64_t seed) {
    RandomItemConfig c;
    c.capacity = kCap;
    c.eps = eps;
    c.delta = 0.0;  // default eps^{3/4}
    c.churn_pairs = pairs;
    c.seed = seed;
    return make_random_item_sequence(c);
  };

  BenchJson artifact("rsum");
  artifact.set_seeds({1, 2, 3});

  ExperimentConfig c;
  c.allocator = "rsum";
  c.make_sequence = seq;
  c.eps_values = eps_values;
  c.seeds = 3;
  c.audit_every = 1024;
  const auto rows = run_experiment(c);
  emit_eps_series(artifact,
                  {"T5", "random-item/rsum", "rsum",
                   "delta-random sequences (delta = eps^3/4)", "both"},
                  rows);
  std::cout << "(log model should fit with r^2 ~ 1 and the power exponent "
               "should be near 0: cost is logarithmic, not polynomial)\n";

  // Folklore comparison on the same sequences.
  ExperimentConfig fc = c;
  fc.allocator = "folklore-compact";
  emit_eps_series(artifact,
                  {"T5", "random-item/folklore-compact", "folklore-compact",
                   "the same delta-random sequences", "none"},
                  run_experiment(fc));

  // Decision-time scaling: meet-in-the-middle is Theta(2^{m/2} * m) with
  // m = 2*ceil(log2(1/eps)/2), i.e. ~eps^-1/2 per compatibility check.
  std::cout << "\nDecision time per update (us) vs eps^-1/2 (Theorem 6.1 "
               "implementation lemma):\n";
  Table t({"1/eps", "m", "decide_us/update", "decide_us normalized by "
           "eps^-1/2"});
  for (const auto& r : rows) {
    const auto m =
        2 * static_cast<std::size_t>(std::ceil(std::log2(1 / r.eps) / 2));
    const double norm = std::sqrt(1.0 / r.eps);
    t.add_row({Table::num(1 / r.eps, 6), std::to_string(m),
               Table::num(r.decision_us_per_update, 4),
               Table::num(r.decision_us_per_update / norm * 1000, 4)});
  }
  t.print(std::cout);

  // Big-delta regime (Lemma 6.8): delta > eps/4.
  std::cout << "\nLemma 6.8 regime (delta > eps/4):\n";
  SequenceFactory big_seq = [fast](double eps, std::uint64_t seed) {
    RandomItemConfig rc;
    rc.capacity = kCap;
    rc.eps = eps;
    rc.delta = eps;  // delta = eps > eps/4
    rc.churn_pairs = fast ? 500 : 4'000;
    rc.seed = seed;
    return make_random_item_sequence(rc);
  };
  ExperimentConfig bc;
  bc.allocator = "rsum";
  bc.make_sequence = big_seq;
  bc.eps_values = {1.0 / 64, 1.0 / 256, 1.0 / 1024};
  bc.seeds = 3;
  bc.audit_every = 1024;
  // delta must be forwarded to the allocator too.
  // (run per eps since delta varies)
  Json big = series_record("info", "T5", "big-delta");
  big.set("workload", "Lemma 6.8 regime (delta = eps > eps/4)");
  Json big_rows = Json::array();
  Table bt({"1/eps", "delta", "mean_cost", "max_cost"});
  for (double eps : bc.eps_values) {
    ExperimentConfig one = bc;
    one.eps_values = {eps};
    one.delta = eps;
    const auto r = run_experiment(one);
    bt.add_row({Table::num(1 / eps, 5), Table::num(eps, 4),
                Table::num(r[0].mean_cost, 4), Table::num(r[0].max_cost, 4)});
    Json row = Json::object();
    row.set("inv_eps", 1.0 / eps)
        .set("delta", eps)
        .set("mean_cost", r[0].mean_cost)
        .set("max_cost", r[0].max_cost);
    big_rows.push(std::move(row));
  }
  bt.print(std::cout);
  big.set("rows", std::move(big_rows));
  artifact.add(std::move(big));
  artifact.write();
}

}  // namespace

int main(int argc, char** argv) {
  run_tables();
  memreal::bench::register_throughput(
      "rsum_throughput/eps=1/1024", "rsum", 1.0 / 1024,
      [](double eps, std::uint64_t seed) {
        memreal::RandomItemConfig c;
        c.capacity = kCap;
        c.eps = eps;
        c.churn_pairs = 3'000;
        c.seed = seed;
        return memreal::make_random_item_sequence(c);
      });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
