// T8 — ablations on the paper's design choices.
//
// (a) GEO's randomized rebuild thresholds: with deterministic thresholds a
//     single-class attack synchronizes rebuilds on predictable updates —
//     the cost distribution's tail (p99/max) degrades versus randomized.
// (b) SIMPLE's rebuild cadence: the paper picks floor(eps^-1/3); sweeping
//     the period shows the cost minimum near that value (the covering-set
//     compaction vs rebuild-frequency trade-off).
// (c) RSUM's block size: the paper picks m ~ log2(eps^-1); smaller blocks
//     fail the subset-sum window too often (more rebuilds), larger blocks
//     pay 2^{m/2} decision time for no cost benefit.
#include "alloc/geo.h"
#include "alloc/rsum.h"
#include "alloc/simple.h"
#include "bench_common.h"
#include "mem/memory.h"
#include "workload/adversarial.h"
#include "workload/churn.h"
#include "workload/random_item.h"

namespace {

using namespace memreal;
using namespace memreal::bench;

constexpr Tick kCap = Tick{1} << 50;

void ablate_geo_thresholds(BenchJson& artifact) {
  print_header(
      "T8a — GEO randomized vs deterministic rebuild thresholds",
      "Lemma 4.4 bounds the probability that any FIXED update pays for a "
      "rebuild.  The metric is therefore the worst-case expected cost per "
      "update index (max over indices of the mean over allocator seeds): "
      "deterministic thresholds make the same indices pay every time.");
  const double eps = 1.0 / 64;
  SingleClassAttackConfig w;
  w.capacity = kCap;
  w.eps = eps;
  // Strictly below the huge threshold sqrt(eps)/100 so the class/level
  // machinery (and its thresholds) is what gets attacked.
  w.size_fraction = std::sqrt(eps) / 300.0;
  w.attack_pairs = fast_mode() ? 1'000 : 6'000;
  w.seed = 99;  // one fixed oblivious sequence
  const Sequence seq = make_single_class_attack(w);
  const std::size_t n = seq.updates.size();
  const std::size_t runs = fast_mode() ? 4 : 12;

  Json rec = series_record("ablation", "T8", "geo-thresholds");
  rec.set("workload", "single-class attack below the huge threshold, "
                      "eps = 1/64");
  Json rows = Json::array();
  Table t({"thresholds", "mean cost", "max_u E[cost(u)]",
           "p99_u E[cost(u)]"});
  for (bool deterministic : {false, true}) {
    std::vector<double> per_index(n, 0.0);
    double grand_mean = 0;
    for (std::uint64_t seed = 1; seed <= runs; ++seed) {
      ValidationPolicy policy;
      policy.audit_every_n_updates = 4096;
      Memory mem(seq.capacity, seq.eps_ticks, policy);
      GeoConfig gc;
      gc.eps = eps;
      gc.seed = seed * 7919;
      gc.deterministic_thresholds = deterministic;
      GeoAllocator geo(mem, gc);
      EngineOptions opts;
      opts.on_update = [&](std::size_t i, const Update&, double c) {
        per_index[i] += c;
      };
      Engine engine(mem, geo, opts);
      grand_mean += engine.run(seq.updates).mean_cost();
    }
    for (auto& v : per_index) v /= static_cast<double>(runs);
    Quantiles q;
    double mx = 0;
    for (double v : per_index) {
      q.add(v);
      mx = std::max(mx, v);
    }
    t.add_row({deterministic ? "deterministic (max of range)" : "randomized",
               Table::num(grand_mean / static_cast<double>(runs), 4),
               Table::num(mx, 5), Table::num(q.quantile(0.99), 5)});
    Json row = Json::object();
    row.set("thresholds",
            deterministic ? "deterministic (max of range)" : "randomized")
        .set("mean_cost", grand_mean / static_cast<double>(runs))
        .set("max_expected_cost", mx)
        .set("p99_expected_cost", q.quantile(0.99));
    rows.push(std::move(row));
  }
  rec.set("rows", std::move(rows));
  artifact.add(std::move(rec));
  t.print(std::cout);
  std::cout << "(same total work; determinism concentrates it on "
               "predictable updates — the quantity Theorem 4.1 bounds is "
               "per-update expected cost, which randomization keeps low "
               "everywhere)\n";
}

void ablate_simple_period(BenchJson& artifact) {
  print_header("T8b — SIMPLE rebuild cadence",
               "The paper rebuilds every floor(eps^-1/3) updates; sweeping "
               "the period shows the trade-off.");
  const double eps = 1.0 / 512;  // eps^-1/3 = 8
  const Sequence seq =
      make_simple_regime(kCap, eps, fast_mode() ? 2'000 : 20'000, 1);
  Json rec = series_record("ablation", "T8", "simple-period");
  rec.set("workload", "[eps, 2eps) churn at eps = 1/512");
  Json rows = Json::array();
  Table t({"period", "mean_cost", "rebuilds", "note"});
  const std::size_t paper = static_cast<std::size_t>(
      std::floor(std::cbrt(1.0 / eps)));
  for (std::size_t period : {1ul, 2ul, 4ul, paper, 2 * paper}) {
    ValidationPolicy policy;
    policy.audit_every_n_updates = 1024;
    Memory mem(seq.capacity, seq.eps_ticks, policy);
    SimpleAllocator alloc(mem, eps);
    std::string note = period == paper ? "paper's floor(eps^-1/3)" : "";
    Json row = Json::object();
    row.set("period", static_cast<std::uint64_t>(period));
    try {
      alloc.set_rebuild_period(period);
      Engine engine(mem, alloc);
      RunStats s = engine.run(seq.updates);
      t.add_row({std::to_string(period), Table::num(s.mean_cost(), 4),
                 std::to_string(alloc.rebuilds()), note});
      row.set("feasible", true)
          .set("mean_cost", s.mean_cost())
          .set("rebuilds", static_cast<std::uint64_t>(alloc.rebuilds()));
    } catch (const InvariantViolation&) {
      // Periods beyond eps^-1/3 overflow the waste budget: the algorithm's
      // own feasibility frontier.
      t.add_row({std::to_string(period), "-", "-",
                 "waste budget exceeded (expected)"});
      row.set("feasible", false).set("mean_cost", Json()).set("rebuilds",
                                                              Json());
      note = "waste budget exceeded (expected)";
    }
    row.set("paper_choice", period == paper).set("note", note);
    rows.push(std::move(row));
  }
  rec.set("rows", std::move(rows));
  artifact.add(std::move(rec));
  t.print(std::cout);
}

void ablate_rsum_block(BenchJson& artifact) {
  print_header("T8c — RSUM block size m",
               "The paper uses m = 2*ceil(log2(eps^-1)/2); smaller blocks "
               "miss the subset window, larger ones pay 2^{m/2} decision "
               "time.");
  const double eps = 1.0 / 4096;
  RandomItemConfig w;
  w.capacity = kCap;
  w.eps = eps;
  w.churn_pairs = fast_mode() ? 1'000 : 6'000;
  const std::size_t paper =
      2 * static_cast<std::size_t>(std::ceil(std::log2(1.0 / eps) / 2.0));
  Json rec = series_record("ablation", "T8", "rsum-block");
  rec.set("workload", "delta-random sequences at eps = 1/4096");
  Json rows = Json::array();
  Table t({"m", "mean_cost", "rebuilds", "decide_us/update", "note"});
  for (std::size_t m : {4ul, 8ul, paper, 2 * paper}) {
    StreamingStats mean, decide;
    std::size_t rebuilds = 0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      w.seed = seed;
      const Sequence seq = make_random_item_sequence(w);
      ValidationPolicy policy;
      policy.audit_every_n_updates = 1024;
      Memory mem(seq.capacity, seq.eps_ticks, policy);
      RSumConfig rc;
      rc.eps = eps;
      rc.seed = seed;
      rc.block_items = m;
      RSumAllocator alloc(mem, rc);
      Engine engine(mem, alloc);
      RunStats s = engine.run(seq.updates);
      mean.add(s.mean_cost());
      decide.add(s.decision_seconds * 1e6 /
                 static_cast<double>(s.updates));
      rebuilds += alloc.rebuilds();
    }
    t.add_row({std::to_string(m), Table::num(mean.mean(), 4),
               std::to_string(rebuilds / 3), Table::num(decide.mean(), 4),
               m == paper ? "paper's 2*ceil(log2(1/eps)/2)" : ""});
    Json row = Json::object();
    row.set("m", static_cast<std::uint64_t>(m))
        .set("mean_cost", mean.mean())
        .set("rebuilds", static_cast<std::uint64_t>(rebuilds / 3))
        .set("decide_us_per_update", decide.mean())
        .set("paper_choice", m == paper);
    rows.push(std::move(row));
  }
  rec.set("rows", std::move(rows));
  artifact.add(std::move(rec));
  t.print(std::cout);
}

void ablate_discrete_sizes(BenchJson& artifact) {
  print_header(
      "T8d — structured sizes (the conclusion's extension)",
      "Section 7 sketches covering-set allocators for few distinct sizes; "
      "DISCRETE implements it with exact-size pools (zero waste).  Sweep "
      "the palette size k on [eps, 2eps) churn.");
  const double eps = 1.0 / 512;
  const std::size_t updates = fast_mode() ? 2'000 : 15'000;
  Json rec = series_record("info", "T8", "discrete-sizes");
  rec.set("workload", "k-distinct-size churn at eps = 1/512");
  Json rows = Json::array();
  Table t({"k distinct sizes", "discrete", "simple", "folklore-compact"});
  for (std::size_t k : {1ul, 2ul, 4ul, 8ul, 16ul, 32ul}) {
    std::vector<std::string> cells{std::to_string(k)};
    Json row = Json::object();
    row.set("k", static_cast<std::uint64_t>(k));
    for (const char* name : {"discrete", "simple", "folklore-compact"}) {
      StreamingStats mean;
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        DiscreteChurnConfig w;
        w.capacity = Tick{1} << 50;
        w.eps = eps;
        w.distinct_sizes = k;
        w.churn_updates = updates;
        w.seed = seed;
        const Sequence seq = make_discrete_churn(w);
        ValidationPolicy policy;
        policy.audit_every_n_updates = 1024;
        Memory mem(seq.capacity, seq.eps_ticks, policy);
        AllocatorParams p;
        p.eps = eps;
        p.seed = seed;
        auto alloc = make_allocator(name, mem, p);
        Engine engine(mem, *alloc);
        mean.add(engine.run(seq.updates).mean_cost());
      }
      cells.push_back(Table::num(mean.mean(), 4));
      row.set(json_key(name), mean.mean());
    }
    t.add_row(std::move(cells));
    rows.push(std::move(row));
  }
  rec.set("rows", std::move(rows));
  artifact.add(std::move(rec));
  t.print(std::cout);
  std::cout << "(DISCRETE ~ sqrt(n k): far below SIMPLE's eps^-2/3 for "
               "small k, converging toward it as the palette grows)\n";
}

}  // namespace

int main(int argc, char** argv) {
  memreal::bench::BenchJson artifact("ablations");
  artifact.set_seeds({1, 2, 3, 99});
  ablate_geo_thresholds(artifact);
  ablate_simple_period(artifact);
  ablate_rsum_block(artifact);
  ablate_discrete_sizes(artifact);
  artifact.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
