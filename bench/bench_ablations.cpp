// T8 — ablations on the paper's design choices.
//
// (a) GEO's randomized rebuild thresholds: with deterministic thresholds a
//     single-class attack synchronizes rebuilds on predictable updates —
//     the cost distribution's tail (p99/max) degrades versus randomized.
// (b) SIMPLE's rebuild cadence: the paper picks floor(eps^-1/3); sweeping
//     the period shows the cost minimum near that value (the covering-set
//     compaction vs rebuild-frequency trade-off).
// (c) RSUM's block size: the paper picks m ~ log2(eps^-1); smaller blocks
//     fail the subset-sum window too often (more rebuilds), larger blocks
//     pay 2^{m/2} decision time for no cost benefit.
#include "alloc/geo.h"
#include "alloc/rsum.h"
#include "alloc/simple.h"
#include "bench_common.h"
#include "workload/adversarial.h"
#include "workload/churn.h"
#include "workload/random_item.h"

namespace {

using namespace memreal;
using namespace memreal::bench;

constexpr Tick kCap = Tick{1} << 50;

void ablate_geo_thresholds() {
  print_header(
      "T8a — GEO randomized vs deterministic rebuild thresholds",
      "Lemma 4.4 bounds the probability that any FIXED update pays for a "
      "rebuild.  The metric is therefore the worst-case expected cost per "
      "update index (max over indices of the mean over allocator seeds): "
      "deterministic thresholds make the same indices pay every time.");
  const double eps = 1.0 / 64;
  SingleClassAttackConfig w;
  w.capacity = kCap;
  w.eps = eps;
  // Strictly below the huge threshold sqrt(eps)/100 so the class/level
  // machinery (and its thresholds) is what gets attacked.
  w.size_fraction = std::sqrt(eps) / 300.0;
  w.attack_pairs = fast_mode() ? 1'000 : 6'000;
  w.seed = 99;  // one fixed oblivious sequence
  const Sequence seq = make_single_class_attack(w);
  const std::size_t n = seq.updates.size();
  const std::size_t runs = fast_mode() ? 4 : 12;

  Table t({"thresholds", "mean cost", "max_u E[cost(u)]",
           "p99_u E[cost(u)]"});
  for (bool deterministic : {false, true}) {
    std::vector<double> per_index(n, 0.0);
    double grand_mean = 0;
    for (std::uint64_t seed = 1; seed <= runs; ++seed) {
      ValidationPolicy policy;
      policy.audit_every_n_updates = 4096;
      Memory mem(seq.capacity, seq.eps_ticks, policy);
      GeoConfig gc;
      gc.eps = eps;
      gc.seed = seed * 7919;
      gc.deterministic_thresholds = deterministic;
      GeoAllocator geo(mem, gc);
      EngineOptions opts;
      opts.on_update = [&](std::size_t i, const Update&, double c) {
        per_index[i] += c;
      };
      Engine engine(mem, geo, opts);
      grand_mean += engine.run(seq.updates).mean_cost();
    }
    for (auto& v : per_index) v /= static_cast<double>(runs);
    Quantiles q;
    double mx = 0;
    for (double v : per_index) {
      q.add(v);
      mx = std::max(mx, v);
    }
    t.add_row({deterministic ? "deterministic (max of range)" : "randomized",
               Table::num(grand_mean / static_cast<double>(runs), 4),
               Table::num(mx, 5), Table::num(q.quantile(0.99), 5)});
  }
  t.print(std::cout);
  std::cout << "(same total work; determinism concentrates it on "
               "predictable updates — the quantity Theorem 4.1 bounds is "
               "per-update expected cost, which randomization keeps low "
               "everywhere)\n";
}

void ablate_simple_period() {
  print_header("T8b — SIMPLE rebuild cadence",
               "The paper rebuilds every floor(eps^-1/3) updates; sweeping "
               "the period shows the trade-off.");
  const double eps = 1.0 / 512;  // eps^-1/3 = 8
  const Sequence seq =
      make_simple_regime(kCap, eps, fast_mode() ? 2'000 : 20'000, 1);
  Table t({"period", "mean_cost", "rebuilds", "note"});
  const std::size_t paper = static_cast<std::size_t>(
      std::floor(std::cbrt(1.0 / eps)));
  for (std::size_t period : {1ul, 2ul, 4ul, paper, 2 * paper}) {
    ValidationPolicy policy;
    policy.audit_every_n_updates = 1024;
    Memory mem(seq.capacity, seq.eps_ticks, policy);
    SimpleAllocator alloc(mem, eps);
    std::string note = period == paper ? "paper's floor(eps^-1/3)" : "";
    try {
      alloc.set_rebuild_period(period);
      Engine engine(mem, alloc);
      RunStats s = engine.run(seq.updates);
      t.add_row({std::to_string(period), Table::num(s.mean_cost(), 4),
                 std::to_string(alloc.rebuilds()), note});
    } catch (const InvariantViolation&) {
      // Periods beyond eps^-1/3 overflow the waste budget: the algorithm's
      // own feasibility frontier.
      t.add_row({std::to_string(period), "-", "-",
                 "waste budget exceeded (expected)"});
    }
  }
  t.print(std::cout);
}

void ablate_rsum_block() {
  print_header("T8c — RSUM block size m",
               "The paper uses m = 2*ceil(log2(eps^-1)/2); smaller blocks "
               "miss the subset window, larger ones pay 2^{m/2} decision "
               "time.");
  const double eps = 1.0 / 4096;
  RandomItemConfig w;
  w.capacity = kCap;
  w.eps = eps;
  w.churn_pairs = fast_mode() ? 1'000 : 6'000;
  const std::size_t paper =
      2 * static_cast<std::size_t>(std::ceil(std::log2(1.0 / eps) / 2.0));
  Table t({"m", "mean_cost", "rebuilds", "decide_us/update", "note"});
  for (std::size_t m : {4ul, 8ul, paper, 2 * paper}) {
    StreamingStats mean, decide;
    std::size_t rebuilds = 0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      w.seed = seed;
      const Sequence seq = make_random_item_sequence(w);
      ValidationPolicy policy;
      policy.audit_every_n_updates = 1024;
      Memory mem(seq.capacity, seq.eps_ticks, policy);
      RSumConfig rc;
      rc.eps = eps;
      rc.seed = seed;
      rc.block_items = m;
      RSumAllocator alloc(mem, rc);
      Engine engine(mem, alloc);
      RunStats s = engine.run(seq.updates);
      mean.add(s.mean_cost());
      decide.add(s.decision_seconds * 1e6 /
                 static_cast<double>(s.updates));
      rebuilds += alloc.rebuilds();
    }
    t.add_row({std::to_string(m), Table::num(mean.mean(), 4),
               std::to_string(rebuilds / 3), Table::num(decide.mean(), 4),
               m == paper ? "paper's 2*ceil(log2(1/eps)/2)" : ""});
  }
  t.print(std::cout);
}

void ablate_discrete_sizes() {
  print_header(
      "T8d — structured sizes (the conclusion's extension)",
      "Section 7 sketches covering-set allocators for few distinct sizes; "
      "DISCRETE implements it with exact-size pools (zero waste).  Sweep "
      "the palette size k on [eps, 2eps) churn.");
  const double eps = 1.0 / 512;
  const std::size_t updates = fast_mode() ? 2'000 : 15'000;
  Table t({"k distinct sizes", "discrete", "simple", "folklore-compact"});
  for (std::size_t k : {1ul, 2ul, 4ul, 8ul, 16ul, 32ul}) {
    std::vector<std::string> cells{std::to_string(k)};
    for (const char* name : {"discrete", "simple", "folklore-compact"}) {
      StreamingStats mean;
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        DiscreteChurnConfig w;
        w.capacity = Tick{1} << 50;
        w.eps = eps;
        w.distinct_sizes = k;
        w.churn_updates = updates;
        w.seed = seed;
        const Sequence seq = make_discrete_churn(w);
        ValidationPolicy policy;
        policy.audit_every_n_updates = 1024;
        Memory mem(seq.capacity, seq.eps_ticks, policy);
        AllocatorParams p;
        p.eps = eps;
        p.seed = seed;
        auto alloc = make_allocator(name, mem, p);
        Engine engine(mem, *alloc);
        mean.add(engine.run(seq.updates).mean_cost());
      }
      cells.push_back(Table::num(mean.mean(), 4));
    }
    t.add_row(std::move(cells));
  }
  t.print(std::cout);
  std::cout << "(DISCRETE ~ sqrt(n k): far below SIMPLE's eps^-2/3 for "
               "small k, converging toward it as the palette grows)\n";
}

}  // namespace

int main(int argc, char** argv) {
  ablate_geo_thresholds();
  ablate_simple_period();
  ablate_rsum_block();
  ablate_discrete_sizes();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
