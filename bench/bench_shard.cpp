// Sharded-engine scaling experiment: updates/sec of a fully validated
// sharded run as a function of (shards, threads).
//
// Two sweeps on a uniform churn workload (sizes in the allocator's
// registered band of the shard capacity):
//   T-SHARD-S — shard scaling at all cores: S = 1, 2, 4, 8 (16 when not
//               MEMREAL_FAST).  More cells mean smaller per-cell layouts
//               and more parallel lanes; updates/sec should grow until
//               the core count binds.
//   T-SHARD-T — thread scaling at S = 8: T = 1, 2, 4, ..., cores.  The
//               acceptance bar for the subsystem: updates/sec increases
//               from 1 thread to all cores (on multi-core hosts).
//
// Both sweeps are emitted to BENCH_shard.json via BenchJson, then a small
// google-benchmark section measures the same configurations.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "harness/cell.h"
#include "shard/sharded_engine.h"
#include "workload/churn.h"

namespace memreal::bench {
namespace {

constexpr double kEps = 1.0 / 64;
constexpr Tick kShardCapacity = Tick{1} << 34;

/// T-REL runs its cell denser (~550 live items vs ~34 at kEps) so the
/// head-to-head measures what the release engine removes — per-update
/// validation work, which scales with moved mass — rather than the fixed
/// per-update engine overhead that dominates a near-empty cell.
constexpr double kRelEps = 1.0 / 1024;

std::size_t cores() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

Sequence shard_workload(const std::string& allocator, std::size_t shards,
                        std::size_t updates, std::uint64_t seed,
                        double eps = kEps) {
  const AllocatorInfo info = allocator_info(allocator);
  ChurnConfig c;
  c.capacity = kShardCapacity * shards;
  c.eps = eps;
  c.min_size = info.sizes.min_size(eps, kShardCapacity);
  c.max_size = info.sizes.max_size(eps, kShardCapacity) - 1;
  c.target_load = 0.8;
  c.churn_updates = updates;
  c.seed = seed;
  return make_churn(c);
}

ShardedConfig shard_config(const std::string& allocator, std::size_t shards,
                           std::size_t threads,
                           const std::string& engine = "validated",
                           double eps = kEps) {
  ShardedConfig c;
  c.engine = engine;
  c.allocator = allocator;
  c.params.eps = eps;
  c.params.seed = 1;
  c.shards = shards;
  c.shard_capacity = kShardCapacity;
  c.eps = eps;
  c.threads = threads;
  c.batch_size = 4'096;
  return c;
}

struct Point {
  std::size_t shards;
  std::size_t threads;
  ShardedRunStats stats;
};

Point measure(const std::string& allocator, const Sequence& seq,
              std::size_t shards, std::size_t threads,
              const std::string& engine_name = "validated",
              double eps = kEps) {
  ShardedEngine engine(
      shard_config(allocator, shards, threads, engine_name, eps));
  Point p{shards, engine.thread_count(), engine.run(seq)};
  engine.audit();
  return p;
}

Json point_row(const Point& p) {
  Json row = Json::object();
  row.set("shards", static_cast<std::uint64_t>(p.shards))
      .set("threads", static_cast<std::uint64_t>(p.threads))
      .set("updates", static_cast<std::uint64_t>(p.stats.global.updates))
      .set("wall_seconds", p.stats.global.wall_seconds)
      .set("updates_per_second", p.stats.updates_per_second())
      .set("mean_cost", p.stats.global.mean_cost())
      .set("ratio_cost", p.stats.global.ratio_cost())
      .set("imbalance", p.stats.imbalance())
      .set("fallback_routes",
           static_cast<std::uint64_t>(p.stats.fallback_routes));
  return row;
}

void add_row(Table& t, const Point& p) {
  t.add_row({std::to_string(p.shards), std::to_string(p.threads),
             std::to_string(p.stats.global.updates),
             Table::num(p.stats.global.wall_seconds, 4),
             Table::num(p.stats.updates_per_second(), 6),
             Table::num(p.stats.global.mean_cost(), 4),
             Table::num(p.stats.imbalance(), 3)});
}

void print_experiment() {
  const bool fast = fast_mode();
  const std::string allocator = "simple";
  const std::size_t updates = fast ? 4'000 : 40'000;
  BenchJson artifact("shard");
  artifact.set_seeds({1});

  print_header("T-SHARD-S — shard scaling (all cores)",
               "Validated sharded churn: updates/sec vs shard count at "
               "full thread parallelism.");
  std::vector<std::size_t> shard_counts{1, 2, 4, 8};
  if (!fast) shard_counts.push_back(16);
  Json shards_rec = series_record("shard_scaling", "T9", "shard-scaling");
  shards_rec.set("allocator", allocator);
  shards_rec.set("workload", "uniform churn, load 0.8, all cores");
  Json shards_rows = Json::array();
  Table by_shards({"shards", "threads", "updates", "wall_s", "updates/s",
                   "mean_cost", "imbalance"});
  for (const std::size_t s : shard_counts) {
    const Sequence seq = shard_workload(allocator, s, updates, 1);
    const Point p = measure(allocator, seq, s, 0);
    add_row(by_shards, p);
    shards_rows.push(point_row(p));
  }
  shards_rec.set("rows", std::move(shards_rows));
  artifact.add(std::move(shards_rec));
  by_shards.print(std::cout);

  print_header("T-SHARD-T — thread scaling (S = 8)",
               "Same workload, fixed 8 shards: updates/sec from 1 thread "
               "to all cores.");
  std::vector<std::size_t> thread_counts;
  for (std::size_t t = 1; t < cores(); t *= 2) thread_counts.push_back(t);
  thread_counts.push_back(cores());
  const Sequence seq8 = shard_workload(allocator, 8, updates, 1);
  Json threads_rec = series_record("shard_scaling", "T9", "thread-scaling");
  threads_rec.set("allocator", allocator);
  threads_rec.set("workload", "uniform churn, load 0.8, S = 8");
  Json threads_rows = Json::array();
  Table by_threads({"shards", "threads", "updates", "wall_s", "updates/s",
                    "mean_cost", "imbalance"});
  double first_rate = 0.0;
  double last_rate = 0.0;
  for (const std::size_t t : thread_counts) {
    const Point p = measure(allocator, seq8, 8, t);
    add_row(by_threads, p);
    threads_rows.push(point_row(p));
    if (t == thread_counts.front()) first_rate = p.stats.updates_per_second();
    last_rate = p.stats.updates_per_second();
  }
  threads_rec.set("rows", std::move(threads_rows));
  artifact.add(std::move(threads_rec));
  by_threads.print(std::cout);
  std::cout << "1-thread -> all-cores speedup at S = 8: "
            << Table::num(last_rate / first_rate, 3) << "x over "
            << cores() << " core(s)\n";

  print_header("T-REL — engine throughput (S = 1, single thread)",
               "Churn on one dense cell (eps = 1/1024, ~550 live items): "
               "the unchecked release engine (slab store, no per-update "
               "validation) vs the validated engine, updates/sec head to "
               "head.");
  const Sequence seq1 = shard_workload(allocator, 1, updates, 1, kRelEps);
  Json rel_rec = series_record("engine_throughput", "T-REL",
                               "engine-throughput");
  rel_rec.set("allocator", allocator);
  rel_rec.set("workload",
              "uniform churn, load 0.8, eps 1/1024, S = 1, 1 thread");
  Json rel_rows = Json::array();
  Table by_engine({"engine", "shards", "threads", "updates", "wall_s",
                   "updates/s", "mean_cost", "imbalance"});
  double validated_rate = 0.0;
  double release_rate = 0.0;
  for (const std::string engine : engine_names()) {
    const Point p = measure(allocator, seq1, 1, 1, engine, kRelEps);
    by_engine.add_row({engine, std::to_string(p.shards),
                       std::to_string(p.threads),
                       std::to_string(p.stats.global.updates),
                       Table::num(p.stats.global.wall_seconds, 4),
                       Table::num(p.stats.updates_per_second(), 6),
                       Table::num(p.stats.global.mean_cost(), 4),
                       Table::num(p.stats.imbalance(), 3)});
    Json row = point_row(p);
    row.set("engine", engine);
    rel_rows.push(std::move(row));
    if (engine == "validated") validated_rate = p.stats.updates_per_second();
    if (engine == "release") release_rate = p.stats.updates_per_second();
  }
  rel_rec.set("rows", std::move(rel_rows));
  artifact.add(std::move(rel_rec));
  by_engine.print(std::cout);
  std::cout << "release / validated updates-per-second ratio at S = 1: "
            << Table::num(validated_rate > 0 ? release_rate / validated_rate
                                             : 0.0, 3)
            << "x\n";

  artifact.write();
}

void bm_sharded_churn(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const Sequence seq = shard_workload("simple", shards, 2'000, 1);
  for (auto _ : state) {
    ShardedEngine engine(shard_config("simple", shards, 0));
    const ShardedRunStats stats = engine.run(seq);
    benchmark::DoNotOptimize(stats.global.moved_mass);
    state.counters["updates_per_s"] = stats.updates_per_second();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * seq.updates.size()));
}

}  // namespace
}  // namespace memreal::bench

int main(int argc, char** argv) {
  memreal::bench::print_experiment();

  benchmark::RegisterBenchmark("BM_ShardedChurn",
                               memreal::bench::bm_sharded_churn)
      ->Arg(1)
      ->Arg(4)
      ->Arg(8);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
