// Validation-path microbenchmark: the per-update cost of a *verified* run.
//
// The seed validated the memory model by rebuilding and sorting a full
// snapshot after every update — O(n log n) per update, which caps the n a
// validated run can reach.  Validation is now incremental: each update
// re-checks only the items it touched against their offset-order
// neighbors, O(log n) per mutation, with the full audit demoted to a
// periodic/explicit pass.  This bench measures both paths on an identical
// steady-state churn workload (delete one item + place an equal-sized
// replacement per update) and prints the speedup; the acceptance bar for
// the refactor is >= 10x at n ~ 1e5.
#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "mem/memory.h"
#include "util/rng.h"
#include "util/table.h"

namespace memreal::bench {
namespace {

constexpr Tick kItemSize = 64;

ValidationPolicy policy_for(const std::string& mode) {
  ValidationPolicy p;
  if (mode == "incremental") {
    p.incremental = true;
    p.audit_every_n_updates = 0;
  } else if (mode == "full-audit") {
    // The seed's behavior: a full O(n log n) pass at every bracket close.
    p.incremental = false;
    p.audit_every_n_updates = 1;
  } else {  // "none"
    p.incremental = false;
    p.audit_every_n_updates = 0;
  }
  return p;
}

/// A Memory pre-filled with n contiguous items of kItemSize ticks.
Memory populated(std::size_t n, const ValidationPolicy& policy) {
  const Tick cap = 4 * static_cast<Tick>(n) * kItemSize;
  Memory mem(cap, static_cast<Tick>(n) * kItemSize, policy);
  mem.begin_update(kItemSize, true);
  for (std::size_t i = 0; i < n; ++i) {
    mem.place(static_cast<ItemId>(i), static_cast<Tick>(i) * kItemSize,
              kItemSize);
  }
  mem.end_update();
  return mem;
}

/// One steady-state churn update: delete a random item and place an
/// equal-sized replacement in its slot.  O(1) mutations per update, so
/// the measured time is dominated by the validation policy.
void churn_once(Memory& mem, std::vector<ItemId>& slots, Rng& rng,
                ItemId& next_id) {
  const auto s = static_cast<std::size_t>(rng.next_below(slots.size()));
  const ItemId victim = slots[s];
  const Tick off = mem.offset_of(victim);
  mem.begin_update(kItemSize, true);
  mem.remove(victim);
  mem.place(next_id, off, kItemSize);
  mem.end_update();
  slots[s] = next_id++;
}

double us_per_update(std::size_t n, const std::string& mode,
                     std::size_t updates) {
  Memory mem = populated(n, policy_for(mode));
  std::vector<ItemId> slots(n);
  for (std::size_t i = 0; i < n; ++i) slots[i] = static_cast<ItemId>(i);
  Rng rng(42);
  ItemId next_id = static_cast<ItemId>(n);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t u = 0; u < updates; ++u) {
    churn_once(mem, slots, rng, next_id);
  }
  const auto t1 = std::chrono::steady_clock::now();
  mem.audit();  // the run stays fully verified
  return std::chrono::duration<double>(t1 - t0).count() * 1e6 /
         static_cast<double>(updates);
}

void print_experiment() {
  print_header("T-VAL — incremental validation",
               "Per-update cost of a verified run is O(log n), not "
               "O(n log n): incremental neighbor checks vs the seed's "
               "full per-update audit.");
  const bool fast = fast_mode();
  const std::vector<std::size_t> sizes =
      fast ? std::vector<std::size_t>{1'000, 10'000}
           : std::vector<std::size_t>{1'000, 10'000, 100'000};
  Table t({"items", "none_us", "incremental_us", "full_audit_us",
           "audit/incremental"});
  BenchJson artifact("validation");
  artifact.set_seeds({42});
  Json rec = series_record("validation_speedup", "T-VAL",
                           "incremental-vs-audit");
  rec.set("workload", "steady-state churn (delete + equal-size replace)");
  Json rows = Json::array();
  for (const std::size_t n : sizes) {
    const std::size_t light = fast ? 20'000 : 50'000;
    // The full audit is ~n per update; cap its total work instead of its
    // update count so the largest size stays a few seconds.
    const std::size_t heavy =
        std::max<std::size_t>(200, (fast ? 10'000'000 : 100'000'000) / n);
    const double none = us_per_update(n, "none", light);
    const double inc = us_per_update(n, "incremental", light);
    const double full = us_per_update(n, "full-audit", heavy);
    t.add_row({std::to_string(n), Table::num(none, 3), Table::num(inc, 3),
               Table::num(full, 3), Table::num(full / inc, 3)});
    Json row = Json::object();
    row.set("items", static_cast<std::uint64_t>(n))
        .set("none_us", none)
        .set("incremental_us", inc)
        .set("full_audit_us", full)
        .set("audit_over_incremental", full / inc);
    rows.push(std::move(row));
  }
  rec.set("rows", std::move(rows));
  artifact.add(std::move(rec));
  t.print(std::cout);
  std::cout << "(speedup must be >= 10x at n ~ 1e5; incremental_us should "
               "be flat in n up to the O(log n) index walk)\n";
  artifact.write();
}

void bm_validated_churn(benchmark::State& state, const std::string& mode) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Memory mem = populated(n, policy_for(mode));
  std::vector<ItemId> slots(n);
  for (std::size_t i = 0; i < n; ++i) slots[i] = static_cast<ItemId>(i);
  Rng rng(7);
  ItemId next_id = static_cast<ItemId>(n);
  for (auto _ : state) {
    churn_once(mem, slots, rng, next_id);
  }
  benchmark::DoNotOptimize(mem.span_end());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

}  // namespace
}  // namespace memreal::bench

int main(int argc, char** argv) {
  memreal::bench::print_experiment();

  using memreal::bench::bm_validated_churn;
  benchmark::RegisterBenchmark(
      "BM_ValidatedChurn/incremental",
      [](benchmark::State& s) { bm_validated_churn(s, "incremental"); })
      ->Arg(1 << 10)
      ->Arg(1 << 17);
  benchmark::RegisterBenchmark(
      "BM_ValidatedChurn/full-audit",
      [](benchmark::State& s) { bm_validated_churn(s, "full-audit"); })
      ->Arg(1 << 10)
      ->Arg(1 << 13);
  benchmark::RegisterBenchmark(
      "BM_ValidatedChurn/none",
      [](benchmark::State& s) { bm_validated_churn(s, "none"); })
      ->Arg(1 << 10)
      ->Arg(1 << 17);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
