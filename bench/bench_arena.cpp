// Byte-addressed arena experiment: the tick model's costs against
// physically measured byte movement.
//
// Two series, both under claim T-ARENA:
//   arena-differential — for each (allocator, inner engine) pair, one
//     churn run on a plain validated cell and on a byte-backed arena
//     cell over the same sequence.  Records whether the tick-cost
//     channels agree exactly (they must: ArenaStore forwards the whole
//     LayoutStore contract), the measured moved_bytes, and whether the
//     bytes land inside the granule's rounding bound
//       L * bpt - M * (bpt - 1) <= moved_bytes <= L * bpt
//     for tick mass L and M payload moves.  Payloads are verified
//     throughout and by a final audit.
//   arena-throughput — updates/sec and bytes moved/sec of an arena cell
//     on the vm_heap GC-heap stream, with payload verification on and
//     off (the gap is the integrity-checking tax on raw memmove
//     bandwidth).
//
// Emitted to BENCH_arena.json; memreal_report renders the T-ARENA claim
// from the records.  A google-benchmark section measures the vm_heap
// arena configuration.
#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

#include "alloc/registry.h"
#include "arena/arena_cell.h"
#include "bench_common.h"
#include "harness/cell.h"
#include "harness/validated_run.h"
#include "workload/churn.h"
#include "workload/vm_heap.h"

namespace memreal::bench {
namespace {

// A real byte payload per tick: capacities far below the tick-only
// benches so the lazily grown arena stays a few MB.
constexpr Tick kCap = Tick{1} << 20;
constexpr double kEps = 1.0 / 32;
constexpr Tick kBpt = 8;

Sequence band_churn(const std::string& allocator, std::size_t updates,
                    std::uint64_t seed) {
  const AllocatorInfo info = allocator_info(allocator);
  ChurnConfig c;
  c.capacity = kCap;
  c.eps = kEps;
  c.min_size = info.sizes.min_size(kEps, kCap);
  c.max_size = info.sizes.max_size(kEps, kCap) - 1;
  c.target_load = 0.8;
  c.churn_updates = updates;
  c.seed = seed;
  return make_churn(c);
}

Sequence heap_stream(std::size_t updates, std::uint64_t seed) {
  VmHeapConfig c;
  c.capacity = kCap;
  c.eps = kEps;
  c.bytes_per_tick = kBpt;
  c.min_bytes = 16;
  c.max_bytes = 4096;
  c.churn_updates = updates;
  c.seed = seed;
  return make_vm_heap(c);
}

CellConfig arena_config(const std::string& allocator,
                        const std::string& engine, bool verify) {
  CellConfig cfg;
  cfg.allocator = allocator;
  cfg.engine = engine;
  cfg.arena = true;
  cfg.bytes_per_tick = kBpt;
  cfg.verify_payloads = verify;
  cfg.params.eps = kEps;
  cfg.params.seed = 1;
  return cfg;
}

struct DiffPoint {
  std::string allocator;
  std::string engine;
  RunStats plain;
  RunStats arena;
  Tick payload_moves = 0;
  bool costs_equal = false;
  bool bytes_in_bound = false;
};

/// One differential run: the plain validated cell is the tick oracle,
/// the arena cell must reproduce its cost channel exactly while moving
/// real bytes inside the rounding bound.
DiffPoint measure_differential(const std::string& allocator,
                               const std::string& engine,
                               const Sequence& seq) {
  CellConfig plain_cfg;
  plain_cfg.allocator = allocator;
  plain_cfg.params.eps = kEps;
  plain_cfg.params.seed = 1;
  ValidatedCell plain(seq.capacity, seq.eps_ticks, plain_cfg);
  ArenaCell arena(seq.capacity, seq.eps_ticks,
                  arena_config(allocator, engine, /*verify=*/true));

  DiffPoint p;
  p.allocator = allocator;
  p.engine = engine;
  p.plain = plain.run(seq.updates);
  p.arena = arena.run(seq.updates);
  plain.audit();
  arena.audit();  // includes the full payload-pattern sweep
  p.payload_moves = static_cast<Tick>(arena.arena().payload_moves());
  p.costs_equal = p.plain.moved_mass == p.arena.moved_mass &&
                  p.plain.update_mass == p.arena.update_mass &&
                  p.plain.updates == p.arena.updates &&
                  p.plain.mean_cost() == p.arena.mean_cost();
  const Tick hi = p.arena.moved_mass * kBpt;
  const Tick slack = p.payload_moves * (kBpt - 1);
  const Tick lo = hi > slack ? hi - slack : 0;
  p.bytes_in_bound = p.arena.moved_bytes >= lo && p.arena.moved_bytes <= hi;
  return p;
}

void print_experiment() {
  const bool fast = fast_mode();
  const std::size_t updates = fast ? 2'000 : 20'000;
  BenchJson artifact("arena");
  artifact.set_seeds({1});

  print_header("T-ARENA — tick-vs-byte differential",
               "Arena-backed cells must reproduce the tick cost channel "
               "bit-for-bit while really moving payload bytes inside the "
               "granule rounding bound.");
  const std::vector<std::string> allocators{"folklore-compact",
                                            "folklore-windowed", "simple"};
  Json diff_rec = series_record("bound_check", "T-ARENA",
                                "arena-differential");
  diff_rec.set("workload", "band churn, load 0.8");
  diff_rec.set("bytes_per_tick", kBpt);
  Json diff_rows = Json::array();
  Table diff_table({"allocator", "engine", "updates", "moved_mass",
                    "moved_bytes", "payload_moves", "costs_equal",
                    "bytes_in_bound"});
  bool all_equal = true;
  bool all_bound = true;
  for (const std::string& allocator : allocators) {
    const Sequence seq = band_churn(allocator, updates, 1);
    for (const std::string engine : {"validated", "release"}) {
      const DiffPoint p = measure_differential(allocator, engine, seq);
      all_equal = all_equal && p.costs_equal;
      all_bound = all_bound && p.bytes_in_bound;
      diff_table.add_row(
          {p.allocator, p.engine, std::to_string(p.arena.updates),
           std::to_string(p.arena.moved_mass),
           std::to_string(p.arena.moved_bytes),
           std::to_string(p.payload_moves), p.costs_equal ? "yes" : "NO",
           p.bytes_in_bound ? "yes" : "NO"});
      Json row = Json::object();
      row.set("allocator", json_key(p.allocator))
          .set("engine", p.engine)
          .set("updates", static_cast<std::uint64_t>(p.arena.updates))
          .set("moved_mass", p.arena.moved_mass)
          .set("moved_bytes", p.arena.moved_bytes)
          .set("payload_moves", p.payload_moves)
          .set("costs_equal", p.costs_equal ? std::uint64_t{1}
                                            : std::uint64_t{0})
          .set("bytes_in_bound", p.bytes_in_bound ? std::uint64_t{1}
                                                  : std::uint64_t{0})
          .set("payload_verified", std::uint64_t{1});
      diff_rows.push(std::move(row));
    }
  }
  diff_rec.set("rows", std::move(diff_rows));
  artifact.add(std::move(diff_rec));
  diff_table.print(std::cout);
  std::cout << "tick costs equal on every pair: "
            << (all_equal ? "yes" : "NO")
            << "; measured bytes inside the rounding bound: "
            << (all_bound ? "yes" : "NO") << "\n";

  print_header("T-ARENA — byte throughput (vm_heap)",
               "Arena cell on the GC-heap stream: updates/sec and bytes "
               "moved/sec, with and without payload verification.");
  const Sequence heap = heap_stream(updates, 1);
  Json thr_rec = series_record("info", "T-ARENA", "arena-throughput");
  thr_rec.set("workload", "vm_heap, load 0.85");
  thr_rec.set("bytes_per_tick", kBpt);
  Json thr_rows = Json::array();
  Table thr_table({"allocator", "engine", "verify", "updates", "wall_s",
                   "updates/s", "moved_bytes", "bytes/s"});
  for (const bool verify : {true, false}) {
    ArenaCell cell(heap.capacity, heap.eps_ticks,
                   arena_config("folklore-compact", "release", verify));
    const RunStats stats = cell.run(heap.updates);
    cell.audit();
    const double ups = stats.wall_seconds > 0.0
                           ? static_cast<double>(stats.updates) /
                                 stats.wall_seconds
                           : 0.0;
    const double bps = stats.wall_seconds > 0.0
                           ? static_cast<double>(stats.moved_bytes) /
                                 stats.wall_seconds
                           : 0.0;
    thr_table.add_row({"folklore-compact", "release", verify ? "on" : "off",
                       std::to_string(stats.updates),
                       Table::num(stats.wall_seconds, 4), Table::num(ups, 6),
                       std::to_string(stats.moved_bytes),
                       Table::num(bps, 6)});
    Json row = Json::object();
    row.set("allocator", "folklore_compact")
        .set("engine", "release")
        .set("verify", verify ? std::uint64_t{1} : std::uint64_t{0})
        .set("updates", static_cast<std::uint64_t>(stats.updates))
        .set("wall_seconds", stats.wall_seconds)
        .set("updates_per_second", ups)
        .set("moved_bytes", stats.moved_bytes)
        .set("bytes_per_second", bps);
    thr_rows.push(std::move(row));
  }
  thr_rec.set("rows", std::move(thr_rows));
  artifact.add(std::move(thr_rec));
  thr_table.print(std::cout);

  artifact.write();
}

void bm_arena_vm_heap(benchmark::State& state) {
  const bool verify = state.range(0) != 0;
  const Sequence heap = heap_stream(2'000, 1);
  for (auto _ : state) {
    ArenaCell cell(heap.capacity, heap.eps_ticks,
                   arena_config("folklore-compact", "release", verify));
    const RunStats stats = cell.run(heap.updates);
    benchmark::DoNotOptimize(stats.moved_bytes);
    state.counters["bytes_per_s"] =
        stats.wall_seconds > 0.0
            ? static_cast<double>(stats.moved_bytes) / stats.wall_seconds
            : 0.0;
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * heap.updates.size()));
}

}  // namespace
}  // namespace memreal::bench

int main(int argc, char** argv) {
  memreal::bench::print_experiment();

  benchmark::RegisterBenchmark("BM_ArenaVmHeap/verify",
                               memreal::bench::bm_arena_vm_heap)
      ->Arg(1);
  benchmark::RegisterBenchmark("BM_ArenaVmHeap/raw",
                               memreal::bench::bm_arena_vm_heap)
      ->Arg(0);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
