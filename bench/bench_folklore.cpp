// T0 — the folklore baseline: O(eps^-1) per update.
//
// Series: mean/ratio/max cost of both folklore variants against eps on the
// [eps, 2eps) churn regime and on the fragmenter (the pigeonhole worst
// case).  Shape to reproduce: cost grows like (1/eps)^~1 on the hostile
// workloads, and the windowed variant's max cost tracks 3/eps.
#include "bench_common.h"
#include "workload/adversarial.h"
#include "workload/churn.h"

namespace {

using namespace memreal;
using namespace memreal::bench;

constexpr Tick kCap = Tick{1} << 50;

void run_tables() {
  const bool fast = fast_mode();
  const std::size_t updates = fast ? 1'000 : 20'000;
  std::vector<double> eps_values{1.0 / 16, 1.0 / 32, 1.0 / 64,
                                 1.0 / 128, 1.0 / 256};
  if (!fast) {
    eps_values.push_back(1.0 / 512);
    eps_values.push_back(1.0 / 1024);
  }

  print_header("T0 — folklore baseline",
               "Claim (folklore bound): inserts cost O(eps^-1), deletes are "
               "free; amortized O(eps^-1).");

  BenchJson artifact("folklore");
  artifact.set_seeds({1, 2, 3});

  SequenceFactory band_seq = [updates](double eps, std::uint64_t seed) {
    return make_simple_regime(kCap, eps, updates, seed);
  };
  SequenceFactory frag_seq = [fast](double eps, std::uint64_t seed) {
    FragmenterConfig c;
    c.capacity = kCap;
    c.eps = eps;
    c.rounds = fast ? 2 : 6;
    c.seed = seed;
    return make_fragmenter(c);
  };

  for (const char* name : {"folklore-compact", "folklore-windowed"}) {
    ExperimentConfig c;
    c.allocator = name;
    c.make_sequence = band_seq;
    c.eps_values = eps_values;
    c.seeds = 3;
    emit_eps_series(artifact,
                    {"T0", std::string("churn/") + name, name,
                     "churn with sizes in [eps, 2eps)", "power"},
                    run_experiment(c));
  }

  for (const char* name : {"folklore-compact", "folklore-windowed"}) {
    ExperimentConfig c;
    c.allocator = name;
    c.make_sequence = frag_seq;
    c.eps_values = eps_values;
    c.seeds = 3;
    const auto rows = run_experiment(c);
    emit_eps_series(artifact,
                    {"T0", std::string("fragmenter/") + name, name,
                     "fragmenter (pigeonhole worst case)", "power"},
                    rows);
    std::cout << "windowed bound check: max cost vs 3/eps + 1:\n";
    for (const auto& r : rows) {
      std::cout << "  1/eps = " << Table::num(1 / r.eps, 5) << ": max "
                << Table::num(r.max_cost, 4) << " <= "
                << Table::num(3.0 / r.eps + 1.0, 5) << "\n";
    }
  }
  artifact.write();
}

}  // namespace

int main(int argc, char** argv) {
  run_tables();
  memreal::bench::register_throughput(
      "folklore_compact_throughput/eps=1/64", "folklore-compact", 1.0 / 64,
      [](double eps, std::uint64_t seed) {
        return memreal::make_simple_regime(kCap, eps, 5'000, seed);
      });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
