// T1 — Theorem 3.1: SIMPLE achieves amortized O(eps^-2/3) on items with
// sizes in [eps, 2eps); folklore pays ~eps^-1 on the same workload.
//
// Shape to reproduce: SIMPLE's fitted exponent ~2/3 (clearly below
// folklore's), and the absolute costs cross in SIMPLE's favour as eps
// shrinks.
#include "bench_common.h"
#include "workload/churn.h"

namespace {

using namespace memreal;
using namespace memreal::bench;

constexpr Tick kCap = Tick{1} << 50;

void run_tables() {
  const bool fast = fast_mode();
  const std::size_t updates = fast ? 1'000 : 20'000;
  std::vector<double> eps_values{1.0 / 16,  1.0 / 32,  1.0 / 64,
                                 1.0 / 128, 1.0 / 256, 1.0 / 512};
  if (!fast) {
    eps_values.push_back(1.0 / 1024);
    eps_values.push_back(1.0 / 2048);
  }

  print_header(
      "T1 — Theorem 3.1 (SIMPLE)",
      "Claim: sizes in [eps, 2eps) => amortized update cost O(eps^-2/3); "
      "folklore is Theta(eps^-1) worst case.");

  BenchJson artifact("simple");
  artifact.set_seeds({1, 2, 3});

  ComparisonConfig c;
  c.allocators = {"folklore-compact", "simple"};
  c.make_sequence = [updates](double eps, std::uint64_t seed) {
    return make_simple_regime(kCap, eps, updates, seed);
  };
  c.eps_values = eps_values;
  c.seeds = 3;
  const auto result = run_comparison(c);

  std::cout << "\nMean cost per update (churn, sizes in [eps, 2eps)):\n";
  result.cost_table().print(std::cout);
  result.exponent_table().print(std::cout);

  for (std::size_t i = 0; i < result.allocators.size(); ++i) {
    emit_eps_series(artifact,
                    {"T1", "churn-band/" + result.allocators[i],
                     result.allocators[i],
                     "churn with sizes in [eps, 2eps)", "power"},
                    result.rows[i]);
  }

  // Theorem-bound check: SIMPLE mean cost under a generous constant times
  // eps^-2/3 at every eps.
  std::cout << "\nTheorem 3.1 bound check (mean cost vs 12 * eps^-2/3):\n";
  for (const auto& r : result.rows[1]) {
    const double bound = 12.0 * std::pow(1.0 / r.eps, 2.0 / 3.0);
    std::cout << "  1/eps = " << Table::num(1 / r.eps, 5) << ": "
              << Table::num(r.mean_cost, 4) << (r.mean_cost <= bound
                                                    ? "  <=  "
                                                    : "  !!EXCEEDS!!  ")
              << Table::num(bound, 5) << "\n";
  }
  artifact.write();
}

}  // namespace

int main(int argc, char** argv) {
  run_tables();
  memreal::bench::register_throughput(
      "simple_throughput/eps=1/256", "simple", 1.0 / 256,
      [](double eps, std::uint64_t seed) {
        return memreal::make_simple_regime(kCap, eps, 5'000, seed);
      });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
