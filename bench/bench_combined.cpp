// T3 — Corollary 4.10 (COMBINED) and Lemma 4.9 (FLEXHASH).
//
// (a) COMBINED on mixed tiny + large churn: resizable, expected
//     O~(eps^-1/2); tiny-item updates stay cheap (the TINYHASH-substitute
//     side), large updates pay the GEO side.
// (b) Lemma 4.9: FLEXHASH absorbs external updates at O(1) expected cost —
//     measured as (mass moved by rotations) / (external update size).
#include "alloc/flexhash.h"
#include "bench_common.h"
#include "mem/memory.h"
#include "util/rng.h"
#include "workload/adversarial.h"

namespace {

using namespace memreal;
using namespace memreal::bench;

constexpr Tick kCap = Tick{1} << 50;

void run_combined_table(BenchJson& artifact) {
  const bool fast = fast_mode();
  const std::size_t updates = fast ? 1'000 : 12'000;
  std::vector<double> eps_values{1.0 / 16, 1.0 / 32, 1.0 / 64};
  if (!fast) {
    eps_values.push_back(1.0 / 128);
    eps_values.push_back(1.0 / 256);
  }

  print_header("T3 — Corollary 4.10 (COMBINED) + Lemma 4.9 (FLEXHASH)",
               "Claim: arbitrary sizes, resizable, expected O~(eps^-1/2) "
               "per update; external updates cost O(1).");

  SequenceFactory seq = [updates](double eps, std::uint64_t seed) {
    MixedTinyLargeConfig c;
    c.capacity = kCap;
    c.eps = eps;
    c.tiny_fraction = 0.5;
    c.churn_updates = updates;
    c.seed = seed;
    return make_mixed_tiny_large(c);
  };

  ExperimentConfig c;
  c.allocator = "combined";
  c.make_sequence = seq;
  c.eps_values = eps_values;
  c.seeds = 3;
  c.audit_every = 1024;
  emit_eps_series(artifact,
                  {"T3", "mixed-tiny-large/combined", "combined",
                   "mixed tiny+large churn (50% tiny updates)", "power"},
                  run_experiment(c));
  std::cout << "(note: for eps > 2^-7 the tiny/large split point is clamped "
               "below eps^4 so the tiny units keep their Theta(eps^3) size "
               "— near-eps^4 items then route to GEO, inflating the cost at "
               "the largest eps values; from eps = 1/128 down the split is "
               "the paper's eps^4)\n";
}

void run_flexhash_table(BenchJson& artifact) {
  print_header("T3b — Lemma 4.9 external updates",
               "Claim: worst-case expected external update cost O(1) "
               "(measured: rotated mass / pushed mass, flat in eps).");

  Json rec = series_record("flat_check", "T3", "flexhash-external");
  rec.set("workload", "FLEXHASH external pushes, sizes in "
                      "(max tiny, unit]");
  Json rows = Json::array();
  Table t({"eps", "external updates", "pushed mass/cap", "moved mass/cap",
           "cost (moved/pushed)", "rotations"});
  for (double eps : {1.0 / 16, 1.0 / 32, 1.0 / 64}) {
    ValidationPolicy policy;
    policy.incremental = false;
    const auto eps_t = static_cast<Tick>(eps * static_cast<double>(kCap));
    Memory mem(kCap, eps_t, policy);
    FlexHashConfig fc;
    fc.eps = eps;
    fc.region_start = kCap / 4;
    // Small tiny bound so the threshold-randomized small-update regime is
    // exercised (see Lemma 4.9's two update classes).
    fc.max_tiny_size =
        static_cast<Tick>(std::pow(eps, 5.0) * static_cast<double>(kCap));
    FlexHashAllocator flex(mem, fc);
    Engine engine(mem, flex);

    // Populate units.
    const Tick s = flex.tiny().max_item_size() / 2;
    ItemId next = 1;
    for (int i = 0; i < 400; ++i) engine.step(Update::insert(next++, s));
    const Tick before_moved = mem.total_moved();

    Rng rng(7);
    const std::size_t n = fast_mode() ? 2'000 : 20'000;
    Tick pushed = 0;
    const Tick x_lo = flex.tiny().max_item_size() + 1;
    const Tick x_hi = flex.unit_size();
    for (std::size_t i = 0; i < n; ++i) {
      const Tick x = rng.next_in(x_lo, x_hi);
      const bool right =
          rng.next_below(10) < 6 || flex.region_start() < x;  // slow drift
      mem.begin_update(x, true);
      flex.external_update(x, right);
      mem.end_update();
      pushed += x;
    }
    const Tick moved = mem.total_moved() - before_moved;
    t.add_row({Table::num(eps, 4), std::to_string(n),
               Table::num(static_cast<double>(pushed) /
                              static_cast<double>(kCap), 4),
               Table::num(static_cast<double>(moved) /
                              static_cast<double>(kCap), 4),
               Table::num(static_cast<double>(moved) /
                              static_cast<double>(pushed), 4),
               std::to_string(flex.rotations())});
    Json row = Json::object();
    row.set("eps", eps)
        .set("external_updates", static_cast<std::uint64_t>(n))
        .set("pushed_over_capacity",
             static_cast<double>(pushed) / static_cast<double>(kCap))
        .set("moved_over_capacity",
             static_cast<double>(moved) / static_cast<double>(kCap))
        .set("cost",
             static_cast<double>(moved) / static_cast<double>(pushed))
        .set("rotations", static_cast<std::uint64_t>(flex.rotations()));
    rows.push(std::move(row));
    flex.check_invariants();
    mem.audit();
  }
  rec.set("rows", std::move(rows));
  artifact.add(std::move(rec));
  std::cout << "\n";
  t.print(std::cout);
  std::cout << "(cost flat across eps and around O(1) => Lemma 4.9 shape "
               "holds)\n";
}

}  // namespace

int main(int argc, char** argv) {
  memreal::bench::BenchJson artifact("combined");
  artifact.set_seeds({1, 2, 3, 7});
  run_combined_table(artifact);
  run_flexhash_table(artifact);
  artifact.write();
  memreal::bench::register_throughput(
      "combined_throughput/eps=1/32", "combined", 1.0 / 32,
      [](double eps, std::uint64_t seed) {
        memreal::MixedTinyLargeConfig c;
        c.capacity = kCap;
        c.eps = eps;
        c.churn_updates = 4'000;
        c.seed = seed;
        return memreal::make_mixed_tiny_large(c);
      });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
