// paper_figures — ASCII reproductions of the paper's Figures 1–4, rendered
// from *actual* allocator executions (not drawings): each panel snapshots
// the validating memory model before/after the depicted operation.
//
//   Figure 1: SIMPLE handling a delete via covering-set swap + inflation
//   Figure 2: GEO handling a delete (swap into level j*, compaction)
//   Figure 3: FLEXHASH rotating memory units to absorb external updates
//   Figure 4: RSUM repairing a delete with a subset-sum swap
#include <cmath>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>

#include "alloc/flexhash.h"
#include "alloc/geo.h"
#include "alloc/rsum.h"
#include "alloc/simple.h"
#include "core/engine.h"
#include "mem/memory.h"
#include "util/rng.h"

namespace {

using namespace memreal;

constexpr int kWidth = 96;

/// Renders the window [win_lo, win_hi) as a bar; each item shows as a
/// repeated letter (its id mod 26), free space as '.'.
std::string render_window(const Memory& mem, Tick win_lo, Tick win_hi,
                          const std::map<ItemId, char>* names = nullptr) {
  std::string bar(kWidth, '.');
  if (win_hi <= win_lo) return bar;
  const double scale = double(kWidth) / double(win_hi - win_lo);
  for (const auto& item : mem.snapshot()) {
    const Tick end = item.offset + item.extent;
    if (end <= win_lo || item.offset >= win_hi) continue;
    const Tick a = std::max(item.offset, win_lo) - win_lo;
    const Tick b = std::min(end, win_hi) - win_lo;
    const auto lo = static_cast<std::size_t>(double(a) * scale);
    auto hi = static_cast<std::size_t>(double(b) * scale);
    hi = std::min<std::size_t>(std::max(hi, lo + 1), kWidth);
    char c;
    if (names != nullptr && names->count(item.id)) {
      c = names->at(item.id);
    } else {
      c = static_cast<char>('a' + item.id % 26);
    }
    for (std::size_t i = lo; i < hi && i < bar.size(); ++i) bar[i] = c;
  }
  return bar;
}

std::string render(const Memory& mem, Tick span,
                   const std::map<ItemId, char>* names = nullptr) {
  return render_window(mem, 0, span, names);
}

void figure1_simple() {
  std::puts("\n--- Figure 1: SIMPLE handles a delete outside the covering "
            "set ---");
  std::puts("(I' from the covering set replaces I, inflates to |I|, and the "
            "covering set compacts)\n");
  const Tick cap = 1'000'000;
  const double eps = 1.0 / 27;  // eps^-1/3 = 3 classes, period 3
  ValidationPolicy policy;
  policy.audit_every_n_updates = 1;
  Memory mem(cap, static_cast<Tick>(eps * double(cap)), policy);
  SimpleAllocator simple(mem, eps);
  Engine engine(mem, simple);
  const Tick eps_t = mem.eps_ticks();
  // Six same-class items with visibly different sizes.
  for (ItemId i = 1; i <= 6; ++i) {
    engine.step(Update::insert(i, eps_t + 100 * i));
  }
  engine.step(Update::insert(7, eps_t + 50));  // forces a rebuild at 7
  const Tick span = mem.span_end() + eps_t / 2;
  std::printf("before delete:   %s\n", render(mem, span).c_str());
  // Delete a main-portion item.
  ItemId victim = kNoItem;
  for (ItemId i = 1; i <= 7; ++i) {
    if (mem.contains(i) && !simple.in_covering(i)) {
      victim = i;
      break;
    }
  }
  engine.step(Update::erase(victim, mem.size_of(victim)));
  std::printf("after  delete %c: %s\n",
              static_cast<char>('a' + victim % 26),
              render(mem, span).c_str());
  std::puts("(the swapped-in item occupies the deleted slot at inflated "
            "extent; suffix = covering set stays compact)");
}

void figure2_geo() {
  std::puts("\n--- Figure 2: GEO handles a delete via its nested levels ---");
  std::puts("(deleted item replaced by the smallest class member from level "
            "j*; that level compacts)\n");
  const Tick cap = Tick{1} << 40;
  const double eps = 1.0 / 16;
  ValidationPolicy policy;
  policy.audit_every_n_updates = 1;
  Memory mem(cap, static_cast<Tick>(eps * double(cap)), policy);
  GeoConfig gc;
  gc.eps = eps;
  GeoAllocator geo(mem, gc);
  Engine engine(mem, geo);
  Rng rng(5);
  // Non-huge sizes (below sqrt(eps)/100 = 0.0025 of memory).
  const auto base = static_cast<Tick>(0.0008 * double(cap));
  for (ItemId i = 1; i <= 14; ++i) {
    engine.step(Update::insert(i, base + rng.next_below(base / 2)));
  }
  const Tick span = mem.span_end() + mem.span_end() / 10;
  std::printf("before delete:   %s\n", render(mem, span).c_str());
  // Delete an item in the shallow part of memory (low offset).
  const ItemId victim = mem.snapshot().front().id;
  engine.step(Update::erase(victim, mem.size_of(victim)));
  std::printf("after  delete %c: %s\n",
              static_cast<char>('a' + victim % 26),
              render(mem, span).c_str());
  std::printf("(levels: %d, classes: %zu, level rebuilds so far: %zu)\n",
              geo.level_count(), geo.class_count(), geo.level_rebuilds());
}

void figure3_flexhash() {
  std::puts("\n--- Figure 3: FLEXHASH rotates memory units to absorb "
            "external updates ---");
  std::puts("(units are interchangeable; rotating one unit re-opens the "
            "buffer without moving the rest)\n");
  const Tick cap = Tick{1} << 40;
  const double eps = 1.0 / 8;
  ValidationPolicy policy;
  // Keep incremental overlap checks armed; only the resizable span bound
  // is N/A for standalone FLEXHASH (the engine re-wires it anyway).
  policy.check_resizable_bound = false;
  Memory mem(cap, static_cast<Tick>(eps * double(cap)), policy);
  FlexHashConfig fc;
  fc.eps = eps;
  fc.region_start = cap / 8;
  // Tiny bound = unit/16 so each unit holds ~32 items and stays visible at
  // this rendering scale.
  fc.max_tiny_size =
      static_cast<Tick>(std::pow(eps, 3.0) * double(cap)) / 16;
  FlexHashAllocator flex(mem, fc);
  Engine engine(mem, flex);
  const Tick s = flex.tiny().max_item_size() / 2;
  ItemId next = 1;
  for (int i = 0; i < 96; ++i) engine.step(Update::insert(next++, s));
  // Zoom onto the unit array (the per-type buffers dwarf it at full
  // scale); keep the same window before/after so the rotation is visible.
  const Tick m_sz = flex.unit_size();
  const Tick win_lo = flex.region_end() -
                      static_cast<Tick>(flex.unit_count() + 1) * m_sz;
  const Tick win_hi = flex.region_end() + 14 * m_sz;
  std::printf("units before:   %s\n",
              render_window(mem, win_lo, win_hi).c_str());
  // A large external push forces unit rotations.
  const Tick x = 3 * flex.unit_size() + flex.unit_size() / 3;
  for (int k = 0; k < 3; ++k) {
    mem.begin_update(x, true);
    flex.external_update(x, /*push_right=*/true);
    mem.end_update();
  }
  std::printf("units after 3x  %s\n",
              render_window(mem, win_lo, win_hi).c_str());
  std::printf("external pushes (rotations performed: %zu; region start "
              "moved right by %.1f units)\n",
              flex.rotations(),
              3.0 * double(x) / double(flex.unit_size()));
}

void figure4_rsum() {
  std::puts("\n--- Figure 4: RSUM repairs a delete with a subset-sum swap "
            "---");
  std::puts("(a subset of the last valid block fills the deleted "
            "neighbourhood; the suffix is pushed into the trash can)\n");
  const Tick cap = Tick{1} << 40;
  const double eps = 1.0 / 256;
  const double delta = 1.0 / 128;  // 32 items -> 4 blocks of m = 8
  ValidationPolicy policy;
  policy.audit_every_n_updates = 1;
  Memory mem(cap, static_cast<Tick>(eps * double(cap)), policy);
  RSumConfig rc;
  rc.eps = eps;
  rc.delta = delta;
  RSumAllocator rsum(mem, rc);
  Engine engine(mem, rsum);
  Rng rng(3);
  const auto lo = static_cast<Tick>(delta * double(cap));
  const std::size_t n = 32;  // floor(delta^-1/4)
  for (ItemId i = 1; i <= n; ++i) {
    engine.step(Update::insert(i, rng.next_in(lo, 2 * lo)));
  }
  // First delete triggers the initial rebuild (blocks formed), second
  // shows the subset swap.
  engine.step(Update::erase(1, mem.size_of(1)));
  const Tick span = mem.span_end() + mem.span_end() / 8;
  std::printf("blocks formed:   %s\n", render(mem, span).c_str());
  const ItemId victim = mem.snapshot().front().id;
  engine.step(Update::erase(victim, mem.size_of(victim)));
  std::printf("after delete %c:  %s\n",
              static_cast<char>('a' + victim % 26),
              render(mem, span).c_str());
  std::printf("(m = %zu items/block, valid blocks left: %zu, subset checks "
              "so far: %zu)\n",
              rsum.block_size(), rsum.valid_blocks(), rsum.compat_checks());
}

}  // namespace

int main() {
  std::puts("ASCII renderings of the paper's figures, generated from live "
            "allocator runs.");
  figure1_simple();
  figure2_geo();
  figure3_flexhash();
  figure4_rsum();
  return 0;
}
