// arena_server — the paper's systems motivation, made concrete.
//
// "The problem of minimizing movement overhead is especially important in
//  systems with many parallel readers, since objects may need to be locked
//  while they are being moved."  (Section 1)
//
// This example simulates a storage server holding variable-sized blobs in
// one contiguous arena while reader threads continuously access random
// blobs.  Every byte the allocator moves is a byte readers may block on.
// We run the same write workload (inserts/deletes of blobs) through the
// folklore baseline and the combined allocator and report:
//
//   * moved mass per updated mass (the paper's cost, = lock traffic), and
//   * reader stall events observed by the concurrent readers (a reader
//     stalls when the blob it wants moved within the last poll interval).
//
// The allocator with lower reallocation cost directly yields fewer stalls.
#include <atomic>
#include <cstdio>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "alloc/registry.h"
#include "core/engine.h"
#include "mem/memory.h"
#include "workload/churn.h"

namespace {

using namespace memreal;

struct SharedState {
  std::mutex mu;
  std::unordered_set<ItemId> recently_moved;  // since last reader poll
  std::vector<ItemId> live;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> reads{0};
  std::atomic<std::uint64_t> stalls{0};
};

void reader_loop(SharedState* shared, std::uint64_t seed) {
  Rng rng(seed);
  while (!shared->done.load(std::memory_order_relaxed)) {
    ItemId target = kNoItem;
    {
      std::lock_guard<std::mutex> lock(shared->mu);
      if (!shared->live.empty()) {
        target = shared->live[rng.next_below(shared->live.size())];
      }
    }
    if (target != kNoItem) {
      shared->reads.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(shared->mu);
      if (shared->recently_moved.count(target) > 0) {
        shared->stalls.fetch_add(1, std::memory_order_relaxed);
      }
    }
    std::this_thread::yield();
  }
}

void run_server(const std::string& allocator_name, const Sequence& seq) {
  ValidationPolicy policy;
  policy.audit_every_n_updates = 256;  // incremental checks run every update
  Memory mem(seq.capacity, seq.eps_ticks, policy);
  AllocatorParams params;
  params.eps = seq.eps;
  params.seed = 7;
  auto alloc = make_allocator(allocator_name, mem, params);

  SharedState shared;
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back(reader_loop, &shared, 100 + r);
  }

  EngineOptions opts;
  opts.on_update = [&](std::size_t, const Update& u, double) {
    // Publish layout changes to the readers: which blobs moved, which are
    // live.  (A real server would use fine-grained locks; the simulation
    // tracks the same information coarsely.)
    std::lock_guard<std::mutex> lock(shared.mu);
    shared.recently_moved.clear();
    shared.live.clear();
    for (const auto& item : mem.snapshot()) shared.live.push_back(item.id);
    if (!u.is_insert()) shared.recently_moved.insert(u.id);
  };
  Engine engine(mem, *alloc, opts);
  const RunStats stats = engine.run(seq.updates);

  shared.done.store(true);
  for (auto& t : readers) t.join();

  std::printf("%-18s moved/updated mass %7.2f   mean cost %7.2f   "
              "reads %8llu   stalls %6llu (%.3f%%)\n",
              allocator_name.c_str(), stats.ratio_cost(), stats.mean_cost(),
              static_cast<unsigned long long>(shared.reads.load()),
              static_cast<unsigned long long>(shared.stalls.load()),
              100.0 * double(shared.stalls.load()) /
                  double(std::max<std::uint64_t>(1, shared.reads.load())));
}

}  // namespace

int main() {
  std::printf("arena_server: contiguous blob arena under churn with 4 "
              "concurrent reader threads\n");
  std::printf("(moved mass == bytes readers must wait on; see Section 1 of "
              "the paper)\n\n");
  const double eps = 1.0 / 64;
  const Sequence seq =
      make_simple_regime(Tick{1} << 50, eps, 4'000, /*seed=*/3);
  for (const char* name : {"folklore-compact", "simple", "combined"}) {
    run_server(name, seq);
  }
  std::printf("\nlower movement => fewer reader stalls; SIMPLE/COMBINED "
              "beat the folklore baseline exactly as Theorem 3.1 / "
              "Corollary 4.10 predict.\n");
  return 0;
}
