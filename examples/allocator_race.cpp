// allocator_race — run every allocator on an identical workload and print
// a comparison table.  A CLI for quick exploration:
//
//   allocator_race [workload] [inv_eps] [updates] [seed]
//
//   workload: band | geo | mixed | random | sawtooth   (default: band)
//   inv_eps : 1/eps (default 64)
//   updates : churn length (default 5000)
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "alloc/registry.h"
#include "core/engine.h"
#include "mem/memory.h"
#include "util/table.h"
#include "workload/adversarial.h"
#include "workload/churn.h"
#include "workload/random_item.h"

namespace {

using namespace memreal;

Sequence build_workload(const std::string& kind, Tick cap, double eps,
                        std::size_t updates, std::uint64_t seed) {
  if (kind == "geo") {
    GeoRegimeConfig c;
    c.capacity = cap;
    c.eps = eps;
    c.churn_updates = updates;
    c.seed = seed;
    return make_geo_regime(c);
  }
  if (kind == "mixed") {
    MixedTinyLargeConfig c;
    c.capacity = cap;
    c.eps = eps;
    c.churn_updates = updates;
    c.seed = seed;
    return make_mixed_tiny_large(c);
  }
  if (kind == "random") {
    RandomItemConfig c;
    c.capacity = cap;
    c.eps = eps;
    c.churn_pairs = updates / 2;
    c.seed = seed;
    return make_random_item_sequence(c);
  }
  if (kind == "sawtooth") {
    SawtoothConfig c;
    c.capacity = cap;
    c.eps = eps;
    c.teeth = 3;
    c.seed = seed;
    return make_sawtooth(c);
  }
  return make_simple_regime(cap, eps, updates, seed);
}

/// Which allocators can serve a given workload's size regime?
bool admissible(const std::string& allocator, const std::string& workload,
                double eps) {
  if (allocator == "simple") {
    return workload == "band" || workload == "sawtooth";
  }
  if (allocator == "rsum") return workload == "random";
  if (allocator == "discrete") return false;  // needs a fixed size palette
  if (allocator == "tinyslab" || allocator == "flexhash") return false;
  if (allocator == "geo" || allocator == "combined") {
    // eps^5 tick resolution at 2^50 capacity.
    return eps >= 1.0 / 512 || workload == "random";
  }
  (void)eps;
  return true;  // folklore variants take anything
}

}  // namespace

int main(int argc, char** argv) {
  const std::string kind = argc > 1 ? argv[1] : "band";
  const double inv_eps = argc > 2 ? std::atof(argv[2]) : 64.0;
  const std::size_t updates =
      argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 5'000;
  const std::uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10)
                                      : 1;
  const double eps = 1.0 / inv_eps;
  const Tick cap = Tick{1} << 50;

  std::printf(
      "allocator_race: workload=%s 1/eps=%.0f updates=%zu seed=%llu\n\n",
      kind.c_str(), inv_eps, updates,
      static_cast<unsigned long long>(seed));
  const Sequence seq = build_workload(kind, cap, eps, updates, seed);

  Table t({"allocator", "updates", "mean cost", "ratio cost", "p99", "max",
           "wall us/upd"});
  for (const std::string& name : allocator_names()) {
    if (!admissible(name, kind, eps)) continue;
    ValidationPolicy policy;
    policy.audit_every_n_updates = 512;
    Memory mem(seq.capacity, seq.eps_ticks, policy);
    AllocatorParams params;
    params.eps = eps;
    params.seed = seed;
    auto alloc = make_allocator(name, mem, params);
    Engine engine(mem, *alloc);
    RunStats s = engine.run(seq.updates);
    t.add_row({name, std::to_string(s.updates),
               Table::num(s.mean_cost(), 4), Table::num(s.ratio_cost(), 4),
               Table::num(s.cost_quantiles.quantile(0.99), 4),
               Table::num(s.max_cost(), 4),
               Table::num(s.wall_seconds * 1e6 /
                              double(std::max<std::size_t>(1, s.updates)),
                          3)});
  }
  t.print(std::cout);
  return 0;
}
