// job_scheduler — the scheduling interpretation of memory reallocation.
//
// The related work the paper builds on (Bender et al., "Reallocation
// problems in scheduling") views memory as a shared resource axis: each
// "item" is a job that needs a contiguous band of the resource (cores on a
// rack, spectrum, a GPU's SM range), and moving a job mid-flight costs
// proportional to its size (checkpoint + restore).  Jobs arrive and finish
// online; the scheduler must keep bands disjoint and the axis compact.
//
// This example runs a Poisson-ish arrival/departure process of jobs with
// sizes in [eps, 2eps) of the axis through SIMPLE and the folklore
// baseline and reports total "migration volume" — the checkpoint traffic a
// cluster operator would pay.
#include <cstdio>
#include <queue>

#include "alloc/registry.h"
#include "core/engine.h"
#include "mem/memory.h"
#include "util/rng.h"
#include "workload/sequence.h"

namespace {

using namespace memreal;

Sequence make_job_trace(Tick capacity, double eps, std::size_t events,
                        std::uint64_t seed) {
  SequenceBuilder b("jobs", capacity, eps);
  Rng rng(seed);
  const auto lo = static_cast<Tick>(eps * double(capacity));
  const Tick hi = 2 * lo - 1;
  // Each live job gets a random remaining duration; at each event either a
  // new job arrives (if it fits) or the job with the earliest deadline
  // finishes.
  std::priority_queue<std::pair<std::uint64_t, std::size_t>,
                      std::vector<std::pair<std::uint64_t, std::size_t>>,
                      std::greater<>>
      deadlines;  // (finish time, live index at creation) — index drifts,
                  // so we re-pick by id at pop time.
  std::uint64_t clock = 0;
  for (std::size_t e = 0; e < events; ++e) {
    ++clock;
    const bool arrive = rng.next_below(100) < 55 || b.live_count() == 0;
    const Tick size = rng.next_in(lo, hi);
    if (arrive && b.can_insert(size)) {
      b.insert(size);
    } else if (b.live_count() > 0) {
      b.erase_random(rng);  // a job completes
    }
  }
  (void)deadlines;
  return b.take();
}

}  // namespace

int main() {
  std::printf("job_scheduler: contiguous-band scheduling with online job "
              "arrivals/departures\n");
  std::printf("(cost = migration volume / job size; the scheduling face of "
              "the Memory Reallocation Problem)\n\n");

  const Tick capacity = Tick{1} << 50;  // the resource axis
  std::printf("%8s  %-18s %12s %12s %14s\n", "1/eps", "scheduler",
              "mean cost", "max cost", "migrated/total");
  for (double eps : {1.0 / 64, 1.0 / 256, 1.0 / 1024}) {
    const Sequence trace = make_job_trace(capacity, eps, 8'000, 11);
    for (const char* name : {"folklore-compact", "simple"}) {
      ValidationPolicy policy;
      policy.audit_every_n_updates = 512;
      Memory mem(trace.capacity, trace.eps_ticks, policy);
      AllocatorParams params;
      params.eps = eps;
      params.seed = 5;
      auto alloc = make_allocator(name, mem, params);
      Engine engine(mem, *alloc);
      const RunStats s = engine.run(trace.updates);
      std::printf("%8.0f  %-18s %12.3f %12.3f %14.3f\n", 1.0 / eps, name,
                  s.mean_cost(), s.max_cost(), s.ratio_cost());
    }
  }
  std::printf("\nSIMPLE keeps migration volume at O(eps^-2/3) per job event "
              "(Theorem 3.1); the folklore scheduler degrades like "
              "eps^-1.\n");
  return 0;
}
