// Quickstart: the smallest complete use of the memreal public API.
//
//   1. Create a validating Memory with capacity and free-space parameter.
//   2. Pick an allocator (here: the combined allocator of Corollary 4.10,
//      which handles arbitrary item sizes at expected O~(eps^-1/2) cost).
//   3. Drive it through inserts and deletes via the Engine, which accounts
//      the paper's cost metric (mass moved / update size) and validates
//      every layout invariant.
//
// Build & run:  ./examples/quickstart
#include <cmath>
#include <cstdio>

#include "alloc/registry.h"
#include "core/engine.h"
#include "mem/memory.h"

int main() {
  using namespace memreal;

  // Memory is the real interval [0, 1] discretized to 2^50 ticks.
  // eps = 1/32: the adversary keeps total live mass <= 1 - eps.
  const Tick capacity = Tick{1} << 50;
  const double eps = 1.0 / 32;
  ValidationPolicy policy;
  policy.audit_every_n_updates = 1;  // full audit (plus the always-on
                                     // incremental checks) every update
  Memory memory(capacity, static_cast<Tick>(eps * double(capacity)), policy);

  AllocatorParams params;
  params.eps = eps;
  params.seed = 42;
  auto allocator = make_allocator("combined", memory, params);
  Engine engine(memory, *allocator);

  // A large item (goes to GEO), a tiny one (goes to FLEXHASH), and churn.
  const Tick large = capacity / 100;
  const Tick tiny =
      static_cast<Tick>(std::pow(eps, 4.0) * double(capacity) / 32);

  double c1 = engine.step(Update::insert(/*id=*/1, large));
  double c2 = engine.step(Update::insert(/*id=*/2, tiny));
  double c3 = engine.step(Update::insert(/*id=*/3, large / 2));
  double c4 = engine.step(Update::erase(/*id=*/1, large));

  std::printf("insert large : cost %.3f (mass moved / item size)\n", c1);
  std::printf("insert tiny  : cost %.3f\n", c2);
  std::printf("insert large : cost %.3f\n", c3);
  std::printf("delete large : cost %.3f\n", c4);

  const RunStats& stats = engine.stats();
  std::printf("\nafter %zu updates: %zu items, live mass %.6f of memory,\n",
              stats.updates, memory.item_count(),
              double(memory.live_mass()) / double(capacity));
  std::printf("layout span %.6f  <=  live + eps = %.6f  (resizable bound)\n",
              double(memory.span_end()) / double(capacity),
              double(memory.live_mass() + memory.eps_ticks()) /
                  double(capacity));
  std::printf("mean cost %.3f, max cost %.3f\n", stats.mean_cost(),
              stats.max_cost());

  // The memory model throws InvariantViolation if the allocator ever
  // overlaps items or breaks the resizable bound — it hasn't.
  memory.audit();
  std::printf("\nall invariants verified. quickstart done.\n");
  return 0;
}
