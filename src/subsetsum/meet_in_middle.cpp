#include <algorithm>
#include <bit>

#include "subsetsum/subsetsum.h"
#include "util/check.h"

namespace memreal {

namespace {

struct HalfSum {
  Tick sum;
  std::uint32_t mask;
  std::uint8_t card;
};

/// Enumerates all subset sums of `half` (including the empty subset).
std::vector<HalfSum> enumerate_half(std::span<const Tick> half) {
  const std::size_t m = half.size();
  std::vector<HalfSum> out;
  out.reserve(std::size_t{1} << m);
  out.push_back(HalfSum{0, 0, 0});
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t sz = out.size();
    for (std::size_t j = 0; j < sz; ++j) {
      HalfSum h = out[j];
      h.sum += half[i];
      h.mask |= (std::uint32_t{1} << i);
      h.card = static_cast<std::uint8_t>(h.card + 1);
      out.push_back(h);
    }
  }
  return out;
}

std::optional<SubsetResult> build_result(std::span<const Tick> values,
                                         std::uint32_t left_mask,
                                         std::size_t left_size,
                                         std::uint32_t right_mask, Tick sum) {
  SubsetResult r;
  r.sum = sum;
  for (std::size_t i = 0; i < left_size; ++i) {
    if (left_mask & (std::uint32_t{1} << i)) r.indices.push_back(i);
  }
  for (std::size_t i = 0; left_size + i < values.size(); ++i) {
    if (right_mask & (std::uint32_t{1} << i)) {
      r.indices.push_back(left_size + i);
    }
  }
  return r;
}

}  // namespace

std::optional<SubsetResult> subset_in_range_mitm(
    std::span<const Tick> values, Tick lo, Tick hi,
    std::optional<std::size_t> cardinality) {
  MEMREAL_CHECK(lo <= hi);
  MEMREAL_CHECK_MSG(values.size() <= 48, "mitm limited to m <= 48");
  const std::size_t m = values.size();
  if (m == 0) return std::nullopt;
  const std::size_t left_size = m / 2;

  auto left = enumerate_half(values.subspan(0, left_size));
  auto right = enumerate_half(values.subspan(left_size));

  // Right halves sorted by (cardinality, sum) so both the unconstrained
  // search (scan all cardinalities) and the exact-cardinality search use
  // the same sorted buckets.
  std::sort(right.begin(), right.end(), [](const HalfSum& a, const HalfSum& b) {
    if (a.card != b.card) return a.card < b.card;
    return a.sum < b.sum;
  });
  // Bucket boundaries per cardinality.
  const std::size_t right_m = m - left_size;
  std::vector<std::size_t> bucket_begin(right_m + 2, right.size());
  for (std::size_t i = right.size(); i-- > 0;) {
    bucket_begin[right[i].card] = i;
  }
  for (std::size_t c = right_m + 1; c-- > 0;) {
    if (bucket_begin[c] == right.size() && c + 1 <= right_m + 1) {
      bucket_begin[c] = bucket_begin[c + 1];
    }
  }

  auto search_bucket = [&](std::size_t card, Tick want_lo,
                           Tick want_hi) -> const HalfSum* {
    const std::size_t b = bucket_begin[card];
    const std::size_t e = bucket_begin[card + 1];
    auto it = std::lower_bound(
        right.begin() + static_cast<std::ptrdiff_t>(b),
        right.begin() + static_cast<std::ptrdiff_t>(e), want_lo,
        [](const HalfSum& h, Tick v) { return h.sum < v; });
    if (it != right.begin() + static_cast<std::ptrdiff_t>(e) &&
        it->sum <= want_hi) {
      return &*it;
    }
    return nullptr;
  };

  for (const HalfSum& l : left) {
    if (l.sum > hi) continue;
    const Tick want_lo = lo > l.sum ? lo - l.sum : 0;
    const Tick want_hi = hi - l.sum;
    if (cardinality) {
      if (l.card > *cardinality) continue;
      const std::size_t need = *cardinality - l.card;
      if (need > right_m) continue;
      if (const HalfSum* r = search_bucket(need, want_lo, want_hi)) {
        if (l.mask == 0 && r->mask == 0) continue;  // exclude empty subset
        return build_result(values, l.mask, left_size, r->mask,
                            l.sum + r->sum);
      }
    } else {
      for (std::size_t c = 0; c <= right_m; ++c) {
        if (const HalfSum* r = search_bucket(c, want_lo, want_hi)) {
          if (l.mask == 0 && r->mask == 0) continue;
          return build_result(values, l.mask, left_size, r->mask,
                              l.sum + r->sum);
        }
      }
    }
  }
  return std::nullopt;
}

bool has_subset_in_range(std::span<const Tick> values, Tick lo, Tick hi,
                         std::optional<std::size_t> cardinality) {
  return subset_in_range_mitm(values, lo, hi, cardinality).has_value();
}

}  // namespace memreal
