#include <bit>

#include "subsetsum/subsetsum.h"
#include "util/check.h"

namespace memreal {

std::optional<SubsetResult> subset_in_range_brute(
    std::span<const Tick> values, Tick lo, Tick hi,
    std::optional<std::size_t> cardinality) {
  MEMREAL_CHECK(lo <= hi);
  MEMREAL_CHECK_MSG(values.size() <= 30, "brute force limited to m <= 30");
  const std::size_t m = values.size();
  const std::uint64_t limit = std::uint64_t{1} << m;
  for (std::uint64_t mask = 1; mask < limit; ++mask) {
    if (cardinality &&
        static_cast<std::size_t>(std::popcount(mask)) != *cardinality) {
      continue;
    }
    Tick sum = 0;
    for (std::size_t i = 0; i < m; ++i) {
      if (mask & (std::uint64_t{1} << i)) sum += values[i];
    }
    if (sum >= lo && sum <= hi) {
      SubsetResult r;
      r.sum = sum;
      for (std::size_t i = 0; i < m; ++i) {
        if (mask & (std::uint64_t{1} << i)) r.indices.push_back(i);
      }
      return r;
    }
  }
  return std::nullopt;
}

}  // namespace memreal
