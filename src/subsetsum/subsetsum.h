// Subset-sum-in-interval solvers.
//
// RSUM (Section 6) repeatedly asks: given the m ~ log(eps^-1) item sizes of
// a block, is there a subset whose sum lands in [lo, hi]?  Theorem 6.2
// proves a random block answers "yes" with probability Omega(1) for the
// window the algorithm uses; the implementation lemma inside Theorem 6.1
// notes this is computable in O(eps^-1/2) = O(2^{m/2}) time via meet in the
// middle.
//
// Two engines share one interface:
//   * brute force  — O(2^m), the oracle used by tests;
//   * meet in the middle — O(2^{m/2} * m), used by RSUM.
// Both support an optional exact-cardinality constraint (Theorem 6.2 talks
// about (m/2)-element subsets).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/types.h"

namespace memreal {

/// A found subset: indices into the input array plus the achieved sum.
struct SubsetResult {
  std::vector<std::size_t> indices;
  Tick sum = 0;
};

/// Brute force over all 2^m subsets (m <= 30 enforced).  Returns the first
/// subset found with sum in [lo, hi]; empty optional if none exists.
/// If `cardinality` is set, only subsets of exactly that many elements are
/// considered.  The empty subset is never returned (RSUM always swaps a
/// non-empty set).
[[nodiscard]] std::optional<SubsetResult> subset_in_range_brute(
    std::span<const Tick> values, Tick lo, Tick hi,
    std::optional<std::size_t> cardinality = std::nullopt);

/// Meet-in-the-middle: O(2^{m/2}) space and near-linearithmic time in the
/// half-enumerations.  Same contract as the brute-force engine.
[[nodiscard]] std::optional<SubsetResult> subset_in_range_mitm(
    std::span<const Tick> values, Tick lo, Tick hi,
    std::optional<std::size_t> cardinality = std::nullopt);

/// True iff *some* subset (per the same contract) exists; convenience
/// wrapper used by benches that only need the decision bit.
[[nodiscard]] bool has_subset_in_range(std::span<const Tick> values, Tick lo,
                                       Tick hi,
                                       std::optional<std::size_t> cardinality =
                                           std::nullopt);

}  // namespace memreal
