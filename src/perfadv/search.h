// The adversarial performance search: reuse the fuzzer's
// mutate-and-repair machinery (src/fuzz) with a *performance* objective —
// maximize a sequence's realized cost ratio against the allocator-
// independent lower-bound floor from src/lb (sequence_cost_floor):
//
//   ratio(seq) = (sum_i L_i/k_i realized by the allocator) / #inserts
//
// The loop seeds a population from the scenario zoo (plus any planted
// extra seeds), hill-climbs with mutate_sequence (accepting mutants that
// beat their parent, and occasionally near-best mutants for novelty), and
// finally runs a *cost-preserving* ddmin shrink: the shrink predicate
// keeps every candidate realizing >= shrink_retain of the found ratio, so
// the reproducer stays adversarial while dropping everything incidental.
//
// Determinism: every random stream is a pure function of (seed,
// allocator, stream index) via the fuzzer's iteration_seed/target_seed
// derivation, so a search is bit-reproducible and a campaign over many
// allocators is thread-count-invariant.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "alloc/registry.h"
#include "workload/sequence.h"

namespace memreal {

/// The eps run_adv_search uses for `info`: the explicit request when
/// `requested > 0`, else the registry default doubled (capped at
/// info.max_eps) until the allocator's average band size keeps zoo fill
/// phases searchable — TINYSLAB-family bands (sizes <= eps^4 of capacity)
/// need ~eps^-4 fill items regardless of capacity.
[[nodiscard]] double adv_search_eps(const AllocatorInfo& info,
                                    double requested, Tick capacity);

struct AdvObjective {
  double ratio = 0;       ///< total_cost / floor (0 when no inserts)
  double total_cost = 0;  ///< sum of per-update L/k realized by the run
  double floor = 0;       ///< sequence_cost_floor().cost_floor
};

/// Runs `seq` through a cell of (allocator, engine) and scores it.  The
/// release engine is bit-identical on the cost channel (ctest -L release)
/// and ~10x faster, so searches default to it.
[[nodiscard]] AdvObjective evaluate_adversary(const Sequence& seq,
                                              const std::string& allocator,
                                              const std::string& engine,
                                              std::uint64_t alloc_seed);

struct AdvSearchConfig {
  std::string allocator = "folklore-compact";
  std::string engine = "release";  ///< evaluation engine
  Tick capacity = Tick{1} << 40;
  double eps = 0;  ///< 0 = the allocator's registry default
  /// Length budget for zoo-seeded sequences (churn updates after fill).
  std::size_t updates = 300;
  /// Mutation evaluations after the seed round (also capped by
  /// max_search_work).
  std::size_t iterations = 300;
  std::size_t max_edits = 4;  ///< mutator edits per mutant
  /// Zoo scenarios to seed from; empty = every compatible scenario.
  /// Throws (listing the compatible set) when a named scenario cannot
  /// serve the allocator.
  std::vector<std::string> scenarios;
  /// Planted seeds joining the initial population (tests; not part of
  /// the zoo baseline).  Must share capacity/eps with the config.
  std::vector<Sequence> extra_seeds;
  std::uint64_t seed = 1;
  bool shrink = true;
  double shrink_retain = 0.9;  ///< shrunk ratio >= retain * found ratio
  std::size_t max_shrink_checks = 1'500;
  /// Work ceilings, in simulation-work units (one unit ~ one tick of moved
  /// mass or one update stepped).  Simulation time scales with realized
  /// cost, not update count — a GEO evaluation moves ~100x the mass of a
  /// folklore one — so budgeting *work* keeps wall time uniform across
  /// allocators.  The seed round is exempt (every scenario must be scored
  /// to fix the baseline); the hill climb stops once its spent work
  /// exceeds max_search_work, and the shrink's check ceiling is derived
  /// from max_shrink_work and the cost of re-evaluating the found best.
  double max_search_work = 50e6;
  double max_shrink_work = 25e6;
};

struct AdvResult {
  std::string allocator;
  std::string engine;
  double eps = 0;
  std::uint64_t seed = 1;        ///< campaign seed (config.seed)
  std::uint64_t alloc_seed = 1;  ///< derived allocator randomness
  std::string baseline_scenario;  ///< best zoo seed's scenario
  double baseline_ratio = 0;      ///< best ratio among zoo seeds alone
  double found_ratio = 0;         ///< best ratio after the search
  double shrunk_ratio = 0;        ///< ratio realized by `adversary`
  std::size_t original_updates = 0;  ///< pre-shrink length of the best
  std::size_t shrunk_updates = 0;    ///< adversary.size()
  std::size_t evaluations = 0;       ///< objective evaluations spent
  bool shrink_minimal = false;       ///< ddmin reached a local minimum
  double budget_ceiling = 0;  ///< CostBudget::bound(eps) for the target
  Sequence adversary;  ///< the shrunk reproducer (the found best when
                       ///< shrinking is disabled)

  /// Search gain over the best zoo seed.
  [[nodiscard]] double gain() const {
    return baseline_ratio > 0 ? found_ratio / baseline_ratio : 0.0;
  }
};

/// Runs the guided search for one allocator.  Deterministic: identical
/// config yields a bit-identical result.
[[nodiscard]] AdvResult run_adv_search(const AdvSearchConfig& config);

}  // namespace memreal
