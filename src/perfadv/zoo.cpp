#include "perfadv/zoo.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "workload/adversarial.h"
#include "workload/churn.h"
#include "workload/multi_tenant.h"
#include "workload/storage.h"
#include "workload/vm_heap.h"

namespace memreal {

namespace {

/// Default band when the caller left it at 0, matching the generators'
/// own defaults: [eps, 2eps) of capacity.
void resolve_band(const ScenarioParams& p, Tick* lo, Tick* hi) {
  const auto cap_d = static_cast<double>(p.capacity);
  *lo = p.min_size != 0
            ? p.min_size
            : std::max<Tick>(1, static_cast<Tick>(p.eps * cap_d));
  *hi = p.max_size != 0 ? p.max_size
                        : static_cast<Tick>(2.0 * p.eps * cap_d) - 1;
  MEMREAL_CHECK_MSG(*lo >= 1 && *lo <= *hi,
                    "degenerate scenario band [" << *lo << ", " << *hi
                                                 << "]");
}

std::string known_scenarios() {
  std::string names;
  for (const std::string& n : scenario_names()) {
    if (!names.empty()) names += ", ";
    names += n;
  }
  return names;
}

}  // namespace

const std::vector<ScenarioInfo>& scenario_infos() {
  static const std::vector<ScenarioInfo> kInfos = {
      {"churn", "steady-state banded churn near the target load", 1.0, true,
       false},
      {"sawtooth", "load repeatedly grows to the high mark then drains",
       1.0, /*palette_ok=*/false, false},
      {"fragmenter",
       "scatter-freed layout + gap-defeating inserts (folklore's worst "
       "case)",
       1.6, true, false, /*fill_on_min=*/true},
      {"multi_tenant_zipf",
       "tenant-partitioned size band with Zipf-weighted tenant activity",
       1.0, true, false},
      {"db_page_churn",
       "cost-oblivious page resizing on a doubling size ladder (Bender et "
       "al.)",
       4.0, true, false, /*fill_on_min=*/true},
      {"defrag_burst",
       "scatter-free fragmentation waves answered by compaction refills "
       "(Fekete et al.)",
       1.0, true, false},
      {"vm_heap",
       "byte-addressed GC heap: grow-realloc chains, generational death, "
       "compaction bursts",
       1.0, true, /*byte_mode=*/true},
  };
  return kInfos;
}

std::vector<std::string> scenario_names() {
  std::vector<std::string> names;
  names.reserve(scenario_infos().size());
  for (const ScenarioInfo& s : scenario_infos()) names.push_back(s.name);
  return names;
}

const ScenarioInfo* find_scenario(const std::string& name) {
  for (const ScenarioInfo& s : scenario_infos()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

Sequence make_scenario(const std::string& name, const ScenarioParams& p) {
  const ScenarioInfo* info = find_scenario(name);
  MEMREAL_CHECK_MSG(info != nullptr, "unknown scenario '"
                                         << name << "' (registered: "
                                         << known_scenarios() << ")");
  MEMREAL_CHECK_MSG(!(p.fixed_palette && !info->palette_ok),
                    "scenario '" << name
                                 << "' cannot emit a fixed size palette");
  Tick lo = 0;
  Tick hi = 0;
  resolve_band(p, &lo, &hi);

  if (name == "churn") {
    if (p.fixed_palette) {
      DiscreteChurnConfig c;
      c.capacity = p.capacity;
      c.eps = p.eps;
      c.distinct_sizes = p.palette;
      c.min_size = lo;
      c.max_size = hi;
      c.target_load = p.target_load;
      c.churn_updates = p.updates;
      c.seed = p.seed;
      return make_discrete_churn(c);
    }
    ChurnConfig c;
    c.capacity = p.capacity;
    c.eps = p.eps;
    c.min_size = lo;
    c.max_size = hi;
    c.target_load = p.target_load;
    c.churn_updates = p.updates;
    c.seed = p.seed;
    return make_churn(c);
  }
  if (name == "sawtooth") {
    SawtoothConfig c;
    c.capacity = p.capacity;
    c.eps = p.eps;
    c.min_size = lo;
    c.max_size = hi;
    // One tooth is roughly two fill/drain sweeps of the live set; pick
    // the tooth count that lands near the requested update budget.
    const double avg =
        static_cast<double>(lo) / 2.0 + static_cast<double>(hi) / 2.0;
    const double per_tooth =
        2.0 * 0.8 *
        static_cast<double>(p.capacity) / std::max(1.0, avg);
    c.teeth = std::clamp<std::size_t>(
        static_cast<std::size_t>(static_cast<double>(p.updates) /
                                 std::max(1.0, per_tooth)),
        1, 16);
    c.seed = p.seed;
    return make_sawtooth(c);
  }
  if (name == "fragmenter") {
    FragmenterConfig c;
    c.capacity = p.capacity;
    c.eps = p.eps;
    c.small_size = lo;
    // A round is a fill + scatter-free + refill + drain cycle over the
    // live set; scale rounds to the update budget.
    const double per_round = 2.5 * 0.85 *
                             static_cast<double>(p.capacity) /
                             static_cast<double>(std::max<Tick>(1, lo));
    c.rounds = std::clamp<std::size_t>(
        static_cast<std::size_t>(static_cast<double>(p.updates) /
                                 std::max(1.0, per_round)),
        1, 16);
    c.seed = p.seed;
    return make_fragmenter(c);
  }
  if (name == "multi_tenant_zipf") {
    if (p.fixed_palette) {
      // Fixed-palette allocators must see a small reused size set; model
      // the tenant skew as Zipf weights over the palette.
      DiscreteChurnConfig c;
      c.capacity = p.capacity;
      c.eps = p.eps;
      c.distinct_sizes = p.palette;
      c.min_size = lo;
      c.max_size = hi;
      c.zipf_s = p.zipf_s;
      c.target_load = p.target_load;
      c.churn_updates = p.updates;
      c.seed = p.seed;
      return make_discrete_churn(c);
    }
    MultiTenantConfig c;
    c.capacity = p.capacity;
    c.eps = p.eps;
    c.tenants = p.tenants;
    c.zipf_s = p.zipf_s;
    c.min_size = lo;
    c.max_size = hi;
    c.target_load = p.target_load;
    c.churn_updates = p.updates;
    c.seed = p.seed;
    return make_multi_tenant(c);
  }
  if (name == "db_page_churn") {
    DbPageChurnConfig c;
    c.capacity = p.capacity;
    c.eps = p.eps;
    c.min_page = lo;
    c.max_page = hi;
    c.target_load = p.target_load;
    c.churn_updates = p.updates;
    c.seed = p.seed;
    return make_db_page_churn(c);
  }
  if (name == "defrag_burst") {
    DefragBurstConfig c;
    c.capacity = p.capacity;
    c.eps = p.eps;
    c.min_size = lo;
    c.max_size = hi;
    c.palette = p.fixed_palette ? p.palette : 0;
    c.high_load = std::max(p.target_load, 0.7);
    c.churn_updates = p.updates;
    c.seed = p.seed;
    return make_defrag_burst(c);
  }
  MEMREAL_CHECK(name == "vm_heap");
  const Tick bpt = p.bytes_per_tick;
  VmHeapConfig c;
  c.capacity = p.capacity;
  c.eps = p.eps;
  c.bytes_per_tick = bpt;
  // Byte band derived from the tick band: the smallest byte size that
  // still rounds up to lo ticks, up to the largest fitting hi ticks.
  c.min_bytes = (lo - 1) * bpt + 1;
  c.max_bytes = hi * bpt;
  c.distinct_sizes = p.fixed_palette ? p.palette : 0;
  c.target_load = p.target_load;
  c.churn_updates = p.updates;
  c.seed = p.seed;
  return make_vm_heap(c);
}

ScenarioParams scenario_params_for(const AllocatorInfo& info, double eps,
                                   Tick capacity, std::size_t updates,
                                   std::uint64_t seed) {
  ScenarioParams p;
  p.capacity = capacity;
  p.eps = eps;
  Tick lo = info.sizes.min_size(eps, capacity);
  const Tick hi = info.sizes.max_size(eps, capacity) - 1;
  // Universal allocators serve any well-formed sequence; widen the band
  // downward so ladder scenarios (db_page_churn) get their doublings.
  if (info.universal) lo = std::max<Tick>(1, lo / 4);
  p.min_size = std::min(lo, hi);
  p.max_size = hi;
  p.fixed_palette = info.sizes.fixed_palette;
  p.updates = updates;
  p.seed = seed;
  return p;
}

WorkloadShape scenario_shape(const ScenarioInfo& info,
                             const ScenarioParams& p) {
  Tick lo = 0;
  Tick hi = 0;
  resolve_band(p, &lo, &hi);
  WorkloadShape shape;
  shape.min_size = lo;
  // The fragmenter emits exactly {small, small + small/2 + 1}.
  shape.max_size = info.name == "fragmenter" ? lo + lo / 2 + 1 : hi;
  shape.fixed_palette = p.fixed_palette && info.palette_ok;
  return shape;
}

std::string scenario_incompatibility(const std::string& name,
                                     const AllocatorInfo& info, double eps,
                                     Tick capacity) {
  const ScenarioInfo* s = find_scenario(name);
  MEMREAL_CHECK_MSG(s != nullptr, "unknown scenario '"
                                      << name << "' (registered: "
                                      << known_scenarios() << ")");
  if (info.sizes.fixed_palette && !s->palette_ok) {
    return name + ": free-sampling scenario cannot serve fixed-palette "
                  "allocator " +
           info.name;
  }
  const ScenarioParams p =
      scenario_params_for(info, eps, capacity, /*updates=*/1, /*seed=*/1);
  const double ratio = static_cast<double>(p.max_size) /
                       static_cast<double>(std::max<Tick>(1, p.min_size));
  if (ratio + 1e-9 < s->min_band_ratio) {
    return name + ": needs a size-band ratio >= " +
           std::to_string(s->min_band_ratio) + "; " + info.name +
           "'s band [" + std::to_string(p.min_size) + ", " +
           std::to_string(p.max_size) + "] has ratio " +
           std::to_string(ratio);
  }
  // Fill feasibility: a seed fills toward the target load one item at a
  // time, so its length scales as load * capacity / item size.  Bands that
  // are tiny relative to capacity (TINYSLAB-family, sizes <= eps^4) would
  // need millions of fill updates — unsearchable, so incompatible.
  const WorkloadShape shape = scenario_shape(*s, p);
  const double fill_size =
      s->fill_on_min ? static_cast<double>(shape.min_size)
                     : (static_cast<double>(shape.min_size) +
                        static_cast<double>(shape.max_size)) /
                           2.0;
  const double est_fill =
      0.8 * static_cast<double>(capacity) / std::max(1.0, fill_size);
  if (est_fill > static_cast<double>(kMaxScenarioSeedUpdates)) {
    return name + ": fill phase would need ~" +
           std::to_string(static_cast<unsigned long long>(est_fill)) +
           " updates at " + info.name + "'s size band (cap " +
           std::to_string(kMaxScenarioSeedUpdates) +
           "); raise eps or shrink capacity";
  }
  std::string why;
  if (!info.serves(shape, eps, capacity, &why)) return why;
  return "";
}

std::vector<std::string> compatible_scenarios(const AllocatorInfo& info,
                                              double eps, Tick capacity) {
  std::vector<std::string> names;
  for (const ScenarioInfo& s : scenario_infos()) {
    if (scenario_incompatibility(s.name, info, eps, capacity).empty()) {
      names.push_back(s.name);
    }
  }
  return names;
}

}  // namespace memreal
