// The adversarial campaign driver: one run_adv_search per target
// allocator, fanned out over parallel_for.  Each search derives every
// random stream from (campaign seed, allocator name) alone, so the
// campaign is thread-count-invariant and any member can be reproduced
// bit-exactly by a single-allocator run with the same seed.
//
// Shrunk adversaries are persisted as corpus entries (kind "perf-ratio")
// whose metadata records the evaluation engine and the realized ratio to
// full precision; replay_adversaries re-runs each committed trace against
// its recorded allocator and checks the ratio has not regressed.
#pragma once

#include <string>
#include <vector>

#include "perfadv/search.h"

namespace memreal {

/// Corpus `kind` tag for performance adversaries (vs the fuzzer's
/// FailureKind tags).
inline constexpr const char* kAdvCorpusKind = "perf-ratio";

struct AdvCampaignConfig {
  /// Per-target search parameters; `base.allocator` is ignored (replaced
  /// by each campaign member).
  AdvSearchConfig base;
  /// Registry names to attack; empty = every fuzz_default registration.
  std::vector<std::string> allocators;
  std::size_t threads = 0;  ///< 0 = all cores
  /// Directory for shrunk adversaries; empty = don't persist.
  std::string corpus_dir;
};

struct AdvCampaign {
  std::vector<AdvResult> results;  ///< one per allocator, campaign order
  /// Parallel to `results`; "" when not persisted (no corpus_dir, or the
  /// search found nothing better than an empty sequence).
  std::vector<std::string> corpus_paths;
};

/// Runs the campaign.  Deterministic: identical config (minus threads)
/// yields bit-identical results and byte-identical corpus files.
[[nodiscard]] AdvCampaign run_adv_campaign(const AdvCampaignConfig& config);

/// One committed adversary replayed against its recorded target.
struct AdvReplay {
  std::string path;
  std::string allocator;
  std::string engine;
  double recorded_ratio = 0;  ///< ratio from the trace metadata
  double replayed_ratio = 0;  ///< ratio realized by this replay
  double budget_ceiling = 0;  ///< CostBudget::bound at the trace's eps
  bool ok = false;            ///< replayed >= retain * recorded
};

/// Replays every perf-ratio *.trace under `dir` against its recorded
/// (allocator, engine, seed), scoring `ok` as replayed_ratio >=
/// retain * recorded_ratio.  Non-perf-ratio corpus files are skipped.
[[nodiscard]] std::vector<AdvReplay> replay_adversaries(
    const std::string& dir, double retain = 0.99);

}  // namespace memreal
