#include "perfadv/search.h"

#include <algorithm>
#include <utility>

#include "alloc/registry.h"
#include "fuzz/fuzzer.h"
#include "fuzz/mutator.h"
#include "fuzz/shrinker.h"
#include "harness/cell.h"
#include "lb/potential.h"
#include "perfadv/zoo.h"
#include "util/check.h"
#include "util/rng.h"

namespace memreal {

namespace {

/// Drops the byte-space channel of a (vm_heap) sequence: the search
/// objective lives in tick space and the mutator edits tick sizes, so
/// byte payloads would only impose a consistency constraint the mutants
/// cannot honor.
Sequence to_tick_native(Sequence seq) {
  seq.bytes_per_tick = 0;
  for (Update& u : seq.updates) u.size_bytes = 0;
  return seq;
}

std::string join(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

struct Candidate {
  Sequence seq;
  double ratio = 0;
  double cost = 0;  ///< realized total cost (simulation-work estimate)
};

}  // namespace

double adv_search_eps(const AllocatorInfo& info, double requested,
                      Tick capacity) {
  if (requested > 0) return requested;
  // Prefer seeds a small multiple of the churn budget; stop at the
  // allocator's supported eps ceiling regardless.
  constexpr double kPreferredSeedUpdates = 15'000;
  double eps = info.default_eps;
  while (eps * 2 <= info.max_eps * (1 + 1e-9)) {
    const double avg =
        (static_cast<double>(info.sizes.min_size(eps, capacity)) +
         static_cast<double>(info.sizes.max_size(eps, capacity))) /
        2.0;
    const double est_fill =
        0.8 * static_cast<double>(capacity) / std::max(1.0, avg);
    if (est_fill <= kPreferredSeedUpdates) break;
    eps *= 2;
  }
  return eps;
}

AdvObjective evaluate_adversary(const Sequence& seq,
                                const std::string& allocator,
                                const std::string& engine,
                                std::uint64_t alloc_seed) {
  AdvObjective obj;
  obj.floor = sequence_cost_floor(seq).cost_floor;
  if (seq.updates.empty() || obj.floor <= 0) return obj;

  CellConfig config;
  config.engine = engine;
  config.allocator = allocator;
  config.params.eps = seq.eps;
  config.params.seed = alloc_seed;
  // The search evaluates thousands of candidates; correctness is the
  // fuzzer's job (and the release engine is cost-bit-identical), so skip
  // per-update validation and audit once at the end.
  config.incremental_validation = false;
  auto cell = make_cell(seq.capacity, seq.eps_ticks, config);
  const RunStats stats = cell->run(seq.updates);
  cell->audit();

  obj.total_cost = stats.cost.sum();
  obj.ratio = obj.total_cost / obj.floor;
  return obj;
}

AdvResult run_adv_search(const AdvSearchConfig& config) {
  const AllocatorInfo info = allocator_info(config.allocator);
  const double eps = adv_search_eps(info, config.eps, config.capacity);
  MEMREAL_CHECK_MSG(eps <= info.max_eps,
                    config.allocator << " does not support eps " << eps
                                     << " (ceiling " << info.max_eps << ")");
  // All randomness is a pure function of (seed, allocator, stream index),
  // reusing the fuzzer's derivation so corpus metadata alone reconstructs
  // the allocator randomness on replay.
  const std::uint64_t master = target_seed(config.seed, config.allocator);
  const std::uint64_t alloc_seed = iteration_seed(master, 0);

  AdvResult result;
  result.allocator = config.allocator;
  result.engine = config.engine;
  result.eps = eps;
  result.seed = config.seed;
  result.alloc_seed = alloc_seed;
  result.budget_ceiling = info.budget.bound(eps);

  double work_spent = 0;  // simulation-work units across all evaluations
  auto evaluate = [&](const Sequence& seq) {
    ++result.evaluations;
    const AdvObjective obj = evaluate_adversary(seq, config.allocator,
                                                config.engine, alloc_seed);
    work_spent += obj.total_cost + static_cast<double>(seq.size());
    return obj;
  };

  // --- Seed round: the scenario zoo is the baseline population. --------
  std::vector<std::string> scenarios = config.scenarios;
  const std::vector<std::string> compatible =
      compatible_scenarios(info, eps, config.capacity);
  if (scenarios.empty()) {
    scenarios = compatible;
  } else {
    for (const std::string& s : scenarios) {
      const std::string why =
          scenario_incompatibility(s, info, eps, config.capacity);
      MEMREAL_CHECK_MSG(why.empty(), why << " (compatible scenarios for "
                                         << config.allocator << ": "
                                         << join(compatible) << ")");
    }
  }
  MEMREAL_CHECK_MSG(!scenarios.empty(), "no compatible scenario for "
                                            << config.allocator);

  std::vector<Candidate> population;
  std::size_t best = 0;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const ScenarioParams params = scenario_params_for(
        info, eps, config.capacity, config.updates,
        iteration_seed(master, 1 + i));
    Candidate cand;
    cand.seq = to_tick_native(make_scenario(scenarios[i], params));
    const AdvObjective obj = evaluate(cand.seq);
    cand.ratio = obj.ratio;
    cand.cost = obj.total_cost;
    if (cand.ratio > result.baseline_ratio) {
      result.baseline_ratio = cand.ratio;
      result.baseline_scenario = scenarios[i];
    }
    population.push_back(std::move(cand));
    if (population.back().ratio > population[best].ratio) {
      best = population.size() - 1;
    }
  }
  // Planted seeds join the population but not the zoo baseline.
  for (const Sequence& seq : config.extra_seeds) {
    Candidate cand;
    cand.seq = to_tick_native(seq);
    const AdvObjective obj = evaluate(cand.seq);
    cand.ratio = obj.ratio;
    cand.cost = obj.total_cost;
    population.push_back(std::move(cand));
    if (population.back().ratio > population[best].ratio) {
      best = population.size() - 1;
    }
  }

  // --- Hill climb with novelty acceptance. -----------------------------
  MutatorConfig mut;
  mut.eps = eps;
  mut.sizes = info.sizes;
  mut.max_edits = config.max_edits;
  constexpr std::size_t kMaxPopulation = 32;
  const double seed_work = work_spent;  // the seed round is exempt
  for (std::size_t it = 0; it < config.iterations; ++it) {
    if (work_spent - seed_work > config.max_search_work) break;
    Rng rng(iteration_seed(master, 1'000 + it));
    // Mostly exploit the best candidate; sometimes explore the population.
    const std::size_t parent =
        population.size() > 1 && rng.next_double() < 0.25
            ? static_cast<std::size_t>(rng.next_below(population.size()))
            : best;
    if (population[parent].seq.updates.empty()) continue;
    Candidate cand;
    cand.seq = mutate_sequence(population[parent].seq, mut, rng);
    const AdvObjective obj = evaluate(cand.seq);
    cand.ratio = obj.ratio;
    cand.cost = obj.total_cost;

    const bool improved_best = cand.ratio > population[best].ratio;
    const bool improved_parent = cand.ratio > population[parent].ratio;
    // Novelty: occasionally keep near-best non-improvements as fresh
    // mutation starting points.
    const bool novel = cand.ratio > 0.8 * population[best].ratio &&
                       rng.next_double() < 0.15;
    if (!improved_best && !improved_parent && !novel) continue;
    population.push_back(std::move(cand));
    if (improved_best) best = population.size() - 1;
    if (population.size() > kMaxPopulation) {
      // Evict the weakest non-best candidate.
      std::size_t weakest = best == 0 ? 1 : 0;
      for (std::size_t i = 0; i < population.size(); ++i) {
        if (i != best && population[i].ratio < population[weakest].ratio) {
          weakest = i;
        }
      }
      population.erase(population.begin() +
                       static_cast<std::ptrdiff_t>(weakest));
      if (best > weakest) --best;
    }
  }

  result.found_ratio = population[best].ratio;
  result.original_updates = population[best].seq.size();

  // --- Cost-preserving shrink. -----------------------------------------
  if (!config.shrink || population[best].seq.updates.empty()) {
    result.adversary = population[best].seq;
    result.shrunk_ratio = result.found_ratio;
    result.shrunk_updates = result.adversary.size();
    return result;
  }
  const double keep = config.shrink_retain * result.found_ratio;
  const auto still_adversarial = [&](const Sequence& cand) {
    return evaluate(cand).ratio + 1e-12 >= keep;
  };
  ShrinkConfig shrink;
  shrink.min_size = info.sizes.min_size(eps, config.capacity);
  // Each shrink check re-runs (a subsequence of) the found best, so its
  // work is at most the best's own; derive the check ceiling from the
  // shrink work budget.
  const double check_work = std::max(
      1.0, population[best].cost + static_cast<double>(
                                       population[best].seq.size()));
  shrink.max_checks = std::min(
      config.max_shrink_checks,
      std::max<std::size_t>(
          8, static_cast<std::size_t>(config.max_shrink_work / check_work)));
  ShrinkResult shrunk =
      shrink_sequence(population[best].seq, still_adversarial, shrink);
  result.adversary = std::move(shrunk.seq);
  result.shrink_minimal = shrunk.minimal;
  result.shrunk_ratio = evaluate(result.adversary).ratio;
  result.shrunk_updates = result.adversary.size();
  return result;
}

}  // namespace memreal
