#include "perfadv/campaign.h"

#include "alloc/registry.h"
#include "fuzz/corpus.h"
#include "fuzz/fuzzer.h"
#include "util/check.h"
#include "util/parallel.h"

namespace memreal {

AdvCampaign run_adv_campaign(const AdvCampaignConfig& config) {
  std::vector<std::string> names = config.allocators;
  if (names.empty()) {
    for (const AllocatorInfo& info : allocator_infos()) {
      if (info.fuzz_default) names.push_back(info.name);
    }
  } else {
    for (const std::string& n : names) (void)allocator_info(n);  // validate
  }
  MEMREAL_CHECK_MSG(!names.empty(), "no campaign targets");

  AdvCampaign campaign;
  campaign.results.resize(names.size());
  campaign.corpus_paths.resize(names.size());
  // One search per allocator; each is seeded purely from (seed, name), so
  // scheduling order cannot leak into any result.
  parallel_for(
      names.size(),
      [&](std::size_t i) {
        AdvSearchConfig cfg = config.base;
        cfg.allocator = names[i];
        campaign.results[i] = run_adv_search(cfg);
      },
      config.threads);

  if (config.corpus_dir.empty()) return campaign;
  for (std::size_t i = 0; i < names.size(); ++i) {
    const AdvResult& res = campaign.results[i];
    if (res.adversary.updates.empty()) continue;
    CorpusEntry entry;
    entry.seq = res.adversary;
    entry.allocator = res.allocator;
    entry.kind = kAdvCorpusKind;
    entry.seed = res.seed;
    entry.iteration = 0;
    entry.engine = res.engine;
    entry.ratio = res.shrunk_ratio;
    campaign.corpus_paths[i] = save_corpus_entry(entry, config.corpus_dir);
  }
  return campaign;
}

std::vector<AdvReplay> replay_adversaries(const std::string& dir,
                                          double retain) {
  std::vector<AdvReplay> replays;
  for (const std::string& path : list_corpus(dir)) {
    const CorpusEntry entry = load_corpus_entry(path);
    if (entry.kind != kAdvCorpusKind) continue;
    AdvReplay replay;
    replay.path = path;
    replay.allocator = entry.allocator;
    replay.engine = entry.engine.empty() ? "validated" : entry.engine;
    replay.recorded_ratio = entry.ratio;
    const AllocatorInfo info = allocator_info(entry.allocator);
    replay.budget_ceiling = info.budget.bound(entry.seq.eps);
    // Reconstruct the exact allocator randomness the search used.
    const std::uint64_t alloc_seed =
        iteration_seed(target_seed(entry.seed, entry.allocator), 0);
    replay.replayed_ratio =
        evaluate_adversary(entry.seq, entry.allocator, replay.engine,
                           alloc_seed)
            .ratio;
    replay.ok = replay.replayed_ratio + 1e-12 >=
                retain * replay.recorded_ratio;
    replays.push_back(replay);
  }
  return replays;
}

}  // namespace memreal
