// The scenario zoo: one registry of named, structured workload generators
// so every driver (memreal_shard, memreal_serve, memreal_fuzz, memreal_adv,
// the benches) requests workloads by the same names and the adversarial
// search seeds its population from the same generators the drivers run.
//
// Each scenario declares what it needs from an allocator's size band
// (minimum band ratio, palette capability), and scenario_incompatibility /
// compatible_scenarios evaluate those needs against a registry
// AllocatorInfo via AllocatorInfo::serves — drivers reject inadmissible
// (workload, allocator) pairs up front with the allowed list instead of
// failing mid-run.
//
// Members:
//   churn             steady-state banded churn (Theorem 3.1's regime)
//   sawtooth          grow-to-high / shrink-to-low load flanks
//   fragmenter        scatter-free + gap-defeating inserts (folklore's
//                     worst case)
//   multi_tenant_zipf tenant-partitioned band, Zipf-weighted activity
//   db_page_churn     Bender-style cost-oblivious page resizing (needs a
//                     band spanning >= 2 doublings)
//   defrag_burst      Fekete-style compaction waves
//   vm_heap           byte-addressed GC-heap stream (grow-realloc chains,
//                     generational death, compaction bursts)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "alloc/registry.h"
#include "workload/sequence.h"

namespace memreal {

/// Generation parameters shared by every scenario.  Band and palette
/// fields are normally derived from a registry AllocatorInfo via
/// scenario_params_for so the stream is admissible for that allocator.
struct ScenarioParams {
  Tick capacity = kDefaultCapacity;
  double eps = 1.0 / 64;
  Tick min_size = 0;  ///< inclusive tick band; 0 = eps of capacity
  Tick max_size = 0;  ///< inclusive; 0 = 2*eps of capacity - 1
  /// Emit a palette stream: sizes drawn once as a small fixed set
  /// (required by fixed-palette allocators such as DISCRETE).
  bool fixed_palette = false;
  std::size_t palette = 8;   ///< distinct sizes when fixed_palette
  std::size_t tenants = 4;   ///< multi_tenant_zipf only
  double zipf_s = 1.0;       ///< multi_tenant_zipf only
  Tick bytes_per_tick = 8;   ///< vm_heap only
  double target_load = 0.8;
  std::size_t updates = 2'000;  ///< churn updates after the fill phase
  std::uint64_t seed = 1;
};

struct ScenarioInfo {
  std::string name;
  std::string summary;
  /// The scenario needs max_size/min_size at least this large.
  double min_band_ratio = 1.0;
  /// Can emit fixed-palette streams (false = free-sampling only, so
  /// fixed-palette allocators cannot be served).
  bool palette_ok = true;
  /// Emits byte-mode updates (sequence carries bytes_per_tick).
  bool byte_mode = false;
  /// Fill mass is drawn at the band *minimum* (fragmenter's small items,
  /// db_page_churn's min-skewed ladder) rather than around the band mean —
  /// makes the fill-count feasibility estimate use min_size.
  bool fill_on_min = false;
};

/// Ceiling on the estimated fill-phase update count of a zoo seed: a
/// scenario whose fill would exceed this for an allocator's band is
/// reported incompatible (the sequences would be far too long to search).
inline constexpr std::size_t kMaxScenarioSeedUpdates = 150'000;

/// Every registered scenario, in registry order.
[[nodiscard]] const std::vector<ScenarioInfo>& scenario_infos();

/// Registry-order scenario names (the spelling every driver accepts).
[[nodiscard]] std::vector<std::string> scenario_names();

/// Metadata for `name`; nullptr when unknown.
[[nodiscard]] const ScenarioInfo* find_scenario(const std::string& name);

/// Generates the named scenario.  Throws InvariantViolation for unknown
/// names (listing the registry) or parameters the scenario cannot honor.
[[nodiscard]] Sequence make_scenario(const std::string& name,
                                     const ScenarioParams& p);

/// Scenario parameters admissible for `info`: the band comes from the
/// allocator's SizeProfile over `capacity` (widened downward for universal
/// allocators, which serve any well-formed sequence), palette mode from
/// its fixed_palette flag.
[[nodiscard]] ScenarioParams scenario_params_for(const AllocatorInfo& info,
                                                 double eps, Tick capacity,
                                                 std::size_t updates,
                                                 std::uint64_t seed);

/// The WorkloadShape a scenario generated with `p` presents to
/// AllocatorInfo::serves.
[[nodiscard]] WorkloadShape scenario_shape(const ScenarioInfo& info,
                                           const ScenarioParams& p);

/// Empty when `info` can serve the named scenario at (eps, capacity) with
/// scenario_params_for-derived parameters; otherwise a one-line reason.
/// Throws for unknown scenario names.
[[nodiscard]] std::string scenario_incompatibility(const std::string& name,
                                                   const AllocatorInfo& info,
                                                   double eps, Tick capacity);

/// The scenarios `info` can serve, in registry order.
[[nodiscard]] std::vector<std::string> compatible_scenarios(
    const AllocatorInfo& info, double eps, Tick capacity);

}  // namespace memreal
