// The multi-producer single-consumer request queue feeding one shard
// worker.
//
// Producers are the serving engine's client threads (any number of them,
// serialized only at the routing step); the consumer is the shard's one
// worker thread.  The worker drains the entire backlog in one pop_all
// call, so under load the mutex is taken once per *batch* of requests on
// the consumer side — the same batching idea as Blelloch & Wei's
// fixed-size fast path, realized with a lock here because the serving
// layer's correctness gates (TSan, deterministic replay) want the
// simplest possible happens-before story.  Closing the queue wakes the
// consumer; a closed queue still hands out its backlog before pop_all
// returns false, so no accepted request is ever dropped.
#pragma once

#include <condition_variable>
#include <mutex>
#include <utility>
#include <vector>

namespace memreal {

template <typename T>
class MpscQueue {
 public:
  /// Enqueues one item; returns false (dropping the item) iff the queue
  /// has been closed.  On success `depth_out` (if non-null) receives the
  /// backlog depth including this item, measured under the lock — the
  /// serving layer's queue-depth gauge reads it instead of racing a
  /// second size() call.
  bool push(T item, std::size_t* depth_out = nullptr) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
      ++pushed_;
      if (items_.size() > high_water_) high_water_ = items_.size();
      if (depth_out != nullptr) *depth_out = items_.size();
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until the queue is non-empty or closed, then moves the whole
  /// backlog into `out` (cleared first).  Returns false only when the
  /// queue is closed AND empty — the consumer's termination signal.
  bool pop_all(std::vector<T>& out) {
    out.clear();
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;
    out.swap(items_);
    return true;
  }

  /// Closes the queue: future pushes fail, the consumer drains the
  /// backlog and then sees false from pop_all.  Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  /// Largest backlog ever observed at a push (lifetime high-water mark).
  [[nodiscard]] std::size_t high_water() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }

  /// Total items ever accepted by push().
  [[nodiscard]] std::size_t pushed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pushed_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<T> items_;
  bool closed_ = false;
  std::size_t high_water_ = 0;
  std::size_t pushed_ = 0;
};

}  // namespace memreal
