// The online concurrent serving layer.
//
// ShardedEngine (src/shard) scales the paper's single-cell allocators out
// to S cells, but its run() is *batch-parallel*: route a whole batch
// sequentially, apply per-shard sub-sequences under a barrier, repeat.
// ServingEngine turns the same cells into an online service:
//
//   * One worker thread per shard, fed by an MPSC request queue
//     (src/serve/mpsc_queue.h).  Client threads call submit(update) and
//     get a std::future<double> resolving to the update's cost L/k (or
//     to the InvariantViolation the cell raised).
//   * Routing reuses ShardedEngine::route_update — the exact admission
//     logic of the batch path (router proposal, least-loaded fallback,
//     live-mass tracking) — under one routing mutex.  Requests are
//     enqueued to their shard inside that critical section, so each
//     shard's queue order equals the global route order; a delete can
//     never overtake the insert it depends on.
//   * Read-side queries (item_at, neighbors_of, payload bytes under
//     arena cells) take a per-shard shared lock that the worker holds
//     exclusively while applying an update, so every query observes a
//     layout *between* updates — snapshot-consistent, never a transient
//     mid-update state.
//
// Determinism: per-shard application order equals route order (FIFO
// queues), and route order is the submission order (routing mutex).  So
// when updates are submitted in sequence order — which the deterministic
// verification mode serve_deterministic() enforces across any number of
// client lanes via a seed-derived ticket schedule — every cell sees
// exactly the sub-sequence the batch ShardedEngine would feed it, and
// costs and final layouts are bit-identical to run() on the same config.
// Thread-count invariance thus survives the transition to online
// serving: S worker threads + L client lanes produce the same costs as
// the single-threaded batch replay.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "serve/mpsc_queue.h"
#include "shard/sharded_engine.h"

namespace memreal {

class ServingEngine {
 public:
  /// Spawns one worker per shard.  `config.threads`, `batch_size` and
  /// `rebalance_threshold` are batch-path knobs and ignored here.
  explicit ServingEngine(const ShardedConfig& config);
  ~ServingEngine();  ///< stop()s if the caller has not.

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Routes the update and enqueues it on its shard; the future resolves
  /// to the update's cost L/k once the shard worker applied it, or
  /// rethrows the cell's InvariantViolation on get().  Thread-safe.
  /// Throws immediately (nothing enqueued) for updates the router must
  /// reject: duplicate insert, delete of an absent item, an insert that
  /// fits no shard, or a submit after stop().
  std::future<double> submit(const Update& update);

  /// Blocks until every accepted request has been applied.
  void drain();

  /// Drain, close the queues and join the workers.  Idempotent; the
  /// engine accepts no submissions afterwards.
  void stop();

  // -- Read-side queries (snapshot-consistent, thread-safe) -----------------

  /// The item covering `offset` in `shard`'s address space, if any.
  [[nodiscard]] std::optional<PlacedItem> item_at(std::size_t shard,
                                                  Tick offset);
  /// Offset-order neighbors of a live item; nullopt when the item is
  /// absent or its insert has not been applied yet.
  [[nodiscard]] std::optional<LayoutStore::Neighbors> neighbors_of(ItemId id);
  /// Copy of the item's payload bytes (arena cells only); empty when the
  /// engine is not arena-backed or the item is not (yet) live.
  [[nodiscard]] std::vector<unsigned char> payload_of(ItemId id);
  /// Whether the item is live AND applied on its shard.
  [[nodiscard]] bool contains(ItemId id);

  // -- Post-drain accounting -------------------------------------------------

  /// Drains, then returns the merged statistics (same shape as the batch
  /// path's).  wall_seconds covers first submit to this drain.
  ShardedRunStats stats();
  /// Drains, then fully audits every cell.
  void audit();

  [[nodiscard]] std::size_t shard_count() const {
    return base_.shard_count();
  }
  /// The wrapped engine, for post-stop() layout inspection.  Touching it
  /// while workers run races with them — drain() or stop() first.
  [[nodiscard]] ShardedEngine& sharded() { return base_; }

  /// Queue-depth high-water mark of one shard's request queue (lifetime,
  /// from MpscQueue accounting).  Thread-safe.
  [[nodiscard]] std::size_t queue_high_water(std::size_t shard) const {
    return queues_.at(shard)->high_water();
  }

 private:
  struct Request {
    Update update;
    std::promise<double> done;
    /// Stamped at submit when queue metrics are wired; the shard worker
    /// turns it into the queue-wait histogram sample.
    std::chrono::steady_clock::time_point enqueue_time{};
    /// Queue-wait trace span begin (wall us or logical tick), valid when
    /// traced is set.
    std::uint64_t trace_begin = 0;
    bool traced = false;
  };

  void worker_loop(std::size_t shard);
  void finish_request();

  ShardedEngine base_;
  std::vector<obs::ServeMetrics> serve_metrics_;  ///< empty = off
  std::vector<std::unique_ptr<MpscQueue<Request>>> queues_;
  /// Writer = the shard's worker applying an update; readers = queries.
  std::vector<std::unique_ptr<std::shared_mutex>> shard_mu_;
  std::vector<std::thread> workers_;

  /// Serializes route_update + enqueue (and guards placement reads).
  std::mutex route_mu_;
  bool stopped_ = false;
  bool started_ = false;
  std::chrono::steady_clock::time_point first_submit_;
  double wall_seconds_ = 0.0;  ///< guarded by route_mu_

  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  std::size_t in_flight_ = 0;  ///< guarded by drain_mu_
};

/// Deterministic verification harness: submits the whole sequence through
/// `lanes` client threads whose interleaving is fixed by a seed-derived
/// ticket schedule enforcing global submission order == sequence order.
/// Returns the per-update costs in sequence order.  The resulting costs
/// and final layouts are bit-identical to ShardedEngine::run(seq) on an
/// identically configured engine (test_serve locks this in for every
/// registry allocator on both engine flavors).
std::vector<double> serve_deterministic(ServingEngine& engine,
                                        const Sequence& seq,
                                        std::size_t lanes,
                                        std::uint64_t seed);

}  // namespace memreal
