#include "serve/serving_engine.h"

#include <algorithm>
#include <utility>

#include "arena/arena_store.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/rng.h"

namespace memreal {

ServingEngine::ServingEngine(const ShardedConfig& config) : base_(config) {
  const std::size_t shards = base_.shard_count();
  if (config.metrics != nullptr) {
    serve_metrics_.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      obs::MetricLabels labels;
      labels.allocator = config.allocator;
      labels.engine = config.engine;
      labels.shard = static_cast<int>(s);
      labels.workload = config.workload_label;
      serve_metrics_.push_back(
          obs::ServeMetrics::create(*config.metrics, labels));
    }
  }
  queues_.reserve(shards);
  shard_mu_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    queues_.push_back(std::make_unique<MpscQueue<Request>>());
    shard_mu_.push_back(std::make_unique<std::shared_mutex>());
  }
  workers_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    workers_.emplace_back([this, s] { worker_loop(s); });
  }
}

ServingEngine::~ServingEngine() { stop(); }

void ServingEngine::worker_loop(std::size_t shard) {
  const obs::ServeMetrics* metrics =
      serve_metrics_.empty() ? nullptr : &serve_metrics_[shard];
  std::vector<Request> batch;
  while (queues_[shard]->pop_all(batch)) {
    for (Request& r : batch) {
      if (r.traced) {
        obs::TraceSession& trace = obs::TraceSession::global();
        trace.record(obs::SpanPhase::kQueueWait, r.trace_begin, trace.now(),
                     static_cast<std::int32_t>(shard));
      }
      if (metrics != nullptr && metrics->queue_wait_us != nullptr) {
        const auto wait =
            std::chrono::steady_clock::now() - r.enqueue_time;
        metrics->queue_wait_us->record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(wait)
                .count()));
      }
      try {
        double cost;
        {
          std::unique_lock<std::shared_mutex> lock(*shard_mu_[shard]);
          cost = base_.cell(shard).step(r.update);
        }
        r.done.set_value(cost);
      } catch (...) {
        r.done.set_exception(std::current_exception());
      }
      finish_request();
    }
  }
}

void ServingEngine::finish_request() {
  std::lock_guard<std::mutex> lock(drain_mu_);
  --in_flight_;
  if (in_flight_ == 0) drain_cv_.notify_all();
}

std::future<double> ServingEngine::submit(const Update& update) {
  Request r;
  r.update = update;
  std::future<double> fut = r.done.get_future();
  // Observability work stays outside the admission lock: stamping and
  // gauge updates on the serialized routing path would tax every client,
  // and the queue-wait measure deliberately includes admission wait
  // (submit-to-pickup is the latency a caller actually experiences).
  const bool wired = !serve_metrics_.empty();
  if (wired) r.enqueue_time = std::chrono::steady_clock::now();
  if (obs::TraceSession::global().active()) {
    r.traced = true;
    r.trace_begin = obs::TraceSession::global().now();
  }
  std::size_t s = 0;
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    MEMREAL_CHECK_MSG(!stopped_, "submit after stop()");
    if (!started_) {
      started_ = true;
      first_submit_ = std::chrono::steady_clock::now();
    }
    // route_update mutates placement/live-mass even when the enqueue
    // below would fail, so the stopped_ check above must stay ahead of
    // it.
    s = base_.route_update(update);
    {
      std::lock_guard<std::mutex> dlock(drain_mu_);
      ++in_flight_;
    }
    queues_[s]->push(std::move(r), &depth);
  }
  if (wired && serve_metrics_[s].queue_depth != nullptr) {
    serve_metrics_[s].queue_depth->set(static_cast<std::int64_t>(depth));
  }
  return fut;
}

void ServingEngine::drain() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [&] { return in_flight_ == 0; });
}

void ServingEngine::stop() {
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    if (stopped_) return;
    stopped_ = true;
    if (started_) {
      wall_seconds_ = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - first_submit_)
                          .count();
    }
  }
  for (auto& q : queues_) q->close();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

std::optional<PlacedItem> ServingEngine::item_at(std::size_t shard,
                                                 Tick offset) {
  MEMREAL_CHECK_MSG(shard < shard_count(),
                    "item_at: shard " << shard << " of " << shard_count());
  std::shared_lock<std::shared_mutex> lock(*shard_mu_[shard]);
  return base_.memory(shard).item_at(offset);
}

std::optional<LayoutStore::Neighbors> ServingEngine::neighbors_of(ItemId id) {
  std::optional<std::size_t> s;
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    s = base_.find_shard(id);
  }
  if (!s) return std::nullopt;
  std::shared_lock<std::shared_mutex> lock(*shard_mu_[*s]);
  LayoutStore& mem = base_.memory(*s);
  // Routed but not yet applied by the worker: not observable yet.
  if (!mem.contains(id)) return std::nullopt;
  return mem.neighbors_of(id);
}

std::vector<unsigned char> ServingEngine::payload_of(ItemId id) {
  std::optional<std::size_t> s;
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    s = base_.find_shard(id);
  }
  if (!s) return {};
  std::shared_lock<std::shared_mutex> lock(*shard_mu_[*s]);
  auto* arena = dynamic_cast<ArenaStore*>(&base_.memory(*s));
  if (arena == nullptr || !arena->contains(id)) return {};
  const std::span<const unsigned char> bytes = arena->payload(id);
  return {bytes.begin(), bytes.end()};
}

bool ServingEngine::contains(ItemId id) {
  std::optional<std::size_t> s;
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    s = base_.find_shard(id);
  }
  if (!s) return false;
  std::shared_lock<std::shared_mutex> lock(*shard_mu_[*s]);
  return base_.memory(*s).contains(id);
}

ShardedRunStats ServingEngine::stats() {
  drain();
  ShardedRunStats out = base_.stats();
  std::lock_guard<std::mutex> lock(route_mu_);
  out.global.wall_seconds =
      stopped_ || !started_
          ? wall_seconds_
          : std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          first_submit_)
                .count();
  return out;
}

void ServingEngine::audit() {
  drain();
  base_.audit();
}

std::vector<double> serve_deterministic(ServingEngine& engine,
                                        const Sequence& seq,
                                        std::size_t lanes,
                                        std::uint64_t seed) {
  MEMREAL_CHECK_MSG(lanes >= 1, "serve_deterministic: need >= 1 lane");
  const std::size_t n = seq.updates.size();
  // Seed-derived lane schedule: lane_of[i] names the client thread that
  // must submit update i.  The ticket below enforces submission order
  // 0, 1, 2, ... regardless of scheduling, so the route order — and
  // with it every cell's sub-sequence — equals the batch path's.
  std::vector<std::size_t> lane_of(n);
  SplitMix64 mix(seed);
  for (std::size_t i = 0; i < n; ++i) {
    lane_of[i] = static_cast<std::size_t>(mix.next() % lanes);
  }

  std::vector<std::future<double>> futures(n);
  std::mutex ticket_mu;
  std::condition_variable ticket_cv;
  std::size_t next = 0;
  std::exception_ptr first_error;

  auto lane_body = [&](std::size_t lane) {
    for (std::size_t i = 0; i < n; ++i) {
      if (lane_of[i] != lane) continue;
      std::unique_lock<std::mutex> lock(ticket_mu);
      ticket_cv.wait(lock, [&] { return next == i || first_error; });
      if (first_error) return;
      try {
        futures[i] = engine.submit(seq.updates[i]);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
        ticket_cv.notify_all();
        return;
      }
      ++next;
      ticket_cv.notify_all();
    }
  };

  std::vector<std::thread> clients;
  clients.reserve(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    clients.emplace_back(lane_body, lane);
  }
  for (std::thread& c : clients) c.join();
  if (first_error) std::rethrow_exception(first_error);

  std::vector<double> costs;
  costs.reserve(n);
  for (std::future<double>& f : futures) costs.push_back(f.get());
  return costs;
}

}  // namespace memreal
