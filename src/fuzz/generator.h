// Random well-formed sequence generation for the differential fuzzer.
//
// Unlike the scripted workloads in src/workload/, the fuzz generator is
// profile-driven: it draws item sizes from a registry SizeProfile so that
// every generated sequence is admissible for every allocator in the target
// group, and it randomizes the *shape* of the stream (fill level, churn
// bias, burst lengths) instead of fixing one regime.  All randomness comes
// from the caller's Rng, so a sequence is reproducible from its seed alone.
#pragma once

#include <string>

#include "alloc/registry.h"
#include "util/rng.h"
#include "workload/sequence.h"

namespace memreal {

struct GeneratorConfig {
  Tick capacity = Tick{1} << 40;
  double eps = 1.0 / 64;
  SizeProfile sizes;            ///< admissible band for the target group
  std::size_t updates = 200;    ///< exact length of the generated sequence
  std::size_t palette = 8;      ///< distinct sizes when sizes.fixed_palette
  /// Fill toward a random fraction of the budget in [0, max_load] before
  /// churning; the churn keeps the load wandering below it.
  double max_load = 0.9;
};

/// Generates one well-formed sequence of exactly `config.updates` updates
/// (the last update may be forced to an insert/delete the live set
/// permits).  Throws InvariantViolation if the profile band is empty at
/// this (eps, capacity).
[[nodiscard]] Sequence generate_sequence(const GeneratorConfig& config,
                                         Rng& rng, std::string name);

}  // namespace memreal
