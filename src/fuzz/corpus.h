// Corpus persistence: failing (shrunk) sequences as plain trace.h files
// with a "#!"-prefixed metadata line naming the failing allocator, the
// failure kind and the (campaign seed, iteration) that produced it.  The
// metadata line is a trace comment, so every reproducer is also replayable
// with any trace-consuming tool.
#pragma once

#include <string>
#include <vector>

#include "fuzz/differential.h"
#include "workload/sequence.h"

namespace memreal {

struct CorpusEntry {
  Sequence seq;
  std::string allocator;     ///< failing target
  std::string kind;          ///< to_string(FailureKind), or "perf-ratio"
  std::uint64_t seed = 0;    ///< campaign seed
  std::uint64_t iteration = 0;
  /// Performance adversaries (kind "perf-ratio") additionally record the
  /// evaluation engine and the realized cost ratio at save time, so replay
  /// can assert the exact recorded value.  Omitted when empty/zero.
  std::string engine;
  double ratio = 0;
};

/// Canonical file name: <allocator>-<kind>-s<seed>-i<iteration>.trace
[[nodiscard]] std::string corpus_file_name(const CorpusEntry& entry);

/// Serializes entry (metadata line + trace).
[[nodiscard]] std::string corpus_to_string(const CorpusEntry& entry);

/// Parses a reproducer; throws InvariantViolation on malformed input.
/// Metadata is optional — a bare trace loads with empty allocator/kind.
[[nodiscard]] CorpusEntry corpus_from_string(const std::string& text);

/// Writes entry under `dir` (created if missing); returns the full path.
std::string save_corpus_entry(const CorpusEntry& entry,
                              const std::string& dir);

/// Loads one reproducer file.
[[nodiscard]] CorpusEntry load_corpus_entry(const std::string& path);

/// All *.trace files under `dir`, sorted by name ([] when the directory
/// does not exist).
[[nodiscard]] std::vector<std::string> list_corpus(const std::string& dir);

}  // namespace memreal
