#include "fuzz/mutator.h"

#include <algorithm>
#include <unordered_map>

#include "util/check.h"

namespace memreal {

namespace {

/// A random [begin, end) slice of up to a quarter of the updates.
std::pair<std::size_t, std::size_t> random_slice(std::size_t n, Rng& rng) {
  const std::size_t len =
      1 + rng.next_below(std::max<std::size_t>(1, n / 4));
  const std::size_t begin = rng.next_below(n - std::min(len, n) + 1);
  return {begin, std::min(begin + len, n)};
}

void drop_slice(std::vector<Update>& u, Rng& rng) {
  const auto [b, e] = random_slice(u.size(), rng);
  u.erase(u.begin() + static_cast<std::ptrdiff_t>(b),
          u.begin() + static_cast<std::ptrdiff_t>(e));
}

/// Re-inserts a copy of a slice at a random position, remapping its ids
/// above every id used in the sequence so the copy stays well-formed.
void duplicate_slice(std::vector<Update>& u, Rng& rng) {
  const auto [b, e] = random_slice(u.size(), rng);
  ItemId max_id = 0;
  for (const Update& up : u) max_id = std::max(max_id, up.id);
  std::unordered_map<ItemId, ItemId> remap;
  std::vector<Update> copy;
  copy.reserve(e - b);
  for (std::size_t i = b; i < e; ++i) {
    Update up = u[i];
    auto [it, fresh] = remap.try_emplace(up.id, max_id + 1 + remap.size());
    (void)fresh;
    up.id = it->second;
    copy.push_back(up);
  }
  const std::size_t at = rng.next_below(u.size() + 1);
  u.insert(u.begin() + static_cast<std::ptrdiff_t>(at), copy.begin(),
           copy.end());
}

void resize_item(std::vector<Update>& u, const MutatorConfig& c, Tick cap,
                 Rng& rng) {
  const Update& pick = u[rng.next_below(u.size())];
  const Tick lo = c.sizes.min_size(c.eps, cap);
  const Tick hi = c.sizes.max_size(c.eps, cap);
  const Tick size = rng.next_tick_in(lo, hi);
  for (Update& up : u) {
    if (up.id == pick.id) up.size = size;
  }
}

void swap_updates(std::vector<Update>& u, Rng& rng) {
  const std::size_t a = rng.next_below(u.size());
  const std::size_t b = rng.next_below(u.size());
  std::swap(u[a], u[b]);
}

void rotate_slice(std::vector<Update>& u, Rng& rng) {
  const auto [b, e] = random_slice(u.size(), rng);
  if (e - b < 2) return;
  std::rotate(u.begin() + static_cast<std::ptrdiff_t>(b),
              u.begin() + static_cast<std::ptrdiff_t>(b + 1),
              u.begin() + static_cast<std::ptrdiff_t>(e));
}

void truncate_tail(std::vector<Update>& u, Rng& rng) {
  const std::size_t keep = 1 + rng.next_below(u.size());
  u.resize(keep);
}

}  // namespace

Sequence mutate_sequence(const Sequence& seq, const MutatorConfig& config,
                         Rng& rng) {
  MEMREAL_CHECK(!seq.updates.empty());
  MEMREAL_CHECK(config.max_edits >= 1);
  std::vector<Update> updates = seq.updates;
  const std::size_t edits = 1 + rng.next_below(config.max_edits);
  for (std::size_t i = 0; i < edits && !updates.empty(); ++i) {
    switch (rng.next_below(6)) {
      case 0:
        drop_slice(updates, rng);
        break;
      case 1:
        duplicate_slice(updates, rng);
        break;
      case 2:
        resize_item(updates, config, seq.capacity, rng);
        break;
      case 3:
        swap_updates(updates, rng);
        break;
      case 4:
        rotate_slice(updates, rng);
        break;
      default:
        truncate_tail(updates, rng);
        break;
    }
  }
  Sequence mutant = repair_sequence(seq, std::move(updates));
  if (mutant.updates.empty()) return seq;  // every edit cancelled out
  return mutant;
}

}  // namespace memreal
