// Delta-debugging trace minimizer.  Given a failing sequence and a
// predicate that re-checks the failure, shrink by (a) ddmin-style chunk
// removal over the update stream and (b) per-item size reduction toward a
// profile floor — each candidate repaired back to well-formedness through
// the workload layer's subsequence/with_sizes hooks before re-checking.
#pragma once

#include <functional>

#include "workload/sequence.h"

namespace memreal {

/// Returns true iff the candidate still exhibits the failure being
/// minimized (callers typically re-run the differential oracle and compare
/// FailureReport::same_bug).  Must be deterministic.
using FailurePredicate = std::function<bool(const Sequence&)>;

struct ShrinkConfig {
  /// Sizes are never reduced below this floor (keep shrunk reproducers
  /// inside the target's admissible band).
  Tick min_size = 1;
  /// Ceiling on predicate evaluations; shrinking stops when exhausted.
  std::size_t max_checks = 2000;
};

struct ShrinkResult {
  Sequence seq;
  std::size_t checks = 0;     ///< predicate evaluations spent
  bool minimal = false;       ///< reached a fixpoint before max_checks
};

/// Minimizes `seq` while `fails` keeps returning true.  `fails(seq)` must
/// be true on entry; the result also satisfies it.
[[nodiscard]] ShrinkResult shrink_sequence(const Sequence& seq,
                                           const FailurePredicate& fails,
                                           const ShrinkConfig& config = {});

}  // namespace memreal
