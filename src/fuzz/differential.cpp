#include "fuzz/differential.h"

#include <memory>
#include <sstream>

#include "arena/arena_cell.h"
#include "harness/validated_run.h"
#include "release/release_cell.h"
#include "release/slab_store.h"
#include "util/check.h"

namespace memreal {

const char* to_string(FailureKind kind) {
  switch (kind) {
    case FailureKind::kInvariantViolation:
      return "invariant-violation";
    case FailureKind::kCostBudget:
      return "cost-budget";
    case FailureKind::kDivergence:
      return "divergence";
    case FailureKind::kEngineDivergence:
      return "engine-divergence";
    case FailureKind::kArenaDivergence:
      return "arena-divergence";
  }
  return "unknown";
}

namespace {

/// Compares the validated layout against another store's; returns a
/// human-readable description of the first difference, or empty if
/// bit-identical.  `label` names the other store in messages.
std::string compare_layouts(LayoutStore& validated, LayoutStore& other,
                            const char* label = "release") {
  const std::vector<PlacedItem> a = validated.snapshot();
  const std::vector<PlacedItem> b = other.snapshot();
  if (a.size() != b.size()) {
    std::ostringstream os;
    os << "layout item counts differ: validated " << a.size() << ", "
       << label << " " << b.size();
    return os.str();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].id == b[i].id && a[i].offset == b[i].offset &&
        a[i].size == b[i].size && a[i].extent == b[i].extent) {
      continue;
    }
    std::ostringstream os;
    os << "layouts differ at rank " << i << ": validated {id " << a[i].id
       << " off " << a[i].offset << " size " << a[i].size << " ext "
       << a[i].extent << "}, " << label << " {id " << b[i].id << " off "
       << b[i].offset << " size " << b[i].size << " ext " << b[i].extent
       << "}";
    return os.str();
  }
  return {};
}

/// Compares the O(1) model counters after one lockstep step; empty if
/// identical.  `label` names the other store in messages.
std::string compare_counters(double validated_cost, double other_cost,
                             LayoutStore& validated, LayoutStore& other,
                             const char* label = "release") {
  std::ostringstream os;
  if (validated_cost != other_cost) {
    os << "update cost differs: validated " << validated_cost << ", "
       << label << " " << other_cost;
  } else if (validated.item_count() != other.item_count()) {
    os << "item count differs: validated " << validated.item_count() << ", "
       << label << " " << other.item_count();
  } else if (validated.live_mass() != other.live_mass()) {
    os << "live mass differs: validated " << validated.live_mass() << ", "
       << label << " " << other.live_mass();
  } else if (validated.span_end() != other.span_end()) {
    os << "span end differs: validated " << validated.span_end() << ", "
       << label << " " << other.span_end();
  } else if (validated.total_moved() != other.total_moved()) {
    os << "total moved mass differs: validated " << validated.total_moved()
       << ", " << label << " " << other.total_moved();
  }
  return os.str();
}

/// The granule's rounding bound on an arena cell's byte traffic:
///   L * bpt - M * (bpt - 1) <= moved_bytes <= L * bpt
/// where L is the tick moved mass and M the number of payload moves.
std::string check_byte_bound(const ArenaStore& store) {
  const Tick bpt = store.bytes_per_tick();
  const Tick upper = store.total_moved() * bpt;
  const Tick slack = static_cast<Tick>(store.payload_moves()) * (bpt - 1);
  const Tick lower = upper > slack ? upper - slack : 0;
  const Tick bytes = store.total_bytes_moved();
  if (bytes >= lower && bytes <= upper) return {};
  std::ostringstream os;
  os << "arena byte traffic " << bytes << " outside the rounding bound ["
     << lower << ", " << upper << "] (moved mass " << store.total_moved()
     << ", " << store.payload_moves() << " moves, granule " << bpt << ")";
  return os.str();
}

}  // namespace

std::optional<FailureReport> run_differential(
    const Sequence& seq, const DifferentialConfig& config) {
  MEMREAL_CHECK(!config.targets.empty());
  MEMREAL_CHECK(!seq.updates.empty());

  std::vector<std::unique_ptr<ValidatedCell>> cells;
  std::vector<std::unique_ptr<ReleaseCell>> release_cells;
  std::vector<std::unique_ptr<ArenaCell>> arena_cells;
  cells.reserve(config.targets.size());
  for (const FuzzTarget& t : config.targets) {
    CellConfig cell;
    cell.allocator = t.allocator;
    cell.params = t.params;
    cell.audit_every = config.audit_every;
    cell.check_invariants_every = config.check_invariants_every;
    cells.push_back(std::make_unique<ValidatedCell>(seq, cell));
    if (config.lockstep_release) {
      release_cells.push_back(std::make_unique<ReleaseCell>(
          seq.capacity, seq.eps_ticks, cell));
    }
    if (config.lockstep_arena) {
      CellConfig arena = cell;
      arena.arena = true;
      arena.bytes_per_tick = config.arena_bytes_per_tick;
      arena_cells.push_back(std::make_unique<ArenaCell>(
          seq.capacity, seq.eps_ticks, arena));
    }
  }
  const std::size_t layout_every =
      config.audit_every == 0 ? 64 : config.audit_every;

  // The reference live set replayed from the sequence itself; every target
  // must agree with it after every update.
  std::size_t live_count = 0;
  Tick live_mass = 0;

  for (std::size_t i = 0; i < seq.updates.size(); ++i) {
    const Update& u = seq.updates[i];
    if (u.is_insert()) {
      ++live_count;
      live_mass += u.size;
    } else {
      --live_count;
      live_mass -= u.size;
    }
    for (std::size_t t = 0; t < cells.size(); ++t) {
      ValidatedCell& cell = *cells[t];
      double cost = 0.0;
      try {
        cost = cell.engine().step(u);
      } catch (const InvariantViolation& e) {
        FailureReport r;
        r.kind = FailureKind::kInvariantViolation;
        r.allocator = cell.name();
        r.update_index = i;
        r.message = e.what();
        return r;
      }
      auto diverged = [&](const std::string& what) {
        FailureReport r;
        r.kind = FailureKind::kDivergence;
        r.allocator = cell.name();
        r.update_index = i;
        r.message = what;
        return r;
      };
      if (u.is_insert() && cost < 1.0) {
        std::ostringstream os;
        os << "insert of id " << u.id << " moved less than the item's own "
           << "mass (cost " << cost << " < 1)";
        return diverged(os.str());
      }
      if (cell.memory().item_count() != live_count) {
        std::ostringstream os;
        os << "live item count diverged: allocator holds "
           << cell.memory().item_count() << ", sequence implies "
           << live_count;
        return diverged(os.str());
      }
      if (cell.memory().live_mass() != live_mass) {
        std::ostringstream os;
        os << "live mass diverged: allocator holds "
           << cell.memory().live_mass() << ", sequence implies " << live_mass;
        return diverged(os.str());
      }
      if (cell.memory().span_end() < live_mass) {
        std::ostringstream os;
        os << "span end " << cell.memory().span_end()
           << " undercuts live mass " << live_mass;
        return diverged(os.str());
      }
      if (config.lockstep_release) {
        ReleaseCell& fast = *release_cells[t];
        auto engine_diverged = [&](const std::string& what) {
          FailureReport r;
          r.kind = FailureKind::kEngineDivergence;
          r.allocator = cell.name();
          r.update_index = i;
          r.message = what;
          return r;
        };
        double fast_cost = 0.0;
        try {
          fast_cost = fast.step(u);
        } catch (const InvariantViolation& e) {
          return engine_diverged(std::string("release engine threw: ") +
                                 e.what());
        }
        std::string diff =
            compare_counters(cost, fast_cost, cell.memory(), fast.memory());
        if (diff.empty() && (i + 1) % layout_every == 0) {
          diff = compare_layouts(cell.memory(), fast.memory());
        }
        if (!diff.empty()) return engine_diverged(diff);
        if (config.release_tamper) config.release_tamper(fast.memory(), i);
      }
      if (config.lockstep_arena) {
        ArenaCell& arena = *arena_cells[t];
        auto arena_diverged = [&](const std::string& what) {
          FailureReport r;
          r.kind = FailureKind::kArenaDivergence;
          r.allocator = cell.name();
          r.update_index = i;
          r.message = what;
          return r;
        };
        double arena_cost = 0.0;
        try {
          arena_cost = arena.step(u);
        } catch (const InvariantViolation& e) {
          return arena_diverged(std::string("arena cell threw: ") + e.what());
        }
        std::string diff = compare_counters(cost, arena_cost, cell.memory(),
                                            arena.memory(), "arena");
        if (diff.empty()) diff = check_byte_bound(arena.arena());
        if (diff.empty() && (i + 1) % layout_every == 0) {
          diff = compare_layouts(cell.memory(), arena.memory(), "arena");
        }
        if (!diff.empty()) return arena_diverged(diff);
      }
    }
  }

  for (std::size_t t = 0; t < cells.size(); ++t) {
    ValidatedCell& cell = *cells[t];
    if (config.lockstep_release) {
      ReleaseCell& fast = *release_cells[t];
      std::string diff = compare_layouts(cell.memory(), fast.memory());
      if (diff.empty()) {
        try {
          fast.audit();
        } catch (const InvariantViolation& e) {
          diff = std::string("release store failed its final audit: ") +
                 e.what();
        }
      }
      if (!diff.empty()) {
        FailureReport r;
        r.kind = FailureKind::kEngineDivergence;
        r.allocator = cell.name();
        r.update_index = seq.updates.size();
        r.message = diff;
        return r;
      }
    }
    if (config.lockstep_arena) {
      ArenaCell& arena = *arena_cells[t];
      std::string diff = compare_layouts(cell.memory(), arena.memory(),
                                         "arena");
      if (diff.empty()) {
        try {
          arena.audit();  // includes the full payload-stamp sweep
        } catch (const InvariantViolation& e) {
          diff = std::string("arena cell failed its final audit: ") +
                 e.what();
        }
      }
      if (!diff.empty()) {
        FailureReport r;
        r.kind = FailureKind::kArenaDivergence;
        r.allocator = cell.name();
        r.update_index = seq.updates.size();
        r.message = diff;
        return r;
      }
    }
    try {
      cell.memory().audit();
      cell.allocator().check_invariants();
    } catch (const InvariantViolation& e) {
      FailureReport r;
      r.kind = FailureKind::kInvariantViolation;
      r.allocator = cell.name();
      r.update_index = seq.updates.size();
      r.message = e.what();
      return r;
    }
    const double observed = cell.engine().stats().ratio_cost();
    const double bound =
        config.targets[t].budget.bound(seq.eps) * config.budget_slack;
    if (observed > bound) {
      FailureReport r;
      r.kind = FailureKind::kCostBudget;
      r.allocator = cell.name();
      r.update_index = seq.updates.size();
      r.observed_cost = observed;
      r.cost_bound = bound;
      std::ostringstream os;
      os << "amortized ratio cost " << observed << " exceeds the budget "
         << bound << " for eps " << seq.eps;
      r.message = os.str();
      return r;
    }
  }
  return std::nullopt;
}

}  // namespace memreal
