#include "fuzz/differential.h"

#include <memory>
#include <sstream>

#include "harness/validated_run.h"
#include "util/check.h"

namespace memreal {

const char* to_string(FailureKind kind) {
  switch (kind) {
    case FailureKind::kInvariantViolation:
      return "invariant-violation";
    case FailureKind::kCostBudget:
      return "cost-budget";
    case FailureKind::kDivergence:
      return "divergence";
  }
  return "unknown";
}

std::optional<FailureReport> run_differential(
    const Sequence& seq, const DifferentialConfig& config) {
  MEMREAL_CHECK(!config.targets.empty());
  MEMREAL_CHECK(!seq.updates.empty());

  std::vector<std::unique_ptr<ValidatedCell>> cells;
  cells.reserve(config.targets.size());
  for (const FuzzTarget& t : config.targets) {
    CellConfig cell;
    cell.allocator = t.allocator;
    cell.params = t.params;
    cell.audit_every = config.audit_every;
    cell.check_invariants_every = config.check_invariants_every;
    cells.push_back(std::make_unique<ValidatedCell>(seq, cell));
  }

  // The reference live set replayed from the sequence itself; every target
  // must agree with it after every update.
  std::size_t live_count = 0;
  Tick live_mass = 0;

  for (std::size_t i = 0; i < seq.updates.size(); ++i) {
    const Update& u = seq.updates[i];
    if (u.is_insert()) {
      ++live_count;
      live_mass += u.size;
    } else {
      --live_count;
      live_mass -= u.size;
    }
    for (std::size_t t = 0; t < cells.size(); ++t) {
      ValidatedCell& cell = *cells[t];
      double cost = 0.0;
      try {
        cost = cell.engine().step(u);
      } catch (const InvariantViolation& e) {
        FailureReport r;
        r.kind = FailureKind::kInvariantViolation;
        r.allocator = cell.name();
        r.update_index = i;
        r.message = e.what();
        return r;
      }
      auto diverged = [&](const std::string& what) {
        FailureReport r;
        r.kind = FailureKind::kDivergence;
        r.allocator = cell.name();
        r.update_index = i;
        r.message = what;
        return r;
      };
      if (u.is_insert() && cost < 1.0) {
        std::ostringstream os;
        os << "insert of id " << u.id << " moved less than the item's own "
           << "mass (cost " << cost << " < 1)";
        return diverged(os.str());
      }
      if (cell.memory().item_count() != live_count) {
        std::ostringstream os;
        os << "live item count diverged: allocator holds "
           << cell.memory().item_count() << ", sequence implies "
           << live_count;
        return diverged(os.str());
      }
      if (cell.memory().live_mass() != live_mass) {
        std::ostringstream os;
        os << "live mass diverged: allocator holds "
           << cell.memory().live_mass() << ", sequence implies " << live_mass;
        return diverged(os.str());
      }
      if (cell.memory().span_end() < live_mass) {
        std::ostringstream os;
        os << "span end " << cell.memory().span_end()
           << " undercuts live mass " << live_mass;
        return diverged(os.str());
      }
    }
  }

  for (std::size_t t = 0; t < cells.size(); ++t) {
    ValidatedCell& cell = *cells[t];
    try {
      cell.memory().audit();
      cell.allocator().check_invariants();
    } catch (const InvariantViolation& e) {
      FailureReport r;
      r.kind = FailureKind::kInvariantViolation;
      r.allocator = cell.name();
      r.update_index = seq.updates.size();
      r.message = e.what();
      return r;
    }
    const double observed = cell.engine().stats().ratio_cost();
    const double bound =
        config.targets[t].budget.bound(seq.eps) * config.budget_slack;
    if (observed > bound) {
      FailureReport r;
      r.kind = FailureKind::kCostBudget;
      r.allocator = cell.name();
      r.update_index = seq.updates.size();
      r.observed_cost = observed;
      r.cost_bound = bound;
      std::ostringstream os;
      os << "amortized ratio cost " << observed << " exceeds the budget "
         << bound << " for eps " << seq.eps;
      r.message = os.str();
      return r;
    }
  }
  return std::nullopt;
}

}  // namespace memreal
