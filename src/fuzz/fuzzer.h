// The fuzz campaign driver: fans iterations out over parallel_for, each
// iteration deriving its RNG state purely from (campaign seed, iteration
// index) so a campaign is reproducible run-to-run and across thread
// counts, and any single failing iteration can be replayed alone with
// --start-iter.
//
// Targets are grouped by admissible size regime (registry SizeProfile +
// default eps): every allocator in a group can legally serve the same
// sequences, and the universal baselines join every group as differential
// references.  Iteration i exercises group i mod #groups: one generated
// base sequence plus a chain of mutants, each run through the lockstep
// differential oracle; the first failure is (optionally) shrunk and
// persisted to the corpus.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "alloc/registry.h"
#include "fuzz/differential.h"
#include "fuzz/shrinker.h"
#include "workload/sequence.h"

namespace memreal {

struct FuzzConfig {
  std::uint64_t seed = 1;
  /// First iteration index; the campaign covers
  /// [start_iteration, start_iteration + iterations).  Lets a failure at
  /// iteration i be reproduced alone via start_iteration = i, iterations=1.
  std::uint64_t start_iteration = 0;
  std::size_t iterations = 100;
  std::size_t updates_per_sequence = 200;
  /// Mutants chained off each base sequence (0 = generation only).
  std::size_t mutants_per_sequence = 2;
  /// Registry names to fuzz; empty = every fuzz_default registration.
  std::vector<std::string> allocators;
  /// Scenario-zoo name to generate base sequences from (perfadv/zoo.h)
  /// instead of the free-form fuzz generator; empty = free-form.  Every
  /// resolved target must be able to serve the scenario at its group's
  /// (eps, band) — run_fuzz throws up front listing each incompatible
  /// target's compatible scenarios rather than failing mid-campaign.
  std::string scenario;
  Tick capacity = Tick{1} << 40;
  /// "validated" fuzzes the validating cells alone; "release" additionally
  /// runs every target on the release engine in lockstep and reports any
  /// cost/counter/layout difference as engine-divergence (harness/cell.h
  /// engine_names()); "arena" instead locksteps each target against a
  /// byte-backed arena cell (payload stamps, memmove traffic, rounding
  /// bound) and reports differences as arena-divergence.  Arena campaigns
  /// should run at a much smaller capacity than the tick-only default —
  /// the arena materially allocates the address space it places into.
  std::string engine = "validated";
  bool shrink = true;
  double budget_slack = 1.0;
  std::size_t audit_every = 64;
  std::size_t check_invariants_every = 16;
  std::size_t threads = 0;  ///< 0 = all cores
  /// Directory for shrunk reproducers; empty = don't persist.
  std::string corpus_dir;
  /// Predicate-evaluation ceiling per shrink (min_size is derived from the
  /// failing group's size profile).
  std::size_t max_shrink_checks = 2000;
};

/// One admissible-regime group of fuzz targets.
struct TargetGroup {
  double eps = 1.0 / 64;
  double delta = 0.0;
  SizeProfile sizes;
  std::vector<AllocatorInfo> members;
};

/// Groups `infos` by identical (size profile, default eps/delta); universal
/// allocators join every group.  Throws if `infos` is empty.
[[nodiscard]] std::vector<TargetGroup> make_target_groups(
    const std::vector<AllocatorInfo>& infos);

/// The target set a campaign with this config fuzzes: config.allocators
/// resolved through the registry, or every fuzz_default registration when
/// the filter is empty.  Shared by run_fuzz and the CLI's --list so the
/// two can never drift.
[[nodiscard]] std::vector<AllocatorInfo> resolve_fuzz_targets(
    const FuzzConfig& config);

/// The per-iteration RNG seed: a pure function of (campaign seed,
/// iteration), independent of scheduling and thread count.
[[nodiscard]] std::uint64_t iteration_seed(std::uint64_t campaign_seed,
                                           std::uint64_t iteration);

/// The allocator seed used inside one iteration: a pure function of the
/// iteration seed and the target's name, so replays reconstruct the exact
/// allocator randomness from corpus metadata alone.
[[nodiscard]] std::uint64_t target_seed(std::uint64_t iteration_seed,
                                        const std::string& allocator);

struct FuzzFailure {
  FailureReport report;
  Sequence reproducer;  ///< shrunk when FuzzConfig::shrink
  std::uint64_t iteration = 0;
  std::uint64_t sequence_seed = 0;   ///< iteration_seed(seed, iteration)
  std::size_t original_updates = 0;  ///< pre-shrink length
  std::string corpus_path;           ///< set when persisted
};

struct FuzzSummary {
  std::size_t iterations = 0;
  std::size_t sequences = 0;  ///< base sequences + mutants executed
  std::size_t updates = 0;    ///< updates stepped per target set
  std::vector<FuzzFailure> failures;  ///< sorted by iteration

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Runs the campaign.  Deterministic: identical config (minus threads)
/// yields byte-identical reproducer traces.
[[nodiscard]] FuzzSummary run_fuzz(const FuzzConfig& config);

/// Replays every *.trace reproducer under `dir` against its recorded
/// allocator (falling back to the universal baselines when the metadata
/// names no registered allocator), with full validation.  Failures are
/// reported like run_fuzz's, without shrinking.
[[nodiscard]] FuzzSummary replay_corpus(const FuzzConfig& config,
                                        const std::string& dir);

}  // namespace memreal
