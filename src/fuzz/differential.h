// Differential oracle: drive a group of allocators in lockstep through one
// well-formed sequence, each against its own validated Memory, and flag
//
//   * InvariantViolation — any model/allocator invariant failure
//     (incremental per-update validation, periodic full audits, allocator
//     self-checks),
//   * kCostBudget — amortized ratio cost exceeding the target's registry
//     CostBudget (times a configurable slack),
//   * kDivergence — cross-allocator divergence in the accounted cost
//     invariants: all targets must agree with the replayed sequence on
//     live item count and live mass after every update, every insert must
//     move at least the inserted mass (the item's bytes get written), and
//     span may never undercut live mass.
//   * kEngineDivergence — with lockstep_release set, each target also
//     runs on the unchecked release engine (SlabStore + ReleaseEngine);
//     any difference from the validated cell in per-update cost, O(1)
//     model counters, or (at audit cadence and run end) the full layout
//     is a release fast-path bug.
//   * kArenaDivergence — with lockstep_arena set, each target also runs
//     on a byte-backed arena cell; tick costs and layouts must match the
//     validated cell exactly, payload stamps must verify, and the byte
//     traffic must sit inside the granule's rounding bound.
//
// The first failure (in update order, then fixed target order) wins, so a
// report is deterministic for a given (sequence, target list).
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "alloc/registry.h"
#include "workload/sequence.h"

namespace memreal {

class SlabStore;

enum class FailureKind : unsigned char {
  kInvariantViolation,
  kCostBudget,
  kDivergence,
  kEngineDivergence,
  kArenaDivergence,
};

[[nodiscard]] const char* to_string(FailureKind kind);

/// One allocator in the lockstep group.
struct FuzzTarget {
  std::string allocator;  ///< registry name
  AllocatorParams params;
  CostBudget budget;
};

struct DifferentialConfig {
  std::vector<FuzzTarget> targets;
  /// Multiplier on every target's budget bound (raise to silence cost
  /// findings, drop below 1 to hunt for regressions).
  double budget_slack = 1.0;
  /// Periodic full-audit cadence inside each target's Memory.
  std::size_t audit_every = 64;
  /// Allocator self-check cadence.
  std::size_t check_invariants_every = 16;
  /// Also run every target on the release engine in lockstep with its
  /// validated cell; any cost/counter/layout difference is reported as
  /// kEngineDivergence (layouts are compared at audit_every cadence and
  /// at run end, counters and costs at every update).
  bool lockstep_release = false;
  /// Test hook, lockstep_release only: invoked on each target's release
  /// SlabStore after every update (post-comparison, so damage surfaces at
  /// the next checkpoint).  Lets tests plant slab corruption and prove
  /// the oracle catches and shrinks it; must be deterministic for a given
  /// sequence or shrinking will not reproduce.
  std::function<void(SlabStore&, std::size_t update_index)> release_tamper;
  /// Also run every target on a byte-backed arena cell (src/arena) in
  /// lockstep with its validated cell; any per-update tick-cost
  /// difference, layout difference (at audit cadence and run end), failed
  /// payload-stamp verification, or byte traffic outside the granule's
  /// rounding bound is reported as kArenaDivergence.
  bool lockstep_arena = false;
  /// Granule of the lockstep arena cells.
  Tick arena_bytes_per_tick = 8;
};

struct FailureReport {
  FailureKind kind = FailureKind::kInvariantViolation;
  std::string allocator;       ///< failing target
  std::size_t update_index = 0;  ///< failing update (sequence length for
                                 ///< end-of-run cost findings)
  std::string message;
  double observed_cost = 0.0;  ///< ratio cost (cost findings only)
  double cost_bound = 0.0;

  /// Stable identity of a failure for shrinking: same target, same kind.
  [[nodiscard]] bool same_bug(const FailureReport& other) const {
    return kind == other.kind && allocator == other.allocator;
  }
};

/// Runs the lockstep differential; returns the first failure, if any.
/// The sequence must be well-formed (callers generate through
/// SequenceBuilder / repair_sequence, which guarantee it).
[[nodiscard]] std::optional<FailureReport> run_differential(
    const Sequence& seq, const DifferentialConfig& config);

}  // namespace memreal
