// Mutational stage of the fuzzer: structural edits over an existing
// sequence, repaired back to well-formedness through the workload layer's
// repair_sequence hook.  Mutants explore stream shapes the generator's
// fill/churn process never produces (bursty deletes, duplicated segments,
// reordered prefixes, size drift within the admissible band).
#pragma once

#include "alloc/registry.h"
#include "util/rng.h"
#include "workload/sequence.h"

namespace memreal {

struct MutatorConfig {
  double eps = 1.0 / 64;
  SizeProfile sizes;        ///< sizes stay inside this band
  std::size_t max_edits = 3;  ///< 1..max_edits edits per mutant
};

/// Produces a well-formed mutant of `seq` (possibly equal to it when every
/// edit lands on a no-op).  Edits: drop a slice, duplicate a slice with
/// fresh ids, resize an item within the band, swap two updates, rotate a
/// slice, truncate the tail.
[[nodiscard]] Sequence mutate_sequence(const Sequence& seq,
                                       const MutatorConfig& config, Rng& rng);

}  // namespace memreal
