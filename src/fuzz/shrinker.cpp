#include "fuzz/shrinker.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "util/check.h"

namespace memreal {

namespace {

/// Sizes of the items inserted in `seq`, in first-appearance order.
std::vector<std::pair<ItemId, Tick>> inserted_items(const Sequence& seq) {
  std::vector<std::pair<ItemId, Tick>> items;
  for (const Update& u : seq.updates) {
    if (u.is_insert()) items.emplace_back(u.id, u.size);
  }
  return items;
}

}  // namespace

ShrinkResult shrink_sequence(const Sequence& seq, const FailurePredicate& fails,
                             const ShrinkConfig& config) {
  MEMREAL_CHECK(config.min_size >= 1);
  MEMREAL_CHECK_MSG(fails(seq),
                    "shrink_sequence: predicate does not hold on the input");
  ShrinkResult result;
  result.seq = seq;
  result.checks = 1;
  Sequence& cur = result.seq;

  auto out_of_budget = [&] { return result.checks >= config.max_checks; };
  auto check = [&](const Sequence& cand) {
    if (cand.updates.empty() || out_of_budget()) return false;
    ++result.checks;
    return fails(cand);
  };

  bool improved = true;
  while (improved && !out_of_budget()) {
    improved = false;

    // Phase 1: ddmin chunk removal, chunk halving from n/2 down to 1.
    // subsequence() repairs each candidate (deletes of removed inserts are
    // dropped with them), so any chunk is a legal removal attempt.
    for (std::size_t chunk = std::max<std::size_t>(1, cur.size() / 2);;
         chunk /= 2) {
      std::size_t start = 0;
      while (start < cur.size() && !out_of_budget()) {
        std::vector<bool> keep(cur.size(), true);
        const std::size_t end = std::min(cur.size(), start + chunk);
        for (std::size_t i = start; i < end; ++i) keep[i] = false;
        Sequence cand = subsequence(cur, keep);
        if (cand.size() < cur.size() && check(cand)) {
          cur = std::move(cand);
          improved = true;  // retry the same start against the shorter tail
        } else {
          start += chunk;
        }
      }
      if (chunk == 1) break;
    }

    // Phase 2: per-item size reduction toward the floor — most aggressive
    // candidate (the floor itself) first, then backing off halfway toward
    // the current size.  Sizes only shrink, so repair never drops updates.
    for (const auto& [id, size] : inserted_items(cur)) {
      if (out_of_budget()) break;
      Tick target = config.min_size;
      while (target < size && !out_of_budget()) {
        Sequence cand = with_sizes(cur, {{id, target}});
        if (check(cand)) {
          cur = std::move(cand);
          improved = true;
          break;
        }
        const Tick gap = size - target;
        if (gap <= 1) break;
        target += (gap + 1) / 2;
      }
    }
  }
  result.minimal = !improved && !out_of_budget();
  return result;
}

}  // namespace memreal
