#include "fuzz/generator.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace memreal {

Sequence generate_sequence(const GeneratorConfig& config, Rng& rng,
                           std::string name) {
  MEMREAL_CHECK(config.updates > 0);
  const Tick lo = config.sizes.min_size(config.eps, config.capacity);
  const Tick hi = config.sizes.max_size(config.eps, config.capacity);
  MEMREAL_CHECK_MSG(lo < hi, "empty size band at eps " << config.eps);

  SequenceBuilder builder(std::move(name), config.capacity, config.eps);
  MEMREAL_CHECK_MSG(lo <= builder.budget(),
                    "profile band exceeds the adversary budget");

  std::vector<Tick> palette;
  if (config.sizes.fixed_palette) {
    palette.reserve(config.palette);
    for (std::size_t i = 0; i < config.palette; ++i) {
      palette.push_back(rng.next_tick_in(lo, hi));
    }
  }
  const bool log_uniform = hi / std::max<Tick>(1, lo) >= 16;
  auto draw_size = [&]() -> Tick {
    if (!palette.empty()) {
      return palette[rng.next_below(palette.size())];
    }
    if (log_uniform) {
      // Wide bands (folklore, mixed tiny+large) are sampled log-uniformly
      // so small sizes are exercised as often as large ones.
      const double llo = std::log(static_cast<double>(lo));
      const double lhi = std::log(static_cast<double>(hi));
      const auto s = static_cast<Tick>(
          std::exp(llo + rng.next_double() * (lhi - llo)));
      return std::clamp(s, lo, hi - 1);
    }
    return rng.next_tick_in(lo, hi);
  };

  // A random fill target below max_load: some sequences stress near-full
  // memory, others stay sparse.
  const auto target_mass = static_cast<Tick>(
      rng.next_double() * config.max_load *
      static_cast<double>(builder.budget()));

  for (std::size_t n = 0; n < config.updates; ++n) {
    bool do_insert = true;
    if (builder.live_count() > 0) {
      const bool below_target = builder.live_mass() < target_mass;
      do_insert = rng.next_below(100) < (below_target ? 80 : 45);
    }
    if (do_insert) {
      Tick size = draw_size();
      if (!builder.can_insert(size)) {
        if (builder.live_count() > 0) {
          builder.erase_random(rng);
          continue;
        }
        size = lo;  // live mass is 0 and lo <= budget, so this always fits
      }
      builder.insert(size);
    } else {
      builder.erase_random(rng);
    }
  }
  return builder.take();
}

}  // namespace memreal
