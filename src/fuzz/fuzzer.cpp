#include "fuzz/fuzzer.h"

#include <algorithm>
#include <atomic>
#include <optional>
#include <sstream>

#include "fuzz/corpus.h"
#include "fuzz/generator.h"
#include "fuzz/mutator.h"
#include "perfadv/zoo.h"
#include "util/check.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace memreal {

std::uint64_t iteration_seed(std::uint64_t campaign_seed,
                             std::uint64_t iteration) {
  SplitMix64 sm(campaign_seed ^ (0x9e3779b97f4a7c15ULL * (iteration + 1)));
  return sm.next();
}

std::uint64_t target_seed(std::uint64_t iteration_seed,
                          const std::string& allocator) {
  // FNV-1a over the name, folded into the iteration seed.
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : allocator) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  SplitMix64 sm(iteration_seed ^ h);
  return sm.next();
}

std::vector<TargetGroup> make_target_groups(
    const std::vector<AllocatorInfo>& infos) {
  MEMREAL_CHECK_MSG(!infos.empty(), "no fuzz targets selected");
  std::vector<TargetGroup> groups;
  std::vector<AllocatorInfo> universal;
  for (const AllocatorInfo& info : infos) {
    if (info.universal) {
      universal.push_back(info);
      continue;
    }
    const auto it = std::find_if(
        groups.begin(), groups.end(), [&](const TargetGroup& g) {
          return g.sizes == info.sizes && g.eps == info.default_eps &&
                 g.delta == info.default_delta;
        });
    if (it != groups.end()) {
      it->members.push_back(info);
    } else {
      groups.push_back(
          {info.default_eps, info.default_delta, info.sizes, {info}});
    }
  }
  if (groups.empty()) {
    // Only universal baselines selected: fuzz them against each other on
    // the first one's own band.
    groups.push_back({universal.front().default_eps,
                      universal.front().default_delta,
                      universal.front().sizes,
                      {}});
  }
  for (TargetGroup& g : groups) {
    for (const AllocatorInfo& info : universal) g.members.push_back(info);
  }
  return groups;
}

namespace {

DifferentialConfig make_differential_config(const TargetGroup& group,
                                            std::uint64_t iter_seed,
                                            const FuzzConfig& cfg) {
  DifferentialConfig d;
  d.budget_slack = cfg.budget_slack;
  d.audit_every = cfg.audit_every;
  d.check_invariants_every = cfg.check_invariants_every;
  d.lockstep_release = cfg.engine == "release";
  d.lockstep_arena = cfg.engine == "arena";
  d.targets.reserve(group.members.size());
  for (const AllocatorInfo& info : group.members) {
    FuzzTarget t;
    t.allocator = info.name;
    t.params.eps = group.eps;
    t.params.delta = group.delta;
    t.params.seed = target_seed(iter_seed, info.name);
    t.budget = info.budget;
    d.targets.push_back(std::move(t));
  }
  return d;
}

/// Shrinks `failing` while the differential keeps reporting the same bug.
Sequence shrink_failure(const Sequence& failing, const FailureReport& report,
                        const DifferentialConfig& dcfg,
                        const TargetGroup& group, const FuzzConfig& cfg) {
  // same_bug is judged per (target, kind), so re-check candidates against
  // the failing target alone: ~group-size× fewer cells per candidate, and
  // another target failing first can't mask this one's reproduction.
  DifferentialConfig narrowed = dcfg;
  std::erase_if(narrowed.targets, [&](const FuzzTarget& t) {
    return t.allocator != report.allocator;
  });
  if (narrowed.targets.empty()) narrowed = dcfg;
  FailurePredicate same_bug = [&](const Sequence& cand) {
    const auto r = run_differential(cand, narrowed);
    return r.has_value() && r->same_bug(report);
  };
  ShrinkConfig sc;
  sc.min_size = group.sizes.min_size(group.eps, cfg.capacity);
  sc.max_checks = cfg.max_shrink_checks;
  return shrink_sequence(failing, same_bug, sc).seq;
}

/// Every target must serve cfg.scenario at its group's (eps, capacity);
/// throws naming the first misfit and its compatible scenarios.
void check_scenario_targets(const FuzzConfig& cfg,
                            const std::vector<TargetGroup>& groups) {
  for (const TargetGroup& group : groups) {
    for (const AllocatorInfo& info : group.members) {
      const std::string why = scenario_incompatibility(
          cfg.scenario, info, group.eps, cfg.capacity);
      if (why.empty()) continue;
      std::string compat;
      for (const std::string& s :
           compatible_scenarios(info, group.eps, cfg.capacity)) {
        if (!compat.empty()) compat += ", ";
        compat += s;
      }
      MEMREAL_CHECK_MSG(false, why << " (compatible scenarios for "
                                   << info.name << ": "
                                   << (compat.empty() ? "none at this eps"
                                                      : compat)
                                   << ")");
    }
  }
}

}  // namespace

std::vector<AllocatorInfo> resolve_fuzz_targets(const FuzzConfig& cfg) {
  std::vector<AllocatorInfo> infos;
  if (cfg.allocators.empty()) {
    for (AllocatorInfo& info : allocator_infos()) {
      if (info.fuzz_default) infos.push_back(std::move(info));
    }
  } else {
    for (const std::string& name : cfg.allocators) {
      infos.push_back(allocator_info(name));  // throws on unknown names
    }
  }
  return infos;
}

FuzzSummary run_fuzz(const FuzzConfig& cfg) {
  MEMREAL_CHECK(cfg.iterations > 0);
  MEMREAL_CHECK_MSG(cfg.engine == "validated" || cfg.engine == "release" ||
                        cfg.engine == "arena",
                    "unknown fuzz engine '"
                        << cfg.engine << "' (validated, release, arena)");
  const std::vector<TargetGroup> groups =
      make_target_groups(resolve_fuzz_targets(cfg));
  if (!cfg.scenario.empty()) check_scenario_targets(cfg, groups);

  std::vector<std::optional<FuzzFailure>> slots(cfg.iterations);
  std::atomic<std::size_t> sequences{0};
  std::atomic<std::size_t> updates{0};

  parallel_for(
      cfg.iterations,
      [&](std::size_t i) {
        const std::uint64_t iter = cfg.start_iteration + i;
        const std::uint64_t iseed = iteration_seed(cfg.seed, iter);
        const TargetGroup& group = groups[iter % groups.size()];
        const DifferentialConfig dcfg =
            make_differential_config(group, iseed, cfg);
        Rng rng(iseed);

        std::ostringstream name;
        name << "fuzz-s" << cfg.seed << "-i" << iter;
        Sequence seq;
        if (cfg.scenario.empty()) {
          GeneratorConfig gen;
          gen.capacity = cfg.capacity;
          gen.eps = group.eps;
          gen.sizes = group.sizes;
          gen.updates = cfg.updates_per_sequence;
          seq = generate_sequence(gen, rng, name.str());
        } else {
          // Zoo-structured base: the group's band, a per-iteration seed.
          ScenarioParams sp;
          sp.capacity = cfg.capacity;
          sp.eps = group.eps;
          sp.min_size = group.sizes.min_size(group.eps, cfg.capacity);
          sp.max_size = group.sizes.max_size(group.eps, cfg.capacity) - 1;
          sp.fixed_palette = group.sizes.fixed_palette;
          sp.updates = cfg.updates_per_sequence;
          sp.seed = rng.next_u64();
          seq = make_scenario(cfg.scenario, sp);
          seq.name = name.str();
        }

        MutatorConfig mut;
        mut.eps = group.eps;
        mut.sizes = group.sizes;

        for (std::size_t m = 0; m <= cfg.mutants_per_sequence; ++m) {
          if (m > 0) {
            Sequence mutant = mutate_sequence(seq, mut, rng);
            mutant.name = name.str() + "-m" + std::to_string(m);
            seq = std::move(mutant);
          }
          sequences.fetch_add(1, std::memory_order_relaxed);
          updates.fetch_add(seq.size(), std::memory_order_relaxed);
          const auto report = run_differential(seq, dcfg);
          if (!report) continue;

          FuzzFailure f;
          f.report = *report;
          f.iteration = iter;
          f.sequence_seed = iseed;
          f.original_updates = seq.size();
          f.reproducer = cfg.shrink
                             ? shrink_failure(seq, *report, dcfg, group, cfg)
                             : std::move(seq);
          slots[i] = std::move(f);
          break;  // one failure per iteration
        }
      },
      cfg.threads);

  FuzzSummary summary;
  summary.iterations = cfg.iterations;
  summary.sequences = sequences.load();
  summary.updates = updates.load();
  for (auto& slot : slots) {
    if (slot) summary.failures.push_back(std::move(*slot));
  }
  if (!cfg.corpus_dir.empty()) {
    for (FuzzFailure& f : summary.failures) {
      CorpusEntry entry;
      entry.seq = f.reproducer;
      entry.allocator = f.report.allocator;
      entry.kind = to_string(f.report.kind);
      entry.seed = cfg.seed;
      entry.iteration = f.iteration;
      f.corpus_path = save_corpus_entry(entry, cfg.corpus_dir);
    }
  }
  return summary;
}

FuzzSummary replay_corpus(const FuzzConfig& cfg, const std::string& dir) {
  FuzzSummary summary;
  const std::vector<std::string> paths = list_corpus(dir);
  const std::vector<std::string> known = allocator_names();
  for (const std::string& path : paths) {
    const CorpusEntry entry = load_corpus_entry(path);
    ++summary.iterations;

    DifferentialConfig dcfg;
    dcfg.budget_slack = cfg.budget_slack;
    dcfg.audit_every = cfg.audit_every;
    dcfg.check_invariants_every = cfg.check_invariants_every;
    dcfg.lockstep_release = cfg.engine == "release";
    dcfg.lockstep_arena = cfg.engine == "arena";
    const std::uint64_t iseed = iteration_seed(entry.seed, entry.iteration);
    const bool have_target =
        std::find(known.begin(), known.end(), entry.allocator) != known.end();
    if (have_target) {
      const AllocatorInfo info = allocator_info(entry.allocator);
      FuzzTarget t;
      t.allocator = info.name;
      t.params.eps = entry.seq.eps;
      t.params.delta = info.default_delta;
      t.params.seed = target_seed(iseed, info.name);
      t.budget = info.budget;
      dcfg.targets.push_back(std::move(t));
    } else {
      for (const AllocatorInfo& info : allocator_infos()) {
        if (!info.universal) continue;
        FuzzTarget t;
        t.allocator = info.name;
        t.params.eps = entry.seq.eps;
        t.params.seed = target_seed(iseed, info.name);
        t.budget = info.budget;
        dcfg.targets.push_back(std::move(t));
      }
    }

    ++summary.sequences;
    summary.updates += entry.seq.size();
    const auto report = run_differential(entry.seq, dcfg);
    if (!report) continue;
    FuzzFailure f;
    f.report = *report;
    f.reproducer = entry.seq;
    f.iteration = entry.iteration;
    f.sequence_seed = iseed;
    f.original_updates = entry.seq.size();
    f.corpus_path = path;
    summary.failures.push_back(std::move(f));
  }
  return summary;
}

}  // namespace memreal
