#include "fuzz/corpus.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "util/check.h"
#include "workload/trace.h"

namespace memreal {

namespace fs = std::filesystem;

std::string corpus_file_name(const CorpusEntry& entry) {
  std::ostringstream os;
  os << entry.allocator << '-' << entry.kind << "-s" << entry.seed << "-i"
     << entry.iteration << ".trace";
  return os.str();
}

std::string corpus_to_string(const CorpusEntry& entry) {
  std::ostringstream os;
  os << "#! allocator=" << entry.allocator << " kind=" << entry.kind
     << " seed=" << entry.seed << " iteration=" << entry.iteration;
  if (!entry.engine.empty()) os << " engine=" << entry.engine;
  if (entry.ratio > 0) {
    // max_digits10 so the recorded ratio round-trips bit-exactly.
    os << " ratio=" << std::setprecision(17) << entry.ratio;
  }
  os << "\n" << trace_to_string(entry.seq);
  return os.str();
}

namespace {

std::uint64_t parse_u64(const std::string& value) {
  // stoull alone would wrap negatives and ignore trailing garbage; require
  // pure digits so corrupt metadata throws as corpus.h documents.
  const bool digits =
      !value.empty() && std::all_of(value.begin(), value.end(), [](char c) {
        return std::isdigit(static_cast<unsigned char>(c)) != 0;
      });
  MEMREAL_CHECK_MSG(digits,
                    "malformed corpus metadata value '" << value << "'");
  try {
    return std::stoull(value);
  } catch (const std::exception&) {
    MEMREAL_CHECK_MSG(false,
                      "corpus metadata value out of range '" << value << "'");
  }
}

double parse_ratio(const std::string& value) {
  try {
    std::size_t consumed = 0;
    const double d = std::stod(value, &consumed);
    MEMREAL_CHECK_MSG(consumed == value.size() && d >= 0,
                      "malformed corpus ratio '" << value << "'");
    return d;
  } catch (const std::invalid_argument&) {
    MEMREAL_CHECK_MSG(false, "malformed corpus ratio '" << value << "'");
  } catch (const std::out_of_range&) {
    MEMREAL_CHECK_MSG(false, "corpus ratio out of range '" << value << "'");
  }
}

}  // namespace

CorpusEntry corpus_from_string(const std::string& text) {
  CorpusEntry entry;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("#!", 0) != 0) continue;
    std::istringstream ls(line.substr(2));
    std::string field;
    while (ls >> field) {
      const auto eq = field.find('=');
      if (eq == std::string::npos) continue;
      const std::string key = field.substr(0, eq);
      const std::string value = field.substr(eq + 1);
      if (key == "allocator") {
        entry.allocator = value;
      } else if (key == "kind") {
        entry.kind = value;
      } else if (key == "seed") {
        entry.seed = parse_u64(value);
      } else if (key == "iteration") {
        entry.iteration = parse_u64(value);
      } else if (key == "engine") {
        entry.engine = value;
      } else if (key == "ratio") {
        entry.ratio = parse_ratio(value);
      }
    }
  }
  entry.seq = trace_from_string(text);  // '#'-lines are trace comments
  return entry;
}

std::string save_corpus_entry(const CorpusEntry& entry,
                              const std::string& dir) {
  fs::create_directories(dir);
  const fs::path path = fs::path(dir) / corpus_file_name(entry);
  std::ofstream out(path);
  MEMREAL_CHECK_MSG(out.is_open(),
                    "cannot open corpus file " << path.string());
  out << corpus_to_string(entry);
  out.close();
  MEMREAL_CHECK_MSG(static_cast<bool>(out),
                    "write to corpus file " << path.string() << " failed");
  return path.string();
}

CorpusEntry load_corpus_entry(const std::string& path) {
  std::ifstream in(path);
  MEMREAL_CHECK_MSG(in.is_open(), "cannot open corpus file " << path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return corpus_from_string(buffer.str());
}

std::vector<std::string> list_corpus(const std::string& dir) {
  std::vector<std::string> paths;
  if (!fs::is_directory(dir)) return paths;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.is_regular_file() && e.path().extension() == ".trace") {
      paths.push_back(e.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

}  // namespace memreal
