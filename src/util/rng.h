// Deterministic pseudo-random number generation.
//
// Two small, fast, well-studied generators: SplitMix64 (for seeding and
// cheap hole-filling) and xoshiro256++ (the workhorse).  Both are
// header-only and allocation-free so allocators can embed them by value.
// Determinism matters: every experiment in EXPERIMENTS.md is reproducible
// from (seed, eps, workload) alone.
#pragma once

#include <array>
#include <cstdint>

#include "util/check.h"
#include "util/types.h"

namespace memreal {

/// SplitMix64: 64-bit state, passes BigCrush when used as a stream.
/// Primarily used to expand a single seed into xoshiro's 256-bit state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ by Blackman & Vigna.  Fast, 256-bit state, equidistributed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
    // Avoid the all-zero state (probability ~2^-256, but be exact).
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) using Lemire's multiply-shift rejection method.
  std::uint64_t next_below(std::uint64_t bound) {
    MEMREAL_CHECK(bound > 0);
    // 128-bit multiply; gcc/clang support __uint128_t on all our targets.
    __uint128_t m = static_cast<__uint128_t>(next_u64()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next_u64()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the closed range [lo, hi].
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) {
    MEMREAL_CHECK(lo <= hi);
    return lo + next_below(hi - lo + 1);
  }

  /// Uniform Tick in [lo, hi) — half-open, used for continuous thresholds
  /// such as the waste-recovery draw T <- (eps/2, eps).
  Tick next_tick_in(Tick lo, Tick hi) {
    MEMREAL_CHECK(lo < hi);
    return lo + next_below(hi - lo);
  }

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Fisher–Yates shuffle.
  template <typename Vec>
  void shuffle(Vec& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_{};
};

}  // namespace memreal
