// Randomized threshold schemes (Lemmas 4.3 and 4.4 of the paper).
//
// Several allocators deliberately randomize *when* expensive maintenance
// fires so that no single update is likely to pay for it:
//
//  * GEO's waste recovery draws thresholds T uniformly from (eps/2, eps);
//    Lemma 4.3 bounds the probability that an accumulating sum crosses a
//    window [a, b] by 4(b-a)/W.
//  * GEO's level rebuilds draw integer thresholds from
//    [ceil(c/4), ceil(c/3)]; Lemma 4.4 bounds the hit probability of any
//    fixed count by 100/N.
//  * FLEXHASH's buffer rebuilds draw from (2M, 4M), and RSUM's rebuild
//    threshold from (delta^-1/(8m), delta^-1/(6m)).
//
// Both schemes carry *overflow*: the excess above the crossed threshold
// counts toward the next draw — exactly as the paper specifies ("waste from
// the final delete ... overflows to count towards the next waste recovery
// step").
#pragma once

#include <cstdint>

#include "util/rng.h"
#include "util/types.h"

namespace memreal {

/// Continuous accumulate-until-threshold scheme of Lemma 4.3.
/// Thresholds are drawn uniformly from the half-open interval
/// [half_window, window) where half_window = window/2.
class ContinuousThreshold {
 public:
  /// `window` is W in Lemma 4.3; thresholds are uniform in (W/2, W).
  ContinuousThreshold(Tick window, Rng& rng);

  /// Adds `amount` to the accumulator.  Returns true when the accumulated
  /// total crosses the current threshold; in that case the overflow is
  /// retained and a fresh threshold is drawn.
  [[nodiscard]] bool add(Tick amount);

  [[nodiscard]] Tick accumulated() const { return acc_; }
  [[nodiscard]] Tick threshold() const { return threshold_; }
  [[nodiscard]] Tick window() const { return window_; }

 private:
  void resample();

  Tick window_;
  Rng* rng_;
  Tick threshold_ = 0;
  Tick acc_ = 0;
};

/// Discrete count-until-threshold scheme of Lemma 4.4.
/// Thresholds are drawn uniformly from [ceil(N/4), ceil(N/3)] ∩ N.
class CountThreshold {
 public:
  CountThreshold(std::uint64_t n, Rng& rng);

  /// Counts one event; true when the count reaches the threshold (the count
  /// then resets to zero and a fresh threshold is drawn).
  [[nodiscard]] bool tick();

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t threshold() const { return threshold_; }

  /// Lower/upper bounds of the sampling range (ceil(N/4), ceil(N/3)).
  [[nodiscard]] std::uint64_t range_lo() const { return lo_; }
  [[nodiscard]] std::uint64_t range_hi() const { return hi_; }

  /// Forces a reset (used when a rebuild is "free": triggered by a
  /// shallower level's rebuild, per Algorithm 2 line 12).
  void reset_free();

 private:
  void resample();

  std::uint64_t lo_, hi_;
  Rng* rng_;
  std::uint64_t threshold_ = 0;
  std::uint64_t count_ = 0;
};

/// ceil(a / b) for unsigned integers.
[[nodiscard]] constexpr std::uint64_t ceil_div(std::uint64_t a,
                                               std::uint64_t b) {
  return (a + b - 1) / b;
}

}  // namespace memreal
