// A minimal JSON document builder for machine-readable artifacts
// (BENCH_*.json, memreal_shard --json).  Build-only — there is no parser;
// consumers are external (CI checks, plotting scripts).  Keys keep
// insertion order so emitted files diff cleanly across runs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace memreal {

class Json {
 public:
  /// Scalars.  Doubles are emitted with max_digits10 so round-trips are
  /// exact; non-finite doubles are emitted as null (JSON has no inf/nan).
  Json() : kind_(Kind::kNull) {}
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}             // NOLINT
  Json(double d) : kind_(Kind::kNumber), num_(d) {}          // NOLINT
  Json(std::uint64_t u) : kind_(Kind::kUInt), uint_(u) {}    // NOLINT
  Json(int i) : kind_(Kind::kNumber), num_(i) {}             // NOLINT
  Json(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}  // NOLINT
  Json(const char* s) : kind_(Kind::kString), str_(s) {}     // NOLINT

  static Json object() { return Json(Kind::kObject); }
  static Json array() { return Json(Kind::kArray); }

  /// Object member (insertion-ordered; duplicate keys are kept as-is, the
  /// caller is expected not to produce them).  Returns *this for chaining.
  Json& set(const std::string& key, Json value);

  /// Array element.  Returns *this for chaining.
  Json& push(Json value);

  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] std::size_t size() const { return children_.size(); }

  /// Serializes the document.  indent = 0 is compact; indent > 0
  /// pretty-prints with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = 0) const;

 private:
  enum class Kind : unsigned char {
    kNull, kBool, kNumber, kUInt, kString, kObject, kArray
  };

  explicit Json(Kind kind) : kind_(kind) {}

  void write(std::string& out, int indent, int depth) const;
  static void write_escaped(std::string& out, const std::string& s);

  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::uint64_t uint_ = 0;
  std::string str_;
  std::vector<std::pair<std::string, Json>> children_;  ///< object / array
};

}  // namespace memreal
