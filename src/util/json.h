// A minimal JSON document builder + reader for machine-readable artifacts
// (BENCH_*.json, memreal_shard --json).  Keys keep insertion order so
// emitted files diff cleanly across runs.  The reader (`Json::parse`) is
// what the report layer (`src/report/`) uses to load BENCH_*.json back;
// dump/parse round-trips are exact (uints stay uints, doubles are emitted
// with max_digits10).
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace memreal {

/// Thrown by Json::parse on malformed input; the message carries the
/// 1-based line and column of the offending byte.
class JsonParseError : public std::runtime_error {
 public:
  explicit JsonParseError(const std::string& what)
      : std::runtime_error(what) {}
};

class Json {
 public:
  /// Scalars.  Doubles are emitted with max_digits10 so round-trips are
  /// exact; non-finite doubles are emitted as null (JSON has no inf/nan).
  Json() : kind_(Kind::kNull) {}
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}             // NOLINT
  Json(double d) : kind_(Kind::kNumber), num_(d) {}          // NOLINT
  Json(std::uint64_t u) : kind_(Kind::kUInt), uint_(u) {}    // NOLINT
  Json(int i) : kind_(Kind::kNumber), num_(i) {}             // NOLINT
  Json(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}  // NOLINT
  Json(const char* s) : kind_(Kind::kString), str_(s) {}     // NOLINT

  static Json object() { return Json(Kind::kObject); }
  static Json array() { return Json(Kind::kArray); }

  /// Parses a complete JSON document (trailing garbage is an error).
  /// Non-negative integers without fraction/exponent parse as uints,
  /// everything else numeric as double — so dump/parse round-trips keep
  /// 64-bit counters exact.  Throws JsonParseError on malformed input.
  [[nodiscard]] static Json parse(std::string_view text);

  /// Object member (insertion-ordered; duplicate keys are kept as-is, the
  /// caller is expected not to produce them).  Returns *this for chaining.
  Json& set(const std::string& key, Json value);

  /// Array element.  Returns *this for chaining.
  Json& push(Json value);

  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_uint() const { return kind_ == Kind::kUInt; }
  /// True for both floating-point and unsigned-integer values.
  [[nodiscard]] bool is_number() const {
    return kind_ == Kind::kNumber || kind_ == Kind::kUInt;
  }
  [[nodiscard]] std::size_t size() const { return children_.size(); }

  /// Typed accessors; each throws JsonParseError when the value has a
  /// different kind (the report layer surfaces these as artifact errors).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;  ///< kNumber or kUInt
  [[nodiscard]] std::uint64_t as_u64() const;
  [[nodiscard]] const std::string& as_string() const;

  /// Object lookup: first member named `key`, or nullptr.
  [[nodiscard]] const Json* find(const std::string& key) const;
  /// Object lookup that throws JsonParseError when `key` is absent.
  [[nodiscard]] const Json& at(const std::string& key) const;
  /// Array element (bounds-checked).
  [[nodiscard]] const Json& at(std::size_t index) const;
  /// Raw members: (key, value) for objects, ("", value) for arrays.
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& items()
      const {
    return children_;
  }

  /// Serializes the document.  indent = 0 is compact; indent > 0
  /// pretty-prints with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = 0) const;

 private:
  enum class Kind : unsigned char {
    kNull, kBool, kNumber, kUInt, kString, kObject, kArray
  };

  explicit Json(Kind kind) : kind_(kind) {}

  void write(std::string& out, int indent, int depth) const;
  static void write_escaped(std::string& out, const std::string& s);

  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::uint64_t uint_ = 0;
  std::string str_;
  std::vector<std::pair<std::string, Json>> children_;  ///< object / array
};

}  // namespace memreal
