#include "util/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "util/check.h"

namespace memreal {

namespace {

constexpr int kMaxParseDepth = 128;

/// Cursor over the input with 1-based line/column error reporting.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1;
    std::size_t col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw JsonParseError("JSON parse error at line " + std::to_string(line) +
                         ", column " + std::to_string(col) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + text_[pos_] + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value(int depth) {
    if (depth > kMaxParseDepth) fail("nesting deeper than 128 levels");
    skip_ws();
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json();
      default: return parse_number();
    }
  }

  Json parse_object(int depth) {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(key, parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json parse_array(int depth) {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push(parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  void append_utf8(std::string& out, unsigned code_point) {
    if (code_point < 0x80) {
      out += static_cast<char>(code_point);
    } else if (code_point < 0x800) {
      out += static_cast<char>(0xC0 | (code_point >> 6));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else if (code_point < 0x10000) {
      out += static_cast<char>(0xE0 | (code_point >> 12));
      out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code_point >> 18));
      out += static_cast<char>(0x80 | ((code_point >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    }
  }

  unsigned parse_hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("bad \\u escape digit");
      }
    }
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
            if (!consume_literal("\\u")) fail("lone high surrogate");
            const unsigned lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  std::size_t digit_run() {
    std::size_t digits = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
      ++digits;
    }
    return digits;
  }

  // Strict RFC 8259 number grammar: no leading '+', no leading zeros, a
  // digit on both sides of '.', digits after the exponent marker.
  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    const std::size_t int_start = pos_;
    if (digit_run() == 0) fail("bad number");
    if (text_[int_start] == '0' && pos_ - int_start > 1) {
      fail("leading zero in number");
    }
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (digit_run() == 0) fail("bad number: no digits after '.'");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digit_run() == 0) fail("bad number: no exponent digits");
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (integral && token[0] != '-') {
      errno = 0;
      char* end = nullptr;
      const std::uint64_t u = std::strtoull(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return Json(u);
      }
      // Falls through for > 2^64 - 1: representable only as a double.
    }
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("bad number");
    if (errno == ERANGE && !std::isfinite(d)) {
      fail("number out of double range");
    }
    return Json(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void kind_error(const char* want) {
  throw JsonParseError(std::string("JSON value is not ") + want);
}

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("a bool");
  return bool_;
}

double Json::as_double() const {
  if (kind_ == Kind::kUInt) return static_cast<double>(uint_);
  if (kind_ != Kind::kNumber) kind_error("a number");
  return num_;
}

std::uint64_t Json::as_u64() const {
  if (kind_ != Kind::kUInt) kind_error("an unsigned integer");
  return uint_;
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) kind_error("a string");
  return str_;
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::kObject) kind_error("an object");
  for (const auto& [k, v] : children_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* v = find(key);
  if (v == nullptr) {
    throw JsonParseError("JSON object has no member \"" + key + "\"");
  }
  return *v;
}

const Json& Json::at(std::size_t index) const {
  if (kind_ != Kind::kArray) kind_error("an array");
  if (index >= children_.size()) {
    throw JsonParseError("JSON array index " + std::to_string(index) +
                         " out of range (size " +
                         std::to_string(children_.size()) + ")");
  }
  return children_[index].second;
}

Json& Json::set(const std::string& key, Json value) {
  MEMREAL_CHECK_MSG(kind_ == Kind::kObject, "Json::set on a non-object");
  children_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  MEMREAL_CHECK_MSG(kind_ == Kind::kArray, "Json::push on a non-array");
  children_.emplace_back(std::string(), std::move(value));
  return *this;
}

void Json::write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void Json::write(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent > 0) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kUInt: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%llu",
                    static_cast<unsigned long long>(uint_));
      out += buf;
      break;
    }
    case Kind::kNumber: {
      if (!std::isfinite(num_)) {
        out += "null";
        break;
      }
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.*g",
                    std::numeric_limits<double>::max_digits10, num_);
      out += buf;
      break;
    }
    case Kind::kString:
      write_escaped(out, str_);
      break;
    case Kind::kObject:
    case Kind::kArray: {
      const bool obj = kind_ == Kind::kObject;
      out += obj ? '{' : '[';
      for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        if (obj) {
          write_escaped(out, children_[i].first);
          out += indent > 0 ? ": " : ":";
        }
        children_[i].second.write(out, indent, depth + 1);
      }
      if (!children_.empty()) newline(depth);
      out += obj ? '}' : ']';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

}  // namespace memreal
