#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <limits>

#include "util/check.h"

namespace memreal {

Json& Json::set(const std::string& key, Json value) {
  MEMREAL_CHECK_MSG(kind_ == Kind::kObject, "Json::set on a non-object");
  children_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  MEMREAL_CHECK_MSG(kind_ == Kind::kArray, "Json::push on a non-array");
  children_.emplace_back(std::string(), std::move(value));
  return *this;
}

void Json::write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void Json::write(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent > 0) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kUInt: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%llu",
                    static_cast<unsigned long long>(uint_));
      out += buf;
      break;
    }
    case Kind::kNumber: {
      if (!std::isfinite(num_)) {
        out += "null";
        break;
      }
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.*g",
                    std::numeric_limits<double>::max_digits10, num_);
      out += buf;
      break;
    }
    case Kind::kString:
      write_escaped(out, str_);
      break;
    case Kind::kObject:
    case Kind::kArray: {
      const bool obj = kind_ == Kind::kObject;
      out += obj ? '{' : '[';
      for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        if (obj) {
          write_escaped(out, children_[i].first);
          out += indent > 0 ? ": " : ":";
        }
        children_[i].second.write(out, indent, depth + 1);
      }
      if (!children_.empty()) newline(depth);
      out += obj ? '}' : ']';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

}  // namespace memreal
