// Least-squares fitting helpers.
//
// The headline comparisons in the paper are growth exponents: folklore is
// Theta(eps^-1), SIMPLE is O(eps^-2/3), GEO is ~O(eps^-1/2), the lower bound
// and RSUM are Theta(log eps^-1).  `fit_power_law` recovers the exponent of
// cost ~ C * (1/eps)^alpha from a sweep; `fit_linear` checks the logarithmic
// regimes (cost ~ a + b * log(1/eps)).
#pragma once

#include <span>
#include <vector>

namespace memreal {

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  ///< coefficient of determination
};

/// Ordinary least squares y = intercept + slope * x.
[[nodiscard]] LinearFit fit_linear(std::span<const double> x,
                                   std::span<const double> y);

struct PowerLawFit {
  double exponent = 0.0;   ///< alpha in y ~ C x^alpha
  double log_coeff = 0.0;  ///< ln C
  double r2 = 0.0;
};

/// Fits y ~ C * x^alpha by OLS in log–log space.  All x, y must be > 0.
[[nodiscard]] PowerLawFit fit_power_law(std::span<const double> x,
                                        std::span<const double> y);

}  // namespace memreal
