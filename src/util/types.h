// Fundamental value types shared by every memreal subsystem.
//
// The paper models memory as the real interval [0, 1].  We discretize it to
// integer "ticks" so that every correctness invariant (interval
// disjointness, the resizable bound [0, L + eps], waste budgets) is an exact
// integer comparison.  The default capacity of 2^50 ticks leaves ample
// resolution: even eps = 2^-16 and item sizes as small as eps^3 are still
// millions of ticks.
#pragma once

#include <cstdint>
#include <limits>

namespace memreal {

/// A size or offset measured in ticks.  One memory "unit interval" from the
/// paper corresponds to `capacity` ticks.
using Tick = std::uint64_t;

/// Stable identity of an item across moves.  Ids are chosen by the caller
/// (workload generators use consecutive integers) and are never reused
/// within a sequence.
using ItemId = std::uint64_t;

/// Sentinel for "no item".
inline constexpr ItemId kNoItem = std::numeric_limits<ItemId>::max();

/// Default memory capacity in ticks ("1.0" in the paper's units).
inline constexpr Tick kDefaultCapacity = Tick{1} << 50;

/// Free-space parameter eps together with its exact tick value.  All
/// allocator arithmetic uses `ticks`; `value` is kept for computing
/// fractional powers (eps^{1/3}, sqrt(eps), ...) whose results are rounded
/// conservatively back to ticks at configuration time.
struct Eps {
  double value = 0.0;  ///< eps as a real number in (0, 1).
  Tick ticks = 0;      ///< max(1, floor(eps * capacity)).

  static Eps of(double eps, Tick capacity) {
    auto ticks = static_cast<Tick>(eps * static_cast<double>(capacity));
    // A tiny eps x capacity product must not truncate to zero ticks: with
    // eps_ticks == 0 the load-factor promise and the resizable bound
    // [0, L + eps] degenerate to vacuous comparisons.  Memory's
    // constructor rejects eps_ticks == 0 outright.
    if (ticks == 0) ticks = 1;
    return Eps{eps, ticks};
  }
};

}  // namespace memreal
