#include "util/fit.h"

#include <cmath>

#include "util/check.h"

namespace memreal {

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
  MEMREAL_CHECK(x.size() == y.size());
  MEMREAL_CHECK(x.size() >= 2);
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  MEMREAL_CHECK_MSG(denom != 0.0, "degenerate x values in fit");
  LinearFit f;
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - (f.intercept + f.slope * x[i]);
    ss_res += e * e;
  }
  f.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return f;
}

PowerLawFit fit_power_law(std::span<const double> x,
                          std::span<const double> y) {
  MEMREAL_CHECK(x.size() == y.size());
  std::vector<double> lx(x.size()), ly(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    MEMREAL_CHECK_MSG(x[i] > 0 && y[i] > 0, "power-law fit needs positives");
    lx[i] = std::log(x[i]);
    ly[i] = std::log(y[i]);
  }
  const LinearFit lin = fit_linear(lx, ly);
  return PowerLawFit{lin.slope, lin.intercept, lin.r2};
}

}  // namespace memreal
