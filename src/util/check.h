// Always-on invariant checking.
//
// The allocators in this library are executable proofs: every lemma-level
// invariant from the paper is asserted at runtime.  Violations throw
// memreal::InvariantViolation (so tests can EXPECT_THROW and production
// users get a diagnosable failure rather than silent corruption).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace memreal {

/// Thrown when a paper invariant (disjointness, resizable bound, level-size
/// invariant, ...) fails at runtime.
class InvariantViolation : public std::logic_error {
 public:
  explicit InvariantViolation(const std::string& what)
      : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantViolation(os.str());
}
}  // namespace detail

}  // namespace memreal

/// MEMREAL_CHECK(cond) — throw InvariantViolation unless cond holds.
#define MEMREAL_CHECK(cond)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::memreal::detail::check_failed(#cond, __FILE__, __LINE__, "");    \
    }                                                                    \
  } while (0)

/// MEMREAL_CHECK_MSG(cond, msg) — as MEMREAL_CHECK with a streamed message.
#define MEMREAL_CHECK_MSG(cond, msg)                                     \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::ostringstream memreal_os_;                                    \
      memreal_os_ << msg; /* NOLINT */                                   \
      ::memreal::detail::check_failed(#cond, __FILE__, __LINE__,         \
                                      memreal_os_.str());                \
    }                                                                    \
  } while (0)
