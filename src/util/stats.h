// Streaming statistics used by the cost-accounting engine and benches.
#pragma once

#include <cstddef>
#include <vector>

namespace memreal {

/// Accumulates count / mean / variance (Welford) / min / max of a stream.
class StreamingStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  ///< population variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const StreamingStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Retains samples for exact quantiles.  For the run lengths in this repo
/// (<= a few hundred thousand updates) exact retention is cheap and avoids
/// sketch error in the reproduced tables.
class Quantiles {
 public:
  /// Invalidates the lazy sort cache: a sample appended after a
  /// quantile() call lands unsorted, so the next query must re-sort.
  void add(double x) {
    xs_.push_back(x);
    sorted_ = false;
  }
  void reserve(std::size_t n) { xs_.reserve(n); }

  /// Appends all of `other`'s samples (parallel reduction: per-worker
  /// latency recorders merge into one before querying).
  void merge(const Quantiles& other);

  [[nodiscard]] std::size_t count() const { return xs_.size(); }
  /// q in [0, 1]; q = 0.5 is the median, q = 1 the max.  Returns 0 when
  /// empty.  Not const: sorts lazily.
  [[nodiscard]] double quantile(double q);

 private:
  std::vector<double> xs_;
  bool sorted_ = false;
};

/// Fixed-width histogram over [lo, hi); values outside are clamped into the
/// first/last bucket.  Used by benches to show cost distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t bucket(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double bucket_lo(std::size_t i) const;
  [[nodiscard]] std::size_t total() const { return total_; }

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace memreal
