#include "util/parallel.h"

#include <algorithm>

namespace memreal {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.back());
      queue_.pop_back();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
    cv_done_.notify_all();
  }
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads) {
  if (n == 0) return;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, n);
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex err_mu;
  std::vector<std::thread> ts;
  ts.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    ts.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace memreal
