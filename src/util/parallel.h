// A small thread pool and parallel_for used by the sweep harness.
//
// Experiment grids (allocator x eps x seed) are embarrassingly parallel;
// each cell owns its Memory, Allocator and Rng, so cells share nothing.
// Work is handed out via an atomic index (dynamic scheduling), which keeps
// the pool balanced even though per-cell cost varies by orders of magnitude
// across eps.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace memreal {

/// Fixed-size pool of worker threads executing submitted tasks.
class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished.  Rethrows the first
  /// exception raised by any task.
  void wait();

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::vector<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

/// Runs fn(i) for i in [0, n) across `threads` threads (0 = all cores).
/// Exceptions propagate to the caller (first one wins).
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

}  // namespace memreal
