#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace memreal {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  MEMREAL_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  MEMREAL_CHECK_MSG(cells.size() == headers_.size(),
                    "row arity " << cells.size() << " != header arity "
                                 << headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto rule = [&] {
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << '+' << std::string(width[c] + 2, '-');
    }
    os << "+\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "| " << std::setw(static_cast<int>(width[c])) << cells[c] << ' ';
    }
    os << "|\n";
  };
  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string Table::num(double v, int digits) {
  std::ostringstream os;
  os << std::setprecision(digits) << v;
  return os.str();
}

}  // namespace memreal
