#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace memreal {

void StreamingStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
}

double StreamingStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

void StreamingStats::merge(const StreamingStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * n2 / (n1 + n2);
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Quantiles::merge(const Quantiles& other) {
  if (other.xs_.empty()) return;
  xs_.insert(xs_.end(), other.xs_.begin(), other.xs_.end());
  sorted_ = false;
}

double Quantiles::quantile(double q) {
  MEMREAL_CHECK(q >= 0.0 && q <= 1.0);
  if (xs_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
  const double pos = q * static_cast<double>(xs_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs_[lo] * (1.0 - frac) + xs_[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  MEMREAL_CHECK(hi > lo);
  MEMREAL_CHECK(buckets > 0);
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<long long>(t * static_cast<double>(counts_.size()));
  idx = std::clamp<long long>(idx, 0,
                              static_cast<long long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

}  // namespace memreal
