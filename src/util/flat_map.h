// Open-addressed id -> value map for allocator bookkeeping hot paths.
//
// The node-based std::unordered_map costs a pointer chase plus a modulo
// per operation; on per-move bookkeeping (SimpleAllocator's id -> layout
// position map) that is the dominant shared cost between the validated
// and release engines.  This table is the same design as SlabStore's id
// map: power-of-two buckets, SplitMix64-finalized keys, linear probing,
// backward-shift deletion (no tombstones).
//
// Keys are ItemIds; kNoItem is reserved as the empty-bucket sentinel and
// must never be inserted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.h"
#include "util/types.h"

namespace memreal {

template <typename V>
class FlatIdMap {
 public:
  explicit FlatIdMap(std::size_t initial_buckets = 64) {
    keys_.assign(initial_buckets, kNoItem);
    values_.resize(initial_buckets);
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Pointer to the value for `key`, or nullptr when absent.
  [[nodiscard]] V* find(ItemId key) {
    const std::size_t b = locate(key);
    return keys_[b] == key ? &values_[b] : nullptr;
  }
  [[nodiscard]] const V* find(ItemId key) const {
    const std::size_t b = locate(key);
    return keys_[b] == key ? &values_[b] : nullptr;
  }

  [[nodiscard]] bool contains(ItemId key) const {
    return find(key) != nullptr;
  }

  /// Value for an existing key; missing keys are a usage error.
  [[nodiscard]] const V& at(ItemId key) const {
    const V* v = find(key);
    MEMREAL_CHECK_MSG(v != nullptr, "unknown item id " << key);
    return *v;
  }

  /// Inserts value-initialized when absent, like std::unordered_map.
  [[nodiscard]] V& operator[](ItemId key) {
    MEMREAL_CHECK_MSG(key != kNoItem, "reserved key");
    if ((size_ + 1) * 8 >= keys_.size() * 5) grow();
    const std::size_t b = locate(key);
    if (keys_[b] != key) {
      keys_[b] = key;
      values_[b] = V{};
      ++size_;
    }
    return values_[b];
  }

  void erase(ItemId key) {
    std::size_t b = locate(key);
    if (keys_[b] != key) return;
    --size_;
    const std::size_t mask = keys_.size() - 1;
    // Backward-shift deletion: re-seat every entry of the probe chain
    // that follows the hole, so lookups never need tombstones.
    std::size_t hole = b;
    std::size_t next = (b + 1) & mask;
    while (keys_[next] != kNoItem) {
      const std::size_t home =
          static_cast<std::size_t>(mix(keys_[next])) & mask;
      const bool reachable = hole <= next ? (home <= hole || home > next)
                                          : (home <= hole && home > next);
      if (reachable) {
        keys_[hole] = keys_[next];
        values_[hole] = values_[next];
        hole = next;
      }
      next = (next + 1) & mask;
    }
    keys_[hole] = kNoItem;
  }

 private:
  static std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return x;
  }

  /// Bucket holding `key`, or the empty bucket where it would go.
  [[nodiscard]] std::size_t locate(ItemId key) const {
    const std::size_t mask = keys_.size() - 1;
    std::size_t b = static_cast<std::size_t>(mix(key)) & mask;
    while (keys_[b] != kNoItem && keys_[b] != key) b = (b + 1) & mask;
    return b;
  }

  void grow() {
    std::vector<ItemId> old_keys = std::move(keys_);
    std::vector<V> old_values = std::move(values_);
    keys_.assign(old_keys.size() * 2, kNoItem);
    values_.assign(old_keys.size() * 2, V{});
    const std::size_t mask = keys_.size() - 1;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kNoItem) continue;
      std::size_t b = static_cast<std::size_t>(mix(old_keys[i])) & mask;
      while (keys_[b] != kNoItem) b = (b + 1) & mask;
      keys_[b] = old_keys[i];
      values_[b] = old_values[i];
    }
  }

  std::vector<ItemId> keys_;
  std::vector<V> values_;
  std::size_t size_ = 0;
};

}  // namespace memreal
