#include "util/thresholds.h"

#include "util/check.h"

namespace memreal {

ContinuousThreshold::ContinuousThreshold(Tick window, Rng& rng)
    : window_(window), rng_(&rng) {
  MEMREAL_CHECK_MSG(window >= 2, "window too small to randomize");
  resample();
}

void ContinuousThreshold::resample() {
  threshold_ = rng_->next_tick_in(window_ / 2, window_);
}

bool ContinuousThreshold::add(Tick amount) {
  acc_ += amount;
  if (acc_ < threshold_) return false;
  // Overflow carries toward the next threshold, per the paper.
  acc_ -= threshold_;
  resample();
  return true;
}

CountThreshold::CountThreshold(std::uint64_t n, Rng& rng)
    : lo_(ceil_div(n, 4)), hi_(ceil_div(n, 3)), rng_(&rng) {
  MEMREAL_CHECK(n >= 1);
  MEMREAL_CHECK(lo_ >= 1 && lo_ <= hi_);
  resample();
}

void CountThreshold::resample() { threshold_ = rng_->next_in(lo_, hi_); }

bool CountThreshold::tick() {
  ++count_;
  if (count_ < threshold_) return false;
  count_ = 0;
  resample();
  return true;
}

void CountThreshold::reset_free() {
  count_ = 0;
  resample();
}

}  // namespace memreal
