// Minimal fixed-width table renderer for the experiment binaries.
//
// Every bench binary prints the paper-shaped series as a plain-text table
// (rows = sweep points, columns = metrics) before handing off to
// google-benchmark for the timing section.  Keeping the renderer here means
// EXPERIMENTS.md, the benches and the examples all produce identical
// formatting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace memreal {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Renders with a header rule and right-aligned numeric-looking cells.
  void print(std::ostream& os) const;

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Formats a double with `digits` significant digits.
  static std::string num(double v, int digits = 4);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace memreal
