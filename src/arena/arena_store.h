// The byte-backed layout store: a LayoutStore decorator that gives every
// placed item a real payload in a char arena.
//
// ArenaStore forwards the entire LayoutStore contract to an inner store
// (the validating Memory model or the release SlabStore), so an
// arena-backed run produces the exact same layouts and per-update tick
// costs as a plain run — the tick-vs-byte differential suite (ctest -L
// arena) holds that equality for every registry allocator.  On top of the
// forwarded tick semantics it maintains the byte space:
//
//   place    — stamps the item's payload (a deterministic per-id fill
//              pattern) and charges its byte size to the moved-bytes
//              channel (writing the item's bytes, the byte analogue of
//              place's tick charge)
//   move_to  — captures the payload and charges its bytes; when payload
//              verification is on, the fill pattern is checked as the
//              payload is first read: the byte-level analogue of
//              Memory's incremental validation.  A failed check means
//              some move physically clobbered a live payload — exactly
//              the class of bug tick space cannot see.
//   apply_run — batch capture + charge (same charges as the inner
//              store's batched version, per the LayoutStore contract).
//   audit    — inner audit plus a full sweep verifying every live
//              payload's pattern.
//
// Physical writes are transactional.  Allocators are free to route items
// through transiently overlapping tick placements mid-update (the
// validated Memory model only checks overlap at end_update), so an eager
// memmove per move_to would clobber live payloads.  Instead every update
// runs copy-out/copy-in: the first time an item is touched its payload
// is gathered (and verified) into a pending buffer — fresh inserts stamp
// straight into one — and end_update flushes every pending payload to
// its final, provably disjoint byte address.  Charges stay per logical
// operation, mirroring the tick cost channel exactly.
//
// Payload sizes: each item carries `size_bytes` with
// ticks_for_bytes(size_bytes) == its tick size.  Drivers stage the byte
// size of the next insert via stage_insert (the arena cell does this from
// the engine's before_update hook); unstaged inserts default to
// size * bytes_per_tick (tick-native).
//
// The arena grows lazily toward byte_of(capacity): placements only ever
// land inside the span bound the inner store enforces, so the vector
// tracks the high-water mark of actual placements, not the (possibly
// astronomical) tick capacity.  `max_arena_bytes` is a hard sanity cap.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "arena/byte_space.h"
#include "core/layout_store.h"
#include "obs/metrics.h"
#include "util/flat_map.h"
#include "util/types.h"

namespace memreal {

struct ArenaOptions {
  /// Verify the moved item's fill pattern after every memmove and every
  /// live payload on audit().  Off = measure raw memmove bandwidth only.
  bool verify_payloads = true;
  /// Hard cap on the lazily grown arena; a placement whose payload would
  /// end beyond it throws InvariantViolation (use smaller capacities or a
  /// coarser granule instead of letting the vector eat the host).
  std::uint64_t max_arena_bytes = std::uint64_t{1} << 31;
  /// Byte-movement instruments (null pointers = off); mirrors the
  /// total_bytes_moved / payload_moves accounting plus verified bytes.
  obs::ArenaMetrics metrics;
};

class ArenaStore final : public LayoutStore {
 public:
  ArenaStore(LayoutStore& inner, ByteSpace space, ArenaOptions options = {});

  ArenaStore(const ArenaStore&) = delete;
  ArenaStore& operator=(const ArenaStore&) = delete;

  // -- Byte-space surface ---------------------------------------------------

  [[nodiscard]] const ByteSpace& space() const { return space_; }
  [[nodiscard]] Tick bytes_per_tick() const { return space_.bytes_per_tick(); }

  /// Stages the byte size of the NEXT place of `id`.  size_bytes == 0
  /// means tick-native; nonzero must round to exactly the placed tick
  /// size (checked in place).
  void stage_insert(ItemId id, Tick size_bytes);

  /// Payload byte size of a live item.
  [[nodiscard]] Tick bytes_of(ItemId id) const { return bytes_.at(id); }
  /// Current payload bytes of a live item (view into the arena).
  [[nodiscard]] std::span<const unsigned char> payload(ItemId id) const;
  /// Byte address of a live item.
  [[nodiscard]] std::uint64_t address_of(ItemId id) const {
    return space_.byte_of(inner_->offset_of(id));
  }

  /// Bytes physically moved / number of payload memmoves+stamps so far.
  [[nodiscard]] Tick total_bytes_moved() const override {
    return total_bytes_;
  }
  [[nodiscard]] std::size_t payload_moves() const { return moves_; }
  [[nodiscard]] Tick last_update_bytes() const override {
    return last_update_bytes_;
  }

  /// Verifies one / every live payload against its fill pattern; throws
  /// InvariantViolation naming the first corrupt item and byte.
  void verify_payload(ItemId id) const;
  void verify_all_payloads() const;

  /// The expected fill byte of item `id` at payload index `j` — exposed
  /// so tests can predict (and corrupt) payloads.
  [[nodiscard]] static unsigned char pattern_byte(ItemId id, std::uint64_t j);

  // -- Transactions (forwarded; byte counter bracketed) ---------------------

  void begin_update(Tick update_size, bool is_insert) override;
  Tick end_update() override;
  [[nodiscard]] bool in_update() const override { return inner_->in_update(); }
  [[nodiscard]] Tick moved_in_update() const override {
    return inner_->moved_in_update();
  }

  // -- Layout mutation ------------------------------------------------------

  void place(ItemId id, Tick offset, Tick size, Tick extent = 0) override;
  void move_to(ItemId id, Tick offset) override;
  void set_extent(ItemId id, Tick extent) override {
    inner_->set_extent(id, extent);
  }
  void reset_extent(ItemId id) override { inner_->reset_extent(id); }
  void reset_extents(std::span<const ItemId> ids) override {
    inner_->reset_extents(ids);
  }
  void remove(ItemId id) override;
  // Payloads are gathered into pending buffers before the tick-space run
  // is forwarded to the inner store; tick charges are the inner store's
  // own, and each item whose offset changed is charged its bytes.
  Tick apply_run(std::span<const ItemId> ids, Tick offset) override;

  // -- Point queries (forwarded) --------------------------------------------

  [[nodiscard]] bool contains(ItemId id) const override {
    return inner_->contains(id);
  }
  [[nodiscard]] Tick offset_of(ItemId id) const override {
    return inner_->offset_of(id);
  }
  [[nodiscard]] Tick size_of(ItemId id) const override {
    return inner_->size_of(id);
  }
  [[nodiscard]] Tick extent_of(ItemId id) const override {
    return inner_->extent_of(id);
  }
  [[nodiscard]] Tick end_of(ItemId id) const override {
    return inner_->end_of(id);
  }
  [[nodiscard]] std::size_t item_count() const override {
    return inner_->item_count();
  }
  [[nodiscard]] Tick live_mass() const override { return inner_->live_mass(); }
  [[nodiscard]] Tick extent_mass() const override {
    return inner_->extent_mass();
  }
  [[nodiscard]] Tick span_end() const override { return inner_->span_end(); }
  [[nodiscard]] Tick capacity() const override { return inner_->capacity(); }
  [[nodiscard]] Tick eps_ticks() const override { return inner_->eps_ticks(); }
  [[nodiscard]] Tick total_moved() const override {
    return inner_->total_moved();
  }
  [[nodiscard]] std::size_t update_count() const override {
    return inner_->update_count();
  }

  // -- Ordered queries (forwarded) ------------------------------------------

  [[nodiscard]] std::optional<PlacedItem> item_at(Tick offset) const override {
    return inner_->item_at(offset);
  }
  [[nodiscard]] std::optional<PlacedItem> first_at_or_after(
      Tick offset) const override {
    return inner_->first_at_or_after(offset);
  }
  [[nodiscard]] std::optional<PlacedItem> last_before(
      Tick offset) const override {
    return inner_->last_before(offset);
  }
  [[nodiscard]] std::optional<PlacedItem> first_item() const override {
    return inner_->first_item();
  }
  [[nodiscard]] std::optional<PlacedItem> last_item() const override {
    return inner_->last_item();
  }
  [[nodiscard]] Neighbors neighbors_of(ItemId id) const override {
    return inner_->neighbors_of(id);
  }
  [[nodiscard]] std::vector<PlacedItem> items_in(Tick from,
                                                 Tick to) const override {
    return inner_->items_in(from, to);
  }
  [[nodiscard]] std::vector<PlacedItem> snapshot() const override {
    return inner_->snapshot();
  }
  [[nodiscard]] std::vector<std::pair<Tick, Tick>> gaps() const override {
    return inner_->gaps();
  }

  // -- Validation -----------------------------------------------------------

  /// Inner structural audit plus (when verification is on) a full sweep
  /// of every live payload's fill pattern.
  void audit() const override;

  [[nodiscard]] ValidationPolicy& policy() override {
    return inner_->policy();
  }
  [[nodiscard]] const ValidationPolicy& policy() const override {
    return inner_->policy();
  }

 private:
  /// Grows the arena so [0, byte_end) is addressable.
  void ensure_arena(std::uint64_t byte_end);
  void verify_at(ItemId id, std::uint64_t byte_addr, Tick bytes) const;

  /// Captures (and, when verification is on, checks) the payload at
  /// `src` into a pending buffer; no-op if already pending this update.
  void gather(ItemId id, std::uint64_t src, Tick bytes);
  /// Claims a pending buffer for `id`, reusing slot capacity across
  /// updates; the returned buffer is empty.
  std::vector<unsigned char>& new_pending_slot(ItemId id);
  /// Writes every pending payload to its final byte address and empties
  /// the journal.
  void flush_pending();

  LayoutStore* inner_;
  ByteSpace space_;
  ArenaOptions options_;

  std::vector<unsigned char> arena_;
  FlatIdMap<Tick> bytes_;  ///< id -> payload byte size

  // Pending-payload journal for the copy-out/copy-in transaction.  Slot
  // k holds pending_ids_[k]'s payload; removed items tombstone their
  // slot with kNoItem.  Buffers keep their capacity across updates.
  FlatIdMap<std::uint32_t> pending_idx_;  ///< id -> journal slot
  std::vector<ItemId> pending_ids_;
  std::vector<std::vector<unsigned char>> pending_data_;
  std::size_t pending_used_ = 0;

  ItemId staged_id_ = kNoItem;
  Tick staged_bytes_ = 0;

  Tick bytes_in_update_ = 0;
  Tick last_update_bytes_ = 0;
  Tick total_bytes_ = 0;
  std::size_t moves_ = 0;
};

}  // namespace memreal
