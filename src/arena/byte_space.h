// Tick <-> byte mapping for the arena layer.
//
// The paper's model lives in abstract ticks; a real allocator speaks
// bytes, alignment, and minimum-allocation granules.  ByteSpace is the
// bridge: one tick corresponds to `bytes_per_tick` bytes, which is also
// the arena's alignment and minimum allocation size (the tt-metal
// convention, where min_allocation_size == alignment == the granule the
// address space is quantized to).
//
// The rounding contract every byte-mode consumer relies on:
//
//   ticks_for_bytes(b) = max(1, ceil(b / bytes_per_tick))
//
// so a payload of b bytes occupies t ticks with
//
//   (t - 1) * bytes_per_tick < b <= t * bytes_per_tick      (b > 0)
//
// That inequality is the "rounding bound" the T-ARENA claim checks: over a
// run with M moves and tick moved-mass L, the measured byte traffic obeys
//
//   L * bpt - M * (bpt - 1)  <=  moved_bytes  <=  L * bpt.
#pragma once

#include <cstdint>

#include "util/check.h"
#include "util/types.h"

namespace memreal {

class ByteSpace {
 public:
  ByteSpace() = default;
  explicit ByteSpace(Tick bytes_per_tick) : bytes_per_tick_(bytes_per_tick) {
    MEMREAL_CHECK_MSG(bytes_per_tick_ > 0,
                      "ByteSpace requires bytes_per_tick > 0");
  }

  [[nodiscard]] Tick bytes_per_tick() const { return bytes_per_tick_; }
  /// Alignment of every placed payload, in bytes (== the granule).
  [[nodiscard]] Tick alignment() const { return bytes_per_tick_; }
  /// Smallest allocatable payload, in bytes (one tick's worth).
  [[nodiscard]] Tick min_allocation_bytes() const { return bytes_per_tick_; }

  /// Byte address of a tick offset.
  [[nodiscard]] std::uint64_t byte_of(Tick tick) const {
    return tick * bytes_per_tick_;
  }

  /// Tick containing an aligned byte address; unaligned addresses are a
  /// usage error (arena placements are always granule-aligned).
  [[nodiscard]] Tick tick_of(std::uint64_t byte_addr) const {
    MEMREAL_CHECK_MSG(byte_addr % bytes_per_tick_ == 0,
                      "byte address " << byte_addr
                                      << " is not aligned to the granule "
                                      << bytes_per_tick_);
    return byte_addr / bytes_per_tick_;
  }

  /// Ticks needed to hold `bytes` (min-allocation rounding: never zero).
  [[nodiscard]] Tick ticks_for_bytes(std::uint64_t bytes) const {
    if (bytes == 0) return 1;
    return (bytes + bytes_per_tick_ - 1) / bytes_per_tick_;
  }

  /// `bytes` rounded up to a whole number of ticks.
  [[nodiscard]] std::uint64_t align_up(std::uint64_t bytes) const {
    return ticks_for_bytes(bytes) * bytes_per_tick_;
  }

  [[nodiscard]] bool aligned(std::uint64_t byte_addr) const {
    return byte_addr % bytes_per_tick_ == 0;
  }

 private:
  Tick bytes_per_tick_ = 8;
};

}  // namespace memreal
