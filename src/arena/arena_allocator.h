// A production-shaped byte allocator facade over any registry allocator.
//
// The tt-metal allocator::Algorithm surface — allocate(size_bytes),
// allocate_at_address(addr, size_bytes), deallocate(addr), plus
// capacity / minimum-allocation / alignment queries — adapted to the
// paper's reallocating model.  Internally the adapter owns an ArenaCell:
// every call becomes an engine update against a real char arena, so
// payloads are stamped and verified and the byte/tick cost channels
// accumulate exactly as in a driven run.
//
// The one deliberate semantic difference from tt-metal: the paper's
// allocators REALLOCATE.  An address returned by allocate() is the item's
// current placement and may be invalidated by any later call; stable
// identity is the returned Allocation::id, and address_of(id) reports the
// current address.  deallocate(addr) resolves whichever live item's
// payload starts at `addr` right now — the natural reading of a byte
// free() against a compacting heap.
//
// allocate_at_address is attempt-and-check: the adapter cannot force a
// registry allocator's placement decision, so it performs the insert and
// keeps it only when the item landed exactly at `addr`, rolling the
// insert back otherwise.  Whether a given (addr, size) can succeed is
// policy-dependent — folklore-compact appends at the span end, so
// reserving the next span-aligned address succeeds deterministically.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "arena/arena_cell.h"

namespace memreal {

struct ArenaAllocatorConfig {
  std::string allocator = "simple";  ///< registry name
  std::string engine = "validated";  ///< inner store flavor
  AllocatorParams params;
  Tick capacity_ticks = Tick{1} << 20;
  Tick bytes_per_tick = 8;  ///< granule = alignment = min allocation
  bool verify_payloads = true;
};

class ArenaAllocator {
 public:
  /// One live allocation: the stable id plus the placement at the time of
  /// the call (addresses move; re-query with address_of).
  struct Allocation {
    ItemId id = kNoItem;
    std::uint64_t address = 0;
    std::uint64_t size_bytes = 0;
  };

  explicit ArenaAllocator(const ArenaAllocatorConfig& config);

  // -- Capacity / granule queries (tt-metal surface) ------------------------

  [[nodiscard]] std::uint64_t max_size_bytes() const;
  [[nodiscard]] std::uint64_t min_allocation_size() const;
  [[nodiscard]] std::uint64_t alignment() const;
  /// `bytes` rounded up to the granule (the payload the arena will carve).
  [[nodiscard]] std::uint64_t align(std::uint64_t bytes) const;

  /// The byte band the underlying allocator's registry profile serves;
  /// allocate() returns nullopt outside it.
  [[nodiscard]] std::uint64_t min_item_bytes() const;
  [[nodiscard]] std::uint64_t max_item_bytes() const;

  // -- Allocation -----------------------------------------------------------

  /// Allocates `size_bytes`; nullopt when the size is outside the served
  /// band or the arena's load budget has no room.
  std::optional<Allocation> allocate(std::uint64_t size_bytes);

  /// Allocates iff the underlying policy places the item exactly at
  /// `addr` (granule-aligned); otherwise rolls the insert back and
  /// returns nullopt.
  std::optional<Allocation> allocate_at_address(std::uint64_t addr,
                                                std::uint64_t size_bytes);

  /// Frees the live allocation whose payload currently starts at `addr`;
  /// throws InvariantViolation when no allocation starts there.
  void deallocate(std::uint64_t addr);
  /// Frees by stable id.
  void deallocate_id(ItemId id);

  /// Frees everything (one delete update per live allocation).
  void clear();

  // -- Introspection --------------------------------------------------------

  [[nodiscard]] std::size_t allocation_count() const;
  [[nodiscard]] std::uint64_t allocated_bytes() const;
  /// Current address of a live allocation.
  [[nodiscard]] std::uint64_t address_of(ItemId id) const;
  /// Read-only view of a live allocation's payload.
  [[nodiscard]] std::span<const unsigned char> payload(ItemId id) const;

  /// Free byte ranges [start, end) that could hold an aligned allocation
  /// of `size_bytes`, including the tail beyond the current span.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>>
  available_addresses(std::uint64_t size_bytes) const;

  /// Cost channels of the updates issued so far (tick + byte).
  [[nodiscard]] const RunStats& stats() const { return cell_->stats(); }

  /// Full structural + payload audit of the backing cell.
  void audit() { cell_->audit(); }

 private:
  [[nodiscard]] Tick ticks_for(std::uint64_t size_bytes) const;

  ArenaAllocatorConfig config_;
  Tick min_ticks_ = 0;  ///< registry size band, in ticks
  Tick max_ticks_ = 0;
  std::unique_ptr<ArenaCell> cell_;
  ItemId next_id_ = 1;
};

}  // namespace memreal
