#include "arena/arena_allocator.h"

#include <algorithm>

#include "util/check.h"

namespace memreal {

namespace {

CellConfig adapter_cell_config(const ArenaAllocatorConfig& config) {
  CellConfig cell;
  cell.engine = config.engine;
  cell.allocator = config.allocator;
  cell.params = config.params;
  cell.arena = true;
  cell.bytes_per_tick = config.bytes_per_tick;
  cell.verify_payloads = config.verify_payloads;
  return cell;
}

}  // namespace

ArenaAllocator::ArenaAllocator(const ArenaAllocatorConfig& config)
    : config_(config) {
  const AllocatorInfo info = allocator_info(config.allocator);
  min_ticks_ = info.sizes.min_size(config.params.eps, config.capacity_ticks);
  // SizeProfile bands are half-open in ticks; keep the inclusive max.
  max_ticks_ = std::max(
      min_ticks_,
      info.sizes.max_size(config.params.eps, config.capacity_ticks) - 1);
  const Eps eps = Eps::of(config.params.eps, config.capacity_ticks);
  cell_ = std::make_unique<ArenaCell>(config.capacity_ticks, eps.ticks,
                                      adapter_cell_config(config));
}

std::uint64_t ArenaAllocator::max_size_bytes() const {
  return cell_->arena().space().byte_of(config_.capacity_ticks);
}

std::uint64_t ArenaAllocator::min_allocation_size() const {
  return cell_->arena().space().min_allocation_bytes();
}

std::uint64_t ArenaAllocator::alignment() const {
  return cell_->arena().space().alignment();
}

std::uint64_t ArenaAllocator::align(std::uint64_t bytes) const {
  return cell_->arena().space().align_up(bytes);
}

std::uint64_t ArenaAllocator::min_item_bytes() const {
  // The smallest payload that still occupies min_ticks_ ticks.
  const Tick bpt = cell_->arena().bytes_per_tick();
  return min_ticks_ <= 1 ? 1 : (min_ticks_ - 1) * bpt + 1;
}

std::uint64_t ArenaAllocator::max_item_bytes() const {
  return max_ticks_ * cell_->arena().bytes_per_tick();
}

Tick ArenaAllocator::ticks_for(std::uint64_t size_bytes) const {
  return cell_->arena().space().ticks_for_bytes(size_bytes);
}

std::optional<ArenaAllocator::Allocation> ArenaAllocator::allocate(
    std::uint64_t size_bytes) {
  if (size_bytes == 0) return std::nullopt;
  const Tick ticks = ticks_for(size_bytes);
  // Outside the band the registry allocator guarantees to serve.
  if (ticks < min_ticks_ || ticks > max_ticks_) return std::nullopt;
  // The adversary's load budget: live mass stays <= capacity - eps.
  const ArenaStore& store = cell_->arena();
  if (store.live_mass() + ticks + store.eps_ticks() > store.capacity()) {
    return std::nullopt;
  }
  const ItemId id = next_id_++;
  cell_->step(Update::insert(id, ticks, static_cast<Tick>(size_bytes)));
  return Allocation{id, address_of(id), size_bytes};
}

std::optional<ArenaAllocator::Allocation> ArenaAllocator::allocate_at_address(
    std::uint64_t addr, std::uint64_t size_bytes) {
  if (!cell_->arena().space().aligned(addr)) return std::nullopt;
  std::optional<Allocation> alloc = allocate(size_bytes);
  if (!alloc) return std::nullopt;
  if (alloc->address == addr) return alloc;
  deallocate_id(alloc->id);
  return std::nullopt;
}

void ArenaAllocator::deallocate(std::uint64_t addr) {
  const ArenaStore& store = cell_->arena();
  const Tick tick = store.space().tick_of(addr);
  const std::optional<PlacedItem> item = store.item_at(tick);
  MEMREAL_CHECK_MSG(item && item->offset == tick,
                    "deallocate: no allocation starts at byte address "
                        << addr);
  deallocate_id(item->id);
}

void ArenaAllocator::deallocate_id(ItemId id) {
  ArenaStore& store = cell_->arena();
  const Tick size = store.size_of(id);
  const Tick bytes = store.bytes_of(id);
  cell_->step(Update::erase(id, size, bytes));
}

void ArenaAllocator::clear() {
  while (cell_->arena().item_count() > 0) {
    deallocate_id(cell_->arena().first_item()->id);
  }
}

std::size_t ArenaAllocator::allocation_count() const {
  return cell_->arena().item_count();
}

std::uint64_t ArenaAllocator::allocated_bytes() const {
  std::uint64_t total = 0;
  for (const PlacedItem& item : cell_->arena().snapshot()) {
    total += cell_->arena().bytes_of(item.id);
  }
  return total;
}

std::uint64_t ArenaAllocator::address_of(ItemId id) const {
  return cell_->arena().address_of(id);
}

std::span<const unsigned char> ArenaAllocator::payload(ItemId id) const {
  return cell_->arena().payload(id);
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
ArenaAllocator::available_addresses(std::uint64_t size_bytes) const {
  const ArenaStore& store = cell_->arena();
  const ByteSpace& space = store.space();
  const Tick need = ticks_for(size_bytes);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  for (const auto& [from, to] : store.gaps()) {
    if (to - from >= need) {
      out.emplace_back(space.byte_of(from), space.byte_of(to));
    }
  }
  const Tick span = store.span_end();
  if (store.capacity() - span >= need) {
    out.emplace_back(space.byte_of(span), space.byte_of(store.capacity()));
  }
  return out;
}

}  // namespace memreal
