#include "arena/arena_store.h"

#include <bit>
#include <cstring>

#include "obs/trace.h"
#include "util/check.h"

namespace memreal {

namespace {

/// SplitMix64 finalizer — the per-item pattern seed.  Full avalanche so
/// adjacent ids get unrelated fill bytes (a memmove that lands one granule
/// off cannot accidentally reproduce its neighbor's pattern).
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

ArenaStore::ArenaStore(LayoutStore& inner, ByteSpace space,
                       ArenaOptions options)
    : inner_(&inner), space_(space), options_(options) {}

unsigned char ArenaStore::pattern_byte(ItemId id, std::uint64_t j) {
  // The pattern is position-independent within the payload (indexed by j,
  // not by arena address), so a clean memmove preserves it exactly.
  return static_cast<unsigned char>(mix(id) >> ((j & 7) * 8));
}

void ArenaStore::stage_insert(ItemId id, Tick size_bytes) {
  staged_id_ = id;
  staged_bytes_ = size_bytes;
}

std::span<const unsigned char> ArenaStore::payload(ItemId id) const {
  const std::uint64_t addr = space_.byte_of(inner_->offset_of(id));
  const Tick bytes = bytes_.at(id);
  MEMREAL_CHECK(addr + bytes <= arena_.size());
  return {arena_.data() + addr, static_cast<std::size_t>(bytes)};
}

void ArenaStore::ensure_arena(std::uint64_t byte_end) {
  if (byte_end <= arena_.size()) return;
  MEMREAL_CHECK_MSG(byte_end <= options_.max_arena_bytes,
                    "arena placement ends at byte "
                        << byte_end << ", beyond the max_arena_bytes cap "
                        << options_.max_arena_bytes
                        << " (shrink the capacity or coarsen the granule)");
  std::uint64_t grown = arena_.empty() ? 4096 : arena_.size();
  while (grown < byte_end) grown *= 2;
  if (grown > options_.max_arena_bytes) grown = options_.max_arena_bytes;
  arena_.resize(static_cast<std::size_t>(grown));
}

void ArenaStore::gather(ItemId id, std::uint64_t src, Tick bytes) {
  if (pending_idx_.contains(id)) return;
  if (options_.verify_payloads) verify_at(id, src, bytes);
  std::vector<unsigned char>& buf = new_pending_slot(id);
  buf.resize(static_cast<std::size_t>(bytes));
  std::memcpy(buf.data(), arena_.data() + src, static_cast<std::size_t>(bytes));
}

std::vector<unsigned char>& ArenaStore::new_pending_slot(ItemId id) {
  const auto k = static_cast<std::uint32_t>(pending_used_);
  if (pending_used_ == pending_data_.size()) {
    pending_data_.emplace_back();
    pending_ids_.push_back(id);
  } else {
    pending_ids_[pending_used_] = id;
  }
  ++pending_used_;
  pending_idx_[id] = k;
  std::vector<unsigned char>& buf = pending_data_[k];
  buf.clear();
  return buf;
}

void ArenaStore::flush_pending() {
  obs::ScopedSpan flush_span(obs::SpanPhase::kArenaFlush);
  for (std::size_t k = 0; k < pending_used_; ++k) {
    const ItemId id = pending_ids_[k];
    if (id == kNoItem) continue;  // removed mid-update
    const std::vector<unsigned char>& data = pending_data_[k];
    const std::uint64_t dst = space_.byte_of(inner_->offset_of(id));
    ensure_arena(dst + data.size());
    std::memcpy(arena_.data() + dst, data.data(), data.size());
    pending_idx_.erase(id);
  }
  pending_used_ = 0;
}

void ArenaStore::verify_at(ItemId id, std::uint64_t byte_addr,
                           Tick bytes) const {
  options_.metrics.on_verify(bytes);
  const unsigned char* p = arena_.data() + byte_addr;
  std::uint64_t j = 0;
  // The pattern repeats the little-endian bytes of mix(id), so aligned
  // 8-byte groups compare as one word; a mismatching word falls through
  // to the byte loop, which names the exact corrupt byte.
  if constexpr (std::endian::native == std::endian::little) {
    const std::uint64_t w = mix(id);
    for (; j + 8 <= bytes; j += 8) {
      std::uint64_t got;
      std::memcpy(&got, p + j, 8);
      if (got != w) break;
    }
  }
  for (; j < bytes; ++j) {
    MEMREAL_CHECK_MSG(
        p[j] == pattern_byte(id, j),
        "payload corruption: item " << id << " byte " << j << " at address "
                                    << byte_addr + j << " holds "
                                    << static_cast<unsigned>(p[j])
                                    << ", expected "
                                    << static_cast<unsigned>(
                                           pattern_byte(id, j)));
  }
}

void ArenaStore::verify_payload(ItemId id) const {
  verify_at(id, space_.byte_of(inner_->offset_of(id)), bytes_.at(id));
}

void ArenaStore::verify_all_payloads() const {
  for (const PlacedItem& item : inner_->snapshot()) {
    verify_at(item.id, space_.byte_of(item.offset), bytes_.at(item.id));
  }
}

void ArenaStore::begin_update(Tick update_size, bool is_insert) {
  inner_->begin_update(update_size, is_insert);
  bytes_in_update_ = 0;
  // A throwing end_update can leave a stale journal behind; drop it.
  for (std::size_t k = 0; k < pending_used_; ++k) {
    if (pending_ids_[k] != kNoItem) pending_idx_.erase(pending_ids_[k]);
  }
  pending_used_ = 0;
}

Tick ArenaStore::end_update() {
  const Tick moved = inner_->end_update();
  flush_pending();
  last_update_bytes_ = bytes_in_update_;
  return moved;
}

void ArenaStore::place(ItemId id, Tick offset, Tick size, Tick extent) {
  inner_->place(id, offset, size, extent);
  Tick bytes = size * space_.bytes_per_tick();
  if (staged_id_ == id) {
    if (staged_bytes_ != 0) {
      MEMREAL_CHECK_MSG(space_.ticks_for_bytes(staged_bytes_) == size,
                        "staged byte size "
                            << staged_bytes_ << " for item " << id
                            << " rounds to "
                            << space_.ticks_for_bytes(staged_bytes_)
                            << " ticks, but the item was placed with size "
                            << size);
      bytes = staged_bytes_;
    }
    staged_id_ = kNoItem;
    staged_bytes_ = 0;
  }
  bytes_[id] = bytes;
  std::vector<unsigned char>& buf = new_pending_slot(id);
  buf.resize(static_cast<std::size_t>(bytes));
  std::uint64_t j = 0;
  if constexpr (std::endian::native == std::endian::little) {
    const std::uint64_t w = mix(id);
    for (; j + 8 <= bytes; j += 8) std::memcpy(buf.data() + j, &w, 8);
  }
  for (; j < bytes; ++j) buf[j] = pattern_byte(id, j);
  bytes_in_update_ += bytes;
  total_bytes_ += bytes;
  ++moves_;
  options_.metrics.on_move(bytes);
  if (!inner_->in_update()) flush_pending();
}

void ArenaStore::move_to(ItemId id, Tick offset) {
  const Tick old_offset = inner_->offset_of(id);
  if (offset != old_offset) {
    gather(id, space_.byte_of(old_offset), bytes_.at(id));
  }
  inner_->move_to(id, offset);
  if (offset == old_offset) return;  // free no-op, same as the inner store
  const Tick bytes = bytes_.at(id);
  bytes_in_update_ += bytes;
  total_bytes_ += bytes;
  ++moves_;
  options_.metrics.on_move(bytes);
  if (!inner_->in_update()) flush_pending();
}

Tick ArenaStore::apply_run(std::span<const ItemId> ids, Tick offset) {
  // Capture every payload (and verify it, if enabled) while all sources
  // are still intact, then let the inner store run its own batched move
  // so charges and layout are bit-identical to a plain cell.
  std::vector<Tick> pre;
  pre.reserve(ids.size());
  for (const ItemId id : ids) {
    const Tick at = inner_->offset_of(id);
    pre.push_back(at);
    gather(id, space_.byte_of(at), bytes_.at(id));
  }
  const Tick end = inner_->apply_run(ids, offset);
  for (std::size_t k = 0; k < ids.size(); ++k) {
    if (inner_->offset_of(ids[k]) == pre[k]) continue;
    const Tick bytes = bytes_.at(ids[k]);
    bytes_in_update_ += bytes;
    total_bytes_ += bytes;
    ++moves_;
    options_.metrics.on_move(bytes);
  }
  if (!inner_->in_update()) flush_pending();
  return end;
}

void ArenaStore::remove(ItemId id) {
  if (const std::uint32_t* slot = pending_idx_.find(id)) {
    // Payload already captured (and verified) this update.
    pending_ids_[*slot] = kNoItem;
    pending_idx_.erase(id);
  } else if (options_.verify_payloads) {
    // Not touched this update, so its arena bytes are still current.
    verify_payload(id);
  }
  inner_->remove(id);
  bytes_.erase(id);
}

void ArenaStore::audit() const {
  inner_->audit();
  if (options_.verify_payloads) verify_all_payloads();
}

}  // namespace memreal
