// The arena-backed cell: (inner store, ArenaStore, allocator, engine)
// wired behind the Cell seam, so every consumer that routes updates
// through Cells (ShardedEngine, the fuzz oracle, the drivers) can run in
// byte space by flipping CellConfig::arena.
//
// The inner store is chosen by CellConfig::engine exactly as for plain
// cells — "validated" wraps the Memory model (per-update incremental
// checks plus payload verification), "release" wraps the SlabStore fast
// path (no per-update tick validation; payload verification is then the
// only inline check).  Both flavors drive the generic Engine over the
// ArenaStore decorator: the ReleaseEngine is devirtualized on a concrete
// SlabStore and stays byte-free by design.
//
// Byte staging: the engine's before_update hook hands each update to the
// store ahead of the allocator's placement, so an insert carrying
// size_bytes lands with its true payload size (unstaged inserts default
// to size * bytes_per_tick).
#pragma once

#include <memory>
#include <span>
#include <string>

#include "arena/arena_store.h"
#include "core/engine.h"
#include "harness/cell.h"

namespace memreal {

class ArenaCell final : public Cell {
 public:
  ArenaCell(Tick capacity, Tick eps_ticks, const CellConfig& config);

  ArenaCell(const ArenaCell&) = delete;
  ArenaCell& operator=(const ArenaCell&) = delete;

  [[nodiscard]] ArenaStore& memory() override { return store_; }
  [[nodiscard]] Allocator& allocator() override { return *allocator_; }
  [[nodiscard]] Engine& engine() { return engine_; }
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] ArenaStore& arena() { return store_; }

  double step(const Update& update) override { return engine_.step(update); }
  RunStats run(std::span<const Update> updates) override {
    return engine_.run(updates);
  }
  [[nodiscard]] const RunStats& stats() const override {
    return engine_.stats();
  }

  /// Full inner-store audit, full payload sweep, allocator self-check.
  void audit() override;

 private:
  std::string name_;
  std::unique_ptr<LayoutStore> inner_;
  ArenaStore store_;
  std::unique_ptr<Allocator> allocator_;
  Engine engine_;
};

}  // namespace memreal
