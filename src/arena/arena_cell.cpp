#include "arena/arena_cell.h"

#include "mem/memory.h"
#include "release/slab_store.h"
#include "util/check.h"

namespace memreal {

namespace {

std::unique_ptr<LayoutStore> make_inner(Tick capacity, Tick eps_ticks,
                                        const CellConfig& config) {
  if (config.engine == "validated") {
    ValidationPolicy policy;
    policy.incremental = config.incremental_validation;
    policy.audit_every_n_updates = config.audit_every;
    return std::make_unique<Memory>(capacity, eps_ticks, policy);
  }
  if (config.engine == "release") {
    return std::make_unique<SlabStore>(capacity, eps_ticks);
  }
  MEMREAL_CHECK_MSG(false, "unknown engine '" << config.engine
                                              << "' (validated, release)");
}

ArenaOptions arena_options(const CellConfig& config) {
  ArenaOptions options;
  options.verify_payloads = config.verify_payloads;
  if (config.metrics != nullptr) {
    obs::MetricLabels labels;
    labels.allocator = config.allocator;
    labels.engine = config.engine + "+arena";
    labels.shard = config.shard_index;
    labels.workload = config.workload_label;
    options.metrics = obs::ArenaMetrics::create(*config.metrics, labels);
  }
  return options;
}

}  // namespace

ArenaCell::ArenaCell(Tick capacity, Tick eps_ticks, const CellConfig& config)
    : name_(config.allocator),
      inner_(make_inner(capacity, eps_ticks, config)),
      store_(*inner_, ByteSpace(config.bytes_per_tick),
             arena_options(config)),
      allocator_(make_allocator(config.allocator, store_, config.params)),
      engine_(store_, *allocator_, [&] {
        EngineOptions options;
        options.check_invariants_every = config.check_invariants_every;
        options.before_update = [this](const Update& u) {
          if (u.is_insert()) store_.stage_insert(u.id, u.size_bytes);
        };
        options.metrics = cell_metrics(config);
        return options;
      }()) {}

void ArenaCell::audit() {
  store_.audit();
  allocator_->check_invariants();
}

}  // namespace memreal
