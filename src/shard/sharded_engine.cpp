#include "shard/sharded_engine.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/trace.h"
#include "util/check.h"
#include "util/rng.h"

namespace memreal {

namespace {

/// Shard 0 runs the configured seed verbatim (the S = 1 equivalence
/// guarantee); higher shards get independent streams derived from it.
std::uint64_t shard_seed(std::uint64_t base, std::size_t shard) {
  if (shard == 0) return base;
  return SplitMix64(base + 0x9E3779B97F4A7C15ULL *
                               static_cast<std::uint64_t>(shard))
      .next();
}

std::size_t pool_threads(std::size_t requested, std::size_t shards) {
  std::size_t n = requested;
  if (n == 0) n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return std::min(n, shards);
}

}  // namespace

double ShardedRunStats::max_shard_cost() const {
  double m = 0.0;
  for (const RunStats& s : per_shard) m = std::max(m, s.ratio_cost());
  return m;
}

double ShardedRunStats::median_shard_cost() const {
  if (per_shard.empty()) return 0.0;
  std::vector<double> costs;
  costs.reserve(per_shard.size());
  for (const RunStats& s : per_shard) costs.push_back(s.ratio_cost());
  std::sort(costs.begin(), costs.end());
  const std::size_t n = costs.size();
  return n % 2 ? costs[n / 2] : 0.5 * (costs[n / 2 - 1] + costs[n / 2]);
}

double ShardedRunStats::imbalance() const {
  Tick total = 0;
  Tick max_mass = 0;
  for (const RunStats& s : per_shard) {
    total += s.update_mass;
    max_mass = std::max(max_mass, s.update_mass);
  }
  if (total == 0) return 0.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(per_shard.size());
  return static_cast<double>(max_mass) / mean;
}

double ShardedRunStats::updates_per_second() const {
  if (global.wall_seconds <= 0.0) return 0.0;
  return static_cast<double>(global.updates) / global.wall_seconds;
}

ShardedEngine::ShardedEngine(const ShardedConfig& config)
    : config_(config),
      router_(make_router(config.router, config.shards)),
      pool_(pool_threads(config.threads, config.shards)) {
  MEMREAL_CHECK_MSG(config.shards >= 1, "need at least one shard");
  MEMREAL_CHECK_MSG(
      config.rebalance_threshold == 0.0 || config.rebalance_threshold >= 1.0,
      "rebalance_threshold must be 0 (off) or >= 1");
  const Tick eps_ticks = Eps::of(config.eps, config.shard_capacity).ticks;
  MEMREAL_CHECK_MSG(eps_ticks < config.shard_capacity,
                    "eps leaves no room for items in a shard");
  shard_budget_ = config.shard_capacity - eps_ticks;

  CellConfig cell;
  cell.engine = config.engine;
  cell.allocator = config.allocator;
  cell.params = config.params;
  cell.incremental_validation = config.incremental_validation;
  cell.audit_every = config.audit_every;
  cell.check_invariants_every = config.check_invariants_every;
  cell.arena = config.arena;
  cell.bytes_per_tick = config.bytes_per_tick;
  cell.verify_payloads = config.verify_payloads;
  cell.metrics = config.metrics;
  cell.workload_label = config.workload_label;
  cells_.reserve(config.shards);
  for (std::size_t s = 0; s < config.shards; ++s) {
    cell.params.seed = shard_seed(config.params.seed, s);
    cell.shard_index = static_cast<int>(s);
    cells_.push_back(make_cell(config.shard_capacity, eps_ticks, cell));
  }
  live_mass_.assign(config.shards, 0);
  pending_.resize(config.shards);
  if (config.metrics != nullptr) {
    obs::MetricLabels labels;
    labels.allocator = config.allocator;
    labels.engine = config.engine;
    labels.workload = config.workload_label;
    router_metrics_ = obs::RouterMetrics::create(*config.metrics, labels);
  }
}

std::size_t ShardedEngine::least_loaded() const {
  std::size_t best = 0;
  for (std::size_t s = 1; s < live_mass_.size(); ++s) {
    if (live_mass_[s] < live_mass_[best]) best = s;
  }
  return best;
}

std::size_t ShardedEngine::shard_of(ItemId id) const {
  const std::size_t* s = placement_.find(id);
  MEMREAL_CHECK_MSG(s != nullptr, "shard_of: item " << id << " is not live");
  return *s;
}

std::optional<std::size_t> ShardedEngine::find_shard(ItemId id) const {
  const std::size_t* s = placement_.find(id);
  if (s == nullptr) return std::nullopt;
  return *s;
}

std::size_t ShardedEngine::route_update(const Update& u) {
  obs::ScopedSpan route_span(obs::SpanPhase::kRoute);
  std::size_t s;
  if (u.is_insert()) {
    MEMREAL_CHECK_MSG(!placement_.contains(u.id),
                      "insert of already-live item " << u.id);
    s = router_->route(u.id, u.size);
    MEMREAL_CHECK_MSG(
        s < cells_.size(), "router '" << router_->name()
                                      << "' proposed shard " << s << " of "
                                      << cells_.size());
    if (live_mass_[s] + u.size > shard_budget_) {
      const std::size_t fallback = least_loaded();
      MEMREAL_CHECK_MSG(
          live_mass_[fallback] + u.size <= shard_budget_,
          "item " << u.id << " of size " << u.size
                  << " fits no shard (least-loaded live mass "
                  << live_mass_[fallback] << ", shard budget "
                  << shard_budget_ << ")");
      s = fallback;
      ++fallback_routes_;
      if (router_metrics_.fallback_routes != nullptr) {
        router_metrics_.fallback_routes->inc();
      }
    }
    placement_[u.id] = s;
    live_mass_[s] += u.size;
  } else {
    const std::size_t* at = placement_.find(u.id);
    MEMREAL_CHECK_MSG(at != nullptr, "delete of absent item " << u.id);
    s = *at;
    placement_.erase(u.id);
    live_mass_[s] -= u.size;
  }
  return s;
}

void ShardedEngine::route_batch(std::span<const Update> batch) {
  for (const Update& u : batch) {
    pending_[route_update(u)].push_back(u);
  }
}

void ShardedEngine::apply_batch() {
  for (std::size_t s = 0; s < cells_.size(); ++s) {
    if (pending_[s].empty()) continue;
    pool_.submit([this, s] {
      cells_[s]->run(
          std::span<const Update>(pending_[s].data(), pending_[s].size()));
    });
  }
  pool_.wait();
  for (auto& p : pending_) p.clear();
}

ShardedRunStats ShardedEngine::run(const Sequence& seq) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t n = seq.updates.size();
  const std::size_t batch =
      config_.batch_size == 0 ? std::max<std::size_t>(1, n)
                              : config_.batch_size;
  std::size_t pos = 0;
  while (pos < n) {
    const std::size_t end = std::min(pos + batch, n);
    route_batch(std::span<const Update>(seq.updates.data() + pos, end - pos));
    apply_batch();
    if (config_.rebalance_threshold > 0.0) {
      rebalance(config_.rebalance_threshold);
    }
    ++batches_;
    if (router_metrics_.batches != nullptr) router_metrics_.batches->inc();
    pos = end;
  }
  const auto t1 = std::chrono::steady_clock::now();
  wall_seconds_ += std::chrono::duration<double>(t1 - t0).count();
  return stats();
}

void ShardedEngine::migrate(ItemId id, std::size_t to_shard) {
  MEMREAL_CHECK_MSG(to_shard < cells_.size(),
                    "migrate: shard " << to_shard << " of " << cells_.size());
  std::size_t* at = placement_.find(id);
  MEMREAL_CHECK_MSG(at != nullptr, "migrate: item " << id << " is not live");
  const std::size_t from = *at;
  if (from == to_shard) return;
  const Tick size = cells_[from]->memory().size_of(id);
  MEMREAL_CHECK_MSG(live_mass_[to_shard] + size <= shard_budget_,
                    "migrate: item " << id << " of size " << size
                                     << " does not fit shard " << to_shard);
  cells_[from]->step(Update::erase(id, size));
  cells_[to_shard]->step(Update::insert(id, size));
  *at = to_shard;
  live_mass_[from] -= size;
  live_mass_[to_shard] += size;
  ++migrations_;
  migrated_mass_ += size;
  if (router_metrics_.migrations != nullptr) {
    router_metrics_.migrations->inc();
    router_metrics_.migrated_ticks->add(size);
  }
}

std::size_t ShardedEngine::rebalance(double threshold) {
  MEMREAL_CHECK_MSG(threshold >= 1.0, "rebalance threshold must be >= 1");
  if (cells_.size() < 2) return 0;
  std::size_t moved = 0;
  for (;;) {
    Tick total = 0;
    std::size_t fullest = 0;
    for (std::size_t s = 0; s < live_mass_.size(); ++s) {
      total += live_mass_[s];
      if (live_mass_[s] > live_mass_[fullest]) fullest = s;
    }
    const double mean =
        static_cast<double>(total) / static_cast<double>(live_mass_.size());
    if (static_cast<double>(live_mass_[fullest]) <= threshold * mean) break;
    const std::size_t emptiest = least_loaded();
    // Moving more than half the gap would overshoot (and could oscillate);
    // the largest item under half the gap makes strict progress.
    const Tick gap = live_mass_[fullest] - live_mass_[emptiest];
    const Tick target = gap / 2;
    ItemId best = kNoItem;
    Tick best_size = 0;
    for (const PlacedItem& item : cells_[fullest]->memory().snapshot()) {
      if (item.size <= target && item.size > best_size) {
        best = item.id;
        best_size = item.size;
      }
    }
    if (best == kNoItem) break;  // every item overshoots: no safe move
    migrate(best, emptiest);
    ++moved;
  }
  return moved;
}

void ShardedEngine::audit() const {
  for (const auto& cell : cells_) {
    cell->audit();
  }
}

ShardedRunStats ShardedEngine::stats() const {
  ShardedRunStats out;
  out.shards = cells_.size();
  out.per_shard.reserve(cells_.size());
  for (const auto& cell : cells_) {
    out.per_shard.push_back(cell->stats());
    out.global.merge(out.per_shard.back());
  }
  // merge() sums the per-shard walls; the sharded wall is the parallel
  // route + apply time measured here.
  out.global.wall_seconds = wall_seconds_;
  out.batches = batches_;
  out.fallback_routes = fallback_routes_;
  out.migrations = migrations_;
  out.migrated_mass = migrated_mass_;
  return out;
}

}  // namespace memreal
