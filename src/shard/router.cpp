#include "shard/router.h"

#include <bit>

#include "util/check.h"
#include "util/rng.h"

namespace memreal {

namespace {

class HashRouter final : public Router {
 public:
  explicit HashRouter(std::size_t shards) : shards_(shards) {}

  std::size_t route(ItemId id, Tick /*size*/) override {
    // One SplitMix64 step: ids are consecutive integers in generated
    // workloads, so routing raw id % S would stripe, not spread.
    return static_cast<std::size_t>(SplitMix64(id).next() % shards_);
  }

  [[nodiscard]] std::string_view name() const override { return "hash"; }

 private:
  std::uint64_t shards_;
};

class SizeClassRouter final : public Router {
 public:
  explicit SizeClassRouter(std::size_t shards) : shards_(shards) {}

  std::size_t route(ItemId /*id*/, Tick size) override {
    // size >= 1 always (the engine rejects empty updates).
    const auto size_class = static_cast<std::size_t>(std::bit_width(size) - 1);
    return size_class % shards_;
  }

  [[nodiscard]] std::string_view name() const override { return "size-class"; }

 private:
  std::size_t shards_;
};

class RoundRobinRouter final : public Router {
 public:
  explicit RoundRobinRouter(std::size_t shards) : shards_(shards) {}

  std::size_t route(ItemId /*id*/, Tick /*size*/) override {
    const std::size_t s = next_;
    next_ = (next_ + 1) % shards_;
    return s;
  }

  [[nodiscard]] std::string_view name() const override {
    return "round-robin";
  }

 private:
  std::size_t shards_;
  std::size_t next_ = 0;
};

}  // namespace

std::vector<std::string> router_names() {
  return {"hash", "size-class", "round-robin"};
}

std::unique_ptr<Router> make_router(const std::string& name,
                                    std::size_t shards) {
  MEMREAL_CHECK_MSG(shards >= 1, "router needs at least one shard");
  if (name == "hash") return std::make_unique<HashRouter>(shards);
  if (name == "size-class") return std::make_unique<SizeClassRouter>(shards);
  if (name == "round-robin") {
    return std::make_unique<RoundRobinRouter>(shards);
  }
  std::string known;
  for (const std::string& n : router_names()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  MEMREAL_CHECK_MSG(false, "unknown router policy '"
                               << name << "' (known: " << known << ")");
}

}  // namespace memreal
