// The sharded multi-cell engine.
//
// The paper's allocators each manage ONE contiguous cell [0, capacity).
// ShardedEngine scales that out the way production reallocators do: it
// owns S independent (Memory, Allocator, Engine) cells, routes every item
// to a cell via a pluggable Router policy, and applies update batches in
// parallel on a ThreadPool — one task per shard, each task replaying that
// shard's sub-sequence in global order.
//
// Correctness model:
//   * Routing is a *sequential* pass over the batch.  It assigns every
//     insert a shard (router proposal, least-loaded fallback when the
//     proposal would break the shard's load-factor promise) and sends
//     every delete to the shard its item lives on.  Because the pass
//     tracks per-shard live mass exactly as the apply phase will evolve
//     it, admission decisions made at route time are exact, not
//     heuristic.
//   * Apply is parallel across shards but in-order within a shard, so
//     each cell sees a well-formed single-cell sequence.  Cells share
//     nothing; the final state is a pure function of (sequence, config)
//     and in particular independent of the thread count.
//   * With the default "validated" engine every cell keeps the full
//     validation stack (incremental per-update checks, optional audit
//     cadence, allocator self-checks) — a sharded run is as verified as S
//     single-cell runs.  With engine = "release" the cells run the
//     unchecked SlabStore fast path (harness/cell.h); audit() remains an
//     explicit full check.
//
// With S = 1 and the same allocator seed, ShardedEngine is update-for-
// update identical to a plain Engine run: one shard, every update routed
// to it in order, no fallback possible (test_shard locks this in).
//
// Rebalancing: migrate() moves one item between shards as a delete +
// insert through the cells' engines, so migration mass is charged to the
// per-shard costs like any other update.  rebalance() is the built-in
// policy: greedily move items from the most- to the least-loaded shard
// until live-mass imbalance drops under a threshold; it runs between
// batches when ShardedConfig::rebalance_threshold is set.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "alloc/registry.h"
#include "core/run_stats.h"
#include "harness/cell.h"
#include "mem/memory.h"
#include "util/flat_map.h"
#include "shard/router.h"
#include "util/parallel.h"
#include "workload/sequence.h"

namespace memreal {

struct ShardedConfig {
  /// Cell engine flavor for every shard: "validated" or "release" (see
  /// harness/cell.h).
  std::string engine = "validated";
  std::string allocator;   ///< registry name, used for every cell
  AllocatorParams params;  ///< shard 0 runs params.seed verbatim; shard
                           ///< s > 0 derives an independent stream from it
  std::size_t shards = 1;
  /// Per-cell geometry.  The global footprint is shards * shard_capacity;
  /// workloads for an S-shard run should be generated with that total
  /// capacity and item sizes in the allocator's band of *shard_capacity*.
  Tick shard_capacity = kDefaultCapacity;
  double eps = 1.0 / 64;
  std::string router = "hash";  ///< see router.h for the policy names
  std::size_t threads = 0;      ///< 0 = all cores (capped at shards)
  /// Updates routed + applied per parallel round; 0 = whole run in one
  /// batch.  Smaller batches mean more frequent rebalancing points.
  std::size_t batch_size = 0;
  /// Live-mass imbalance ratio (max shard / mean) above which rebalance()
  /// runs after a batch; 0 disables, otherwise must be >= 1.
  double rebalance_threshold = 0.0;
  // Per-cell validation knobs (CellConfig semantics).
  bool incremental_validation = true;
  std::size_t audit_every = 0;
  std::size_t check_invariants_every = 0;
  // Byte-space knobs (CellConfig semantics): arena = true backs every
  // shard's cell with a real byte arena, so a sharded run reports the
  // moved-bytes channel and verifies payload stamps.
  bool arena = false;
  Tick bytes_per_tick = 8;
  bool verify_payloads = true;
  /// Observability (CellConfig semantics): when set, every cell registers
  /// per-shard instruments under {allocator, engine, shard, workload} and
  /// the router registers fallback/migration/batch counters.
  obs::MetricRegistry* metrics = nullptr;
  std::string workload_label;
};

/// Aggregated statistics of a sharded run: the merged global RunStats plus
/// the per-shard breakdown the ROADMAP's scaling experiments read.
struct ShardedRunStats {
  RunStats global;                  ///< merge() of all shards; wall_seconds
                                    ///< is the *parallel* wall, not the sum
  std::vector<RunStats> per_shard;  ///< cumulative per cell (incl. migrations)

  std::size_t shards = 0;
  std::size_t batches = 0;
  std::size_t fallback_routes = 0;  ///< inserts diverted off their proposal
  std::size_t migrations = 0;
  Tick migrated_mass = 0;

  /// Max / median over shards of the per-shard ratio cost.
  [[nodiscard]] double max_shard_cost() const;
  [[nodiscard]] double median_shard_cost() const;
  /// Work imbalance: max shard update mass over mean shard update mass
  /// (1.0 = perfectly balanced; 0 when no mass was updated).
  [[nodiscard]] double imbalance() const;
  [[nodiscard]] double updates_per_second() const;
};

class ShardedEngine {
 public:
  explicit ShardedEngine(const ShardedConfig& config);

  /// Routes and applies the whole sequence (in batch_size rounds) and
  /// returns the cumulative statistics.  May be called repeatedly; state
  /// carries over like Engine::run.  Throws InvariantViolation if any
  /// cell's validation trips, or if an insert fits no shard at all.
  ShardedRunStats run(const Sequence& seq);

  /// Cumulative statistics so far (also what run() returned last).
  [[nodiscard]] ShardedRunStats stats() const;

  /// Moves one live item to `to_shard` as a delete + insert through the
  /// cell engines (its mass is charged to both shards' costs).  No-op if
  /// the item already lives there; throws if the target cannot accept it.
  void migrate(ItemId id, std::size_t to_shard);

  /// Greedy live-mass rebalancing: repeatedly move the largest item that
  /// halves the max-min gap from the fullest to the emptiest shard, until
  /// max live mass <= threshold * mean live mass (threshold >= 1) or no
  /// move helps.  Returns the number of migrations performed.
  std::size_t rebalance(double threshold);

  /// Full audit of every cell: memory audit + allocator self-check.
  void audit() const;

  /// Routes one update exactly as the batch path would — placement map,
  /// live-mass tracking, least-loaded fallback — and returns its shard
  /// WITHOUT enqueuing or applying it.  The online serving layer
  /// (src/serve) shares the batch path's admission logic through this
  /// hook, which is what makes its deterministic mode bit-identical to
  /// run().  Not thread-safe; the caller serializes.
  std::size_t route_update(const Update& update);

  /// Direct cell access for the serving layer's per-shard workers.
  [[nodiscard]] Cell& cell(std::size_t shard) { return *cells_.at(shard); }

  [[nodiscard]] std::size_t shard_count() const { return cells_.size(); }
  [[nodiscard]] std::size_t thread_count() const {
    return pool_.thread_count();
  }
  /// Which shard a live item is placed on; throws for absent ids.
  [[nodiscard]] std::size_t shard_of(ItemId id) const;
  /// Non-throwing variant: nullopt when the item is not live.
  [[nodiscard]] std::optional<std::size_t> find_shard(ItemId id) const;
  [[nodiscard]] LayoutStore& memory(std::size_t shard) {
    return cells_.at(shard)->memory();
  }
  [[nodiscard]] Allocator& allocator(std::size_t shard) {
    return cells_.at(shard)->allocator();
  }
  [[nodiscard]] const ShardedConfig& config() const { return config_; }

 private:
  void route_batch(std::span<const Update> batch);
  void apply_batch();
  /// Least-loaded shard by tracked live mass (lowest index wins ties).
  [[nodiscard]] std::size_t least_loaded() const;

  ShardedConfig config_;
  Tick shard_budget_ = 0;  ///< per-shard capacity - eps_ticks
  std::unique_ptr<Router> router_;
  std::vector<std::unique_ptr<Cell>> cells_;
  ThreadPool pool_;

  /// id -> shard for every live item (routing map; deletes and migrations
  /// follow it).
  FlatIdMap<std::size_t> placement_;
  /// Tracked live mass per shard; exact mirror of the cells' live_mass()
  /// at batch boundaries, maintained through routing so admission checks
  /// never lag behind the apply phase.
  std::vector<Tick> live_mass_;
  /// Per-shard sub-sequences of the batch being routed/applied.
  std::vector<std::vector<Update>> pending_;

  std::size_t batches_ = 0;
  std::size_t fallback_routes_ = 0;
  std::size_t migrations_ = 0;
  Tick migrated_mass_ = 0;
  double wall_seconds_ = 0.0;
  obs::RouterMetrics router_metrics_;
};

}  // namespace memreal
