// Routing policies for the sharded engine: which cell serves a new item.
//
// A Router is consulted once per *insert* (the proposed shard); deletes
// always follow the item to wherever it actually landed, via the engine's
// id -> shard placement map.  The proposal is advisory — ShardedEngine
// falls back to the least-loaded shard when the proposed cell cannot
// accept the item without breaking its per-shard load-factor promise (and
// counts the diversion, see ShardedRunStats::fallback_routes).
//
// Policies:
//   hash        — SplitMix64 of the id, modulo S.  Stateless; spreads any
//                 id stream uniformly, the default for uniform churn.
//   size-class  — floor(log2(size)) modulo S.  Items of one size class
//                 share a shard (slab affinity); skewed size mixes skew
//                 the shards, which is exactly what the rebalancer and the
//                 fallback path are exercised by.
//   round-robin — arrival order modulo S.  Stateful but deterministic;
//                 gives perfect insert-count balance regardless of ids.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.h"

namespace memreal {

class Router {
 public:
  virtual ~Router() = default;

  /// The proposed shard in [0, shards) for inserting (id, size).  Called
  /// exactly once per insert, in sequence order — stateful policies rely
  /// on that.
  [[nodiscard]] virtual std::size_t route(ItemId id, Tick size) = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// Registered policy names: hash, size-class, round-robin.
[[nodiscard]] std::vector<std::string> router_names();

/// Constructs the policy `name` for `shards` cells; throws
/// InvariantViolation for unknown names (the message lists the known
/// policies) and for shards == 0.
[[nodiscard]] std::unique_ptr<Router> make_router(const std::string& name,
                                                  std::size_t shards);

}  // namespace memreal
