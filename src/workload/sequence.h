// Update sequences and the builder that guarantees the adversary's promise.
//
// All generators produce a Sequence *offline* (fixed before the allocator
// draws any randomness), matching the paper's oblivious-adversary model.
// The builder tracks the live set so that every prefix respects
// live mass <= capacity - eps.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "core/update.h"
#include "util/rng.h"
#include "util/types.h"

namespace memreal {

struct Sequence {
  std::string name;
  Tick capacity = kDefaultCapacity;
  double eps = 0.0;
  Tick eps_ticks = 0;
  /// Byte-space granule for byte-mode sequences; 0 = tick-native (no
  /// update carries a payload size).  When nonzero, every update's
  /// size_bytes (if set) must round up to exactly its tick size.
  Tick bytes_per_tick = 0;
  std::vector<Update> updates;

  [[nodiscard]] std::size_t size() const { return updates.size(); }

  /// Replays the sequence against a virtual live set and checks the
  /// adversary's promise plus well-formedness (no duplicate live ids, no
  /// delete of absent items, byte sizes consistent with tick sizes).
  /// Throws InvariantViolation on failure.
  void check_well_formed() const;
};

/// Incrementally builds a well-formed sequence.  Pass a nonzero
/// bytes_per_tick to build a byte-mode sequence: insert_bytes then
/// records payload sizes and deletes echo them back.
class SequenceBuilder {
 public:
  SequenceBuilder(std::string name, Tick capacity, double eps,
                  Tick bytes_per_tick = 0);

  /// Max mass the adversary may have live.
  [[nodiscard]] Tick budget() const { return capacity_ - eps_ticks_; }
  [[nodiscard]] Tick live_mass() const { return live_mass_; }
  [[nodiscard]] std::size_t live_count() const { return live_.size(); }
  /// Updates emitted so far.
  [[nodiscard]] std::size_t update_count() const {
    return seq_.updates.size();
  }
  [[nodiscard]] bool can_insert(Tick size) const {
    return live_mass_ + size <= budget();
  }

  /// Inserts a fresh item of `size`; returns its id.
  ItemId insert(Tick size);

  /// Byte-mode insert: ticks are derived from `size_bytes` by
  /// min-allocation rounding (requires a nonzero bytes_per_tick).
  ItemId insert_bytes(Tick size_bytes);

  /// Ticks a payload of `size_bytes` occupies under this builder's
  /// granule.
  [[nodiscard]] Tick ticks_for_bytes(Tick size_bytes) const;

  /// Deletes the live item at `index` (in insertion-compacted order).
  void erase_at(std::size_t index);

  /// Deletes a uniformly random live item.
  void erase_random(Rng& rng);

  /// Deletes a specific live id (linear scan; for scripted adversaries).
  void erase_id(ItemId id);

  [[nodiscard]] Tick size_at(std::size_t index) const {
    return live_[index].size;
  }
  [[nodiscard]] Tick bytes_at(std::size_t index) const {
    return live_[index].bytes;
  }
  [[nodiscard]] ItemId id_at(std::size_t index) const {
    return live_[index].id;
  }

  [[nodiscard]] Sequence take();

 private:
  struct Live {
    ItemId id;
    Tick size;
    Tick bytes;  ///< 0 for tick-native items
  };

  Sequence seq_;
  std::vector<Live> live_;
  Tick live_mass_ = 0;
  ItemId next_id_ = 1;
  Tick capacity_;
  Tick eps_ticks_;
  Tick bytes_per_tick_;
};

// -- Mutation hooks ---------------------------------------------------------
//
// The fuzzer's mutator and shrinker edit update streams freely (dropping
// chunks, resizing items, splicing segments) and then *repair* the result
// back into a well-formed sequence instead of rejecting it.  Repair replays
// the edited stream against a virtual live set with SequenceBuilder's
// semantics and drops every update that no longer applies.  The repair is
// deterministic, idempotent, and its output always passes
// Sequence::check_well_formed().

/// Rebuilds a well-formed sequence from an arbitrarily edited update list:
/// drops inserts with non-positive size, inserts of an already-live id and
/// inserts that would break the load-factor promise; drops deletes of
/// absent ids and rewrites delete sizes to the live item's size.  Header
/// fields (name, capacity, eps) are taken from `base`.
[[nodiscard]] Sequence repair_sequence(const Sequence& base,
                                       std::vector<Update> updates);

/// Keeps only the updates with keep[i] true, then repairs well-formedness
/// (deletes whose insert was dropped are dropped too).  keep.size() must
/// equal base.size().
[[nodiscard]] Sequence subsequence(const Sequence& base,
                                   const std::vector<bool>& keep);

/// Rewrites the size of every update touching an id in `new_sizes`, then
/// repairs well-formedness (resized inserts that overflow the promise are
/// dropped along with their deletes).  Sizes of 0 are rejected.
[[nodiscard]] Sequence with_sizes(
    const Sequence& base, const std::unordered_map<ItemId, Tick>& new_sizes);

}  // namespace memreal
