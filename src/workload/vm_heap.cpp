#include "workload/vm_heap.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.h"

namespace memreal {

namespace {

/// Log-uniform byte size in [min_bytes, max_bytes].
Tick draw_log_uniform(Rng& rng, Tick min_bytes, Tick max_bytes) {
  if (min_bytes == max_bytes) return min_bytes;
  const double lo = std::log(static_cast<double>(min_bytes));
  const double hi = std::log(static_cast<double>(max_bytes) + 1.0);
  const double v = std::exp(lo + rng.next_double() * (hi - lo));
  return std::clamp(static_cast<Tick>(v), min_bytes, max_bytes);
}

}  // namespace

Sequence make_vm_heap(const VmHeapConfig& c) {
  MEMREAL_CHECK(c.bytes_per_tick > 0);
  MEMREAL_CHECK(c.min_bytes > 0 && c.min_bytes <= c.max_bytes);
  MEMREAL_CHECK(c.target_load > 0.0 && c.target_load <= 1.0);
  MEMREAL_CHECK(c.grow_prob >= 0.0 && c.grow_prob <= 1.0);
  MEMREAL_CHECK(c.growth_factor > 1.0);
  MEMREAL_CHECK(c.gc_death_fraction >= 0.0 && c.gc_death_fraction <= 1.0);
  MEMREAL_CHECK(c.young_death_bias >= 1.0);

  SequenceBuilder b("vm_heap", c.capacity, c.eps, c.bytes_per_tick);
  Rng rng(c.seed);

  std::vector<Tick> palette;
  if (c.distinct_sizes > 0) {
    while (palette.size() < c.distinct_sizes) {
      const Tick v = draw_log_uniform(rng, c.min_bytes, c.max_bytes);
      if (std::find(palette.begin(), palette.end(), v) == palette.end()) {
        palette.push_back(v);
      }
      // A narrow band may hold fewer distinct values than requested.
      if (palette.size() >=
          std::min<std::size_t>(c.distinct_sizes,
                                c.max_bytes - c.min_bytes + 1)) {
        break;
      }
    }
  }

  auto draw_bytes = [&]() -> Tick {
    if (!palette.empty()) {
      return palette[rng.next_below(palette.size())];
    }
    return draw_log_uniform(rng, c.min_bytes, c.max_bytes);
  };
  /// The next palette value above `bytes` (realloc growth must stay on
  /// the palette); in free mode, growth_factor * bytes capped to the band.
  auto grown_bytes = [&](Tick bytes) -> Tick {
    if (!palette.empty()) {
      Tick best = 0;
      for (const Tick v : palette) {
        if (v > bytes && (best == 0 || v < best)) best = v;
      }
      return best == 0 ? bytes : best;
    }
    const double g = std::ceil(static_cast<double>(bytes) * c.growth_factor);
    return std::clamp(static_cast<Tick>(g), c.min_bytes, c.max_bytes);
  };

  // Births mirror the builder's swap-compacted live table exactly: push on
  // insert, swap-with-last on erase.  The values order items by age.
  std::vector<std::uint64_t> birth;
  std::uint64_t clock = 0;
  auto track_insert = [&](Tick bytes) -> bool {
    if (!b.can_insert(b.ticks_for_bytes(bytes))) return false;
    b.insert_bytes(bytes);
    birth.push_back(clock++);
    return true;
  };
  auto track_erase = [&](std::size_t index) {
    b.erase_at(index);
    birth[index] = birth.back();
    birth.pop_back();
  };
  /// Generational victim: a 2-choice tournament keeps the younger
  /// candidate with probability bias / (bias + 1) — cheap, and yields the
  /// infant-mortality skew without sorting the live table.
  auto pick_victim = [&]() -> std::size_t {
    const std::size_t a = rng.next_below(birth.size());
    const std::size_t d = rng.next_below(birth.size());
    const std::size_t young = birth[a] >= birth[d] ? a : d;
    const std::size_t old = birth[a] >= birth[d] ? d : a;
    const double p_young = c.young_death_bias / (c.young_death_bias + 1.0);
    return rng.next_double() < p_young ? young : old;
  };

  // Fill toward the target load.
  const Tick target_mass = static_cast<Tick>(
      c.target_load * static_cast<double>(b.budget()));
  while (b.live_mass() < target_mass) {
    if (!track_insert(draw_bytes())) break;
  }

  // Churn.
  const std::size_t fill_updates = b.update_count();
  std::size_t step = 0;
  while (b.update_count() - fill_updates < c.churn_updates) {
    ++step;
    const std::size_t before = b.update_count();
    if (c.gc_period != 0 && step % c.gc_period == 0 && b.live_count() > 0) {
      // Compaction burst: free a slice of the heap, then re-fill it.
      const auto kills = static_cast<std::size_t>(
          c.gc_death_fraction * static_cast<double>(b.live_count()));
      for (std::size_t k = 0; k < kills && b.live_count() > 0; ++k) {
        track_erase(pick_victim());
      }
      while (b.live_mass() < target_mass) {
        if (!track_insert(draw_bytes())) break;
      }
      continue;
    }
    if (b.live_count() > 0 && rng.next_double() < c.grow_prob) {
      // Grow-realloc chain: realloc(ptr, old, new) as delete + insert.
      const std::size_t i = rng.next_below(b.live_count());
      const Tick old_bytes = b.bytes_at(i);
      const Tick new_bytes = grown_bytes(old_bytes);
      track_erase(i);
      if (!track_insert(new_bytes)) track_insert(old_bytes);
      continue;
    }
    // Generational death + fresh allocation.
    if (b.live_count() > 0) track_erase(pick_victim());
    track_insert(draw_bytes());
    MEMREAL_CHECK_MSG(b.update_count() > before,
                      "vm_heap made no progress (capacity "
                          << c.capacity << " cannot hold an item of "
                          << c.min_bytes << " bytes at granule "
                          << c.bytes_per_tick << ")");
  }

  Sequence seq = b.take();
  seq.check_well_formed();
  return seq;
}

}  // namespace memreal
