#include "workload/random_item.h"

#include <cmath>

#include "util/check.h"

namespace memreal {

std::size_t random_item_count(double delta) {
  MEMREAL_CHECK(delta > 0.0 && delta < 1.0);
  return static_cast<std::size_t>(std::floor(1.0 / delta / 4.0));
}

Sequence make_random_item_sequence(const RandomItemConfig& c) {
  double delta = c.delta;
  if (delta == 0.0) delta = std::pow(c.eps, 0.75);
  MEMREAL_CHECK_MSG(delta < 0.5, "delta too large to fit any items");

  const auto cap_d = static_cast<double>(c.capacity);
  const auto lo = static_cast<Tick>(delta * cap_d);
  const auto hi = static_cast<Tick>(2.0 * delta * cap_d);
  MEMREAL_CHECK(lo >= 1 && lo < hi);

  SequenceBuilder b("random-item", c.capacity, c.eps);
  Rng rng(c.seed);
  const std::size_t n = random_item_count(delta);
  MEMREAL_CHECK_MSG(n >= 1, "delta too large: zero items");

  // Fill: n items with sizes uniform in [delta, 2delta].  Worst-case mass
  // is n * 2delta <= delta^-1/4 * 2delta = 1/2 < 1 - eps, so the promise
  // always holds.
  for (std::size_t i = 0; i < n; ++i) {
    b.insert(rng.next_in(lo, hi));
  }
  // Churn: alternate delete-random / insert-random.
  for (std::size_t i = 0; i < c.churn_pairs; ++i) {
    b.erase_random(rng);
    b.insert(rng.next_in(lo, hi));
  }
  Sequence out = b.take();
  out.name = "random-item";
  return out;
}

}  // namespace memreal
