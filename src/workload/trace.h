// Trace serialization: record a Sequence to a plain-text stream and replay
// it later.
//
// Version 2 (what write_trace emits):
//
//   # comment
//   V 2                       format version; must precede the header
//   H capacity eps name       header
//   B bytes_per_tick          byte-space granule (byte-mode traces only)
//   I id size [bytes]         insert; optional payload byte size
//   D id size [bytes]         delete; byte size must echo the insert
//   R old new size [bytes]    reallocate(ptr, old, new): expands to a
//                             delete of `old` followed by an insert of the
//                             fresh id `new` — the capture format for
//                             byte-level realloc traces
//
// Version 1 (the pre-versioning format) had no V/B/R lines and no byte
// fields; a trace whose first directive is H is read as v1 for back
// compatibility.  Byte-mode constructs in a v1 trace are errors, and
// every parse error names the offending line and the trace version.
#pragma once

#include <iosfwd>
#include <string>

#include "workload/sequence.h"

namespace memreal {

void write_trace(const Sequence& seq, std::ostream& os);
[[nodiscard]] Sequence read_trace(std::istream& is);

[[nodiscard]] std::string trace_to_string(const Sequence& seq);
[[nodiscard]] Sequence trace_from_string(const std::string& text);

}  // namespace memreal
