// Trace serialization: record a Sequence to a plain-text stream and replay
// it later.  Lines are "# comment", "H capacity eps" (header), "I id size",
// and "D id size".
#pragma once

#include <iosfwd>
#include <string>

#include "workload/sequence.h"

namespace memreal {

void write_trace(const Sequence& seq, std::ostream& os);
[[nodiscard]] Sequence read_trace(std::istream& is);

[[nodiscard]] std::string trace_to_string(const Sequence& seq);
[[nodiscard]] Sequence trace_from_string(const std::string& text);

}  // namespace memreal
