// Adversarial and structured workloads.
//
//  * make_single_class_attack — hammers one GEO size class with
//    insert/delete pairs; with deterministic rebuild thresholds this forces
//    periodic expensive rebuilds on predictable updates (ablation T8a).
//  * make_fragmenter        — builds a maximally fragmented layout, then
//    inserts items slightly larger than every gap (worst case for
//    first-fit / windowed folklore).
//  * make_sawtooth          — grows to high load then shrinks repeatedly,
//    exercising the resizable guarantee on both flanks.
//  * make_mixed_tiny_large  — interleaves tiny (< eps^4) and large items,
//    the regime of Corollary 4.10.
#pragma once

#include <cstdint>

#include "workload/sequence.h"

namespace memreal {

struct SingleClassAttackConfig {
  Tick capacity = kDefaultCapacity;
  double eps = 1.0 / 64;
  double size_fraction = 0.0;  ///< item size / capacity; 0 = 2*eps^{1.25}
  double base_load = 0.8;      ///< background fill of same-size items
  std::size_t attack_pairs = 5'000;
  std::uint64_t seed = 1;
};

[[nodiscard]] Sequence make_single_class_attack(
    const SingleClassAttackConfig& c);

struct FragmenterConfig {
  Tick capacity = kDefaultCapacity;
  double eps = 1.0 / 64;
  Tick small_size = 0;  ///< 0 = eps/2 of capacity
  std::size_t rounds = 4;
  std::uint64_t seed = 1;
};

[[nodiscard]] Sequence make_fragmenter(const FragmenterConfig& c);

struct SawtoothConfig {
  Tick capacity = kDefaultCapacity;
  double eps = 1.0 / 64;
  Tick min_size = 0;  ///< 0 = eps of capacity
  Tick max_size = 0;  ///< 0 = 2*eps of capacity - 1
  double high_load = 0.9;
  double low_load = 0.1;
  std::size_t teeth = 3;
  std::uint64_t seed = 1;
};

[[nodiscard]] Sequence make_sawtooth(const SawtoothConfig& c);

struct MixedTinyLargeConfig {
  Tick capacity = kDefaultCapacity;
  double eps = 1.0 / 64;
  double tiny_fraction = 0.5;  ///< fraction of updates on tiny items
  double target_load = 0.8;
  std::size_t churn_updates = 10'000;
  std::uint64_t seed = 1;
};

[[nodiscard]] Sequence make_mixed_tiny_large(const MixedTinyLargeConfig& c);

}  // namespace memreal
