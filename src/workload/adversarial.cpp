#include "workload/adversarial.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.h"

namespace memreal {

Sequence make_single_class_attack(const SingleClassAttackConfig& c) {
  const auto cap_d = static_cast<double>(c.capacity);
  double frac = c.size_fraction;
  if (frac == 0.0) frac = 2.0 * std::pow(c.eps, 1.25);
  const auto size = std::max<Tick>(1, static_cast<Tick>(frac * cap_d));

  SequenceBuilder b("single-class-attack", c.capacity, c.eps);
  Rng rng(c.seed);
  const auto target =
      static_cast<Tick>(c.base_load * static_cast<double>(b.budget()));
  while (b.live_mass() + size <= target) b.insert(size);
  MEMREAL_CHECK_MSG(b.live_count() >= 2, "attack size too large for load");

  for (std::size_t i = 0; i < c.attack_pairs; ++i) {
    b.erase_random(rng);
    b.insert(size);
  }
  Sequence out = b.take();
  out.name = "single-class-attack";
  return out;
}

Sequence make_fragmenter(const FragmenterConfig& c) {
  const auto cap_d = static_cast<double>(c.capacity);
  Tick small = c.small_size;
  if (small == 0) {
    small = std::max<Tick>(1, static_cast<Tick>(c.eps * cap_d / 2));
  }

  SequenceBuilder b("fragmenter", c.capacity, c.eps);
  Rng rng(c.seed);
  const Tick big = small + small / 2 + 1;  // never fits a small-item gap
  for (std::size_t round = 0; round < c.rounds; ++round) {
    // Fill with small items to ~85% of budget.
    const auto target = b.budget() - b.budget() / 8;
    while (b.live_mass() + small <= target) b.insert(small);
    // Delete every other live item, fragmenting half the mass away.
    // (Deleting from the back keeps erase_at indices stable.)
    for (std::size_t i = b.live_count(); i >= 2; i -= 2) {
      b.erase_at(i - 2);
    }
    // Refill with larger items that cannot reuse any single gap.
    while (b.can_insert(big) &&
           b.live_mass() + big <= target) {
      b.insert(big);
    }
    // Drain most of the large items so the next round starts fresh.
    while (b.live_count() > 8) b.erase_random(rng);
  }
  Sequence out = b.take();
  out.name = "fragmenter";
  return out;
}

Sequence make_sawtooth(const SawtoothConfig& c) {
  const auto cap_d = static_cast<double>(c.capacity);
  Tick lo = c.min_size;
  Tick hi = c.max_size;
  if (lo == 0) lo = std::max<Tick>(1, static_cast<Tick>(c.eps * cap_d));
  if (hi == 0) hi = static_cast<Tick>(2.0 * c.eps * cap_d) - 1;
  MEMREAL_CHECK(lo <= hi);
  MEMREAL_CHECK(c.low_load < c.high_load);

  SequenceBuilder b("sawtooth", c.capacity, c.eps);
  Rng rng(c.seed);
  const auto high =
      static_cast<Tick>(c.high_load * static_cast<double>(b.budget()));
  const auto low =
      static_cast<Tick>(c.low_load * static_cast<double>(b.budget()));
  for (std::size_t tooth = 0; tooth < c.teeth; ++tooth) {
    while (b.live_mass() + hi <= high) b.insert(rng.next_in(lo, hi));
    while (b.live_mass() > low && b.live_count() > 0) b.erase_random(rng);
  }
  Sequence out = b.take();
  out.name = "sawtooth";
  return out;
}

Sequence make_mixed_tiny_large(const MixedTinyLargeConfig& c) {
  const auto cap_d = static_cast<double>(c.capacity);
  const double e4 = std::pow(c.eps, 4.0);
  // Tiny: strictly below eps^4 (the Section 4.2 threshold).  Keep the count
  // bounded (mass is negligible; updates are what matter).
  const auto tiny_hi = static_cast<Tick>(e4 * cap_d) - 1;
  const Tick tiny_lo = std::max<Tick>(1, tiny_hi / 4);
  // Large: log-uniform in [eps^1.5, eps^0.75].
  const double log_eps = std::log(c.eps);

  SequenceBuilder b("mixed-tiny-large", c.capacity, c.eps);
  Rng rng(c.seed);
  auto draw_large = [&]() -> Tick {
    const double e = 0.75 + 0.75 * rng.next_double();
    return std::max<Tick>(1, static_cast<Tick>(std::exp(e * log_eps) * cap_d));
  };
  auto draw_tiny = [&] { return rng.next_in(tiny_lo, tiny_hi); };

  // Fill: large items carry the mass; a fixed population of tiny items
  // carries the update traffic.
  const auto target =
      static_cast<Tick>(c.target_load * static_cast<double>(b.budget()));
  std::vector<ItemId> tiny_ids;
  for (std::size_t i = 0; i < 2000; ++i) {
    tiny_ids.push_back(b.insert(draw_tiny()));
  }
  while (true) {
    const Tick s = draw_large();
    if (b.live_mass() + s > target) break;
    b.insert(s);
  }

  // Churn: coin-flip between tiny and large traffic.
  std::size_t tiny_alive = tiny_ids.size();
  for (std::size_t i = 0; i < c.churn_updates; i += 2) {
    if (rng.next_double() < c.tiny_fraction && tiny_alive > 0) {
      // Delete a random tiny item, insert a fresh one.
      const std::size_t k =
          static_cast<std::size_t>(rng.next_below(tiny_alive));
      b.erase_id(tiny_ids[k]);
      tiny_ids[k] = tiny_ids[--tiny_alive];
      tiny_ids[tiny_alive] = b.insert(draw_tiny());
      ++tiny_alive;
    } else {
      // Large churn pair: delete a random *large* item.  Index scan: pick
      // random live entries until one is large (tiny population is a tiny
      // fraction of the live count here, usually one try).
      for (int tries = 0; tries < 64 && b.live_count() > 0; ++tries) {
        const auto k = static_cast<std::size_t>(rng.next_below(b.live_count()));
        if (b.size_at(k) > tiny_hi) {
          b.erase_at(k);
          break;
        }
      }
      Tick s = draw_large();
      if (!b.can_insert(s)) continue;
      b.insert(s);
    }
  }
  Sequence out = b.take();
  out.name = "mixed-tiny-large";
  return out;
}

}  // namespace memreal
