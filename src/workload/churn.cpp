#include "workload/churn.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace memreal {

namespace {

/// Fill phase: insert random sizes drawn by `draw` until the next insert
/// would push live mass above target_load * budget.
template <typename Draw>
void fill_phase(SequenceBuilder& b, double target_load, Draw&& draw,
                Tick min_size) {
  const auto target =
      static_cast<Tick>(target_load * static_cast<double>(b.budget()));
  for (;;) {
    const Tick s = draw();
    if (b.live_mass() + s > target) {
      // Try the smallest size before giving up, so the fill ends close to
      // the target rather than a whole max_size short of it.
      if (b.live_mass() + min_size > target) break;
      if (!b.can_insert(min_size)) break;
      b.insert(min_size);
      continue;
    }
    b.insert(s);
  }
}

/// Churn phase: alternate delete-random / insert-random while respecting
/// the promise (retries the draw if the insert would not fit).
template <typename Draw>
void churn_phase(SequenceBuilder& b, std::size_t updates, Rng& rng,
                 Draw&& draw, Tick min_size) {
  for (std::size_t i = 0; i < updates; ++i) {
    if (i % 2 == 0 && b.live_count() > 0) {
      b.erase_random(rng);
    } else {
      Tick s = draw();
      if (!b.can_insert(s)) s = min_size;
      if (!b.can_insert(s)) {
        b.erase_random(rng);
        continue;
      }
      b.insert(s);
    }
  }
}

}  // namespace

Sequence make_churn(const ChurnConfig& config) {
  MEMREAL_CHECK(config.min_size >= 1);
  MEMREAL_CHECK(config.min_size <= config.max_size);
  MEMREAL_CHECK(config.target_load > 0.0 && config.target_load <= 1.0);
  SequenceBuilder b("churn", config.capacity, config.eps);
  Rng rng(config.seed);
  auto draw = [&] { return rng.next_in(config.min_size, config.max_size); };
  fill_phase(b, config.target_load, draw, config.min_size);
  churn_phase(b, config.churn_updates, rng, draw, config.min_size);
  Sequence out = b.take();
  out.name = "churn";
  return out;
}

Sequence make_simple_regime(Tick capacity, double eps,
                            std::size_t churn_updates, std::uint64_t seed,
                            double target_load) {
  const auto cap_d = static_cast<double>(capacity);
  ChurnConfig c;
  c.capacity = capacity;
  c.eps = eps;
  c.min_size = static_cast<Tick>(eps * cap_d);
  // Sizes in [eps, 2eps): stay strictly below 2eps.
  c.max_size = static_cast<Tick>(2.0 * eps * cap_d) - 1;
  c.target_load = target_load;
  c.churn_updates = churn_updates;
  c.seed = seed;
  Sequence out = make_churn(c);
  out.name = "simple-regime";
  return out;
}

Sequence make_geo_regime(const GeoRegimeConfig& config) {
  MEMREAL_CHECK(config.band_ratio > 1.0);
  MEMREAL_CHECK(config.huge_fraction >= 0.0 && config.huge_fraction <= 1.0);
  const auto cap_d = static_cast<double>(config.capacity);
  SequenceBuilder b("geo-regime", config.capacity, config.eps);
  Rng rng(config.seed);

  const double huge_lo = std::sqrt(config.eps) / 100.0;
  const double hi_frac = huge_lo / 2.0;
  const double lo_frac =
      std::max(hi_frac / config.band_ratio, std::pow(config.eps, 5.0) * 2);
  MEMREAL_CHECK_MSG(lo_frac < hi_frac, "geo regime: size band empty");
  const double band = std::log(hi_frac / lo_frac);
  auto draw_non_huge = [&]() -> Tick {
    const double s = lo_frac * std::exp(band * rng.next_double());
    return std::max<Tick>(1, static_cast<Tick>(s * cap_d));
  };
  auto draw = [&]() -> Tick {
    if (config.huge_fraction > 0.0 &&
        rng.next_double() < config.huge_fraction) {
      // Huge: log-uniform in [sqrt(eps)/100, sqrt(eps)).
      const double t = rng.next_double();
      const double s = huge_lo * std::pow(100.0, t);
      return std::max<Tick>(1, static_cast<Tick>(s * cap_d));
    }
    return draw_non_huge();
  };

  const Tick min_size = std::max<Tick>(1, static_cast<Tick>(lo_frac * cap_d));
  fill_phase(b, config.target_load, draw, min_size);
  churn_phase(b, config.churn_updates, rng, draw, min_size);
  Sequence out = b.take();
  out.name = "geo-regime";
  return out;
}

Sequence make_discrete_churn(const DiscreteChurnConfig& c) {
  MEMREAL_CHECK(c.distinct_sizes >= 1);
  MEMREAL_CHECK(c.zipf_s >= 0.0);
  const auto cap_d = static_cast<double>(c.capacity);
  Tick lo = c.min_size;
  Tick hi = c.max_size;
  if (lo == 0) lo = std::max<Tick>(1, static_cast<Tick>(c.eps * cap_d));
  if (hi == 0) hi = static_cast<Tick>(2.0 * c.eps * cap_d) - 1;
  MEMREAL_CHECK(lo <= hi);

  SequenceBuilder b("discrete-churn", c.capacity, c.eps);
  Rng rng(c.seed);
  // Fix the size palette up front (distinct values).
  std::vector<Tick> sizes;
  while (sizes.size() < c.distinct_sizes) {
    const Tick s = rng.next_in(lo, hi);
    if (std::find(sizes.begin(), sizes.end(), s) == sizes.end()) {
      sizes.push_back(s);
    }
  }
  // Zipf weights over palette ranks (s = 0 degenerates to uniform).
  std::vector<double> cum(sizes.size());
  double total = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), c.zipf_s);
    cum[i] = total;
  }
  auto draw = [&]() -> Tick {
    const double u = rng.next_double() * total;
    const auto it = std::lower_bound(cum.begin(), cum.end(), u);
    return sizes[std::min<std::size_t>(
        static_cast<std::size_t>(it - cum.begin()), sizes.size() - 1)];
  };

  // The fill/churn fallback size must come from the palette, or the
  // stream would grow an extra distinct size.
  const Tick pal_min = *std::min_element(sizes.begin(), sizes.end());
  fill_phase(b, c.target_load, draw, pal_min);
  churn_phase(b, c.churn_updates, rng, draw, pal_min);
  Sequence out = b.take();
  out.name = "discrete-churn";
  return out;
}

}  // namespace memreal
