// The delta-random-item sequences of Section 6.
//
// "The first floor(delta^-1/4) updates are inserts of items with sizes
// chosen randomly from [delta, 2delta].  Then, the sequence alternates
// between a deletion of a random item and an insertion of an item with size
// chosen randomly from [delta, 2delta]."
#pragma once

#include <cstdint>

#include "workload/sequence.h"

namespace memreal {

struct RandomItemConfig {
  Tick capacity = kDefaultCapacity;
  double eps = 1.0 / 256;
  double delta = 0.0;  ///< 0 means delta = eps^{3/4} (a poly(eps) default)
  std::size_t churn_pairs = 5'000;  ///< delete+insert pairs after the fill
  std::uint64_t seed = 1;
};

/// Number of items the sequence keeps live: floor(delta^-1 / 4).
[[nodiscard]] std::size_t random_item_count(double delta);

[[nodiscard]] Sequence make_random_item_sequence(const RandomItemConfig& c);

}  // namespace memreal
