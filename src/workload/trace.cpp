#include "workload/trace.h"

#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "util/check.h"

namespace memreal {

void write_trace(const Sequence& seq, std::ostream& os) {
  os << "# memreal trace: " << seq.name << "\n";
  // max_digits10 keeps eps byte-exact across a write/read round-trip.
  os << "H " << seq.capacity << ' '
     << std::setprecision(std::numeric_limits<double>::max_digits10)
     << seq.eps << ' ' << seq.name << "\n";
  for (const Update& u : seq.updates) {
    os << (u.is_insert() ? 'I' : 'D') << ' ' << u.id << ' ' << u.size << "\n";
  }
}

namespace {

/// Rejects any non-whitespace left on the line after the parsed fields.
void check_line_consumed(std::istringstream& ls, const std::string& line,
                         std::size_t lineno) {
  ls >> std::ws;
  MEMREAL_CHECK_MSG(ls.eof(),
                    "trailing garbage on trace line " << lineno << ": "
                                                      << line);
}

}  // namespace

Sequence read_trace(std::istream& is) {
  Sequence seq;
  bool have_header = false;
  std::unordered_map<ItemId, Tick> live;
  Tick mass = 0;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    char tag = 0;
    ls >> tag;
    if (tag == 'H') {
      MEMREAL_CHECK_MSG(!have_header,
                        "duplicate trace header at line " << lineno);
      ls >> seq.capacity >> seq.eps;
      MEMREAL_CHECK_MSG(static_cast<bool>(ls),
                        "malformed trace header at line " << lineno << ": "
                                                          << line);
      // The name is the rest of the line (it may contain spaces — exactly
      // what write_trace emits), minus the separating whitespace.
      ls >> std::ws;
      std::getline(ls, seq.name);
      MEMREAL_CHECK_MSG(!seq.name.empty(),
                        "trace header missing sequence name at line "
                            << lineno);
      MEMREAL_CHECK_MSG(seq.capacity > 0,
                        "trace header has zero capacity at line " << lineno);
      MEMREAL_CHECK_MSG(seq.eps > 0.0 && seq.eps < 1.0,
                        "trace header eps outside (0, 1) at line " << lineno);
      seq.eps_ticks =
          static_cast<Tick>(seq.eps * static_cast<double>(seq.capacity));
      // Downstream consumers (Memory, SequenceBuilder) reject eps_ticks ==
      // 0; fail here with the line instead of deep inside a replay.
      MEMREAL_CHECK_MSG(seq.eps_ticks > 0,
                        "trace header eps truncates to zero ticks at line "
                            << lineno);
      have_header = true;
    } else if (tag == 'I' || tag == 'D') {
      MEMREAL_CHECK_MSG(have_header,
                        "trace line " << lineno << " before header");
      ItemId id = 0;
      Tick size = 0;
      ls >> id >> size;
      MEMREAL_CHECK_MSG(static_cast<bool>(ls), "malformed trace line "
                                                   << lineno << ": " << line);
      check_line_consumed(ls, line, lineno);
      MEMREAL_CHECK_MSG(size > 0,
                        "zero-size item " << id << " at line " << lineno);
      if (tag == 'I') {
        MEMREAL_CHECK_MSG(live.emplace(id, size).second,
                          "duplicate live id " << id << " at line " << lineno);
        // Overflow-safe form of mass + size + eps_ticks <= capacity (a
        // corrupt trace may carry sizes near 2^64).
        MEMREAL_CHECK_MSG(
            size <= seq.capacity - seq.eps_ticks - mass,
            "insert of id " << id << " at line " << lineno
                            << " breaks the load-factor promise");
        mass += size;
        seq.updates.push_back(Update::insert(id, size));
      } else {
        const auto it = live.find(id);
        MEMREAL_CHECK_MSG(it != live.end(), "delete of absent id "
                                                << id << " at line " << lineno);
        MEMREAL_CHECK_MSG(it->second == size,
                          "delete size mismatch for id "
                              << id << " at line " << lineno << " (live "
                              << it->second << ", trace " << size << ")");
        mass -= it->second;
        live.erase(it);
        seq.updates.push_back(Update::erase(id, size));
      }
    } else {
      MEMREAL_CHECK_MSG(false, "unknown trace tag '" << tag << "' at line "
                                                     << lineno);
    }
  }
  MEMREAL_CHECK_MSG(have_header, "trace without header");
  return seq;
}

std::string trace_to_string(const Sequence& seq) {
  std::ostringstream os;
  write_trace(seq, os);
  return os.str();
}

Sequence trace_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_trace(is);
}

}  // namespace memreal
