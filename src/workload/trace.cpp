#include "workload/trace.h"

#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "util/check.h"

namespace memreal {

void write_trace(const Sequence& seq, std::ostream& os) {
  os << "# memreal trace: " << seq.name << "\n";
  os << "V 2\n";
  // max_digits10 keeps eps byte-exact across a write/read round-trip.
  os << "H " << seq.capacity << ' '
     << std::setprecision(std::numeric_limits<double>::max_digits10)
     << seq.eps << ' ' << seq.name << "\n";
  if (seq.bytes_per_tick > 0) {
    os << "B " << seq.bytes_per_tick << "\n";
  }
  for (const Update& u : seq.updates) {
    os << (u.is_insert() ? 'I' : 'D') << ' ' << u.id << ' ' << u.size;
    if (u.size_bytes > 0) os << ' ' << u.size_bytes;
    os << "\n";
  }
}

namespace {

/// Rejects any non-whitespace left on the line after the parsed fields.
void check_line_consumed(std::istringstream& ls, const std::string& line,
                         std::size_t lineno) {
  ls >> std::ws;
  MEMREAL_CHECK_MSG(ls.eof(),
                    "trailing garbage on trace line " << lineno << ": "
                                                      << line);
}

/// Optional trailing byte-size field; 0 when absent.
Tick read_optional_bytes(std::istringstream& ls) {
  Tick bytes = 0;
  if (!(ls >> bytes)) {
    ls.clear();
    return 0;
  }
  return bytes;
}

struct TraceReader {
  Sequence seq;
  int version = 0;  ///< 0 until V is seen or v1 is inferred from H
  bool have_header = false;
  std::unordered_map<ItemId, std::pair<Tick, Tick>> live;  ///< id -> (size, bytes)
  Tick mass = 0;

  /// Byte-mode constructs require an explicit `V 2`.
  void require_v2(const char* what, std::size_t lineno) const {
    MEMREAL_CHECK_MSG(version >= 2, what << " on trace line " << lineno
                                         << " requires version 2 (trace is "
                                            "version "
                                         << version << ")");
  }

  void check_bytes(ItemId id, Tick size, Tick bytes,
                   std::size_t lineno) const {
    if (bytes == 0) return;
    require_v2("byte-size field", lineno);
    MEMREAL_CHECK_MSG(seq.bytes_per_tick > 0,
                      "byte-size field on trace line "
                          << lineno
                          << " before a B bytes_per_tick line (version "
                          << version << ")");
    const Tick ticks =
        (bytes + seq.bytes_per_tick - 1) / seq.bytes_per_tick;
    MEMREAL_CHECK_MSG(ticks == size, "byte size "
                                         << bytes << " of id " << id
                                         << " at line " << lineno
                                         << " rounds to " << ticks
                                         << " ticks, not " << size);
  }

  void apply_insert(ItemId id, Tick size, Tick bytes, std::size_t lineno) {
    MEMREAL_CHECK_MSG(size > 0,
                      "zero-size item " << id << " at line " << lineno);
    check_bytes(id, size, bytes, lineno);
    MEMREAL_CHECK_MSG(live.emplace(id, std::make_pair(size, bytes)).second,
                      "duplicate live id " << id << " at line " << lineno);
    // Overflow-safe form of mass + size + eps_ticks <= capacity (a
    // corrupt trace may carry sizes near 2^64).
    MEMREAL_CHECK_MSG(size <= seq.capacity - seq.eps_ticks - mass,
                      "insert of id " << id << " at line " << lineno
                                      << " breaks the load-factor promise");
    mass += size;
    seq.updates.push_back(Update::insert(id, size, bytes));
  }

  void apply_delete(ItemId id, Tick size, Tick bytes, std::size_t lineno) {
    MEMREAL_CHECK_MSG(size > 0,
                      "zero-size item " << id << " at line " << lineno);
    check_bytes(id, size, bytes, lineno);
    const auto it = live.find(id);
    MEMREAL_CHECK_MSG(it != live.end(),
                      "delete of absent id " << id << " at line " << lineno);
    MEMREAL_CHECK_MSG(it->second.first == size,
                      "delete size mismatch for id "
                          << id << " at line " << lineno << " (live "
                          << it->second.first << ", trace " << size << ")");
    MEMREAL_CHECK_MSG(it->second.second == bytes,
                      "delete byte-size mismatch for id "
                          << id << " at line " << lineno << " (live "
                          << it->second.second << ", trace " << bytes
                          << ")");
    mass -= it->second.first;
    live.erase(it);
    seq.updates.push_back(Update::erase(id, size, bytes));
  }
};

}  // namespace

Sequence read_trace(std::istream& is) {
  TraceReader r;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    char tag = 0;
    ls >> tag;
    if (tag == 'V') {
      MEMREAL_CHECK_MSG(r.version == 0 && !r.have_header,
                        "V line at line " << lineno
                                          << " must be the first directive "
                                             "(before the header)");
      int v = 0;
      ls >> v;
      MEMREAL_CHECK_MSG(static_cast<bool>(ls),
                        "malformed V line at line " << lineno << ": "
                                                    << line);
      check_line_consumed(ls, line, lineno);
      MEMREAL_CHECK_MSG(v == 1 || v == 2, "unsupported trace version "
                                              << v << " at line " << lineno
                                              << " (this reader handles "
                                                 "1 and 2)");
      r.version = v;
    } else if (tag == 'H') {
      MEMREAL_CHECK_MSG(!r.have_header,
                        "duplicate trace header at line " << lineno);
      // A trace that opens with H (no V line) is the pre-versioning
      // format, read as version 1.
      if (r.version == 0) r.version = 1;
      ls >> r.seq.capacity >> r.seq.eps;
      MEMREAL_CHECK_MSG(static_cast<bool>(ls),
                        "malformed trace header at line " << lineno << ": "
                                                          << line);
      // The name is the rest of the line (it may contain spaces — exactly
      // what write_trace emits), minus the separating whitespace.
      ls >> std::ws;
      std::getline(ls, r.seq.name);
      MEMREAL_CHECK_MSG(!r.seq.name.empty(),
                        "trace header missing sequence name at line "
                            << lineno);
      MEMREAL_CHECK_MSG(r.seq.capacity > 0,
                        "trace header has zero capacity at line " << lineno);
      MEMREAL_CHECK_MSG(r.seq.eps > 0.0 && r.seq.eps < 1.0,
                        "trace header eps outside (0, 1) at line " << lineno);
      r.seq.eps_ticks = static_cast<Tick>(
          r.seq.eps * static_cast<double>(r.seq.capacity));
      // Downstream consumers (Memory, SequenceBuilder) reject eps_ticks ==
      // 0; fail here with the line instead of deep inside a replay.
      MEMREAL_CHECK_MSG(r.seq.eps_ticks > 0,
                        "trace header eps truncates to zero ticks at line "
                            << lineno);
      r.have_header = true;
    } else if (tag == 'B') {
      MEMREAL_CHECK_MSG(r.have_header,
                        "trace line " << lineno << " before header");
      r.require_v2("B line", lineno);
      MEMREAL_CHECK_MSG(r.seq.bytes_per_tick == 0,
                        "duplicate B line at line " << lineno);
      MEMREAL_CHECK_MSG(r.seq.updates.empty(),
                        "B line at line " << lineno
                                          << " must precede all updates");
      ls >> r.seq.bytes_per_tick;
      MEMREAL_CHECK_MSG(static_cast<bool>(ls) && r.seq.bytes_per_tick > 0,
                        "malformed B line at line " << lineno << ": "
                                                    << line);
      check_line_consumed(ls, line, lineno);
    } else if (tag == 'I' || tag == 'D') {
      MEMREAL_CHECK_MSG(r.have_header,
                        "trace line " << lineno << " before header");
      ItemId id = 0;
      Tick size = 0;
      ls >> id >> size;
      MEMREAL_CHECK_MSG(static_cast<bool>(ls), "malformed trace line "
                                                   << lineno << ": " << line);
      const Tick bytes = read_optional_bytes(ls);
      check_line_consumed(ls, line, lineno);
      if (tag == 'I') {
        r.apply_insert(id, size, bytes, lineno);
      } else {
        r.apply_delete(id, size, bytes, lineno);
      }
    } else if (tag == 'R') {
      MEMREAL_CHECK_MSG(r.have_header,
                        "trace line " << lineno << " before header");
      r.require_v2("R (reallocate) line", lineno);
      ItemId old_id = 0;
      ItemId new_id = 0;
      Tick new_size = 0;
      ls >> old_id >> new_id >> new_size;
      MEMREAL_CHECK_MSG(static_cast<bool>(ls), "malformed trace line "
                                                   << lineno << ": " << line);
      const Tick new_bytes = read_optional_bytes(ls);
      check_line_consumed(ls, line, lineno);
      const auto it = r.live.find(old_id);
      MEMREAL_CHECK_MSG(it != r.live.end(), "reallocate of absent id "
                                                << old_id << " at line "
                                                << lineno);
      const auto [old_size, old_bytes] = it->second;
      r.apply_delete(old_id, old_size, old_bytes, lineno);
      r.apply_insert(new_id, new_size, new_bytes, lineno);
    } else {
      MEMREAL_CHECK_MSG(false, "unknown trace tag '" << tag << "' at line "
                                                     << lineno);
    }
  }
  MEMREAL_CHECK_MSG(r.have_header, "trace without header");
  return std::move(r.seq);
}

std::string trace_to_string(const Sequence& seq) {
  std::ostringstream os;
  write_trace(seq, os);
  return os.str();
}

Sequence trace_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_trace(is);
}

}  // namespace memreal
