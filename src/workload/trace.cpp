#include "workload/trace.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace memreal {

void write_trace(const Sequence& seq, std::ostream& os) {
  os << "# memreal trace: " << seq.name << "\n";
  os << "H " << seq.capacity << ' ' << seq.eps << ' ' << seq.name << "\n";
  for (const Update& u : seq.updates) {
    os << (u.is_insert() ? 'I' : 'D') << ' ' << u.id << ' ' << u.size << "\n";
  }
}

Sequence read_trace(std::istream& is) {
  Sequence seq;
  bool have_header = false;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    char tag = 0;
    ls >> tag;
    if (tag == 'H') {
      ls >> seq.capacity >> seq.eps >> seq.name;
      MEMREAL_CHECK_MSG(static_cast<bool>(ls), "malformed trace header");
      seq.eps_ticks =
          static_cast<Tick>(seq.eps * static_cast<double>(seq.capacity));
      have_header = true;
    } else if (tag == 'I' || tag == 'D') {
      MEMREAL_CHECK_MSG(have_header, "trace line before header");
      ItemId id = 0;
      Tick size = 0;
      ls >> id >> size;
      MEMREAL_CHECK_MSG(static_cast<bool>(ls),
                        "malformed trace line: " << line);
      seq.updates.push_back(tag == 'I' ? Update::insert(id, size)
                                       : Update::erase(id, size));
    } else {
      MEMREAL_CHECK_MSG(false, "unknown trace tag '" << tag << "'");
    }
  }
  MEMREAL_CHECK_MSG(have_header, "trace without header");
  return seq;
}

std::string trace_to_string(const Sequence& seq) {
  std::ostringstream os;
  write_trace(seq, os);
  return os.str();
}

Sequence trace_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_trace(is);
}

}  // namespace memreal
