#include "workload/storage.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace memreal {

Sequence make_db_page_churn(const DbPageChurnConfig& c) {
  const auto cap_d = static_cast<double>(c.capacity);
  Tick min_page = c.min_page;
  Tick max_page = c.max_page;
  if (min_page == 0) {
    min_page = std::max<Tick>(1, static_cast<Tick>(c.eps * cap_d / 4.0));
  }
  if (max_page == 0) max_page = static_cast<Tick>(2.0 * c.eps * cap_d) - 1;
  MEMREAL_CHECK(min_page >= 1 && min_page <= max_page);

  // The page-size ladder: doubling rungs inside the band.
  std::vector<Tick> ladder;
  for (Tick s = min_page; s <= max_page; s *= 2) {
    ladder.push_back(s);
    if (s > max_page / 2) break;
  }
  MEMREAL_CHECK_MSG(ladder.size() >= 3,
                    "db_page_churn needs a size band spanning at least two "
                    "doublings (max/min >= 4); got ["
                        << min_page << ", " << max_page << "]");

  SequenceBuilder b("db_page_churn", c.capacity, c.eps);
  Rng rng(c.seed);
  // File sizes skew small (min of two uniform rung draws), the usual
  // storage distribution.
  auto draw_rung = [&]() -> std::size_t {
    const std::size_t a = rng.next_below(ladder.size());
    const std::size_t d = rng.next_below(ladder.size());
    return std::min(a, d);
  };
  auto rung_of = [&](Tick size) -> std::size_t {
    for (std::size_t r = 0; r < ladder.size(); ++r) {
      if (ladder[r] == size) return r;
    }
    MEMREAL_CHECK_MSG(false, "size " << size << " off the page ladder");
  };

  const auto target =
      static_cast<Tick>(c.target_load * static_cast<double>(b.budget()));
  while (true) {
    const Tick s = ladder[draw_rung()];
    if (b.live_mass() + s > target) break;
    b.insert(s);
  }
  MEMREAL_CHECK_MSG(b.live_count() >= 2, "page sizes too large for load");

  const std::size_t limit = b.update_count() + c.churn_updates;
  while (b.update_count() < limit) {
    if (rng.next_double() < c.resize_prob && b.live_count() > 0) {
      // Cost-oblivious resize: move the file one rung, whatever it costs
      // the allocator.
      const auto k = static_cast<std::size_t>(rng.next_below(b.live_count()));
      const Tick s = b.size_at(k);
      const std::size_t r = rung_of(s);
      bool grow = rng.next_double() < c.grow_bias;
      if (grow && r + 1 >= ladder.size()) grow = false;
      if (!grow && r == 0) grow = r + 1 < ladder.size();
      const Tick ns = grow ? ladder[r + 1] : (r > 0 ? ladder[r - 1] : s);
      b.erase_at(k);
      // A grow that no longer fits the budget lands back at the old size
      // (the resize failed, the file stays) — still two updates.
      b.insert(b.can_insert(ns) ? ns : s);
      continue;
    }
    const Tick s = ladder[draw_rung()];
    if (b.live_mass() + s <= target && b.can_insert(s)) {
      b.insert(s);
    } else if (b.live_count() > 0) {
      b.erase_random(rng);
    } else {
      b.insert(ladder[0]);
    }
  }
  Sequence out = b.take();
  out.name = "db_page_churn";
  return out;
}

Sequence make_defrag_burst(const DefragBurstConfig& c) {
  const auto cap_d = static_cast<double>(c.capacity);
  Tick lo = c.min_size;
  Tick hi = c.max_size;
  if (lo == 0) lo = std::max<Tick>(1, static_cast<Tick>(c.eps * cap_d));
  if (hi == 0) hi = static_cast<Tick>(2.0 * c.eps * cap_d) - 1;
  MEMREAL_CHECK(lo >= 1 && lo <= hi);

  SequenceBuilder b("defrag_burst", c.capacity, c.eps);
  Rng rng(c.seed);
  std::vector<Tick> palette;
  for (std::size_t i = 0; i < c.palette; ++i) {
    palette.push_back(rng.next_in(lo, hi));
  }
  auto draw = [&]() -> Tick {
    if (palette.empty()) return rng.next_in(lo, hi);
    return palette[rng.next_below(palette.size())];
  };
  // The refill size is the band (or palette) maximum: after a scatter-free
  // wave no single hole can host it, so placing it forces compaction.
  const Tick big =
      palette.empty() ? hi : *std::max_element(palette.begin(), palette.end());

  const auto high =
      static_cast<Tick>(c.high_load * static_cast<double>(b.budget()));
  while (true) {
    const Tick s = draw();
    if (b.live_mass() + s > high) break;
    b.insert(s);
  }
  MEMREAL_CHECK_MSG(b.live_count() >= 2, "sizes too large for high_load");

  const std::size_t limit = b.update_count() + c.churn_updates;
  for (std::size_t wave = 0;
       wave < c.max_waves && b.update_count() < limit; ++wave) {
    // Scatter-free every other live item: maximal fragmentation for the
    // freed mass.  (Back-to-front keeps erase_at indices stable.)
    for (std::size_t i = b.live_count(); i >= 2; i -= 2) {
      b.erase_at(i - 2);
      if (b.update_count() >= limit) break;
    }
    // Compaction burst: refill the freed mass with hole-defeating items.
    while (b.update_count() < limit && b.can_insert(big) &&
           b.live_mass() + big <= high) {
      b.insert(big);
    }
  }
  Sequence out = b.take();
  out.name = "defrag_burst";
  return out;
}

}  // namespace memreal
