#include "workload/sequence.h"

#include <unordered_map>

#include "util/check.h"

namespace memreal {

void Sequence::check_well_formed() const {
  MEMREAL_CHECK(capacity > 0);
  MEMREAL_CHECK(eps_ticks < capacity);
  struct LiveItem {
    Tick size;
    Tick bytes;
  };
  std::unordered_map<ItemId, LiveItem> live;
  Tick mass = 0;
  for (const Update& u : updates) {
    MEMREAL_CHECK(u.size > 0);
    if (u.size_bytes > 0) {
      MEMREAL_CHECK_MSG(bytes_per_tick > 0,
                        "update of id " << u.id
                                        << " carries a byte size but the "
                                           "sequence has no bytes_per_tick");
      const Tick ticks =
          (u.size_bytes + bytes_per_tick - 1) / bytes_per_tick;
      MEMREAL_CHECK_MSG(ticks == u.size,
                        "byte size " << u.size_bytes << " of id " << u.id
                                     << " rounds to " << ticks
                                     << " ticks, not its tick size "
                                     << u.size);
    }
    if (u.is_insert()) {
      MEMREAL_CHECK_MSG(
          live.emplace(u.id, LiveItem{u.size, u.size_bytes}).second,
          "duplicate live id " << u.id);
      mass += u.size;
      MEMREAL_CHECK_MSG(mass + eps_ticks <= capacity,
                        "sequence violates load-factor promise at id "
                            << u.id);
    } else {
      auto it = live.find(u.id);
      MEMREAL_CHECK_MSG(it != live.end(), "delete of absent id " << u.id);
      MEMREAL_CHECK_MSG(it->second.size == u.size, "delete size mismatch");
      MEMREAL_CHECK_MSG(it->second.bytes == u.size_bytes,
                        "delete byte-size mismatch for id " << u.id);
      mass -= it->second.size;
      live.erase(it);
    }
  }
}

SequenceBuilder::SequenceBuilder(std::string name, Tick capacity, double eps,
                                 Tick bytes_per_tick)
    : capacity_(capacity), bytes_per_tick_(bytes_per_tick) {
  MEMREAL_CHECK(eps > 0.0 && eps < 1.0);
  eps_ticks_ = static_cast<Tick>(eps * static_cast<double>(capacity));
  MEMREAL_CHECK(eps_ticks_ > 0);
  seq_.name = std::move(name);
  seq_.capacity = capacity;
  seq_.eps = eps;
  seq_.eps_ticks = eps_ticks_;
  seq_.bytes_per_tick = bytes_per_tick;
}

ItemId SequenceBuilder::insert(Tick size) {
  MEMREAL_CHECK(size > 0);
  MEMREAL_CHECK_MSG(can_insert(size),
                    "insert of " << size << " would break the promise");
  const ItemId id = next_id_++;
  live_.push_back(Live{id, size, 0});
  live_mass_ += size;
  seq_.updates.push_back(Update::insert(id, size));
  return id;
}

Tick SequenceBuilder::ticks_for_bytes(Tick size_bytes) const {
  MEMREAL_CHECK_MSG(bytes_per_tick_ > 0,
                    "builder has no bytes_per_tick (tick-native sequence)");
  if (size_bytes == 0) return 1;
  return (size_bytes + bytes_per_tick_ - 1) / bytes_per_tick_;
}

ItemId SequenceBuilder::insert_bytes(Tick size_bytes) {
  MEMREAL_CHECK(size_bytes > 0);
  const Tick size = ticks_for_bytes(size_bytes);
  MEMREAL_CHECK_MSG(can_insert(size),
                    "insert of " << size << " would break the promise");
  const ItemId id = next_id_++;
  live_.push_back(Live{id, size, size_bytes});
  live_mass_ += size;
  seq_.updates.push_back(Update::insert(id, size, size_bytes));
  return id;
}

void SequenceBuilder::erase_at(std::size_t index) {
  MEMREAL_CHECK(index < live_.size());
  const Live victim = live_[index];
  live_[index] = live_.back();
  live_.pop_back();
  live_mass_ -= victim.size;
  seq_.updates.push_back(Update::erase(victim.id, victim.size, victim.bytes));
}

void SequenceBuilder::erase_random(Rng& rng) {
  MEMREAL_CHECK(!live_.empty());
  erase_at(static_cast<std::size_t>(rng.next_below(live_.size())));
}

void SequenceBuilder::erase_id(ItemId id) {
  for (std::size_t i = 0; i < live_.size(); ++i) {
    if (live_[i].id == id) {
      erase_at(i);
      return;
    }
  }
  MEMREAL_CHECK_MSG(false, "erase_id: id " << id << " not live");
}

Sequence SequenceBuilder::take() {
  Sequence out = std::move(seq_);
  seq_ = Sequence{};
  live_.clear();
  live_mass_ = 0;
  return out;
}

Sequence repair_sequence(const Sequence& base, std::vector<Update> updates) {
  MEMREAL_CHECK(base.capacity > 0);
  MEMREAL_CHECK(base.eps_ticks < base.capacity);
  Sequence out;
  out.name = base.name;
  out.capacity = base.capacity;
  out.eps = base.eps;
  out.eps_ticks = base.eps_ticks;
  out.bytes_per_tick = base.bytes_per_tick;
  out.updates.reserve(updates.size());
  const Tick budget = base.capacity - base.eps_ticks;
  struct LiveItem {
    Tick size;
    Tick bytes;
  };
  std::unordered_map<ItemId, LiveItem> live;
  Tick mass = 0;
  for (Update& u : updates) {
    if (u.is_insert()) {
      if (u.size == 0 || u.size > budget - mass) continue;
      // A byte size that no longer rounds to the (possibly edited) tick
      // size is dropped — the insert becomes tick-native.
      if (u.size_bytes > 0 &&
          (base.bytes_per_tick == 0 ||
           (u.size_bytes + base.bytes_per_tick - 1) / base.bytes_per_tick !=
               u.size)) {
        u.size_bytes = 0;
      }
      if (!live.emplace(u.id, LiveItem{u.size, u.size_bytes}).second) {
        continue;
      }
      mass += u.size;
      out.updates.push_back(u);
    } else {
      const auto it = live.find(u.id);
      if (it == live.end()) continue;
      u.size = it->second.size;  // rewrite stale delete sizes
      u.size_bytes = it->second.bytes;
      mass -= it->second.size;
      live.erase(it);
      out.updates.push_back(u);
    }
  }
  return out;
}

Sequence subsequence(const Sequence& base, const std::vector<bool>& keep) {
  MEMREAL_CHECK(keep.size() == base.size());
  std::vector<Update> kept;
  kept.reserve(base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    if (keep[i]) kept.push_back(base.updates[i]);
  }
  return repair_sequence(base, std::move(kept));
}

Sequence with_sizes(const Sequence& base,
                    const std::unordered_map<ItemId, Tick>& new_sizes) {
  std::vector<Update> resized = base.updates;
  for (Update& u : resized) {
    const auto it = new_sizes.find(u.id);
    if (it == new_sizes.end()) continue;
    MEMREAL_CHECK_MSG(it->second > 0, "with_sizes: size must be positive");
    u.size = it->second;
    u.size_bytes = 0;  // resized items become tick-native
  }
  return repair_sequence(base, std::move(resized));
}

}  // namespace memreal
