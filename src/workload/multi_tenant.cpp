#include "workload/multi_tenant.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.h"

namespace memreal {

Sequence make_multi_tenant(const MultiTenantConfig& config) {
  MEMREAL_CHECK(config.tenants >= 1);
  MEMREAL_CHECK(config.zipf_s >= 0.0);
  MEMREAL_CHECK(config.target_load > 0.0 && config.target_load <= 1.0);
  const auto cap_d = static_cast<double>(config.capacity);
  Tick lo = config.min_size;
  Tick hi = config.max_size;
  if (lo == 0) lo = std::max<Tick>(1, static_cast<Tick>(config.eps * cap_d));
  if (hi == 0) {
    hi = std::max(lo + 1, static_cast<Tick>(2.0 * config.eps * cap_d) - 1);
  }
  MEMREAL_CHECK_MSG(lo <= hi, "multi-tenant: empty size band");
  MEMREAL_CHECK_MSG(hi - lo + 1 >= config.tenants,
                    "multi-tenant: band [" << lo << ", " << hi
                                           << "] has fewer distinct sizes "
                                              "than tenants");

  // Log-partition [lo, hi] into per-tenant sub-bands [edge_t, edge_{t+1}).
  const std::size_t tenants = config.tenants;
  const double log_lo = std::log(static_cast<double>(lo));
  const double log_hi = std::log(static_cast<double>(hi) + 1.0);
  std::vector<Tick> edges(tenants + 1);
  for (std::size_t t = 0; t <= tenants; ++t) {
    const double f = static_cast<double>(t) / static_cast<double>(tenants);
    edges[t] = static_cast<Tick>(std::exp(log_lo + f * (log_hi - log_lo)));
  }
  edges.front() = lo;
  edges.back() = hi + 1;
  // Rounding can collapse narrow bands; clamp each inner edge to leave at
  // least one size below it and one per band above it (feasible because
  // the band holds >= tenants distinct sizes).
  for (std::size_t t = 1; t < tenants; ++t) {
    const Tick at_least = edges[t - 1] + 1;
    const Tick at_most = hi + 1 - static_cast<Tick>(tenants - t);
    edges[t] = std::clamp(edges[t], at_least, at_most);
  }

  // Zipf weights over tenant ranks: weight(t) ~ 1 / (t+1)^s.
  std::vector<double> cum(config.tenants);
  double total = 0.0;
  for (std::size_t t = 0; t < config.tenants; ++t) {
    total += 1.0 / std::pow(static_cast<double>(t + 1), config.zipf_s);
    cum[t] = total;
  }

  SequenceBuilder b("multi-tenant", config.capacity, config.eps);
  Rng rng(config.seed);
  auto draw_tenant = [&]() -> std::size_t {
    const double u = rng.next_double() * total;
    const auto it = std::lower_bound(cum.begin(), cum.end(), u);
    return std::min<std::size_t>(static_cast<std::size_t>(it - cum.begin()),
                                 config.tenants - 1);
  };
  auto draw = [&]() -> Tick {
    const std::size_t t = draw_tenant();
    return rng.next_tick_in(edges[t], edges[t + 1]);
  };

  // Fill toward target load, then churn (delete random / insert drawn),
  // mirroring churn.cpp's phases but with the tenant-weighted size draw.
  const auto target =
      static_cast<Tick>(config.target_load * static_cast<double>(b.budget()));
  for (;;) {
    const Tick s = draw();
    if (b.live_mass() + s > target) {
      if (b.live_mass() + lo > target || !b.can_insert(lo)) break;
      b.insert(lo);
      continue;
    }
    b.insert(s);
  }
  for (std::size_t i = 0; i < config.churn_updates; ++i) {
    if (i % 2 == 0 && b.live_count() > 0) {
      b.erase_random(rng);
    } else {
      Tick s = draw();
      if (!b.can_insert(s)) s = lo;
      if (!b.can_insert(s)) {
        b.erase_random(rng);
        continue;
      }
      b.insert(s);
    }
  }
  Sequence out = b.take();
  out.name = "multi-tenant";
  return out;
}

}  // namespace memreal
