// Storage-system workloads from the related reallocation literature:
//
//  * make_db_page_churn — Bender et al.-style *cost-oblivious* storage
//    reallocation: files/pages live on a doubling size ladder and are
//    grown or shrunk by whole rungs whenever the workload demands it,
//    regardless of what the move costs the allocator.  Needs a band
//    spanning at least two doublings (ratio >= 4).
//  * make_defrag_burst  — Fekete et al.-style compaction waves: fill to
//    high load, scatter-free alternating items so the free space is
//    maximally fragmented, then refill with band-maximal items no single
//    hole can host, forcing the allocator to compact.
//
// Both are offline, well-formed Sequences like every other generator, and
// both are registered in the scenario zoo (src/perfadv/zoo.h) so the
// drivers and the adversarial search can request them by name.
#pragma once

#include <cstdint>

#include "workload/sequence.h"

namespace memreal {

struct DbPageChurnConfig {
  Tick capacity = kDefaultCapacity;
  double eps = 1.0 / 64;
  /// Page-size ladder: doubling rungs min_page, 2*min_page, ... while
  /// <= max_page.  0 = eps/4 and 2*eps of capacity respectively.
  Tick min_page = 0;
  Tick max_page = 0;
  double target_load = 0.8;
  /// Per churn step: probability the step resizes a live file by one rung
  /// (cost-obliviously) instead of creating/dropping one.
  double resize_prob = 0.6;
  double grow_bias = 0.5;  ///< P(grow | resize); shrink otherwise
  std::size_t churn_updates = 2'000;  ///< updates after the fill phase
  std::uint64_t seed = 1;
};

[[nodiscard]] Sequence make_db_page_churn(const DbPageChurnConfig& c);

struct DefragBurstConfig {
  Tick capacity = kDefaultCapacity;
  double eps = 1.0 / 64;
  Tick min_size = 0;  ///< inclusive; 0 = eps of capacity
  Tick max_size = 0;  ///< inclusive; 0 = 2*eps of capacity - 1
  /// 0 = sample the band freely; > 0 = draw this many distinct sizes once
  /// and reuse them (DISCRETE-compatible streams).
  std::size_t palette = 0;
  double high_load = 0.85;
  /// Ceiling on compaction waves; generation also stops once
  /// churn_updates post-fill updates were emitted, whichever comes first.
  std::size_t max_waves = 64;
  std::size_t churn_updates = 2'000;
  std::uint64_t seed = 1;
};

[[nodiscard]] Sequence make_defrag_burst(const DefragBurstConfig& c);

}  // namespace memreal
