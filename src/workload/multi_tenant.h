// Multi-tenant workloads for the sharded engine.
//
// T tenants share one address space.  Each tenant owns a sub-band of the
// global size range (log-partitioned, so tenants look like distinct size
// classes), and insert traffic picks the tenant Zipf-weighted — tenant 1
// is the hot tenant.  With zipf_s = 0 every tenant is equally active and
// the stream degenerates to banded uniform churn; at zipf_s ~ 1 the head
// tenant dominates, which is the workload that skews a size-class-routed
// shard layout and exercises the fallback/rebalance paths.
//
// Like every generator, the output is an offline, well-formed Sequence —
// the sharded engine consumes it like any single-cell workload.
#pragma once

#include <cstdint>

#include "workload/sequence.h"

namespace memreal {

struct MultiTenantConfig {
  /// Global capacity: for an S-shard run pass S * shard_capacity, with
  /// the size band expressed in fractions of *shard* capacity.
  Tick capacity = kDefaultCapacity;
  double eps = 1.0 / 64;
  std::size_t tenants = 4;
  /// Zipf exponent over tenant activity (0 = uniform).
  double zipf_s = 1.0;
  /// Global size band, log-partitioned across tenants.
  /// 0 = [eps, 2 eps) of capacity, matching plain churn defaults.
  Tick min_size = 0;
  Tick max_size = 0;
  double target_load = 0.8;  ///< fill level as a fraction of the budget
  std::size_t churn_updates = 10'000;
  std::uint64_t seed = 1;
};

[[nodiscard]] Sequence make_multi_tenant(const MultiTenantConfig& config);

}  // namespace memreal
