// Churn workloads: fill memory toward a target load, then alternate random
// deletes with random-size inserts.  These are the steady-state regimes the
// theorems are stated for:
//
//   * make_churn with band [eps, 2eps)        — Theorem 3.1's regime
//   * make_churn with band [eps^a, eps^b]     — Theorem 4.1's regime
//   * make_churn with band (0, eps^4)         — tiny items for FLEXHASH
#pragma once

#include <cstdint>

#include "workload/sequence.h"

namespace memreal {

struct ChurnConfig {
  Tick capacity = kDefaultCapacity;
  double eps = 1.0 / 64;
  Tick min_size = 0;  ///< inclusive; must be >= 1
  Tick max_size = 0;  ///< inclusive
  /// Fill until live mass reaches this fraction of the budget
  /// (capacity - eps); churn keeps the load near this level.
  double target_load = 0.9;
  std::size_t churn_updates = 10'000;  ///< updates after the fill phase
  std::uint64_t seed = 1;
};

/// Uniform sizes in [min_size, max_size].
[[nodiscard]] Sequence make_churn(const ChurnConfig& config);

/// Convenience: Theorem 3.1's regime — sizes uniform in [eps, 2eps) of
/// capacity, load driven to `target_load`.
[[nodiscard]] Sequence make_simple_regime(Tick capacity, double eps,
                                          std::size_t churn_updates,
                                          std::uint64_t seed,
                                          double target_load = 0.9);

/// Theorem 4.1's regime — non-huge sizes log-uniform over a geometric band
/// just below GEO's huge threshold sqrt(eps)/100 (log-uniform exercises the
/// geometric size classes evenly), optionally mixed with a stream of
/// "huge" items in [sqrt(eps)/100, sqrt(eps)).
struct GeoRegimeConfig {
  Tick capacity = kDefaultCapacity;
  double eps = 1.0 / 64;
  /// Non-huge sizes are log-uniform in [hi/band_ratio, hi] where
  /// hi = sqrt(eps)/200.  Larger ratios mean more, smaller items.
  double band_ratio = 256.0;
  double huge_fraction = 0.0;  ///< fraction of inserts that are huge
  double target_load = 0.85;
  std::size_t churn_updates = 10'000;
  std::uint64_t seed = 1;
};

[[nodiscard]] Sequence make_geo_regime(const GeoRegimeConfig& config);

/// Churn over a *fixed set* of k distinct sizes (the "structured sizes"
/// regime of the paper's conclusion, served by the DISCRETE allocator).
/// Sizes are drawn from [min_size, max_size] once, then items are sampled
/// from them — uniformly, or Zipf-weighted with parameter `zipf_s` (0 =
/// uniform), modelling real allocators' heavily skewed size-class usage.
struct DiscreteChurnConfig {
  Tick capacity = kDefaultCapacity;
  double eps = 1.0 / 64;
  std::size_t distinct_sizes = 8;
  Tick min_size = 0;  ///< 0 = eps of capacity
  Tick max_size = 0;  ///< 0 = 2*eps of capacity - 1
  double zipf_s = 0.0;
  double target_load = 0.9;
  std::size_t churn_updates = 10'000;
  std::uint64_t seed = 1;
};

[[nodiscard]] Sequence make_discrete_churn(const DiscreteChurnConfig& c);

}  // namespace memreal
