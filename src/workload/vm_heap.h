// VM/GC-heap workload: the byte-space scenario family the arena layer
// exists for (zym_core/MochiVM-style managed heaps).
//
// Three mechanisms drive the stream, all expressed as well-formed
// insert/delete updates carrying real byte sizes:
//
//   * grow-realloc chains — a live object is reallocated to
//     ceil(growth_factor * bytes): delete + insert of a fresh id, the
//     update-stream shape of realloc(ptr, old, new) (vector doubling,
//     string append, growing hash tables)
//   * generational death  — steady-state frees prefer the youngest
//     objects (weight young_death_bias), the classic infant-mortality
//     skew of managed heaps
//   * compaction bursts   — every gc_period churn steps, a sweep frees
//     gc_death_fraction of the heap and the freed mass is re-filled with
//     fresh allocations: the allocator sees the dense delete/insert wave
//     a moving collector produces
//
// Sizes are log-uniform over [min_bytes, max_bytes] (heaps are dominated
// by small objects but carry a long tail), optionally quantized to a
// fixed palette of distinct_sizes values so the stream stays admissible
// for structured-size allocators (DISCRETE).
#pragma once

#include <cstdint>

#include "workload/sequence.h"

namespace memreal {

struct VmHeapConfig {
  Tick capacity = Tick{1} << 22;  ///< ticks
  double eps = 1.0 / 64;
  Tick bytes_per_tick = 8;  ///< granule; byte sizes round up to ticks
  Tick min_bytes = 16;      ///< object payload band, inclusive
  Tick max_bytes = 4096;
  /// 0 = sample the band freely; > 0 = draw this many distinct sizes
  /// once and sample only those (DISCRETE-compatible streams).
  std::size_t distinct_sizes = 0;
  /// Fill until live mass reaches this fraction of the budget
  /// (capacity - eps); churn keeps the load near this level.
  double target_load = 0.85;
  /// Per churn step: probability the step is a grow-realloc of a live
  /// object instead of a death + fresh allocation.
  double grow_prob = 0.35;
  double growth_factor = 1.618;
  /// Death skew: the youngest live object is this many times more likely
  /// to die than the oldest (1.0 = uniform).
  double young_death_bias = 4.0;
  /// Churn steps between compaction bursts; 0 disables bursts.
  std::size_t gc_period = 512;
  double gc_death_fraction = 0.3;  ///< heap fraction freed per burst
  std::size_t churn_updates = 10'000;  ///< updates after the fill phase
  std::uint64_t seed = 1;
};

[[nodiscard]] Sequence make_vm_heap(const VmHeapConfig& config);

}  // namespace memreal
