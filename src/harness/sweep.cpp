#include "harness/sweep.h"

#include "util/check.h"

namespace memreal {

ComparisonResult run_comparison(const ComparisonConfig& c) {
  MEMREAL_CHECK(!c.allocators.empty());
  ComparisonResult out;
  out.allocators = c.allocators;
  out.rows.reserve(c.allocators.size());
  for (const std::string& name : c.allocators) {
    ExperimentConfig ec;
    ec.allocator = name;
    ec.make_sequence = c.make_sequence;
    ec.eps_values = c.eps_values;
    ec.seeds = c.seeds;
    ec.delta = c.delta;
    ec.incremental_validation = c.incremental_validation;
    ec.audit_every = c.audit_every;
    ec.threads = c.threads;
    out.rows.push_back(run_experiment(ec));
  }
  return out;
}

std::vector<PowerLawFit> ComparisonResult::exponents() const {
  std::vector<PowerLawFit> fits;
  fits.reserve(rows.size());
  for (const auto& r : rows) fits.push_back(fit_cost_exponent(r));
  return fits;
}

Table ComparisonResult::cost_table() const {
  std::vector<std::string> headers{"1/eps"};
  for (const auto& a : allocators) headers.push_back(a);
  Table t(std::move(headers));
  if (rows.empty()) return t;
  for (std::size_t e = 0; e < rows[0].size(); ++e) {
    std::vector<std::string> cells{Table::num(1.0 / rows[0][e].eps, 5)};
    for (const auto& r : rows) cells.push_back(Table::num(r[e].mean_cost, 4));
    t.add_row(std::move(cells));
  }
  return t;
}

Table ComparisonResult::exponent_table() const {
  Table t({"allocator", "fitted exponent (cost ~ (1/eps)^a)", "r^2"});
  const auto fits = exponents();
  for (std::size_t i = 0; i < allocators.size(); ++i) {
    t.add_row({allocators[i], Table::num(fits[i].exponent, 3),
               Table::num(fits[i].r2, 3)});
  }
  return t;
}

}  // namespace memreal
