// Cross-allocator sweep: run several allocators on identical workloads and
// produce the comparison tables the benches print (who wins, by what
// factor, where the exponents land).
#pragma once

#include <string>
#include <vector>

#include "harness/experiment.h"

namespace memreal {

struct ComparisonConfig {
  std::vector<std::string> allocators;
  SequenceFactory make_sequence;
  std::vector<double> eps_values;
  std::size_t seeds = 3;
  double delta = 0.0;
  /// Incremental per-update validation plus a full-audit cadence (0 =
  /// final audit only) — forwarded to every ExperimentConfig cell.
  bool incremental_validation = true;
  std::size_t audit_every = 0;
  std::size_t threads = 0;
};

struct ComparisonResult {
  std::vector<std::string> allocators;
  std::vector<std::vector<EpsRow>> rows;  ///< [allocator][eps]

  /// Fitted power-law exponent per allocator (cost vs 1/eps).
  [[nodiscard]] std::vector<PowerLawFit> exponents() const;
  /// Table of mean cost: one row per eps, one column per allocator.
  [[nodiscard]] Table cost_table() const;
  /// Table of fitted exponents.
  [[nodiscard]] Table exponent_table() const;
};

[[nodiscard]] ComparisonResult run_comparison(const ComparisonConfig& c);

}  // namespace memreal
