#include "harness/cell.h"

#include "arena/arena_cell.h"
#include "harness/validated_run.h"
#include "release/release_cell.h"
#include "util/check.h"

namespace memreal {

std::unique_ptr<Cell> make_cell(Tick capacity, Tick eps_ticks,
                                const CellConfig& config) {
  if (config.arena) {
    // ArenaCell validates config.engine itself (it names the inner store).
    return std::make_unique<ArenaCell>(capacity, eps_ticks, config);
  }
  if (config.engine == "validated") {
    return std::make_unique<ValidatedCell>(capacity, eps_ticks, config);
  }
  if (config.engine == "release") {
    return std::make_unique<ReleaseCell>(capacity, eps_ticks, config);
  }
  MEMREAL_CHECK_MSG(false, "unknown engine '" << config.engine
                                              << "' (validated, release)");
}

std::vector<std::string> engine_names() { return {"validated", "release"}; }

}  // namespace memreal
