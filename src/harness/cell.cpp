#include "harness/cell.h"

#include "arena/arena_cell.h"
#include "harness/validated_run.h"
#include "release/release_cell.h"
#include "util/check.h"

namespace memreal {

obs::CellMetrics cell_metrics(const CellConfig& config) {
  if (config.metrics == nullptr) return {};
  obs::MetricLabels labels;
  labels.allocator = config.allocator;
  labels.engine = config.arena ? config.engine + "+arena" : config.engine;
  labels.shard = config.shard_index;
  labels.workload = config.workload_label;
  return obs::CellMetrics::create(*config.metrics, labels);
}

std::unique_ptr<Cell> make_cell(Tick capacity, Tick eps_ticks,
                                const CellConfig& config) {
  if (config.arena) {
    // ArenaCell validates config.engine itself (it names the inner store).
    return std::make_unique<ArenaCell>(capacity, eps_ticks, config);
  }
  if (config.engine == "validated") {
    return std::make_unique<ValidatedCell>(capacity, eps_ticks, config);
  }
  if (config.engine == "release") {
    return std::make_unique<ReleaseCell>(capacity, eps_ticks, config);
  }
  MEMREAL_CHECK_MSG(false, "unknown engine '" << config.engine
                                              << "' (validated, release)");
}

std::vector<std::string> engine_names() { return {"validated", "release"}; }

}  // namespace memreal
