#include "harness/experiment.h"

#include <cmath>
#include <mutex>

#include "harness/validated_run.h"
#include "util/check.h"
#include "util/parallel.h"
#include "util/stats.h"

namespace memreal {

namespace {

struct CellOut {
  double mean_cost = 0;
  double ratio_cost = 0;
  double max_cost = 0;
  double p99 = 0;
  double decision_us = 0;
  double wall_us = 0;
  std::size_t updates = 0;
};

CellOut run_cell(const ExperimentConfig& c, double eps, std::uint64_t seed) {
  Sequence seq = c.make_sequence(eps, seed);
  MEMREAL_CHECK(!seq.updates.empty());
  CellConfig cell;
  cell.allocator = c.allocator;
  cell.params.eps = eps;
  cell.params.delta = c.delta;
  cell.params.seed = seed * 0x9E3779B97F4A7C15ULL + 1;
  cell.incremental_validation = c.incremental_validation;
  cell.audit_every = c.audit_every;
  cell.check_invariants_every = c.check_invariants_every;
  RunStats stats = run_validated(seq, cell);

  CellOut out;
  out.mean_cost = stats.mean_cost();
  out.ratio_cost = stats.ratio_cost();
  out.max_cost = stats.max_cost();
  out.p99 = stats.cost_quantiles.quantile(0.99);
  out.updates = stats.updates;
  const auto n = static_cast<double>(std::max<std::size_t>(1, stats.updates));
  out.decision_us = stats.decision_seconds * 1e6 / n;
  out.wall_us = stats.wall_seconds * 1e6 / n;
  return out;
}

}  // namespace

std::vector<EpsRow> run_experiment(const ExperimentConfig& c) {
  MEMREAL_CHECK(!c.eps_values.empty());
  MEMREAL_CHECK(c.seeds >= 1);
  const std::size_t cells = c.eps_values.size() * c.seeds;
  std::vector<CellOut> outs(cells);
  parallel_for(
      cells,
      [&](std::size_t i) {
        const double eps = c.eps_values[i / c.seeds];
        const std::uint64_t seed = 1 + (i % c.seeds);
        outs[i] = run_cell(c, eps, seed);
      },
      c.threads);

  std::vector<EpsRow> rows;
  rows.reserve(c.eps_values.size());
  for (std::size_t e = 0; e < c.eps_values.size(); ++e) {
    EpsRow row;
    row.eps = c.eps_values[e];
    row.seeds = c.seeds;
    StreamingStats mean_over_seeds;
    for (std::size_t s = 0; s < c.seeds; ++s) {
      const CellOut& cell = outs[e * c.seeds + s];
      mean_over_seeds.add(cell.mean_cost);
      row.ratio_cost += cell.ratio_cost;
      row.max_cost = std::max(row.max_cost, cell.max_cost);
      row.p99_cost += cell.p99;
      row.decision_us_per_update += cell.decision_us;
      row.wall_us_per_update += cell.wall_us;
      row.updates += cell.updates;
    }
    const auto ns = static_cast<double>(c.seeds);
    row.mean_cost = mean_over_seeds.mean();
    row.mean_cost_stddev = mean_over_seeds.stddev();
    row.ratio_cost /= ns;
    row.p99_cost /= ns;
    row.decision_us_per_update /= ns;
    row.wall_us_per_update /= ns;
    row.updates /= c.seeds;
    rows.push_back(row);
  }
  return rows;
}

PowerLawFit fit_cost_exponent(const std::vector<EpsRow>& rows) {
  std::vector<double> x, y;
  for (const auto& r : rows) {
    x.push_back(1.0 / r.eps);
    y.push_back(r.mean_cost);
  }
  return fit_power_law(x, y);
}

LinearFit fit_cost_log(const std::vector<EpsRow>& rows) {
  std::vector<double> x, y;
  for (const auto& r : rows) {
    x.push_back(std::log2(1.0 / r.eps));
    y.push_back(r.mean_cost);
  }
  return fit_linear(x, y);
}

Json eps_row_json(const EpsRow& row) {
  Json j = Json::object();
  j.set("eps", row.eps)
      .set("seeds", static_cast<std::uint64_t>(row.seeds))
      .set("updates", static_cast<std::uint64_t>(row.updates))
      .set("mean_cost", row.mean_cost)
      .set("mean_cost_stddev", row.mean_cost_stddev)
      .set("ratio_cost", row.ratio_cost)
      .set("max_cost", row.max_cost)
      .set("p99_cost", row.p99_cost)
      .set("decision_us_per_update", row.decision_us_per_update)
      .set("wall_us_per_update", row.wall_us_per_update);
  return j;
}

Json eps_rows_json(const std::vector<EpsRow>& rows) {
  Json arr = Json::array();
  for (const EpsRow& row : rows) arr.push(eps_row_json(row));
  return arr;
}

EpsRow eps_row_from_json(const Json& row) {
  EpsRow r;
  r.eps = row.at("eps").as_double();
  r.seeds = static_cast<std::size_t>(row.at("seeds").as_u64());
  r.updates = static_cast<std::size_t>(row.at("updates").as_u64());
  r.mean_cost = row.at("mean_cost").as_double();
  r.mean_cost_stddev = row.at("mean_cost_stddev").as_double();
  r.ratio_cost = row.at("ratio_cost").as_double();
  r.max_cost = row.at("max_cost").as_double();
  r.p99_cost = row.at("p99_cost").as_double();
  r.decision_us_per_update = row.at("decision_us_per_update").as_double();
  r.wall_us_per_update = row.at("wall_us_per_update").as_double();
  return r;
}

std::vector<EpsRow> eps_rows_from_json(const Json& rows) {
  std::vector<EpsRow> out;
  out.reserve(rows.size());
  for (const auto& [key, row] : rows.items()) {
    (void)key;
    out.push_back(eps_row_from_json(row));
  }
  return out;
}

Table rows_table(const std::string& allocator,
                 const std::vector<EpsRow>& rows) {
  Table t({"allocator", "eps", "1/eps", "updates", "mean_cost", "+-sd",
           "ratio_cost", "p99", "max", "decide_us"});
  for (const auto& r : rows) {
    t.add_row({allocator, Table::num(r.eps, 4),
               Table::num(1.0 / r.eps, 5),
               std::to_string(r.updates), Table::num(r.mean_cost, 4),
               Table::num(r.mean_cost_stddev, 2), Table::num(r.ratio_cost, 4),
               Table::num(r.p99_cost, 4), Table::num(r.max_cost, 4),
               Table::num(r.decision_us_per_update, 3)});
  }
  return t;
}

}  // namespace memreal
