// Experiment harness: run (allocator x eps x seed) grids in parallel,
// aggregate per-eps cost rows, fit growth exponents, and render the tables
// that EXPERIMENTS.md records.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "alloc/registry.h"
#include "core/run_stats.h"
#include "util/fit.h"
#include "util/json.h"
#include "util/table.h"
#include "workload/sequence.h"

namespace memreal {

/// Builds the workload for one sweep cell.
using SequenceFactory =
    std::function<Sequence(double eps, std::uint64_t seed)>;

struct ExperimentConfig {
  std::string allocator;                ///< registry name
  SequenceFactory make_sequence;
  std::vector<double> eps_values;
  std::size_t seeds = 3;                ///< averaged per eps
  double delta = 0.0;                   ///< forwarded to RSUM
  /// Incremental O(log n) model validation at every update (the default
  /// validated-run mode; see ValidationPolicy::incremental).
  bool incremental_validation = true;
  /// Full O(n) audit cadence; 0 = only the final audit after the run.
  std::size_t audit_every = 0;
  std::size_t check_invariants_every = 0;
  std::size_t threads = 0;              ///< 0 = all cores
};

struct EpsRow {
  double eps = 0;
  std::size_t seeds = 0;
  std::size_t updates = 0;        ///< per seed (averaged)
  double mean_cost = 0;           ///< averaged over seeds
  double mean_cost_stddev = 0;    ///< across seeds
  double ratio_cost = 0;
  double max_cost = 0;
  double p99_cost = 0;            ///< averaged over seeds
  double decision_us_per_update = 0;
  double wall_us_per_update = 0;
};

/// Runs the full grid; rows are ordered like eps_values.
[[nodiscard]] std::vector<EpsRow> run_experiment(const ExperimentConfig& c);

/// Fits mean cost ~ C * (1/eps)^alpha over the rows.
[[nodiscard]] PowerLawFit fit_cost_exponent(const std::vector<EpsRow>& rows);

/// Fits mean cost ~ a + b * log2(1/eps) (the logarithmic regimes).
[[nodiscard]] LinearFit fit_cost_log(const std::vector<EpsRow>& rows);

/// Renders rows with an allocator-name caption column.
[[nodiscard]] Table rows_table(const std::string& allocator,
                               const std::vector<EpsRow>& rows);

/// EpsRow <-> JSON: the row format inside schema-2 BENCH_*.json
/// `eps_sweep` records.  `memreal_report` parses rows back with
/// eps_rows_from_json and recomputes the fits above, so the artifact
/// carries fit *inputs*, not just fitted numbers.
[[nodiscard]] Json eps_row_json(const EpsRow& row);
[[nodiscard]] Json eps_rows_json(const std::vector<EpsRow>& rows);
[[nodiscard]] EpsRow eps_row_from_json(const Json& row);
[[nodiscard]] std::vector<EpsRow> eps_rows_from_json(const Json& rows);

}  // namespace memreal
