// One validated run cell: Memory + Allocator + Engine wired together with
// the standard validation policy.  Shared by the experiment grid
// (harness/experiment.cpp), the differential fuzzer (fuzz/differential.cpp)
// and ad-hoc drivers, so the cell wiring (policy knobs, param plumbing,
// construction order) lives in exactly one place.
#pragma once

#include <memory>
#include <string>

#include "alloc/registry.h"
#include "core/engine.h"
#include "mem/memory.h"
#include "workload/sequence.h"

namespace memreal {

struct CellConfig {
  std::string allocator;  ///< registry name
  AllocatorParams params;
  /// Incremental O(log n) model validation at every update.
  bool incremental_validation = true;
  /// Full O(n) audit cadence; 0 = explicit-only.
  std::size_t audit_every = 0;
  /// Allocator self-check cadence; 0 = never.
  std::size_t check_invariants_every = 0;
};

/// A constructed (Memory, Allocator, Engine) triple for one sequence.
/// Non-movable: the allocator and engine hold references into the memory
/// member, so the cell must stay put (heap-allocate to store in containers).
class ValidatedCell {
 public:
  ValidatedCell(const Sequence& seq, const CellConfig& config);

  /// Sequence-free construction for drivers that own the update routing
  /// themselves (the sharded engine builds one cell per shard).
  ValidatedCell(Tick capacity, Tick eps_ticks, const CellConfig& config);

  ValidatedCell(const ValidatedCell&) = delete;
  ValidatedCell& operator=(const ValidatedCell&) = delete;

  [[nodiscard]] Memory& memory() { return memory_; }
  [[nodiscard]] Allocator& allocator() { return *allocator_; }
  [[nodiscard]] Engine& engine() { return engine_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
  Memory memory_;
  std::unique_ptr<Allocator> allocator_;
  Engine engine_;
};

/// Runs the whole sequence through a fresh cell: engine run, final full
/// audit, final allocator self-check.  Throws InvariantViolation on any
/// model or allocator invariant failure.
[[nodiscard]] RunStats run_validated(const Sequence& seq,
                                     const CellConfig& config);

}  // namespace memreal
