// One validated run cell: Memory + Allocator + Engine wired together with
// the standard validation policy.  Shared by the experiment grid
// (harness/experiment.cpp), the differential fuzzer (fuzz/differential.cpp)
// and ad-hoc drivers, so the cell wiring (policy knobs, param plumbing,
// construction order) lives in exactly one place.  CellConfig and the
// engine-selection seam live in harness/cell.h.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "alloc/registry.h"
#include "core/engine.h"
#include "harness/cell.h"
#include "mem/memory.h"
#include "workload/sequence.h"

namespace memreal {

/// A constructed (Memory, Allocator, Engine) triple for one sequence.
/// Non-movable: the allocator and engine hold references into the memory
/// member, so the cell must stay put (heap-allocate to store in containers).
class ValidatedCell final : public Cell {
 public:
  ValidatedCell(const Sequence& seq, const CellConfig& config);

  /// Sequence-free construction for drivers that own the update routing
  /// themselves (the sharded engine builds one cell per shard).
  ValidatedCell(Tick capacity, Tick eps_ticks, const CellConfig& config);

  ValidatedCell(const ValidatedCell&) = delete;
  ValidatedCell& operator=(const ValidatedCell&) = delete;

  [[nodiscard]] Memory& memory() override { return memory_; }
  [[nodiscard]] Allocator& allocator() override { return *allocator_; }
  [[nodiscard]] Engine& engine() { return engine_; }
  [[nodiscard]] const std::string& name() const override { return name_; }

  double step(const Update& update) override { return engine_.step(update); }
  RunStats run(std::span<const Update> updates) override {
    return engine_.run(updates);
  }
  [[nodiscard]] const RunStats& stats() const override {
    return engine_.stats();
  }

  void audit() override;

 private:
  std::string name_;
  Memory memory_;
  std::unique_ptr<Allocator> allocator_;
  Engine engine_;
};

/// Runs the whole sequence through a fresh cell: engine run, final full
/// audit, final allocator self-check.  Throws InvariantViolation on any
/// model or allocator invariant failure.
[[nodiscard]] RunStats run_validated(const Sequence& seq,
                                     const CellConfig& config);

}  // namespace memreal
