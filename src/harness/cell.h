// The engine-selection seam: one cell = one (layout store, allocator,
// engine) triple driving a single contiguous address space.  CellConfig
// names the allocator AND the engine flavor; make_cell constructs the
// matching triple:
//
//   engine = "validated"  ->  ValidatedCell  (Memory + Engine: per-update
//                             incremental checks, audit cadence)
//   engine = "release"    ->  ReleaseCell    (SlabStore + ReleaseEngine:
//                             no per-update validation, explicit audit)
//   arena = true          ->  ArenaCell      (either flavor's store wrapped
//                             in the byte-backed ArenaStore, src/arena)
//
// ShardedEngine, the fuzz oracle and the drivers all hold Cells, so the
// release fast path slots in behind every existing consumer without
// touching their update-routing logic.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "alloc/registry.h"
#include "core/layout_store.h"
#include "core/run_stats.h"
#include "core/update.h"
#include "obs/metrics.h"
#include "util/types.h"

namespace memreal {

struct CellConfig {
  std::string engine = "validated";  ///< "validated" or "release"
  std::string allocator;             ///< registry name
  AllocatorParams params;
  /// Incremental O(log n) model validation at every update (validated
  /// engine only; the release engine never validates per update).
  bool incremental_validation = true;
  /// Full O(n) audit cadence; 0 = explicit-only (validated engine only).
  std::size_t audit_every = 0;
  /// Allocator self-check cadence; 0 = never (validated engine only).
  std::size_t check_invariants_every = 0;

  /// Back the cell with a real byte arena (src/arena): items get physical
  /// payloads, moves execute memmoves, and RunStats gains the moved-bytes
  /// channel.  Composes with either engine flavor — the inner store stays
  /// the one `engine` names.
  bool arena = false;
  /// Byte-space granule: bytes per tick, also the arena's alignment and
  /// minimum allocation size (arena cells only).
  Tick bytes_per_tick = 8;
  /// Verify payload fill patterns after every move and on audit (arena
  /// cells only); disable to measure raw memmove bandwidth.
  bool verify_payloads = true;

  /// Observability: when set, the cell registers per-cell instruments
  /// (update/moved-tick counters, cost histograms — see src/obs/) under
  /// labels {allocator, engine, shard_index, workload_label}.  Null
  /// keeps the cell instrument-free (zero overhead).
  obs::MetricRegistry* metrics = nullptr;
  int shard_index = -1;
  std::string workload_label;
};

/// The instrument bundle for a cell built from `config`; an all-null
/// bundle when config.metrics is unset.
[[nodiscard]] obs::CellMetrics cell_metrics(const CellConfig& config);

/// A constructed cell for one update stream.  Non-movable: the allocator
/// and engine hold references into the store member, so the cell must stay
/// put (heap-allocate to store in containers).
class Cell {
 public:
  virtual ~Cell() = default;

  [[nodiscard]] virtual LayoutStore& memory() = 0;
  [[nodiscard]] virtual Allocator& allocator() = 0;
  [[nodiscard]] virtual const std::string& name() const = 0;

  /// Applies a single update and returns its cost L/k.
  virtual double step(const Update& update) = 0;
  /// Applies all updates and returns the accumulated statistics.
  virtual RunStats run(std::span<const Update> updates) = 0;
  [[nodiscard]] virtual const RunStats& stats() const = 0;

  /// Full model audit + allocator self-check (the release cell's only
  /// validation point).
  virtual void audit() = 0;
};

/// Constructs the cell flavor named by config.engine; throws
/// InvariantViolation for unknown engine names.
[[nodiscard]] std::unique_ptr<Cell> make_cell(Tick capacity, Tick eps_ticks,
                                              const CellConfig& config);

/// The engine flavors make_cell accepts, for CLI validation and help text.
[[nodiscard]] std::vector<std::string> engine_names();

}  // namespace memreal
