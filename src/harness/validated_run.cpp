#include "harness/validated_run.h"

namespace memreal {

namespace {

ValidationPolicy cell_policy(const CellConfig& config) {
  ValidationPolicy policy;
  policy.incremental = config.incremental_validation;
  policy.audit_every_n_updates = config.audit_every;
  return policy;
}

EngineOptions cell_options(const CellConfig& config) {
  EngineOptions options;
  options.check_invariants_every = config.check_invariants_every;
  options.metrics = cell_metrics(config);
  return options;
}

}  // namespace

ValidatedCell::ValidatedCell(const Sequence& seq, const CellConfig& config)
    : ValidatedCell(seq.capacity, seq.eps_ticks, config) {}

ValidatedCell::ValidatedCell(Tick capacity, Tick eps_ticks,
                             const CellConfig& config)
    : name_(config.allocator),
      memory_(capacity, eps_ticks, cell_policy(config)),
      allocator_(make_allocator(config.allocator, memory_, config.params)),
      engine_(memory_, *allocator_, cell_options(config)) {}

void ValidatedCell::audit() {
  memory_.audit();
  allocator_->check_invariants();
}

RunStats run_validated(const Sequence& seq, const CellConfig& config) {
  ValidatedCell cell(seq, config);
  RunStats stats = cell.engine().run(seq.updates);
  cell.audit();
  return stats;
}

}  // namespace memreal
