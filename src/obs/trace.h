// Lifecycle tracing: fixed-capacity per-thread rings of spans covering
// the update pipeline (route -> queue-wait -> apply -> validate ->
// arena-flush), exported as Chrome trace_event JSON (open the file in
// Perfetto / chrome://tracing).
//
// Determinism discipline: recording never touches engine state, and in
// deterministic/verify modes the session runs on a logical clock (a
// global atomic tick counter) instead of wall time, so serve_deterministic
// stays bit-identical to the batch engine with tracing on.  When the
// session is inactive, ScopedSpan is two relaxed loads and no allocation.
//
// Threading: each ring is written lock-free by its owning thread only.
// Export (chrome_json / event_count) must run after writers quiesce —
// for the serving layer that means after ServingEngine::drain() returns
// or the engine is destroyed.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace memreal::obs {

enum class SpanPhase : std::uint8_t {
  kRoute,
  kQueueWait,
  kApply,
  kValidate,
  kArenaFlush,
};

const char* phase_name(SpanPhase phase) noexcept;

struct TraceEvent {
  std::uint64_t ts = 0;   // microseconds (wall) or logical ticks
  std::uint64_t dur = 0;  // same unit as ts
  SpanPhase phase = SpanPhase::kApply;
  std::int32_t shard = -1;
};

class TraceSession {
 public:
  enum class Clock { kWall, kLogical };

  static TraceSession& global();

  // Arms the session: clears previous rings, resets the clock epoch.
  // Must not run concurrently with recording threads.
  void start(Clock clock, std::size_t ring_capacity = kDefaultRingCapacity);
  // Disarms recording; captured events stay exportable until the next
  // start() or clear().
  void stop() noexcept { active_.store(false, std::memory_order_relaxed); }

  bool active() const noexcept {
    return active_.load(std::memory_order_relaxed);
  }
  Clock clock() const noexcept { return clock_; }

  // Current timestamp: wall microseconds since start(), or the next
  // logical tick (each call advances the global tick counter).
  std::uint64_t now() noexcept;

  // Appends a completed span to the calling thread's ring (oldest event
  // is overwritten when the ring is full).
  void record(SpanPhase phase, std::uint64_t begin, std::uint64_t end,
              std::int32_t shard) noexcept;

  // Chrome trace_event JSON ("X" complete events).  Call only after
  // writers quiesce.
  std::string chrome_json() const;
  std::size_t event_count() const;
  std::size_t dropped() const;
  void clear();

  static constexpr std::size_t kDefaultRingCapacity = 1 << 16;

 private:
  struct Ring {
    explicit Ring(std::size_t capacity, std::uint32_t tid)
        : buf(capacity), tid(tid) {}
    std::vector<TraceEvent> buf;
    std::size_t head = 0;        // next write slot
    std::uint64_t written = 0;   // lifetime writes (>= buf.size() => wrapped)
    std::uint32_t tid;
  };

  Ring* ring();

  std::atomic<bool> active_{false};
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<std::uint64_t> logical_{0};
  Clock clock_ = Clock::kWall;
  std::size_t capacity_ = kDefaultRingCapacity;
  std::chrono::steady_clock::time_point epoch_{};

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Ring>> rings_;
};

// RAII span: stamps begin on construction, records on destruction.  A
// no-op (two relaxed loads) when the session is inactive.
class ScopedSpan {
 public:
  explicit ScopedSpan(SpanPhase phase, std::int32_t shard = -1) noexcept
      : phase_(phase), shard_(shard) {
    TraceSession& session = TraceSession::global();
    if (session.active()) {
      armed_ = true;
      begin_ = session.now();
    }
  }
  ~ScopedSpan() {
    if (armed_) {
      TraceSession& session = TraceSession::global();
      session.record(phase_, begin_, session.now(), shard_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanPhase phase_;
  std::int32_t shard_;
  bool armed_ = false;
  std::uint64_t begin_ = 0;
};

}  // namespace memreal::obs
