#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace memreal::obs {

namespace detail {

std::size_t next_thread_id() noexcept {
  static std::atomic<std::size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail

std::string MetricLabels::key() const {
  std::string out;
  auto append = [&out](const char* dim, const std::string& value) {
    if (value.empty()) return;
    out += out.empty() ? "{" : ",";
    out += dim;
    out += "=\"";
    out += value;
    out += "\"";
  };
  append("allocator", allocator);
  append("engine", engine);
  if (shard >= 0) append("shard", std::to_string(shard));
  append("workload", workload);
  if (!out.empty()) out += "}";
  return out;
}

MetricRegistry& MetricRegistry::global() {
  static MetricRegistry registry;
  return registry;
}

MetricRegistry::Entry* MetricRegistry::find_or_create(
    const std::string& name, const MetricLabels& labels, Kind kind) {
  const std::string key = name + labels.key();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->labels = labels;
  entry->kind = kind;
  switch (kind) {
    case Kind::kCounter:
      entry->counter.reset(new Counter(&enabled_));
      break;
    case Kind::kGauge:
      entry->gauge.reset(new Gauge(&enabled_));
      break;
    case Kind::kHistogram:
      entry->histogram.reset(new Histogram(&enabled_));
      break;
  }
  Entry* raw = entry.get();
  entries_.push_back(std::move(entry));
  index_.emplace(key, raw);
  return raw;
}

Counter* MetricRegistry::counter(const std::string& name,
                                 const MetricLabels& labels) {
  return find_or_create(name, labels, Kind::kCounter)->counter.get();
}

Gauge* MetricRegistry::gauge(const std::string& name,
                             const MetricLabels& labels) {
  return find_or_create(name, labels, Kind::kGauge)->gauge.get();
}

Histogram* MetricRegistry::histogram(const std::string& name,
                                     const MetricLabels& labels) {
  return find_or_create(name, labels, Kind::kHistogram)->histogram.get();
}

void MetricRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : entries_) {
    switch (entry->kind) {
      case Kind::kCounter:
        entry->counter->reset();
        break;
      case Kind::kGauge:
        entry->gauge->reset();
        break;
      case Kind::kHistogram:
        entry->histogram->reset();
        break;
    }
  }
}

std::uint64_t Histogram::quantile_bound(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  const std::uint64_t rank = static_cast<std::uint64_t>(
      q * static_cast<double>(n - 1));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += bucket_count(b);
    if (seen > rank) return bucket_hi(b);
  }
  return bucket_hi(kBuckets - 1);
}

namespace {

Json labels_json(const MetricLabels& labels) {
  Json out = Json::object();
  if (!labels.allocator.empty()) out.set("allocator", labels.allocator);
  if (!labels.engine.empty()) out.set("engine", labels.engine);
  if (labels.shard >= 0) out.set("shard", labels.shard);
  if (!labels.workload.empty()) out.set("workload", labels.workload);
  return out;
}

}  // namespace

Json MetricRegistry::snapshot_json() const {
  Json metrics = Json::array();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& entry : entries_) {
    Json m = Json::object();
    m.set("name", entry->name);
    m.set("labels", labels_json(entry->labels));
    switch (entry->kind) {
      case Kind::kCounter:
        m.set("kind", "counter");
        m.set("value", entry->counter->value());
        break;
      case Kind::kGauge:
        m.set("kind", "gauge");
        m.set("value", static_cast<double>(entry->gauge->value()));
        m.set("high_water", static_cast<double>(entry->gauge->high_water()));
        break;
      case Kind::kHistogram: {
        m.set("kind", "histogram");
        const Histogram& h = *entry->histogram;
        m.set("count", h.count());
        m.set("sum", h.sum());
        Json buckets = Json::array();
        for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
          const std::uint64_t c = h.bucket_count(b);
          if (c == 0) continue;
          Json bucket = Json::object();
          bucket.set("le", Histogram::bucket_hi(b));
          bucket.set("count", c);
          buckets.push(std::move(bucket));
        }
        m.set("buckets", std::move(buckets));
        break;
      }
    }
    metrics.push(std::move(m));
  }
  Json out = Json::object();
  out.set("metrics", std::move(metrics));
  return out;
}

std::string MetricRegistry::prometheus_text() const {
  std::string out;
  std::lock_guard<std::mutex> lock(mu_);
  std::string last_name;
  for (const auto& entry : entries_) {
    const std::string& name = entry->name;
    const std::string labels = entry->labels.key();
    if (name != last_name) {
      out += "# TYPE " + name + " ";
      switch (entry->kind) {
        case Kind::kCounter:
          out += "counter";
          break;
        case Kind::kGauge:
          out += "gauge";
          break;
        case Kind::kHistogram:
          out += "histogram";
          break;
      }
      out += "\n";
      last_name = name;
    }
    switch (entry->kind) {
      case Kind::kCounter:
        out += name + labels + " " + std::to_string(entry->counter->value()) +
               "\n";
        break;
      case Kind::kGauge:
        out += name + labels + " " + std::to_string(entry->gauge->value()) +
               "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry->histogram;
        // Cumulative `le` buckets, Prometheus-style; skip trailing empty
        // ranges but always emit +Inf, _sum, and _count.
        std::uint64_t cumulative = 0;
        std::string base = entry->labels.key();
        std::string prefix =
            base.empty() ? "{" : base.substr(0, base.size() - 1) + ",";
        for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
          const std::uint64_t c = h.bucket_count(b);
          if (c == 0) continue;
          cumulative += c;
          out += name + "_bucket" + prefix + "le=\"" +
                 std::to_string(Histogram::bucket_hi(b)) + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
        out += name + "_bucket" + prefix + "le=\"+Inf\"} " +
               std::to_string(h.count()) + "\n";
        out += name + "_sum" + labels + " " + std::to_string(h.sum()) + "\n";
        out += name + "_count" + labels + " " + std::to_string(h.count()) +
               "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricRegistry::summary_table() const {
  std::string out;
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t width = 0;
  for (const auto& entry : entries_) {
    width = std::max(width, entry->name.size() + entry->labels.key().size());
  }
  char line[256];
  for (const auto& entry : entries_) {
    const std::string id = entry->name + entry->labels.key();
    switch (entry->kind) {
      case Kind::kCounter:
        std::snprintf(line, sizeof line, "  %-*s %20llu\n",
                      static_cast<int>(width), id.c_str(),
                      static_cast<unsigned long long>(
                          entry->counter->value()));
        break;
      case Kind::kGauge:
        std::snprintf(line, sizeof line, "  %-*s %20lld  (high water %lld)\n",
                      static_cast<int>(width), id.c_str(),
                      static_cast<long long>(entry->gauge->value()),
                      static_cast<long long>(entry->gauge->high_water()));
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry->histogram;
        std::snprintf(
            line, sizeof line,
            "  %-*s count=%llu sum=%llu p50<=%llu p99<=%llu\n",
            static_cast<int>(width), id.c_str(),
            static_cast<unsigned long long>(h.count()),
            static_cast<unsigned long long>(h.sum()),
            static_cast<unsigned long long>(h.quantile_bound(0.50)),
            static_cast<unsigned long long>(h.quantile_bound(0.99)));
        break;
      }
    }
    out += line;
  }
  return out;
}

CellMetrics CellMetrics::create(MetricRegistry& reg,
                                const MetricLabels& labels) {
  CellMetrics m;
  m.updates = reg.counter("memreal_cell_updates_total", labels);
  m.inserts = reg.counter("memreal_cell_inserts_total", labels);
  m.deletes = reg.counter("memreal_cell_deletes_total", labels);
  m.moved_ticks = reg.counter("memreal_cell_moved_ticks_total", labels);
  m.update_ticks = reg.counter("memreal_cell_update_ticks_total", labels);
  m.moved_bytes = reg.counter("memreal_cell_moved_bytes_total", labels);
  m.cost = reg.histogram("memreal_cell_cost", labels);
  m.realloc_ticks = reg.histogram("memreal_cell_realloc_ticks", labels);
  m.enabled = reg.enabled_flag();
  m.shard = labels.shard;
  return m;
}

RouterMetrics RouterMetrics::create(MetricRegistry& reg,
                                    const MetricLabels& labels) {
  RouterMetrics m;
  m.fallback_routes = reg.counter("memreal_shard_fallback_routes_total",
                                  labels);
  m.migrations = reg.counter("memreal_shard_migrations_total", labels);
  m.migrated_ticks = reg.counter("memreal_shard_migrated_ticks_total", labels);
  m.batches = reg.counter("memreal_shard_batches_total", labels);
  return m;
}

ServeMetrics ServeMetrics::create(MetricRegistry& reg,
                                  const MetricLabels& labels) {
  ServeMetrics m;
  m.queue_depth = reg.gauge("memreal_serve_queue_depth", labels);
  m.queue_wait_us = reg.histogram("memreal_serve_queue_wait_us", labels);
  return m;
}

ArenaMetrics ArenaMetrics::create(MetricRegistry& reg,
                                  const MetricLabels& labels) {
  ArenaMetrics m;
  m.moved_bytes = reg.counter("memreal_arena_moved_bytes_total", labels);
  m.verified_bytes = reg.counter("memreal_arena_verified_bytes_total", labels);
  m.payload_moves = reg.counter("memreal_arena_payload_moves_total", labels);
  return m;
}

}  // namespace memreal::obs
