#include "obs/trace.h"

#include <algorithm>

#include "util/json.h"

namespace memreal::obs {

const char* phase_name(SpanPhase phase) noexcept {
  switch (phase) {
    case SpanPhase::kRoute:
      return "route";
    case SpanPhase::kQueueWait:
      return "queue-wait";
    case SpanPhase::kApply:
      return "apply";
    case SpanPhase::kValidate:
      return "validate";
    case SpanPhase::kArenaFlush:
      return "arena-flush";
  }
  return "unknown";
}

TraceSession& TraceSession::global() {
  static TraceSession session;
  return session;
}

void TraceSession::start(Clock clock, std::size_t ring_capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  rings_.clear();
  clock_ = clock;
  capacity_ = std::max<std::size_t>(1, ring_capacity);
  logical_.store(0, std::memory_order_relaxed);
  epoch_ = std::chrono::steady_clock::now();
  generation_.fetch_add(1, std::memory_order_release);
  active_.store(true, std::memory_order_relaxed);
}

std::uint64_t TraceSession::now() noexcept {
  if (clock_ == Clock::kLogical) {
    return logical_.fetch_add(1, std::memory_order_relaxed);
  }
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

TraceSession::Ring* TraceSession::ring() {
  thread_local std::uint64_t cached_generation = 0;
  thread_local Ring* cached = nullptr;
  const std::uint64_t generation =
      generation_.load(std::memory_order_acquire);
  if (cached_generation != generation || cached == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    rings_.push_back(std::make_unique<Ring>(
        capacity_, static_cast<std::uint32_t>(rings_.size())));
    cached = rings_.back().get();
    cached_generation = generation;
  }
  return cached;
}

void TraceSession::record(SpanPhase phase, std::uint64_t begin,
                          std::uint64_t end, std::int32_t shard) noexcept {
  Ring* r = ring();
  TraceEvent& ev = r->buf[r->head];
  ev.ts = begin;
  ev.dur = end >= begin ? end - begin : 0;
  ev.phase = phase;
  ev.shard = shard;
  r->head = (r->head + 1) % r->buf.size();
  ++r->written;
}

std::size_t TraceSession::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const auto& r : rings_) {
    total += static_cast<std::size_t>(
        std::min<std::uint64_t>(r->written, r->buf.size()));
  }
  return total;
}

std::size_t TraceSession::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const auto& r : rings_) {
    if (r->written > r->buf.size()) {
      total += static_cast<std::size_t>(r->written - r->buf.size());
    }
  }
  return total;
}

void TraceSession::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  rings_.clear();
  generation_.fetch_add(1, std::memory_order_release);
}

std::string TraceSession::chrome_json() const {
  Json events = Json::array();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& r : rings_) {
      const std::size_t n = static_cast<std::size_t>(
          std::min<std::uint64_t>(r->written, r->buf.size()));
      // Oldest-first: when wrapped, the oldest live event sits at head.
      const std::size_t start = r->written > r->buf.size() ? r->head : 0;
      for (std::size_t i = 0; i < n; ++i) {
        const TraceEvent& ev = r->buf[(start + i) % r->buf.size()];
        Json e = Json::object();
        e.set("name", phase_name(ev.phase));
        e.set("cat", "memreal");
        e.set("ph", "X");
        e.set("ts", ev.ts);
        e.set("dur", ev.dur);
        e.set("pid", 1);
        e.set("tid", static_cast<std::uint64_t>(r->tid));
        Json args = Json::object();
        args.set("shard", ev.shard);
        e.set("args", std::move(args));
        events.push(std::move(e));
      }
    }
  }
  Json doc = Json::object();
  doc.set("traceEvents", std::move(events));
  doc.set("clock", clock_ == Clock::kLogical ? "logical" : "wall");
  return doc.dump(0);
}

}  // namespace memreal::obs
