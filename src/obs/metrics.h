// Low-overhead labeled metrics: counters, gauges, and log-bucketed
// histograms behind a single process-wide registry.
//
// Design constraints (see docs/ARCHITECTURE.md "Observability"):
//  - The hot path (Counter::add, Histogram::record) is a relaxed atomic
//    increment; counters stripe across cache-line-aligned slots so
//    concurrent shard workers never contend on one line.
//  - A runtime kill switch (MetricRegistry::set_enabled) makes every
//    mutator a single relaxed load + branch with zero allocations, and
//    the compile-time switch MEMREAL_OBS_ENABLED=0 compiles mutators to
//    empty inline bodies.
//  - Instruments are registered once (cell construction), never in the
//    update loop, and live for the process lifetime: raw pointers handed
//    to engines stay valid across MetricRegistry::reset().
//  - Snapshots (JSON / Prometheus text / summary table) merge the
//    striped slots; they are exact once writers have quiesced and
//    approximate (but tear-free per slot) while a run is in flight.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/json.h"
#include "util/types.h"

#ifndef MEMREAL_OBS_ENABLED
#define MEMREAL_OBS_ENABLED 1
#endif

namespace memreal::obs {

inline constexpr bool kObsCompiledIn = MEMREAL_OBS_ENABLED != 0;

// Label dimensions shared by every metric.  Empty string / -1 means the
// dimension does not apply (e.g. a registry-global counter has no shard).
struct MetricLabels {
  std::string allocator;
  std::string engine;
  int shard = -1;
  std::string workload;

  // Canonical registry key, also usable as a display string:
  // {allocator="geo",engine="release",shard="3",workload="churn"}.
  // Unset dimensions are omitted; an all-default label set renders as "".
  std::string key() const;
};

namespace detail {

inline constexpr std::size_t kStripes = 16;

// Registers the calling thread once and returns its sequence number.
std::size_t next_thread_id() noexcept;

// Each writer thread owns one stripe index for its lifetime; 16 stripes
// cover every (shards x threads) configuration the tools run.  Inline so
// counter sites pay one TLS load, not an out-of-line call per add().
inline std::size_t stripe_index() noexcept {
  thread_local const std::size_t id = next_thread_id();
  return id & (kStripes - 1);
}

}  // namespace detail

// Monotone counter.  add() is wait-free; value() sums the stripes.
class Counter {
 public:
  void add(std::uint64_t delta) noexcept {
    if constexpr (!kObsCompiledIn) return;
    if (!enabled_->load(std::memory_order_relaxed)) return;
    add_at(detail::stripe_index(), delta);
  }
  void inc() noexcept { add(1); }

  // Guard-free variant for bundled record sites (CellMetrics::on_update)
  // that test the shared registry switch once and reuse one
  // stripe_index() result across the whole bundle.
  void add_at(std::size_t stripe, std::uint64_t delta) noexcept {
    if constexpr (!kObsCompiledIn) return;
    stripes_[stripe].v.fetch_add(delta, std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : stripes_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  void reset() noexcept {
    for (auto& s : stripes_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  friend class MetricRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Stripe, detail::kStripes> stripes_{};
  const std::atomic<bool>* enabled_;
};

// Point-in-time signed value with a lifetime high-water mark.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    if constexpr (!kObsCompiledIn) return;
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(v, std::memory_order_relaxed);
    raise_high_water(v);
  }
  void add(std::int64_t delta) noexcept {
    if constexpr (!kObsCompiledIn) return;
    if (!enabled_->load(std::memory_order_relaxed)) return;
    raise_high_water(value_.fetch_add(delta, std::memory_order_relaxed) +
                     delta);
  }

  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  std::int64_t high_water() const noexcept {
    return high_water_.load(std::memory_order_relaxed);
  }

  void reset() noexcept {
    value_.store(0, std::memory_order_relaxed);
    high_water_.store(0, std::memory_order_relaxed);
  }

 private:
  friend class MetricRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  void raise_high_water(std::int64_t v) noexcept {
    std::int64_t hw = high_water_.load(std::memory_order_relaxed);
    while (v > hw && !high_water_.compare_exchange_weak(
                         hw, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> high_water_{0};
  const std::atomic<bool>* enabled_;
};

// Base-2 log-bucketed histogram over unsigned integer samples (ticks,
// bytes, microseconds).  Bucket 0 holds the value 0; bucket b in [1,62]
// holds [2^(b-1), 2^b - 1]; bucket 63 holds everything from 2^62 up.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  static std::size_t bucket_of(std::uint64_t v) noexcept {
    if (v == 0) return 0;
    const std::size_t b = 64 - static_cast<std::size_t>(countl_zero(v));
    return b < kBuckets ? b : kBuckets - 1;
  }
  // Inclusive range [bucket_lo(b), bucket_hi(b)] covered by bucket b.
  static std::uint64_t bucket_lo(std::size_t b) noexcept {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }
  static std::uint64_t bucket_hi(std::size_t b) noexcept {
    if (b == 0) return 0;
    if (b >= kBuckets - 1) return ~std::uint64_t{0};
    return (std::uint64_t{1} << b) - 1;
  }

  void record(std::uint64_t v) noexcept {
    if constexpr (!kObsCompiledIn) return;
    if (!enabled_->load(std::memory_order_relaxed)) return;
    record_unguarded(v);
  }

  // Guard-free variant: the caller has already tested the shared
  // registry switch for the whole instrument bundle.
  void record_unguarded(std::uint64_t v) noexcept {
    if constexpr (!kObsCompiledIn) return;
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  // Folds another histogram into this one (used by tests to check
  // merge == single-stream and by tools to aggregate per-shard series).
  void merge(const Histogram& other) noexcept {
    for (std::size_t b = 0; b < kBuckets; ++b) {
      buckets_[b].fetch_add(other.bucket_count(b), std::memory_order_relaxed);
    }
    sum_.fetch_add(other.sum(), std::memory_order_relaxed);
  }

  // Total samples, derived from the buckets: every record lands in
  // exactly one bucket, so a separate count cell would only add a third
  // RMW to the hot path.
  std::uint64_t count() const noexcept {
    std::uint64_t total = 0;
    for (const auto& b : buckets_) {
      total += b.load(std::memory_order_relaxed);
    }
    return total;
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket_count(std::size_t b) const noexcept {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  // Upper bound of the bucket holding the q-quantile sample (0 if empty).
  std::uint64_t quantile_bound(double q) const noexcept;

  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  friend class MetricRegistry;
  explicit Histogram(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  static int countl_zero(std::uint64_t v) noexcept {
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_clzll(v);
#else
    int n = 0;
    for (std::uint64_t bit = std::uint64_t{1} << 63; bit && !(v & bit);
         bit >>= 1) {
      ++n;
    }
    return n;
#endif
  }

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
  const std::atomic<bool>* enabled_;
};

// Process-wide instrument registry.  Lookup/creation takes a mutex and
// happens at setup time only; the returned pointers are stable for the
// process lifetime (reset() zeroes values, never drops registrations).
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  static MetricRegistry& global();

  void set_enabled(bool on) noexcept {
    enabled_.store(kObsCompiledIn && on, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  const std::atomic<bool>* enabled_flag() const noexcept { return &enabled_; }

  Counter* counter(const std::string& name, const MetricLabels& labels = {});
  Gauge* gauge(const std::string& name, const MetricLabels& labels = {});
  Histogram* histogram(const std::string& name,
                       const MetricLabels& labels = {});

  // Zeroes every instrument; registrations and pointers stay valid.
  void reset();

  // One snapshot object: {"metrics": [{name, labels, kind, ...}, ...]}.
  Json snapshot_json() const;
  // Prometheus text exposition format (counters as *_total, histograms
  // with cumulative `le` buckets).
  std::string prometheus_text() const;
  // Human-readable end-of-run table for --metrics-summary.
  std::string summary_table() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    MetricLabels labels;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* find_or_create(const std::string& name, const MetricLabels& labels,
                        Kind kind);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;  // insertion order
  std::unordered_map<std::string, Entry*> index_;
  std::atomic<bool> enabled_{kObsCompiledIn};
};

// ---------------------------------------------------------------------------
// Per-layer instrument bundles.  Each layer holds one of these by value;
// all pointers are either set (metrics wired) or null (observability off
// for this object), so the hot-path guard is a single pointer test.

// Per-cell (Engine / ReleaseEngine) instruments.
struct CellMetrics {
  Counter* updates = nullptr;
  Counter* inserts = nullptr;
  Counter* deletes = nullptr;
  Counter* moved_ticks = nullptr;
  Counter* update_ticks = nullptr;
  Counter* moved_bytes = nullptr;
  Histogram* cost = nullptr;
  Histogram* realloc_ticks = nullptr;
  const std::atomic<bool>* enabled = nullptr;  // shared registry switch
  int shard = -1;  // trace-span label; -1 when unsharded

  static CellMetrics create(MetricRegistry& reg, const MetricLabels& labels);

  // One kill-switch test and one stripe lookup cover the whole bundle:
  // every instrument here shares the registry's switch, so per-call
  // guards would be seven loads of the same atomic.
  void on_update(bool is_insert, Tick update_size, Tick moved,
                 Tick bytes) noexcept {
    if constexpr (!kObsCompiledIn) return;
    if (updates == nullptr) return;
    if (!enabled->load(std::memory_order_relaxed)) return;
    const std::size_t s = detail::stripe_index();
    updates->add_at(s, 1);
    (is_insert ? inserts : deletes)->add_at(s, 1);
    moved_ticks->add_at(s, moved);
    update_ticks->add_at(s, update_size);
    if (bytes != 0) moved_bytes->add_at(s, bytes);
    cost->record_unguarded(moved);
    realloc_ticks->record_unguarded(update_size);
  }
};

// ShardedEngine router instruments (registry-global per run).
struct RouterMetrics {
  Counter* fallback_routes = nullptr;
  Counter* migrations = nullptr;
  Counter* migrated_ticks = nullptr;
  Counter* batches = nullptr;

  static RouterMetrics create(MetricRegistry& reg, const MetricLabels& labels);
};

// ServingEngine per-shard queue instruments.
struct ServeMetrics {
  Gauge* queue_depth = nullptr;
  Histogram* queue_wait_us = nullptr;

  static ServeMetrics create(MetricRegistry& reg, const MetricLabels& labels);
};

// ArenaStore byte-movement instruments.
struct ArenaMetrics {
  Counter* moved_bytes = nullptr;
  Counter* verified_bytes = nullptr;
  Counter* payload_moves = nullptr;

  static ArenaMetrics create(MetricRegistry& reg, const MetricLabels& labels);

  void on_move(std::uint64_t bytes) const noexcept {
    if (moved_bytes == nullptr) return;
    moved_bytes->add(bytes);
    payload_moves->inc();
  }
  void on_verify(std::uint64_t bytes) const noexcept {
    if (verified_bytes == nullptr) return;
    verified_bytes->add(bytes);
  }
};

}  // namespace memreal::obs
