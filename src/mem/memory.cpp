#include "mem/memory.h"

#include <algorithm>
#include <sstream>

namespace memreal {

Memory::Memory(Tick capacity, Tick eps_ticks, ValidationPolicy policy)
    : capacity_(capacity), eps_ticks_(eps_ticks), policy_(policy) {
  MEMREAL_CHECK(capacity > 0);
  MEMREAL_CHECK_MSG(eps_ticks >= 1,
                    "eps truncated to zero ticks — the load-factor and "
                    "resizable-bound checks would be vacuous (see Eps::of)");
  MEMREAL_CHECK_MSG(eps_ticks < capacity, "eps must be < 1");
}

Memory::Index::const_iterator Memory::iter(ItemId id) const {
  auto it = items_.find(id);
  MEMREAL_CHECK_MSG(it != items_.end(), "unknown item id " << id);
  return it->second;
}

Memory::Index::iterator Memory::iter(ItemId id) {
  auto it = items_.find(id);
  MEMREAL_CHECK_MSG(it != items_.end(), "unknown item id " << id);
  return it->second;
}

void Memory::check_extent_fits(ItemId id, Tick offset, Tick extent) const {
  // Overflow-safe form of offset + extent <= capacity: an adversarial
  // offset near 2^64 would wrap the naive sum past the capacity check.
  MEMREAL_CHECK_MSG(extent <= capacity_ && offset <= capacity_ - extent,
                    "item " << id << " beyond capacity: offset " << offset
                            << " + extent " << extent << " > " << capacity_);
}

void Memory::begin_update(Tick update_size, bool is_insert) {
  MEMREAL_CHECK_MSG(!in_update_, "nested update");
  MEMREAL_CHECK(update_size > 0);
  if (is_insert && policy_.check_load_factor) {
    MEMREAL_CHECK_MSG(
        live_mass_ + update_size + eps_ticks_ <= capacity_,
        "adversary violated the load-factor promise: live "
            << live_mass_ << " + insert " << update_size << " + eps "
            << eps_ticks_ << " > capacity " << capacity_);
  }
  in_update_ = true;
  moved_ = 0;
}

Tick Memory::end_update() {
  MEMREAL_CHECK_MSG(in_update_, "end_update without begin_update");
  in_update_ = false;
  total_moved_ += moved_;
  ++updates_;
  std::unordered_set<ItemId> dirty;
  dirty.swap(dirty_);
  if (policy_.incremental) {
    // Checking each touched item against its offset-order neighbors
    // suffices: any overlap in the final layout implies an overlapping
    // *adjacent* pair, and an adjacent pair of untouched items was
    // adjacent-or-separated (hence disjoint) before the update.
    check_incremental(dirty);
  }
  if (policy_.audit_every_n_updates != 0 &&
      updates_ % policy_.audit_every_n_updates == 0) {
    audit();
  }
  return moved_;
}

void Memory::place(ItemId id, Tick offset, Tick size, Tick extent) {
  MEMREAL_CHECK_MSG(in_update_, "layout mutation outside an update");
  MEMREAL_CHECK_MSG(items_.find(id) == items_.end(),
                    "item " << id << " already placed");
  MEMREAL_CHECK(size > 0);
  if (extent == 0) extent = size;
  MEMREAL_CHECK(extent >= size);
  check_extent_fits(id, offset, extent);
  const auto [pos, inserted] =
      index_.emplace(std::pair{offset, id}, Rec{size, extent});
  MEMREAL_CHECK(inserted);
  items_.emplace(id, pos);
  ends_.insert(offset + extent);
  live_mass_ += size;
  extent_mass_ += extent;
  moved_ += size;
  dirty_.insert(id);
}

void Memory::move_to(ItemId id, Tick offset) {
  MEMREAL_CHECK_MSG(in_update_, "layout mutation outside an update");
  auto it = iter(id);
  const Tick old_offset = it->first.first;
  if (old_offset == offset) return;
  const Rec r = it->second;
  check_extent_fits(id, offset, r.extent);
  ends_.erase(ends_.find(old_offset + r.extent));
  ends_.insert(offset + r.extent);
  auto node = index_.extract(it);
  node.key().first = offset;
  items_[id] = index_.insert(std::move(node)).position;
  moved_ += r.size;
  dirty_.insert(id);
}

void Memory::set_extent(ItemId id, Tick extent) {
  MEMREAL_CHECK_MSG(in_update_, "layout mutation outside an update");
  auto it = iter(id);
  Rec& r = it->second;
  MEMREAL_CHECK_MSG(extent >= r.size,
                    "extent " << extent << " below true size " << r.size);
  const Tick offset = it->first.first;
  check_extent_fits(id, offset, extent);
  ends_.erase(ends_.find(offset + r.extent));
  ends_.insert(offset + extent);
  extent_mass_ += extent;
  extent_mass_ -= r.extent;
  r.extent = extent;
  dirty_.insert(id);
}

void Memory::reset_extent(ItemId id) { set_extent(id, size_of(id)); }

void Memory::remove(ItemId id) {
  MEMREAL_CHECK_MSG(in_update_, "layout mutation outside an update");
  auto iit = items_.find(id);
  MEMREAL_CHECK_MSG(iit != items_.end(), "removing unknown item " << id);
  const auto it = iit->second;
  live_mass_ -= it->second.size;
  extent_mass_ -= it->second.extent;
  ends_.erase(ends_.find(it->first.first + it->second.extent));
  index_.erase(it);
  items_.erase(iit);
  dirty_.erase(id);
}

std::optional<PlacedItem> Memory::item_at(Tick offset) const {
  auto it = index_.upper_bound(std::pair{offset, kNoItem});
  if (it == index_.begin()) return std::nullopt;
  --it;
  if (it->first.first + it->second.extent > offset) return placed(it);
  return std::nullopt;
}

std::optional<PlacedItem> Memory::first_at_or_after(Tick offset) const {
  const auto it = index_.lower_bound(std::pair{offset, ItemId{0}});
  if (it == index_.end()) return std::nullopt;
  return placed(it);
}

std::optional<PlacedItem> Memory::last_before(Tick offset) const {
  auto it = index_.lower_bound(std::pair{offset, ItemId{0}});
  if (it == index_.begin()) return std::nullopt;
  return placed(std::prev(it));
}

std::optional<PlacedItem> Memory::first_item() const {
  if (index_.empty()) return std::nullopt;
  return placed(index_.begin());
}

std::optional<PlacedItem> Memory::last_item() const {
  if (index_.empty()) return std::nullopt;
  return placed(std::prev(index_.end()));
}

Memory::Neighbors Memory::neighbors_of(ItemId id) const {
  const auto it = iter(id);
  Neighbors out;
  if (it != index_.begin()) out.prev = placed(std::prev(it));
  const auto next = std::next(it);
  if (next != index_.end()) out.next = placed(next);
  return out;
}

std::vector<PlacedItem> Memory::items_in(Tick from, Tick to) const {
  std::vector<PlacedItem> out;
  for (auto it = index_.lower_bound(std::pair{from, ItemId{0}});
       it != index_.end() && it->first.first < to; ++it) {
    out.push_back(placed(it));
  }
  return out;
}

std::vector<PlacedItem> Memory::snapshot() const {
  std::vector<PlacedItem> out;
  out.reserve(index_.size());
  for (auto it = index_.begin(); it != index_.end(); ++it) {
    out.push_back(placed(it));
  }
  return out;
}

std::vector<std::pair<Tick, Tick>> Memory::gaps() const {
  std::vector<std::pair<Tick, Tick>> out;
  Tick cursor = 0;
  for (const auto& [key, r] : index_) {
    const Tick offset = key.first;
    if (offset > cursor) out.emplace_back(cursor, offset - cursor);
    cursor = std::max(cursor, offset + r.extent);
  }
  return out;
}

void Memory::fail_resizable_bound(Tick span) const {
  auto gs = gaps();
  std::sort(gs.begin(), gs.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::ostringstream os;
  for (std::size_t i = 0; i < gs.size() && i < 3; ++i) {
    os << " [off " << gs[i].first << " len " << gs[i].second << "]";
  }
  MEMREAL_CHECK_MSG(false, "resizable bound violated: span "
                               << span << " > L + eps = "
                               << live_mass_ + eps_ticks_
                               << "; largest gaps:" << os.str());
}

void Memory::check_global_bounds(Tick span) const {
  MEMREAL_CHECK_MSG(span <= capacity_, "layout beyond capacity");
  if (policy_.check_resizable_bound && span > live_mass_ + eps_ticks_) {
    fail_resizable_bound(span);
  }
  if (policy_.check_load_factor) {
    MEMREAL_CHECK_MSG(live_mass_ + eps_ticks_ <= capacity_,
                      "load factor above 1 - eps");
  }
}

void Memory::check_incremental(
    const std::unordered_set<ItemId>& dirty) const {
  for (const ItemId id : dirty) {
    const auto iit = items_.find(id);
    if (iit == items_.end()) continue;  // touched, then removed
    const auto it = iit->second;
    const Tick offset = it->first.first;
    if (it != index_.begin()) {
      const auto prev = std::prev(it);
      MEMREAL_CHECK_MSG(
          prev->first.first + prev->second.extent <= offset,
          "overlap: item " << id << " at [" << offset << ", "
                           << offset + it->second.extent
                           << ") intersects item " << prev->first.second
                           << " ending at "
                           << prev->first.first + prev->second.extent);
    }
    const auto next = std::next(it);
    if (next != index_.end()) {
      MEMREAL_CHECK_MSG(
          offset + it->second.extent <= next->first.first,
          "overlap: item " << id << " at [" << offset << ", "
                           << offset + it->second.extent
                           << ") intersects item " << next->first.second
                           << " starting at " << next->first.first);
    }
  }
  check_global_bounds(span_end());
}

void Memory::audit() const {
  MEMREAL_CHECK_MSG(items_.size() == index_.size(),
                    "id-map / offset-index size drift");
  Tick live = 0;
  Tick ext = 0;
  Tick prev_end = 0;
  Tick max_end = 0;
  ItemId prev_id = kNoItem;
  std::vector<Tick> expected_ends;
  expected_ends.reserve(index_.size());
  for (const auto& [key, r] : index_) {
    const auto [offset, id] = key;
    MEMREAL_CHECK_MSG(offset >= prev_end,
                      "overlap: item " << id << " at [" << offset << ", "
                                       << offset + r.extent
                                       << ") intersects item " << prev_id
                                       << " ending at " << prev_end);
    MEMREAL_CHECK(r.extent >= r.size);
    prev_end = offset + r.extent;
    expected_ends.push_back(prev_end);
    max_end = std::max(max_end, prev_end);
    prev_id = id;
    live += r.size;
    ext += r.extent;
  }
  MEMREAL_CHECK_MSG(live == live_mass_, "live-mass accounting drift");
  MEMREAL_CHECK_MSG(ext == extent_mass_, "extent-mass accounting drift");
  // The cached end multiset must match exactly, multiplicities included —
  // size + membership probes would miss {10,10,20} vs {10,20,20}.
  std::sort(expected_ends.begin(), expected_ends.end());
  MEMREAL_CHECK_MSG(std::equal(ends_.begin(), ends_.end(),
                               expected_ends.begin(), expected_ends.end()),
                    "span-cache drift");
  MEMREAL_CHECK_MSG(span_end() == max_end, "span-cache drift");
  check_global_bounds(max_end);
}

}  // namespace memreal
