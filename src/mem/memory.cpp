#include "mem/memory.h"

#include <algorithm>
#include <sstream>

namespace memreal {

Memory::Memory(Tick capacity, Tick eps_ticks, ValidationPolicy policy)
    : capacity_(capacity), eps_ticks_(eps_ticks), policy_(policy) {
  MEMREAL_CHECK(capacity > 0);
  MEMREAL_CHECK_MSG(eps_ticks < capacity, "eps must be < 1");
}

const Memory::Rec& Memory::rec(ItemId id) const {
  auto it = items_.find(id);
  MEMREAL_CHECK_MSG(it != items_.end(), "unknown item id " << id);
  return it->second;
}

Memory::Rec& Memory::rec(ItemId id) {
  auto it = items_.find(id);
  MEMREAL_CHECK_MSG(it != items_.end(), "unknown item id " << id);
  return it->second;
}

void Memory::begin_update(Tick update_size, bool is_insert) {
  MEMREAL_CHECK_MSG(!in_update_, "nested update");
  MEMREAL_CHECK(update_size > 0);
  if (is_insert && policy_.check_load_factor) {
    MEMREAL_CHECK_MSG(
        live_mass_ + update_size + eps_ticks_ <= capacity_,
        "adversary violated the load-factor promise: live "
            << live_mass_ << " + insert " << update_size << " + eps "
            << eps_ticks_ << " > capacity " << capacity_);
  }
  in_update_ = true;
  moved_ = 0;
}

Tick Memory::end_update() {
  MEMREAL_CHECK_MSG(in_update_, "end_update without begin_update");
  in_update_ = false;
  total_moved_ += moved_;
  ++updates_;
  if (policy_.every_n_updates != 0 &&
      updates_ % policy_.every_n_updates == 0) {
    validate();
  }
  return moved_;
}

void Memory::place(ItemId id, Tick offset, Tick size, Tick extent) {
  MEMREAL_CHECK_MSG(in_update_, "layout mutation outside an update");
  MEMREAL_CHECK_MSG(items_.find(id) == items_.end(),
                    "item " << id << " already placed");
  MEMREAL_CHECK(size > 0);
  if (extent == 0) extent = size;
  MEMREAL_CHECK(extent >= size);
  MEMREAL_CHECK_MSG(offset + extent <= capacity_,
                    "placement beyond capacity: end " << offset + extent);
  items_.emplace(id, Rec{offset, size, extent});
  live_mass_ += size;
  extent_mass_ += extent;
  moved_ += size;
}

void Memory::move_to(ItemId id, Tick offset) {
  MEMREAL_CHECK_MSG(in_update_, "layout mutation outside an update");
  Rec& r = rec(id);
  if (r.offset == offset) return;
  MEMREAL_CHECK_MSG(offset + r.extent <= capacity_,
                    "move beyond capacity: end " << offset + r.extent);
  r.offset = offset;
  moved_ += r.size;
}

void Memory::set_extent(ItemId id, Tick extent) {
  MEMREAL_CHECK_MSG(in_update_, "layout mutation outside an update");
  Rec& r = rec(id);
  MEMREAL_CHECK_MSG(extent >= r.size,
                    "extent " << extent << " below true size " << r.size);
  MEMREAL_CHECK(r.offset + extent <= capacity_);
  extent_mass_ += extent;
  extent_mass_ -= r.extent;
  r.extent = extent;
}

void Memory::reset_extent(ItemId id) { set_extent(id, rec(id).size); }

void Memory::remove(ItemId id) {
  MEMREAL_CHECK_MSG(in_update_, "layout mutation outside an update");
  auto it = items_.find(id);
  MEMREAL_CHECK_MSG(it != items_.end(), "removing unknown item " << id);
  live_mass_ -= it->second.size;
  extent_mass_ -= it->second.extent;
  items_.erase(it);
}

Tick Memory::span_end() const {
  Tick end = 0;
  for (const auto& [id, r] : items_) {
    end = std::max(end, r.offset + r.extent);
  }
  return end;
}

std::vector<PlacedItem> Memory::snapshot() const {
  std::vector<PlacedItem> out;
  out.reserve(items_.size());
  for (const auto& [id, r] : items_) {
    out.push_back(PlacedItem{id, r.offset, r.size, r.extent});
  }
  std::sort(out.begin(), out.end(),
            [](const PlacedItem& a, const PlacedItem& b) {
              return a.offset < b.offset;
            });
  return out;
}

std::vector<std::pair<Tick, Tick>> Memory::gaps() const {
  std::vector<std::pair<Tick, Tick>> out;
  Tick cursor = 0;
  for (const auto& it : snapshot()) {
    if (it.offset > cursor) out.emplace_back(cursor, it.offset - cursor);
    cursor = std::max(cursor, it.offset + it.extent);
  }
  return out;
}

void Memory::validate() const {
  const auto snap = snapshot();
  Tick live = 0;
  Tick ext = 0;
  Tick prev_end = 0;
  ItemId prev_id = kNoItem;
  for (const auto& it : snap) {
    MEMREAL_CHECK_MSG(it.offset >= prev_end,
                      "overlap: item " << it.id << " at [" << it.offset << ", "
                                       << it.offset + it.extent
                                       << ") intersects item " << prev_id
                                       << " ending at " << prev_end);
    MEMREAL_CHECK(it.extent >= it.size);
    prev_end = it.offset + it.extent;
    prev_id = it.id;
    live += it.size;
    ext += it.extent;
  }
  MEMREAL_CHECK_MSG(live == live_mass_, "live-mass accounting drift");
  MEMREAL_CHECK_MSG(ext == extent_mass_, "extent-mass accounting drift");
  MEMREAL_CHECK_MSG(prev_end <= capacity_, "layout beyond capacity");
  if (policy_.check_resizable_bound &&
      prev_end > live_mass_ + eps_ticks_) {
    auto gs = gaps();
    std::sort(gs.begin(), gs.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    std::ostringstream os;
    for (std::size_t i = 0; i < gs.size() && i < 3; ++i) {
      os << " [off " << gs[i].first << " len " << gs[i].second << "]";
    }
    MEMREAL_CHECK_MSG(false, "resizable bound violated: span "
                                 << prev_end << " > L + eps = "
                                 << live_mass_ + eps_ticks_
                                 << "; largest gaps:" << os.str());
  }
  if (policy_.check_load_factor) {
    MEMREAL_CHECK_MSG(live_mass_ + eps_ticks_ <= capacity_,
                      "load factor above 1 - eps");
  }
}

}  // namespace memreal
