// The validating memory model.
//
// This is the substrate the paper's cost model assumes: a flat address
// space [0, capacity) where placing or moving an object of size s costs s.
// Allocators perform all layout changes through this class; it
//
//  * accounts the mass moved per update (the numerator of the paper's
//    cost L/k),
//  * distinguishes an item's true size from its *extent* (the logically
//    inflated size used by SIMPLE/GEO swaps: "logically inflate item I' to
//    size |I|"),
//  * validates, per update or on demand, that extents are pairwise disjoint
//    and that a resizable allocator keeps everything inside [0, L + eps]
//    (L = live true mass), and
//  * checks the adversary's promise that live mass never exceeds
//    capacity - eps.
//
// Updates are transactional: the engine brackets each insert/delete with
// begin_update/end_update, and validation runs at transaction end so that
// allocators may pass through transient overlapping states mid-rearrange.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/check.h"
#include "util/types.h"

namespace memreal {

/// Controls how often full O(n log n) validation runs.
struct ValidationPolicy {
  /// Validate at the end of every n-th update; 0 disables periodic
  /// validation (explicit validate() still works).  Tests use 1.
  std::size_t every_n_updates = 1;
  /// Enforce span_end <= live_mass + eps (the resizable guarantee).
  /// Non-resizable allocators (windowed folklore) set this false and are
  /// checked against span_end <= capacity instead.
  bool check_resizable_bound = true;
  /// Enforce the adversary's load-factor promise on placement.
  bool check_load_factor = true;
};

/// A placed item as seen by introspection (sorted snapshots).
struct PlacedItem {
  ItemId id = kNoItem;
  Tick offset = 0;
  Tick size = 0;    ///< true size
  Tick extent = 0;  ///< logical (inflated) size; extent >= size
};

class Memory {
 public:
  Memory(Tick capacity, Tick eps_ticks, ValidationPolicy policy = {});

  // -- Transactions -------------------------------------------------------

  /// Starts accounting for one update (insert or delete) of `update_size`.
  void begin_update(Tick update_size, bool is_insert);

  /// Ends the update; returns the total true mass moved during it.  Runs
  /// full validation according to policy.
  Tick end_update();

  [[nodiscard]] bool in_update() const { return in_update_; }
  /// Mass moved so far in the open update.
  [[nodiscard]] Tick moved_in_update() const { return moved_; }

  // -- Layout mutation (allowed only inside an update) ---------------------

  /// Places a new item; charges `size` moved mass (writing the item's
  /// bytes).  extent defaults to size.
  void place(ItemId id, Tick offset, Tick size, Tick extent = 0);

  /// Moves an existing item; charges its true size iff the offset changes.
  void move_to(ItemId id, Tick offset);

  /// Logically inflates/deflates an item's extent (free: no bytes move).
  /// extent must be >= true size.
  void set_extent(ItemId id, Tick extent);

  /// Resets extent to the true size (waste-recovery "revert").
  void reset_extent(ItemId id);

  /// Removes an item (free: deallocating costs nothing in the model).
  void remove(ItemId id);

  // -- Queries -------------------------------------------------------------

  [[nodiscard]] bool contains(ItemId id) const { return items_.count(id) > 0; }
  [[nodiscard]] Tick offset_of(ItemId id) const { return rec(id).offset; }
  [[nodiscard]] Tick size_of(ItemId id) const { return rec(id).size; }
  [[nodiscard]] Tick extent_of(ItemId id) const { return rec(id).extent; }
  [[nodiscard]] Tick end_of(ItemId id) const {
    const Rec& r = rec(id);
    return r.offset + r.extent;
  }

  [[nodiscard]] std::size_t item_count() const { return items_.size(); }
  /// Sum of true sizes (the paper's L).
  [[nodiscard]] Tick live_mass() const { return live_mass_; }
  /// Sum of extents (>= live_mass; difference is the logical waste).
  [[nodiscard]] Tick extent_mass() const { return extent_mass_; }
  /// max over items of offset + extent (0 when empty).
  [[nodiscard]] Tick span_end() const;

  [[nodiscard]] Tick capacity() const { return capacity_; }
  [[nodiscard]] Tick eps_ticks() const { return eps_ticks_; }

  /// Total true mass moved since construction.
  [[nodiscard]] Tick total_moved() const { return total_moved_; }
  [[nodiscard]] std::size_t update_count() const { return updates_; }

  /// Items sorted by offset.
  [[nodiscard]] std::vector<PlacedItem> snapshot() const;

  /// Free intervals between placed extents inside [0, span_end()].
  [[nodiscard]] std::vector<std::pair<Tick, Tick>> gaps() const;

  // -- Validation ----------------------------------------------------------

  /// Full check: extents pairwise disjoint, within bounds, mass totals
  /// consistent.  Throws InvariantViolation on failure.
  void validate() const;

  ValidationPolicy& policy() { return policy_; }
  [[nodiscard]] const ValidationPolicy& policy() const { return policy_; }

 private:
  struct Rec {
    Tick offset = 0;
    Tick size = 0;
    Tick extent = 0;
  };

  [[nodiscard]] const Rec& rec(ItemId id) const;
  [[nodiscard]] Rec& rec(ItemId id);

  Tick capacity_;
  Tick eps_ticks_;
  ValidationPolicy policy_;

  std::unordered_map<ItemId, Rec> items_;
  Tick live_mass_ = 0;
  Tick extent_mass_ = 0;

  bool in_update_ = false;
  Tick moved_ = 0;
  Tick total_moved_ = 0;
  std::size_t updates_ = 0;
};

}  // namespace memreal
