// The validating memory model.
//
// This is the substrate the paper's cost model assumes: a flat address
// space [0, capacity) where placing or moving an object of size s costs s.
// Allocators perform all layout changes through this class; it
//
//  * accounts the mass moved per update (the numerator of the paper's
//    cost L/k),
//  * distinguishes an item's true size from its *extent* (the logically
//    inflated size used by SIMPLE/GEO swaps: "logically inflate item I' to
//    size |I|"),
//  * validates, incrementally per update and via periodic/explicit full
//    audits, that extents are pairwise disjoint and that a resizable
//    allocator keeps everything inside [0, L + eps] (L = live true mass),
//  * checks the adversary's promise that live mass never exceeds
//    capacity - eps, and
//  * maintains the system's *single* ordered-by-offset layout index and
//    exposes it (neighbor/successor queries, ordered iteration) so that
//    allocators never shadow it with private offset maps.
//
// Updates are transactional: the engine brackets each insert/delete with
// begin_update/end_update, and validation runs at transaction end so that
// allocators may pass through transient overlapping states mid-rearrange.
// The incremental check at the bracket close touches only the items
// mutated during the update and their offset-order neighbors — O(log n)
// per mutation instead of the O(n log n) full-snapshot audit.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/layout_store.h"
#include "util/check.h"
#include "util/types.h"

namespace memreal {

class Memory final : public LayoutStore {
 public:
  Memory(Tick capacity, Tick eps_ticks, ValidationPolicy policy = {});

  // Move-only: the id table stores iterators into the offset index, so a
  // member-wise copy would alias the source's index.
  Memory(const Memory&) = delete;
  Memory& operator=(const Memory&) = delete;
  Memory(Memory&&) = default;
  Memory& operator=(Memory&&) = default;

  // -- Transactions -------------------------------------------------------

  /// Starts accounting for one update (insert or delete) of `update_size`.
  void begin_update(Tick update_size, bool is_insert) override;

  /// Ends the update; returns the total true mass moved during it.  Runs
  /// the incremental neighbor checks and, per policy, a periodic full
  /// audit.
  Tick end_update() override;

  [[nodiscard]] bool in_update() const override { return in_update_; }
  /// Mass moved so far in the open update.
  [[nodiscard]] Tick moved_in_update() const override { return moved_; }

  // -- Layout mutation (allowed only inside an update) ---------------------

  /// Places a new item; charges `size` moved mass (writing the item's
  /// bytes).  extent defaults to size.
  void place(ItemId id, Tick offset, Tick size, Tick extent = 0) override;

  /// Moves an existing item; charges its true size iff the offset changes.
  void move_to(ItemId id, Tick offset) override;

  /// Logically inflates/deflates an item's extent (free: no bytes move).
  /// extent must be >= true size.
  void set_extent(ItemId id, Tick extent) override;

  /// Resets extent to the true size (waste-recovery "revert").
  void reset_extent(ItemId id) override;

  /// Removes an item (free: deallocating costs nothing in the model).
  void remove(ItemId id) override;

  // -- Point queries --------------------------------------------------------

  [[nodiscard]] bool contains(ItemId id) const override {
    return items_.count(id) > 0;
  }
  [[nodiscard]] Tick offset_of(ItemId id) const override {
    return iter(id)->first.first;
  }
  [[nodiscard]] Tick size_of(ItemId id) const override {
    return iter(id)->second.size;
  }
  [[nodiscard]] Tick extent_of(ItemId id) const override {
    return iter(id)->second.extent;
  }
  [[nodiscard]] Tick end_of(ItemId id) const override {
    const auto it = iter(id);
    return it->first.first + it->second.extent;
  }

  [[nodiscard]] std::size_t item_count() const override {
    return items_.size();
  }
  /// Sum of true sizes (the paper's L).
  [[nodiscard]] Tick live_mass() const override { return live_mass_; }
  /// Sum of extents (>= live_mass; difference is the logical waste).
  [[nodiscard]] Tick extent_mass() const override { return extent_mass_; }
  /// max over items of offset + extent (0 when empty).  O(1).
  [[nodiscard]] Tick span_end() const override {
    return ends_.empty() ? 0 : *ends_.rbegin();
  }

  [[nodiscard]] Tick capacity() const override { return capacity_; }
  [[nodiscard]] Tick eps_ticks() const override { return eps_ticks_; }

  /// Total true mass moved since construction.
  [[nodiscard]] Tick total_moved() const override { return total_moved_; }
  [[nodiscard]] std::size_t update_count() const override {
    return updates_;
  }

  // -- Ordered (by-offset) queries — all O(log n) ---------------------------

  /// The item whose extent covers `offset`, if any.
  [[nodiscard]] std::optional<PlacedItem> item_at(Tick offset) const override;
  /// The leftmost item placed at or beyond `offset` (successor query).
  [[nodiscard]] std::optional<PlacedItem> first_at_or_after(
      Tick offset) const override;
  /// The rightmost item placed strictly before `offset` (predecessor).
  [[nodiscard]] std::optional<PlacedItem> last_before(
      Tick offset) const override;
  /// Leftmost / rightmost placed item.
  [[nodiscard]] std::optional<PlacedItem> first_item() const override;
  [[nodiscard]] std::optional<PlacedItem> last_item() const override;
  /// Offset-order neighbors of a placed item.
  [[nodiscard]] Neighbors neighbors_of(ItemId id) const override;
  /// Items with offset in [from, to), in offset order.  O(log n + k) —
  /// one index descent plus an iterator walk, not k point queries.
  [[nodiscard]] std::vector<PlacedItem> items_in(Tick from,
                                                 Tick to) const override;

  /// Items sorted by offset.  O(n) — backed by the index, no sorting.
  [[nodiscard]] std::vector<PlacedItem> snapshot() const override;

  /// Free intervals between placed extents inside [0, span_end()].  O(n).
  [[nodiscard]] std::vector<std::pair<Tick, Tick>> gaps() const override;

  // -- Validation ----------------------------------------------------------

  /// Full O(n) check: extents pairwise disjoint, within bounds, mass
  /// totals and index caches consistent.  Throws InvariantViolation on
  /// failure.
  void audit() const override;

  [[nodiscard]] ValidationPolicy& policy() override { return policy_; }
  [[nodiscard]] const ValidationPolicy& policy() const override {
    return policy_;
  }

 private:
  struct Rec {
    Tick size = 0;
    Tick extent = 0;
  };

  /// Layout index: one entry per placed item, ordered by offset.  The id
  /// is part of the key so that transient mid-update states where two
  /// items sit at the same offset remain representable.
  using Index = std::map<std::pair<Tick, ItemId>, Rec>;

  [[nodiscard]] Index::const_iterator iter(ItemId id) const;
  [[nodiscard]] Index::iterator iter(ItemId id);
  [[nodiscard]] static PlacedItem placed(Index::const_iterator it) {
    return PlacedItem{it->first.second, it->first.first, it->second.size,
                      it->second.extent};
  }
  void check_extent_fits(ItemId id, Tick offset, Tick extent) const;
  /// Neighbor checks for the items touched this update + global bounds.
  void check_incremental(const std::unordered_set<ItemId>& dirty) const;
  void check_global_bounds(Tick span) const;
  [[noreturn]] void fail_resizable_bound(Tick span) const;

  Tick capacity_;
  Tick eps_ticks_;
  ValidationPolicy policy_;

  Index index_;
  std::unordered_map<ItemId, Index::iterator> items_;
  /// Multiset of offset+extent per item: O(1) span_end() in every state,
  /// including transiently-overlapping mid-update layouts.
  std::multiset<Tick> ends_;
  /// Items mutated during the open update (checked at the bracket close).
  std::unordered_set<ItemId> dirty_;

  Tick live_mass_ = 0;
  Tick extent_mass_ = 0;

  bool in_update_ = false;
  Tick moved_ = 0;
  Tick total_moved_ = 0;
  std::size_t updates_ = 0;
};

}  // namespace memreal
