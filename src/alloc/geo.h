// GEO — Theorem 4.1 / Algorithms 2–5 of the paper.
//
// Regime: item sizes in [eps^5, 1].  Expected update cost O~(eps^-1/2).
//
// Structure
// ---------
//  * Items of size >= sqrt(eps)/100 are "huge" and live compacted at the
//    start of memory; every huge update rearranges memory at cost
//    O(eps^-1/2).
//  * Non-huge items fall into geometric size classes
//    [eps^5 beta^{i-1}, eps^5 beta^i) with beta = 1 + sqrt(eps); there are
//    C = O(eps^-1/2 log eps^-1) classes.
//  * ell = ceil(4.5 log2(eps^-1)) nested covering levels: level j is a
//    suffix of memory with per-class mass limit m_j = 2^{ell-j+1} eps^5.
//    Level j may hold at most 2*c_{i,j} items of class i, where
//    c_{i,j} = floor(m_j / b_i).
//  * Each (class, level) pair keeps randomized insert/delete rebuild
//    thresholds drawn from [ceil(c/4), ceil(c/3)] (Lemma 4.4 randomness).
//    Every update of class i rebuilds the shallowest level whose counter
//    reached its threshold (the deepest level always fires: its threshold
//    is 1).
//  * Deletes of an item outside its deepest feasible level j*_i swap in
//    the smallest class-i item (which the invariants keep inside level
//    j*_i), logically inflating it; the waste of each swap is bounded by
//    the class width and recovered by randomized waste-recovery steps with
//    thresholds drawn from (eps/2, eps) (Lemma 4.3 randomness).
//
// Layout discipline: [huge][label 0][label 1]...[label ell], contiguous in
// extents, left-aligned at 0.  An item's label is the deepest level that
// contains it; level j = all items with label >= j.
#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "core/allocator.h"
#include "core/layout_store.h"
#include "util/rng.h"

namespace memreal {

struct GeoConfig {
  double eps = 1.0 / 64;
  std::uint64_t seed = 0xC0FFEE;
  /// Ablation T8a: deterministic thresholds (always the max of the range)
  /// instead of the randomized draws.  The paper's analysis breaks and a
  /// single-class attack can synchronize expensive rebuilds.
  bool deterministic_thresholds = false;
};

class GeoAllocator final : public Allocator {
 public:
  GeoAllocator(LayoutStore& mem, const GeoConfig& config);

  void insert(ItemId id, Tick size) override;
  void erase(ItemId id) override;
  [[nodiscard]] std::string_view name() const override { return "geo"; }
  void check_invariants() const override;

  // -- introspection --------------------------------------------------------
  [[nodiscard]] int level_count() const { return ell_; }
  [[nodiscard]] std::size_t class_count() const { return class_lo_.size(); }
  [[nodiscard]] Tick huge_threshold() const { return huge_thr_; }
  [[nodiscard]] std::size_t waste_recoveries() const {
    return waste_recoveries_;
  }
  [[nodiscard]] std::size_t level_rebuilds() const { return level_rebuilds_; }
  [[nodiscard]] std::size_t class_of_size(Tick size) const;
  [[nodiscard]] int deepest_level_for_class(std::size_t cls) const {
    return jstar_[cls];
  }
  /// Number of items currently labelled >= j (level j size in items).
  [[nodiscard]] std::size_t level_item_count(int j) const;

 private:
  struct Info {
    int label = 0;  ///< -1 = huge; 0..ell = deepest level containing item
    std::size_t cls = 0;   ///< size class (valid when label >= 0)
    std::size_t pos = 0;   ///< index in order_
  };

  using ClassSet = std::set<std::pair<Tick, ItemId>>;  ///< by logical size

  void apply_layout(std::size_t from);
  [[nodiscard]] std::size_t suffix_start_for_label(int label) const;
  void rebuild_level(int j0);
  void waste_recovery();
  void bump_counters_and_rebuild(std::size_t cls, bool is_insert);
  [[nodiscard]] std::uint64_t sample_threshold(std::uint64_t c);

  LayoutStore* mem_;
  double eps_;
  Tick eps_t_;
  Tick cap_;
  Rng rng_;
  bool deterministic_;

  Tick e5_;        ///< eps^5 * cap (min non-huge size, class base)
  Tick huge_thr_;  ///< sqrt(eps)/100 * cap
  int ell_;        ///< number of levels
  std::vector<Tick> m_;         ///< m_[j], j in [1, ell]; m_[0] = capacity
  std::vector<Tick> class_lo_;  ///< class c covers [class_lo_[c], class_hi_[c])
  std::vector<Tick> class_hi_;
  std::vector<std::vector<std::uint64_t>> c_;  ///< c_[cls][j], j in [0, ell]
  std::vector<int> jstar_;

  // Per (class, level) counters and thresholds, j in [1, ell].
  std::vector<std::vector<std::uint64_t>> ins_count_, del_count_;
  std::vector<std::vector<std::uint64_t>> ins_thr_, del_thr_;

  std::vector<ItemId> order_;  ///< sorted: huge first, then by label asc
  std::unordered_map<ItemId, Info> info_;
  std::vector<ClassSet> class_items_;
  std::size_t huge_count_ = 0;

  Tick waste_acc_ = 0;
  Tick waste_thr_ = 0;  ///< uniform in (eps/2, eps)
  std::size_t waste_recoveries_ = 0;
  std::size_t level_rebuilds_ = 0;
};

}  // namespace memreal
