#include "alloc/rsum.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <tuple>

#include "subsetsum/subsetsum.h"
#include "util/check.h"
#include "util/thresholds.h"

namespace memreal {

namespace {
using Clock = std::chrono::steady_clock;
}

RSumAllocator::RSumAllocator(LayoutStore& mem, const RSumConfig& config)
    : mem_(&mem), rng_(config.seed), eps_(config.eps) {
  MEMREAL_CHECK(eps_ > 0 && eps_ < 0.5);
  delta_ = config.delta == 0.0 ? std::pow(eps_, 0.75) : config.delta;
  MEMREAL_CHECK(delta_ > 0 && delta_ < 0.25);
  cap_ = mem_->capacity();
  const auto cap_d = static_cast<double>(cap_);

  delta_lo_ = static_cast<Tick>(delta_ * cap_d);
  delta_hi_ = static_cast<Tick>(2.0 * delta_ * cap_d);
  MEMREAL_CHECK(delta_lo_ >= 1);

  const double log_inv_eps = std::log2(1.0 / eps_);
  m_ = config.block_items
           ? config.block_items
           : 2 * static_cast<std::size_t>(std::ceil(log_inv_eps / 2.0));
  MEMREAL_CHECK(m_ >= 2);
  MEMREAL_CHECK_MSG(m_ <= 40, "block size too large for subset-sum search");

  g_ = std::max<Tick>(
      1, static_cast<Tick>(eps_ * delta_ * log_inv_eps * cap_d));
  buffer_cap_ = static_cast<Tick>(eps_ / 2.0 * cap_d);
  big_delta_ = delta_ > eps_ / 4.0;

  const double target = 0.75 * static_cast<double>(m_) * delta_ * cap_d;
  std::tie(y_target_lo_, y_target_hi_) = make_y_window(target, delta_lo_);
  MEMREAL_CHECK_MSG(y_target_lo_ >= delta_hi_,
                    "Y window [" << y_target_lo_ << ", " << y_target_hi_
                                 << "] below the max item size " << delta_hi_
                                 << " (eps/delta too extreme for RSUM)");

  resample_r();
}

std::pair<Tick, Tick> RSumAllocator::make_y_window(double target_mass,
                                                   Tick d_ticks) {
  const auto d = static_cast<double>(d_ticks);
  // Clamp in double space *before* the cast: Tick is unsigned, and
  // target - d < 0 would wrap to ~2^64 and sail past every sanity check.
  const double lo = std::max(0.0, target_mass - d);
  return {static_cast<Tick>(lo), static_cast<Tick>(target_mass + d)};
}

void RSumAllocator::resample_r() {
  const double inv = 1.0 / delta_;
  const auto md = static_cast<double>(m_);
  const auto lo =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(inv / (8 * md)));
  const auto hi = std::max<std::uint64_t>(
      lo, static_cast<std::uint64_t>(inv / (6 * md)));
  r_ = rng_.next_in(lo, hi);
}

// ---------------------------------------------------------------------------
// Layout helpers
// ---------------------------------------------------------------------------

void RSumAllocator::remove_item(ItemId id) {
  mem_->remove(id);
  loc_.erase(id);
}

void RSumAllocator::apply_moves(
    const std::vector<std::pair<ItemId, Tick>>& moves) {
  // Batched rearrangement: the memory model's index tolerates transient
  // collisions mid-batch, but the *final* positions must be collision-
  // free.  Check that unconditionally (independent of the validation
  // policy), matching the old erase-then-emplace index discipline: no two
  // movers share a final offset, no mover lands exactly on a stationary
  // item.
  std::unordered_map<Tick, ItemId> targets;  // final offset -> mover
  std::unordered_map<ItemId, char> movers;
  targets.reserve(moves.size());
  movers.reserve(moves.size());
  for (const auto& [id, off] : moves) {
    const auto [tit, fresh] = targets.emplace(off, id);
    MEMREAL_CHECK_MSG(fresh, "movers " << tit->second << " and " << id
                                       << " both land at " << off);
    movers.emplace(id, 1);
  }
  for (const auto& [id, off] : moves) {
    const auto occ = mem_->first_at_or_after(off);
    if (occ && occ->offset == off && movers.count(occ->id) == 0) {
      MEMREAL_CHECK_MSG(false, "mover " << id << " lands at " << off
                                        << " on stationary item "
                                        << occ->id);
    }
  }
  for (const auto& [id, off] : moves) {
    mem_->move_to(id, off);
  }
}

bool RSumAllocator::trash_empty() const {
  return !mem_->first_at_or_after(trash_start_).has_value();
}

Tick RSumAllocator::main_end() const {
  const auto last = mem_->last_before(trash_start_);
  return last ? last->offset + last->size : 0;
}

Tick RSumAllocator::buffer_gap() const {
  if (trash_empty()) return 0;
  const Tick me = main_end();
  MEMREAL_CHECK_MSG(trash_start_ >= me,
                    "main body runs past the trash boundary: main_end "
                        << me << " > trash_start " << trash_start_
                        << " (last main item "
                        << mem_->last_before(trash_start_)->id << ")");
  return trash_start_ - me;
}

// ---------------------------------------------------------------------------
// Updates
// ---------------------------------------------------------------------------

void RSumAllocator::insert(ItemId id, Tick size) {
  MEMREAL_CHECK_MSG(size >= delta_lo_ && size <= delta_hi_,
                    "RSUM size " << size << " outside [delta, 2delta]");
  MEMREAL_CHECK(loc_.find(id) == loc_.end());
  const bool was_empty = trash_empty();
  const Tick off = mem_->span_end();
  mem_->place(id, off, size);
  loc_[id] = Loc{/*in_trash=*/true, 0};
  if (was_empty) trash_start_ = off;
}

std::optional<std::vector<ItemId>> RSumAllocator::gather_y(ItemId id,
                                                           Tick* span_lo) {
  const Loc loc = loc_.at(id);
  // Membership rule: trash deletes gather trash neighbours; main-body
  // deletes stay inside I's block, except that the (invalid, short) stub
  // block may spill into the block immediately to its right.
  auto allowed = [&](ItemId other) {
    const auto oit = loc_.find(other);
    if (oit == loc_.end()) return false;
    if (loc.in_trash) return oit->second.in_trash;
    if (oit->second.in_trash) return false;
    if (oit->second.block == loc.block) return true;
    const bool stub = blocks_[loc.block].items.size() < m_;
    return stub && oit->second.block == loc.block + 1;
  };

  std::vector<ItemId> y_items{id};
  Tick y = mem_->size_of(id);
  Tick lo_off = mem_->offset_of(id);
  Tick hi_off = lo_off;

  // Extend right first, then left; each addition is at most 2delta, the
  // window width, so the sum cannot jump over the window.  Membership
  // (loc_) is fixed for the whole gather, so once the right neighbour is
  // rejected it stays rejected until hi_off advances — no re-querying.
  bool right_open = true;
  while (y < y_target_lo_) {
    if (right_open) {
      const auto right = mem_->first_at_or_after(hi_off + 1);
      if (right && allowed(right->id)) {
        y_items.push_back(right->id);
        y += right->size;
        hi_off = right->offset;
        continue;
      }
      right_open = false;
    }
    const auto left = mem_->last_before(lo_off);
    if (left && allowed(left->id)) {
      y_items.insert(y_items.begin(), left->id);
      y += left->size;
      lo_off = left->offset;
      continue;
    }
    return std::nullopt;  // not enough neighbours; caller rebuilds
  }
  MEMREAL_CHECK_MSG(y <= y_target_hi_, "Y overshot its window");
  *span_lo = lo_off;
  return y_items;
}

std::optional<std::vector<ItemId>> RSumAllocator::find_subset(
    const Block& block, Tick lo, Tick hi) {
  ++compat_checks_;
  std::vector<Tick> sizes;
  sizes.reserve(block.items.size());
  for (ItemId id : block.items) sizes.push_back(mem_->size_of(id));
  const auto t0 = Clock::now();
  auto res = subset_in_range_mitm(sizes, lo, hi);
  decision_seconds_ +=
      std::chrono::duration<double>(Clock::now() - t0).count();
  if (!res) {
    ++compat_failures_;
    return std::nullopt;
  }
  std::vector<ItemId> out;
  out.reserve(res->indices.size());
  for (std::size_t i : res->indices) out.push_back(block.items[i]);
  return out;
}

void RSumAllocator::push_blocks_from(std::size_t bidx) {
  // Boundary: the leftmost offset belonging to the pushed blocks (all of
  // which are still in their original spans).
  MEMREAL_CHECK(bidx < blocks_.size());
  const Tick limit = trash_empty() ? mem_->span_end() : trash_start_;
  Tick from_off = limit;
  for (std::size_t k = bidx; k < blocks_.size(); ++k) {
    for (ItemId id : blocks_[k].items) {
      from_off = std::min(from_off, mem_->offset_of(id));
    }
  }
  push_range(bidx, from_off);
}

void RSumAllocator::push_range(std::size_t bidx, Tick from_off) {
  MEMREAL_CHECK(bidx < blocks_.size());
  for (std::size_t k = bidx; k < blocks_.size(); ++k) {
    MEMREAL_CHECK_MSG(!blocks_[k].valid, "pushing a valid block");
  }
  const Tick limit = trash_empty() ? mem_->span_end() : trash_start_;
  // Gather main-body items at or right of the boundary, in offset order.
  const auto in_range = mem_->items_in(from_off, limit);
  std::vector<ItemId> pushed;
  pushed.reserve(in_range.size());
  for (const auto& item : in_range) pushed.push_back(item.id);
  // Right-align (compact) against the trash start.
  std::vector<std::pair<ItemId, Tick>> moves;
  moves.reserve(pushed.size());
  Tick cur = limit;
  for (std::size_t i = pushed.size(); i-- > 0;) {
    const ItemId id = pushed[i];
    const Tick size = mem_->size_of(id);
    MEMREAL_CHECK(cur >= size);
    cur -= size;
    moves.emplace_back(id, cur);
    loc_[id] = Loc{/*in_trash=*/true, 0};
  }
  apply_moves(moves);
  trash_start_ = cur;
  blocks_.resize(bidx);
}

void RSumAllocator::regulate_buffer_small() {
  // Rotate items from the back of the trash to its front until the buffer
  // fits.  Each rotation moves one item (cost O(1)).
  while (!trash_empty() && buffer_gap() > buffer_cap_) {
    const auto last = *mem_->last_item();
    mem_->move_to(last.id, trash_start_ - last.size);
    trash_start_ -= last.size;
  }
}

void RSumAllocator::regulate_buffer_big() {
  // Lemma 6.8: delta > eps/4, so single-item rotations are too coarse.
  // The stash block is "temporarily not contained in memory" in the paper;
  // physically we *plan* all rotations against the stash-free layout and
  // apply them as one collision-safe batch at the end, so the stash's
  // footprint can be reused by the rotated items.
  while (!trash_empty() && buffer_gap() > buffer_cap_) {
    const auto bopt = rightmost_valid();
    if (!bopt || valid_count_ <= r_) {
      rebuild();
      return;
    }
    const std::size_t bidx = *bopt;
    // Push the (invalid) blocks right of the stash so it borders the
    // buffer.
    if (bidx + 1 < blocks_.size()) push_blocks_from(bidx + 1);

    Block& stash = blocks_[bidx];
    Tick stash_lo = mem_->offset_of(stash.items.front());
    for (ItemId id : stash.items) {
      stash_lo = std::min(stash_lo, mem_->offset_of(id));
    }
    // With the stash removed, main content ends at the previous item.
    // Fail fast if stash_lo is not an actual placed offset — a stale
    // boundary would silently skew the gap arithmetic below.
    const auto at_stash = mem_->first_at_or_after(stash_lo);
    MEMREAL_CHECK(at_stash && at_stash->offset == stash_lo);
    Tick main_end2 = 0;
    if (const auto p = mem_->last_before(stash_lo)) {
      main_end2 = p->offset + p->size;
    }

    // Virtual trash (offset order), excluding nothing: the stash is not in
    // the trash.  Planned moves collect here; duplicates => bail out to a
    // rebuild (degenerate tiny-trash corner).
    std::vector<std::pair<ItemId, Tick>> plan;
    std::unordered_map<ItemId, char> planned;
    bool degenerate_rotation = false;

    auto front = mem_->first_at_or_after(trash_start_);
    Tick vt = trash_start_;        // virtual trash start
    Tick vend = mem_->span_end();  // virtual span end
    Tick gap = vt - main_end2;
    bool grew = false;
    // Grow the gap: front items hop to the end.  Each hop advances the
    // virtual trash start to the next remaining item; if the trash runs
    // dry before the window is reached, the plan cannot work — rebuild.
    while (gap < y_target_lo_) {
      const std::optional<PlacedItem> next =
          front ? mem_->first_at_or_after(front->offset + 1)
                : std::optional<PlacedItem>{};
      if (!front || !next) {
        degenerate_rotation = true;
        break;
      }
      plan.emplace_back(front->id, vend);
      planned.emplace(front->id, 1);
      vend += front->size;
      front = next;
      vt = front->offset;
      gap = vt - main_end2;
      grew = true;
    }
    // Shrink the gap: back items slide to the front.  Grow steps overshoot
    // by at most one item (< window width), so the two loops are mutually
    // exclusive; re-planning an item would corrupt the batch.
    if (!degenerate_rotation && !grew) {
      auto back = mem_->last_item();
      while (gap > y_target_hi_) {
        if (!back || back->offset < trash_start_ ||
            planned.count(back->id) > 0) {
          degenerate_rotation = true;
          break;
        }
        MEMREAL_CHECK(vt >= back->size);
        vt -= back->size;
        plan.emplace_back(back->id, vt);
        planned.emplace(back->id, 1);
        // The consumed suffix [back->offset, old span end) is vacated:
        // later appends start from its base, not the old span end.
        vend = back->offset;
        back = mem_->last_before(back->offset);
        gap = vt - main_end2;
      }
    }
    if (degenerate_rotation || gap < y_target_lo_ || gap > y_target_hi_) {
      rebuild();
      return;
    }

    // S subset of the stash with sum z: final gap y' - z <= eps/2.
    const Tick y_prime = gap;
    const Tick want_lo =
        y_prime > buffer_cap_ ? y_prime - buffer_cap_ : 0;
    auto s = find_subset(stash, want_lo, y_prime);
    if (!s) {
      if (valid_count_ - 1 < r_) {
        rebuild();
        return;
      }
      stash.valid = false;
      --valid_count_;
      push_blocks_from(bidx);
      continue;  // nothing was moved; try the next candidate
    }
    // S right-aligned at the virtual trash start; stash \ S appended.
    std::vector<char> in_s(stash.items.size(), 0);
    for (ItemId sid : *s) {
      for (std::size_t i = 0; i < stash.items.size(); ++i) {
        if (stash.items[i] == sid && !in_s[i]) {
          in_s[i] = 1;
          break;
        }
      }
    }
    Tick cur = vt;
    for (std::size_t i = s->size(); i-- > 0;) {
      const ItemId id = (*s)[i];
      cur -= mem_->size_of(id);
      plan.emplace_back(id, cur);
    }
    for (std::size_t i = 0; i < stash.items.size(); ++i) {
      if (in_s[i]) continue;
      const ItemId id = stash.items[i];
      plan.emplace_back(id, vend);
      vend += mem_->size_of(id);
    }
    apply_moves(plan);
    for (ItemId id : stash.items) loc_[id] = Loc{true, 0};
    trash_start_ = cur;
    stash.valid = false;
    --valid_count_;
    blocks_.resize(bidx);
    return;  // buffer is now y' - z <= eps/2
  }
}

std::optional<std::size_t> RSumAllocator::rightmost_valid() const {
  for (std::size_t k = blocks_.size(); k-- > 0;) {
    if (blocks_[k].valid) return k;
  }
  return std::nullopt;
}

void RSumAllocator::rebuild() {
  ++rebuilds_;
  // Collect everything, shuffle, compact, re-block from the right.
  std::vector<ItemId> all;
  all.reserve(mem_->item_count());
  for (const auto& item : mem_->snapshot()) all.push_back(item.id);
  rng_.shuffle(all);
  Tick cur = 0;
  for (ItemId id : all) {
    mem_->move_to(id, cur);  // no-op when already in place
    cur += mem_->size_of(id);
  }
  // Blocks of m items, partitioned from the right; a leftover prefix forms
  // an invalid stub block.
  blocks_.clear();
  valid_count_ = 0;
  const std::size_t n = all.size();
  const std::size_t stub = n % m_;
  std::size_t i = 0;
  if (stub > 0) {
    Block b;
    b.valid = false;
    for (; i < stub; ++i) b.items.push_back(all[i]);
    blocks_.push_back(std::move(b));
  }
  while (i < n) {
    Block b;
    b.valid = true;
    for (std::size_t k = 0; k < m_; ++k) b.items.push_back(all[i++]);
    ++valid_count_;
    blocks_.push_back(std::move(b));
  }
  for (std::size_t k = 0; k < blocks_.size(); ++k) {
    for (ItemId id : blocks_[k].items) loc_[id] = Loc{false, k};
  }
  trash_start_ = cur;  // trash empty
  resample_r();
}

void RSumAllocator::erase(ItemId id) {
  auto lit = loc_.find(id);
  MEMREAL_CHECK_MSG(lit != loc_.end(), "erase of unknown item " << id);

  // Degenerate states go straight to a rebuild (this also covers the
  // pre-first-rebuild phase, where everything is in the trash).
  if (valid_count_ == 0 || valid_count_ < r_) {
    remove_item(id);
    rebuild();
    return;
  }
  const Loc loc = lit->second;

  Tick y_span_lo = 0;
  auto y_opt = gather_y(id, &y_span_lo);
  if (!y_opt) {
    remove_item(id);
    rebuild();
    return;
  }
  std::vector<ItemId>& y_items = *y_opt;
  Tick y = 0;
  for (ItemId yi : y_items) y += mem_->size_of(yi);

  // Search for a compatible valid block from the right; incompatible
  // candidates are invalidated (but stay in place until the final push).
  std::optional<std::size_t> found;
  std::vector<ItemId> subset;
  for (;;) {
    const auto bopt = rightmost_valid();
    if (!bopt) {
      remove_item(id);
      rebuild();
      return;
    }
    const std::size_t bidx = *bopt;
    auto s = find_subset(blocks_[bidx], y > g_ ? y - g_ : 0, y);
    if (s) {
      found = bidx;
      subset = std::move(*s);
      break;
    }
    if (valid_count_ - 1 < r_) {
      remove_item(id);
      rebuild();
      return;
    }
    blocks_[bidx].valid = false;
    --valid_count_;
  }
  const std::size_t bidx = *found;
  Block& bblk = blocks_[bidx];
  const bool degenerate = !loc.in_trash && loc.block == bidx;

  // Rare corner: Y spilled into the chosen block B (stub spill adjacent to
  // the rightmost valid block).  The double-membership bookkeeping is not
  // worth the complexity — rebuild.
  if (!degenerate) {
    for (ItemId yi : y_items) {
      const auto& yl = loc_.at(yi);
      if (!yl.in_trash && yl.block == bidx) {
        remove_item(id);
        rebuild();
        return;
      }
    }
  }

  // B's original left edge (push boundary), before any moves.
  Tick b_span_lo = mem_->offset_of(bblk.items.front());
  for (ItemId bi : bblk.items) {
    b_span_lo = std::min(b_span_lo, mem_->offset_of(bi));
  }

  // Remove I before rearranging: it may occupy the very start of Y's span,
  // where the first S item lands.
  if (degenerate) {
    auto& items = bblk.items;
    items.erase(std::find(items.begin(), items.end(), id));
  } else if (!loc.in_trash) {
    auto& items = blocks_[loc.block].items;
    items.erase(std::find(items.begin(), items.end(), id));
  }
  remove_item(id);

  if (!degenerate) {
    std::vector<char> in_s(bblk.items.size(), 0);
    for (ItemId sid : subset) {
      for (std::size_t i = 0; i < bblk.items.size(); ++i) {
        if (bblk.items[i] == sid && !in_s[i]) {
          in_s[i] = 1;
          break;
        }
      }
    }
    // One batched rearrangement: S into Y's span (leaving a gap of at most
    // g at its end), Y \ {I} and B \ S into B's span.
    std::vector<std::pair<ItemId, Tick>> moves;
    moves.reserve(y_items.size() + bblk.items.size());
    Tick cur = y_span_lo;
    for (ItemId sid : subset) {
      moves.emplace_back(sid, cur);
      cur += mem_->size_of(sid);
    }
    Tick bcur = b_span_lo;
    for (ItemId yi : y_items) {
      if (yi == id) continue;
      moves.emplace_back(yi, bcur);
      bcur += mem_->size_of(yi);
    }
    for (std::size_t i = 0; i < bblk.items.size(); ++i) {
      if (in_s[i]) continue;
      moves.emplace_back(bblk.items[i], bcur);
      bcur += mem_->size_of(bblk.items[i]);
    }
    apply_moves(moves);

    if (!loc.in_trash) {
      // S replaces Y inside I's block; spilled Y members leave their
      // blocks (which are invalidated).
      Block& iblk = blocks_[loc.block];
      std::vector<ItemId> next;
      next.reserve(iblk.items.size());
      bool inserted = false;
      for (ItemId it : iblk.items) {
        const bool in_y =
            std::find(y_items.begin(), y_items.end(), it) != y_items.end();
        if (in_y) {
          if (!inserted) {
            for (ItemId sid : subset) {
              next.push_back(sid);
              loc_[sid] = Loc{false, loc.block};
            }
            inserted = true;
          }
          continue;
        }
        next.push_back(it);
      }
      if (!inserted) {
        for (ItemId sid : subset) {
          next.push_back(sid);
          loc_[sid] = Loc{false, loc.block};
        }
      }
      for (ItemId yi : y_items) {
        if (yi == id) continue;
        const Loc yl = loc_.at(yi);
        if (!yl.in_trash && yl.block != loc.block) {
          Block& ob = blocks_[yl.block];
          ob.items.erase(std::find(ob.items.begin(), ob.items.end(), yi));
          if (ob.valid) {
            ob.valid = false;
            --valid_count_;
          }
        }
        // Y \ {I} now lives in B's span; it will be pushed to the trash.
        loc_[yi] = Loc{false, bidx};
      }
      iblk.items = std::move(next);
      if (iblk.valid) {
        iblk.valid = false;
        --valid_count_;
      }
    } else {
      // I was in the trash: S items join the trash (Y's span), Y \ {I}
      // temporarily joins B (pushed right back below).
      for (ItemId sid : subset) loc_[sid] = Loc{true, 0};
      for (ItemId yi : y_items) {
        if (yi == id) continue;
        loc_[yi] = Loc{false, bidx};
      }
    }
  }

  // Invalidate B and push it, with everything to its right, into the
  // trash.  The boundary is B's *original* left edge: S may already have
  // moved left into Y's span.
  if (bblk.valid) {
    bblk.valid = false;
    --valid_count_;
  }
  push_range(bidx, std::min(b_span_lo, trash_empty() ? b_span_lo
                                                     : trash_start_));

  if (big_delta_) {
    regulate_buffer_big();
  } else {
    regulate_buffer_small();
  }
}

void RSumAllocator::check_invariants() const {
  MEMREAL_CHECK(mem_->item_count() == loc_.size());
  std::size_t vc = 0;
  std::size_t in_blocks = 0;
  for (std::size_t k = 0; k < blocks_.size(); ++k) {
    if (blocks_[k].valid) ++vc;
    in_blocks += blocks_[k].items.size();
    for (ItemId id : blocks_[k].items) {
      const auto it = loc_.find(id);
      MEMREAL_CHECK(it != loc_.end());
      MEMREAL_CHECK_MSG(!it->second.in_trash, "block item marked as trash");
      MEMREAL_CHECK(it->second.block == k);
      MEMREAL_CHECK_MSG(trash_empty() || mem_->offset_of(id) < trash_start_,
                        "block item beyond the trash boundary");
    }
    if (blocks_[k].valid) {
      MEMREAL_CHECK_MSG(blocks_[k].items.size() == m_,
                        "valid block without m items");
    }
  }
  MEMREAL_CHECK(vc == valid_count_);
  std::size_t in_trash = 0;
  for (const auto& [id, l] : loc_) {
    if (l.in_trash) {
      ++in_trash;
      MEMREAL_CHECK_MSG(mem_->offset_of(id) >= trash_start_,
                        "trash item left of the trash boundary");
    }
  }
  MEMREAL_CHECK_MSG(in_blocks + in_trash == loc_.size(),
                    "items lost between blocks and trash");
  if (!trash_empty()) {
    MEMREAL_CHECK_MSG(buffer_gap() <= std::max(buffer_cap_, y_target_hi_),
                      "buffer exceeds its bound");
  }
}

}  // namespace memreal
