#include "alloc/rsum.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "subsetsum/subsetsum.h"
#include "util/check.h"
#include "util/thresholds.h"

namespace memreal {

namespace {
using Clock = std::chrono::steady_clock;
}

RSumAllocator::RSumAllocator(Memory& mem, const RSumConfig& config)
    : mem_(&mem), rng_(config.seed), eps_(config.eps) {
  MEMREAL_CHECK(eps_ > 0 && eps_ < 0.5);
  delta_ = config.delta == 0.0 ? std::pow(eps_, 0.75) : config.delta;
  MEMREAL_CHECK(delta_ > 0 && delta_ < 0.25);
  cap_ = mem_->capacity();
  const auto cap_d = static_cast<double>(cap_);

  delta_lo_ = static_cast<Tick>(delta_ * cap_d);
  delta_hi_ = static_cast<Tick>(2.0 * delta_ * cap_d);
  MEMREAL_CHECK(delta_lo_ >= 1);

  const double log_inv_eps = std::log2(1.0 / eps_);
  m_ = config.block_items
           ? config.block_items
           : 2 * static_cast<std::size_t>(std::ceil(log_inv_eps / 2.0));
  MEMREAL_CHECK(m_ >= 2);
  MEMREAL_CHECK_MSG(m_ <= 40, "block size too large for subset-sum search");

  g_ = std::max<Tick>(
      1, static_cast<Tick>(eps_ * delta_ * log_inv_eps * cap_d));
  buffer_cap_ = static_cast<Tick>(eps_ / 2.0 * cap_d);
  big_delta_ = delta_ > eps_ / 4.0;

  const double target = 0.75 * static_cast<double>(m_) * delta_ * cap_d;
  const auto d_ticks = static_cast<double>(delta_lo_);
  y_target_lo_ = static_cast<Tick>(target - d_ticks);
  y_target_hi_ = static_cast<Tick>(target + d_ticks);
  MEMREAL_CHECK(y_target_lo_ >= delta_hi_);

  resample_r();
}

void RSumAllocator::resample_r() {
  const double inv = 1.0 / delta_;
  const auto md = static_cast<double>(m_);
  const auto lo =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(inv / (8 * md)));
  const auto hi = std::max<std::uint64_t>(
      lo, static_cast<std::uint64_t>(inv / (6 * md)));
  r_ = rng_.next_in(lo, hi);
}

// ---------------------------------------------------------------------------
// Layout helpers
// ---------------------------------------------------------------------------

void RSumAllocator::move_item(ItemId id, Tick offset) {
  const Tick old = mem_->offset_of(id);
  if (old == offset) return;
  auto oit = by_offset_.find(old);
  MEMREAL_CHECK(oit != by_offset_.end() && oit->second == id);
  by_offset_.erase(oit);
  mem_->move_to(id, offset);
  MEMREAL_CHECK_MSG(by_offset_.emplace(offset, id).second,
                    "offset collision while moving item " << id);
}

void RSumAllocator::place_new(ItemId id, Tick offset, Tick size) {
  mem_->place(id, offset, size);
  MEMREAL_CHECK_MSG(by_offset_.emplace(offset, id).second,
                    "offset collision while placing item " << id);
}

void RSumAllocator::remove_item(ItemId id) {
  auto oit = by_offset_.find(mem_->offset_of(id));
  MEMREAL_CHECK(oit != by_offset_.end() && oit->second == id);
  by_offset_.erase(oit);
  mem_->remove(id);
  loc_.erase(id);
}

void RSumAllocator::apply_moves(
    const std::vector<std::pair<ItemId, Tick>>& moves) {
  // Batched rearrangement: clear all movers' index entries first so that
  // transient key collisions between movers cannot corrupt the index.
  for (const auto& [id, off] : moves) {
    auto it = by_offset_.find(mem_->offset_of(id));
    MEMREAL_CHECK(it != by_offset_.end() && it->second == id);
    by_offset_.erase(it);
  }
  for (const auto& [id, off] : moves) {
    mem_->move_to(id, off);
    auto [pos, ok] = by_offset_.emplace(off, id);
    MEMREAL_CHECK_MSG(ok, "mover " << id << " landed at " << off
                                   << " on stationary item " << pos->second);
  }
}

Tick RSumAllocator::span_end() const {
  if (by_offset_.empty()) return 0;
  const auto& [off, id] = *by_offset_.rbegin();
  return off + mem_->size_of(id);
}

bool RSumAllocator::trash_empty() const {
  if (by_offset_.empty()) return true;
  return by_offset_.lower_bound(trash_start_) == by_offset_.end();
}

Tick RSumAllocator::main_end() const {
  auto it = by_offset_.lower_bound(trash_start_);
  if (it == by_offset_.begin()) return 0;
  --it;
  return it->first + mem_->size_of(it->second);
}

Tick RSumAllocator::buffer_gap() const {
  if (trash_empty()) return 0;
  const Tick me = main_end();
  MEMREAL_CHECK_MSG(trash_start_ >= me,
                    "main body runs past the trash boundary: main_end "
                        << me << " > trash_start " << trash_start_
                        << " (last main item "
                        << std::prev(by_offset_.lower_bound(trash_start_))
                               ->second
                        << ")");
  return trash_start_ - me;
}

// ---------------------------------------------------------------------------
// Updates
// ---------------------------------------------------------------------------

void RSumAllocator::insert(ItemId id, Tick size) {
  MEMREAL_CHECK_MSG(size >= delta_lo_ && size <= delta_hi_,
                    "RSUM size " << size << " outside [delta, 2delta]");
  MEMREAL_CHECK(loc_.find(id) == loc_.end());
  const bool was_empty = trash_empty();
  const Tick off = span_end();
  place_new(id, off, size);
  loc_[id] = Loc{/*in_trash=*/true, 0};
  if (was_empty) trash_start_ = off;
}

std::optional<std::vector<ItemId>> RSumAllocator::gather_y(ItemId id,
                                                           Tick* span_lo) {
  const Loc loc = loc_.at(id);
  // Membership rule: trash deletes gather trash neighbours; main-body
  // deletes stay inside I's block, except that the (invalid, short) stub
  // block may spill into the block immediately to its right.
  auto allowed = [&](ItemId other) {
    const auto oit = loc_.find(other);
    if (oit == loc_.end()) return false;
    if (loc.in_trash) return oit->second.in_trash;
    if (oit->second.in_trash) return false;
    if (oit->second.block == loc.block) return true;
    const bool stub = blocks_[loc.block].items.size() < m_;
    return stub && oit->second.block == loc.block + 1;
  };

  std::vector<ItemId> y_items{id};
  Tick y = mem_->size_of(id);
  Tick lo_off = mem_->offset_of(id);
  Tick hi_off = lo_off;

  auto right = by_offset_.upper_bound(hi_off);
  auto left = by_offset_.find(lo_off);
  // Extend right first, then left; each addition is at most 2delta, the
  // window width, so the sum cannot jump over the window.
  while (y < y_target_lo_) {
    if (right != by_offset_.end() && allowed(right->second)) {
      y_items.push_back(right->second);
      y += mem_->size_of(right->second);
      hi_off = right->first;
      ++right;
      continue;
    }
    if (left != by_offset_.begin()) {
      auto prev = std::prev(left);
      if (allowed(prev->second)) {
        y_items.insert(y_items.begin(), prev->second);
        y += mem_->size_of(prev->second);
        lo_off = prev->first;
        left = prev;
        continue;
      }
    }
    return std::nullopt;  // not enough neighbours; caller rebuilds
  }
  MEMREAL_CHECK_MSG(y <= y_target_hi_, "Y overshot its window");
  *span_lo = lo_off;
  return y_items;
}

std::optional<std::vector<ItemId>> RSumAllocator::find_subset(
    const Block& block, Tick lo, Tick hi) {
  ++compat_checks_;
  std::vector<Tick> sizes;
  sizes.reserve(block.items.size());
  for (ItemId id : block.items) sizes.push_back(mem_->size_of(id));
  const auto t0 = Clock::now();
  auto res = subset_in_range_mitm(sizes, lo, hi);
  decision_seconds_ +=
      std::chrono::duration<double>(Clock::now() - t0).count();
  if (!res) {
    ++compat_failures_;
    return std::nullopt;
  }
  std::vector<ItemId> out;
  out.reserve(res->indices.size());
  for (std::size_t i : res->indices) out.push_back(block.items[i]);
  return out;
}

void RSumAllocator::push_blocks_from(std::size_t bidx) {
  // Boundary: the leftmost offset belonging to the pushed blocks (all of
  // which are still in their original spans).
  MEMREAL_CHECK(bidx < blocks_.size());
  const Tick limit = trash_empty() ? span_end() : trash_start_;
  Tick from_off = limit;
  for (std::size_t k = bidx; k < blocks_.size(); ++k) {
    for (ItemId id : blocks_[k].items) {
      from_off = std::min(from_off, mem_->offset_of(id));
    }
  }
  push_range(bidx, from_off);
}

void RSumAllocator::push_range(std::size_t bidx, Tick from_off) {
  MEMREAL_CHECK(bidx < blocks_.size());
  for (std::size_t k = bidx; k < blocks_.size(); ++k) {
    MEMREAL_CHECK_MSG(!blocks_[k].valid, "pushing a valid block");
  }
  const Tick limit = trash_empty() ? span_end() : trash_start_;
  // Gather main-body items at or right of the boundary, in offset order.
  std::vector<ItemId> pushed;
  for (auto it = by_offset_.lower_bound(from_off);
       it != by_offset_.end() && it->first < limit; ++it) {
    pushed.push_back(it->second);
  }
  // Right-align (compact) against the trash start.
  std::vector<std::pair<ItemId, Tick>> moves;
  moves.reserve(pushed.size());
  Tick cur = limit;
  for (std::size_t i = pushed.size(); i-- > 0;) {
    const ItemId id = pushed[i];
    const Tick size = mem_->size_of(id);
    MEMREAL_CHECK(cur >= size);
    cur -= size;
    moves.emplace_back(id, cur);
    loc_[id] = Loc{/*in_trash=*/true, 0};
  }
  apply_moves(moves);
  trash_start_ = cur;
  blocks_.resize(bidx);
}

void RSumAllocator::regulate_buffer_small() {
  // Rotate items from the back of the trash to its front until the buffer
  // fits.  Each rotation moves one item (cost O(1)).
  while (!trash_empty() && buffer_gap() > buffer_cap_) {
    const auto& [off, id] = *by_offset_.rbegin();
    const Tick size = mem_->size_of(id);
    move_item(id, trash_start_ - size);
    trash_start_ -= size;
  }
}

void RSumAllocator::regulate_buffer_big() {
  // Lemma 6.8: delta > eps/4, so single-item rotations are too coarse.
  // The stash block is "temporarily not contained in memory" in the paper;
  // physically we *plan* all rotations against the stash-free layout and
  // apply them as one collision-safe batch at the end, so the stash's
  // footprint can be reused by the rotated items.
  while (!trash_empty() && buffer_gap() > buffer_cap_) {
    const auto bopt = rightmost_valid();
    if (!bopt || valid_count_ <= r_) {
      rebuild();
      return;
    }
    const std::size_t bidx = *bopt;
    // Push the (invalid) blocks right of the stash so it borders the
    // buffer.
    if (bidx + 1 < blocks_.size()) push_blocks_from(bidx + 1);

    Block& stash = blocks_[bidx];
    Tick stash_lo = mem_->offset_of(stash.items.front());
    for (ItemId id : stash.items) {
      stash_lo = std::min(stash_lo, mem_->offset_of(id));
    }
    // With the stash removed, main content ends at the previous item.
    Tick main_end2 = 0;
    {
      auto it = by_offset_.find(stash_lo);
      MEMREAL_CHECK(it != by_offset_.end());
      if (it != by_offset_.begin()) {
        auto p = std::prev(it);
        main_end2 = p->first + mem_->size_of(p->second);
      }
    }

    // Virtual trash (offset order), excluding nothing: the stash is not in
    // the trash.  Planned moves collect here; duplicates => bail out to a
    // rebuild (degenerate tiny-trash corner).
    std::vector<std::pair<ItemId, Tick>> plan;
    std::unordered_map<ItemId, char> planned;
    bool degenerate_rotation = false;

    auto front = by_offset_.lower_bound(trash_start_);
    Tick vt = trash_start_;  // virtual trash start
    Tick vend = span_end();  // virtual span end
    Tick gap = vt - main_end2;
    bool grew = false;
    // Grow the gap: front items hop to the end.  Each hop advances the
    // virtual trash start to the next remaining item; if the trash runs
    // dry before the window is reached, the plan cannot work — rebuild.
    while (gap < y_target_lo_) {
      if (front == by_offset_.end() || std::next(front) == by_offset_.end()) {
        degenerate_rotation = true;
        break;
      }
      const ItemId id = front->second;
      plan.emplace_back(id, vend);
      planned.emplace(id, 1);
      vend += mem_->size_of(id);
      ++front;
      vt = front->first;
      gap = vt - main_end2;
      grew = true;
    }
    // Shrink the gap: back items slide to the front.  Grow steps overshoot
    // by at most one item (< window width), so the two loops are mutually
    // exclusive; re-planning an item would corrupt the batch.
    if (!degenerate_rotation && !grew) {
      auto back = by_offset_.rbegin();
      while (gap > y_target_hi_) {
        if (back == by_offset_.rend() || back->first < trash_start_ ||
            planned.count(back->second) > 0) {
          degenerate_rotation = true;
          break;
        }
        const ItemId id = back->second;
        const Tick size = mem_->size_of(id);
        MEMREAL_CHECK(vt >= size);
        vt -= size;
        plan.emplace_back(id, vt);
        planned.emplace(id, 1);
        // The consumed suffix [back->first, old span end) is vacated:
        // later appends start from its base, not the old span end.
        vend = back->first;
        ++back;
        gap = vt - main_end2;
      }
    }
    if (degenerate_rotation || gap < y_target_lo_ || gap > y_target_hi_) {
      rebuild();
      return;
    }

    // S subset of the stash with sum z: final gap y' - z <= eps/2.
    const Tick y_prime = gap;
    const Tick want_lo =
        y_prime > buffer_cap_ ? y_prime - buffer_cap_ : 0;
    auto s = find_subset(stash, want_lo, y_prime);
    if (!s) {
      if (valid_count_ - 1 < r_) {
        rebuild();
        return;
      }
      stash.valid = false;
      --valid_count_;
      push_blocks_from(bidx);
      continue;  // nothing was moved; try the next candidate
    }
    // S right-aligned at the virtual trash start; stash \ S appended.
    std::vector<char> in_s(stash.items.size(), 0);
    for (ItemId sid : *s) {
      for (std::size_t i = 0; i < stash.items.size(); ++i) {
        if (stash.items[i] == sid && !in_s[i]) {
          in_s[i] = 1;
          break;
        }
      }
    }
    Tick cur = vt;
    for (std::size_t i = s->size(); i-- > 0;) {
      const ItemId id = (*s)[i];
      cur -= mem_->size_of(id);
      plan.emplace_back(id, cur);
    }
    for (std::size_t i = 0; i < stash.items.size(); ++i) {
      if (in_s[i]) continue;
      const ItemId id = stash.items[i];
      plan.emplace_back(id, vend);
      vend += mem_->size_of(id);
    }
    apply_moves(plan);
    for (ItemId id : stash.items) loc_[id] = Loc{true, 0};
    trash_start_ = cur;
    stash.valid = false;
    --valid_count_;
    blocks_.resize(bidx);
    return;  // buffer is now y' - z <= eps/2
  }
}

std::optional<std::size_t> RSumAllocator::rightmost_valid() const {
  for (std::size_t k = blocks_.size(); k-- > 0;) {
    if (blocks_[k].valid) return k;
  }
  return std::nullopt;
}

void RSumAllocator::rebuild() {
  ++rebuilds_;
  // Collect everything, shuffle, compact, re-block from the right.
  std::vector<ItemId> all;
  all.reserve(by_offset_.size());
  for (const auto& [off, id] : by_offset_) all.push_back(id);
  rng_.shuffle(all);
  by_offset_.clear();
  Tick cur = 0;
  for (ItemId id : all) {
    if (mem_->offset_of(id) != cur) mem_->move_to(id, cur);
    by_offset_.emplace(cur, id);
    cur += mem_->size_of(id);
  }
  // Blocks of m items, partitioned from the right; a leftover prefix forms
  // an invalid stub block.
  blocks_.clear();
  valid_count_ = 0;
  const std::size_t n = all.size();
  const std::size_t stub = n % m_;
  std::size_t i = 0;
  if (stub > 0) {
    Block b;
    b.valid = false;
    for (; i < stub; ++i) b.items.push_back(all[i]);
    blocks_.push_back(std::move(b));
  }
  while (i < n) {
    Block b;
    b.valid = true;
    for (std::size_t k = 0; k < m_; ++k) b.items.push_back(all[i++]);
    ++valid_count_;
    blocks_.push_back(std::move(b));
  }
  for (std::size_t k = 0; k < blocks_.size(); ++k) {
    for (ItemId id : blocks_[k].items) loc_[id] = Loc{false, k};
  }
  trash_start_ = cur;  // trash empty
  resample_r();
}

void RSumAllocator::erase(ItemId id) {
  auto lit = loc_.find(id);
  MEMREAL_CHECK_MSG(lit != loc_.end(), "erase of unknown item " << id);

  // Degenerate states go straight to a rebuild (this also covers the
  // pre-first-rebuild phase, where everything is in the trash).
  if (valid_count_ == 0 || valid_count_ < r_) {
    remove_item(id);
    rebuild();
    return;
  }
  const Loc loc = lit->second;

  Tick y_span_lo = 0;
  auto y_opt = gather_y(id, &y_span_lo);
  if (!y_opt) {
    remove_item(id);
    rebuild();
    return;
  }
  std::vector<ItemId>& y_items = *y_opt;
  Tick y = 0;
  for (ItemId yi : y_items) y += mem_->size_of(yi);

  // Search for a compatible valid block from the right; incompatible
  // candidates are invalidated (but stay in place until the final push).
  std::optional<std::size_t> found;
  std::vector<ItemId> subset;
  for (;;) {
    const auto bopt = rightmost_valid();
    if (!bopt) {
      remove_item(id);
      rebuild();
      return;
    }
    const std::size_t bidx = *bopt;
    auto s = find_subset(blocks_[bidx], y > g_ ? y - g_ : 0, y);
    if (s) {
      found = bidx;
      subset = std::move(*s);
      break;
    }
    if (valid_count_ - 1 < r_) {
      remove_item(id);
      rebuild();
      return;
    }
    blocks_[bidx].valid = false;
    --valid_count_;
  }
  const std::size_t bidx = *found;
  Block& bblk = blocks_[bidx];
  const bool degenerate = !loc.in_trash && loc.block == bidx;

  // Rare corner: Y spilled into the chosen block B (stub spill adjacent to
  // the rightmost valid block).  The double-membership bookkeeping is not
  // worth the complexity — rebuild.
  if (!degenerate) {
    for (ItemId yi : y_items) {
      const auto& yl = loc_.at(yi);
      if (!yl.in_trash && yl.block == bidx) {
        remove_item(id);
        rebuild();
        return;
      }
    }
  }

  // B's original left edge (push boundary), before any moves.
  Tick b_span_lo = mem_->offset_of(bblk.items.front());
  for (ItemId bi : bblk.items) {
    b_span_lo = std::min(b_span_lo, mem_->offset_of(bi));
  }

  // Remove I before rearranging: it may occupy the very start of Y's span,
  // where the first S item lands.
  if (degenerate) {
    auto& items = bblk.items;
    items.erase(std::find(items.begin(), items.end(), id));
  } else if (!loc.in_trash) {
    auto& items = blocks_[loc.block].items;
    items.erase(std::find(items.begin(), items.end(), id));
  }
  remove_item(id);

  if (!degenerate) {
    std::vector<char> in_s(bblk.items.size(), 0);
    for (ItemId sid : subset) {
      for (std::size_t i = 0; i < bblk.items.size(); ++i) {
        if (bblk.items[i] == sid && !in_s[i]) {
          in_s[i] = 1;
          break;
        }
      }
    }
    // One batched rearrangement: S into Y's span (leaving a gap of at most
    // g at its end), Y \ {I} and B \ S into B's span.
    std::vector<std::pair<ItemId, Tick>> moves;
    moves.reserve(y_items.size() + bblk.items.size());
    Tick cur = y_span_lo;
    for (ItemId sid : subset) {
      moves.emplace_back(sid, cur);
      cur += mem_->size_of(sid);
    }
    Tick bcur = b_span_lo;
    for (ItemId yi : y_items) {
      if (yi == id) continue;
      moves.emplace_back(yi, bcur);
      bcur += mem_->size_of(yi);
    }
    for (std::size_t i = 0; i < bblk.items.size(); ++i) {
      if (in_s[i]) continue;
      moves.emplace_back(bblk.items[i], bcur);
      bcur += mem_->size_of(bblk.items[i]);
    }
    apply_moves(moves);

    if (!loc.in_trash) {
      // S replaces Y inside I's block; spilled Y members leave their
      // blocks (which are invalidated).
      Block& iblk = blocks_[loc.block];
      std::vector<ItemId> next;
      next.reserve(iblk.items.size());
      bool inserted = false;
      for (ItemId it : iblk.items) {
        const bool in_y =
            std::find(y_items.begin(), y_items.end(), it) != y_items.end();
        if (in_y) {
          if (!inserted) {
            for (ItemId sid : subset) {
              next.push_back(sid);
              loc_[sid] = Loc{false, loc.block};
            }
            inserted = true;
          }
          continue;
        }
        next.push_back(it);
      }
      if (!inserted) {
        for (ItemId sid : subset) {
          next.push_back(sid);
          loc_[sid] = Loc{false, loc.block};
        }
      }
      for (ItemId yi : y_items) {
        if (yi == id) continue;
        const Loc yl = loc_.at(yi);
        if (!yl.in_trash && yl.block != loc.block) {
          Block& ob = blocks_[yl.block];
          ob.items.erase(std::find(ob.items.begin(), ob.items.end(), yi));
          if (ob.valid) {
            ob.valid = false;
            --valid_count_;
          }
        }
        // Y \ {I} now lives in B's span; it will be pushed to the trash.
        loc_[yi] = Loc{false, bidx};
      }
      iblk.items = std::move(next);
      if (iblk.valid) {
        iblk.valid = false;
        --valid_count_;
      }
    } else {
      // I was in the trash: S items join the trash (Y's span), Y \ {I}
      // temporarily joins B (pushed right back below).
      for (ItemId sid : subset) loc_[sid] = Loc{true, 0};
      for (ItemId yi : y_items) {
        if (yi == id) continue;
        loc_[yi] = Loc{false, bidx};
      }
    }
  }

  // Invalidate B and push it, with everything to its right, into the
  // trash.  The boundary is B's *original* left edge: S may already have
  // moved left into Y's span.
  if (bblk.valid) {
    bblk.valid = false;
    --valid_count_;
  }
  push_range(bidx, std::min(b_span_lo, trash_empty() ? b_span_lo
                                                     : trash_start_));

  if (big_delta_) {
    regulate_buffer_big();
  } else {
    regulate_buffer_small();
  }
}

void RSumAllocator::check_invariants() const {
  MEMREAL_CHECK(by_offset_.size() == loc_.size());
  std::size_t vc = 0;
  std::size_t in_blocks = 0;
  for (std::size_t k = 0; k < blocks_.size(); ++k) {
    if (blocks_[k].valid) ++vc;
    in_blocks += blocks_[k].items.size();
    for (ItemId id : blocks_[k].items) {
      const auto it = loc_.find(id);
      MEMREAL_CHECK(it != loc_.end());
      MEMREAL_CHECK_MSG(!it->second.in_trash, "block item marked as trash");
      MEMREAL_CHECK(it->second.block == k);
      MEMREAL_CHECK_MSG(trash_empty() || mem_->offset_of(id) < trash_start_,
                        "block item beyond the trash boundary");
    }
    if (blocks_[k].valid) {
      MEMREAL_CHECK_MSG(blocks_[k].items.size() == m_,
                        "valid block without m items");
    }
  }
  MEMREAL_CHECK(vc == valid_count_);
  std::size_t in_trash = 0;
  for (const auto& [id, l] : loc_) {
    if (l.in_trash) {
      ++in_trash;
      MEMREAL_CHECK_MSG(mem_->offset_of(id) >= trash_start_,
                        "trash item left of the trash boundary");
    }
  }
  MEMREAL_CHECK_MSG(in_blocks + in_trash == loc_.size(),
                    "items lost between blocks and trash");
  if (!trash_empty()) {
    MEMREAL_CHECK_MSG(buffer_gap() <= std::max(buffer_cap_, y_target_hi_),
                      "buffer exceeds its bound");
  }
}

}  // namespace memreal
