// A name-keyed factory over all allocators, used by the harness, benches,
// the fuzzer and the allocator_race example.
//
// Besides construction, the registry carries per-allocator *metadata*
// (AllocatorInfo): the size regime the allocator guarantees to serve, the
// eps/delta defaults it is usually run with, and a generous amortized cost
// budget.  The differential fuzzer enumerates targets through this metadata
// so that every generated sequence is admissible for every allocator it is
// replayed against, and so cost blowouts can be flagged without hard-coding
// per-allocator knowledge outside the registry.
//
// Tests may inject additional (deliberately broken) allocators at runtime
// via register_allocator; built-in names cannot be replaced.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/allocator.h"
#include "core/layout_store.h"

namespace memreal {

/// Everything an allocator needs to instantiate itself for a run.
struct AllocatorParams {
  double eps = 1.0 / 64;
  double delta = 0.0;  ///< RSUM only; 0 = eps^{3/4}
  std::uint64_t seed = 1;
};

using AllocatorFactory =
    std::function<std::unique_ptr<Allocator>(LayoutStore&, const AllocatorParams&)>;

/// The item-size band an allocator guarantees to serve, as a function of
/// eps: sizes (as fractions of capacity) in
///   [lo_factor * eps^lo_pow, hi_factor * eps^hi_pow).
/// Converted to ticks with a >= 1 clamp, mirroring Eps::of.
struct SizeProfile {
  double lo_factor = 1.0;
  double lo_pow = 1.0;
  double hi_factor = 2.0;
  double hi_pow = 1.0;
  /// DISCRETE-style structured sizes: generators must draw a small fixed
  /// palette from the band and reuse it, instead of sampling freely.
  bool fixed_palette = false;

  [[nodiscard]] Tick min_size(double eps, Tick capacity) const;
  [[nodiscard]] Tick max_size(double eps, Tick capacity) const;

  friend bool operator==(const SizeProfile&, const SizeProfile&) = default;
};

/// A (deliberately generous) amortized cost ceiling:
///   ratio_cost <= factor * (1/eps)^pow * max(1, log2(1/eps)).
/// The fuzzer flags runs that exceed it — the budgets are calibrated with
/// ample slack above the paper's bounds, so a trip means a blowout, not a
/// bad constant.
struct CostBudget {
  double factor = 8.0;
  double pow = 0.0;

  [[nodiscard]] double bound(double eps) const;
};

/// The size shape of a workload: the tick band its inserts draw from and
/// whether the sizes form a small reused palette.  Drivers derive one from
/// a generator's configuration and ask AllocatorInfo::serves before a run,
/// so an inadmissible (workload, allocator) pair is rejected up front with
/// a reason instead of failing mid-run.
struct WorkloadShape {
  Tick min_size = 1;  ///< smallest insert, inclusive
  Tick max_size = 1;  ///< largest insert, inclusive
  /// Sizes are drawn once as a small fixed set and reused (DISCRETE-style
  /// structured sizes) rather than sampled freely from the band.
  bool fixed_palette = false;
};

/// Registry metadata for one allocator: everything the fuzzer needs to
/// generate admissible workloads and judge the run.
struct AllocatorInfo {
  std::string name;
  SizeProfile sizes;
  CostBudget budget;
  double default_eps = 1.0 / 64;
  double default_delta = 0.0;
  /// Serves *any* well-formed sequence (the folklore baselines).  Universal
  /// allocators join every fuzz target group as cross-checking references.
  bool universal = false;
  /// Included in memreal_fuzz's default target set.
  bool fuzz_default = true;
  /// Largest eps the allocator's guarantee (and implementation) supports;
  /// serves() rejects coarser regimes.  FLEXHASH's hashed placement needs
  /// eps <= 1/16 — beyond that its headroom constants collapse and items
  /// land past the end of memory.
  double max_eps = 0.25;

  /// True when this allocator guarantees to serve every sequence of
  /// `shape` at (`eps`, `capacity`): the shape's band lies inside the
  /// allocator's SizeProfile band and a fixed-palette requirement is met.
  /// Universal allocators serve every shape.  On rejection, `why` (when
  /// non-null) receives a one-line reason naming the violated bound.
  [[nodiscard]] bool serves(const WorkloadShape& shape, double eps,
                            Tick capacity, std::string* why = nullptr) const;
};

/// Returns the factory for `name`; throws InvariantViolation for unknown
/// names.  Known names: folklore-compact, folklore-windowed, simple, geo,
/// tinyslab, flexhash, combined, rsum, discrete — plus any runtime
/// registrations.
[[nodiscard]] AllocatorFactory allocator_factory(const std::string& name);

/// All registered allocator names (built-ins first, then runtime extras in
/// registration order).
[[nodiscard]] std::vector<std::string> allocator_names();

/// Metadata for `name`; throws InvariantViolation for unknown names.
[[nodiscard]] AllocatorInfo allocator_info(const std::string& name);

/// Metadata for every registered allocator, in allocator_names() order.
[[nodiscard]] std::vector<AllocatorInfo> allocator_infos();

/// Registers a runtime allocator (tests use this to plant broken
/// allocators as fuzz targets).  Throws if the name is empty or already
/// registered.
void register_allocator(AllocatorInfo info, AllocatorFactory factory);

/// Removes a runtime registration; built-ins cannot be removed.  Throws
/// for unknown or built-in names.
void unregister_allocator(const std::string& name);

/// Convenience: construct by name.
[[nodiscard]] std::unique_ptr<Allocator> make_allocator(
    const std::string& name, LayoutStore& mem, const AllocatorParams& params);

}  // namespace memreal
