// A name-keyed factory over all allocators, used by the harness, benches
// and the allocator_race example.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/allocator.h"
#include "mem/memory.h"

namespace memreal {

/// Everything an allocator needs to instantiate itself for a run.
struct AllocatorParams {
  double eps = 1.0 / 64;
  double delta = 0.0;  ///< RSUM only; 0 = eps^{3/4}
  std::uint64_t seed = 1;
};

using AllocatorFactory =
    std::function<std::unique_ptr<Allocator>(Memory&, const AllocatorParams&)>;

/// Returns the factory for `name`; throws InvariantViolation for unknown
/// names.  Known names: folklore-compact, folklore-windowed, simple, geo,
/// tinyslab, flexhash, combined, rsum.
[[nodiscard]] AllocatorFactory allocator_factory(const std::string& name);

/// All registered allocator names.
[[nodiscard]] std::vector<std::string> allocator_names();

/// Convenience: construct by name.
[[nodiscard]] std::unique_ptr<Allocator> make_allocator(
    const std::string& name, Memory& mem, const AllocatorParams& params);

}  // namespace memreal
