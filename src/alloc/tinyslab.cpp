#include "alloc/tinyslab.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <memory>

#include "util/check.h"

namespace memreal {

namespace {

class IdentityUnitSpace final : public UnitSpace {
 public:
  explicit IdentityUnitSpace(Tick unit_size) : m_(unit_size) {}
  [[nodiscard]] Tick unit_offset(std::size_t unit) const override {
    return static_cast<Tick>(unit) * m_;
  }
  void on_unit_created(std::size_t) override {}
  void on_unit_destroyed(std::size_t) override {}

 private:
  Tick m_;
};

[[nodiscard]] Tick floor_pow2(Tick x) {
  MEMREAL_CHECK(x >= 1);
  return Tick{1} << (63 - std::countl_zero(x));
}

[[nodiscard]] Tick ceil_pow2(Tick x) {
  MEMREAL_CHECK(x >= 1);
  const Tick f = floor_pow2(x);
  return f == x ? x : f << 1;
}

}  // namespace

TinySlabAllocator::TinySlabAllocator(LayoutStore& mem,
                                     const TinySlabConfig& config,
                                     UnitSpace* space)
    : mem_(&mem), rng_(config.seed) {
  const double eps = config.eps;
  MEMREAL_CHECK(eps > 0 && eps < 0.5);
  const auto cap_d = static_cast<double>(mem_->capacity());

  max_size_ = config.max_size
                  ? config.max_size
                  : static_cast<Tick>(std::pow(eps, 4.0) * cap_d);
  min_size_ = config.min_size ? config.min_size : max_size_ / 4096;
  MEMREAL_CHECK_MSG(min_size_ >= 1, "capacity too small for tiny items");
  MEMREAL_CHECK(min_size_ <= max_size_);
  slack_budget_ = config.slack_budget
                      ? config.slack_budget
                      : static_cast<Tick>(eps / 4.0 * cap_d);

  // Unit size: the largest power of two <= eps^3 * capacity, but at least
  // large enough to host the largest class's slab.
  M_ = floor_pow2(std::max<Tick>(
      16 * max_size_, static_cast<Tick>(std::pow(eps, 3.0) * cap_d)));

  // Size classes: extents e_k descending with ratio rho = 1 + eps/4,
  // starting at max_size_ and stopping at min_size_.
  const double rho = 1.0 + eps / 4.0;
  double e = static_cast<double>(max_size_);
  while (true) {
    auto ek = static_cast<Tick>(e);
    if (!extent_.empty() && ek >= extent_.back()) ek = extent_.back() - 1;
    if (ek < min_size_) break;
    extent_.push_back(ek);
    if (ek == min_size_) break;
    e /= rho;
    MEMREAL_CHECK_MSG(extent_.size() < (1u << 22), "class explosion");
  }
  MEMREAL_CHECK(!extent_.empty());
  if (extent_.back() > min_size_) extent_.push_back(min_size_);

  sigma_.resize(extent_.size());
  slots_per_slab_.resize(extent_.size());
  std::size_t max_level = 0;
  for (std::size_t k = 0; k < extent_.size(); ++k) {
    sigma_[k] = std::min(M_, ceil_pow2(4 * extent_[k]));
    slots_per_slab_[k] = static_cast<std::size_t>(sigma_[k] / extent_[k]);
    MEMREAL_CHECK(slots_per_slab_[k] >= 4);
    max_level = std::max(max_level, level_of_sigma(sigma_[k]));
  }
  levels_ = max_level + 1;
  free_.resize(levels_);
  class_slabs_.resize(extent_.size());

  if (space != nullptr) {
    space_ = space;
  } else {
    owned_space_ = std::make_unique<IdentityUnitSpace>(M_);
    space_ = owned_space_.get();
  }
  compact_threshold_ = rng_.next_tick_in(slack_budget_ / 2, slack_budget_);
}

std::size_t TinySlabAllocator::level_of_sigma(Tick sigma) const {
  MEMREAL_CHECK(sigma >= 1 && sigma <= M_ && (M_ % sigma) == 0);
  return static_cast<std::size_t>(std::countr_zero(M_ / sigma));
}

std::size_t TinySlabAllocator::class_of_size(Tick size) const {
  MEMREAL_CHECK_MSG(size >= min_size_ && size <= max_size_,
                    "tiny size " << size << " out of range");
  // extent_ is strictly decreasing; find the last k with e_k >= size.
  auto it = std::lower_bound(extent_.begin(), extent_.end(), size,
                             [](Tick ek, Tick s) { return ek >= s; });
  MEMREAL_CHECK(it != extent_.begin());
  const auto k = static_cast<std::size_t>(it - extent_.begin()) - 1;
  MEMREAL_CHECK(extent_[k] >= size);
  MEMREAL_CHECK(k + 1 == extent_.size() || extent_[k + 1] < size);
  return k;
}

Tick TinySlabAllocator::item_offset(const Slab& s, std::size_t slot) const {
  return space_->unit_offset(s.unit) + s.off +
         static_cast<Tick>(slot) * extent_[s.cls];
}

void TinySlabAllocator::create_unit() {
  const std::size_t u = units_++;
  unit_slabs_.resize(units_);
  space_->on_unit_created(u);
  free_[0].insert(FreeAddr{u, 0});
  free_mass_ += M_;
}

TinySlabAllocator::FreeAddr TinySlabAllocator::alloc_block(
    std::size_t level) {
  // Find the deepest available level <= `level` with a free block,
  // preferring an exact fit, then splitting the lowest-address larger
  // block.
  std::size_t from = level + 1;
  for (std::size_t l = level + 1; l-- > 0;) {
    if (!free_[l].empty()) {
      from = l;
      break;
    }
  }
  if (from == level + 1) {
    create_unit();
    from = 0;
  }
  FreeAddr addr = *free_[from].begin();
  free_[from].erase(free_[from].begin());
  // Split down to the requested level; upper halves stay free.
  for (std::size_t l = from; l < level; ++l) {
    const Tick half = M_ >> (l + 1);
    free_[l + 1].insert(FreeAddr{addr.unit, addr.off + half});
  }
  free_mass_ -= M_ >> level;
  return addr;
}

void TinySlabAllocator::free_block(FreeAddr addr, std::size_t level) {
  free_mass_ += M_ >> level;
  // Coalesce with the buddy while possible.
  while (level > 0) {
    const Tick size = M_ >> level;
    const FreeAddr buddy{addr.unit, addr.off ^ size};
    auto it = free_[level].find(buddy);
    if (it == free_[level].end()) break;
    free_[level].erase(it);
    addr.off = std::min(addr.off, buddy.off);
    --level;
  }
  free_[level].insert(addr);
  if (level == 0) destroy_trailing_empty_units();
}

void TinySlabAllocator::destroy_trailing_empty_units() {
  while (units_ > 0) {
    const FreeAddr last{units_ - 1, 0};
    auto it = free_[0].find(last);
    if (it == free_[0].end()) break;
    free_[0].erase(it);
    free_mass_ -= M_;
    --units_;
    MEMREAL_CHECK(unit_slabs_.back().empty());
    unit_slabs_.pop_back();
    space_->on_unit_destroyed(units_);
  }
}

std::size_t TinySlabAllocator::alloc_slab(std::size_t cls) {
  const FreeAddr addr = alloc_block(level_of_sigma(sigma_[cls]));
  std::size_t id;
  if (!slab_free_ids_.empty()) {
    id = slab_free_ids_.back();
    slab_free_ids_.pop_back();
  } else {
    id = slabs_.size();
    slabs_.emplace_back();
  }
  Slab& s = slabs_[id];
  s.cls = cls;
  s.unit = addr.unit;
  s.off = addr.off;
  s.slots.clear();
  class_slabs_[cls].push_back(id);
  unit_slabs_[addr.unit].insert(id);
  return id;
}

void TinySlabAllocator::release_slab(std::size_t slab_id) {
  Slab& s = slabs_[slab_id];
  MEMREAL_CHECK(s.slots.empty());
  MEMREAL_CHECK(class_slabs_[s.cls].back() == slab_id);
  class_slabs_[s.cls].pop_back();
  unit_slabs_[s.unit].erase(slab_id);
  slab_free_ids_.push_back(slab_id);
  free_block(FreeAddr{s.unit, s.off}, level_of_sigma(sigma_[s.cls]));
}

void TinySlabAllocator::place_item(ItemId id, Tick size, std::size_t slab_id,
                                   std::size_t slot, bool is_new) {
  const Slab& s = slabs_[slab_id];
  const Tick off = item_offset(s, slot);
  if (is_new) {
    mem_->place(id, off, size, extent_[s.cls]);
    extent_mass_ += extent_[s.cls];
  } else {
    mem_->move_to(id, off);
  }
  where_[id] = {slab_id, slot};
}

void TinySlabAllocator::insert(ItemId id, Tick size) {
  MEMREAL_CHECK_MSG(where_.find(id) == where_.end(), "duplicate id " << id);
  const std::size_t cls = class_of_size(size);
  std::size_t slab_id;
  if (!class_slabs_[cls].empty() &&
      slabs_[class_slabs_[cls].back()].slots.size() < slots_per_slab_[cls]) {
    slab_id = class_slabs_[cls].back();
  } else {
    slab_id = alloc_slab(cls);
  }
  Slab& s = slabs_[slab_id];
  const std::size_t slot = s.slots.size();
  s.slots.push_back(id);
  place_item(id, size, slab_id, slot, /*is_new=*/true);
}

void TinySlabAllocator::erase(ItemId id) {
  auto wit = where_.find(id);
  MEMREAL_CHECK_MSG(wit != where_.end(), "erase of unknown tiny item " << id);
  const auto [slab_id, slot] = wit->second;
  Slab& s = slabs_[slab_id];
  const std::size_t cls = s.cls;

  // Swap the class's globally last item into the hole (exact extent fit).
  const std::size_t last_slab_id = class_slabs_[cls].back();
  Slab& last = slabs_[last_slab_id];
  MEMREAL_CHECK(!last.slots.empty());
  const ItemId tail = last.slots.back();
  last.slots.pop_back();
  extent_mass_ -= extent_[cls];
  mem_->remove(id);
  where_.erase(wit);
  if (tail != id) {
    // `id` occupied (slab_id, slot); move `tail` there.
    s.slots[slot] = tail;
    place_item(tail, mem_->size_of(tail), slab_id, slot, /*is_new=*/false);
  } else {
    MEMREAL_CHECK(slab_id == last_slab_id &&
                  slot == last.slots.size());
  }
  if (last.slots.empty()) release_slab(last_slab_id);

  if (free_mass_ > compact_threshold_) {
    compact_all();
    compact_threshold_ =
        rng_.next_tick_in(slack_budget_ / 2, slack_budget_);
  }
}

void TinySlabAllocator::compact_all() {
  ++compactions_;
  // Gather all items per class in order, then repack: classes in
  // descending slab size keep every slab aligned under a bump cursor.
  std::vector<std::size_t> class_order(extent_.size());
  for (std::size_t k = 0; k < class_order.size(); ++k) class_order[k] = k;
  std::stable_sort(class_order.begin(), class_order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return sigma_[a] > sigma_[b];
                   });

  std::vector<std::vector<ItemId>> items(extent_.size());
  for (std::size_t k = 0; k < extent_.size(); ++k) {
    for (std::size_t slab_id : class_slabs_[k]) {
      for (ItemId id : slabs_[slab_id].slots) items[k].push_back(id);
    }
  }
  // Reset slab structures; every existing unit becomes one fully free
  // block (items are about to be re-placed).
  for (auto& per_class : class_slabs_) per_class.clear();
  for (auto& per_unit : unit_slabs_) per_unit.clear();
  for (auto& level : free_) level.clear();
  slab_free_ids_.clear();
  slabs_.clear();
  for (std::size_t u = 0; u < units_; ++u) free_[0].insert(FreeAddr{u, 0});
  free_mass_ = static_cast<Tick>(units_) * M_;

  Tick cursor = 0;
  for (std::size_t k : class_order) {
    if (items[k].empty()) continue;
    const std::size_t per = slots_per_slab_[k];
    for (std::size_t base = 0; base < items[k].size(); base += per) {
      // Bump-allocate one slab; cursor is already sigma-aligned because
      // all previously placed slabs were no smaller (powers of two).
      MEMREAL_CHECK(cursor % sigma_[k] == 0);
      const std::size_t unit = static_cast<std::size_t>(cursor / M_);
      while (unit >= units_) create_unit();
      take_block_at(unit, cursor % M_, level_of_sigma(sigma_[k]));
      const std::size_t slab_id = slabs_.size();
      slabs_.emplace_back();
      Slab& s = slabs_[slab_id];
      s.cls = k;
      s.unit = unit;
      s.off = cursor % M_;
      class_slabs_[k].push_back(slab_id);
      unit_slabs_[unit].insert(slab_id);
      const std::size_t n = std::min(per, items[k].size() - base);
      for (std::size_t i = 0; i < n; ++i) {
        const ItemId id = items[k][base + i];
        s.slots.push_back(id);
        mem_->move_to(id, item_offset(s, i));
        where_[id] = {slab_id, i};
      }
      cursor += sigma_[k];
    }
  }
  destroy_trailing_empty_units();
}

void TinySlabAllocator::take_block_at(std::size_t unit, Tick off,
                                      std::size_t level) {
  // Removes the free block [off, off + (M >> level)) from the free lists,
  // splitting an ancestor block if necessary.  The caller guarantees the
  // range is currently free.
  std::size_t l = level + 1;
  Tick boff = 0;
  while (l-- > 0) {
    const Tick blk = M_ >> l;
    boff = off & ~(blk - 1);
    auto it = free_[l].find(FreeAddr{unit, boff});
    if (it == free_[l].end()) continue;
    free_[l].erase(it);
    // Split down, keeping the half that contains `off`.
    while (l < level) {
      const Tick half = M_ >> (l + 1);
      const Tick mid = boff + half;
      if (off < mid) {
        free_[l + 1].insert(FreeAddr{unit, mid});
      } else {
        free_[l + 1].insert(FreeAddr{unit, boff});
        boff = mid;
      }
      ++l;
    }
    free_mass_ -= M_ >> level;
    return;
  }
  MEMREAL_CHECK_MSG(false, "take_block_at: range not free");
}

void TinySlabAllocator::replace_unit_items(std::size_t unit) {
  MEMREAL_CHECK(unit < units_);
  for (std::size_t slab_id : unit_slabs_[unit]) {
    const Slab& s = slabs_[slab_id];
    for (std::size_t i = 0; i < s.slots.size(); ++i) {
      mem_->move_to(s.slots[i], item_offset(s, i));
    }
  }
}

void TinySlabAllocator::check_invariants() const {
  // Slab alignment and containment within units.
  Tick used_mass = 0;
  for (std::size_t k = 0; k < class_slabs_.size(); ++k) {
    for (std::size_t j = 0; j < class_slabs_[k].size(); ++j) {
      const Slab& s = slabs_[class_slabs_[k][j]];
      MEMREAL_CHECK(s.cls == k);
      MEMREAL_CHECK_MSG(s.off % sigma_[k] == 0, "slab misaligned");
      MEMREAL_CHECK_MSG(s.off + sigma_[k] <= M_, "slab spans units");
      MEMREAL_CHECK(s.unit < units_);
      MEMREAL_CHECK(unit_slabs_[s.unit].count(class_slabs_[k][j]) == 1);
      // Only the last slab of a class may be partially filled.
      if (j + 1 < class_slabs_[k].size()) {
        MEMREAL_CHECK_MSG(s.slots.size() == slots_per_slab_[k],
                          "non-final slab not full");
      }
      MEMREAL_CHECK(s.slots.size() <= slots_per_slab_[k]);
      MEMREAL_CHECK_MSG(!s.slots.empty(), "empty slab not released");
      used_mass += sigma_[k];
      // Items sit at their slot pitch and have the class extent.
      for (std::size_t i = 0; i < s.slots.size(); ++i) {
        const ItemId id = s.slots[i];
        MEMREAL_CHECK(mem_->offset_of(id) == item_offset(s, i));
        MEMREAL_CHECK(mem_->extent_of(id) == extent_[k]);
        auto wit = where_.find(id);
        MEMREAL_CHECK(wit != where_.end() &&
                      wit->second.first == class_slabs_[k][j] &&
                      wit->second.second == i);
      }
    }
  }
  // Free + used block mass covers all units exactly.
  Tick fm = 0;
  for (std::size_t l = 0; l < free_.size(); ++l) {
    for (const FreeAddr& a : free_[l]) {
      MEMREAL_CHECK(a.unit < units_);
      MEMREAL_CHECK(a.off % (M_ >> l) == 0);
      fm += M_ >> l;
    }
  }
  MEMREAL_CHECK_MSG(fm == free_mass_, "free-mass accounting drift");
  MEMREAL_CHECK_MSG(used_mass + fm == static_cast<Tick>(units_) * M_,
                    "unit mass not partitioned into slabs and free blocks");
}

}  // namespace memreal
