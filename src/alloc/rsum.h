// RSUM — Theorem 6.1 / Algorithm 6: the allocator for delta-random-item
// sequences (sizes uniform in [delta, 2delta], random deletes).
//
// Expected update cost O(log eps^-1); the items to move per update are
// computed in expected O(eps^-1/2) time via meet-in-the-middle subset sums.
//
// Mechanics (Section 6):
//  * Items in the main body are grouped into blocks of
//    m = 2*ceil(log2(eps^-1)/2) items, marked valid until touched.
//  * A delete gathers a neighbourhood Y around the deleted item with total
//    size y in (3/4)m*delta ± delta, then scans valid blocks from the right
//    for one holding a subset S with sum in [y - g, y]
//    (g = eps*delta*log2(eps^-1)); failed candidates are invalidated.
//    S replaces Y; Y\{I} and B\S fill B's region; B and everything to its
//    right is pushed into the trash can (a suffix of memory), compacted.
//  * A buffer (free gap) separates main body and trash; items rotate from
//    the trash's back to its front to keep the buffer <= eps/2
//    (delta <= eps/4), or via the stash-and-rotate scheme of Lemma 6.8
//    (delta > eps/4).
//  * When fewer than r ~ U(delta^-1/(8m), delta^-1/(6m)) valid blocks
//    remain, RSUM randomly permutes all items, compacts, re-blocks from
//    the right, and resamples r.
//  * Inserts append to the trash at cost 1.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/allocator.h"
#include "core/layout_store.h"
#include "util/rng.h"

namespace memreal {

struct RSumConfig {
  double eps = 1.0 / 256;
  double delta = 0.0;  ///< 0 = eps^{3/4}
  std::uint64_t seed = 0x5D5;
  /// Items per block; 0 = the paper's 2*ceil(log2(eps^-1)/2).
  /// (Ablation T8c overrides this.)
  std::size_t block_items = 0;
};

class RSumAllocator final : public Allocator {
 public:
  RSumAllocator(LayoutStore& mem, const RSumConfig& config);

  void insert(ItemId id, Tick size) override;
  void erase(ItemId id) override;
  [[nodiscard]] std::string_view name() const override { return "rsum"; }
  void check_invariants() const override;
  [[nodiscard]] double decision_seconds() const override {
    return decision_seconds_;
  }

  // -- introspection --------------------------------------------------------
  [[nodiscard]] std::size_t block_size() const { return m_; }
  [[nodiscard]] Tick gap_bound() const { return g_; }
  [[nodiscard]] bool big_delta_mode() const { return big_delta_; }
  [[nodiscard]] std::size_t rebuilds() const { return rebuilds_; }
  [[nodiscard]] std::size_t valid_blocks() const { return valid_count_; }
  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }
  [[nodiscard]] std::size_t compat_checks() const { return compat_checks_; }
  [[nodiscard]] std::size_t compat_failures() const {
    return compat_failures_;
  }
  [[nodiscard]] std::pair<Tick, Tick> y_window() const {
    return {y_target_lo_, y_target_hi_};
  }

  /// The delete-neighbourhood window [target - d, target + d] in ticks,
  /// clamped at zero in double space: the naive `Tick(target) - d_ticks`
  /// wraps to a huge value for extreme eps/delta and would then *pass*
  /// the window sanity checks.
  [[nodiscard]] static std::pair<Tick, Tick> make_y_window(double target_mass,
                                                          Tick d_ticks);

 private:
  struct Block {
    std::vector<ItemId> items;  ///< left-to-right
    bool valid = false;
  };

  struct Loc {
    bool in_trash = true;
    std::size_t block = 0;  ///< valid when !in_trash
  };

  // Layout helpers --------------------------------------------------------
  void remove_item(ItemId id);
  /// Moves a batch of items to new offsets (final positions must be
  /// pairwise disjoint); Memory's index tolerates the transient offset
  /// collisions mid-batch.
  void apply_moves(const std::vector<std::pair<ItemId, Tick>>& moves);
  [[nodiscard]] Tick main_end() const;
  [[nodiscard]] bool trash_empty() const;
  [[nodiscard]] Tick buffer_gap() const;

  // Algorithm pieces ------------------------------------------------------
  /// Gathers Y around `id` (which is included); returns the item list in
  /// offset order and sets `span_lo`.  Returns nullopt when the window is
  /// unreachable (degenerate population — caller rebuilds).
  std::optional<std::vector<ItemId>> gather_y(ItemId id, Tick* span_lo);
  /// Finds a subset of `block`'s item sizes with sum in [lo, hi]; measures
  /// decision time.
  std::optional<std::vector<ItemId>> find_subset(const Block& block, Tick lo,
                                                 Tick hi);
  void push_blocks_from(std::size_t bidx);
  /// Pushes blocks [bidx, end) using an explicit left boundary (needed when
  /// items of the pushed blocks were already rearranged).
  void push_range(std::size_t bidx, Tick from_off);
  void regulate_buffer_small();
  void regulate_buffer_big();
  void rebuild();
  void resample_r();
  [[nodiscard]] std::optional<std::size_t> rightmost_valid() const;

  LayoutStore* mem_;
  Rng rng_;
  double eps_;
  double delta_;
  Tick cap_;
  Tick delta_lo_, delta_hi_;  ///< admissible size range [delta, 2delta]
  std::size_t m_;
  Tick g_;
  Tick buffer_cap_;  ///< eps/2 of capacity
  bool big_delta_;
  Tick y_target_lo_, y_target_hi_;  ///< (3/4) m delta ± delta

  // Layout lookups go through Memory's ordered-by-offset index — RSUM
  // keeps no private offset map (single-layout-index invariant).
  std::unordered_map<ItemId, Loc> loc_;
  std::vector<Block> blocks_;
  std::size_t valid_count_ = 0;
  Tick trash_start_ = 0;  ///< meaningful only when trash is non-empty
  std::uint64_t r_ = 1;

  std::size_t rebuilds_ = 0;
  std::size_t compat_checks_ = 0;
  std::size_t compat_failures_ = 0;
  double decision_seconds_ = 0.0;
};

}  // namespace memreal
