#include "alloc/flexhash.h"

#include <cmath>
#include <cstdlib>

#include "util/check.h"

namespace memreal {

FlexHashAllocator::FlexHashAllocator(LayoutStore& mem,
                                     const FlexHashConfig& config)
    : mem_(&mem), rng_(config.seed), region_start_(config.region_start) {
  const double eps = config.eps;
  MEMREAL_CHECK(eps > 0 && eps < 0.5);
  const auto cap_d = static_cast<double>(mem_->capacity());
  max_tiny_ = config.max_tiny_size
                  ? config.max_tiny_size
                  : static_cast<Tick>(std::pow(eps, 4.0) * cap_d);

  TinySlabConfig tc;
  tc.eps = eps;
  tc.max_size = max_tiny_;
  tc.seed = rng_.next_u64();
  tiny_ = std::make_unique<TinySlabAllocator>(mem, tc, this);
  M_ = tiny_->unit_size();
  big_thr_ = std::max<Tick>(1, M_ / 100);

  // Update-types: geometric over external sizes (max_tiny, capacity].
  num_types_ = 1;
  Tick hi = max_tiny_ * 2;
  while (hi < mem_->capacity()) {
    hi *= 2;
    ++num_types_;
  }
  B_.assign(num_types_, 8 * static_cast<long long>(M_));
  P_right_.assign(num_types_, 0);
  P_left_.assign(num_types_, 0);
  R_right_.resize(num_types_);
  R_left_.resize(num_types_);
  for (std::size_t t = 0; t < num_types_; ++t) {
    R_right_[t] = rng_.next_tick_in(2 * M_, 4 * M_);
    R_left_[t] = rng_.next_tick_in(2 * M_, 4 * M_);
  }
  anchor_ = static_cast<long long>(region_start_) +
            static_cast<long long>(num_types_) * 8 *
                static_cast<long long>(M_);
}

std::size_t FlexHashAllocator::type_of(Tick size) const {
  MEMREAL_CHECK_MSG(size > max_tiny_, "external update of tiny size");
  std::size_t t = 0;
  Tick hi = max_tiny_ * 2;
  while (size > hi && t + 1 < num_types_) {
    hi *= 2;
    ++t;
  }
  return t;
}

long long FlexHashAllocator::first_unit_pos() const {
  return anchor_ + slot_lo_ * static_cast<long long>(M_);
}

Tick FlexHashAllocator::unit_offset(std::size_t unit) const {
  MEMREAL_CHECK(unit < perm_.size());
  const long long pos = anchor_ + perm_[unit] * static_cast<long long>(M_);
  MEMREAL_CHECK_MSG(pos >= 0, "unit placed below address 0");
  return static_cast<Tick>(pos);
}

void FlexHashAllocator::on_unit_created(std::size_t unit) {
  MEMREAL_CHECK(unit == perm_.size());
  perm_.push_back(slot_hi_);
  slot_of_[slot_hi_] = unit;
  ++slot_hi_;
}

void FlexHashAllocator::on_unit_destroyed(std::size_t unit) {
  MEMREAL_CHECK(unit + 1 == perm_.size());
  const long long s = perm_[unit];
  perm_.pop_back();
  slot_of_.erase(s);
  if (s != slot_hi_ - 1) {
    // Swap the physically final unit into the vacated slot (the paper's
    // memory-unit swap for TINYHASH resize operations).
    const std::size_t v = slot_of_.at(slot_hi_ - 1);
    slot_of_.erase(slot_hi_ - 1);
    perm_[v] = s;
    slot_of_[s] = v;
    tiny_->replace_unit_items(v);
  }
  --slot_hi_;
}

void FlexHashAllocator::rotate_front_to_end(std::size_t type) {
  ++rotations_;
  if (slot_lo_ == slot_hi_) {
    // No units: the rotation is purely notional.
    ++slot_lo_;
    ++slot_hi_;
  } else {
    const std::size_t v = slot_of_.at(slot_lo_);
    slot_of_.erase(slot_lo_);
    perm_[v] = slot_hi_;
    slot_of_[slot_hi_] = v;
    ++slot_lo_;
    ++slot_hi_;
    tiny_->replace_unit_items(v);
  }
  B_[type] += static_cast<long long>(M_);
}

void FlexHashAllocator::rotate_end_to_front(std::size_t type) {
  ++rotations_;
  if (slot_lo_ == slot_hi_) {
    --slot_lo_;
    --slot_hi_;
  } else {
    const std::size_t v = slot_of_.at(slot_hi_ - 1);
    slot_of_.erase(slot_hi_ - 1);
    perm_[v] = slot_lo_ - 1;
    slot_of_[slot_lo_ - 1] = v;
    --slot_lo_;
    --slot_hi_;
    tiny_->replace_unit_items(v);
  }
  B_[type] -= static_cast<long long>(M_);
}

void FlexHashAllocator::bulk_shift(std::size_t type,
                                   long long delta_units) {
  if (delta_units == 0) return;
  slot_lo_ += delta_units;
  slot_hi_ += delta_units;
  std::unordered_map<long long, std::size_t> shifted;
  shifted.reserve(slot_of_.size());
  for (const auto& [slot, u] : slot_of_) shifted[slot + delta_units] = u;
  slot_of_ = std::move(shifted);
  for (auto& p : perm_) p += delta_units;
  B_[type] += delta_units * static_cast<long long>(M_);
  for (std::size_t u = 0; u < perm_.size(); ++u) {
    tiny_->replace_unit_items(u);
  }
  rotations_ += perm_.size();
}

void FlexHashAllocator::restore_buffer(std::size_t type, long long target) {
  const auto m = static_cast<long long>(M_);
  // Rotations change B by exactly +-M; when the deficit exceeds one full
  // cycle of the unit array, rotating is cyclic busywork — shift the whole
  // array once instead.
  const long long cycle = static_cast<long long>(perm_.size()) + 1;
  const long long deficit_units = (target - B_[type]) / m;
  if (deficit_units > cycle || deficit_units < -cycle) {
    bulk_shift(type, deficit_units);
  }
  while (B_[type] < target - m) rotate_front_to_end(type);
  while (B_[type] > target + m) rotate_end_to_front(type);
}

void FlexHashAllocator::external_update(Tick size, bool push_right) {
  const std::size_t t = type_of(size);
  const auto m = static_cast<long long>(M_);
  if (push_right) {
    region_start_ += size;
    B_[t] -= static_cast<long long>(size);
  } else {
    MEMREAL_CHECK(region_start_ >= size);
    region_start_ -= size;
    B_[t] += static_cast<long long>(size);
  }
  if (size >= big_thr_) {
    // Large external updates restore the invariant immediately when it
    // breaks, bringing B back to within M of 8M.
    if (B_[t] < 0 || B_[t] > 16 * m) {
      restore_buffer(t, 8 * m);
    }
    return;
  }
  // Small external updates: buffer-i rebuilds on randomized thresholds.
  auto& P = push_right ? P_right_ : P_left_;
  auto& R = push_right ? R_right_ : R_left_;
  P[t] += size;
  if (P[t] > R[t]) {
    restore_buffer(t, 8 * m);
    P[t] -= R[t];  // overflow carries to the next rebuild
    R[t] = rng_.next_tick_in(2 * M_, 4 * M_);
  }
}

void FlexHashAllocator::insert(ItemId id, Tick size) {
  tiny_->insert(id, size);
}

void FlexHashAllocator::erase(ItemId id) { tiny_->erase(id); }

Tick FlexHashAllocator::region_end() const {
  if (slot_lo_ == slot_hi_) return region_start_;
  return static_cast<Tick>(anchor_ + slot_hi_ * static_cast<long long>(M_));
}

void FlexHashAllocator::check_invariants() const {
  // Buffer accounts within range and summing to the gap before the first
  // unit.
  long long sum = 0;
  for (std::size_t t = 0; t < num_types_; ++t) {
    MEMREAL_CHECK_MSG(B_[t] >= 0 && B_[t] <= 16 * static_cast<long long>(M_),
                      "buffer account B[" << t << "] = " << B_[t]
                                          << " out of [0, 16M]");
    sum += B_[t];
  }
  MEMREAL_CHECK_MSG(
      first_unit_pos() - static_cast<long long>(region_start_) == sum,
      "buffer accounts out of sync with unit placement");
  // Permutation consistency: slots within the live window, bijective.
  MEMREAL_CHECK(perm_.size() == tiny_->unit_count());
  MEMREAL_CHECK(slot_hi_ - slot_lo_ ==
                static_cast<long long>(perm_.size()));
  for (std::size_t u = 0; u < perm_.size(); ++u) {
    MEMREAL_CHECK(perm_[u] >= slot_lo_ && perm_[u] < slot_hi_);
    auto it = slot_of_.find(perm_[u]);
    MEMREAL_CHECK(it != slot_of_.end() && it->second == u);
  }
  tiny_->check_invariants();
}

}  // namespace memreal
