#include "alloc/discrete.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace memreal {

DiscreteAllocator::DiscreteAllocator(LayoutStore& mem,
                                     const DiscreteConfig& config)
    : mem_(&mem), config_(config) {
  MEMREAL_CHECK(config_.max_distinct_sizes >= 1);
  period_ = config_.rebuild_period ? config_.rebuild_period : 1;
}

void DiscreteAllocator::apply_layout(std::size_t from) {
  Tick off = from == 0 ? 0 : mem_->end_of(order_[from - 1]);
  for (std::size_t k = from; k < order_.size(); ++k) {
    mem_->move_to(order_[k], off);
    pos_[order_[k]] = k;
    off += mem_->extent_of(order_[k]);
  }
}

void DiscreteAllocator::rebuild() {
  ++rebuilds_;
  built_once_ = true;
  updates_since_rebuild_ = 0;
  // Adaptive period: balance K*R covering-compaction per update against
  // n/R rebuild mass.
  if (config_.rebuild_period == 0) {
    const auto n = static_cast<double>(order_.size());
    const auto k = static_cast<double>(std::max<std::size_t>(
        1, live_sizes_.size()));
    period_ = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::round(std::sqrt(n / k))));
  } else {
    period_ = config_.rebuild_period;
  }

  // Covering set: min(x_s, period) items of each exact size (all equal, so
  // "smallest" is moot — any representatives work).
  std::map<Tick, std::size_t> want;
  for (const auto& [size, count] : live_sizes_) {
    want[size] = std::min<std::size_t>(count, period_);
  }
  std::vector<ItemId> main_part, cover_part;
  main_part.reserve(order_.size());
  // Walk right-to-left so the chosen representatives keep their suffix
  // positions where possible (less movement).
  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    auto& remaining = want[mem_->size_of(*it)];
    if (remaining > 0) {
      --remaining;
      cover_part.push_back(*it);
    } else {
      main_part.push_back(*it);
    }
  }
  std::reverse(main_part.begin(), main_part.end());
  std::reverse(cover_part.begin(), cover_part.end());
  covering_begin_ = main_part.size();
  order_ = std::move(main_part);
  order_.insert(order_.end(), cover_part.begin(), cover_part.end());
  apply_layout(0);
}

void DiscreteAllocator::maybe_rebuild() {
  if (!built_once_ || updates_since_rebuild_ >= period_) rebuild();
  ++updates_since_rebuild_;
}

void DiscreteAllocator::insert(ItemId id, Tick size) {
  maybe_rebuild();
  auto [it, fresh] = live_sizes_.emplace(size, 0);
  if (fresh) {
    MEMREAL_CHECK_MSG(live_sizes_.size() <= config_.max_distinct_sizes,
                      "DISCRETE saw more than "
                          << config_.max_distinct_sizes
                          << " distinct sizes; use a general allocator");
  }
  ++it->second;
  const Tick off = order_.empty() ? 0 : mem_->end_of(order_.back());
  mem_->place(id, off, size);
  pos_[id] = order_.size();
  order_.push_back(id);  // joins the covering set (suffix)
}

void DiscreteAllocator::erase(ItemId id) {
  maybe_rebuild();
  const auto pit = pos_.find(id);
  MEMREAL_CHECK_MSG(pit != pos_.end(), "erase of unknown item " << id);
  const std::size_t p = pit->second;
  const Tick size = mem_->size_of(id);
  auto sit = live_sizes_.find(size);
  MEMREAL_CHECK(sit != live_sizes_.end() && sit->second > 0);
  if (--sit->second == 0) live_sizes_.erase(sit);

  if (p >= covering_begin_) {
    // Covering-set delete: remove and compact the covering set.
    mem_->remove(id);
    pos_.erase(pit);
    order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(p));
    apply_layout(p);
    return;
  }
  // Exact-size swap: any same-size covering item fits perfectly.
  ItemId partner = kNoItem;
  std::size_t q = 0;
  for (std::size_t k = covering_begin_; k < order_.size(); ++k) {
    if (mem_->size_of(order_[k]) == size) {
      partner = order_[k];
      q = k;
      break;
    }
  }
  MEMREAL_CHECK_MSG(partner != kNoItem,
                    "covering pool exhausted for size " << size
                        << " (SIMPLE-style invariant violated)");
  const Tick slot = mem_->offset_of(id);
  mem_->remove(id);
  pos_.erase(pit);
  mem_->move_to(partner, slot);
  order_[p] = partner;
  pos_[partner] = p;
  order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(q));
  apply_layout(q);  // compact the covering set
}

void DiscreteAllocator::check_invariants() const {
  MEMREAL_CHECK(order_.size() == mem_->item_count());
  MEMREAL_CHECK(covering_begin_ <= order_.size());
  Tick off = 0;
  std::map<Tick, std::size_t> counts;
  for (std::size_t k = 0; k < order_.size(); ++k) {
    const ItemId id = order_[k];
    // Zero waste: perfectly contiguous, extents never inflated.
    MEMREAL_CHECK_MSG(mem_->offset_of(id) == off, "layout not contiguous");
    MEMREAL_CHECK(mem_->extent_of(id) == mem_->size_of(id));
    MEMREAL_CHECK(pos_.at(id) == k);
    ++counts[mem_->size_of(id)];
    off += mem_->size_of(id);
  }
  MEMREAL_CHECK_MSG(counts.size() == live_sizes_.size(),
                    "distinct-size accounting drift");
  for (const auto& [size, count] : counts) {
    MEMREAL_CHECK(live_sizes_.at(size) == count);
  }
  // Perfect contiguity implies span == live mass: stronger than resizable.
  MEMREAL_CHECK(mem_->span_end() == mem_->live_mass());
}

}  // namespace memreal
