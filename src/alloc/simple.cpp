#include "alloc/simple.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/thresholds.h"

namespace memreal {

SimpleAllocator::SimpleAllocator(Memory& mem, double eps) : mem_(&mem) {
  MEMREAL_CHECK(eps > 0 && eps < 1);
  eps_t_ = mem_->eps_ticks();
  const auto cap_d = static_cast<double>(mem_->capacity());
  MEMREAL_CHECK_MSG(eps_t_ == static_cast<Tick>(eps * cap_d),
                    "eps mismatch with Memory");
  min_size_ = eps_t_;
  max_size_ = 2 * eps_t_ - 1;

  const double inv_cbrt = std::cbrt(1.0 / eps);
  num_classes_ = static_cast<std::size_t>(std::ceil(inv_cbrt));
  class_width_ = ceil_div(eps_t_, num_classes_);
  period_ = static_cast<std::size_t>(std::floor(inv_cbrt));
  MEMREAL_CHECK(period_ >= 1);
  // Waste bound: period * class_width must stay <= eps (Lemma 3.2); integer
  // rounding of the width can only make the product smaller after this
  // clamp.
  if (static_cast<Tick>(period_) * class_width_ > eps_t_) {
    period_ = static_cast<std::size_t>(eps_t_ / class_width_);
    MEMREAL_CHECK(period_ >= 1);
  }
}

void SimpleAllocator::set_rebuild_period(std::size_t period) {
  MEMREAL_CHECK(period >= 1);
  period_ = period;
}

std::size_t SimpleAllocator::size_class_of(Tick size) const {
  MEMREAL_CHECK_MSG(size >= min_size_ && size <= max_size_,
                    "size " << size << " outside [eps, 2eps)");
  const auto c = static_cast<std::size_t>((size - min_size_) / class_width_);
  return std::min(c, num_classes_ - 1);
}

bool SimpleAllocator::in_covering(ItemId id) const {
  auto it = pos_.find(id);
  MEMREAL_CHECK(it != pos_.end());
  return it->second >= covering_begin_;
}

void SimpleAllocator::apply_layout(std::size_t from) {
  Tick off = from == 0 ? 0 : mem_->end_of(order_[from - 1]);
  for (std::size_t k = from; k < order_.size(); ++k) {
    mem_->move_to(order_[k], off);
    pos_[order_[k]] = k;
    off += mem_->extent_of(order_[k]);
  }
}

void SimpleAllocator::rebuild() {
  ++rebuilds_;
  // Step 1: revert logical inflation.
  for (ItemId id : order_) mem_->reset_extent(id);

  // Step 2: group by size class, pick the smallest min(x_i, period) of
  // each class as the covering set S.
  std::vector<std::vector<ItemId>> by_class(num_classes_);
  for (ItemId id : order_) {
    by_class[size_class_of(mem_->size_of(id))].push_back(id);
  }
  std::vector<char> covering(order_.size(), 0);
  std::unordered_map<ItemId, char> in_s;
  for (auto& cls : by_class) {
    std::sort(cls.begin(), cls.end(), [&](ItemId a, ItemId b) {
      const Tick sa = mem_->size_of(a);
      const Tick sb = mem_->size_of(b);
      return sa != sb ? sa < sb : a < b;
    });
    const std::size_t take = std::min(cls.size(), period_);
    for (std::size_t k = 0; k < take; ++k) in_s.emplace(cls[k], 1);
  }

  // Step 3: contiguous, left-aligned, covering set as suffix.  Stable
  // partition keeps relative order and thus minimizes movement.
  std::vector<ItemId> next;
  next.reserve(order_.size());
  for (ItemId id : order_) {
    if (in_s.find(id) == in_s.end()) next.push_back(id);
  }
  covering_begin_ = next.size();
  for (ItemId id : order_) {
    if (in_s.find(id) != in_s.end()) next.push_back(id);
  }
  order_ = std::move(next);
  apply_layout(0);
}

void SimpleAllocator::insert(ItemId id, Tick size) {
  if (updates_seen_ % period_ == 0) rebuild();
  ++updates_seen_;

  const Tick off = order_.empty() ? 0 : mem_->end_of(order_.back());
  mem_->place(id, off, size);
  pos_[id] = order_.size();
  order_.push_back(id);  // joins the covering set (suffix)
  (void)size_class_of(size);  // validates the size regime
}

void SimpleAllocator::erase(ItemId id) {
  if (updates_seen_ % period_ == 0) rebuild();
  ++updates_seen_;

  const auto pit = pos_.find(id);
  MEMREAL_CHECK_MSG(pit != pos_.end(), "erase of unknown item " << id);
  const std::size_t p = pit->second;

  if (p >= covering_begin_) {
    // Covering-set delete: remove and compact the covering set.
    mem_->remove(id);
    pos_.erase(pit);
    order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(p));
    apply_layout(p);
    return;
  }

  // Main-portion delete: swap in a covering item of the same class with
  // logical size <= ours (Lemma 3.2 guarantees one exists), inflate it.
  const std::size_t cls = size_class_of(mem_->size_of(id));
  const Tick my_extent = mem_->extent_of(id);
  ItemId best = kNoItem;
  Tick best_extent = 0;
  for (std::size_t k = covering_begin_; k < order_.size(); ++k) {
    const ItemId cand = order_[k];
    if (size_class_of(mem_->size_of(cand)) != cls) continue;
    const Tick ext = mem_->extent_of(cand);
    if (ext > my_extent) continue;
    if (best == kNoItem || ext < best_extent) {
      best = cand;
      best_extent = ext;
    }
  }
  MEMREAL_CHECK_MSG(best != kNoItem,
                    "Lemma 3.2 violated: no covering item for class " << cls);

  const std::size_t q = pos_[best];
  const Tick slot = mem_->offset_of(id);
  mem_->remove(id);
  pos_.erase(pit);
  // I' takes I's slot and I's (inflated) extent.
  mem_->move_to(best, slot);
  mem_->set_extent(best, my_extent);
  order_[p] = best;
  pos_[best] = p;
  order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(q));
  apply_layout(q);  // compact the covering set
}

void SimpleAllocator::check_invariants() const {
  MEMREAL_CHECK(order_.size() == mem_->item_count());
  MEMREAL_CHECK(covering_begin_ <= order_.size());
  // Contiguity of extents from 0.
  Tick off = 0;
  Tick waste = 0;
  for (std::size_t k = 0; k < order_.size(); ++k) {
    const ItemId id = order_[k];
    MEMREAL_CHECK_MSG(mem_->offset_of(id) == off, "layout not contiguous");
    MEMREAL_CHECK(pos_.at(id) == k);
    waste += mem_->extent_of(id) - mem_->size_of(id);
    off += mem_->extent_of(id);
  }
  // Lemma 3.2: total waste below eps.
  MEMREAL_CHECK_MSG(waste <= eps_t_, "waste " << waste << " > eps");
  // Covering-set items are never inflated (inflation targets leave the
  // covering set when swapped into the main portion).
  for (std::size_t k = covering_begin_; k < order_.size(); ++k) {
    MEMREAL_CHECK(mem_->extent_of(order_[k]) == mem_->size_of(order_[k]));
  }
}

}  // namespace memreal
