#include "alloc/simple.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/thresholds.h"

namespace memreal {

SimpleAllocator::SimpleAllocator(LayoutStore& mem, double eps) : mem_(&mem) {
  MEMREAL_CHECK(eps > 0 && eps < 1);
  eps_t_ = mem_->eps_ticks();
  const auto cap_d = static_cast<double>(mem_->capacity());
  MEMREAL_CHECK_MSG(eps_t_ == static_cast<Tick>(eps * cap_d),
                    "eps mismatch with Memory");
  min_size_ = eps_t_;
  max_size_ = 2 * eps_t_ - 1;

  const double inv_cbrt = std::cbrt(1.0 / eps);
  num_classes_ = static_cast<std::size_t>(std::ceil(inv_cbrt));
  class_width_ = ceil_div(eps_t_, num_classes_);
  period_ = static_cast<std::size_t>(std::floor(inv_cbrt));
  MEMREAL_CHECK(period_ >= 1);
  // Waste bound: period * class_width must stay <= eps (Lemma 3.2); integer
  // rounding of the width can only make the product smaller after this
  // clamp.
  if (static_cast<Tick>(period_) * class_width_ > eps_t_) {
    period_ = static_cast<std::size_t>(eps_t_ / class_width_);
    MEMREAL_CHECK(period_ >= 1);
  }
}

void SimpleAllocator::set_rebuild_period(std::size_t period) {
  MEMREAL_CHECK(period >= 1);
  period_ = period;
}

std::size_t SimpleAllocator::size_class_of(Tick size) const {
  MEMREAL_CHECK_MSG(size >= min_size_ && size <= max_size_,
                    "size " << size << " outside [eps, 2eps)");
  const auto c = static_cast<std::size_t>((size - min_size_) / class_width_);
  return std::min(c, num_classes_ - 1);
}

bool SimpleAllocator::in_covering(ItemId id) const {
  const std::size_t* p = pos_.find(id);
  MEMREAL_CHECK(p != nullptr);
  return *p >= covering_begin_;
}

void SimpleAllocator::apply_layout(std::size_t from) {
  const Tick off = from == 0 ? 0 : mem_->end_of(order_[from - 1]);
  mem_->apply_run(std::span<const ItemId>(order_).subspan(from), off);
  for (std::size_t k = from; k < order_.size(); ++k) pos_[order_[k]] = k;
}

void SimpleAllocator::rebuild() {
  ++rebuilds_;
  // Step 1: revert logical inflation.
  mem_->reset_extents(order_);

  // Step 2: group by size class, pick the smallest min(x_i, period) of
  // each class as the covering set S.  Classes hold positions into order_
  // and sort by (size, id) — identical selection to sorting ids directly.
  const std::size_t n = order_.size();
  if (by_class_.size() != num_classes_) by_class_.resize(num_classes_);
  for (auto& cls : by_class_) cls.clear();
  for (std::size_t k = 0; k < n; ++k) {
    by_class_[classes_[k]].push_back(static_cast<std::uint32_t>(k));
  }
  covered_.assign(n, 0);
  for (auto& cls : by_class_) {
    std::sort(cls.begin(), cls.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return sizes_[a] != sizes_[b] ? sizes_[a] < sizes_[b]
                                              : order_[a] < order_[b];
              });
    const std::size_t take = std::min(cls.size(), period_);
    for (std::size_t k = 0; k < take; ++k) covered_[cls[k]] = 1;
  }

  // Step 3: contiguous, left-aligned, covering set as suffix.  Stable
  // partition keeps relative order and thus minimizes movement.
  next_order_.clear();
  next_sizes_.clear();
  next_classes_.clear();
  next_order_.reserve(n);
  next_sizes_.reserve(n);
  next_classes_.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    if (!covered_[k]) {
      next_order_.push_back(order_[k]);
      next_sizes_.push_back(sizes_[k]);
      next_classes_.push_back(classes_[k]);
    }
  }
  covering_begin_ = next_order_.size();
  for (std::size_t k = 0; k < n; ++k) {
    if (covered_[k]) {
      next_order_.push_back(order_[k]);
      next_sizes_.push_back(sizes_[k]);
      next_classes_.push_back(classes_[k]);
    }
  }
  order_.swap(next_order_);
  sizes_.swap(next_sizes_);
  classes_.swap(next_classes_);
  apply_layout(0);
}

void SimpleAllocator::insert(ItemId id, Tick size) {
  if (updates_seen_ % period_ == 0) rebuild();
  ++updates_seen_;

  const Tick off = order_.empty() ? 0 : mem_->end_of(order_.back());
  mem_->place(id, off, size);
  pos_[id] = order_.size();
  order_.push_back(id);  // joins the covering set (suffix)
  sizes_.push_back(size);
  // size_class_of also validates the size regime on entry.
  classes_.push_back(static_cast<std::uint32_t>(size_class_of(size)));
}

void SimpleAllocator::erase(ItemId id) {
  if (updates_seen_ % period_ == 0) rebuild();
  ++updates_seen_;

  const std::size_t* pit = pos_.find(id);
  MEMREAL_CHECK_MSG(pit != nullptr, "erase of unknown item " << id);
  const std::size_t p = *pit;

  if (p >= covering_begin_) {
    // Covering-set delete: remove and compact the covering set.
    mem_->remove(id);
    pos_.erase(id);
    order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(p));
    sizes_.erase(sizes_.begin() + static_cast<std::ptrdiff_t>(p));
    classes_.erase(classes_.begin() + static_cast<std::ptrdiff_t>(p));
    apply_layout(p);
    return;
  }

  // Main-portion delete: swap in a covering item of the same class with
  // logical size <= ours (Lemma 3.2 guarantees one exists), inflate it.
  // Covering items are never inflated (extent == size, see
  // check_invariants), so the extent comparisons reduce to cached sizes.
  const std::size_t cls = classes_[p];
  const Tick my_extent = mem_->extent_of(id);
  std::size_t q = order_.size();
  for (std::size_t k = covering_begin_; k < order_.size(); ++k) {
    const Tick sz = sizes_[k];
    if (classes_[k] != cls) continue;
    if (sz > my_extent) continue;
    if (q == order_.size() || sz < sizes_[q]) q = k;
  }
  MEMREAL_CHECK_MSG(q < order_.size(),
                    "Lemma 3.2 violated: no covering item for class " << cls);
  const ItemId best = order_[q];

  const Tick slot = mem_->offset_of(id);
  mem_->remove(id);
  pos_.erase(id);
  // I' takes I's slot and I's (inflated) extent.
  mem_->move_to(best, slot);
  mem_->set_extent(best, my_extent);
  order_[p] = best;
  sizes_[p] = sizes_[q];
  classes_[p] = classes_[q];
  pos_[best] = p;
  order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(q));
  sizes_.erase(sizes_.begin() + static_cast<std::ptrdiff_t>(q));
  classes_.erase(classes_.begin() + static_cast<std::ptrdiff_t>(q));
  apply_layout(q);  // compact the covering set
}

void SimpleAllocator::check_invariants() const {
  MEMREAL_CHECK(order_.size() == mem_->item_count());
  MEMREAL_CHECK(sizes_.size() == order_.size());
  MEMREAL_CHECK(classes_.size() == order_.size());
  MEMREAL_CHECK(covering_begin_ <= order_.size());
  // Contiguity of extents from 0.
  Tick off = 0;
  Tick waste = 0;
  for (std::size_t k = 0; k < order_.size(); ++k) {
    const ItemId id = order_[k];
    MEMREAL_CHECK_MSG(mem_->offset_of(id) == off, "layout not contiguous");
    MEMREAL_CHECK(pos_.at(id) == k);
    MEMREAL_CHECK_MSG(sizes_[k] == mem_->size_of(id), "size-cache drift");
    MEMREAL_CHECK_MSG(classes_[k] == size_class_of(sizes_[k]),
                      "class-cache drift");
    waste += mem_->extent_of(id) - mem_->size_of(id);
    off += mem_->extent_of(id);
  }
  // Lemma 3.2: total waste below eps.
  MEMREAL_CHECK_MSG(waste <= eps_t_, "waste " << waste << " > eps");
  // Covering-set items are never inflated (inflation targets leave the
  // covering set when swapped into the main portion).
  for (std::size_t k = covering_begin_; k < order_.size(); ++k) {
    MEMREAL_CHECK(mem_->extent_of(order_[k]) == mem_->size_of(order_[k]));
  }
}

}  // namespace memreal
