// DISCRETE — the "structured sizes" extension sketched in the paper's
// conclusion (Section 7):
//
//   "Using similar techniques to the covering sets introduced in this
//    paper one can see that there are efficient allocators for sets of
//    items with few distinct sizes and where all sizes are fairly
//    similar."
//
// When the update stream uses only K distinct sizes, covering-set swaps
// can be *exact*: a deleted item is replaced by a covering item of the
// same exact size, so no logical inflation and zero waste ever — the
// layout is perfectly contiguous at all times and the allocator is
// trivially resizable.  The SIMPLE skeleton carries over with per-exact-
// size pools instead of eps^{4/3}-wide classes:
//
//  * covering set = suffix holding min(x_s, R) items of each live size s
//    (plus everything inserted since the last rebuild);
//  * a delete outside the covering set swaps in a same-size covering item
//    (exact fit) and compacts the covering set;
//  * every R updates, rebuild.  R adapts to sqrt(n / K) at each rebuild,
//    balancing covering-compaction cost (~K R s_max / s) against rebuild
//    cost (~n / R): amortized ~ sqrt(n K) * (s_max / s_min) per update —
//    for K = O(1) this is O(sqrt(eps^-1)) on [eps, 2eps) workloads,
//    between SIMPLE's eps^-2/3 and the stochastic O(log) bound.
#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "core/allocator.h"
#include "core/layout_store.h"

namespace memreal {

struct DiscreteConfig {
  /// Hard cap on distinct live sizes (inserting a (cap+1)-th distinct size
  /// throws).  Guards against using DISCRETE outside its regime.
  std::size_t max_distinct_sizes = 64;
  /// Fixed rebuild period; 0 = adaptive sqrt(n / K) (re-chosen at every
  /// rebuild).
  std::size_t rebuild_period = 0;
};

class DiscreteAllocator final : public Allocator {
 public:
  DiscreteAllocator(LayoutStore& mem, const DiscreteConfig& config = {});

  void insert(ItemId id, Tick size) override;
  void erase(ItemId id) override;
  [[nodiscard]] std::string_view name() const override { return "discrete"; }
  void check_invariants() const override;

  [[nodiscard]] std::size_t distinct_sizes() const {
    return live_sizes_.size();
  }
  [[nodiscard]] std::size_t rebuilds() const { return rebuilds_; }
  [[nodiscard]] std::size_t current_period() const { return period_; }
  [[nodiscard]] std::size_t covering_size() const {
    return order_.size() - covering_begin_;
  }

 private:
  void rebuild();
  void maybe_rebuild();
  void apply_layout(std::size_t from);

  LayoutStore* mem_;
  DiscreteConfig config_;

  std::vector<ItemId> order_;  ///< left-to-right; covering set is a suffix
  std::size_t covering_begin_ = 0;
  std::unordered_map<ItemId, std::size_t> pos_;
  std::map<Tick, std::size_t> live_sizes_;  ///< size -> live count
  std::size_t period_ = 1;
  std::size_t updates_since_rebuild_ = 0;
  bool built_once_ = false;
  std::size_t rebuilds_ = 0;
};

}  // namespace memreal
