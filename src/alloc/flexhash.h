// FLEXHASH — Lemma 4.9: a *relocatable* tiny-item allocator.
//
// FLEXHASH wraps the unit-structured tiny allocator (TINYSLAB, standing in
// for TINYHASH) and absorbs "external updates" — requests to shift its
// whole memory region left or right by k — at O(1) expected cost, without
// moving the bulk of its items.  The trick is a buffer between the region
// start and the first memory unit:
//
//  * external update sizes are split into C' = O(log eps^-1) geometric
//    update-types; type i owns a buffer account B_i in [0, 16M];
//  * an external update of type i adjusts B_i instead of moving items;
//  * units are *rotated* (one unit's items moved from one end of the unit
//    array to the other) to refill or drain a buffer account;
//  * large types (size >= M/100) restore B_i to within M of 8M whenever it
//    leaves [0, 16M]; small types accumulate pushed mass in counters
//    P_i / P'_i and rotate back to [7M, 9M] when a randomized threshold
//    R ~ U(2M, 4M) is crossed (Lemma 4.3 randomness, overflow carried).
//
// The physical unit array lives at fixed absolute "slots": slot s sits at
// anchor + s*M.  Rotations slide the live slot window [slot_lo, slot_hi);
// unit creation appends at slot_hi; unit destruction swaps the physically
// last unit into the vacated slot (the memory-unit swap the paper
// describes for resize operations).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "alloc/tinyslab.h"
#include "core/allocator.h"
#include "core/layout_store.h"
#include "util/rng.h"

namespace memreal {

struct FlexHashConfig {
  double eps = 1.0 / 64;
  /// Initial region start (Corollary 4.10 uses L1 + eps/2; standalone 0).
  Tick region_start = 0;
  /// Tiny-item bound; 0 = eps^4 * capacity.
  Tick max_tiny_size = 0;
  std::uint64_t seed = 0xF1E7;
};

class FlexHashAllocator final : public Allocator, public UnitSpace {
 public:
  FlexHashAllocator(LayoutStore& mem, const FlexHashConfig& config);

  // -- internal (tiny) updates ---------------------------------------------
  void insert(ItemId id, Tick size) override;
  void erase(ItemId id) override;
  [[nodiscard]] std::string_view name() const override { return "flexhash"; }
  /// FLEXHASH is *relocatable*: its guarantee is relative to the externally
  /// managed region start, so the global span check does not apply when it
  /// runs standalone.  (The combined allocator re-enables the global check.)
  [[nodiscard]] bool resizable() const override { return false; }
  void check_invariants() const override;

  // -- external updates ----------------------------------------------------
  /// Shifts the region start right (push_right) or left by `size` ticks.
  /// Must be called inside an open Memory update; any unit rotations it
  /// performs are charged to that update.
  void external_update(Tick size, bool push_right);

  [[nodiscard]] Tick region_start() const { return region_start_; }
  [[nodiscard]] Tick unit_size() const { return tiny_->unit_size(); }
  [[nodiscard]] std::size_t unit_count() const { return tiny_->unit_count(); }
  [[nodiscard]] std::size_t rotations() const { return rotations_; }
  [[nodiscard]] std::size_t type_count() const { return num_types_; }
  [[nodiscard]] const TinySlabAllocator& tiny() const { return *tiny_; }
  /// End of the occupied region (just past the last unit; region_start when
  /// no units exist).
  [[nodiscard]] Tick region_end() const;

 private:
  // UnitSpace:
  [[nodiscard]] Tick unit_offset(std::size_t unit) const override;
  void on_unit_created(std::size_t unit) override;
  void on_unit_destroyed(std::size_t unit) override;

  [[nodiscard]] std::size_t type_of(Tick size) const;
  [[nodiscard]] long long first_unit_pos() const;
  void rotate_front_to_end(std::size_t type);
  void rotate_end_to_front(std::size_t type);
  /// Restores B[type] to within M of `target`, via single-unit rotations
  /// when few are needed, or by shifting the whole unit array when the
  /// deficit exceeds one full rotation cycle (an external update larger
  /// than the entire region: moving everything once costs O(1) relative).
  void restore_buffer(std::size_t type, long long target);
  void bulk_shift(std::size_t type, long long delta_units);

  LayoutStore* mem_;
  Rng rng_;
  std::unique_ptr<TinySlabAllocator> tiny_;
  Tick M_ = 0;
  Tick max_tiny_ = 0;
  Tick big_thr_ = 0;  ///< M / 100: larger external updates act immediately

  Tick region_start_ = 0;
  long long anchor_ = 0;    ///< absolute position of slot 0
  long long slot_lo_ = 0;   ///< live slots: [slot_lo_, slot_hi_)
  long long slot_hi_ = 0;
  std::vector<long long> perm_;  ///< logical unit -> slot
  std::unordered_map<long long, std::size_t> slot_of_;

  std::size_t num_types_ = 0;
  std::vector<long long> B_;          ///< buffer accounts, in [0, 16M]
  std::vector<Tick> P_right_, P_left_;
  std::vector<Tick> R_right_, R_left_;  ///< thresholds ~ U(2M, 4M)
  std::size_t rotations_ = 0;
};

}  // namespace memreal
