#include "alloc/registry.h"

#include <algorithm>
#include <cmath>

#include "alloc/combined.h"
#include "alloc/discrete.h"
#include "alloc/flexhash.h"
#include "alloc/folklore.h"
#include "alloc/geo.h"
#include "alloc/rsum.h"
#include "alloc/simple.h"
#include "alloc/tinyslab.h"
#include "util/check.h"

namespace memreal {

Tick SizeProfile::min_size(double eps, Tick capacity) const {
  const double frac = lo_factor * std::pow(eps, lo_pow);
  const auto ticks = static_cast<Tick>(frac * static_cast<double>(capacity));
  return std::max<Tick>(1, ticks);
}

Tick SizeProfile::max_size(double eps, Tick capacity) const {
  const double frac = hi_factor * std::pow(eps, hi_pow);
  const auto ticks = static_cast<Tick>(frac * static_cast<double>(capacity));
  // Keep the band non-degenerate even at extreme eps: min < max always.
  return std::max(min_size(eps, capacity) + 1, ticks);
}

bool AllocatorInfo::serves(const WorkloadShape& shape, double eps,
                           Tick capacity, std::string* why) const {
  auto reject = [&](const std::string& reason) {
    if (why != nullptr) *why = name + ": " + reason;
    return false;
  };
  if (eps > max_eps) {
    return reject("eps " + std::to_string(eps) +
                  " beyond the supported ceiling " + std::to_string(max_eps));
  }
  if (universal) return true;
  if (shape.min_size < 1 || shape.min_size > shape.max_size) {
    return reject("degenerate workload band [" +
                  std::to_string(shape.min_size) + ", " +
                  std::to_string(shape.max_size) + "]");
  }
  if (sizes.fixed_palette && !shape.fixed_palette) {
    return reject(
        "serves structured sizes only — the workload must reuse a small "
        "fixed palette, not sample the band freely");
  }
  const Tick lo = sizes.min_size(eps, capacity);
  const Tick hi = sizes.max_size(eps, capacity) - 1;  // band is [lo, hi)
  if (shape.min_size < lo) {
    return reject("workload min size " + std::to_string(shape.min_size) +
                  " below the served band's " + std::to_string(lo));
  }
  if (shape.max_size > hi) {
    return reject("workload max size " + std::to_string(shape.max_size) +
                  " above the served band's " + std::to_string(hi));
  }
  return true;
}

double CostBudget::bound(double eps) const {
  MEMREAL_CHECK(eps > 0.0 && eps < 1.0);
  const double inv = 1.0 / eps;
  return factor * std::pow(inv, pow) * std::max(1.0, std::log2(inv));
}

namespace {

struct Entry {
  AllocatorInfo info;
  AllocatorFactory factory;
};

/// The built-in allocators with their admissible size regimes.  Bands are
/// fractions of capacity as functions of eps; budgets sit well above the
/// paper's bounds (folklore O(eps^-1), SIMPLE O(eps^-2/3), GEO/COMBINED
/// O~(eps^-1/2), RSUM O(log eps^-1)) so healthy runs never trip them.
const std::vector<Entry>& builtin_entries() {
  static const std::vector<Entry> entries = [] {
    std::vector<Entry> e;
    const SizeProfile band{1.0, 1.0, 2.0, 1.0, false};       // [eps, 2eps)
    const SizeProfile geo_band{1.0 / 51200, 0.5,             // sqrt(eps)/200
                               1.0 / 200, 0.5, false};       //   over 256x
    const SizeProfile tiny{1.0 / 1024, 4.0, 1.0, 4.0, false};  // (0, eps^4]
    const SizeProfile mixed{1.0 / 1024, 4.0, 1.0 / 200, 0.5, false};
    const SizeProfile rsum_band{1.0, 0.75, 2.0, 0.75, false};  // delta=eps^3/4
    const SizeProfile palette{1.0, 1.0, 2.0, 1.0, true};

    e.push_back({{"folklore-compact", band, {4.0, 1.0}, 1.0 / 64, 0.0,
                  /*universal=*/true, true},
                 [](LayoutStore& mem, const AllocatorParams&) {
                   return std::make_unique<FolkloreCompact>(mem);
                 }});
    e.push_back({{"folklore-windowed", band, {4.0, 1.0}, 1.0 / 64, 0.0,
                  /*universal=*/true, true},
                 [](LayoutStore& mem, const AllocatorParams&) {
                   return std::make_unique<FolkloreWindowed>(mem);
                 }});
    e.push_back({{"simple", band, {8.0, 0.75}, 1.0 / 64, 0.0, false, true},
                 [](LayoutStore& mem, const AllocatorParams& p) {
                   return std::make_unique<SimpleAllocator>(mem, p.eps);
                 }});
    e.push_back({{"geo", geo_band, {16.0, 0.5}, 1.0 / 64, 0.0, false, true},
                 [](LayoutStore& mem, const AllocatorParams& p) {
                   GeoConfig c;
                   c.eps = p.eps;
                   c.seed = p.seed;
                   return std::make_unique<GeoAllocator>(mem, c);
                 }});
    e.push_back({{"tinyslab", tiny, {32.0, 0.5}, 1.0 / 32, 0.0, false, true},
                 [](LayoutStore& mem, const AllocatorParams& p) {
                   TinySlabConfig c;
                   c.eps = p.eps;
                   c.seed = p.seed;
                   return std::make_unique<TinySlabAllocator>(mem, c);
                 }});
    e.push_back({{"flexhash", tiny, {32.0, 0.5}, 1.0 / 32, 0.0, false, true,
                  /*max_eps=*/1.0 / 16},
                 [](LayoutStore& mem, const AllocatorParams& p) {
                   FlexHashConfig c;
                   c.eps = p.eps;
                   c.seed = p.seed;
                   return std::make_unique<FlexHashAllocator>(mem, c);
                 }});
    e.push_back({{"combined", mixed, {32.0, 0.5}, 1.0 / 32, 0.0, false, true},
                 [](LayoutStore& mem, const AllocatorParams& p) {
                   CombinedConfig c;
                   c.eps = p.eps;
                   c.seed = p.seed;
                   return std::make_unique<CombinedAllocator>(mem, c);
                 }});
    e.push_back({{"rsum", rsum_band, {16.0, 0.5}, 1.0 / 256, 0.0, false,
                  true},
                 [](LayoutStore& mem, const AllocatorParams& p) {
                   RSumConfig c;
                   c.eps = p.eps;
                   c.delta = p.delta;
                   c.seed = p.seed;
                   return std::make_unique<RSumAllocator>(mem, c);
                 }});
    e.push_back({{"discrete", palette, {32.0, 0.5}, 1.0 / 64, 0.0, false,
                  true},
                 [](LayoutStore& mem, const AllocatorParams&) {
                   return std::make_unique<DiscreteAllocator>(mem);
                 }});
    return e;
  }();
  return entries;
}

/// Runtime registrations (test-only planted allocators).  Not synchronized:
/// register/unregister before any concurrent lookups, as the fuzz tests do.
std::vector<Entry>& extra_entries() {
  static std::vector<Entry> entries;
  return entries;
}

const Entry* find_entry(const std::string& name) {
  for (const Entry& e : builtin_entries()) {
    if (e.info.name == name) return &e;
  }
  for (const Entry& e : extra_entries()) {
    if (e.info.name == name) return &e;
  }
  return nullptr;
}

std::string known_names() {
  std::string names;
  for (const std::string& n : allocator_names()) {
    if (!names.empty()) names += ", ";
    names += n;
  }
  return names;
}

}  // namespace

AllocatorFactory allocator_factory(const std::string& name) {
  const Entry* e = find_entry(name);
  MEMREAL_CHECK_MSG(e != nullptr, "unknown allocator '"
                                      << name << "' (registered: "
                                      << known_names() << ")");
  return e->factory;
}

std::vector<std::string> allocator_names() {
  std::vector<std::string> names;
  names.reserve(builtin_entries().size() + extra_entries().size());
  for (const Entry& e : builtin_entries()) names.push_back(e.info.name);
  for (const Entry& e : extra_entries()) names.push_back(e.info.name);
  return names;
}

AllocatorInfo allocator_info(const std::string& name) {
  const Entry* e = find_entry(name);
  MEMREAL_CHECK_MSG(e != nullptr, "unknown allocator '"
                                      << name << "' (registered: "
                                      << known_names() << ")");
  return e->info;
}

std::vector<AllocatorInfo> allocator_infos() {
  std::vector<AllocatorInfo> infos;
  infos.reserve(builtin_entries().size() + extra_entries().size());
  for (const Entry& e : builtin_entries()) infos.push_back(e.info);
  for (const Entry& e : extra_entries()) infos.push_back(e.info);
  return infos;
}

void register_allocator(AllocatorInfo info, AllocatorFactory factory) {
  MEMREAL_CHECK_MSG(!info.name.empty(), "allocator name must be non-empty");
  MEMREAL_CHECK_MSG(static_cast<bool>(factory),
                    "allocator factory must be callable");
  MEMREAL_CHECK_MSG(find_entry(info.name) == nullptr,
                    "allocator '" << info.name << "' already registered");
  extra_entries().push_back({std::move(info), std::move(factory)});
}

void unregister_allocator(const std::string& name) {
  auto& extras = extra_entries();
  const auto it =
      std::find_if(extras.begin(), extras.end(),
                   [&](const Entry& e) { return e.info.name == name; });
  MEMREAL_CHECK_MSG(it != extras.end(),
                    "allocator '" << name
                                  << "' is not a runtime registration");
  extras.erase(it);
}

std::unique_ptr<Allocator> make_allocator(const std::string& name,
                                          LayoutStore& mem,
                                          const AllocatorParams& params) {
  return allocator_factory(name)(mem, params);
}

}  // namespace memreal
