#include "alloc/registry.h"

#include "alloc/combined.h"
#include "alloc/discrete.h"
#include "alloc/flexhash.h"
#include "alloc/folklore.h"
#include "alloc/geo.h"
#include "alloc/rsum.h"
#include "alloc/simple.h"
#include "alloc/tinyslab.h"
#include "util/check.h"

namespace memreal {

AllocatorFactory allocator_factory(const std::string& name) {
  if (name == "folklore-compact") {
    return [](Memory& mem, const AllocatorParams&) {
      return std::make_unique<FolkloreCompact>(mem);
    };
  }
  if (name == "folklore-windowed") {
    return [](Memory& mem, const AllocatorParams&) {
      return std::make_unique<FolkloreWindowed>(mem);
    };
  }
  if (name == "simple") {
    return [](Memory& mem, const AllocatorParams& p) {
      return std::make_unique<SimpleAllocator>(mem, p.eps);
    };
  }
  if (name == "geo") {
    return [](Memory& mem, const AllocatorParams& p) {
      GeoConfig c;
      c.eps = p.eps;
      c.seed = p.seed;
      return std::make_unique<GeoAllocator>(mem, c);
    };
  }
  if (name == "tinyslab") {
    return [](Memory& mem, const AllocatorParams& p) {
      TinySlabConfig c;
      c.eps = p.eps;
      c.seed = p.seed;
      return std::make_unique<TinySlabAllocator>(mem, c);
    };
  }
  if (name == "flexhash") {
    return [](Memory& mem, const AllocatorParams& p) {
      FlexHashConfig c;
      c.eps = p.eps;
      c.seed = p.seed;
      return std::make_unique<FlexHashAllocator>(mem, c);
    };
  }
  if (name == "combined") {
    return [](Memory& mem, const AllocatorParams& p) {
      CombinedConfig c;
      c.eps = p.eps;
      c.seed = p.seed;
      return std::make_unique<CombinedAllocator>(mem, c);
    };
  }
  if (name == "discrete") {
    return [](Memory& mem, const AllocatorParams&) {
      return std::make_unique<DiscreteAllocator>(mem);
    };
  }
  if (name == "rsum") {
    return [](Memory& mem, const AllocatorParams& p) {
      RSumConfig c;
      c.eps = p.eps;
      c.delta = p.delta;
      c.seed = p.seed;
      return std::make_unique<RSumAllocator>(mem, c);
    };
  }
  MEMREAL_CHECK_MSG(false, "unknown allocator '" << name << "'");
}

std::vector<std::string> allocator_names() {
  return {"folklore-compact", "folklore-windowed", "simple", "geo",
          "tinyslab", "flexhash", "combined", "rsum", "discrete"};
}

std::unique_ptr<Allocator> make_allocator(const std::string& name,
                                          Memory& mem,
                                          const AllocatorParams& params) {
  return allocator_factory(name)(mem, params);
}

}  // namespace memreal
