// SIMPLE — Theorem 3.1 / Algorithm 1 of the paper.
//
// Regime: every item size lies in [eps, 2eps).  SIMPLE partitions sizes
// into ceil(eps^-1/3) fixed-stride classes of width eps^{4/3}, keeps a
// "covering set" as a suffix of memory (the smallest floor(eps^-1/3) items
// of each class at the last rebuild, plus everything inserted since),
// handles deletes outside the covering set by swapping in a same-class
// covering item and logically inflating it, and rebuilds every
// floor(eps^-1/3) updates.  Amortized update cost: O(eps^-2/3).
//
// Layout discipline: items are always contiguous in their *extents*
// (logical sizes), left-aligned at 0; waste lives inside extents, bounded
// by (rebuild period) x (class width) <= eps.
#pragma once

#include <cstdint>
#include <vector>

#include "core/allocator.h"
#include "core/layout_store.h"
#include "util/flat_map.h"

namespace memreal {

class SimpleAllocator final : public Allocator {
 public:
  /// eps must match the Memory's eps_ticks; item sizes must lie in
  /// [eps, 2eps) of capacity.
  SimpleAllocator(LayoutStore& mem, double eps);

  void insert(ItemId id, Tick size) override;
  void erase(ItemId id) override;
  [[nodiscard]] std::string_view name() const override { return "simple"; }
  void check_invariants() const override;

  // -- introspection (tests / figure renderer) -----------------------------
  [[nodiscard]] std::size_t size_class_count() const { return num_classes_; }
  [[nodiscard]] std::size_t rebuild_period() const { return period_; }
  [[nodiscard]] std::size_t rebuilds() const { return rebuilds_; }
  [[nodiscard]] std::size_t covering_size() const {
    return order_.size() - covering_begin_;
  }
  [[nodiscard]] bool in_covering(ItemId id) const;
  [[nodiscard]] std::size_t size_class_of(Tick size) const;

  /// Overrides the rebuild period (ablation T8b).  Must be >= 1.
  void set_rebuild_period(std::size_t period);

 private:
  void rebuild();
  /// Recomputes contiguous offsets for order_[from..] and refreshes pos_.
  void apply_layout(std::size_t from);

  LayoutStore* mem_;
  Tick eps_t_;
  Tick min_size_, max_size_;  ///< [eps, 2eps) in ticks
  std::size_t num_classes_;   ///< ceil(eps^-1/3)
  Tick class_width_;          ///< ceil(eps_t / num_classes_)
  std::size_t period_;        ///< floor(eps^-1/3), clamped for waste bound

  std::vector<ItemId> order_;  ///< left-to-right; covering set is a suffix
  std::vector<Tick> sizes_;    ///< true size per order_ position (sizes are
                               ///< immutable, so this caches them away from
                               ///< the store's id-map probes)
  std::vector<std::uint32_t> classes_;  ///< size class per order_ position
  std::size_t covering_begin_ = 0;
  FlatIdMap<std::size_t> pos_;
  std::size_t updates_seen_ = 0;
  std::size_t rebuilds_ = 0;

  // Rebuild scratch, kept as members so the per-rebuild hot path reuses
  // capacity instead of reallocating.
  std::vector<std::vector<std::uint32_t>> by_class_;
  std::vector<char> covered_;
  std::vector<ItemId> next_order_;
  std::vector<Tick> next_sizes_;
  std::vector<std::uint32_t> next_classes_;
};

}  // namespace memreal
