#include "alloc/combined.h"

#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace memreal {

CombinedAllocator::CombinedAllocator(LayoutStore& mem,
                                     const CombinedConfig& config)
    : mem_(&mem) {
  const double eps = config.eps;
  MEMREAL_CHECK(eps > 0 && eps < 1);
  const auto cap_d = static_cast<double>(mem_->capacity());
  tiny_thr_ = static_cast<Tick>(std::pow(eps, 4.0) * cap_d);
  // The tiny allocator's memory units are (eps/2)^3 and must hold at least
  // ~16 items each; at large eps the eps^4 threshold collides with that, so
  // the split point moves down.  Items in between go to GEO, which accepts
  // anything down to (eps/2)^5 — both regimes overlap there, and the
  // asymptotics are unchanged (the clamp is void once eps <= 2^-7).
  {
    Tick unit = 1;
    const auto e3 = std::pow(eps / 2.0, 3.0) * cap_d;
    while (static_cast<double>(unit) * 2.0 <= e3) unit <<= 1;
    tiny_thr_ = std::min(tiny_thr_, unit / 16);
  }
  half_eps_ticks_ = static_cast<Tick>(eps / 2.0 * cap_d);
  MEMREAL_CHECK_MSG(tiny_thr_ >= 1, "capacity too small for eps^4 items");

  Rng seeder(config.seed);
  GeoConfig gc;
  gc.eps = eps / 2.0;  // "instantiate GEO with eps/2 free space"
  gc.seed = seeder.next_u64();
  geo_ = std::make_unique<GeoAllocator>(mem, gc);

  FlexHashConfig fc;
  fc.eps = eps / 2.0;
  // The Section 4.2 threshold uses eps, not eps/2.
  fc.max_tiny_size = tiny_thr_;
  fc.region_start = half_eps_ticks_;  // L1 = 0 initially
  fc.seed = seeder.next_u64();
  flex_ = std::make_unique<FlexHashAllocator>(mem, fc);
}

void CombinedAllocator::insert(ItemId id, Tick size) {
  if (size > tiny_thr_) {
    geo_->insert(id, size);
    large_mass_ += size;
    flex_->external_update(size, /*push_right=*/true);
  } else {
    flex_->insert(id, size);
  }
}

void CombinedAllocator::erase(ItemId id) {
  const Tick size = mem_->size_of(id);
  if (size > tiny_thr_) {
    geo_->erase(id);
    MEMREAL_CHECK(large_mass_ >= size);
    large_mass_ -= size;
    flex_->external_update(size, /*push_right=*/false);
  } else {
    flex_->erase(id);
  }
}

void CombinedAllocator::check_invariants() const {
  geo_->check_invariants();
  flex_->check_invariants();
  // Region split: FLEXHASH starts exactly at L1 + eps/2.
  MEMREAL_CHECK_MSG(flex_->region_start() == large_mass_ + half_eps_ticks_,
                    "FLEXHASH region start out of sync with large mass");
}

}  // namespace memreal
