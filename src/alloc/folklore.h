// The folklore O(eps^-1) baselines.
//
// The paper's introduction: "whenever an item of size k must be inserted we
// can, by the pigeon-hole principle, find an interval of size O(k eps^-1)
// which has k free space.  Thus it is possible to handle inserts at cost
// O(eps^-1) and handle deletes for free."
//
// Two concrete variants:
//
//  * FolkloreWindowed — the literal pigeonhole algorithm.  Inserts first
//    try first-fit into an existing gap (cost 1); otherwise they pick a
//    window of size ceil(3k/eps) with >= 2k free space (one must exist),
//    compact the items fully inside it, and place the new item in the
//    opened gap.  Deletes are free.  NOT resizable: it uses all of [0, 1).
//
//  * FolkloreCompact — a resizable variant: first-fit insert, free deletes,
//    and a full compaction whenever accumulated gap mass exceeds eps/2.
//    Amortized O(eps^-1), and keeps everything inside [0, L + eps].
#pragma once

#include <vector>

#include "core/allocator.h"
#include "core/layout_store.h"

namespace memreal {

class FolkloreCompact final : public Allocator {
 public:
  explicit FolkloreCompact(LayoutStore& mem);

  void insert(ItemId id, Tick size) override;
  void erase(ItemId id) override;
  [[nodiscard]] std::string_view name() const override {
    return "folklore-compact";
  }
  void check_invariants() const override;

  /// Number of full compactions performed (for tests/benches).
  [[nodiscard]] std::size_t compactions() const { return compactions_; }

 private:
  void compact();
  [[nodiscard]] Tick waste() const;

  LayoutStore* mem_;
  std::vector<ItemId> order_;  ///< sorted by offset
  std::size_t compactions_ = 0;
};

class FolkloreWindowed final : public Allocator {
 public:
  explicit FolkloreWindowed(LayoutStore& mem);

  void insert(ItemId id, Tick size) override;
  void erase(ItemId id) override;
  [[nodiscard]] std::string_view name() const override {
    return "folklore-windowed";
  }
  [[nodiscard]] bool resizable() const override { return false; }
  void check_invariants() const override;

  /// Number of windowed (pigeonhole) inserts, vs. cheap first-fit inserts.
  [[nodiscard]] std::size_t windowed_inserts() const {
    return windowed_inserts_;
  }

 private:
  /// Places `size` ticks by compacting a window with >= 2*size free space.
  Tick windowed_place(Tick size);

  LayoutStore* mem_;
  std::vector<ItemId> order_;  ///< sorted by offset
  std::size_t windowed_inserts_ = 0;
};

}  // namespace memreal
