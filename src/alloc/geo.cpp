#include "alloc/geo.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/thresholds.h"

namespace memreal {

GeoAllocator::GeoAllocator(LayoutStore& mem, const GeoConfig& config)
    : mem_(&mem),
      eps_(config.eps),
      rng_(config.seed),
      deterministic_(config.deterministic_thresholds) {
  MEMREAL_CHECK(eps_ > 0 && eps_ < 0.5);
  cap_ = mem_->capacity();
  const auto cap_d = static_cast<double>(cap_);
  // GEO's free-space parameter comes from its own config: Corollary 4.10
  // instantiates GEO with eps/2 inside a memory whose global parameter is
  // eps.  Standalone uses the full eps.
  eps_t_ = static_cast<Tick>(eps_ * cap_d);
  MEMREAL_CHECK(eps_t_ > 1);

  const double e5_d = std::pow(eps_, 5.0) * cap_d;
  e5_ = std::max<Tick>(1, static_cast<Tick>(e5_d));
  huge_thr_ = std::max<Tick>(
      e5_ + 1, static_cast<Tick>(std::sqrt(eps_) / 100.0 * cap_d));
  MEMREAL_CHECK_MSG(
      static_cast<double>(e5_) * std::sqrt(eps_) >= 1.0,
      "capacity too small for eps: class boundaries would collapse; "
      "increase Memory capacity");

  // Geometric size-class boundaries: lo_0 = eps^5, hi_c = lo_c * beta.
  const double beta = 1.0 + std::sqrt(eps_);
  double lo = static_cast<double>(e5_);
  while (true) {
    const auto lo_t = static_cast<Tick>(lo);
    auto hi_t = static_cast<Tick>(lo * beta);
    if (hi_t <= lo_t) hi_t = lo_t + 1;
    class_lo_.push_back(lo_t);
    class_hi_.push_back(hi_t);
    if (hi_t >= huge_thr_) break;
    lo = lo * beta;
    MEMREAL_CHECK_MSG(class_lo_.size() < 1u << 22, "class explosion");
  }
  // The last class absorbs everything up to the huge threshold.
  class_hi_.back() = std::max(class_hi_.back(), huge_thr_);

  // Levels: ell = ceil(4.5 log2(eps^-1)); m_j = 2^{ell-j+1} * eps^5.
  ell_ = static_cast<int>(std::ceil(4.5 * std::log2(1.0 / eps_)));
  MEMREAL_CHECK(ell_ >= 1);
  m_.assign(static_cast<std::size_t>(ell_) + 1, 0);
  m_[0] = cap_;
  for (int j = 1; j <= ell_; ++j) {
    const int shift = ell_ - j + 1;
    MEMREAL_CHECK(shift < 62);
    m_[static_cast<std::size_t>(j)] = e5_ << shift;
  }
  // Every non-huge item must fit in level 1: m_1 >= 2 * max class bound.
  MEMREAL_CHECK_MSG(m_[1] >= 2 * class_hi_.back(),
                    "level-1 mass limit below the largest non-huge class");

  // c_{i,j} = floor(m_j / b_i); j* = deepest level with c >= 1.
  const std::size_t classes = class_lo_.size();
  c_.assign(classes, std::vector<std::uint64_t>(
                         static_cast<std::size_t>(ell_) + 1, 0));
  jstar_.assign(classes, 1);
  for (std::size_t i = 0; i < classes; ++i) {
    c_[i][0] = ~std::uint64_t{0};  // level 0 is all of memory: no limit
    for (int j = 1; j <= ell_; ++j) {
      c_[i][static_cast<std::size_t>(j)] =
          m_[static_cast<std::size_t>(j)] / class_hi_[i];
      if (c_[i][static_cast<std::size_t>(j)] >= 1) jstar_[i] = j;
    }
    MEMREAL_CHECK(c_[i][1] >= 1);
  }

  // Counters and randomized thresholds, all "freshly freely rebuilt".
  ins_count_.assign(classes, std::vector<std::uint64_t>(
                                 static_cast<std::size_t>(ell_) + 1, 0));
  del_count_ = ins_count_;
  ins_thr_.assign(classes, std::vector<std::uint64_t>(
                               static_cast<std::size_t>(ell_) + 1, 1));
  del_thr_ = ins_thr_;
  for (std::size_t i = 0; i < classes; ++i) {
    for (int j = 1; j <= jstar_[i]; ++j) {
      ins_thr_[i][static_cast<std::size_t>(j)] =
          sample_threshold(c_[i][static_cast<std::size_t>(j)]);
      del_thr_[i][static_cast<std::size_t>(j)] =
          sample_threshold(c_[i][static_cast<std::size_t>(j)]);
    }
  }

  class_items_.assign(classes, ClassSet{});
  waste_thr_ = rng_.next_tick_in(eps_t_ / 2, eps_t_);
}

std::uint64_t GeoAllocator::sample_threshold(std::uint64_t c) {
  MEMREAL_CHECK(c >= 1);
  const std::uint64_t lo = ceil_div(c, 4);
  const std::uint64_t hi = ceil_div(c, 3);
  if (deterministic_) return hi;
  return rng_.next_in(lo, hi);
}

std::size_t GeoAllocator::class_of_size(Tick size) const {
  MEMREAL_CHECK_MSG(size >= class_lo_.front(), "size below eps^5");
  MEMREAL_CHECK_MSG(size < huge_thr_, "class_of_size on a huge item");
  auto it = std::upper_bound(class_lo_.begin(), class_lo_.end(), size);
  auto idx = static_cast<std::size_t>(it - class_lo_.begin()) - 1;
  // Collapsed boundaries (equal class_lo values) resolve to the last one.
  MEMREAL_CHECK(size >= class_lo_[idx] && size < class_hi_[idx]);
  return idx;
}

void GeoAllocator::apply_layout(std::size_t from) {
  Tick off = from == 0 ? 0 : mem_->end_of(order_[from - 1]);
  for (std::size_t k = from; k < order_.size(); ++k) {
    const ItemId id = order_[k];
    mem_->move_to(id, off);
    info_[id].pos = k;
    off += mem_->extent_of(id);
  }
}

std::size_t GeoAllocator::suffix_start_for_label(int label) const {
  // order_ is sorted by label (huge = -1 first).  Binary search for the
  // first index whose label >= label.
  std::size_t lo = 0;
  std::size_t hi = order_.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (info_.at(order_[mid]).label < label) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::size_t GeoAllocator::level_item_count(int j) const {
  return order_.size() - suffix_start_for_label(j);
}

void GeoAllocator::rebuild_level(int j0) {
  MEMREAL_CHECK(j0 >= 1 && j0 <= ell_);
  ++level_rebuilds_;
  // We rearrange level j0-1 (labels >= j0-1).
  const std::size_t ss = suffix_start_for_label(j0 - 1);

  // New labels.  For each class, walk its items in ascending logical size:
  // the item of rank k belongs to I_j for every j with k < c_{i,j}; its new
  // label is the deepest such j >= j0 (or j0-1 if none).  Lemma 4.2
  // guarantees the c_{i,j0} smallest live inside the rearranged suffix —
  // with one implementation caveat: repeated swap-inflation creates exact
  // logical-size *ties*, and among tied items only enough of them need to
  // be inside the suffix.  Selection therefore prefers suffix members among
  // ties; a strictly smaller item outside the suffix is a genuine
  // violation.
  std::unordered_map<ItemId, int> new_label;
  new_label.reserve(order_.size() - ss);
  for (std::size_t i = 0; i < class_lo_.size(); ++i) {
    const ClassSet& set = class_items_[i];
    if (set.empty()) continue;
    const std::uint64_t take = c_[i][static_cast<std::size_t>(j0)];
    if (take == 0) continue;
    // Candidates: the `take` smallest plus everything tied with the last.
    std::vector<std::pair<Tick, ItemId>> cand;
    auto it = set.begin();
    for (std::uint64_t k = 0; k < take && it != set.end(); ++k, ++it) {
      cand.push_back(*it);
    }
    const Tick cutoff = cand.back().first;
    while (it != set.end() && it->first == cutoff) {
      cand.push_back(*it);
      ++it;
    }
    std::stable_sort(cand.begin(), cand.end(),
                     [&](const std::pair<Tick, ItemId>& a,
                         const std::pair<Tick, ItemId>& b) {
                       if (a.first != b.first) return a.first < b.first;
                       const bool sa = info_.at(a.second).label >= j0 - 1;
                       const bool sb = info_.at(b.second).label >= j0 - 1;
                       return sa && !sb;
                     });
    std::uint64_t rank = 0;
    for (const auto& [sz, id] : cand) {
      if (rank >= take) break;
      int lbl = j0 - 1;
      for (int j = jstar_[i]; j >= j0; --j) {
        if (rank < c_[i][static_cast<std::size_t>(j)]) {
          lbl = j;
          break;
        }
      }
      MEMREAL_CHECK_MSG(info_.at(id).label >= j0 - 1,
                        "Lemma 4.2 violated: I_j member outside level j0-1");
      new_label.emplace(id, lbl);
      ++rank;
    }
  }
  // Everything else in the suffix falls back to label j0-1.
  for (std::size_t k = ss; k < order_.size(); ++k) {
    const ItemId id = order_[k];
    auto it = new_label.find(id);
    info_[id].label = it == new_label.end() ? j0 - 1 : it->second;
  }
  // Stable sort the suffix by new label (I_j to the right of its
  // complement, for every j >= j0).
  std::stable_sort(order_.begin() + static_cast<std::ptrdiff_t>(ss),
                   order_.end(), [&](ItemId a, ItemId b) {
                     return info_.at(a).label < info_.at(b).label;
                   });
  apply_layout(ss);
}

void GeoAllocator::bump_counters_and_rebuild(std::size_t cls,
                                             bool is_insert) {
  auto& count = is_insert ? ins_count_[cls] : del_count_[cls];
  auto& thr = is_insert ? ins_thr_[cls] : del_thr_[cls];
  const int js = jstar_[cls];
  int j0 = 0;
  for (int j = 1; j <= js; ++j) {
    ++count[static_cast<std::size_t>(j)];
  }
  for (int j = 1; j <= js; ++j) {
    if (count[static_cast<std::size_t>(j)] >=
        thr[static_cast<std::size_t>(j)]) {
      j0 = j;
      break;
    }
  }
  // The deepest level's threshold range is [1, 1], so some level fires on
  // every update of this class.
  MEMREAL_CHECK_MSG(j0 >= 1, "no level fired; threshold state corrupt");
  rebuild_level(j0);
  // J = all levels whose counter crossed; they are freely rebuilt.
  for (int j = j0; j <= js; ++j) {
    if (count[static_cast<std::size_t>(j)] >=
        thr[static_cast<std::size_t>(j)]) {
      count[static_cast<std::size_t>(j)] = 0;
      thr[static_cast<std::size_t>(j)] =
          sample_threshold(c_[cls][static_cast<std::size_t>(j)]);
    }
  }
}

void GeoAllocator::waste_recovery() {
  ++waste_recoveries_;
  // Revert all logical inflation, compact everything, rebuild level 1.
  for (auto& [id, inf] : info_) {
    if (inf.label < 0) continue;
    const Tick ext = mem_->extent_of(id);
    const Tick sz = mem_->size_of(id);
    if (ext != sz) {
      auto& set = class_items_[inf.cls];
      set.erase({ext, id});
      mem_->reset_extent(id);
      set.insert({sz, id});
    }
  }
  apply_layout(0);
  rebuild_level(1);
  // waste_acc_ already holds the overflow W - T (see erase()).
  waste_thr_ = rng_.next_tick_in(eps_t_ / 2, eps_t_);
}

void GeoAllocator::insert(ItemId id, Tick size) {
  MEMREAL_CHECK_MSG(info_.find(id) == info_.end(), "duplicate id " << id);
  if (size >= huge_thr_) {
    // Huge item: append to the huge prefix; everything after shifts right.
    // Cost <= L / size <= O(eps^-1/2).
    order_.insert(order_.begin() + static_cast<std::ptrdiff_t>(huge_count_),
                  id);
    info_[id] = Info{-1, 0, huge_count_};
    const Tick off =
        huge_count_ == 0 ? 0 : mem_->end_of(order_[huge_count_ - 1]);
    mem_->place(id, off, size);
    ++huge_count_;
    apply_layout(huge_count_);
    return;
  }

  const std::size_t cls = class_of_size(size);
  // Place immediately after the final item (Algorithm 3), label ell.
  const Tick off = order_.empty() ? 0 : mem_->end_of(order_.back());
  mem_->place(id, off, size);
  info_[id] = Info{ell_, cls, order_.size()};
  order_.push_back(id);
  class_items_[cls].insert({size, id});

  bump_counters_and_rebuild(cls, /*is_insert=*/true);
}

void GeoAllocator::erase(ItemId id) {
  auto iit = info_.find(id);
  MEMREAL_CHECK_MSG(iit != info_.end(), "erase of unknown item " << id);
  const Info inf = iit->second;

  if (inf.label < 0) {
    // Huge delete: remove and close the hole (compacts huge prefix and
    // shifts the rest left).  Cost <= L / size <= O(eps^-1/2).
    mem_->remove(id);
    order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(inf.pos));
    info_.erase(iit);
    --huge_count_;
    apply_layout(inf.pos);
    return;
  }

  const std::size_t cls = inf.cls;
  const int js = jstar_[cls];
  bool swapped = false;
  Tick swap_waste = 0;
  std::size_t hole_pos;

  if (inf.label < js) {
    // Swap in the smallest class item I' (Algorithm 4 lines 5-8); the
    // invariants guarantee one of minimum logical size lives in level j*
    // (ties are resolved toward the deep copy).
    auto& set = class_items_[cls];
    MEMREAL_CHECK(!set.empty());
    auto first = set.begin();
    const Tick min_size = first->first;
    ItemId other = kNoItem;
    for (auto sit = first; sit != set.end() && sit->first == min_size;
         ++sit) {
      if (sit->second == id) continue;
      if (info_.at(sit->second).label >= js) {
        other = sit->second;
        break;
      }
    }
    MEMREAL_CHECK_MSG(other != kNoItem,
                      "invariant violated: no class minimum in level j*");
    const Info& oinf = info_.at(other);
    const Tick my_extent = mem_->extent_of(id);
    MEMREAL_CHECK_MSG(mem_->extent_of(other) <= my_extent,
                      "swap candidate larger than deleted item");

    const std::size_t p = inf.pos;
    const std::size_t q = oinf.pos;
    MEMREAL_CHECK(q > p);
    const Tick slot = mem_->offset_of(id);
    mem_->remove(id);
    info_.erase(iit);
    set.erase({my_extent, id});           // the deleted item leaves its class
    set.erase({mem_->extent_of(other), other});  // I' re-keyed below
    set.insert({my_extent, other});
    mem_->move_to(other, slot);
    mem_->set_extent(other, my_extent);
    info_[other].label = inf.label;  // I' inherits I's level
    info_[other].pos = p;
    order_[p] = other;
    order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(q));
    hole_pos = q;
    swapped = true;
    // Waste bound: class width (exact intra-class extent difference).
    swap_waste = class_hi_[cls] - class_lo_[cls];
  } else {
    // Delete inside level j*: just remove.
    class_items_[cls].erase({mem_->extent_of(id), id});
    mem_->remove(id);
    hole_pos = inf.pos;
    order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(inf.pos));
    info_.erase(iit);
    swapped = false;
  }
  // Compact level j* (and anything to its right) — closes the hole.
  apply_layout(hole_pos);

  bump_counters_and_rebuild(cls, /*is_insert=*/false);

  if (swapped) {
    waste_acc_ += swap_waste;
    if (waste_acc_ >= waste_thr_) {
      waste_acc_ -= waste_thr_;  // overflow carries (paper: waste = W - T)
      waste_recovery();
    }
  }
}

void GeoAllocator::check_invariants() const {
  MEMREAL_CHECK(order_.size() == info_.size());
  // Layout: contiguous extents, labels ascending, pos correct.
  Tick off = 0;
  int prev_label = -1;
  for (std::size_t k = 0; k < order_.size(); ++k) {
    const ItemId id = order_[k];
    const Info& inf = info_.at(id);
    MEMREAL_CHECK_MSG(mem_->offset_of(id) == off, "layout not contiguous");
    MEMREAL_CHECK(inf.pos == k);
    MEMREAL_CHECK_MSG(inf.label >= prev_label, "labels out of order");
    prev_label = inf.label;
    off += mem_->extent_of(id);
  }
  // Waste: total inflation across GEO's own items stays below eps.  (Under
  // the combined allocator, other items share the Memory.)
  Tick waste = 0;
  for (const auto& [id, inf] : info_) {
    waste += mem_->extent_of(id) - mem_->size_of(id);
  }
  MEMREAL_CHECK_MSG(waste <= eps_t_, "inflation waste above eps");
  // Level-size invariant: per class and level j, at most 2*c_{i,j} items
  // with label >= j (and none beyond j*).
  const std::size_t classes = class_lo_.size();
  std::vector<std::vector<std::uint64_t>> cnt(
      classes,
      std::vector<std::uint64_t>(static_cast<std::size_t>(ell_) + 1, 0));
  for (const auto& [id, inf] : info_) {
    if (inf.label < 0) continue;
    cnt[inf.cls][static_cast<std::size_t>(inf.label)] += 1;
  }
  for (std::size_t i = 0; i < classes; ++i) {
    std::uint64_t suffix = 0;
    for (int j = ell_; j >= 1; --j) {
      suffix += cnt[i][static_cast<std::size_t>(j)];
      MEMREAL_CHECK_MSG(
          suffix <= 2 * c_[i][static_cast<std::size_t>(j)],
          "level-size invariant violated: class " << i << " level " << j
                                                  << " has " << suffix);
    }
  }
  // Some item of minimum logical size of every inhabited class sits in
  // level j* (needed for deletions to be well-defined; ties may leave
  // equal-size copies in shallower levels).
  for (std::size_t i = 0; i < classes; ++i) {
    if (class_items_[i].empty()) continue;
    const Tick min_size = class_items_[i].begin()->first;
    bool deep = false;
    for (auto it = class_items_[i].begin();
         it != class_items_[i].end() && it->first == min_size; ++it) {
      if (info_.at(it->second).label >= jstar_[i]) {
        deep = true;
        break;
      }
    }
    MEMREAL_CHECK_MSG(deep, "class minimum escaped level j*");
  }
  // Class sets keyed by current logical size.
  for (std::size_t i = 0; i < classes; ++i) {
    for (const auto& [key, id] : class_items_[i]) {
      MEMREAL_CHECK(mem_->extent_of(id) == key);
    }
  }
}

}  // namespace memreal
