// COMBINED — Corollary 4.10: the headline allocator.
//
// Resizable, arbitrary item sizes, worst-case expected update cost
// O~(eps^-1/2).  Layout:
//
//   [0, L1 + eps/2]                 GEO (free-space parameter eps/2),
//                                   items larger than eps^4
//   [L1 + eps/2, L1 + L2 + eps]     FLEXHASH (parameter eps/2),
//                                   items of size <= eps^4
//
// where L1/L2 are the live large/tiny masses.  Whenever a large update of
// size k changes L1, an external update of size k is issued to FLEXHASH in
// the matching direction; FLEXHASH absorbs it at O(1) expected cost.
#pragma once

#include <memory>

#include "alloc/flexhash.h"
#include "alloc/geo.h"
#include "core/allocator.h"
#include "core/layout_store.h"

namespace memreal {

struct CombinedConfig {
  double eps = 1.0 / 64;
  std::uint64_t seed = 0xC0B1;
};

class CombinedAllocator final : public Allocator {
 public:
  CombinedAllocator(LayoutStore& mem, const CombinedConfig& config);

  void insert(ItemId id, Tick size) override;
  void erase(ItemId id) override;
  [[nodiscard]] std::string_view name() const override { return "combined"; }
  void check_invariants() const override;

  [[nodiscard]] Tick tiny_threshold() const { return tiny_thr_; }
  [[nodiscard]] const GeoAllocator& geo() const { return *geo_; }
  [[nodiscard]] const FlexHashAllocator& flex() const { return *flex_; }
  [[nodiscard]] Tick large_mass() const { return large_mass_; }

 private:
  LayoutStore* mem_;
  Tick tiny_thr_;  ///< eps^4 * capacity: larger goes to GEO
  Tick half_eps_ticks_;
  std::unique_ptr<GeoAllocator> geo_;
  std::unique_ptr<FlexHashAllocator> flex_;
  Tick large_mass_ = 0;
};

}  // namespace memreal
