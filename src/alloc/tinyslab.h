// TINYSLAB — substitute for Kuszmaul's TINYHASH (FOCS'23), the black-box
// allocator for tiny items (size <= eps^4) that Section 4.2 composes with
// GEO.  See DESIGN.md §5 for the substitution rationale.
//
// The structural contract of Lemma 4.9, which FLEXHASH relies on and this
// class guarantees:
//
//  * Memory is organized into fixed-size "memory units" of M = Theta(eps^3)
//    ticks (a power of two here); no item ever spans two units.
//  * Units are created and destroyed only at the logical end; physical
//    placement of every unit is delegated to a UnitSpace, so a wrapper
//    (FLEXHASH) may permute units freely.
//  * Items live inside power-of-two "slabs" of size M / 2^i placed at
//    offsets that are multiples of their size ("a slab of size L must be
//    placed at a location i*L"), so slabs nest and never straddle units.
//
// Internals: geometric size classes with ratio rho = 1 + eps/4; every item
// of class k occupies a fixed slot pitch e_k (its extent is rounded up to
// e_k, a logical inflation of at most a (1 + eps/4) factor).  Each class
// packs its items into slabs of sigma_k = the smallest power of two
// >= 4 e_k; deletes swap the class's last item into the hole (exact fit,
// O(1) cost).  Freed slabs go to buddy free lists and are reused
// lowest-address-first; when total free-slab mass crosses a randomized
// threshold, a full compaction repacks all classes (descending slab size,
// which keeps every slab aligned) and releases trailing units.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "core/allocator.h"
#include "core/layout_store.h"
#include "util/rng.h"

namespace memreal {

/// Physical placement of logical units.  The default (identity) places
/// unit u at base + u*M; FLEXHASH supplies a permuted implementation.
class UnitSpace {
 public:
  virtual ~UnitSpace() = default;
  /// Physical offset of logical unit `unit`.
  [[nodiscard]] virtual Tick unit_offset(std::size_t unit) const = 0;
  /// A new logical unit (index `unit`) now exists.
  virtual void on_unit_created(std::size_t unit) = 0;
  /// The last logical unit (index `unit`) was destroyed.
  virtual void on_unit_destroyed(std::size_t unit) = 0;
};

struct TinySlabConfig {
  double eps = 1.0 / 64;
  /// Largest supported item size; 0 = eps^4 * capacity (the Section 4.2
  /// tiny/large threshold).
  Tick max_size = 0;
  /// Smallest supported item size; 0 = max_size / 4096.  Bounds the class
  /// count.
  Tick min_size = 0;
  /// Free-mass budget before a randomized compaction; 0 = eps/4 * capacity.
  Tick slack_budget = 0;
  std::uint64_t seed = 0x7157;
};

class TinySlabAllocator final : public Allocator {
 public:
  /// `space` may be nullptr, in which case units are placed contiguously
  /// from offset 0.
  TinySlabAllocator(LayoutStore& mem, const TinySlabConfig& config,
                    UnitSpace* space = nullptr);

  void insert(ItemId id, Tick size) override;
  void erase(ItemId id) override;
  [[nodiscard]] std::string_view name() const override { return "tinyslab"; }
  void check_invariants() const override;

  // -- contract surface for FLEXHASH ---------------------------------------
  [[nodiscard]] Tick unit_size() const { return M_; }
  [[nodiscard]] std::size_t unit_count() const { return units_; }
  /// Re-places every item of `unit` according to the current UnitSpace
  /// offsets (called after the wrapper moved the unit physically).
  void replace_unit_items(std::size_t unit);

  // -- introspection --------------------------------------------------------
  [[nodiscard]] std::size_t class_count() const { return extent_.size(); }
  [[nodiscard]] Tick free_mass() const { return free_mass_; }
  [[nodiscard]] std::size_t compactions() const { return compactions_; }
  [[nodiscard]] Tick max_item_size() const { return max_size_; }
  [[nodiscard]] Tick min_item_size() const { return min_size_; }
  [[nodiscard]] std::size_t class_of_size(Tick size) const;
  [[nodiscard]] std::size_t item_count() const { return where_.size(); }
  /// Sum of item extents (slot pitches) currently placed.
  [[nodiscard]] Tick extent_mass() const { return extent_mass_; }

 private:
  struct Slab {
    std::size_t cls = 0;
    std::size_t unit = 0;
    Tick off = 0;  ///< offset within the unit; multiple of sigma
    std::vector<ItemId> slots;
  };

  struct FreeAddr {
    std::size_t unit;
    Tick off;
    friend auto operator<=>(const FreeAddr&, const FreeAddr&) = default;
  };

  [[nodiscard]] Tick item_offset(const Slab& s, std::size_t slot) const;
  [[nodiscard]] std::size_t level_of_sigma(Tick sigma) const;
  [[nodiscard]] FreeAddr alloc_block(std::size_t level);
  void free_block(FreeAddr addr, std::size_t level);
  void take_block_at(std::size_t unit, Tick off, std::size_t level);
  void create_unit();
  void destroy_trailing_empty_units();
  std::size_t alloc_slab(std::size_t cls);
  void release_slab(std::size_t slab_id);
  void compact_all();
  void place_item(ItemId id, Tick size, std::size_t slab_id,
                  std::size_t slot, bool is_new);

  LayoutStore* mem_;
  UnitSpace* space_;
  std::unique_ptr<UnitSpace> owned_space_;

  Tick M_ = 0;            ///< unit size (power of two)
  std::size_t levels_ = 0;  ///< buddy levels: block sizes M >> level
  Tick max_size_ = 0, min_size_ = 0;
  Tick slack_budget_ = 0;
  Rng rng_;

  std::vector<Tick> extent_;  ///< e_k, strictly decreasing
  std::vector<Tick> sigma_;   ///< slab size per class (power of two)
  std::vector<std::size_t> slots_per_slab_;

  std::vector<Slab> slabs_;                 ///< pool; freed ids recycled
  std::vector<std::size_t> slab_free_ids_;
  std::vector<std::vector<std::size_t>> class_slabs_;  ///< per class, in order
  std::vector<std::set<std::size_t>> unit_slabs_;      ///< per unit
  std::unordered_map<ItemId, std::pair<std::size_t, std::size_t>> where_;

  std::vector<std::set<FreeAddr>> free_;  ///< per level
  Tick free_mass_ = 0;
  Tick extent_mass_ = 0;
  std::size_t units_ = 0;
  Tick compact_threshold_ = 0;
  std::size_t compactions_ = 0;
};

}  // namespace memreal
