#include "alloc/folklore.h"

#include <algorithm>

#include "util/check.h"

namespace memreal {

namespace {

/// Binary-searches `order` (sorted by offset in `mem`) for the index of id.
std::size_t index_of(const LayoutStore& mem, const std::vector<ItemId>& order,
                     ItemId id) {
  const Tick off = mem.offset_of(id);
  auto it = std::lower_bound(order.begin(), order.end(), off,
                             [&](ItemId a, Tick o) {
                               return mem.offset_of(a) < o;
                             });
  while (it != order.end() && mem.offset_of(*it) == off && *it != id) ++it;
  MEMREAL_CHECK_MSG(it != order.end() && *it == id, "item not in order");
  return static_cast<std::size_t>(it - order.begin());
}

}  // namespace

// ---------------------------------------------------------------------------
// FolkloreCompact
// ---------------------------------------------------------------------------

FolkloreCompact::FolkloreCompact(LayoutStore& mem) : mem_(&mem) {}

Tick FolkloreCompact::waste() const {
  if (order_.empty()) return 0;
  return mem_->end_of(order_.back()) - mem_->live_mass();
}

void FolkloreCompact::insert(ItemId id, Tick size) {
  // First fit: scan gaps left to right.
  Tick prev_end = 0;
  for (std::size_t i = 0; i < order_.size(); ++i) {
    const Tick off = mem_->offset_of(order_[i]);
    if (off - prev_end >= size) {
      mem_->place(id, prev_end, size);
      order_.insert(order_.begin() + static_cast<std::ptrdiff_t>(i), id);
      return;
    }
    prev_end = off + mem_->extent_of(order_[i]);
  }
  // Append.  waste <= eps/2 guarantees prev_end <= L + eps/2, so the new
  // end prev_end + size stays within [0, (L + size) + eps].
  mem_->place(id, prev_end, size);
  order_.push_back(id);
}

void FolkloreCompact::erase(ItemId id) {
  const std::size_t idx = index_of(*mem_, order_, id);
  const Tick size = mem_->size_of(id);
  mem_->remove(id);
  order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(idx));
  if (waste() > mem_->eps_ticks() / 2) {
    compact();
  }
  (void)size;
}

void FolkloreCompact::compact() {
  ++compactions_;
  Tick off = 0;
  for (ItemId id : order_) {
    mem_->move_to(id, off);
    off += mem_->extent_of(id);
  }
}

void FolkloreCompact::check_invariants() const {
  MEMREAL_CHECK(order_.size() == mem_->item_count());
  Tick prev_end = 0;
  for (ItemId id : order_) {
    MEMREAL_CHECK_MSG(mem_->offset_of(id) >= prev_end,
                      "order not sorted by offset");
    prev_end = mem_->end_of(id);
  }
  MEMREAL_CHECK_MSG(waste() <= mem_->eps_ticks(),
                    "folklore-compact waste above eps");
}

// ---------------------------------------------------------------------------
// FolkloreWindowed
// ---------------------------------------------------------------------------

FolkloreWindowed::FolkloreWindowed(LayoutStore& mem) : mem_(&mem) {
  mem_->policy().check_resizable_bound = false;
}

void FolkloreWindowed::insert(ItemId id, Tick size) {
  // Cheap path: first fit into an existing gap (including the tail).
  Tick prev_end = 0;
  for (std::size_t i = 0; i < order_.size(); ++i) {
    const Tick off = mem_->offset_of(order_[i]);
    if (off - prev_end >= size) {
      mem_->place(id, prev_end, size);
      order_.insert(order_.begin() + static_cast<std::ptrdiff_t>(i), id);
      return;
    }
    prev_end = off + mem_->extent_of(order_[i]);
  }
  if (mem_->capacity() - prev_end >= size) {
    mem_->place(id, prev_end, size);
    order_.push_back(id);
    return;
  }
  // Pigeonhole path.
  ++windowed_inserts_;
  const Tick off = windowed_place(size);
  mem_->place(id, off, size);
  const std::size_t idx = static_cast<std::size_t>(
      std::lower_bound(order_.begin(), order_.end(), off,
                       [&](ItemId a, Tick o) {
                         return mem_->offset_of(a) < o;
                       }) -
      order_.begin());
  order_.insert(order_.begin() + static_cast<std::ptrdiff_t>(idx), id);
}

Tick FolkloreWindowed::windowed_place(Tick size) {
  const Tick cap = mem_->capacity();
  const Tick eps_t = mem_->eps_ticks();
  // Window size W = ceil(3 * size / eps); if W >= capacity, compact all.
  __uint128_t w128 = (static_cast<__uint128_t>(size) * 3 * cap + eps_t - 1) /
                     eps_t;
  if (w128 >= cap) {
    // Full compaction; place at the end.
    Tick off = 0;
    for (ItemId it : order_) {
      mem_->move_to(it, off);
      off += mem_->extent_of(it);
    }
    MEMREAL_CHECK_MSG(cap - off >= size, "promise violated: no room");
    return off;
  }
  const Tick w = static_cast<Tick>(w128);
  const std::size_t windows = static_cast<std::size_t>((cap + w - 1) / w);

  // One pass: free ticks per window (an item contributes its overlap).
  std::vector<Tick> used(windows, 0);
  for (ItemId it : order_) {
    Tick lo = mem_->offset_of(it);
    const Tick hi = mem_->end_of(it);
    while (lo < hi) {
      const std::size_t win = static_cast<std::size_t>(lo / w);
      const Tick win_end = std::min<Tick>((win + 1) * w, cap);
      const Tick take = std::min(hi, win_end) - lo;
      used[win] += take;
      lo += take;
    }
  }
  std::size_t win = windows;
  for (std::size_t i = 0; i < windows; ++i) {
    const Tick win_end = std::min<Tick>((i + 1) * w, cap);
    const Tick len = win_end - i * w;
    if (len >= used[i] && len - used[i] >= 2 * size) {
      win = i;
      break;
    }
  }
  MEMREAL_CHECK_MSG(win != windows,
                    "pigeonhole failed: no window with 2k free");

  // Compact the items fully inside the window against its left anchor
  // (the end of a left straddler, or the window start).
  const Tick win_lo = win * w;
  const Tick win_hi = std::min<Tick>((win + 1) * w, cap);
  Tick anchor = win_lo;
  for (ItemId it : order_) {
    const Tick lo = mem_->offset_of(it);
    const Tick hi = mem_->end_of(it);
    if (lo < win_lo && hi > win_lo) anchor = std::max(anchor, hi);
  }
  for (ItemId it : order_) {
    const Tick lo = mem_->offset_of(it);
    const Tick hi = mem_->end_of(it);
    if (lo >= win_lo && hi <= win_hi) {
      mem_->move_to(it, anchor);
      anchor += mem_->extent_of(it);
    }
  }
  // The opened gap runs from `anchor` to the right straddler (or window
  // end); it is at least 2k - (free beyond the window) >= k.
  return anchor;
}

void FolkloreWindowed::erase(ItemId id) {
  const std::size_t idx = index_of(*mem_, order_, id);
  mem_->remove(id);
  order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(idx));
}

void FolkloreWindowed::check_invariants() const {
  MEMREAL_CHECK(order_.size() == mem_->item_count());
  Tick prev_end = 0;
  for (ItemId id : order_) {
    MEMREAL_CHECK(mem_->offset_of(id) >= prev_end);
    prev_end = mem_->end_of(id);
  }
}

}  // namespace memreal
