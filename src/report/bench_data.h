// Loading BENCH_*.json artifacts back into memory.
//
// The benches emit schema-2 documents (see bench/bench_common.h): every
// file is {bench, schema: 2, git_describe, fast_mode, seeds, records} and
// every record is {kind, claim, series, ..., rows: [...]}.  This layer
// parses them via util/json, rejects stale schemas with a clear error,
// and gives the verdict/markdown layers keyed access to records.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/json.h"

namespace memreal::report {

/// Thrown when an artifact cannot be used: unreadable file, malformed
/// JSON, wrong schema version, or a record missing required fields.  The
/// message always names the offending file.
class ReportError : public std::runtime_error {
 public:
  explicit ReportError(const std::string& what) : std::runtime_error(what) {}
};

/// The schema version this report layer understands; bench/bench_common.h
/// emits the same number (BenchJson::kSchema).
inline constexpr std::uint64_t kBenchSchema = 2;

struct BenchFile {
  std::string path;
  std::string bench;  ///< "folklore", "shard", ... (BENCH_<bench>.json)
  std::string git_describe;
  bool fast_mode = false;
  std::vector<std::uint64_t> seeds;
  Json doc;  ///< the full parsed document (records live in doc["records"])

  /// All records, in file order.
  [[nodiscard]] std::vector<const Json*> records() const;
  /// The record with the given `series` name, or nullptr.
  [[nodiscard]] const Json* find_series(const std::string& series) const;
};

/// Parses one artifact.  Throws ReportError on anything unusable —
/// including a schema version other than kBenchSchema ("stale artifact,
/// re-run the bench").
[[nodiscard]] BenchFile load_bench_file(const std::string& path);

/// The artifacts of one bench run, keyed by bench name.
struct BenchSet {
  std::map<std::string, BenchFile> by_bench;

  [[nodiscard]] const BenchFile* find(const std::string& bench) const;
  /// Records across all files whose "claim" equals `claim`, file order.
  [[nodiscard]] std::vector<const Json*> records_for_claim(
      const std::string& claim) const;
};

/// Loads every BENCH_*.json in `dir` (non-recursive).  Unreadable or
/// stale files throw; an empty directory yields an empty set.
[[nodiscard]] BenchSet load_bench_dir(const std::string& dir);

}  // namespace memreal::report
