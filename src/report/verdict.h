// Per-claim verdict rules: the paper shapes each BENCH_*.json must
// reproduce, re-derived from the raw rows (fits are recomputed here via
// fit_cost_exponent / fit_cost_log — the artifacts carry fit inputs, not
// conclusions).
//
// The encoded shapes: folklore's exponent ~ 1 (T0), SIMPLE ~ 2/3 and
// below folklore (T1), GEO sub-linear (T2), COMBINED sub-linear with an
// O(1) FLEXHASH external-update cost (T3), the lower-bound floor linear
// in log2(1/eps) and dominated by every resizable allocator (T4), RSUM
// log-linear with a near-zero power exponent (T5), the subset-sum hit
// rate bounded away from 0 (T6), threshold crossings under the lemma
// bounds (T7), the ablation optima at the paper's parameter choices (T8),
// plus the repo's own trajectory bars: shard scaling sane (T9) and the
// incremental-validation speedup (T-VAL).
#pragma once

#include <string>
#include <vector>

#include "report/bench_data.h"

namespace memreal::report {

enum class Status { kPass, kFail, kMissing };

[[nodiscard]] std::string status_name(Status s);

struct ClaimSpec {
  std::string id;      ///< "T0" ... "T9", "T-VAL"
  std::string title;   ///< "Folklore baseline"
  std::string bench;   ///< bench file that must supply the records
  std::string paper;   ///< paper locus ("Theorem 3.1", ...)
  std::string claim;   ///< one-line claim text
};

/// The full claim table, in report order.
[[nodiscard]] const std::vector<ClaimSpec>& claim_specs();

struct ClaimResult {
  const ClaimSpec* spec = nullptr;
  Status status = Status::kMissing;
  std::string headline;  ///< "exponent 0.94 (r² 0.996)" — "" when missing
  /// One line per evaluated rule, prefixed "ok: " / "FAIL: ".
  std::vector<std::string> checks;

  [[nodiscard]] bool passed() const { return status == Status::kPass; }
};

/// Evaluates every claim against the loaded artifacts.  A claim whose
/// bench file is absent comes back kMissing; malformed records inside a
/// present file surface as kFail with the error in `checks`.
[[nodiscard]] std::vector<ClaimResult> evaluate_claims(const BenchSet& set);

/// Outcome of the throughput-floor gate (memreal_report --shard-floor).
struct FloorResult {
  bool ok = true;
  /// One line per compared point, prefixed "ok: " / "FAIL: " (plus
  /// informational "note: " lines, e.g. a fast/full mode mismatch).
  std::vector<std::string> lines;
};

/// Cross-artifact throughput regression gate: every updates/sec point in
/// the current BENCH_shard.json (engine-throughput rows keyed by engine,
/// shard-scaling rows keyed by shard count) must reach at least
/// `floor_ratio` of the matching point in the `baseline` artifact from an
/// earlier run.  Points present only on one side are noted, not failed —
/// except a current file or series missing entirely, which fails.
[[nodiscard]] FloorResult check_throughput_floor(const BenchSet& current,
                                                 const BenchFile& baseline,
                                                 double floor_ratio);

}  // namespace memreal::report
