#include "report/bench_data.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace memreal::report {

namespace {

[[noreturn]] void file_error(const std::string& path,
                             const std::string& what) {
  throw ReportError(path + ": " + what);
}

}  // namespace

std::vector<const Json*> BenchFile::records() const {
  std::vector<const Json*> out;
  const Json& records = doc.at("records");
  out.reserve(records.size());
  for (const auto& [key, rec] : records.items()) {
    (void)key;
    out.push_back(&rec);
  }
  return out;
}

const Json* BenchFile::find_series(const std::string& series) const {
  for (const Json* rec : records()) {
    const Json* s = rec->find("series");
    if (s != nullptr && s->is_string() && s->as_string() == series) {
      return rec;
    }
  }
  return nullptr;
}

BenchFile load_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) file_error(path, "cannot open file");
  std::ostringstream buf;
  buf << in.rdbuf();

  BenchFile f;
  f.path = path;
  try {
    f.doc = Json::parse(buf.str());
    const Json& schema = f.doc.at("schema");
    if (!schema.is_uint() || schema.as_u64() != kBenchSchema) {
      const std::string found =
          schema.is_uint() ? std::to_string(schema.as_u64()) : "non-integer";
      file_error(path, "stale artifact: schema " + found + ", need " +
                           std::to_string(kBenchSchema) +
                           " — re-run the bench to regenerate it");
    }
    f.bench = f.doc.at("bench").as_string();
    f.git_describe = f.doc.at("git_describe").as_string();
    f.fast_mode = f.doc.at("fast_mode").as_bool();
    for (const auto& [key, seed] : f.doc.at("seeds").items()) {
      (void)key;
      f.seeds.push_back(seed.as_u64());
    }
    if (!f.doc.at("records").is_array()) {
      file_error(path, "\"records\" is not an array");
    }
  } catch (const JsonParseError& e) {
    file_error(path, e.what());
  }
  return f;
}

const BenchFile* BenchSet::find(const std::string& bench) const {
  const auto it = by_bench.find(bench);
  return it == by_bench.end() ? nullptr : &it->second;
}

std::vector<const Json*> BenchSet::records_for_claim(
    const std::string& claim) const {
  std::vector<const Json*> out;
  for (const auto& [name, file] : by_bench) {
    (void)name;
    for (const Json* rec : file.records()) {
      const Json* c = rec->find("claim");
      if (c != nullptr && c->is_string() && c->as_string() == claim) {
        out.push_back(rec);
      }
    }
  }
  return out;
}

BenchSet load_bench_dir(const std::string& dir) {
  namespace fs = std::filesystem;
  BenchSet set;
  std::vector<std::string> paths;
  try {
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      if (!entry.is_regular_file()) continue;
      const std::string name = entry.path().filename().string();
      if (name.rfind("BENCH_", 0) == 0 &&
          name.size() > 11 &&  // BENCH_x.json
          name.compare(name.size() - 5, 5, ".json") == 0) {
        paths.push_back(entry.path().string());
      }
    }
    if (ec) {
      throw ReportError(dir + ": cannot list directory: " + ec.message());
    }
  } catch (const fs::filesystem_error& e) {
    throw ReportError(dir + ": cannot list directory: " + e.what());
  }
  std::sort(paths.begin(), paths.end());  // deterministic load order
  for (const std::string& path : paths) {
    BenchFile f = load_bench_file(path);
    const std::string bench = f.bench;
    const auto [it, inserted] = set.by_bench.emplace(bench, std::move(f));
    if (!inserted) {
      throw ReportError(path + ": bench \"" + bench +
                        "\" already loaded from " + it->second.path +
                        " — remove the stale artifact");
    }
  }
  return set;
}

}  // namespace memreal::report
