// Markdown generation for the reproduction report.
//
// Two outputs share the same claim blocks: docs/REPORT.md (fully
// generated) and EXPERIMENTS.md, where each claim's tables live between
//   <!-- memreal_report:begin <id> -->  /  <!-- memreal_report:end <id> -->
// markers that `memreal_report` rewrites in place.  Rendering is a pure
// function of the loaded artifacts, so re-running on the same BENCH
// files is a byte-identical no-op.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "report/bench_data.h"
#include "report/verdict.h"

namespace memreal::report {

/// The marker pair wrapping a claim's generated block in EXPERIMENTS.md.
[[nodiscard]] std::string begin_marker(const std::string& claim_id);
[[nodiscard]] std::string end_marker(const std::string& claim_id);

/// One claim's generated markdown: verdict line, source line, one table
/// (+ recomputed fits) per record, and the rule-check list.
[[nodiscard]] std::string render_claim_block(const BenchSet& set,
                                             const ClaimResult& result);

/// The full docs/REPORT.md: verdict summary, provenance, claim blocks.
[[nodiscard]] std::string render_report(const BenchSet& set,
                                        const std::vector<ClaimResult>& rs);

struct MarkerRewrite {
  std::string text;                     ///< the rewritten document
  std::vector<std::string> rewritten;   ///< claim ids whose blocks updated
  std::vector<std::string> unmatched;   ///< ids with no marker in the doc
};

/// Replaces the text between each claim's marker pair with its block.
/// A begin marker without its end marker throws ReportError; ids whose
/// markers are absent are reported in `unmatched` and left untouched.
[[nodiscard]] MarkerRewrite rewrite_marker_blocks(
    const std::string& text, const std::map<std::string, std::string>& blocks);

}  // namespace memreal::report
