#include "report/verdict.h"

#include <cmath>
#include <functional>
#include <limits>
#include <map>

#include "harness/experiment.h"
#include "util/table.h"

namespace memreal::report {

namespace {

std::string num(double v, int digits = 4) { return Table::num(v, digits); }

/// Accumulates rule outcomes for one claim.
class Checker {
 public:
  void check(bool ok, const std::string& what) {
    lines_.push_back((ok ? "ok: " : "FAIL: ") + what);
    failed_ |= !ok;
  }

  void fail(const std::string& what) { check(false, what); }

  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] std::vector<std::string> take() { return std::move(lines_); }

 private:
  std::vector<std::string> lines_;
  bool failed_ = false;
};

/// The record named `series`, or a recorded failure + nullptr.
const Json* require_series(const BenchFile& f, const std::string& series,
                           Checker& c) {
  const Json* rec = f.find_series(series);
  if (rec == nullptr) {
    c.fail("series \"" + series + "\" missing from " + f.path);
  }
  return rec;
}

std::vector<EpsRow> sweep_rows(const Json& rec) {
  return eps_rows_from_json(rec.at("rows"));
}

/// Recomputed power-law fit of one eps_sweep series; false on failure.
bool fit_series(const BenchFile& f, const std::string& series, Checker& c,
                PowerLawFit* fit, std::vector<EpsRow>* rows_out = nullptr) {
  const Json* rec = require_series(f, series, c);
  if (rec == nullptr) return false;
  const std::vector<EpsRow> rows = sweep_rows(*rec);
  if (rows.size() < 2) {
    c.fail("series \"" + series + "\" has fewer than 2 rows");
    return false;
  }
  *fit = fit_cost_exponent(rows);
  if (rows_out != nullptr) *rows_out = rows;
  return true;
}

void check_exponent(Checker& c, const std::string& label,
                    const PowerLawFit& fit, double lo, double hi,
                    double min_r2) {
  c.check(fit.exponent >= lo && fit.exponent <= hi,
          label + ": exponent " + num(fit.exponent, 3) + " in [" +
              num(lo, 3) + ", " + num(hi, 3) + "]");
  c.check(fit.r2 >= min_r2, label + ": r² " + num(fit.r2, 3) +
                                " >= " + num(min_r2, 3));
}

std::string exp_headline(const PowerLawFit& fit) {
  return "exponent " + num(fit.exponent, 3) + " (r² " + num(fit.r2, 3) + ")";
}

// T0 — folklore pays ~(1/eps)^1; windowed max cost under 3/eps + 1.
void eval_t0(const BenchFile& f, Checker& c, std::string& headline) {
  PowerLawFit churn;
  if (fit_series(f, "churn/folklore-compact", c, &churn)) {
    check_exponent(c, "churn/folklore-compact", churn, 0.75, 1.25, 0.9);
    headline = exp_headline(churn);
  }
  PowerLawFit frag;
  if (fit_series(f, "fragmenter/folklore-compact", c, &frag)) {
    check_exponent(c, "fragmenter/folklore-compact", frag, 0.7, 1.3, 0.9);
  }
  const Json* win = require_series(f, "fragmenter/folklore-windowed", c);
  if (win != nullptr) {
    bool bounded = true;
    double worst = 0;
    for (const EpsRow& r : sweep_rows(*win)) {
      const double bound = 3.0 / r.eps + 1.0;
      bounded &= r.max_cost <= bound + 1e-9;
      worst = std::max(worst, r.max_cost * r.eps / 3.0);
    }
    c.check(bounded, "windowed max cost <= 3/eps + 1 at every eps (max "
                     "cost·eps/3 = " + num(worst, 3) + ")");
  }
}

// T1 — SIMPLE ~ (1/eps)^(2/3), clearly below folklore on the same band.
void eval_t1(const BenchFile& f, Checker& c, std::string& headline) {
  PowerLawFit simple;
  PowerLawFit folklore;
  const bool have_simple = fit_series(f, "churn-band/simple", c, &simple);
  const bool have_folk =
      fit_series(f, "churn-band/folklore-compact", c, &folklore);
  if (have_simple) {
    check_exponent(c, "churn-band/simple", simple, 0.45, 0.85, 0.9);
    headline = exp_headline(simple);
  }
  if (have_simple && have_folk) {
    c.check(simple.exponent + 0.1 <= folklore.exponent,
            "SIMPLE exponent " + num(simple.exponent, 3) +
                " clearly below folklore's " + num(folklore.exponent, 3));
  }
}

// T2 — GEO sub-linear (~0.5 plus log-slack).
void eval_t2(const BenchFile& f, Checker& c, std::string& headline) {
  PowerLawFit geo;
  if (fit_series(f, "geo-regime/geo", c, &geo)) {
    check_exponent(c, "geo-regime/geo", geo, 0.0, 0.9, 0.8);
    headline = exp_headline(geo);
  }
}

// T3 — COMBINED sub-linear on mixed churn; FLEXHASH external cost O(1)
// (flat in eps).
void eval_t3(const BenchFile& f, Checker& c, std::string& headline) {
  PowerLawFit combined;
  if (fit_series(f, "mixed-tiny-large/combined", c, &combined)) {
    // The tiny/large split is clamped above eps = 2^-7 (see the bench),
    // which inflates the largest-eps points, so only sub-linearity is
    // asserted — not a tight exponent band.
    c.check(combined.exponent <= 1.0,
            "mixed-tiny-large/combined: exponent " +
                num(combined.exponent, 3) + " <= 1 (sub-linear)");
    headline = exp_headline(combined);
  }
  const Json* flex = require_series(f, "flexhash-external", c);
  if (flex != nullptr) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = 0;
    for (const auto& [key, row] : flex->at("rows").items()) {
      (void)key;
      const double cost = row.at("cost").as_double();
      lo = std::min(lo, cost);
      hi = std::max(hi, cost);
    }
    // "Flat in eps" only distinguishes anything once the costs are of
    // order 1; far below that the eps-to-eps ratio is noise on a cost
    // that is trivially O(1).
    c.check(hi <= 0.5 || hi / lo <= 3.0,
            "flexhash external cost flat across eps (max " + num(hi, 3) +
                ", max/min " + num(lo > 0 ? hi / lo : 0.0, 3) + ")");
    c.check(hi <= 5.0, "flexhash external cost O(1): max " + num(hi, 3) +
                           " <= 5");
  }
}

// T4 — floor grows linearly in log2(1/eps); every resizable allocator
// dominates it.
void eval_t4(const BenchFile& f, Checker& c, std::string& headline) {
  const Json* rec = require_series(f, "two-size-floor", c);
  if (rec == nullptr) return;
  std::vector<double> log_inv;
  std::vector<double> floors;
  bool dominated = true;
  double min_ratio = std::numeric_limits<double>::infinity();
  for (const auto& [key, row] : rec->at("rows").items()) {
    (void)key;
    log_inv.push_back(std::log2(row.at("inv_eps").as_double()));
    floors.push_back(row.at("floor").as_double());
    const double ratio = row.at("min_resizable_ratio").as_double();
    min_ratio = std::min(min_ratio, ratio);
    dominated &= ratio >= 1.0 - 1e-9;
  }
  if (log_inv.size() < 2) {
    c.fail("two-size-floor has fewer than 2 rows");
    return;
  }
  const LinearFit fit = fit_linear(log_inv, floors);
  c.check(fit.slope > 0, "floor slope " + num(fit.slope, 3) +
                             " > 0 per log2(1/eps)");
  c.check(fit.r2 >= 0.9, "floor linearity r² " + num(fit.r2, 3) + " >= 0.9");
  c.check(dominated, "every resizable allocator dominates the floor (min "
                     "ratio " + num(min_ratio, 3) + " >= 1)");
  headline = "floor slope " + num(fit.slope, 3) + "/log2(1/eps) (r² " +
             num(fit.r2, 3) + "), min ratio " + num(min_ratio, 3);
}

// T5 — RSUM logarithmic: log model fits, power exponent near zero.
void eval_t5(const BenchFile& f, Checker& c, std::string& headline) {
  const Json* rec = require_series(f, "random-item/rsum", c);
  if (rec == nullptr) return;
  const std::vector<EpsRow> rows = sweep_rows(*rec);
  if (rows.size() < 2) {
    c.fail("random-item/rsum has fewer than 2 rows");
    return;
  }
  const LinearFit log_fit = fit_cost_log(rows);
  const PowerLawFit pow_fit = fit_cost_exponent(rows);
  c.check(log_fit.slope > 0, "log-model slope " + num(log_fit.slope, 3) +
                                 " > 0 per log2(1/eps)");
  c.check(log_fit.r2 >= 0.9,
          "log-model r² " + num(log_fit.r2, 3) + " >= 0.9");
  // A pure log curve over the measured 1/eps range fits a small positive
  // local exponent (~0.4 on the fast sweep's 256..16384 span); the
  // polynomial shapes it must be distinguishable from start at SIMPLE's
  // 2/3.
  c.check(pow_fit.exponent <= 0.5,
          "power exponent " + num(pow_fit.exponent, 3) +
              " <= 0.5 (logarithmic, not polynomial)");
  headline = "log slope " + num(log_fit.slope, 3) + " (r² " +
             num(log_fit.r2, 3) + "), power exponent " +
             num(pow_fit.exponent, 3);
}

// T6 — subset-sum hit rate bounded away from 0 as the window shrinks.
void eval_t6(const BenchFile& f, Checker& c, std::string& headline) {
  const Json* rec = require_series(f, "half-cardinality", c);
  if (rec == nullptr) return;
  double min_rate = std::numeric_limits<double>::infinity();
  std::uint64_t max_m = 0;
  for (const auto& [key, row] : rec->at("rows").items()) {
    (void)key;
    min_rate = std::min(min_rate, row.at("rate").as_double());
    max_m = std::max(max_m, row.at("m").as_u64());
  }
  c.check(min_rate >= 0.2, "success rate >= 0.2 at every m up to " +
                               std::to_string(max_m) + " (min " +
                               num(min_rate, 3) + ")");
  headline = "min success rate " + num(min_rate, 3) + " (m <= " +
             std::to_string(max_m) + ")";
}

// T7 — empirical crossing probabilities under the lemma bounds.
void eval_t7(const BenchFile& f, Checker& c, std::string& headline) {
  double worst = 0;
  for (const char* series : {"lemma-4.3", "lemma-4.4"}) {
    const Json* rec = require_series(f, series, c);
    if (rec == nullptr) continue;
    bool under = true;
    for (const auto& [key, row] : rec->at("rows").items()) {
      (void)key;
      const double e = row.at("empirical").as_double();
      const double b = row.at("bound").as_double();
      under &= e <= b + 1e-12;
      if (b > 0) worst = std::max(worst, e / b);
    }
    c.check(under, std::string(series) +
                       ": empirical P <= lemma bound at every point");
  }
  headline = "worst empirical/bound ratio " + num(worst, 3);
}

// T8 — ablation optima at the paper's parameter choices.
void eval_t8(const BenchFile& f, Checker& c, std::string& headline) {
  const Json* geo = require_series(f, "geo-thresholds", c);
  if (geo != nullptr) {
    double randomized = -1;
    double deterministic = -1;
    for (const auto& [key, row] : geo->at("rows").items()) {
      (void)key;
      const double tail = row.at("max_expected_cost").as_double();
      if (row.at("thresholds").as_string() == "randomized") {
        randomized = tail;
      } else {
        deterministic = tail;
      }
    }
    if (randomized < 0 || deterministic < 0) {
      c.fail("geo-thresholds: need a randomized and a deterministic row");
    } else {
      c.check(randomized <= deterministic,
              "randomized tail max_u E[cost] " + num(randomized, 3) +
                  " <= deterministic " + num(deterministic, 3));
      headline = "derandomized tail " + num(deterministic / randomized, 3) +
                 "x worse";
    }
  }

  const Json* period = require_series(f, "simple-period", c);
  if (period != nullptr) {
    double paper_cost = -1;
    double best = std::numeric_limits<double>::infinity();
    bool paper_feasible = false;
    for (const auto& [key, row] : period->at("rows").items()) {
      (void)key;
      if (!row.at("feasible").as_bool()) continue;
      const double cost = row.at("mean_cost").as_double();
      best = std::min(best, cost);
      if (row.at("paper_choice").as_bool()) {
        paper_cost = cost;
        paper_feasible = true;
      }
    }
    c.check(paper_feasible, "paper rebuild period floor(eps^-1/3) is "
                            "feasible");
    if (paper_feasible) {
      c.check(paper_cost <= 1.5 * best,
              "paper period cost " + num(paper_cost, 3) +
                  " within 1.5x of the sweep minimum " + num(best, 3));
    }
  }

  const Json* block = require_series(f, "rsum-block", c);
  if (block != nullptr) {
    double paper_cost = -1;
    double best = std::numeric_limits<double>::infinity();
    for (const auto& [key, row] : block->at("rows").items()) {
      (void)key;
      const double cost = row.at("mean_cost").as_double();
      best = std::min(best, cost);
      if (row.at("paper_choice").as_bool()) paper_cost = cost;
    }
    if (paper_cost < 0) {
      c.fail("rsum-block: no paper_choice row");
    } else {
      c.check(paper_cost <= 1.5 * best,
              "paper block size cost " + num(paper_cost, 3) +
                  " within 1.5x of the sweep minimum " + num(best, 3));
    }
  }
}

// T9 — sharded scaling trajectory: every measured point completed
// validated with sane throughput and bounded imbalance.
void eval_t9(const BenchFile& f, Checker& c, std::string& headline) {
  double best_rate = 0;
  std::size_t points = 0;
  for (const char* series : {"shard-scaling", "thread-scaling"}) {
    const Json* rec = require_series(f, series, c);
    if (rec == nullptr) continue;
    bool positive = true;
    bool balanced = true;
    for (const auto& [key, row] : rec->at("rows").items()) {
      (void)key;
      ++points;
      const double rate = row.at("updates_per_second").as_double();
      positive &= rate > 0;
      best_rate = std::max(best_rate, rate);
      balanced &= row.at("imbalance").as_double() <= 2.0;
    }
    c.check(positive, std::string(series) +
                          ": every point has positive updates/sec");
    c.check(balanced, std::string(series) +
                          ": routing imbalance <= 2 at every point");
  }
  headline = "peak " + num(best_rate, 6) + " updates/s over " +
             std::to_string(points) + " points";
}

// T-VAL — incremental validation beats the per-update full audit by
// >= 10x at the largest measured n.
void eval_tval(const BenchFile& f, Checker& c, std::string& headline) {
  const Json* rec = require_series(f, "incremental-vs-audit", c);
  if (rec == nullptr) return;
  std::uint64_t largest_n = 0;
  double speedup_at_largest = 0;
  for (const auto& [key, row] : rec->at("rows").items()) {
    (void)key;
    const std::uint64_t n = row.at("items").as_u64();
    if (n >= largest_n) {
      largest_n = n;
      speedup_at_largest = row.at("audit_over_incremental").as_double();
    }
  }
  c.check(largest_n > 0, "incremental-vs-audit has rows");
  c.check(speedup_at_largest >= 10.0,
          "audit/incremental speedup " + num(speedup_at_largest, 4) +
              " >= 10x at n = " + std::to_string(largest_n));
  headline = num(speedup_at_largest, 4) + "x at n = " +
             std::to_string(largest_n);
}

// T-REL — the unchecked release engine delivers the promised speedup over
// the validated engine on the S = 1 single-thread head-to-head.
void eval_trel(const BenchFile& f, Checker& c, std::string& headline) {
  const Json* rec = require_series(f, "engine-throughput", c);
  if (rec == nullptr) return;
  double validated = 0;
  double release = 0;
  for (const auto& [key, row] : rec->at("rows").items()) {
    (void)key;
    const double rate = row.at("updates_per_second").as_double();
    if (row.at("engine").as_string() == "validated") validated = rate;
    if (row.at("engine").as_string() == "release") release = rate;
  }
  if (validated <= 0 || release <= 0) {
    c.fail("engine-throughput: need validated and release rows with "
           "positive updates/sec");
    return;
  }
  const double speedup = release / validated;
  // Fast-mode sweeps run far fewer updates, so fixed per-run costs eat
  // into the measured ratio; the bar drops accordingly.
  const double bar = f.fast_mode ? 5.0 : 10.0;
  c.check(speedup >= bar,
          "release/validated updates-per-second ratio " + num(speedup, 3) +
              " >= " + num(bar, 1) + "x at S = 1" +
              (f.fast_mode ? " (fast mode)" : ""));
  headline = num(speedup, 3) + "x release over validated";
}

// T-ARENA — the byte-addressed arena layer: every (allocator, engine)
// pair reproduces the tick cost channel exactly, measured byte traffic
// lands inside the granule rounding bound, and the payload-verified
// arena cell still moves bytes at a positive rate on the vm_heap stream.
void eval_tarena(const BenchFile& f, Checker& c, std::string& headline) {
  const Json* diff = require_series(f, "arena-differential", c);
  if (diff != nullptr) {
    bool equal = true;
    bool in_bound = true;
    bool verified = true;
    bool moved = true;
    std::size_t pairs = 0;
    for (const auto& [key, row] : diff->at("rows").items()) {
      (void)key;
      ++pairs;
      equal &= row.at("costs_equal").as_u64() == 1;
      in_bound &= row.at("bytes_in_bound").as_u64() == 1;
      verified &= row.at("payload_verified").as_u64() == 1;
      moved &= row.at("moved_bytes").as_u64() > 0;
    }
    c.check(pairs >= 2, "arena-differential covers " +
                            std::to_string(pairs) + " allocator x engine "
                            "pairs (>= 2)");
    c.check(equal, "tick cost channel identical to the plain cell on "
                   "every pair");
    c.check(in_bound, "moved bytes inside the granule rounding bound "
                      "L*bpt - M*(bpt-1) .. L*bpt on every pair");
    c.check(verified, "payloads pattern-verified on every pair");
    c.check(moved, "every pair physically moved bytes");
    headline = std::to_string(pairs) + " pairs tick-exact, bytes in bound";
  }
  const Json* thr = require_series(f, "arena-throughput", c);
  if (thr != nullptr) {
    double verified_bps = 0;
    for (const auto& [key, row] : thr->at("rows").items()) {
      (void)key;
      if (row.at("verify").as_u64() == 1) {
        verified_bps = row.at("bytes_per_second").as_double();
      }
    }
    c.check(verified_bps > 0,
            "verified arena throughput positive: " + num(verified_bps, 6) +
                " bytes/s on vm_heap");
    if (!headline.empty()) {
      headline += ", " + num(verified_bps / 1e6, 4) + " MB/s verified";
    }
  }
}

// T-SERVE — the online serving layer: deterministic mode reproduces the
// batch sharded engine bit-for-bit on every covered (allocator, engine)
// pair, and the closed-loop load generator reports ordered latency
// percentiles with a positive measured saturation throughput.
void eval_tserve(const BenchFile& f, Checker& c, std::string& headline) {
  const Json* det = require_series(f, "deterministic-verify", c);
  if (det != nullptr) {
    bool costs = true;
    bool layouts = true;
    std::size_t pairs = 0;
    for (const auto& [key, row] : det->at("rows").items()) {
      (void)key;
      ++pairs;
      costs &= row.at("costs_equal").as_u64() == 1;
      layouts &= row.at("layouts_equal").as_u64() == 1;
    }
    c.check(pairs >= 2, "deterministic-verify covers " +
                            std::to_string(pairs) +
                            " allocator x engine pairs (>= 2)");
    c.check(costs, "per-shard cost streams bit-identical to the batch "
                   "engine on every pair");
    c.check(layouts, "final layouts identical to the batch engine on "
                     "every pair");
  }
  const Json* sweep = require_series(f, "latency-sweep", c);
  if (sweep != nullptr) {
    bool positive = true;
    bool ordered = true;
    std::size_t points = 0;
    double sat_qps = 0;
    double sat_p99 = 0;
    std::uint64_t sat_clients = 0;
    for (const auto& [key, row] : sweep->at("rows").items()) {
      (void)key;
      ++points;
      const double qps = row.at("achieved_qps").as_double();
      positive &= qps > 0;
      const double p50 = row.at("p50_us").as_double();
      const double p99 = row.at("p99_us").as_double();
      const double p999 = row.at("p999_us").as_double();
      ordered &= p50 <= p99 + 1e-12 && p99 <= p999 + 1e-12;
      if (row.at("target_qps").as_double() == 0.0 && qps > sat_qps) {
        sat_qps = qps;
        sat_p99 = p99;
        sat_clients = row.at("clients").as_u64();
      }
    }
    c.check(points >= 1, "latency-sweep has measured points");
    c.check(positive, "every point served requests (positive achieved "
                      "qps)");
    c.check(ordered, "p50 <= p99 <= p999 at every point");
    c.check(sat_qps > 0,
            "a saturation (target qps = 0) point was measured: peak " +
                num(sat_qps, 6) + " req/s");
    headline = "sat " + num(sat_qps, 6) + " req/s, p99 " +
               num(sat_p99, 4) + " us at C = " +
               std::to_string(sat_clients);
  }
  const Json* metrics = require_series(f, "metrics-consistency", c);
  if (metrics != nullptr) {
    bool match = true;
    std::size_t points = 0;
    for (const auto& [key, row] : metrics->at("rows").items()) {
      (void)key;
      ++points;
      match &= row.at("counters_match").as_u64() == 1;
    }
    c.check(points >= 1, "metrics-consistency has measured points");
    c.check(match, "summed per-shard cell counters equal the merged "
                   "RunStats totals exactly on every point");
  }
  const Json* overhead = require_series(f, "metrics-overhead", c);
  if (overhead != nullptr) {
    // Same fast-mode relaxation scheme as the T-REL throughput bar:
    // smoke-sized points are noise-dominated.
    const double bar = f.fast_mode ? 0.85 : 0.95;
    for (const auto& [key, row] : overhead->at("rows").items()) {
      (void)key;
      const double ratio = row.at("ratio").as_double();
      c.check(ratio >= bar,
              "metrics-on saturation throughput is " + num(ratio, 4) +
                  "x metrics-off (>= " + num(bar, 2) + " required" +
                  (f.fast_mode ? ", fast mode)" : ")"));
    }
  }
}

// T-ADV — the adversarial performance search: guided mutation pressure
// seeded from the scenario zoo must not push any registry allocator over
// its CostBudget ceiling, folklore (the Theta(eps^-1) baseline) must
// remain measurably easier to hurt than SIMPLE, the folklore-windowed
// search must clearly beat its best zoo seed (the machinery finds
// structure the zoo alone misses), and every shrunk reproducer must
// retain >= 90% of its found ratio.
void eval_tadv(const BenchFile& f, Checker& c, std::string& headline) {
  const Json* rec = require_series(f, "adv-ratio", c);
  if (rec == nullptr) return;

  bool all_under = true;
  bool all_retained = true;
  std::size_t rows = 0;
  double worst_ratio = 0;
  std::string worst_allocator;
  double compact_found = 0;
  double simple_found = 0;
  double windowed_gain = 0;
  for (const auto& [key, row] : rec->at("rows").items()) {
    (void)key;
    ++rows;
    const std::string allocator = row.at("allocator").as_string();
    const double found = row.at("found_ratio").as_double();
    all_under &= found < row.at("budget_ceiling").as_double();
    all_retained &= row.at("shrink_retained").as_double() >= 0.9;
    if (found > worst_ratio) {
      worst_ratio = found;
      worst_allocator = allocator;
    }
    if (allocator == "folklore_compact") compact_found = found;
    if (allocator == "simple") simple_found = found;
    if (allocator == "folklore_windowed") {
      windowed_gain = row.at("gain").as_double();
    }
  }
  const std::size_t min_rows = f.fast_mode ? 5 : 9;
  c.check(rows >= min_rows,
          "adv-ratio covers " + std::to_string(rows) + " allocators (>= " +
              std::to_string(min_rows) +
              (f.fast_mode ? ", fast mode)" : ")"));
  c.check(all_under,
          "every found ratio stays under its CostBudget ceiling");
  c.check(all_retained,
          "every shrunk reproducer retains >= 0.9 of its found ratio");
  const double margin =
      simple_found > 0 ? compact_found / simple_found : 0.0;
  c.check(margin >= 1.15,
          "folklore-compact's found ratio exceeds SIMPLE's by " +
              num(margin, 3) + "x (>= 1.15 — the guided search "
              "reproduces the folklore-vs-SIMPLE separation)");
  c.check(windowed_gain >= 1.5,
          "folklore-windowed search gain over its best zoo seed: " +
              num(windowed_gain, 3) + "x (>= 1.5)");
  headline = "worst found ratio " + num(worst_ratio, 4) + " (" +
             worst_allocator + "), all under budget";
}

using EvalFn = void (*)(const BenchFile&, Checker&, std::string&);

struct ClaimRule {
  ClaimSpec spec;
  EvalFn eval;
};

const std::vector<ClaimRule>& claim_rules() {
  static const std::vector<ClaimRule> kRules = {
      {{"T0", "Folklore baseline", "folklore", "Introduction",
        "pigeonhole first-fit pays O(eps^-1); the windowed variant's max "
        "cost tracks 3/eps"},
       eval_t0},
      {{"T1", "SIMPLE", "simple", "Theorem 3.1",
        "sizes in [eps, 2eps) => amortized O(eps^-2/3), clearly below "
        "folklore's Theta(eps^-1)"},
       eval_t1},
      {{"T2", "GEO", "geo", "Theorem 4.1",
        "sizes in [eps^5, 1] => expected O~(eps^-1/2) — sub-linear fitted "
        "exponent"},
       eval_t2},
      {{"T3", "COMBINED + FLEXHASH", "combined",
        "Corollary 4.10 / Lemma 4.9",
        "arbitrary sizes, resizable, expected O~(eps^-1/2); external "
        "updates cost O(1)"},
       eval_t3},
      {{"T4", "Lower bound", "lower_bound", "Theorem 5.1",
        "the two-size sequence forces amortized Omega(log eps^-1) on any "
        "resizable allocator"},
       eval_t4},
      {{"T5", "RSUM", "rsum", "Theorem 6.1",
        "delta-random-item sequences => expected O(log eps^-1) cost, "
        "strategy computation O(eps^-1/2)"},
       eval_t5},
      {{"T6", "Subset sums", "subset_sum", "Theorem 6.2",
        "random m-sets contain an (m/2)-subset hitting a width-(log n)/n "
        "window with probability Omega(1)"},
       eval_t6},
      {{"T7", "Randomized thresholds", "thresholds", "Lemmas 4.3/4.4",
        "threshold-crossing probabilities stay under the lemma bounds"},
       eval_t7},
      {{"T8", "Ablations", "ablations", "design choices",
        "derandomizing GEO degrades the tail; SIMPLE / RSUM parameter "
        "optima sit at the paper's choices"},
       eval_t8},
      {{"T9", "Sharded engine scaling", "shard", "repo trajectory",
        "validated sharded churn: sane throughput and bounded imbalance "
        "across the (shards x threads) sweep"},
       eval_t9},
      {{"T-VAL", "Incremental validation", "validation", "repo trajectory",
        "verified runs cost O(log n) per update, not O(n log n): >= 10x "
        "over the per-update full audit"},
       eval_tval},
      {{"T-REL", "Release engine throughput", "shard", "repo trajectory",
        "the unchecked slab fast path sustains >= 10x validated "
        "updates/sec at S = 1 (>= 5x in fast mode)"},
       eval_trel},
      {{"T-ARENA", "Byte-addressed arena", "arena", "repo trajectory",
        "arena-backed cells reproduce the tick cost channel exactly, "
        "measured byte traffic obeys the granule rounding bound, and "
        "payload-verified runs sustain positive bytes/sec"},
       eval_tarena},
      {{"T-SERVE", "Online serving layer", "serve", "repo trajectory",
        "MPSC-queued shard workers serve concurrent clients: "
        "deterministic mode is bit-identical to the batch engine, the "
        "closed-loop load generator reports ordered p50/p99/p999 with "
        "positive saturation throughput, per-shard metric counters "
        "equal RunStats exactly, and wiring metrics costs < 5% "
        "saturation throughput"},
       eval_tserve},
      {{"T-ADV", "Adversarial search", "adv", "repo trajectory",
        "zoo-seeded guided mutation search: no registry allocator's "
        "found cost ratio crosses its CostBudget ceiling, folklore "
        "stays >= 1.15x easier to hurt than SIMPLE, the folklore-"
        "windowed search beats its best zoo seed >= 1.5x, and shrunk "
        "reproducers retain >= 90% of the found ratio"},
       eval_tadv},
  };
  return kRules;
}

}  // namespace

std::string status_name(Status s) {
  switch (s) {
    case Status::kPass: return "PASS";
    case Status::kFail: return "FAIL";
    case Status::kMissing: return "MISSING";
  }
  return "?";
}

const std::vector<ClaimSpec>& claim_specs() {
  static const std::vector<ClaimSpec> kSpecs = [] {
    std::vector<ClaimSpec> specs;
    for (const ClaimRule& rule : claim_rules()) specs.push_back(rule.spec);
    return specs;
  }();
  return kSpecs;
}

namespace {

/// updates/sec per point key for one series' rows.  The key is the
/// `key_field` value rendered as a string (engine name, shard count).
std::map<std::string, double> floor_points(const Json& rec,
                                           const std::string& key_field) {
  std::map<std::string, double> points;
  for (const auto& [idx, row] : rec.at("rows").items()) {
    (void)idx;
    const Json& key = row.at(key_field);
    const std::string name =
        key.is_string() ? key.as_string() : std::to_string(key.as_u64());
    points[name] = row.at("updates_per_second").as_double();
  }
  return points;
}

}  // namespace

FloorResult check_throughput_floor(const BenchSet& current,
                                   const BenchFile& baseline,
                                   double floor_ratio) {
  FloorResult out;
  auto fail = [&](const std::string& what) {
    out.lines.push_back("FAIL: " + what);
    out.ok = false;
  };
  const BenchFile* cur = current.find("shard");
  if (cur == nullptr) {
    fail("BENCH_shard.json not found in the bench dir — run bench_shard");
    return out;
  }
  if (cur->fast_mode != baseline.fast_mode) {
    out.lines.push_back(
        std::string("note: fast-mode mismatch (current ") +
        (cur->fast_mode ? "fast" : "full") + ", floor " +
        (baseline.fast_mode ? "fast" : "full") +
        ") — updates/sec is a rate, comparison proceeds");
  }
  struct SeriesSpec {
    const char* series;
    const char* key_field;
    const char* label;
  };
  constexpr SeriesSpec kSeries[] = {
      {"engine-throughput", "engine", "engine "},
      {"shard-scaling", "shards", "S = "},
  };
  for (const SeriesSpec& s : kSeries) {
    const Json* brec = baseline.find_series(s.series);
    const Json* crec = cur->find_series(s.series);
    if (brec == nullptr) {
      out.lines.push_back(std::string("note: floor artifact ") +
                          baseline.path + " has no \"" + s.series +
                          "\" series — skipped");
      continue;
    }
    if (crec == nullptr) {
      fail(std::string("series \"") + s.series + "\" missing from " +
           cur->path + " but present in the floor artifact");
      continue;
    }
    const std::map<std::string, double> floors =
        floor_points(*brec, s.key_field);
    const std::map<std::string, double> rates =
        floor_points(*crec, s.key_field);
    for (const auto& [key, base] : floors) {
      const auto it = rates.find(key);
      if (it == rates.end()) {
        out.lines.push_back("note: " + std::string(s.label) + key +
                            " in the floor artifact has no current point");
        continue;
      }
      const double floor = base * floor_ratio;
      const bool ok = it->second >= floor;
      std::string line =
          std::string(s.series) + " " + s.label + key + ": " +
          num(it->second, 6) + " updates/s vs floor " + num(floor, 6) +
          " (" + num(floor_ratio, 3) + " x " + num(base, 6) + ")";
      out.lines.push_back((ok ? "ok: " : "FAIL: ") + line);
      out.ok &= ok;
    }
  }
  return out;
}

std::vector<ClaimResult> evaluate_claims(const BenchSet& set) {
  std::vector<ClaimResult> results;
  const std::vector<ClaimRule>& rules = claim_rules();
  const std::vector<ClaimSpec>& specs = claim_specs();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    ClaimResult r;
    r.spec = &specs[i];
    const BenchFile* file = set.find(rules[i].spec.bench);
    if (file == nullptr) {
      r.status = Status::kMissing;
      r.checks.push_back("FAIL: BENCH_" + rules[i].spec.bench +
                         ".json not found — run bench_" +
                         rules[i].spec.bench);
      results.push_back(std::move(r));
      continue;
    }
    Checker c;
    try {
      rules[i].eval(*file, c, r.headline);
    } catch (const JsonParseError& e) {
      c.fail(file->path + ": " + e.what());
    } catch (const ReportError& e) {
      c.fail(e.what());
    }
    r.status = c.failed() ? Status::kFail : Status::kPass;
    r.checks = c.take();
    results.push_back(std::move(r));
  }
  return results;
}

}  // namespace memreal::report
