#include "report/markdown.h"

#include <cmath>

#include "harness/experiment.h"
#include "util/table.h"

namespace memreal::report {

namespace {

std::string num(double v, int digits = 4) { return Table::num(v, digits); }

std::string cell(const Json& v) {
  if (v.is_uint()) return std::to_string(v.as_u64());
  if (v.is_number()) return num(v.as_double());
  if (v.is_string()) return v.as_string();
  if (v.is_bool()) return v.as_bool() ? "yes" : "no";
  if (v.is_null()) return "—";
  return v.dump();
}

void md_row(std::string& out, const std::vector<std::string>& cells) {
  out += "|";
  for (const std::string& c : cells) out += " " + c + " |";
  out += "\n";
}

void md_header(std::string& out, const std::vector<std::string>& cells) {
  md_row(out, cells);
  out += "|";
  for (std::size_t i = 0; i < cells.size(); ++i) out += "---|";
  out += "\n";
}

/// Generic table for rows of flat objects: columns are the keys of the
/// rows in first-appearance order.
std::string generic_rows_table(const Json& rows) {
  std::vector<std::string> columns;
  for (const auto& [key, row] : rows.items()) {
    (void)key;
    for (const auto& [col, value] : row.items()) {
      (void)value;
      bool known = false;
      for (const std::string& c : columns) known |= c == col;
      if (!known) columns.push_back(col);
    }
  }
  std::string out;
  md_header(out, columns);
  for (const auto& [key, row] : rows.items()) {
    (void)key;
    std::vector<std::string> cells;
    for (const std::string& col : columns) {
      const Json* v = row.find(col);
      cells.push_back(v == nullptr ? "" : cell(*v));
    }
    md_row(out, cells);
  }
  return out;
}

/// The fixed-column table for eps_sweep rows (wall-µs stays in the JSON
/// only — it is machine noise, not a reproduction artifact).
std::string eps_sweep_table(const std::vector<EpsRow>& rows) {
  std::string out;
  md_header(out, {"eps", "1/eps", "updates", "mean_cost", "±sd",
                  "ratio_cost", "p99", "max", "decide_µs"});
  for (const EpsRow& r : rows) {
    md_row(out, {num(r.eps), num(1.0 / r.eps, 5), std::to_string(r.updates),
                 num(r.mean_cost), num(r.mean_cost_stddev, 2),
                 num(r.ratio_cost), num(r.p99_cost), num(r.max_cost),
                 num(r.decision_us_per_update, 3)});
  }
  return out;
}

std::string fit_lines(const std::string& fit_kind,
                      const std::vector<EpsRow>& rows) {
  std::string out;
  if (rows.size() < 2) return out;
  if (fit_kind == "power" || fit_kind == "both") {
    const PowerLawFit f = fit_cost_exponent(rows);
    out += "Fit: cost ~ (1/eps)^" + num(f.exponent, 3) + " (r² " +
           num(f.r2, 3) + ")\n";
  }
  if (fit_kind == "log" || fit_kind == "both") {
    const LinearFit f = fit_cost_log(rows);
    out += "Fit: cost ~ " + num(f.intercept, 3) + " + " + num(f.slope, 3) +
           "·log2(1/eps) (r² " + num(f.r2, 3) + ")\n";
  }
  return out;
}

std::string seeds_list(const std::vector<std::uint64_t>& seeds) {
  std::string out = "[";
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(seeds[i]);
  }
  return out + "]";
}

std::string record_section(const Json& rec) {
  std::string out;
  const Json* series = rec.find("series");
  const Json* allocator = rec.find("allocator");
  const Json* workload = rec.find("workload");
  out += "**" + (series != nullptr ? series->as_string() : "?") + "**";
  if (allocator != nullptr) out += " — `" + allocator->as_string() + "`";
  if (workload != nullptr) out += " on " + workload->as_string();
  out += ":\n\n";
  const Json& rows = rec.at("rows");
  const Json* kind = rec.find("kind");
  if (kind != nullptr && kind->as_string() == "eps_sweep") {
    const std::vector<EpsRow> eps_rows = eps_rows_from_json(rows);
    out += eps_sweep_table(eps_rows);
    const Json* fit = rec.find("fit");
    if (fit != nullptr && fit->as_string() != "none") {
      out += "\n" + fit_lines(fit->as_string(), eps_rows);
    }
  } else {
    out += generic_rows_table(rows);
  }
  return out;
}

}  // namespace

std::string begin_marker(const std::string& claim_id) {
  return "<!-- memreal_report:begin " + claim_id + " -->";
}

std::string end_marker(const std::string& claim_id) {
  return "<!-- memreal_report:end " + claim_id + " -->";
}

std::string render_claim_block(const BenchSet& set,
                               const ClaimResult& result) {
  std::string out;
  out += "**Verdict: " + status_name(result.status) + "**";
  if (!result.headline.empty()) out += " — " + result.headline;
  out += "\n";

  const BenchFile* file = set.find(result.spec->bench);
  if (file != nullptr) {
    out += "\nSource: `BENCH_" + file->bench + ".json` · git `" +
           file->git_describe + "` · " +
           (file->fast_mode ? "fast (shrunk) sweeps" : "full sweeps") +
           " · seeds " + seeds_list(file->seeds) + "\n";
    for (const Json* rec : file->records()) {
      const Json* claim = rec->find("claim");
      if (claim == nullptr || !claim->is_string() ||
          claim->as_string() != result.spec->id) {
        continue;
      }
      out += "\n" + record_section(*rec);
    }
  }

  if (!result.checks.empty()) {
    out += "\nChecks:\n";
    for (const std::string& line : result.checks) out += "- " + line + "\n";
  }
  return out;
}

std::string render_report(const BenchSet& set,
                          const std::vector<ClaimResult>& rs) {
  std::string out;
  out +=
      "# Reproduction report\n"
      "\n"
      "Generated by `memreal_report` from the `BENCH_*.json` artifacts the\n"
      "bench binaries emit — do not edit by hand.  Regenerate with:\n"
      "\n"
      "```sh\n"
      "for b in build/bench/bench_*; do MEMREAL_FAST=1 $b "
      "--benchmark_filter='^$'; done\n"
      "./build/tools/memreal_report --check\n"
      "```\n"
      "\n"
      "Fits are recomputed from the recorded rows by this tool\n"
      "(`fit_cost_exponent` / `fit_cost_log`); drop `MEMREAL_FAST=1` for\n"
      "the full sweeps (minutes instead of seconds, tighter fits).\n";

  out += "\n## Claim verdicts\n\n";
  md_header(out, {"claim", "paper locus", "bench", "verdict", "headline"});
  for (const ClaimResult& r : rs) {
    md_row(out, {r.spec->id, r.spec->paper, "`bench_" + r.spec->bench + "`",
                 status_name(r.status),
                 r.headline.empty() ? "—" : r.headline});
  }

  out += "\n## Provenance\n\n";
  md_header(out, {"artifact", "git", "mode", "seeds", "records"});
  for (const auto& [bench, file] : set.by_bench) {
    (void)bench;
    md_row(out, {"`BENCH_" + file.bench + ".json`",
                 "`" + file.git_describe + "`",
                 file.fast_mode ? "fast" : "full", seeds_list(file.seeds),
                 std::to_string(file.records().size())});
  }

  for (const ClaimResult& r : rs) {
    out += "\n## " + r.spec->id + " — " + r.spec->title + " (`bench_" +
           r.spec->bench + "`)\n\n";
    out += "**Claim (" + r.spec->paper + "):** " + r.spec->claim + ".\n\n";
    out += render_claim_block(set, r);
  }
  return out;
}

MarkerRewrite rewrite_marker_blocks(
    const std::string& text,
    const std::map<std::string, std::string>& blocks) {
  MarkerRewrite out;
  out.text = text;
  for (const auto& [id, block] : blocks) {
    const std::string begin = begin_marker(id);
    const std::string end = end_marker(id);
    const std::size_t b = out.text.find(begin);
    if (b == std::string::npos) {
      out.unmatched.push_back(id);
      continue;
    }
    const std::size_t content_start = b + begin.size();
    const std::size_t e = out.text.find(end, content_start);
    if (e == std::string::npos) {
      throw ReportError("marker " + begin + " has no matching " + end);
    }
    out.text = out.text.substr(0, content_start) + "\n" + block +
               out.text.substr(e);
    out.rewritten.push_back(id);
  }
  return out;
}

}  // namespace memreal::report
