// The release-engine cell: SlabStore + Allocator + ReleaseEngine wired
// behind the Cell seam, so ShardedEngine and the drivers can run the fast
// path through the exact plumbing they use for validated cells.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "harness/cell.h"
#include "release/release_engine.h"
#include "release/slab_store.h"

namespace memreal {

class ReleaseCell final : public Cell {
 public:
  ReleaseCell(Tick capacity, Tick eps_ticks, const CellConfig& config);

  ReleaseCell(const ReleaseCell&) = delete;
  ReleaseCell& operator=(const ReleaseCell&) = delete;

  [[nodiscard]] SlabStore& memory() override { return store_; }
  [[nodiscard]] Allocator& allocator() override { return *allocator_; }
  [[nodiscard]] const std::string& name() const override { return name_; }

  double step(const Update& update) override { return engine_.step(update); }
  RunStats run(std::span<const Update> updates) override {
    return engine_.run(updates);
  }
  [[nodiscard]] const RunStats& stats() const override {
    return engine_.stats();
  }

  void audit() override;

  [[nodiscard]] ReleaseEngine& engine() { return engine_; }

 private:
  std::string name_;
  SlabStore store_;
  std::unique_ptr<Allocator> allocator_;
  ReleaseEngine engine_;
};

}  // namespace memreal
