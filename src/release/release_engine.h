// The release fast-path engine: drives an allocator through an update
// sequence against a SlabStore with no per-update validation — the exact
// transaction bracketing and RunStats accounting of Engine, minus every
// check.  The hot loop is devirtualized (concrete SlabStore&) and run()
// applies updates in fixed-size batches.
//
// Correctness is NOT established here: the lockstep differential suite
// (ctest -L release) proves ReleaseEngine bit-identical to the validated
// Engine — layouts, per-update costs, and RunStats — for every registry
// allocator, and memreal_fuzz --engine release soaks the same equivalence
// on every fuzz campaign.
#pragma once

#include <cstddef>
#include <span>

#include "core/allocator.h"
#include "core/run_stats.h"
#include "core/update.h"
#include "obs/metrics.h"
#include "release/slab_store.h"

namespace memreal {

struct ReleaseEngineOptions {
  /// Updates applied per batch in run(); a batch is one tight inner loop
  /// with no per-update branching beyond the allocator calls.
  std::size_t batch_size = 1024;
  /// Observability instruments for this cell (null pointers = off).
  obs::CellMetrics metrics;
};

class ReleaseEngine {
 public:
  ReleaseEngine(SlabStore& store, Allocator& allocator,
                ReleaseEngineOptions options = {});

  /// Applies all updates in batches and returns the accumulated
  /// statistics (bit-identical to Engine::run on the deterministic
  /// fields; wall/decision seconds are measured, not replayed).
  RunStats run(std::span<const Update> updates);

  /// Applies a single update and returns its cost L/k.
  double step(const Update& update);

  [[nodiscard]] const RunStats& stats() const { return stats_; }
  [[nodiscard]] SlabStore& store() { return *store_; }
  [[nodiscard]] Allocator& allocator() { return *allocator_; }

 private:
  /// The unchecked per-update kernel shared by step() and run().
  Tick apply(const Update& update);

  SlabStore* store_;
  Allocator* allocator_;
  ReleaseEngineOptions options_;
  RunStats stats_;
};

}  // namespace memreal
