// The release fast-path layout store.
//
// SlabStore implements the same LayoutStore contract as the validating
// Memory model, but swaps the node-based std::map/multiset machinery for a
// flat slab of SoA item records and performs NO per-update validation —
// only the O(1) cost counters the paper's model requires (moved mass,
// live/extent mass, update count).
//
// Layout of the slab:
//
//   ids_ / offsets_ / sizes_ / extents_   dense parallel arrays, one slot
//                                         per live item; slots are kept
//                                         dense by swap-with-last removal
//   map_keys_ / map_slots_                open-addressed id -> slot table
//                                         (power-of-two, linear probing,
//                                         backward-shift deletion): O(1)
//                                         point queries
//   by_offset_ / index_pos_               slot indices sorted by
//                                         (offset, id), plus the inverse
//                                         permutation (slot -> position):
//                                         ordered queries are binary
//                                         searches over contiguous memory;
//                                         mutations find their own entry
//                                         in O(1) via index_pos_
//   span_ / span_dirty_                   cached max offset+extent; moving
//                                         or shrinking the rightmost item
//                                         marks it dirty and the next
//                                         span_end() recomputes with one
//                                         O(n) scan of the slab
//
// Two structural facts keep the hot path cheap.  First, compaction-style
// moves (every SIMPLE rebuild / covering-set compaction) slide items left
// without reordering, so move_to only touches by_offset_ when the
// (offset, id) order actually changes — the common move is two array
// writes.  Second, span_end() is rarely read between updates, so the span
// cache is a scalar with lazy recompute instead of a sorted multiset that
// would charge two binary-search insertions per move.
//
// The (offset, id) sort key matches Memory's index exactly, so every
// ordered query (item_at, first_at_or_after, neighbors_of, snapshot, ...)
// returns bit-identical results and any allocator run produces a
// bit-identical layout and per-update cost stream on either store.
//
// What is NOT checked here (and which tier covers it instead):
//
//   * extent disjointness, span/load bounds, mass-accounting drift — the
//     lockstep differential suite (ctest -L release) and the fuzz oracle's
//     release mode (memreal_fuzz --engine release) compare every update
//     against the validated engine; the explicit audit() below performs
//     the full structural check on demand (end-of-run, fuzz verdicts).
//   * adversary promises (load factor) per update — audited at run end.
//
// Only O(1) usage assertions remain on the hot path (unknown id, nested
// update, zero size): they prevent undefined behavior, not layout bugs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/layout_store.h"
#include "util/check.h"
#include "util/types.h"

namespace memreal {

class SlabStore final : public LayoutStore {
 public:
  SlabStore(Tick capacity, Tick eps_ticks, ValidationPolicy policy = {});

  SlabStore(const SlabStore&) = delete;
  SlabStore& operator=(const SlabStore&) = delete;
  SlabStore(SlabStore&&) = default;
  SlabStore& operator=(SlabStore&&) = default;

  // -- Transactions -------------------------------------------------------

  void begin_update(Tick update_size, bool is_insert) override;
  Tick end_update() override;
  [[nodiscard]] bool in_update() const override { return in_update_; }
  [[nodiscard]] Tick moved_in_update() const override { return moved_; }

  // -- Layout mutation ----------------------------------------------------

  void place(ItemId id, Tick offset, Tick size, Tick extent = 0) override;
  void move_to(ItemId id, Tick offset) override;
  void set_extent(ItemId id, Tick extent) override;
  void reset_extent(ItemId id) override;
  void reset_extents(std::span<const ItemId> ids) override;
  void remove(ItemId id) override;
  Tick apply_run(std::span<const ItemId> ids, Tick offset) override;

  // -- Point queries ------------------------------------------------------

  [[nodiscard]] bool contains(ItemId id) const override {
    return probe(id) != kNoSlot;
  }
  [[nodiscard]] Tick offset_of(ItemId id) const override {
    return offsets_[slot_of(id)];
  }
  [[nodiscard]] Tick size_of(ItemId id) const override {
    return sizes_[slot_of(id)];
  }
  [[nodiscard]] Tick extent_of(ItemId id) const override {
    return extents_[slot_of(id)];
  }
  [[nodiscard]] Tick end_of(ItemId id) const override {
    const std::uint32_t s = slot_of(id);
    return offsets_[s] + extents_[s];
  }

  [[nodiscard]] std::size_t item_count() const override {
    return ids_.size();
  }
  [[nodiscard]] Tick live_mass() const override { return live_mass_; }
  [[nodiscard]] Tick extent_mass() const override { return extent_mass_; }
  [[nodiscard]] Tick span_end() const override {
    if (span_dirty_) recompute_span();
    return span_;
  }

  [[nodiscard]] Tick capacity() const override { return capacity_; }
  [[nodiscard]] Tick eps_ticks() const override { return eps_ticks_; }

  [[nodiscard]] Tick total_moved() const override { return total_moved_; }
  [[nodiscard]] std::size_t update_count() const override {
    return updates_;
  }

  // -- Ordered (by-offset) queries ----------------------------------------

  [[nodiscard]] std::optional<PlacedItem> item_at(Tick offset) const override;
  [[nodiscard]] std::optional<PlacedItem> first_at_or_after(
      Tick offset) const override;
  [[nodiscard]] std::optional<PlacedItem> last_before(
      Tick offset) const override;
  [[nodiscard]] std::optional<PlacedItem> first_item() const override;
  [[nodiscard]] std::optional<PlacedItem> last_item() const override;
  [[nodiscard]] Neighbors neighbors_of(ItemId id) const override;
  [[nodiscard]] std::vector<PlacedItem> items_in(Tick from,
                                                 Tick to) const override;
  [[nodiscard]] std::vector<PlacedItem> snapshot() const override;
  [[nodiscard]] std::vector<std::pair<Tick, Tick>> gaps() const override;

  // -- Validation ---------------------------------------------------------

  /// Full O(n log n) structural check: SoA/map/index/span consistency,
  /// extent disjointness, mass totals, policy-gated span and load bounds.
  /// Never runs implicitly — the release engine calls it only at run end
  /// (and the fuzz oracle when judging a failure).
  void audit() const override;

  [[nodiscard]] ValidationPolicy& policy() override { return policy_; }
  [[nodiscard]] const ValidationPolicy& policy() const override {
    return policy_;
  }

  /// Test-only fault injection: shifts the stored offset of the first
  /// item in offset order by `delta` WITHOUT touching by_offset_, the
  /// span cache, or the id map — exactly the stale-index corruption a
  /// slab bug would produce.  Exists so the fuzz oracle's release mode
  /// can prove it catches (and shrinks) slab corruption; never called
  /// outside tests.
  void debug_corrupt_first_offset(Tick delta);

 private:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  /// SplitMix64 finalizer — full-avalanche id hash for the open-addressed
  /// table (sequential ids would otherwise cluster probes).
  static std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return x;
  }

  /// Open-addressed lookup; kNoSlot when absent.
  [[nodiscard]] std::uint32_t probe(ItemId id) const {
    const std::size_t mask = map_keys_.size() - 1;
    std::size_t b = static_cast<std::size_t>(mix(id)) & mask;
    while (map_keys_[b] != kNoItem) {
      if (map_keys_[b] == id) return map_slots_[b];
      b = (b + 1) & mask;
    }
    return kNoSlot;
  }
  /// Like probe(), but a missing id is a usage error.
  [[nodiscard]] std::uint32_t slot_of(ItemId id) const {
    const std::uint32_t s = probe(id);
    MEMREAL_CHECK_MSG(s != kNoSlot, "unknown item id " << id);
    return s;
  }
  void map_insert(ItemId id, std::uint32_t slot);
  void map_erase(ItemId id);
  void map_set(ItemId id, std::uint32_t slot);
  void map_grow();

  /// (offset, id) order of two slots — the index sort key.
  [[nodiscard]] bool slot_less(std::uint32_t a, std::uint32_t b) const {
    return offsets_[a] != offsets_[b] ? offsets_[a] < offsets_[b]
                                      : ids_[a] < ids_[b];
  }
  /// Position in by_offset_[lo, hi) of the first slot with
  /// (offset, id) >= key.
  [[nodiscard]] std::size_t index_lower_bound(std::size_t lo, std::size_t hi,
                                              Tick offset, ItemId id) const;
  [[nodiscard]] std::size_t index_lower_bound(Tick offset, ItemId id) const {
    return index_lower_bound(0, by_offset_.size(), offset, id);
  }
  /// Re-seats by_offset_[pos] (whose stored offset just changed) so the
  /// index is sorted again; refreshes index_pos_ for every shifted entry.
  void index_reseat(std::size_t pos);
  /// Core of move_to/apply_run once the slot is known.
  void move_slot(std::uint32_t slot, Tick offset);

  [[nodiscard]] PlacedItem placed(std::uint32_t slot) const {
    return PlacedItem{ids_[slot], offsets_[slot], sizes_[slot],
                      extents_[slot]};
  }

  /// Span-cache maintenance: a new end can only raise a clean cache; a
  /// vanished end invalidates it only when it was the cached max.
  void span_add(Tick end) {
    if (!span_dirty_ && end > span_) span_ = end;
  }
  void span_drop(Tick end) {
    if (end >= span_) span_dirty_ = true;
  }
  void recompute_span() const;

  Tick capacity_;
  Tick eps_ticks_;
  ValidationPolicy policy_;

  std::vector<ItemId> ids_;
  std::vector<Tick> offsets_;
  std::vector<Tick> sizes_;
  std::vector<Tick> extents_;

  std::vector<ItemId> map_keys_;          ///< kNoItem = empty bucket
  std::vector<std::uint32_t> map_slots_;  ///< parallel to map_keys_

  std::vector<std::uint32_t> by_offset_;
  std::vector<std::uint32_t> index_pos_;  ///< slot -> position in by_offset_

  Tick live_mass_ = 0;
  Tick extent_mass_ = 0;

  mutable Tick span_ = 0;
  mutable bool span_dirty_ = false;

  bool in_update_ = false;
  Tick moved_ = 0;
  Tick total_moved_ = 0;
  std::size_t updates_ = 0;
};

}  // namespace memreal
