#include "release/slab_store.h"

#include <algorithm>

#include "util/check.h"

namespace memreal {

namespace {

constexpr std::size_t kInitialBuckets = 64;

}  // namespace

SlabStore::SlabStore(Tick capacity, Tick eps_ticks, ValidationPolicy policy)
    : capacity_(capacity), eps_ticks_(eps_ticks), policy_(policy) {
  MEMREAL_CHECK(capacity > 0);
  MEMREAL_CHECK_MSG(eps_ticks >= 1,
                    "eps truncated to zero ticks — the load-factor and "
                    "resizable-bound checks would be vacuous (see Eps::of)");
  MEMREAL_CHECK_MSG(eps_ticks < capacity, "eps must be < 1");
  map_keys_.assign(kInitialBuckets, kNoItem);
  map_slots_.assign(kInitialBuckets, kNoSlot);
}

// -- Open-addressed id map --------------------------------------------------

void SlabStore::map_insert(ItemId id, std::uint32_t slot) {
  // Grow at 5/8 load so probe chains stay short.
  if ((ids_.size() + 1) * 8 >= map_keys_.size() * 5) map_grow();
  const std::size_t mask = map_keys_.size() - 1;
  std::size_t b = static_cast<std::size_t>(mix(id)) & mask;
  while (map_keys_[b] != kNoItem) b = (b + 1) & mask;
  map_keys_[b] = id;
  map_slots_[b] = slot;
}

void SlabStore::map_set(ItemId id, std::uint32_t slot) {
  const std::size_t mask = map_keys_.size() - 1;
  std::size_t b = static_cast<std::size_t>(mix(id)) & mask;
  while (map_keys_[b] != id) {
    MEMREAL_CHECK_MSG(map_keys_[b] != kNoItem, "unknown item id " << id);
    b = (b + 1) & mask;
  }
  map_slots_[b] = slot;
}

void SlabStore::map_erase(ItemId id) {
  const std::size_t mask = map_keys_.size() - 1;
  std::size_t b = static_cast<std::size_t>(mix(id)) & mask;
  while (map_keys_[b] != id) {
    MEMREAL_CHECK_MSG(map_keys_[b] != kNoItem, "unknown item id " << id);
    b = (b + 1) & mask;
  }
  // Backward-shift deletion: re-seat every entry of the probe chain that
  // follows the hole, so lookups never need tombstones.
  std::size_t hole = b;
  std::size_t next = (b + 1) & mask;
  while (map_keys_[next] != kNoItem) {
    const std::size_t home = static_cast<std::size_t>(mix(map_keys_[next])) &
                             mask;
    // Move the entry into the hole iff the hole lies on the (cyclic) probe
    // path from its home bucket to its current bucket.
    const bool reachable = hole <= next ? (home <= hole || home > next)
                                        : (home <= hole && home > next);
    if (reachable) {
      map_keys_[hole] = map_keys_[next];
      map_slots_[hole] = map_slots_[next];
      hole = next;
    }
    next = (next + 1) & mask;
  }
  map_keys_[hole] = kNoItem;
  map_slots_[hole] = kNoSlot;
}

void SlabStore::map_grow() {
  std::vector<ItemId> old_keys = std::move(map_keys_);
  std::vector<std::uint32_t> old_slots = std::move(map_slots_);
  map_keys_.assign(old_keys.size() * 2, kNoItem);
  map_slots_.assign(old_slots.size() * 2, kNoSlot);
  const std::size_t mask = map_keys_.size() - 1;
  for (std::size_t i = 0; i < old_keys.size(); ++i) {
    if (old_keys[i] == kNoItem) continue;
    std::size_t b = static_cast<std::size_t>(mix(old_keys[i])) & mask;
    while (map_keys_[b] != kNoItem) b = (b + 1) & mask;
    map_keys_[b] = old_keys[i];
    map_slots_[b] = old_slots[i];
  }
}

// -- Ordered index maintenance ----------------------------------------------

std::size_t SlabStore::index_lower_bound(std::size_t lo, std::size_t hi,
                                         Tick offset, ItemId id) const {
  const auto first = by_offset_.begin() + static_cast<std::ptrdiff_t>(lo);
  const auto last = by_offset_.begin() + static_cast<std::ptrdiff_t>(hi);
  const auto it = std::lower_bound(
      first, last, std::pair{offset, id},
      [this](std::uint32_t slot, const std::pair<Tick, ItemId>& key) {
        return std::pair{offsets_[slot], ids_[slot]} < key;
      });
  return static_cast<std::size_t>(it - by_offset_.begin());
}

void SlabStore::index_reseat(std::size_t pos) {
  const std::uint32_t slot = by_offset_[pos];
  const Tick offset = offsets_[slot];
  const ItemId id = ids_[slot];
  const auto base = by_offset_.begin();
  if (pos > 0 && !slot_less(by_offset_[pos - 1], slot)) {
    // Out of order leftward: slide the entry down to its sorted position.
    const std::size_t p = index_lower_bound(0, pos, offset, id);
    std::rotate(base + static_cast<std::ptrdiff_t>(p),
                base + static_cast<std::ptrdiff_t>(pos),
                base + static_cast<std::ptrdiff_t>(pos + 1));
    for (std::size_t i = p; i <= pos; ++i) {
      index_pos_[by_offset_[i]] = static_cast<std::uint32_t>(i);
    }
  } else {
    // Out of order rightward: entries (pos, p) shift left one.
    const std::size_t p =
        index_lower_bound(pos + 1, by_offset_.size(), offset, id);
    std::rotate(base + static_cast<std::ptrdiff_t>(pos),
                base + static_cast<std::ptrdiff_t>(pos + 1),
                base + static_cast<std::ptrdiff_t>(p));
    for (std::size_t i = pos; i < p; ++i) {
      index_pos_[by_offset_[i]] = static_cast<std::uint32_t>(i);
    }
  }
}

// -- Transactions -----------------------------------------------------------

void SlabStore::begin_update(Tick update_size, bool is_insert) {
  MEMREAL_CHECK_MSG(!in_update_, "nested update");
  MEMREAL_CHECK(update_size > 0);
  (void)is_insert;  // the load-factor promise is audited, not gated here
  in_update_ = true;
  moved_ = 0;
}

Tick SlabStore::end_update() {
  MEMREAL_CHECK_MSG(in_update_, "end_update without begin_update");
  in_update_ = false;
  total_moved_ += moved_;
  ++updates_;
  return moved_;
}

// -- Layout mutation --------------------------------------------------------

void SlabStore::place(ItemId id, Tick offset, Tick size, Tick extent) {
  MEMREAL_CHECK_MSG(in_update_, "layout mutation outside an update");
  MEMREAL_CHECK_MSG(probe(id) == kNoSlot, "item " << id << " already placed");
  MEMREAL_CHECK(size > 0);
  if (extent == 0) extent = size;
  MEMREAL_CHECK(extent >= size);
  const auto slot = static_cast<std::uint32_t>(ids_.size());
  ids_.push_back(id);
  offsets_.push_back(offset);
  sizes_.push_back(size);
  extents_.push_back(extent);
  if (by_offset_.empty() || slot_less(by_offset_.back(), slot)) {
    // Rightmost placement (every append-style allocator insert): no shift.
    index_pos_.push_back(static_cast<std::uint32_t>(by_offset_.size()));
    by_offset_.push_back(slot);
  } else {
    const std::size_t pos = index_lower_bound(offset, id);
    by_offset_.insert(by_offset_.begin() + static_cast<std::ptrdiff_t>(pos),
                      slot);
    index_pos_.push_back(static_cast<std::uint32_t>(pos));
    for (std::size_t i = pos + 1; i < by_offset_.size(); ++i) {
      index_pos_[by_offset_[i]] = static_cast<std::uint32_t>(i);
    }
  }
  span_add(offset + extent);
  map_insert(id, slot);
  live_mass_ += size;
  extent_mass_ += extent;
  moved_ += size;
}

void SlabStore::move_slot(std::uint32_t slot, Tick offset) {
  const Tick old_offset = offsets_[slot];
  if (old_offset == offset) return;
  const Tick extent = extents_[slot];
  span_drop(old_offset + extent);
  offsets_[slot] = offset;
  span_add(offset + extent);
  // Compaction moves preserve (offset, id) order; only a move that crosses
  // a neighbor pays the index reseat.
  const std::size_t pos = index_pos_[slot];
  const bool ordered =
      (pos == 0 || slot_less(by_offset_[pos - 1], slot)) &&
      (pos + 1 == by_offset_.size() || slot_less(slot, by_offset_[pos + 1]));
  if (!ordered) index_reseat(pos);
  moved_ += sizes_[slot];
}

void SlabStore::move_to(ItemId id, Tick offset) {
  MEMREAL_CHECK_MSG(in_update_, "layout mutation outside an update");
  move_slot(slot_of(id), offset);
}

Tick SlabStore::apply_run(std::span<const ItemId> ids, Tick offset) {
  MEMREAL_CHECK_MSG(in_update_, "layout mutation outside an update");
  if (ids.size() == ids_.size() && !ids.empty()) {
    // Full-layout rewrite (every SIMPLE rebuild): the run IS the final
    // offset order, so by_offset_ can be written directly — no per-move
    // order checks, no reseat rotations.  Extents >= 1 make the resulting
    // offsets strictly increasing, and the span is the last item's end.
    for (std::size_t k = 0; k < ids.size(); ++k) {
      const std::uint32_t slot = slot_of(ids[k]);
      if (offsets_[slot] != offset) {
        offsets_[slot] = offset;
        moved_ += sizes_[slot];
      }
      by_offset_[k] = slot;
      index_pos_[slot] = static_cast<std::uint32_t>(k);
      offset += extents_[slot];
    }
    span_ = offset;
    span_dirty_ = false;
    return offset;
  }
  // Partial run (covering-set compaction after a delete): relocations
  // almost always preserve (offset, id) order, so each move is an order
  // check plus an offset write; the span resolves once at the end of the
  // run instead of twice per move.
  bool any_moved = false;
  for (const ItemId id : ids) {
    const std::uint32_t slot = slot_of(id);
    if (offsets_[slot] != offset) {
      offsets_[slot] = offset;
      const std::size_t pos = index_pos_[slot];
      const bool ordered =
          (pos == 0 || slot_less(by_offset_[pos - 1], slot)) &&
          (pos + 1 == by_offset_.size() ||
           slot_less(slot, by_offset_[pos + 1]));
      if (!ordered) index_reseat(pos);
      moved_ += sizes_[slot];
      any_moved = true;
    }
    offset += extents_[slot];
  }
  if (any_moved) {
    // Run items are extent-contiguous by construction, so the run's max
    // end is the final `offset`; when the span was clean and the run
    // reaches at or past it, every surviving end is <= `offset` and the
    // span is exact.  A run ending short may have moved the old maximum
    // down — recompute lazily.
    if (!span_dirty_ && offset >= span_) {
      span_ = offset;
    } else {
      span_dirty_ = true;
    }
  }
  return offset;
}

void SlabStore::reset_extents(std::span<const ItemId> ids) {
  MEMREAL_CHECK_MSG(in_update_, "layout mutation outside an update");
  if (ids.size() == ids_.size() && !ids.empty()) {
    // Whole-layout revert (step 1 of every SIMPLE rebuild): one linear
    // pass over the slot arrays instead of one id probe per item.
    for (std::size_t slot = 0; slot < ids_.size(); ++slot) {
      extent_mass_ += sizes_[slot];
      extent_mass_ -= extents_[slot];
      extents_[slot] = sizes_[slot];
    }
    span_dirty_ = true;  // deflation can shrink the rightmost end
    return;
  }
  for (const ItemId id : ids) reset_extent(id);
}

void SlabStore::set_extent(ItemId id, Tick extent) {
  MEMREAL_CHECK_MSG(in_update_, "layout mutation outside an update");
  const std::uint32_t slot = slot_of(id);
  MEMREAL_CHECK_MSG(extent >= sizes_[slot], "extent " << extent
                                                      << " below true size "
                                                      << sizes_[slot]);
  const Tick offset = offsets_[slot];
  span_drop(offset + extents_[slot]);
  span_add(offset + extent);
  extent_mass_ += extent;
  extent_mass_ -= extents_[slot];
  extents_[slot] = extent;
}

void SlabStore::reset_extent(ItemId id) {
  MEMREAL_CHECK_MSG(in_update_, "layout mutation outside an update");
  const std::uint32_t slot = slot_of(id);
  const Tick offset = offsets_[slot];
  const Tick size = sizes_[slot];
  span_drop(offset + extents_[slot]);
  span_add(offset + size);
  extent_mass_ += size;
  extent_mass_ -= extents_[slot];
  extents_[slot] = size;
}

void SlabStore::remove(ItemId id) {
  MEMREAL_CHECK_MSG(in_update_, "layout mutation outside an update");
  const std::uint32_t slot = slot_of(id);
  live_mass_ -= sizes_[slot];
  extent_mass_ -= extents_[slot];
  span_drop(offsets_[slot] + extents_[slot]);
  const std::size_t pos = index_pos_[slot];
  by_offset_.erase(by_offset_.begin() + static_cast<std::ptrdiff_t>(pos));
  for (std::size_t i = pos; i < by_offset_.size(); ++i) {
    index_pos_[by_offset_[i]] = static_cast<std::uint32_t>(i);
  }
  map_erase(id);
  // Swap-with-last keeps the record arrays dense; the moved record's map
  // and index entries must be re-pointed at its new slot.
  const auto last = static_cast<std::uint32_t>(ids_.size() - 1);
  if (slot != last) {
    ids_[slot] = ids_[last];
    offsets_[slot] = offsets_[last];
    sizes_[slot] = sizes_[last];
    extents_[slot] = extents_[last];
    index_pos_[slot] = index_pos_[last];
    by_offset_[index_pos_[slot]] = slot;
    map_set(ids_[slot], slot);
  }
  ids_.pop_back();
  offsets_.pop_back();
  sizes_.pop_back();
  extents_.pop_back();
  index_pos_.pop_back();
}

// -- Span cache -------------------------------------------------------------

void SlabStore::recompute_span() const {
  Tick m = 0;
  for (std::size_t s = 0; s < offsets_.size(); ++s) {
    m = std::max(m, offsets_[s] + extents_[s]);
  }
  span_ = m;
  span_dirty_ = false;
}

// -- Ordered queries --------------------------------------------------------

std::optional<PlacedItem> SlabStore::item_at(Tick offset) const {
  // upper_bound on (offset, kNoItem): the first entry strictly past every
  // id at `offset` — mirror of Memory::item_at.
  std::size_t pos = index_lower_bound(offset, kNoItem);
  if (pos < by_offset_.size() && offsets_[by_offset_[pos]] == offset &&
      ids_[by_offset_[pos]] == kNoItem) {
    ++pos;  // unreachable in practice (kNoItem is never placed), but exact
  }
  if (pos == 0) return std::nullopt;
  const std::uint32_t slot = by_offset_[pos - 1];
  if (offsets_[slot] + extents_[slot] > offset) return placed(slot);
  return std::nullopt;
}

std::optional<PlacedItem> SlabStore::first_at_or_after(Tick offset) const {
  const std::size_t pos = index_lower_bound(offset, ItemId{0});
  if (pos == by_offset_.size()) return std::nullopt;
  return placed(by_offset_[pos]);
}

std::optional<PlacedItem> SlabStore::last_before(Tick offset) const {
  const std::size_t pos = index_lower_bound(offset, ItemId{0});
  if (pos == 0) return std::nullopt;
  return placed(by_offset_[pos - 1]);
}

std::optional<PlacedItem> SlabStore::first_item() const {
  if (by_offset_.empty()) return std::nullopt;
  return placed(by_offset_.front());
}

std::optional<PlacedItem> SlabStore::last_item() const {
  if (by_offset_.empty()) return std::nullopt;
  return placed(by_offset_.back());
}

SlabStore::Neighbors SlabStore::neighbors_of(ItemId id) const {
  const std::uint32_t slot = slot_of(id);
  const std::size_t pos = index_pos_[slot];
  Neighbors out;
  if (pos > 0) out.prev = placed(by_offset_[pos - 1]);
  if (pos + 1 < by_offset_.size()) out.next = placed(by_offset_[pos + 1]);
  return out;
}

std::vector<PlacedItem> SlabStore::items_in(Tick from, Tick to) const {
  std::vector<PlacedItem> out;
  for (std::size_t pos = index_lower_bound(from, ItemId{0});
       pos < by_offset_.size() && offsets_[by_offset_[pos]] < to; ++pos) {
    out.push_back(placed(by_offset_[pos]));
  }
  return out;
}

std::vector<PlacedItem> SlabStore::snapshot() const {
  std::vector<PlacedItem> out;
  out.reserve(by_offset_.size());
  for (const std::uint32_t slot : by_offset_) out.push_back(placed(slot));
  return out;
}

std::vector<std::pair<Tick, Tick>> SlabStore::gaps() const {
  std::vector<std::pair<Tick, Tick>> out;
  Tick cursor = 0;
  for (const std::uint32_t slot : by_offset_) {
    const Tick offset = offsets_[slot];
    if (offset > cursor) out.emplace_back(cursor, offset - cursor);
    cursor = std::max(cursor, offset + extents_[slot]);
  }
  return out;
}

// -- Validation -------------------------------------------------------------

void SlabStore::audit() const {
  MEMREAL_CHECK_MSG(ids_.size() == offsets_.size() &&
                        ids_.size() == sizes_.size() &&
                        ids_.size() == extents_.size(),
                    "SoA array size drift");
  MEMREAL_CHECK_MSG(by_offset_.size() == ids_.size(),
                    "by-offset index size drift");
  MEMREAL_CHECK_MSG(index_pos_.size() == ids_.size(),
                    "position-cache size drift");

  Tick live = 0;
  Tick ext = 0;
  Tick prev_end = 0;
  Tick max_end = 0;
  ItemId prev_id = kNoItem;
  Tick prev_offset = 0;
  for (std::size_t pos = 0; pos < by_offset_.size(); ++pos) {
    const std::uint32_t slot = by_offset_[pos];
    MEMREAL_CHECK_MSG(slot < ids_.size(), "by-offset index slot drift");
    MEMREAL_CHECK_MSG(index_pos_[slot] == pos,
                      "position-cache drift for item " << ids_[slot]);
    const ItemId id = ids_[slot];
    const Tick offset = offsets_[slot];
    const Tick size = sizes_[slot];
    const Tick extent = extents_[slot];
    if (pos > 0) {
      MEMREAL_CHECK_MSG(
          (std::pair{prev_offset, prev_id} < std::pair{offset, id}),
          "by-offset index out of order at item " << id);
    }
    MEMREAL_CHECK_MSG(offset >= prev_end,
                      "overlap: item " << id << " at [" << offset << ", "
                                       << offset + extent
                                       << ") intersects item " << prev_id
                                       << " ending at " << prev_end);
    MEMREAL_CHECK(extent >= size);
    MEMREAL_CHECK_MSG(probe(id) == slot, "id-map drift for item " << id);
    prev_end = offset + extent;
    max_end = std::max(max_end, prev_end);
    prev_id = id;
    prev_offset = offset;
    live += size;
    ext += extent;
  }
  MEMREAL_CHECK_MSG(live == live_mass_, "live-mass accounting drift");
  MEMREAL_CHECK_MSG(ext == extent_mass_, "extent-mass accounting drift");
  MEMREAL_CHECK_MSG(span_end() == max_end, "span-cache drift");

  MEMREAL_CHECK_MSG(max_end <= capacity_, "layout beyond capacity");
  if (policy_.check_resizable_bound) {
    MEMREAL_CHECK_MSG(max_end <= live_mass_ + eps_ticks_,
                      "resizable bound violated: span "
                          << max_end << " > L + eps = "
                          << live_mass_ + eps_ticks_);
  }
  if (policy_.check_load_factor) {
    MEMREAL_CHECK_MSG(live_mass_ + eps_ticks_ <= capacity_,
                      "load factor above 1 - eps");
  }
}

void SlabStore::debug_corrupt_first_offset(Tick delta) {
  MEMREAL_CHECK_MSG(!by_offset_.empty(), "nothing to corrupt");
  offsets_[by_offset_.front()] += delta;
}

}  // namespace memreal
