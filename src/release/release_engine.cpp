#include "release/release_engine.h"

#include <algorithm>
#include <chrono>

#include "obs/trace.h"

namespace memreal {

ReleaseEngine::ReleaseEngine(SlabStore& store, Allocator& allocator,
                             ReleaseEngineOptions options)
    : store_(&store), allocator_(&allocator), options_(options) {
  if (options_.batch_size == 0) options_.batch_size = 1;
  store_->policy().check_resizable_bound = allocator_->resizable();
}

Tick ReleaseEngine::apply(const Update& update) {
  obs::ScopedSpan apply_span(obs::SpanPhase::kApply, options_.metrics.shard);
  const bool is_insert = update.is_insert();
  store_->begin_update(update.size, is_insert);
  if (is_insert) {
    allocator_->insert(update.id, update.size);
  } else {
    allocator_->erase(update.id);
  }
  const Tick moved = store_->end_update();
  stats_.record(is_insert, update.size, moved);
  options_.metrics.on_update(is_insert, update.size, moved, 0);
  return moved;
}

double ReleaseEngine::step(const Update& update) {
  const Tick moved = apply(update);
  return static_cast<double>(moved) / static_cast<double>(update.size);
}

RunStats ReleaseEngine::run(std::span<const Update> updates) {
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t pos = 0;
  while (pos < updates.size()) {
    const std::size_t end =
        std::min(pos + options_.batch_size, updates.size());
    for (std::size_t i = pos; i < end; ++i) {
      apply(updates[i]);
    }
    pos = end;
  }
  const auto t1 = std::chrono::steady_clock::now();
  stats_.wall_seconds += std::chrono::duration<double>(t1 - t0).count();
  stats_.decision_seconds = allocator_->decision_seconds();
  return stats_;
}

}  // namespace memreal
