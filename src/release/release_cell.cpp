#include "release/release_cell.h"

namespace memreal {

ReleaseCell::ReleaseCell(Tick capacity, Tick eps_ticks,
                         const CellConfig& config)
    : name_(config.allocator),
      store_(capacity, eps_ticks),
      allocator_(make_allocator(config.allocator, store_, config.params)),
      engine_(store_, *allocator_, [&] {
        ReleaseEngineOptions options;
        options.metrics = cell_metrics(config);
        return options;
      }()) {}

void ReleaseCell::audit() {
  store_.audit();
  allocator_->check_invariants();
}

}  // namespace memreal
