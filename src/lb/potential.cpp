#include "lb/potential.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "alloc/registry.h"
#include "core/engine.h"
#include "mem/memory.h"
#include "util/check.h"

namespace memreal {

double potential_phi(const std::vector<PlacedItem>& snapshot,
                     const std::function<bool(ItemId)>& is_b,
                     std::size_t n) {
  double phi = 0;
  std::size_t cum_b = 0;
  std::size_t i = 0;
  for (auto it = snapshot.rbegin(); it != snapshot.rend() && i < n; ++it) {
    ++i;
    if (is_b(it->id)) ++cum_b;
    phi += static_cast<double>(cum_b) / static_cast<double>(i);
  }
  return phi;
}

CertifiedRun run_certified_lower_bound(const LowerBoundSpec& spec,
                                       const std::string& allocator_name,
                                       std::uint64_t seed) {
  const Sequence seq = make_lower_bound_sequence(spec);
  ValidationPolicy policy;
  policy.audit_every_n_updates = 1;  // exhaustive: audit + incremental
  Memory mem(spec.capacity, spec.eps_ticks, policy);
  AllocatorParams params;
  params.eps = spec.eps;
  params.delta = std::sqrt(spec.eps);  // RSUM: sizes lie in [delta, 2delta]
  params.seed = seed;
  auto alloc = make_allocator(allocator_name, mem, params);
  Engine engine(mem, *alloc);

  const auto is_b = [&](ItemId id) {
    return id > static_cast<ItemId>(spec.n);
  };

  CertifiedRun out;
  out.allocator = allocator_name;
  out.eps = spec.eps;
  out.n = spec.n;
  out.floor = spec.amortized_floor();

  for (const Update& u : seq.updates) {
    const auto before = mem.snapshot();
    const double phi_before = potential_phi(before, is_b, spec.n);
    engine.step(u);
    const auto after = mem.snapshot();
    const double phi_after = potential_phi(after, is_b, spec.n);

    // Items whose offset changed (the proof's unit of work).
    std::unordered_map<ItemId, Tick> prev;
    prev.reserve(before.size());
    for (const auto& it : before) prev.emplace(it.id, it.offset);
    std::size_t moved = 0;
    for (const auto& it : after) {
      auto pit = prev.find(it.id);
      if (pit != prev.end() && pit->second != it.offset) ++moved;
    }
    out.items_moved += moved;

    const double dphi = phi_after - phi_before;
    if (dphi >= 0) {
      out.phi_conversion_gain += dphi;
    } else {
      out.phi_allocator_drop += -dphi;
      // Full-permutation argument: moving x items lowers Phi by at most x.
      // The update itself (membership/indexing change of the deleted or
      // inserted item) accounts for a small additive slack.
      if (-dphi > static_cast<double>(moved) + 3.0) {
        out.potential_inequality_ok = false;
      }
    }
  }
  out.phi_final = potential_phi(mem.snapshot(), is_b, spec.n);
  out.measured_amortized_cost = engine.stats().mean_cost();
  return out;
}

SequenceFloor sequence_cost_floor(const Sequence& seq) {
  SequenceFloor floor;
  for (const Update& u : seq.updates) {
    if (!u.is_insert()) continue;
    ++floor.inserts;
    floor.write_mass += u.size;
  }
  floor.cost_floor = static_cast<double>(floor.inserts);
  return floor;
}

}  // namespace memreal
