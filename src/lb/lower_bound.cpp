#include "lb/lower_bound.h"

#include <cmath>
#include <cstdlib>

#include "util/check.h"

namespace memreal {

double LowerBoundSpec::harmonic() const {
  double h = 0;
  for (std::size_t i = 1; i <= n; ++i) h += 1.0 / static_cast<double>(i);
  return h;
}

double LowerBoundSpec::amortized_floor() const {
  const double h = harmonic();
  const double ratio =
      static_cast<double>(s2) / static_cast<double>(s1);
  return std::max(0.0, (h - 1.0) / 6.0 * ratio);
}

LowerBoundSpec make_lower_bound_spec(Tick capacity, double eps) {
  MEMREAL_CHECK(eps > 0 && eps <= 1.0 / 16);
  LowerBoundSpec spec;
  spec.capacity = capacity;
  spec.eps = eps;
  const auto cap_d = static_cast<double>(capacity);
  spec.eps_ticks = static_cast<Tick>(eps * cap_d);
  spec.n = static_cast<std::size_t>(std::floor(1.0 / std::sqrt(eps) / 4.0));
  MEMREAL_CHECK_MSG(spec.n >= 2, "eps too large for a meaningful sequence");
  // s2 = sqrt(eps); s1 = s2 + 2 eps exactly in ticks, preserving the
  // no-additive-structure property.
  spec.s2 = static_cast<Tick>(std::sqrt(eps) * cap_d);
  spec.s1 = spec.s2 + 2 * spec.eps_ticks;
  // Feasibility: n items of size s1 plus eps free space fit in memory.
  MEMREAL_CHECK(static_cast<Tick>(spec.n) * spec.s1 + spec.eps_ticks <
                capacity);
  return spec;
}

Sequence make_lower_bound_sequence(const LowerBoundSpec& spec) {
  Sequence seq;
  seq.name = "lower-bound";
  seq.capacity = spec.capacity;
  seq.eps = spec.eps;
  seq.eps_ticks = spec.eps_ticks;
  seq.updates.reserve(3 * spec.n);
  // Insert n A's (ids 1..n).
  for (std::size_t i = 1; i <= spec.n; ++i) {
    seq.updates.push_back(Update::insert(static_cast<ItemId>(i), spec.s1));
  }
  // n iterations: delete an A, insert a B (ids n+1..2n).
  for (std::size_t i = 1; i <= spec.n; ++i) {
    seq.updates.push_back(Update::erase(static_cast<ItemId>(i), spec.s1));
    seq.updates.push_back(
        Update::insert(static_cast<ItemId>(spec.n + i), spec.s2));
  }
  return seq;
}

Tick min_additive_gap(const LowerBoundSpec& spec) {
  Tick best = ~Tick{0};
  for (std::size_t l1 = 0; l1 <= spec.n; ++l1) {
    for (std::size_t l2 = 0; l2 <= spec.n; ++l2) {
      if (l1 == 0 && l2 == 0) continue;
      const auto a = static_cast<long long>(l1 * spec.s1);
      const auto b = static_cast<long long>(l2 * spec.s2);
      best = std::min(best, static_cast<Tick>(std::llabs(a - b)));
    }
  }
  return best;
}

}  // namespace memreal
