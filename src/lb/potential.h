// The potential function Phi of Theorem 5.1, plus a certifier that replays
// an allocator on the lower-bound sequence and verifies the mechanics of
// the proof against the allocator's *actual* layout trace:
//
//  * Phi = sum_{i=1..n} B_i / i over the final i items (by offset order);
//  * per update, the allocator's Phi decrease is at most the number of
//    items it moved (the full-permutation argument);
//  * the measured amortized cost dominates the potential-derived floor.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/allocator.h"
#include "lb/lower_bound.h"
#include "mem/memory.h"

namespace memreal {

/// Phi over a layout snapshot: items sorted by offset; `is_b(id)` marks B
/// items.  Only the final `n` items count (fewer if fewer present).
[[nodiscard]] double potential_phi(const std::vector<PlacedItem>& snapshot,
                                   const std::function<bool(ItemId)>& is_b,
                                   std::size_t n);

struct CertifiedRun {
  std::string allocator;
  double eps = 0;
  std::size_t n = 0;
  double measured_amortized_cost = 0;  ///< mean of per-update L/k
  double floor = 0;                    ///< spec.amortized_floor()
  double phi_final = 0;
  double phi_conversion_gain = 0;  ///< sum of Phi raises from A->B turns
  double phi_allocator_drop = 0;   ///< sum of Phi drops from rearrangement
  std::size_t items_moved = 0;     ///< total item relocations observed
  bool potential_inequality_ok = true;  ///< per-update drop <= moved items

  [[nodiscard]] double floor_ratio() const {
    return floor > 0 ? measured_amortized_cost / floor : 0.0;
  }
};

/// Runs `allocator` (by registry name) on the lower-bound sequence for
/// `spec`, tracking Phi from actual layouts.  Throws on any invariant
/// violation.
[[nodiscard]] CertifiedRun run_certified_lower_bound(
    const LowerBoundSpec& spec, const std::string& allocator_name,
    std::uint64_t seed = 1);

/// The allocator-independent cost floor of an *arbitrary* well-formed
/// sequence — the trivial instantiation of the potential argument, with
/// Phi(prefix) = number of inserts so far.  Every insert must at least
/// write its own item (L >= k, so its cost L/k >= 1) while deletes may be
/// free, hence sum_i L_i/k_i >= #inserts for any allocator.  Two
/// properties make it usable as the denominator of the adversarial
/// search's realized cost ratio (src/perfadv):
///   * monotone under sequence extension (appending updates never
///     decreases the floor), and
///   * invariant under cost-neutral updates (deletes add zero).
struct SequenceFloor {
  std::size_t inserts = 0;
  Tick write_mass = 0;    ///< sum of inserted tick sizes (minimal L total)
  double cost_floor = 0;  ///< lower bound on sum_i L_i/k_i (= inserts)
};

[[nodiscard]] SequenceFloor sequence_cost_floor(const Sequence& seq);

}  // namespace memreal
