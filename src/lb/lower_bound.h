// Theorem 5.1 — the Omega(log eps^-1) lower bound.
//
// Sizes: s1 = sqrt(eps) + 2 eps ("A" items), s2 = sqrt(eps) ("B" items),
// chosen to have no additive structure: for any lambda1, lambda2 in [0, n]
// not both zero, |lambda1 s1 - lambda2 s2| >= 2 eps.  Sequence: insert
// n = eps^{-1/2}/4 A's, then n times (delete an A, insert a B).
//
// Any resizable allocator — even offline — pays amortized Omega(log eps^-1)
// on this sequence.  The proof tracks the potential
//      Phi = sum_{i=1..n} B_i / i,
// where B_i counts B's among the final i items of memory: each A->B
// conversion at the end of memory raises Phi by H_n >= ln n, while an
// allocator move of x items lowers Phi by at most x at cost Omega(x).
#pragma once

#include "util/types.h"
#include "workload/sequence.h"

namespace memreal {

struct LowerBoundSpec {
  Tick capacity = kDefaultCapacity;
  double eps = 1.0 / 64;
  Tick eps_ticks = 0;
  std::size_t n = 0;  ///< floor(eps^{-1/2} / 4)
  Tick s1 = 0;        ///< A size: sqrt(eps) + 2 eps (exact in ticks)
  Tick s2 = 0;        ///< B size: sqrt(eps)

  /// H_n = sum_{i<=n} 1/i, the per-conversion potential gain.
  [[nodiscard]] double harmonic() const;

  /// The certified amortized-cost floor implied by the potential argument
  /// (with explicit constants): (H_n - 1)/6 * s2/s1.
  [[nodiscard]] double amortized_floor() const;
};

[[nodiscard]] LowerBoundSpec make_lower_bound_spec(Tick capacity, double eps);

/// The 3n-update sequence S.  Ids 1..n are the A's (inserted first and
/// deleted in order); ids n+1..2n are the B's.
[[nodiscard]] Sequence make_lower_bound_sequence(const LowerBoundSpec& spec);

/// Checks the no-additive-structure property of (s1, s2) exhaustively over
/// lambda in [0, n]^2 (test helper).  Returns the minimum |l1 s1 - l2 s2|
/// over non-zero pairs.
[[nodiscard]] Tick min_additive_gap(const LowerBoundSpec& spec);

}  // namespace memreal
