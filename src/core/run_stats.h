// Cost accounting for a run of updates.
//
// Section 3 of the paper distinguishes two amortized objectives:
//   (i)  mean of per-update costs:      (1/n) * sum_i L_i / k_i
//   (ii) ratio of totals:               (sum_i L_i) / (sum_i k_i)
// RunStats tracks both, plus maxima, quantiles and the split between
// insert- and delete-triggered movement.
#pragma once

#include <cstddef>
#include <vector>

#include "util/json.h"
#include "util/stats.h"
#include "util/types.h"

namespace memreal {

struct RunStats {
  std::size_t updates = 0;
  std::size_t inserts = 0;
  std::size_t deletes = 0;

  Tick moved_mass = 0;   ///< sum of L_i (ticks)
  Tick update_mass = 0;  ///< sum of k_i (ticks)

  /// Measured bytes physically moved (memmove/stamp traffic).  Zero for
  /// tick-space stores; an arena-backed run reports real byte movement
  /// here alongside the tick-mass channel above.
  Tick moved_bytes = 0;

  StreamingStats cost;         ///< per-update L_i / k_i
  StreamingStats insert_cost;  ///< restricted to inserts
  StreamingStats delete_cost;  ///< restricted to deletes
  Quantiles cost_quantiles;

  double decision_seconds = 0.0;  ///< allocator strategy time (Theorem 6.1)
  double wall_seconds = 0.0;      ///< total engine wall time

  /// Objective (i): mean per-update cost.
  [[nodiscard]] double mean_cost() const { return cost.mean(); }
  /// Objective (ii): total moved over total updated mass.
  [[nodiscard]] double ratio_cost() const;
  [[nodiscard]] double max_cost() const { return cost.max(); }

  void record(bool is_insert, Tick update_size, Tick moved,
              Tick moved_bytes = 0);
  void merge(const RunStats& other);

  /// The full stats block as JSON — counts, masses, cost moments, and
  /// (when samples were retained) cost quantiles.  Every tool's --json
  /// output embeds this so the schema stays uniform across drivers.
  [[nodiscard]] Json to_json() const;
};

}  // namespace memreal
