// The allocator interface — the library's central abstraction.
//
// An Allocator owns the *placement policy*; all physical effects go through
// the Memory it was constructed with, which accounts cost and validates
// invariants.  Implementations in src/alloc:
//
//   FolkloreCompact / FolkloreWindowed   — the O(eps^-1) baselines
//   SimpleAllocator                      — SIMPLE   (Theorem 3.1)
//   GeoAllocator                         — GEO      (Theorem 4.1)
//   TinySlabAllocator                    — TINYHASH stand-in (< eps^4)
//   FlexHashAllocator                    — FLEXHASH (Lemma 4.9)
//   CombinedAllocator                    — Corollary 4.10
//   RSumAllocator                        — RSUM     (Theorem 6.1)
#pragma once

#include <string_view>

#include "util/types.h"

namespace memreal {

class Allocator {
 public:
  virtual ~Allocator() = default;

  /// Handles an insert.  Must be called inside an open Memory update.
  virtual void insert(ItemId id, Tick size) = 0;

  /// Handles a delete.  Must be called inside an open Memory update.
  virtual void erase(ItemId id) = 0;

  /// Human-readable allocator name for tables.
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// True if the allocator guarantees span <= L + eps (all allocators in
  /// the paper except the windowed folklore baseline).
  [[nodiscard]] virtual bool resizable() const { return true; }

  /// Deep self-check of allocator-specific invariants (level-size
  /// invariant, covering-set structure, ...).  Called by tests between
  /// updates; default is a no-op.
  virtual void check_invariants() const {}

  /// Cumulative wall-clock seconds spent *deciding* which items to move
  /// (Theorem 6.1 measures RSUM's strategy computation separately from the
  /// movement cost).  Allocators that don't track this return 0.
  [[nodiscard]] virtual double decision_seconds() const { return 0.0; }
};

}  // namespace memreal
