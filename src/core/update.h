// Update events: the online insert/delete stream an allocator must serve.
#pragma once

#include "util/types.h"

namespace memreal {

enum class UpdateKind : unsigned char { kInsert, kDelete };

/// One online update.  For deletes, `size` records the item's size (known
/// to the generator; the engine re-checks it against the memory model).
struct Update {
  UpdateKind kind = UpdateKind::kInsert;
  ItemId id = kNoItem;
  Tick size = 0;

  static Update insert(ItemId id, Tick size) {
    return Update{UpdateKind::kInsert, id, size};
  }
  static Update erase(ItemId id, Tick size) {
    return Update{UpdateKind::kDelete, id, size};
  }

  [[nodiscard]] bool is_insert() const { return kind == UpdateKind::kInsert; }

  friend bool operator==(const Update&, const Update&) = default;
};

}  // namespace memreal
