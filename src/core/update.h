// Update events: the online insert/delete stream an allocator must serve.
#pragma once

#include "util/types.h"

namespace memreal {

enum class UpdateKind : unsigned char { kInsert, kDelete };

/// One online update.  For deletes, `size` records the item's size (known
/// to the generator; the engine re-checks it against the memory model).
///
/// `size_bytes` is the optional byte-space payload size: 0 means the update
/// is tick-native (an arena run backs it with size * bytes_per_tick bytes);
/// a nonzero value must round up to exactly `size` ticks under the
/// sequence's bytes_per_tick.  Tick-space consumers ignore it.
struct Update {
  UpdateKind kind = UpdateKind::kInsert;
  ItemId id = kNoItem;
  Tick size = 0;
  Tick size_bytes = 0;

  static Update insert(ItemId id, Tick size, Tick size_bytes = 0) {
    return Update{UpdateKind::kInsert, id, size, size_bytes};
  }
  static Update erase(ItemId id, Tick size, Tick size_bytes = 0) {
    return Update{UpdateKind::kDelete, id, size, size_bytes};
  }

  [[nodiscard]] bool is_insert() const { return kind == UpdateKind::kInsert; }

  friend bool operator==(const Update&, const Update&) = default;
};

}  // namespace memreal
