#include "core/engine.h"

#include <chrono>

#include "obs/trace.h"
#include "util/check.h"

namespace memreal {

Engine::Engine(LayoutStore& memory, Allocator& allocator,
               EngineOptions options)
    : memory_(&memory), allocator_(&allocator), options_(std::move(options)) {
  memory_->policy().check_resizable_bound = allocator_->resizable();
}

double Engine::step(const Update& update) {
  obs::ScopedSpan apply_span(obs::SpanPhase::kApply, options_.metrics.shard);
  MEMREAL_CHECK(update.size > 0);
  if (options_.before_update) options_.before_update(update);
  const bool is_insert = update.is_insert();
  if (!is_insert) {
    MEMREAL_CHECK_MSG(memory_->contains(update.id),
                      "delete of absent item " << update.id);
    MEMREAL_CHECK_MSG(memory_->size_of(update.id) == update.size,
                      "sequence size mismatch for item " << update.id);
  }
  memory_->begin_update(update.size, is_insert);
  if (is_insert) {
    allocator_->insert(update.id, update.size);
  } else {
    allocator_->erase(update.id);
  }
  Tick moved = 0;
  {
    obs::ScopedSpan validate_span(obs::SpanPhase::kValidate,
                                  options_.metrics.shard);
    moved = memory_->end_update();
  }
  stats_.record(is_insert, update.size, moved, memory_->last_update_bytes());
  options_.metrics.on_update(is_insert, update.size, moved,
                             memory_->last_update_bytes());

  ++step_index_;
  if (options_.check_invariants_every != 0 &&
      step_index_ % options_.check_invariants_every == 0) {
    allocator_->check_invariants();
  }
  const double cost =
      static_cast<double>(moved) / static_cast<double>(update.size);
  if (options_.on_update) {
    options_.on_update(step_index_ - 1, update, cost);
  }
  return cost;
}

RunStats Engine::run(std::span<const Update> updates) {
  const auto t0 = std::chrono::steady_clock::now();
  for (const Update& u : updates) {
    step(u);
  }
  const auto t1 = std::chrono::steady_clock::now();
  stats_.wall_seconds += std::chrono::duration<double>(t1 - t0).count();
  stats_.decision_seconds = allocator_->decision_seconds();
  return stats_;
}

}  // namespace memreal
