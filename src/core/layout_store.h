// The layout-store interface — the substrate abstraction allocators and
// engines are written against.
//
// The paper's cost model assumes a flat address space [0, capacity) where
// placing or moving an object of size s costs s.  Two implementations
// provide that contract:
//
//   Memory    (src/mem)     — the validating model: transactional updates,
//                             incremental per-update invariant checks,
//                             periodic full audits.  The correctness
//                             reference for everything else.
//   SlabStore (src/release) — the release fast path: flat SoA item records,
//                             open-addressed id map, no per-update
//                             validation, only O(1) cost counters.  Its
//                             correctness is established externally by the
//                             lockstep differential suite (ctest -L
//                             release), not by inline checks.
//
// The interface is the exact surface the registry allocators use: layout
// mutation inside begin_update/end_update brackets, point queries by id,
// and ordered-by-offset queries (successor/predecessor/range/snapshot).
// Both implementations order items by (offset, id) so that transient
// mid-update states where two items share an offset stay representable and
// every ordered query returns bit-identical results across stores.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "util/types.h"

namespace memreal {

/// Controls how the layout is validated at the close of each update.  The
/// release store carries the policy for interface compatibility (and for
/// explicit audits) but performs no per-update enforcement.
struct ValidationPolicy {
  /// Check, at the end of every update, that each item mutated during the
  /// update is disjoint from its offset-order neighbors, and that the
  /// global span/load bounds hold.  O(log n) per mutation; catches exactly
  /// the violations a full audit would (overlap can only involve a touched
  /// item, see Memory::end_update).
  bool incremental = true;
  /// Run the full O(n) audit() at the end of every n-th update; 0 keeps
  /// audits explicit-only.  Belt-and-suspenders on top of `incremental`
  /// (it additionally cross-checks the cached mass totals and the index
  /// structures themselves).
  std::size_t audit_every_n_updates = 0;
  /// Enforce span_end <= live_mass + eps (the resizable guarantee).
  /// Non-resizable allocators (windowed folklore) set this false and are
  /// checked against span_end <= capacity instead.
  bool check_resizable_bound = true;
  /// Enforce the adversary's load-factor promise on placement.
  bool check_load_factor = true;
};

/// A placed item as seen by introspection (ordered snapshots and the
/// neighbor-query API).
struct PlacedItem {
  ItemId id = kNoItem;
  Tick offset = 0;
  Tick size = 0;    ///< true size
  Tick extent = 0;  ///< logical (inflated) size; extent >= size
};

class LayoutStore {
 public:
  /// Offset-order neighbors of an item (absent at the span boundaries).
  struct Neighbors {
    std::optional<PlacedItem> prev;
    std::optional<PlacedItem> next;
  };

  virtual ~LayoutStore() = default;

  // -- Transactions -------------------------------------------------------

  /// Starts accounting for one update (insert or delete) of `update_size`.
  virtual void begin_update(Tick update_size, bool is_insert) = 0;

  /// Ends the update; returns the total true mass moved during it.
  virtual Tick end_update() = 0;

  [[nodiscard]] virtual bool in_update() const = 0;
  /// Mass moved so far in the open update.
  [[nodiscard]] virtual Tick moved_in_update() const = 0;

  // -- Layout mutation (allowed only inside an update) ---------------------

  /// Places a new item; charges `size` moved mass (writing the item's
  /// bytes).  extent defaults to size.
  virtual void place(ItemId id, Tick offset, Tick size, Tick extent = 0) = 0;

  /// Moves an existing item; charges its true size iff the offset changes.
  virtual void move_to(ItemId id, Tick offset) = 0;

  /// Logically inflates/deflates an item's extent (free: no bytes move).
  /// extent must be >= true size.
  virtual void set_extent(ItemId id, Tick extent) = 0;

  /// Resets extent to the true size (waste-recovery "revert").
  virtual void reset_extent(ItemId id) = 0;

  /// Resets every id in `ids` to its true size.  Equivalent to calling
  /// reset_extent on each id (extent resets are free and order-blind), but
  /// overridable so a store covering the whole layout can do one linear
  /// pass instead of one id lookup per item.
  virtual void reset_extents(std::span<const ItemId> ids) {
    for (const ItemId id : ids) reset_extent(id);
  }

  /// Removes an item (free: deallocating costs nothing in the model).
  virtual void remove(ItemId id) = 0;

  /// Relocates `ids` extent-contiguously starting at `offset` (each item
  /// lands at the previous item's new end); returns the end of the run.
  /// Exactly equivalent to the move_to/extent_of loop below — same cost
  /// charges, same transient states — but overridable so a store can
  /// resolve each id once instead of twice per item.
  virtual Tick apply_run(std::span<const ItemId> ids, Tick offset) {
    for (const ItemId id : ids) {
      move_to(id, offset);
      offset += extent_of(id);
    }
    return offset;
  }

  // -- Point queries --------------------------------------------------------

  [[nodiscard]] virtual bool contains(ItemId id) const = 0;
  [[nodiscard]] virtual Tick offset_of(ItemId id) const = 0;
  [[nodiscard]] virtual Tick size_of(ItemId id) const = 0;
  [[nodiscard]] virtual Tick extent_of(ItemId id) const = 0;
  [[nodiscard]] virtual Tick end_of(ItemId id) const = 0;

  [[nodiscard]] virtual std::size_t item_count() const = 0;
  /// Sum of true sizes (the paper's L).
  [[nodiscard]] virtual Tick live_mass() const = 0;
  /// Sum of extents (>= live_mass; difference is the logical waste).
  [[nodiscard]] virtual Tick extent_mass() const = 0;
  /// max over items of offset + extent (0 when empty).  O(1).
  [[nodiscard]] virtual Tick span_end() const = 0;

  [[nodiscard]] virtual Tick capacity() const = 0;
  [[nodiscard]] virtual Tick eps_ticks() const = 0;

  /// Total true mass moved since construction.
  [[nodiscard]] virtual Tick total_moved() const = 0;
  [[nodiscard]] virtual std::size_t update_count() const = 0;

  // -- Byte channel ---------------------------------------------------------
  //
  // Tick-space stores have no physical payloads and report zero here; the
  // byte-backed ArenaStore (src/arena) overrides both with the measured
  // memmove traffic, which the engine records into RunStats alongside the
  // tick-mass channel.

  /// Bytes physically moved during the most recently closed update.
  [[nodiscard]] virtual Tick last_update_bytes() const { return 0; }
  /// Total bytes physically moved since construction.
  [[nodiscard]] virtual Tick total_bytes_moved() const { return 0; }

  // -- Ordered (by-offset) queries ------------------------------------------

  /// The item whose extent covers `offset`, if any.
  [[nodiscard]] virtual std::optional<PlacedItem> item_at(Tick offset)
      const = 0;
  /// The leftmost item placed at or beyond `offset` (successor query).
  [[nodiscard]] virtual std::optional<PlacedItem> first_at_or_after(
      Tick offset) const = 0;
  /// The rightmost item placed strictly before `offset` (predecessor).
  [[nodiscard]] virtual std::optional<PlacedItem> last_before(Tick offset)
      const = 0;
  /// Leftmost / rightmost placed item.
  [[nodiscard]] virtual std::optional<PlacedItem> first_item() const = 0;
  [[nodiscard]] virtual std::optional<PlacedItem> last_item() const = 0;
  /// Offset-order neighbors of a placed item.
  [[nodiscard]] virtual Neighbors neighbors_of(ItemId id) const = 0;
  /// Items with offset in [from, to), in offset order.
  [[nodiscard]] virtual std::vector<PlacedItem> items_in(Tick from,
                                                         Tick to) const = 0;

  /// Items sorted by offset.  O(n) — backed by the index, no sorting.
  [[nodiscard]] virtual std::vector<PlacedItem> snapshot() const = 0;

  /// Free intervals between placed extents inside [0, span_end()].  O(n).
  [[nodiscard]] virtual std::vector<std::pair<Tick, Tick>> gaps() const = 0;

  // -- Validation ----------------------------------------------------------

  /// Full O(n) structural check; throws InvariantViolation on failure.
  /// Always explicit for the release store; the validating store also runs
  /// it on the policy cadence.
  virtual void audit() const = 0;

  [[nodiscard]] virtual ValidationPolicy& policy() = 0;
  [[nodiscard]] virtual const ValidationPolicy& policy() const = 0;
};

}  // namespace memreal
