#include "core/run_stats.h"

#include "util/check.h"

namespace memreal {

double RunStats::ratio_cost() const {
  if (update_mass == 0) return 0.0;
  return static_cast<double>(moved_mass) / static_cast<double>(update_mass);
}

void RunStats::record(bool is_insert, Tick update_size, Tick moved,
                      Tick bytes) {
  MEMREAL_CHECK(update_size > 0);
  ++updates;
  if (is_insert) {
    ++inserts;
  } else {
    ++deletes;
  }
  moved_mass += moved;
  update_mass += update_size;
  moved_bytes += bytes;
  const double c =
      static_cast<double>(moved) / static_cast<double>(update_size);
  cost.add(c);
  cost_quantiles.add(c);
  (is_insert ? insert_cost : delete_cost).add(c);
}

Json RunStats::to_json() const {
  Json out = Json::object();
  out.set("updates", static_cast<std::uint64_t>(updates));
  out.set("inserts", static_cast<std::uint64_t>(inserts));
  out.set("deletes", static_cast<std::uint64_t>(deletes));
  out.set("moved_mass", moved_mass);
  out.set("update_mass", update_mass);
  out.set("moved_bytes", moved_bytes);
  out.set("mean_cost", mean_cost());
  out.set("ratio_cost", ratio_cost());
  out.set("max_cost", max_cost());
  out.set("cost_stddev", cost.stddev());
  out.set("insert_mean_cost", insert_cost.mean());
  out.set("delete_mean_cost", delete_cost.mean());
  if (cost_quantiles.count() > 0) {
    // quantile() sorts lazily (non-const); query a copy so a const stats
    // block held by a driver thread stays untouched.
    Quantiles q = cost_quantiles;
    Json quantiles = Json::object();
    quantiles.set("p50", q.quantile(0.50));
    quantiles.set("p90", q.quantile(0.90));
    quantiles.set("p99", q.quantile(0.99));
    quantiles.set("max", q.quantile(1.0));
    out.set("cost_quantiles", std::move(quantiles));
  }
  out.set("decision_seconds", decision_seconds);
  out.set("wall_seconds", wall_seconds);
  return out;
}

void RunStats::merge(const RunStats& other) {
  updates += other.updates;
  inserts += other.inserts;
  deletes += other.deletes;
  moved_mass += other.moved_mass;
  update_mass += other.update_mass;
  moved_bytes += other.moved_bytes;
  cost.merge(other.cost);
  insert_cost.merge(other.insert_cost);
  delete_cost.merge(other.delete_cost);
  decision_seconds += other.decision_seconds;
  wall_seconds += other.wall_seconds;
  // Quantile samples are not merged (kept per-run); merged stats expose
  // moments only.
}

}  // namespace memreal
