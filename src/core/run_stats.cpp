#include "core/run_stats.h"

#include "util/check.h"

namespace memreal {

double RunStats::ratio_cost() const {
  if (update_mass == 0) return 0.0;
  return static_cast<double>(moved_mass) / static_cast<double>(update_mass);
}

void RunStats::record(bool is_insert, Tick update_size, Tick moved,
                      Tick bytes) {
  MEMREAL_CHECK(update_size > 0);
  ++updates;
  if (is_insert) {
    ++inserts;
  } else {
    ++deletes;
  }
  moved_mass += moved;
  update_mass += update_size;
  moved_bytes += bytes;
  const double c =
      static_cast<double>(moved) / static_cast<double>(update_size);
  cost.add(c);
  cost_quantiles.add(c);
  (is_insert ? insert_cost : delete_cost).add(c);
}

void RunStats::merge(const RunStats& other) {
  updates += other.updates;
  inserts += other.inserts;
  deletes += other.deletes;
  moved_mass += other.moved_mass;
  update_mass += other.update_mass;
  moved_bytes += other.moved_bytes;
  cost.merge(other.cost);
  insert_cost.merge(other.insert_cost);
  delete_cost.merge(other.delete_cost);
  decision_seconds += other.decision_seconds;
  wall_seconds += other.wall_seconds;
  // Quantile samples are not merged (kept per-run); merged stats expose
  // moments only.
}

}  // namespace memreal
