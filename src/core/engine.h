// The engine drives an allocator through an update sequence against the
// validating memory model, bracketing each update in a transaction and
// collecting RunStats.  It runs against any LayoutStore — the validating
// Memory model or the release SlabStore.
#pragma once

#include <cstddef>
#include <functional>
#include <span>

#include "core/allocator.h"
#include "core/run_stats.h"
#include "core/update.h"
#include "core/layout_store.h"
#include "obs/metrics.h"

namespace memreal {

struct EngineOptions {
  /// Call allocator.check_invariants() every n-th update (0 = never).
  std::size_t check_invariants_every = 0;
  /// Invoked after each update with (index, update, cost); used by tests,
  /// the potential certifier and the figure renderers.
  std::function<void(std::size_t, const Update&, double)> on_update;
  /// Invoked before each update is applied, ahead of the usage checks.
  /// The arena cell uses this to stage the update's byte-space payload
  /// size into its store before the allocator places the item.
  std::function<void(const Update&)> before_update;
  /// Observability instruments for this cell (null pointers = off).
  /// Updated alongside RunStats so counters stay exactly equal to the
  /// stats the run reports.
  obs::CellMetrics metrics;
};

class Engine {
 public:
  Engine(LayoutStore& memory, Allocator& allocator,
         EngineOptions options = {});

  /// Applies all updates; throws InvariantViolation on any model or
  /// allocator invariant failure.  Returns the accumulated statistics.
  RunStats run(std::span<const Update> updates);

  /// Applies a single update and returns its cost L/k.
  double step(const Update& update);

  [[nodiscard]] const RunStats& stats() const { return stats_; }
  [[nodiscard]] LayoutStore& memory() { return *memory_; }
  [[nodiscard]] Allocator& allocator() { return *allocator_; }

 private:
  LayoutStore* memory_;
  Allocator* allocator_;
  EngineOptions options_;
  RunStats stats_;
  std::size_t step_index_ = 0;
};

}  // namespace memreal
