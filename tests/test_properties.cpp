// Cross-cutting randomized property suite.
//
// Three families, all parameterized over (allocator × regime × seed):
//
//  1. Online fuzz: an op stream with bursts of inserts/deletes, load
//     swings and occasional drains, generated online, with full memory
//     validation and allocator invariants after every update.
//  2. Determinism: the same (workload seed, allocator seed) must produce
//     bit-identical layouts — no hidden global state, no iteration-order
//     dependence on unordered containers leaking into decisions.
//  3. Accounting: the engine's per-update moved-mass sum equals the memory
//     model's lifetime total.
#include <gtest/gtest.h>

#include <cmath>

#include "mem/memory.h"
#include "testing.h"
#include "workload/churn.h"
#include "workload/random_item.h"

namespace memreal {
namespace {

constexpr Tick kCap = Tick{1} << 50;

struct FuzzParam {
  const char* allocator;
  double eps;
  double delta;  // rsum only; also selects the size regime
  std::uint64_t seed;
};

/// Online fuzz stream: the generator reacts to the live set (burst sizes,
/// swings), always respecting the promise and each allocator's size regime.
class FuzzStream {
 public:
  FuzzStream(const FuzzParam& p, Tick cap) : p_(p), rng_(p.seed * 31 + 7) {
    const auto cap_d = static_cast<double>(cap);
    budget_ = cap - static_cast<Tick>(p.eps * cap_d);
    const std::string name = p.allocator;
    if (name == "rsum") {
      lo_ = static_cast<Tick>(p.delta * cap_d);
      hi_ = 2 * lo_;
    } else if (name == "simple" || name == "discrete") {
      lo_ = static_cast<Tick>(p.eps * cap_d);
      hi_ = 2 * lo_ - 1;
    } else if (name == "geo" || name == "combined") {
      hi_ = static_cast<Tick>(std::sqrt(p.eps) / 250.0 * cap_d);
      lo_ = std::max<Tick>(1, hi_ / 64);
    } else {  // folklore variants: anything
      lo_ = static_cast<Tick>(p.eps * cap_d / 8);
      hi_ = static_cast<Tick>(p.eps * cap_d * 4);
    }
    if (std::string(p.allocator) == "discrete") {
      // Fixed palette of 6 sizes.
      for (int i = 0; i < 6; ++i) palette_.push_back(rng_.next_in(lo_, hi_));
    }
  }

  /// Produces the next update (or nullopt to skip a beat).
  std::optional<Update> next() {
    if (burst_ == 0) {
      burst_ = 1 + rng_.next_below(24);
      // Bias phases: mostly balanced, sometimes grow or shrink hard.
      const auto mode = rng_.next_below(10);
      grow_bias_ = mode < 5 ? 50 : (mode < 8 ? 80 : 10);
    }
    --burst_;
    const bool grow = live_.empty() || rng_.next_below(100) < grow_bias_;
    if (grow) {
      Tick s = palette_.empty()
                   ? rng_.next_in(lo_, hi_)
                   : palette_[rng_.next_below(palette_.size())];
      if (mass_ + s > budget_) {
        if (live_.empty()) return std::nullopt;
        return make_delete();
      }
      const ItemId id = next_id_++;
      live_.push_back({id, s});
      mass_ += s;
      return Update::insert(id, s);
    }
    return make_delete();
  }

 private:
  Update make_delete() {
    const auto k = static_cast<std::size_t>(rng_.next_below(live_.size()));
    const auto [id, s] = live_[k];
    live_[k] = live_.back();
    live_.pop_back();
    mass_ -= s;
    return Update::erase(id, s);
  }

  FuzzParam p_;
  Rng rng_;
  Tick budget_ = 0, mass_ = 0;
  Tick lo_ = 1, hi_ = 2;
  std::vector<std::pair<ItemId, Tick>> live_;
  std::vector<Tick> palette_;
  ItemId next_id_ = 1;
  std::size_t burst_ = 0;
  unsigned grow_bias_ = 50;
};

class FuzzSweep : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(FuzzSweep, OnlineFuzzWithFullValidation) {
  const FuzzParam p = GetParam();
  ValidationPolicy policy;
  policy.audit_every_n_updates = 1;
  const auto eps_t = static_cast<Tick>(p.eps * static_cast<double>(kCap));
  Memory mem(kCap, eps_t, policy);
  AllocatorParams ap;
  ap.eps = p.eps;
  ap.delta = p.delta;
  ap.seed = p.seed;
  auto alloc = make_allocator(p.allocator, mem, ap);
  EngineOptions opts;
  opts.check_invariants_every = 4;
  Engine engine(mem, *alloc, opts);

  FuzzStream stream(p, kCap);
  std::size_t steps = 0;
  for (int i = 0; i < 1200; ++i) {
    const auto u = stream.next();
    if (!u) continue;
    engine.step(*u);
    ++steps;
  }
  EXPECT_GT(steps, 600u);
  alloc->check_invariants();
  mem.audit();
}

TEST_P(FuzzSweep, DeterministicLayouts) {
  const FuzzParam p = GetParam();
  auto run = [&]() {
    ValidationPolicy policy;
    policy.incremental = false;
    const auto eps_t = static_cast<Tick>(p.eps * static_cast<double>(kCap));
    Memory mem(kCap, eps_t, policy);
    AllocatorParams ap;
    ap.eps = p.eps;
    ap.delta = p.delta;
    ap.seed = p.seed;
    auto alloc = make_allocator(p.allocator, mem, ap);
    Engine engine(mem, *alloc);
    FuzzStream stream(p, kCap);
    for (int i = 0; i < 400; ++i) {
      const auto u = stream.next();
      if (u) engine.step(*u);
    }
    return mem.snapshot();
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].offset, b[i].offset);
    EXPECT_EQ(a[i].extent, b[i].extent);
  }
}

TEST_P(FuzzSweep, MovedMassAccountingConsistent) {
  const FuzzParam p = GetParam();
  ValidationPolicy policy;
  policy.incremental = false;
  const auto eps_t = static_cast<Tick>(p.eps * static_cast<double>(kCap));
  Memory mem(kCap, eps_t, policy);
  AllocatorParams ap;
  ap.eps = p.eps;
  ap.delta = p.delta;
  ap.seed = p.seed;
  auto alloc = make_allocator(p.allocator, mem, ap);
  Engine engine(mem, *alloc);
  FuzzStream stream(p, kCap);
  Tick sum = 0;
  for (int i = 0; i < 400; ++i) {
    const auto u = stream.next();
    if (!u) continue;
    mem.begin_update(u->size, u->is_insert());
    if (u->is_insert()) {
      alloc->insert(u->id, u->size);
    } else {
      alloc->erase(u->id);
    }
    sum += mem.end_update();
  }
  EXPECT_EQ(sum, mem.total_moved());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FuzzSweep,
    ::testing::Values(
        FuzzParam{"folklore-compact", 1.0 / 32, 0, 1},
        FuzzParam{"folklore-compact", 1.0 / 128, 0, 2},
        FuzzParam{"folklore-windowed", 1.0 / 32, 0, 3},
        FuzzParam{"simple", 1.0 / 32, 0, 4},
        FuzzParam{"simple", 1.0 / 128, 0, 5},
        FuzzParam{"geo", 1.0 / 16, 0, 6},
        FuzzParam{"geo", 1.0 / 64, 0, 7},
        FuzzParam{"combined", 1.0 / 16, 0, 8},
        FuzzParam{"combined", 1.0 / 64, 0, 9},
        FuzzParam{"discrete", 1.0 / 32, 0, 10},
        FuzzParam{"rsum", 1.0 / 256, 1.0 / 2048, 11},
        FuzzParam{"rsum", 1.0 / 256, 1.0 / 128, 12}));

// -- Incremental validation == full audit ---------------------------------
//
// Drives randomized insert/delete/move/extent sequences — mostly valid,
// with occasional deliberately-corrupt mutations — through two mirrored
// Memory instances: A closes every update with the incremental neighbor
// checks, B runs no per-update checks and is audited explicitly.  The two
// must accept/reject exactly the same updates.
TEST(IncrementalValidation, MatchesFullAuditOnRandomSequences) {
  constexpr Tick kPropCap = 1 << 20;
  constexpr Tick kEpsTicks = kPropCap / 2;

  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    ValidationPolicy inc_policy;  // incremental on, no audits
    ValidationPolicy audit_policy;
    audit_policy.incremental = false;
    Memory a(kPropCap, kEpsTicks, inc_policy);
    Memory b(kPropCap, kEpsTicks, audit_policy);
    Rng rng(seed * 977 + 13);

    std::vector<ItemId> live;
    ItemId next_id = 1;
    bool diverged = false;
    for (int step = 0; step < 120 && !diverged; ++step) {
      // One update: a small batch of mirrored mutations.
      const Tick usize = 1 + rng.next_below(64);
      a.begin_update(usize, /*is_insert=*/true);
      b.begin_update(usize, /*is_insert=*/true);
      const auto ops = 1 + rng.next_below(3);
      for (std::uint64_t op = 0; op < ops; ++op) {
        const auto kind = rng.next_below(10);
        // Corrupt offsets: inside the occupied span (likely overlap) or
        // far beyond it (likely resizable-bound violation).
        const auto pick_offset = [&]() -> Tick {
          if (rng.next_below(8) != 0) return a.span_end();  // snug: valid
          if (rng.next_below(2) == 0 && a.span_end() > 0) {
            return Tick{rng.next_below(a.span_end())};
          }
          return kEpsTicks + Tick{rng.next_below(kPropCap / 2 - 256)};
        };
        if (kind < 5 || live.empty()) {
          const Tick size = 1 + rng.next_below(64);
          const Tick off = pick_offset();
          const ItemId id = next_id++;
          a.place(id, off, size);
          b.place(id, off, size);
          live.push_back(id);
        } else if (kind < 7) {
          const auto k = static_cast<std::size_t>(
              rng.next_below(live.size()));
          const ItemId id = live[k];
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
          a.remove(id);
          b.remove(id);
        } else if (kind < 9) {
          const auto k = static_cast<std::size_t>(
              rng.next_below(live.size()));
          const Tick off = pick_offset();
          a.move_to(live[k], off);
          b.move_to(live[k], off);
        } else {
          // Extent inflation by a small (sometimes overlapping) amount.
          const auto k = static_cast<std::size_t>(
              rng.next_below(live.size()));
          const Tick grow = rng.next_below(96);
          const Tick ext = a.size_of(live[k]) + grow;
          a.set_extent(live[k], ext);
          b.set_extent(live[k], ext);
        }
      }
      bool a_rejects = false;
      bool b_rejects = false;
      try {
        a.end_update();
      } catch (const InvariantViolation&) {
        a_rejects = true;
      }
      try {
        b.end_update();
        b.audit();
      } catch (const InvariantViolation&) {
        b_rejects = true;
      }
      EXPECT_EQ(a_rejects, b_rejects)
          << "incremental/audit divergence at seed " << seed << " step "
          << step;
      // A violation leaves a corrupt layout behind; stop this run and move
      // to the next seed.
      diverged = a_rejects || b_rejects;
    }
  }
}

// Registry sanity.
TEST(Registry, KnowsAllAllocators) {
  const auto names = allocator_names();
  EXPECT_EQ(names.size(), 9u);
  Memory mem = testing::strict_memory(kCap, 1.0 / 16);
  for (const auto& name : names) {
    AllocatorParams p;
    p.eps = 1.0 / 16;
    p.delta = 1.0 / 64;
    auto a = make_allocator(name, mem, p);
    EXPECT_FALSE(a->name().empty());
  }
}

TEST(Registry, RejectsUnknownName) {
  Memory mem = testing::strict_memory(kCap, 1.0 / 16);
  AllocatorParams p;
  EXPECT_THROW(make_allocator("no-such-allocator", mem, p),
               InvariantViolation);
}

TEST(Registry, NamesMatchAllocatorName) {
  Memory mem = testing::strict_memory(kCap, 1.0 / 16);
  for (const auto& name : allocator_names()) {
    AllocatorParams p;
    p.eps = 1.0 / 16;
    p.delta = 1.0 / 64;
    auto a = make_allocator(name, mem, p);
    EXPECT_EQ(std::string(a->name()), name);
  }
}

}  // namespace
}  // namespace memreal
