// Unit tests for the util substrate: rng, stats, fit, thresholds
// (Lemmas 4.3 / 4.4), parallel, table, json.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include <cstdint>
#include <unordered_map>

#include "fuzz/fuzzer.h"
#include "util/check.h"
#include "util/fit.h"
#include "util/flat_map.h"
#include "util/json.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thresholds.h"

namespace memreal {
namespace {

// -- rng ---------------------------------------------------------------

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextInIsInclusive) {
  Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.next_in(3, 5));
  EXPECT_EQ(seen, (std::set<std::uint64_t>{3, 4, 5}));
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng r(99);
  std::vector<int> counts(8, 0);
  const int n = 80'000;
  for (int i = 0; i < n; ++i) ++counts[r.next_below(8)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 8, n / 8 * 0.1);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng r(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  r.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng r(5);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  auto w = v;
  r.shuffle(w);
  EXPECT_NE(v, w);
}

TEST(Rng, NextTickInHalfOpen) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const Tick t = r.next_tick_in(10, 20);
    EXPECT_GE(t, 10u);
    EXPECT_LT(t, 20u);
  }
}

// -- stats -------------------------------------------------------------

TEST(StreamingStats, Moments) {
  StreamingStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.variance(), 1.25, 1e-12);
}

TEST(StreamingStats, MergeMatchesSequential) {
  StreamingStats a, b, all;
  Rng r(1);
  for (int i = 0; i < 100; ++i) {
    const double x = r.next_double();
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StreamingStats, MergeEmpty) {
  StreamingStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(StreamingStats, MergeOverRandomPartitionsMatchesSingleStream) {
  // Property: splitting one stream into any number of sub-accumulators
  // and merging them back reproduces the single-stream moments exactly
  // (count/min/max/sum) or to rounding (mean/variance).  This is the
  // reduction the serving layer's merged ShardedRunStats relies on.
  Rng r(42);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t parts = 1 + r.next_below(7);
    const std::size_t n = 1 + r.next_below(500);
    std::vector<StreamingStats> partial(parts);
    StreamingStats whole;
    for (std::size_t i = 0; i < n; ++i) {
      const double x = (r.next_double() - 0.5) * 1e3;
      whole.add(x);
      partial[r.next_below(parts)].add(x);
    }
    StreamingStats merged;
    for (const StreamingStats& p : partial) merged.merge(p);
    ASSERT_EQ(merged.count(), whole.count());
    EXPECT_DOUBLE_EQ(merged.min(), whole.min());
    EXPECT_DOUBLE_EQ(merged.max(), whole.max());
    EXPECT_NEAR(merged.sum(), whole.sum(), 1e-9 * n);
    EXPECT_NEAR(merged.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(merged.variance(), whole.variance(), 1e-6);
  }
}

TEST(Quantiles, MedianAndExtremes) {
  Quantiles q;
  for (int i = 1; i <= 101; ++i) q.add(i);
  EXPECT_DOUBLE_EQ(q.quantile(0.5), 51.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 101.0);
}

TEST(Quantiles, EmptyReturnsZero) {
  Quantiles q;
  EXPECT_DOUBLE_EQ(q.quantile(0.5), 0.0);
}

TEST(Quantiles, InterleavedAddAndQueryStaysSorted) {
  // Regression: add() used to leave the sorted_ cache set, so samples
  // appended after a quantile() call were never re-sorted and every
  // later quantile read from a partially sorted vector — exactly the
  // add/query interleaving an online latency recorder produces.
  Quantiles q;
  q.add(50.0);
  q.add(10.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 50.0);  // sorts {10, 50}
  q.add(5.0);  // appended below the sorted prefix
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 50.0);
  q.add(100.0);
  q.add(1.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 100.0);

  // The same interleaving against a reference that sorts from scratch
  // on every query, on a random stream.
  Rng r(7);
  Quantiles online;
  std::vector<double> all;
  for (int i = 0; i < 500; ++i) {
    const double x = r.next_double() * 1e4;
    online.add(x);
    all.push_back(x);
    if (i % 37 == 0) (void)online.quantile(0.99);  // poison the cache
  }
  auto sorted = all;
  std::sort(sorted.begin(), sorted.end());
  for (const double p : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    Quantiles fresh;
    for (const double x : all) fresh.add(x);
    EXPECT_DOUBLE_EQ(online.quantile(p), fresh.quantile(p)) << p;
  }
  EXPECT_DOUBLE_EQ(online.quantile(0.0), sorted.front());
  EXPECT_DOUBLE_EQ(online.quantile(1.0), sorted.back());
}

TEST(Quantiles, MergeConcatenatesAndInvalidates) {
  Quantiles a;
  Quantiles b;
  a.add(1.0);
  a.add(3.0);
  EXPECT_DOUBLE_EQ(a.quantile(1.0), 3.0);  // sort a's cache
  b.add(0.5);
  b.add(9.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.quantile(0.0), 0.5);
  EXPECT_DOUBLE_EQ(a.quantile(1.0), 9.0);
  const Quantiles empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 4u);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);   // clamps to bucket 0
  h.add(0.5);
  h.add(9.5);
  h.add(25.0);   // clamps to last bucket
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(9), 2u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(5), 5.0);
}

// -- fit ---------------------------------------------------------------

TEST(Fit, LinearExact) {
  std::vector<double> x{1, 2, 3, 4}, y{3, 5, 7, 9};  // y = 1 + 2x
  const LinearFit f = fit_linear(x, y);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Fit, PowerLawRecoversExponent) {
  std::vector<double> x, y;
  for (double v : {4.0, 16.0, 64.0, 256.0}) {
    x.push_back(v);
    y.push_back(3.0 * std::pow(v, 0.5));
  }
  const PowerLawFit f = fit_power_law(x, y);
  EXPECT_NEAR(f.exponent, 0.5, 1e-9);
  EXPECT_NEAR(std::exp(f.log_coeff), 3.0, 1e-9);
}

TEST(Fit, PowerLawRejectsNonPositive) {
  std::vector<double> x{1.0, 2.0}, y{0.0, 1.0};
  EXPECT_THROW((void)fit_power_law(x, y), InvariantViolation);
}

TEST(Fit, RejectsMismatchedSizes) {
  std::vector<double> x{1.0, 2.0}, y{1.0};
  EXPECT_THROW((void)fit_linear(x, y), InvariantViolation);
}

// -- thresholds (Lemmas 4.3 / 4.4) --------------------------------------

TEST(ContinuousThreshold, ThresholdInWindow) {
  Rng r(1);
  ContinuousThreshold t(1000, r);
  EXPECT_GE(t.threshold(), 500u);
  EXPECT_LT(t.threshold(), 1000u);
}

TEST(ContinuousThreshold, OverflowCarries) {
  Rng r(1);
  ContinuousThreshold t(1000, r);
  const Tick thr = t.threshold();
  // One huge addition crosses: the overflow must carry.
  ASSERT_TRUE(t.add(thr + 137));
  EXPECT_EQ(t.accumulated(), 137u);
}

TEST(ContinuousThreshold, CrossesEventually) {
  Rng r(2);
  ContinuousThreshold t(1000, r);
  int crossings = 0;
  Tick total = 0;
  while (total < 100'000) {
    total += 100;
    crossings += t.add(100);
  }
  // Expected threshold ~750 per crossing: about 133 crossings.
  EXPECT_NEAR(crossings, 133, 35);
}

TEST(ContinuousThreshold, Lemma43CrossingProbability) {
  // Lemma 4.3: Pr[exists j with partial sum in [a, b]] <= 4 (b - a) / W.
  // Empirical check with W = 1000, [a, b] = [10000, 10050]: bound 0.2.
  const Tick W = 1000;
  const Tick a = 10'000, b = 10'050;
  int hits = 0;
  const int trials = 4000;
  for (int tr = 0; tr < trials; ++tr) {
    Rng r(1000 + tr);
    Tick sum = 0;
    while (sum < b) {
      sum += r.next_tick_in(W / 2, W);
      if (sum >= a && sum <= b) {
        ++hits;
        break;
      }
    }
  }
  const double p = static_cast<double>(hits) / trials;
  EXPECT_LE(p, 4.0 * static_cast<double>(b - a) / W + 0.03);
}

TEST(CountThreshold, RangeMatchesLemma44) {
  Rng r(3);
  CountThreshold t(100, r);
  EXPECT_EQ(t.range_lo(), 25u);
  EXPECT_EQ(t.range_hi(), 34u);
  for (int i = 0; i < 200; ++i) {
    const auto thr = t.threshold();
    EXPECT_GE(thr, 25u);
    EXPECT_LE(thr, 34u);
    t.reset_free();
  }
}

TEST(CountThreshold, SmallNAlwaysOne) {
  Rng r(3);
  for (std::uint64_t n : {1ULL, 2ULL, 3ULL}) {
    CountThreshold t(n, r);
    EXPECT_EQ(t.threshold(), 1u);
    EXPECT_TRUE(t.tick());
  }
}

TEST(CountThreshold, Lemma44HitProbability) {
  // Lemma 4.4: Pr[some partial sum equals y] <= 100 / N.
  const std::uint64_t N = 64;
  const std::uint64_t y = 1000;
  int hits = 0;
  const int trials = 4000;
  for (int tr = 0; tr < trials; ++tr) {
    Rng r(5000 + tr);
    std::uint64_t sum = 0;
    while (sum < y) {
      sum += r.next_in(ceil_div(N, 4), ceil_div(N, 3));
      if (sum == y) {
        ++hits;
        break;
      }
    }
  }
  const double p = static_cast<double>(hits) / trials;
  EXPECT_LE(p, 100.0 / N);
  // And it is not trivially zero: the average gap is ~N/3.6, so the hit
  // rate should be on the order of 1/N.
  EXPECT_GT(p, 0.2 / N);
}

TEST(CeilDiv, Basics) {
  EXPECT_EQ(ceil_div(10, 3), 4u);
  EXPECT_EQ(ceil_div(9, 3), 3u);
  EXPECT_EQ(ceil_div(1, 1), 1u);
  EXPECT_EQ(ceil_div(0, 5), 0u);
}

// -- parallel ------------------------------------------------------------

TEST(Parallel, ForCoversAllIndices) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, ForPropagatesException) {
  EXPECT_THROW(
      parallel_for(100,
                   [&](std::size_t i) {
                     if (i == 57) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(Parallel, PoolRunsTasks) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { sum.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(sum.load(), 100);
}

TEST(Parallel, PoolPropagatesException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
}

TEST(Parallel, ZeroItemsIsNoop) {
  parallel_for(0, [&](std::size_t) { FAIL(); });
}

TEST(Parallel, PoolFirstErrorWins) {
  // One worker serializes execution; whichever failing task *runs* first
  // is the one wait() must rethrow (later errors are dropped).
  ThreadPool pool(1);
  std::mutex mu;
  std::vector<std::string> raised;
  for (const char* name : {"alpha", "beta", "gamma"}) {
    pool.submit([&mu, &raised, name] {
      {
        std::lock_guard<std::mutex> lock(mu);
        raised.emplace_back(name);
      }
      throw std::runtime_error(name);
    });
  }
  try {
    pool.wait();
    FAIL() << "wait() must rethrow";
  } catch (const std::runtime_error& e) {
    ASSERT_FALSE(raised.empty());
    EXPECT_EQ(std::string(e.what()), raised.front());
  }
}

TEST(Parallel, PoolIsReusableAfterFailure) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The error is consumed: the pool keeps running tasks and the next
  // wait() is clean.
  std::atomic<int> sum{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&] { sum.fetch_add(1); });
  }
  EXPECT_NO_THROW(pool.wait());
  EXPECT_EQ(sum.load(), 50);
  EXPECT_NO_THROW(pool.wait());  // idle wait is a no-op
}

TEST(Parallel, PoolSurvivesFailuresAcrossManyTasks) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&ran, i] {
      ran.fetch_add(1);
      if (i % 10 == 3) throw std::runtime_error("sporadic");
    });
  }
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // Failing tasks never wedge the queue: everything ran exactly once.
  EXPECT_EQ(ran.load(), 100);
}

TEST(Parallel, PerIndexSeedingIsThreadCountInvariant) {
  // The fuzzer's reproducibility contract: work derived purely from the
  // loop index is identical no matter how the indices are scheduled.
  auto run = [](std::size_t threads) {
    std::vector<std::uint64_t> out(200);
    parallel_for(
        out.size(),
        [&](std::size_t i) {
          Rng rng(iteration_seed(99, i));
          out[i] = rng.next_u64();
        },
        threads);
    return out;
  };
  const auto serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(7));
  EXPECT_EQ(serial, run(0));  // all cores
}

// -- table ---------------------------------------------------------------

TEST(Table, RendersAlignedCells) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22222"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvariantViolation);
}

TEST(Table, NumFormatsSignificantDigits) {
  EXPECT_EQ(Table::num(3.14159, 3), "3.14");
}

// -- json -----------------------------------------------------------------

TEST(Json, DumpsScalarsObjectsAndArrays) {
  Json doc = Json::object();
  doc.set("name", "bench").set("ok", true).set("count", std::uint64_t{42});
  Json arr = Json::array();
  arr.push(1.5).push(Json());  // null
  doc.set("values", std::move(arr));
  EXPECT_EQ(doc.dump(),
            "{\"name\":\"bench\",\"ok\":true,\"count\":42,"
            "\"values\":[1.5,null]}");
}

TEST(Json, KeepsInsertionOrderAndPrettyPrints) {
  Json doc = Json::object();
  doc.set("b", 1).set("a", 2);
  EXPECT_EQ(doc.dump(2), "{\n  \"b\": 1,\n  \"a\": 2\n}");
}

TEST(Json, EscapesStringsAndHandlesNonFinite) {
  Json doc = Json::object();
  doc.set("s", "a\"b\\c\nd").set("inf", Json(1.0 / 0.0));
  EXPECT_EQ(doc.dump(), "{\"s\":\"a\\\"b\\\\c\\nd\",\"inf\":null}");
}

TEST(Json, LargeUintsAndDoublesRoundTripExactly) {
  Json doc = Json::array();
  doc.push(std::uint64_t{1} << 50).push(0.1);
  const std::string s = doc.dump();
  EXPECT_NE(s.find("1125899906842624"), std::string::npos);
  EXPECT_EQ(std::stod(s.substr(s.find(',') + 1)), 0.1);
}

TEST(Json, SetOnNonObjectThrows) {
  Json arr = Json::array();
  EXPECT_THROW(arr.set("k", 1), InvariantViolation);
  Json obj = Json::object();
  EXPECT_THROW(obj.push(1), InvariantViolation);
}

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_EQ(Json::parse("42").as_u64(), 42u);
  EXPECT_TRUE(Json::parse("42").is_uint());
  EXPECT_DOUBLE_EQ(Json::parse("-3.5").as_double(), -3.5);
  EXPECT_FALSE(Json::parse("-1").is_uint());  // negatives become doubles
  EXPECT_DOUBLE_EQ(Json::parse("1e3").as_double(), 1000.0);
  EXPECT_EQ(Json::parse("\"hi\\n\\\"there\\\"\"").as_string(),
            "hi\n\"there\"");
  EXPECT_EQ(Json::parse("\"\\u0041\\u00e9\"").as_string(), "A\xc3\xa9");
}

TEST(Json, ParsesNestedStructures) {
  const Json doc =
      Json::parse("{\"a\": [1, 2.5, {\"b\": null}], \"c\": \"x\"}");
  EXPECT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("a").size(), 3u);
  EXPECT_EQ(doc.at("a").at(0).as_u64(), 1u);
  EXPECT_DOUBLE_EQ(doc.at("a").at(1).as_double(), 2.5);
  EXPECT_TRUE(doc.at("a").at(2).at("b").is_null());
  EXPECT_EQ(doc.at("c").as_string(), "x");
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW(doc.at("missing"), JsonParseError);
  EXPECT_THROW(doc.at("a").at(3), JsonParseError);
}

TEST(Json, DumpParseRoundTripsExactly) {
  Json doc = Json::object();
  doc.set("bench", "shard")
      .set("schema", std::uint64_t{2})
      .set("big", (std::uint64_t{1} << 60) + 7)
      .set("x", 0.1)
      .set("flag", false)
      .set("nothing", Json());
  Json arr = Json::array();
  arr.push(1.5).push("s").push(std::uint64_t{3});
  doc.set("arr", std::move(arr));
  for (const int indent : {0, 2}) {
    const std::string s = doc.dump(indent);
    EXPECT_EQ(Json::parse(s).dump(indent), s);
  }
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), JsonParseError);
  EXPECT_THROW(Json::parse("{\"a\": 1,}"), JsonParseError);
  EXPECT_THROW(Json::parse("[1, 2"), JsonParseError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonParseError);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), JsonParseError);
  EXPECT_THROW(Json::parse("tru"), JsonParseError);
  EXPECT_THROW(Json::parse("1 2"), JsonParseError);  // trailing garbage
  EXPECT_THROW(Json::parse("nan"), JsonParseError);
}

TEST(Json, ParseEnforcesStrictNumberGrammar) {
  EXPECT_THROW(Json::parse(".5"), JsonParseError);
  EXPECT_THROW(Json::parse("1."), JsonParseError);
  EXPECT_THROW(Json::parse("007"), JsonParseError);
  EXPECT_THROW(Json::parse("0123"), JsonParseError);
  EXPECT_THROW(Json::parse("+1"), JsonParseError);
  EXPECT_THROW(Json::parse("1e"), JsonParseError);
  EXPECT_THROW(Json::parse("1e+"), JsonParseError);
  EXPECT_THROW(Json::parse("1e999"), JsonParseError);  // out of range
  EXPECT_DOUBLE_EQ(Json::parse("0.5").as_double(), 0.5);
  EXPECT_EQ(Json::parse("0").as_u64(), 0u);
  // Integers above 2^64 - 1 are representable only as doubles.
  EXPECT_TRUE(Json::parse("20000000000000000000").is_number());
  EXPECT_FALSE(Json::parse("20000000000000000000").is_uint());
}

TEST(Json, ParseErrorNamesLineAndColumn) {
  try {
    Json::parse("{\n  \"a\": @\n}");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Json, AccessorsRejectWrongKinds) {
  const Json doc = Json::parse("{\"s\": \"x\", \"n\": 1.5}");
  EXPECT_THROW(doc.at("s").as_double(), JsonParseError);
  EXPECT_THROW(doc.at("n").as_u64(), JsonParseError);  // not integral
  EXPECT_THROW(doc.at("n").as_string(), JsonParseError);
  EXPECT_THROW(doc.at("s").find("k"), JsonParseError);
  EXPECT_DOUBLE_EQ(Json::parse("7").as_double(), 7.0);  // uint as double ok
}

// -- check ----------------------------------------------------------------

TEST(Check, ThrowsWithMessage) {
  try {
    MEMREAL_CHECK_MSG(false, "context " << 42);
    FAIL();
  } catch (const InvariantViolation& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

// -- FlatIdMap deletion churn ---------------------------------------------

// FlatIdMap's own SplitMix64 finalizer, replicated so tests can craft
// keys with chosen home buckets (probe-chain clustering, wrap-around).
std::uint64_t flat_map_mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

/// The next id >= `start` whose home bucket is `home` in a table of
/// `buckets` (power of two) slots.
ItemId key_with_home(std::size_t home, std::size_t buckets, ItemId start) {
  ItemId id = start;
  while ((flat_map_mix(id) & (buckets - 1)) != home) ++id;
  return id;
}

TEST(FlatIdMap, BackwardShiftRepairsAWrappedProbeChain) {
  // Three keys homed at the LAST bucket of an 8-slot table occupy buckets
  // 7, 0, 1 — a probe chain crossing the wrap-around.  Erasing the head
  // exercises the wrapped arm of the backward-shift reachability test.
  FlatIdMap<int> m(8);
  const ItemId k1 = key_with_home(7, 8, 1);
  const ItemId k2 = key_with_home(7, 8, k1 + 1);
  const ItemId k3 = key_with_home(7, 8, k2 + 1);
  m[k1] = 1;
  m[k2] = 2;
  m[k3] = 3;
  m.erase(k1);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.find(k1), nullptr);
  ASSERT_NE(m.find(k2), nullptr);
  EXPECT_EQ(*m.find(k2), 2);
  ASSERT_NE(m.find(k3), nullptr);
  EXPECT_EQ(*m.find(k3), 3);
  m.erase(k2);
  ASSERT_NE(m.find(k3), nullptr);
  EXPECT_EQ(*m.find(k3), 3);
}

TEST(FlatIdMap, BackwardShiftDoesNotLiftAKeyPastItsHome) {
  // A key homed exactly at the erased slot's successor must NOT be
  // back-shifted into the hole (it is unreachable from the hole's probe
  // position) — the classic backward-shift-deletion trap.
  FlatIdMap<int> m(8);
  const ItemId at3 = key_with_home(3, 8, 1);
  const ItemId at4 = key_with_home(4, 8, at3 + 1);
  m[at3] = 33;
  m[at4] = 44;  // sits in its own home bucket 4, not displaced
  m.erase(at3);
  ASSERT_NE(m.find(at4), nullptr);
  EXPECT_EQ(*m.find(at4), 44);
  // at4 must still be at its home (re-inserting a fresh key homed at 3
  // cannot collide with it).
  const ItemId fresh = key_with_home(3, 8, at4 + 1);
  m[fresh] = 55;
  EXPECT_EQ(*m.find(at4), 44);
  EXPECT_EQ(*m.find(fresh), 55);
}

TEST(FlatIdMap, GrowthBoundaryPreservesEveryEntry) {
  // Load factor 5/8: an 8-slot table grows on the 5th insert, 16 on the
  // 10th, ... — insert across several boundaries and verify every entry
  // after each step.
  FlatIdMap<std::uint64_t> m(8);
  std::vector<ItemId> keys;
  for (ItemId id = 1; id <= 200; ++id) {
    m[id] = id * 7;
    keys.push_back(id);
    if (keys.size() % 5 == 0) {  // around each x5/8 boundary
      for (const ItemId k : keys) {
        ASSERT_NE(m.find(k), nullptr) << "after inserting " << id;
        ASSERT_EQ(*m.find(k), k * 7);
      }
    }
  }
  EXPECT_EQ(m.size(), 200u);
}

TEST(FlatIdMap, ReinsertAfterEraseValueInitializes) {
  FlatIdMap<int> m(8);
  m[42] = 9;
  m.erase(42);
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m[42], 0) << "operator[] must value-initialize a fresh entry";
  m[42] = 10;
  EXPECT_EQ(m.at(42), 10);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatIdMap, EraseOfAbsentKeyIsANoop) {
  FlatIdMap<int> m(8);
  m[1] = 1;
  m.erase(999);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.at(1), 1);
}

TEST(FlatIdMap, RandomizedChurnMatchesUnorderedMap) {
  FlatIdMap<std::uint64_t> m(8);
  std::unordered_map<ItemId, std::uint64_t> ref;
  Rng rng(2024);
  for (int step = 0; step < 20000; ++step) {
    const ItemId id = 1 + rng.next_below(400);  // dense: heavy collisions
    switch (rng.next_below(3)) {
      case 0:
        m[id] = step;
        ref[id] = step;
        break;
      case 1:
        m.erase(id);
        ref.erase(id);
        break;
      default: {
        const std::uint64_t* got = m.find(id);
        const auto it = ref.find(id);
        if (it == ref.end()) {
          ASSERT_EQ(got, nullptr) << "step " << step << " id " << id;
        } else {
          ASSERT_NE(got, nullptr) << "step " << step << " id " << id;
          ASSERT_EQ(*got, it->second);
        }
        break;
      }
    }
    ASSERT_EQ(m.size(), ref.size()) << "step " << step;
  }
  for (const auto& [id, v] : ref) {
    ASSERT_NE(m.find(id), nullptr);
    ASSERT_EQ(*m.find(id), v);
  }
}

}  // namespace
}  // namespace memreal
