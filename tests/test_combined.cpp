// COMBINED (Corollary 4.10): region split, routing, external updates,
// resizable bound with mixed tiny + large traffic.
#include <gtest/gtest.h>

#include <cmath>

#include "alloc/combined.h"
#include "mem/memory.h"
#include "testing.h"
#include "workload/adversarial.h"
#include "workload/churn.h"

namespace memreal {
namespace {

constexpr Tick kCap = Tick{1} << 50;
constexpr double kEps = 1.0 / 16;

Sequence mixed_seq(double eps, std::size_t updates, std::uint64_t seed,
                   double tiny_fraction = 0.5) {
  MixedTinyLargeConfig c;
  c.capacity = kCap;
  c.eps = eps;
  c.churn_updates = updates;
  c.seed = seed;
  c.tiny_fraction = tiny_fraction;
  return make_mixed_tiny_large(c);
}

TEST(Combined, TinyThresholdAtMostEps4) {
  Memory mem = testing::strict_memory(kCap, kEps);
  CombinedConfig c;
  c.eps = kEps;
  CombinedAllocator alloc(mem, c);
  // At large eps the threshold is clamped below eps^4 so the tiny units
  // keep their Theta(eps^3) size; it is exactly eps^4 once eps <= 2^-7.
  EXPECT_LE(alloc.tiny_threshold(),
            static_cast<Tick>(std::pow(kEps, 4.0) *
                              static_cast<double>(kCap)));
  Memory mem2 = testing::strict_memory(kCap, 1.0 / 256);
  CombinedConfig c2;
  c2.eps = 1.0 / 256;
  CombinedAllocator alloc2(mem2, c2);
  EXPECT_EQ(alloc2.tiny_threshold(),
            static_cast<Tick>(std::pow(1.0 / 256, 4.0) *
                              static_cast<double>(kCap)));
}

TEST(Combined, RoutesBySize) {
  Memory mem = testing::strict_memory(kCap, kEps);
  CombinedConfig c;
  c.eps = kEps;
  CombinedAllocator alloc(mem, c);
  Engine engine(mem, alloc);
  const Tick tiny = alloc.tiny_threshold() / 2;
  const Tick large = alloc.tiny_threshold() * 100;
  engine.step(Update::insert(1, large));
  EXPECT_EQ(alloc.large_mass(), large);
  engine.step(Update::insert(2, tiny));
  EXPECT_EQ(alloc.large_mass(), large);
  // Large items live in the GEO region [0, L1 + eps/2); tiny items beyond.
  EXPECT_LT(mem.offset_of(1), alloc.flex().region_start());
  EXPECT_GE(mem.offset_of(2), alloc.flex().region_start());
  alloc.check_invariants();
}

TEST(Combined, LargeUpdateShiftsFlexRegion) {
  Memory mem = testing::strict_memory(kCap, kEps);
  CombinedConfig c;
  c.eps = kEps;
  CombinedAllocator alloc(mem, c);
  Engine engine(mem, alloc);
  const Tick tiny = alloc.tiny_threshold() / 2;
  const Tick large = alloc.tiny_threshold() * 100;
  engine.step(Update::insert(1, tiny));
  const Tick start0 = alloc.flex().region_start();
  engine.step(Update::insert(2, large));
  EXPECT_EQ(alloc.flex().region_start(), start0 + large);
  engine.step(Update::erase(2, large));
  EXPECT_EQ(alloc.flex().region_start(), start0);
  alloc.check_invariants();
}

TEST(Combined, SurvivesMixedChurnFullValidation) {
  const Sequence seq = mixed_seq(kEps, 1200, 3);
  const RunStats s = testing::run_with_invariants("combined", seq, 1, 0.0, 16);
  EXPECT_GT(s.updates, 1000u);
}

TEST(Combined, ResizableBoundHolds) {
  const Sequence seq = mixed_seq(kEps, 800, 5);
  ValidationPolicy policy;
  policy.audit_every_n_updates = 1;
  Memory mem(seq.capacity, seq.eps_ticks, policy);
  CombinedConfig c;
  c.eps = kEps;
  CombinedAllocator alloc(mem, c);
  Engine engine(mem, alloc);
  engine.run(seq.updates);
  EXPECT_LE(mem.span_end(), mem.live_mass() + mem.eps_ticks());
}

TEST(Combined, EmptiesCleanly) {
  Memory mem = testing::strict_memory(kCap, kEps);
  CombinedConfig c;
  c.eps = kEps;
  CombinedAllocator alloc(mem, c);
  Engine engine(mem, alloc);
  const Tick tiny = alloc.tiny_threshold() / 2;
  const Tick large = alloc.tiny_threshold() * 64;
  for (ItemId i = 1; i <= 10; ++i) {
    engine.step(Update::insert(i, i % 2 ? tiny : large));
  }
  for (ItemId i = 1; i <= 10; ++i) {
    engine.step(Update::erase(i, i % 2 ? tiny : large));
  }
  EXPECT_EQ(mem.item_count(), 0u);
  alloc.check_invariants();
}

TEST(Combined, ExternalUpdateStorm) {
  // Alternating large inserts/deletes push FLEXHASH's region back and
  // forth on every update; the buffer accounts must absorb the storm.
  Memory mem = testing::strict_memory(kCap, kEps);
  CombinedConfig c;
  c.eps = kEps;
  CombinedAllocator alloc(mem, c);
  EngineOptions opts;
  opts.check_invariants_every = 1;
  Engine engine(mem, alloc, opts);
  const Tick tiny = alloc.tiny_threshold() / 2;
  // A tiny population that FLEXHASH must keep intact throughout.
  for (ItemId i = 1; i <= 50; ++i) engine.step(Update::insert(i, tiny - i));
  Rng rng(21);
  ItemId next = 1000;
  const Tick big_lo = alloc.tiny_threshold() * 4;
  for (int round = 0; round < 300; ++round) {
    const Tick s = big_lo + rng.next_below(big_lo * 200);
    engine.step(Update::insert(next, s));
    engine.step(Update::erase(next, s));
    ++next;
  }
  EXPECT_EQ(mem.item_count(), 50u);
  alloc.check_invariants();
  mem.audit();
}

// Parameterized sweep over eps, seed and tiny fraction.
struct CombinedParam {
  double eps;
  std::uint64_t seed;
  double tiny_fraction;
};

class CombinedSweep : public ::testing::TestWithParam<CombinedParam> {};

TEST_P(CombinedSweep, InvariantsHold) {
  const auto [eps, seed, frac] = GetParam();
  const Sequence seq = mixed_seq(eps, 800, seed, frac);
  const RunStats s = testing::run_with_invariants("combined", seq, seed,
                                                  0.0, 32);
  EXPECT_GT(s.updates, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CombinedSweep,
    ::testing::Values(CombinedParam{1.0 / 16, 1, 0.3},
                      CombinedParam{1.0 / 16, 2, 0.7},
                      CombinedParam{1.0 / 32, 1, 0.5},
                      CombinedParam{1.0 / 32, 2, 0.9},
                      CombinedParam{1.0 / 64, 1, 0.5}));

}  // namespace
}  // namespace memreal
