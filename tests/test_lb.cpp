// Theorem 5.1: lower-bound sequence structure, the no-additive-structure
// property, the potential function, and the certifier (measured cost of
// every runnable allocator dominates the potential-derived floor).
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "lb/lower_bound.h"
#include "lb/potential.h"
#include "testing.h"

namespace memreal {
namespace {

constexpr Tick kCap = Tick{1} << 50;

TEST(LowerBound, SpecMatchesPaper) {
  const auto spec = make_lower_bound_spec(kCap, 1.0 / 256);
  EXPECT_EQ(spec.n, 4u);  // eps^{-1/2}/4 = 16/4
  EXPECT_EQ(spec.s2,
            static_cast<Tick>(std::sqrt(1.0 / 256) *
                              static_cast<double>(kCap)));
  EXPECT_EQ(spec.s1, spec.s2 + 2 * spec.eps_ticks);
}

TEST(LowerBound, SequenceShape) {
  const auto spec = make_lower_bound_spec(kCap, 1.0 / 1024);
  const Sequence seq = make_lower_bound_sequence(spec);
  seq.check_well_formed();
  ASSERT_EQ(seq.size(), 3 * spec.n);
  for (std::size_t i = 0; i < spec.n; ++i) {
    EXPECT_TRUE(seq.updates[i].is_insert());
    EXPECT_EQ(seq.updates[i].size, spec.s1);
  }
  for (std::size_t i = spec.n; i < 3 * spec.n; i += 2) {
    EXPECT_FALSE(seq.updates[i].is_insert());
    EXPECT_EQ(seq.updates[i].size, spec.s1);
    EXPECT_TRUE(seq.updates[i + 1].is_insert());
    EXPECT_EQ(seq.updates[i + 1].size, spec.s2);
  }
}

TEST(LowerBound, NoAdditiveStructure) {
  for (double eps : {1.0 / 64, 1.0 / 256, 1.0 / 1024}) {
    const auto spec = make_lower_bound_spec(kCap, eps);
    // |l1 s1 - l2 s2| >= 2 eps for all non-zero (l1, l2) in [0, n]^2.
    EXPECT_GE(min_additive_gap(spec), 2 * spec.eps_ticks) << "eps=" << eps;
  }
}

TEST(LowerBound, FloorGrowsLogarithmically) {
  double prev = 0;
  for (double eps : {1.0 / 256, 1.0 / 1024, 1.0 / 4096, 1.0 / 16384}) {
    const auto spec = make_lower_bound_spec(kCap, eps);
    const double f = spec.amortized_floor();
    EXPECT_GT(f, prev);
    prev = f;
  }
  // Quadrupling eps^-1 doubles n: the floor gain per step approaches
  // ln(2)/6 * (s2/s1); check the growth is roughly additive (log shape).
  const double f1 =
      make_lower_bound_spec(kCap, 1.0 / 1024).amortized_floor();
  const double f2 =
      make_lower_bound_spec(kCap, 1.0 / 4096).amortized_floor();
  const double f3 =
      make_lower_bound_spec(kCap, 1.0 / 16384).amortized_floor();
  EXPECT_NEAR(f3 - f2, f2 - f1, 0.05);
}

TEST(Potential, PhiOfKnownLayouts) {
  // Layout: [A A B] with n = 3 (offset order).  From the end: i=1 item B
  // (B_1 = 1), i=2 (B_2 = 1), i=3 (B_3 = 1).
  std::vector<PlacedItem> snap{
      PlacedItem{1, 0, 10, 10},    // A
      PlacedItem{2, 10, 10, 10},   // A
      PlacedItem{10, 20, 10, 10},  // B
  };
  const auto is_b = [](ItemId id) { return id >= 10; };
  EXPECT_NEAR(potential_phi(snap, is_b, 3), 1.0 + 0.5 + 1.0 / 3, 1e-12);
  // Only the final 2 items count when n = 2.
  EXPECT_NEAR(potential_phi(snap, is_b, 2), 1.0 + 0.5, 1e-12);
  // All A's: zero.
  const auto no_b = [](ItemId) { return false; };
  EXPECT_DOUBLE_EQ(potential_phi(snap, no_b, 3), 0.0);
}

TEST(Potential, PhiMaxedByAllBs) {
  std::vector<PlacedItem> snap;
  for (ItemId i = 0; i < 5; ++i) {
    snap.push_back(PlacedItem{100 + i, i * 10, 10, 10});
  }
  const auto is_b = [](ItemId) { return true; };
  EXPECT_NEAR(potential_phi(snap, is_b, 5), 5.0, 1e-12);
}

TEST(Certifier, FolkloreCompactDominatesFloor) {
  const auto spec = make_lower_bound_spec(kCap, 1.0 / 1024);
  const CertifiedRun run =
      run_certified_lower_bound(spec, "folklore-compact");
  EXPECT_GE(run.measured_amortized_cost, run.floor);
  EXPECT_TRUE(run.potential_inequality_ok);
  EXPECT_GT(run.phi_final, 0.0);
}

TEST(Certifier, FolkloreWindowedDominatesFloor) {
  const auto spec = make_lower_bound_spec(kCap, 1.0 / 1024);
  const CertifiedRun run =
      run_certified_lower_bound(spec, "folklore-windowed");
  EXPECT_GE(run.measured_amortized_cost, run.floor);
}

TEST(Certifier, RSumDominatesFloor) {
  const auto spec = make_lower_bound_spec(kCap, 1.0 / 1024);
  const CertifiedRun run = run_certified_lower_bound(spec, "rsum");
  EXPECT_GE(run.measured_amortized_cost, run.floor);
}

// Parameterized: the floor holds across eps for every runnable allocator.
struct LbParam {
  const char* allocator;
  double eps;
};

class LbSweep : public ::testing::TestWithParam<LbParam> {};

TEST_P(LbSweep, MeasuredDominatesFloor) {
  const auto [name, eps] = GetParam();
  const auto spec = make_lower_bound_spec(kCap, eps);
  const CertifiedRun run = run_certified_lower_bound(spec, name);
  EXPECT_GE(run.measured_amortized_cost, run.floor)
      << name << " eps=" << eps;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LbSweep,
    ::testing::Values(LbParam{"folklore-compact", 1.0 / 256},
                      LbParam{"folklore-compact", 1.0 / 4096},
                      LbParam{"folklore-windowed", 1.0 / 256},
                      LbParam{"folklore-windowed", 1.0 / 4096},
                      LbParam{"rsum", 1.0 / 256},
                      LbParam{"rsum", 1.0 / 4096}));

// --- sequence_cost_floor: the adversarial search's denominator --------

Sequence floor_test_sequence() {
  ChurnConfig c;
  c.capacity = Tick{1} << 30;
  c.eps = 1.0 / 32;
  c.min_size = (Tick{1} << 30) / 32;
  c.max_size = (Tick{1} << 30) / 16 - 1;
  c.target_load = 0.7;
  c.churn_updates = 200;
  c.seed = 17;
  return make_churn(c);
}

// The floor is monotone under extension: every prefix's floor is <= the
// next prefix's, so a mutation that appends updates can never shrink the
// adversarial ratio's denominator retroactively.
TEST(SequenceFloor, MonotoneUnderExtension) {
  const Sequence seq = floor_test_sequence();
  Sequence prefix = seq;
  prefix.updates.clear();
  double prev = 0.0;
  for (const Update& u : seq.updates) {
    prefix.updates.push_back(u);
    const SequenceFloor f = sequence_cost_floor(prefix);
    EXPECT_GE(f.cost_floor, prev);
    prev = f.cost_floor;
  }
  EXPECT_EQ(static_cast<std::size_t>(prev),
            sequence_cost_floor(seq).inserts);
}

// Cost-neutral updates leave the floor invariant: deletes may be served
// for free, so only inserts count.
TEST(SequenceFloor, InvariantUnderCostNeutralUpdates) {
  const Sequence seq = floor_test_sequence();
  const SequenceFloor base = sequence_cost_floor(seq);
  EXPECT_EQ(base.cost_floor, static_cast<double>(base.inserts));

  // Deleting every live item at the end adds zero floor.
  Sequence extended = seq;
  std::map<ItemId, Tick> live;
  for (const Update& u : seq.updates) {
    if (u.is_insert()) {
      live[u.id] = u.size;
    } else {
      live.erase(u.id);
    }
  }
  for (const auto& [id, size] : live) {
    extended.updates.push_back(Update::erase(id, size));
  }
  extended.check_well_formed();
  const SequenceFloor ext = sequence_cost_floor(extended);
  EXPECT_EQ(ext.cost_floor, base.cost_floor);
  EXPECT_EQ(ext.inserts, base.inserts);
  EXPECT_EQ(ext.write_mass, base.write_mass);
}

// The floor's write-mass channel sums exactly the inserted tick sizes.
TEST(SequenceFloor, WriteMassSumsInsertedSizes) {
  const Sequence seq = floor_test_sequence();
  Tick mass = 0;
  std::size_t inserts = 0;
  for (const Update& u : seq.updates) {
    if (!u.is_insert()) continue;
    mass += u.size;
    ++inserts;
  }
  const SequenceFloor f = sequence_cost_floor(seq);
  EXPECT_EQ(f.write_mass, mass);
  EXPECT_EQ(f.inserts, inserts);
}

}  // namespace
}  // namespace memreal
