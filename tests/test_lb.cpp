// Theorem 5.1: lower-bound sequence structure, the no-additive-structure
// property, the potential function, and the certifier (measured cost of
// every runnable allocator dominates the potential-derived floor).
#include <gtest/gtest.h>

#include <cmath>

#include "lb/lower_bound.h"
#include "lb/potential.h"
#include "testing.h"

namespace memreal {
namespace {

constexpr Tick kCap = Tick{1} << 50;

TEST(LowerBound, SpecMatchesPaper) {
  const auto spec = make_lower_bound_spec(kCap, 1.0 / 256);
  EXPECT_EQ(spec.n, 4u);  // eps^{-1/2}/4 = 16/4
  EXPECT_EQ(spec.s2,
            static_cast<Tick>(std::sqrt(1.0 / 256) *
                              static_cast<double>(kCap)));
  EXPECT_EQ(spec.s1, spec.s2 + 2 * spec.eps_ticks);
}

TEST(LowerBound, SequenceShape) {
  const auto spec = make_lower_bound_spec(kCap, 1.0 / 1024);
  const Sequence seq = make_lower_bound_sequence(spec);
  seq.check_well_formed();
  ASSERT_EQ(seq.size(), 3 * spec.n);
  for (std::size_t i = 0; i < spec.n; ++i) {
    EXPECT_TRUE(seq.updates[i].is_insert());
    EXPECT_EQ(seq.updates[i].size, spec.s1);
  }
  for (std::size_t i = spec.n; i < 3 * spec.n; i += 2) {
    EXPECT_FALSE(seq.updates[i].is_insert());
    EXPECT_EQ(seq.updates[i].size, spec.s1);
    EXPECT_TRUE(seq.updates[i + 1].is_insert());
    EXPECT_EQ(seq.updates[i + 1].size, spec.s2);
  }
}

TEST(LowerBound, NoAdditiveStructure) {
  for (double eps : {1.0 / 64, 1.0 / 256, 1.0 / 1024}) {
    const auto spec = make_lower_bound_spec(kCap, eps);
    // |l1 s1 - l2 s2| >= 2 eps for all non-zero (l1, l2) in [0, n]^2.
    EXPECT_GE(min_additive_gap(spec), 2 * spec.eps_ticks) << "eps=" << eps;
  }
}

TEST(LowerBound, FloorGrowsLogarithmically) {
  double prev = 0;
  for (double eps : {1.0 / 256, 1.0 / 1024, 1.0 / 4096, 1.0 / 16384}) {
    const auto spec = make_lower_bound_spec(kCap, eps);
    const double f = spec.amortized_floor();
    EXPECT_GT(f, prev);
    prev = f;
  }
  // Quadrupling eps^-1 doubles n: the floor gain per step approaches
  // ln(2)/6 * (s2/s1); check the growth is roughly additive (log shape).
  const double f1 =
      make_lower_bound_spec(kCap, 1.0 / 1024).amortized_floor();
  const double f2 =
      make_lower_bound_spec(kCap, 1.0 / 4096).amortized_floor();
  const double f3 =
      make_lower_bound_spec(kCap, 1.0 / 16384).amortized_floor();
  EXPECT_NEAR(f3 - f2, f2 - f1, 0.05);
}

TEST(Potential, PhiOfKnownLayouts) {
  // Layout: [A A B] with n = 3 (offset order).  From the end: i=1 item B
  // (B_1 = 1), i=2 (B_2 = 1), i=3 (B_3 = 1).
  std::vector<PlacedItem> snap{
      PlacedItem{1, 0, 10, 10},    // A
      PlacedItem{2, 10, 10, 10},   // A
      PlacedItem{10, 20, 10, 10},  // B
  };
  const auto is_b = [](ItemId id) { return id >= 10; };
  EXPECT_NEAR(potential_phi(snap, is_b, 3), 1.0 + 0.5 + 1.0 / 3, 1e-12);
  // Only the final 2 items count when n = 2.
  EXPECT_NEAR(potential_phi(snap, is_b, 2), 1.0 + 0.5, 1e-12);
  // All A's: zero.
  const auto no_b = [](ItemId) { return false; };
  EXPECT_DOUBLE_EQ(potential_phi(snap, no_b, 3), 0.0);
}

TEST(Potential, PhiMaxedByAllBs) {
  std::vector<PlacedItem> snap;
  for (ItemId i = 0; i < 5; ++i) {
    snap.push_back(PlacedItem{100 + i, i * 10, 10, 10});
  }
  const auto is_b = [](ItemId) { return true; };
  EXPECT_NEAR(potential_phi(snap, is_b, 5), 5.0, 1e-12);
}

TEST(Certifier, FolkloreCompactDominatesFloor) {
  const auto spec = make_lower_bound_spec(kCap, 1.0 / 1024);
  const CertifiedRun run =
      run_certified_lower_bound(spec, "folklore-compact");
  EXPECT_GE(run.measured_amortized_cost, run.floor);
  EXPECT_TRUE(run.potential_inequality_ok);
  EXPECT_GT(run.phi_final, 0.0);
}

TEST(Certifier, FolkloreWindowedDominatesFloor) {
  const auto spec = make_lower_bound_spec(kCap, 1.0 / 1024);
  const CertifiedRun run =
      run_certified_lower_bound(spec, "folklore-windowed");
  EXPECT_GE(run.measured_amortized_cost, run.floor);
}

TEST(Certifier, RSumDominatesFloor) {
  const auto spec = make_lower_bound_spec(kCap, 1.0 / 1024);
  const CertifiedRun run = run_certified_lower_bound(spec, "rsum");
  EXPECT_GE(run.measured_amortized_cost, run.floor);
}

// Parameterized: the floor holds across eps for every runnable allocator.
struct LbParam {
  const char* allocator;
  double eps;
};

class LbSweep : public ::testing::TestWithParam<LbParam> {};

TEST_P(LbSweep, MeasuredDominatesFloor) {
  const auto [name, eps] = GetParam();
  const auto spec = make_lower_bound_spec(kCap, eps);
  const CertifiedRun run = run_certified_lower_bound(spec, name);
  EXPECT_GE(run.measured_amortized_cost, run.floor)
      << name << " eps=" << eps;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LbSweep,
    ::testing::Values(LbParam{"folklore-compact", 1.0 / 256},
                      LbParam{"folklore-compact", 1.0 / 4096},
                      LbParam{"folklore-windowed", 1.0 / 256},
                      LbParam{"folklore-windowed", 1.0 / 4096},
                      LbParam{"rsum", 1.0 / 256},
                      LbParam{"rsum", 1.0 / 4096}));

}  // namespace
}  // namespace memreal
