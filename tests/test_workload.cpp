// Tests for the workload generators: well-formedness, determinism, size
// regimes, and the delta-random-item sequence of Section 6.
#include <gtest/gtest.h>

#include <cmath>
#include <iterator>
#include <string>
#include <unordered_map>

#include "util/check.h"
#include "workload/adversarial.h"
#include "workload/churn.h"
#include "workload/random_item.h"
#include "workload/trace.h"

namespace memreal {
namespace {

constexpr Tick kCap = Tick{1} << 40;

TEST(SequenceBuilder, TracksLiveSet) {
  SequenceBuilder b("t", 1000, 0.1);
  EXPECT_EQ(b.budget(), 900u);
  const ItemId a = b.insert(100);
  b.insert(200);
  EXPECT_EQ(b.live_mass(), 300u);
  EXPECT_EQ(b.live_count(), 2u);
  b.erase_id(a);
  EXPECT_EQ(b.live_mass(), 200u);
  const Sequence seq = b.take();
  EXPECT_EQ(seq.size(), 3u);
  seq.check_well_formed();
}

TEST(SequenceBuilder, RejectsOverBudget) {
  SequenceBuilder b("t", 1000, 0.1);
  b.insert(850);
  EXPECT_FALSE(b.can_insert(100));
  EXPECT_THROW(b.insert(100), InvariantViolation);
}

TEST(SequenceBuilder, EraseRandomIsDeterministic) {
  auto run = [] {
    SequenceBuilder b("t", 1000, 0.1);
    Rng rng(7);
    for (int i = 0; i < 8; ++i) b.insert(10);
    for (int i = 0; i < 4; ++i) b.erase_random(rng);
    return b.take();
  };
  const Sequence s1 = run();
  const Sequence s2 = run();
  EXPECT_EQ(s1.updates, s2.updates);
}

TEST(Sequence, WellFormedCatchesDoubleInsert) {
  Sequence s;
  s.capacity = 1000;
  s.eps = 0.1;
  s.eps_ticks = 100;
  s.updates = {Update::insert(1, 10), Update::insert(1, 10)};
  EXPECT_THROW(s.check_well_formed(), InvariantViolation);
}

TEST(Sequence, WellFormedCatchesGhostDelete) {
  Sequence s;
  s.capacity = 1000;
  s.eps = 0.1;
  s.eps_ticks = 100;
  s.updates = {Update::erase(1, 10)};
  EXPECT_THROW(s.check_well_formed(), InvariantViolation);
}

TEST(Churn, RespectsSizeBand) {
  ChurnConfig c;
  c.capacity = kCap;
  c.eps = 1.0 / 16;
  c.min_size = kCap / 64;
  c.max_size = kCap / 32;
  c.churn_updates = 500;
  const Sequence s = make_churn(c);
  s.check_well_formed();
  for (const Update& u : s.updates) {
    EXPECT_GE(u.size, c.min_size);
    EXPECT_LE(u.size, c.max_size);
  }
}

TEST(Churn, ReachesTargetLoad) {
  ChurnConfig c;
  c.capacity = kCap;
  c.eps = 1.0 / 16;
  c.min_size = kCap / 1024;
  c.max_size = kCap / 512;
  c.target_load = 0.8;
  c.churn_updates = 0;
  const Sequence s = make_churn(c);
  Tick mass = 0;
  for (const Update& u : s.updates) mass += u.size;
  const auto budget = static_cast<double>(kCap) * (1.0 - c.eps);
  EXPECT_GT(static_cast<double>(mass), 0.75 * budget);
  EXPECT_LE(static_cast<double>(mass), 0.82 * budget);
}

TEST(Churn, DeterministicBySeed) {
  ChurnConfig c;
  c.capacity = kCap;
  c.eps = 1.0 / 16;
  c.min_size = kCap / 256;
  c.max_size = kCap / 128;
  c.churn_updates = 200;
  c.seed = 42;
  EXPECT_EQ(make_churn(c).updates, make_churn(c).updates);
  c.seed = 43;
  ChurnConfig c2 = c;
  c2.seed = 44;
  EXPECT_NE(make_churn(c).updates, make_churn(c2).updates);
}

TEST(SimpleRegime, SizesInEps2Eps) {
  const double eps = 1.0 / 64;
  const Sequence s = make_simple_regime(kCap, eps, 500, 1);
  s.check_well_formed();
  const auto lo = static_cast<Tick>(eps * static_cast<double>(kCap));
  for (const Update& u : s.updates) {
    EXPECT_GE(u.size, lo);
    EXPECT_LT(u.size, 2 * lo);
  }
}

TEST(GeoRegime, SizesBelowHugeThreshold) {
  GeoRegimeConfig c;
  c.capacity = kCap;
  c.eps = 1.0 / 64;
  c.churn_updates = 500;
  const Sequence s = make_geo_regime(c);
  s.check_well_formed();
  const auto cap_d = static_cast<double>(kCap);
  const auto huge_thr =
      static_cast<Tick>(std::sqrt(c.eps) / 100.0 * cap_d);
  const auto lo = static_cast<Tick>(std::sqrt(c.eps) / 200.0 / c.band_ratio *
                                    cap_d) - 1;
  for (const Update& u : s.updates) {
    EXPECT_GE(u.size, lo);
    EXPECT_LT(u.size, huge_thr);  // no huge items unless requested
  }
}

TEST(GeoRegime, HugeFractionProducesHugeItems) {
  GeoRegimeConfig c;
  c.capacity = kCap;
  c.eps = 1.0 / 64;
  c.huge_fraction = 0.2;
  c.churn_updates = 2000;
  const Sequence s = make_geo_regime(c);
  s.check_well_formed();
  const auto huge_thr = static_cast<Tick>(
      std::sqrt(c.eps) / 100.0 * static_cast<double>(kCap));
  std::size_t huge = 0;
  for (const Update& u : s.updates) huge += u.size >= huge_thr;
  EXPECT_GT(huge, 0u);
}

TEST(RandomItem, CountMatchesPaper) {
  EXPECT_EQ(random_item_count(0.01), 25u);
  EXPECT_EQ(random_item_count(1.0 / 128), 32u);
}

TEST(RandomItem, StructureMatchesSection6) {
  RandomItemConfig c;
  c.capacity = kCap;
  c.eps = 1.0 / 256;
  c.delta = 1.0 / 128;
  c.churn_pairs = 50;
  const Sequence s = make_random_item_sequence(c);
  s.check_well_formed();
  const std::size_t n = random_item_count(c.delta);
  ASSERT_EQ(s.size(), n + 2 * c.churn_pairs);
  // Prefix: n inserts.
  for (std::size_t i = 0; i < n; ++i) EXPECT_TRUE(s.updates[i].is_insert());
  // Then alternating delete / insert.
  for (std::size_t i = n; i < s.size(); i += 2) {
    EXPECT_FALSE(s.updates[i].is_insert());
    EXPECT_TRUE(s.updates[i + 1].is_insert());
  }
  // All sizes in [delta, 2delta].
  const auto lo = static_cast<Tick>(c.delta * static_cast<double>(kCap));
  for (const Update& u : s.updates) {
    EXPECT_GE(u.size, lo);
    EXPECT_LE(u.size, 2 * lo);
  }
}

TEST(RandomItem, DefaultDeltaIsPolyEps) {
  RandomItemConfig c;
  c.capacity = kCap;
  c.eps = 1.0 / 256;
  c.churn_pairs = 5;
  const Sequence s = make_random_item_sequence(c);
  const double delta = std::pow(c.eps, 0.75);
  const auto lo = static_cast<Tick>(delta * static_cast<double>(kCap));
  EXPECT_GE(s.updates[0].size, lo);
}

TEST(Adversarial, SingleClassAttackUsesOneSize) {
  SingleClassAttackConfig c;
  c.capacity = kCap;
  c.eps = 1.0 / 64;
  c.attack_pairs = 100;
  const Sequence s = make_single_class_attack(c);
  s.check_well_formed();
  for (const Update& u : s.updates) EXPECT_EQ(u.size, s.updates[0].size);
}

TEST(Adversarial, FragmenterAlternatesPhases) {
  FragmenterConfig c;
  c.capacity = kCap;
  c.eps = 1.0 / 16;
  c.rounds = 2;
  const Sequence s = make_fragmenter(c);
  s.check_well_formed();
  EXPECT_GT(s.size(), 50u);
}

TEST(Adversarial, SawtoothSwings) {
  SawtoothConfig c;
  c.capacity = kCap;
  c.eps = 1.0 / 16;
  c.teeth = 2;
  const Sequence s = make_sawtooth(c);
  s.check_well_formed();
  // Live mass must cross both the high and low thresholds.
  Tick mass = 0, peak = 0;
  std::unordered_map<ItemId, Tick> live;
  for (const Update& u : s.updates) {
    if (u.is_insert()) {
      live[u.id] = u.size;
      mass += u.size;
    } else {
      mass -= live.at(u.id);
      live.erase(u.id);
    }
    peak = std::max(peak, mass);
  }
  const auto budget = static_cast<double>(kCap) * (1 - c.eps);
  EXPECT_GT(static_cast<double>(peak), 0.8 * budget);
  EXPECT_LT(static_cast<double>(mass), 0.3 * budget);
}

TEST(Adversarial, MixedTinyLargeHasBothPopulations) {
  MixedTinyLargeConfig c;
  c.capacity = Tick{1} << 50;
  c.eps = 1.0 / 16;
  c.churn_updates = 1000;
  const Sequence s = make_mixed_tiny_large(c);
  s.check_well_formed();
  const auto tiny_thr = static_cast<Tick>(
      std::pow(c.eps, 4.0) * static_cast<double>(c.capacity));
  std::size_t tiny = 0, large = 0;
  for (const Update& u : s.updates) {
    (u.size <= tiny_thr ? tiny : large) += 1;
  }
  EXPECT_GT(tiny, 100u);
  EXPECT_GT(large, 100u);
}

TEST(Trace, RoundTrip) {
  ChurnConfig c;
  c.capacity = kCap;
  c.eps = 1.0 / 16;
  c.min_size = kCap / 256;
  c.max_size = kCap / 128;
  c.churn_updates = 100;
  const Sequence s = make_churn(c);
  const Sequence t = trace_from_string(trace_to_string(s));
  EXPECT_EQ(s.updates, t.updates);
  EXPECT_EQ(s.capacity, t.capacity);
  EXPECT_DOUBLE_EQ(s.eps, t.eps);
}

TEST(Trace, RejectsGarbage) {
  EXPECT_THROW(trace_from_string("X 1 2\n"), InvariantViolation);
  EXPECT_THROW(trace_from_string("I 1 2\n"), InvariantViolation);  // no header
}

TEST(Trace, RoundTripIsIdentityOverRandomBuilderOutputs) {
  // Property: read_trace(write_trace(seq)) == seq for arbitrary
  // well-formed SequenceBuilder outputs, across seeds, eps values (exactly
  // representable and not) and live-set shapes.
  const double eps_values[] = {0.5, 1.0 / 16, 1.0 / 3, 0.0078125, 1e-4};
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    const double eps = eps_values[seed % std::size(eps_values)];
    SequenceBuilder b("prop-trace-" + std::to_string(seed), kCap, eps);
    for (int i = 0; i < 200; ++i) {
      const Tick size = 1 + rng.next_below(kCap / 128);
      if (b.live_count() > 0 &&
          (!b.can_insert(size) || rng.next_below(3) == 0)) {
        b.erase_random(rng);
      } else if (b.can_insert(size)) {
        b.insert(size);
      }
    }
    const Sequence s = b.take();
    ASSERT_FALSE(s.updates.empty());
    const Sequence t = trace_from_string(trace_to_string(s));
    EXPECT_EQ(s.updates, t.updates);
    EXPECT_EQ(s.capacity, t.capacity);
    EXPECT_EQ(s.name, t.name);
    // Byte-exact eps (write_trace emits max_digits10), so a second
    // round-trip is byte-identical too.
    EXPECT_EQ(s.eps, t.eps);
    EXPECT_EQ(trace_to_string(s), trace_to_string(t));
  }
}

TEST(Trace, CommentsAndBlankLinesAreSkipped) {
  const Sequence s = trace_from_string(
      "# leading comment\n"
      "\n"
      "H 1000 0.1 commented\n"
      "# interleaved\n"
      "I 1 10\n"
      "\n"
      "D 1 10\n"
      "# trailing\n");
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.name, "commented");
  EXPECT_EQ(s.eps_ticks, 100u);
}

TEST(Trace, AllowsIdReuseAfterDelete) {
  const Sequence s =
      trace_from_string("H 1000 0.1 reuse\nI 1 10\nD 1 10\nI 1 20\n");
  EXPECT_EQ(s.size(), 3u);
  s.check_well_formed();
}

/// The corrupt-corpus rejection matrix: each bad input must throw and the
/// error must name the offending line.
void expect_trace_error(const std::string& text, const std::string& needle) {
  try {
    (void)trace_from_string(text);
    FAIL() << "accepted corrupt trace: " << text;
  } catch (const InvariantViolation& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "error '" << e.what() << "' does not mention '" << needle << "'";
  }
}

TEST(Trace, RejectsDuplicateLiveIdWithLineNumber) {
  expect_trace_error("H 1000 0.1 t\nI 1 10\nI 1 10\n",
                     "duplicate live id 1 at line 3");
}

TEST(Trace, RejectsDeleteOfAbsentIdWithLineNumber) {
  expect_trace_error("H 1000 0.1 t\nI 1 10\nD 2 10\n",
                     "absent id 2 at line 3");
}

TEST(Trace, RejectsDeleteSizeMismatchWithLineNumber) {
  expect_trace_error("H 1000 0.1 t\nI 1 10\nD 1 11\n",
                     "size mismatch for id 1 at line 3");
}

TEST(Trace, RejectsTrailingGarbageWithLineNumber) {
  expect_trace_error("H 1000 0.1 t\nI 1 10 junk\n", "line 2");
}

TEST(Trace, HeaderNameMayContainSpacesAndRoundTrips) {
  // write_trace emits the name unescaped, so the reader must take the
  // rest of the header line as the name.
  Sequence s;
  s.name = "spaced out name";
  s.capacity = 1000;
  s.eps = 0.1;
  s.eps_ticks = 100;
  s.updates = {Update::insert(1, 10)};
  const Sequence t = trace_from_string(trace_to_string(s));
  EXPECT_EQ(t.name, "spaced out name");
  EXPECT_EQ(t.updates, s.updates);
}

TEST(Trace, RejectsHeaderWithoutName) {
  expect_trace_error("H 1000 0.1\nI 1 10\n",
                     "missing sequence name at line 1");
}

TEST(Trace, RejectsMalformedFieldsWithLineNumber) {
  expect_trace_error("H 1000 0.1 t\nI one 10\n", "line 2");
  expect_trace_error("H 1000 0.1 t\nI 1\n", "line 2");
  expect_trace_error("H zero 0.1 t\n", "line 1");
}

TEST(Trace, RejectsDuplicateHeaderWithLineNumber) {
  expect_trace_error("H 1000 0.1 t\nH 1000 0.1 t\n",
                     "duplicate trace header at line 2");
}

TEST(Trace, RejectsZeroSizeWithLineNumber) {
  expect_trace_error("H 1000 0.1 t\nI 1 0\n", "zero-size item 1 at line 2");
}

TEST(Trace, RejectsPromiseViolationWithLineNumber) {
  expect_trace_error("H 1000 0.1 t\nI 1 500\nI 2 500\n",
                     "breaks the load-factor promise");
  // Sizes near 2^64 must not wrap the mass accounting.
  expect_trace_error("H 1000 0.1 t\nI 1 18446744073709551615\n",
                     "breaks the load-factor promise");
}

TEST(Trace, RejectsBadHeaderValues) {
  expect_trace_error("H 0 0.1 t\nI 1 10\n", "zero capacity");
  expect_trace_error("H 1000 1.5 t\nI 1 10\n", "eps outside (0, 1)");
  expect_trace_error("H 1000 0 t\nI 1 10\n", "eps outside (0, 1)");
  // eps > 0 but below one tick of this capacity: every downstream consumer
  // rejects eps_ticks == 0, so the reader must too — naming the line.
  expect_trace_error("H 1000 0.0001 t\nI 1 10\n",
                     "truncates to zero ticks at line 1");
}

TEST(Trace, UnknownTagNamesLine) {
  expect_trace_error("H 1000 0.1 t\nQ 1 10\n",
                     "unknown trace tag 'Q' at line 2");
}

}  // namespace
}  // namespace memreal
