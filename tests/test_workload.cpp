// Tests for the workload generators: well-formedness, determinism, size
// regimes, and the delta-random-item sequence of Section 6.
#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>

#include "util/check.h"
#include "workload/adversarial.h"
#include "workload/churn.h"
#include "workload/random_item.h"
#include "workload/trace.h"

namespace memreal {
namespace {

constexpr Tick kCap = Tick{1} << 40;

TEST(SequenceBuilder, TracksLiveSet) {
  SequenceBuilder b("t", 1000, 0.1);
  EXPECT_EQ(b.budget(), 900u);
  const ItemId a = b.insert(100);
  b.insert(200);
  EXPECT_EQ(b.live_mass(), 300u);
  EXPECT_EQ(b.live_count(), 2u);
  b.erase_id(a);
  EXPECT_EQ(b.live_mass(), 200u);
  const Sequence seq = b.take();
  EXPECT_EQ(seq.size(), 3u);
  seq.check_well_formed();
}

TEST(SequenceBuilder, RejectsOverBudget) {
  SequenceBuilder b("t", 1000, 0.1);
  b.insert(850);
  EXPECT_FALSE(b.can_insert(100));
  EXPECT_THROW(b.insert(100), InvariantViolation);
}

TEST(SequenceBuilder, EraseRandomIsDeterministic) {
  auto run = [] {
    SequenceBuilder b("t", 1000, 0.1);
    Rng rng(7);
    for (int i = 0; i < 8; ++i) b.insert(10);
    for (int i = 0; i < 4; ++i) b.erase_random(rng);
    return b.take();
  };
  const Sequence s1 = run();
  const Sequence s2 = run();
  EXPECT_EQ(s1.updates, s2.updates);
}

TEST(Sequence, WellFormedCatchesDoubleInsert) {
  Sequence s;
  s.capacity = 1000;
  s.eps = 0.1;
  s.eps_ticks = 100;
  s.updates = {Update::insert(1, 10), Update::insert(1, 10)};
  EXPECT_THROW(s.check_well_formed(), InvariantViolation);
}

TEST(Sequence, WellFormedCatchesGhostDelete) {
  Sequence s;
  s.capacity = 1000;
  s.eps = 0.1;
  s.eps_ticks = 100;
  s.updates = {Update::erase(1, 10)};
  EXPECT_THROW(s.check_well_formed(), InvariantViolation);
}

TEST(Churn, RespectsSizeBand) {
  ChurnConfig c;
  c.capacity = kCap;
  c.eps = 1.0 / 16;
  c.min_size = kCap / 64;
  c.max_size = kCap / 32;
  c.churn_updates = 500;
  const Sequence s = make_churn(c);
  s.check_well_formed();
  for (const Update& u : s.updates) {
    EXPECT_GE(u.size, c.min_size);
    EXPECT_LE(u.size, c.max_size);
  }
}

TEST(Churn, ReachesTargetLoad) {
  ChurnConfig c;
  c.capacity = kCap;
  c.eps = 1.0 / 16;
  c.min_size = kCap / 1024;
  c.max_size = kCap / 512;
  c.target_load = 0.8;
  c.churn_updates = 0;
  const Sequence s = make_churn(c);
  Tick mass = 0;
  for (const Update& u : s.updates) mass += u.size;
  const auto budget = static_cast<double>(kCap) * (1.0 - c.eps);
  EXPECT_GT(static_cast<double>(mass), 0.75 * budget);
  EXPECT_LE(static_cast<double>(mass), 0.82 * budget);
}

TEST(Churn, DeterministicBySeed) {
  ChurnConfig c;
  c.capacity = kCap;
  c.eps = 1.0 / 16;
  c.min_size = kCap / 256;
  c.max_size = kCap / 128;
  c.churn_updates = 200;
  c.seed = 42;
  EXPECT_EQ(make_churn(c).updates, make_churn(c).updates);
  c.seed = 43;
  ChurnConfig c2 = c;
  c2.seed = 44;
  EXPECT_NE(make_churn(c).updates, make_churn(c2).updates);
}

TEST(SimpleRegime, SizesInEps2Eps) {
  const double eps = 1.0 / 64;
  const Sequence s = make_simple_regime(kCap, eps, 500, 1);
  s.check_well_formed();
  const auto lo = static_cast<Tick>(eps * static_cast<double>(kCap));
  for (const Update& u : s.updates) {
    EXPECT_GE(u.size, lo);
    EXPECT_LT(u.size, 2 * lo);
  }
}

TEST(GeoRegime, SizesBelowHugeThreshold) {
  GeoRegimeConfig c;
  c.capacity = kCap;
  c.eps = 1.0 / 64;
  c.churn_updates = 500;
  const Sequence s = make_geo_regime(c);
  s.check_well_formed();
  const auto cap_d = static_cast<double>(kCap);
  const auto huge_thr =
      static_cast<Tick>(std::sqrt(c.eps) / 100.0 * cap_d);
  const auto lo = static_cast<Tick>(std::sqrt(c.eps) / 200.0 / c.band_ratio *
                                    cap_d) - 1;
  for (const Update& u : s.updates) {
    EXPECT_GE(u.size, lo);
    EXPECT_LT(u.size, huge_thr);  // no huge items unless requested
  }
}

TEST(GeoRegime, HugeFractionProducesHugeItems) {
  GeoRegimeConfig c;
  c.capacity = kCap;
  c.eps = 1.0 / 64;
  c.huge_fraction = 0.2;
  c.churn_updates = 2000;
  const Sequence s = make_geo_regime(c);
  s.check_well_formed();
  const auto huge_thr = static_cast<Tick>(
      std::sqrt(c.eps) / 100.0 * static_cast<double>(kCap));
  std::size_t huge = 0;
  for (const Update& u : s.updates) huge += u.size >= huge_thr;
  EXPECT_GT(huge, 0u);
}

TEST(RandomItem, CountMatchesPaper) {
  EXPECT_EQ(random_item_count(0.01), 25u);
  EXPECT_EQ(random_item_count(1.0 / 128), 32u);
}

TEST(RandomItem, StructureMatchesSection6) {
  RandomItemConfig c;
  c.capacity = kCap;
  c.eps = 1.0 / 256;
  c.delta = 1.0 / 128;
  c.churn_pairs = 50;
  const Sequence s = make_random_item_sequence(c);
  s.check_well_formed();
  const std::size_t n = random_item_count(c.delta);
  ASSERT_EQ(s.size(), n + 2 * c.churn_pairs);
  // Prefix: n inserts.
  for (std::size_t i = 0; i < n; ++i) EXPECT_TRUE(s.updates[i].is_insert());
  // Then alternating delete / insert.
  for (std::size_t i = n; i < s.size(); i += 2) {
    EXPECT_FALSE(s.updates[i].is_insert());
    EXPECT_TRUE(s.updates[i + 1].is_insert());
  }
  // All sizes in [delta, 2delta].
  const auto lo = static_cast<Tick>(c.delta * static_cast<double>(kCap));
  for (const Update& u : s.updates) {
    EXPECT_GE(u.size, lo);
    EXPECT_LE(u.size, 2 * lo);
  }
}

TEST(RandomItem, DefaultDeltaIsPolyEps) {
  RandomItemConfig c;
  c.capacity = kCap;
  c.eps = 1.0 / 256;
  c.churn_pairs = 5;
  const Sequence s = make_random_item_sequence(c);
  const double delta = std::pow(c.eps, 0.75);
  const auto lo = static_cast<Tick>(delta * static_cast<double>(kCap));
  EXPECT_GE(s.updates[0].size, lo);
}

TEST(Adversarial, SingleClassAttackUsesOneSize) {
  SingleClassAttackConfig c;
  c.capacity = kCap;
  c.eps = 1.0 / 64;
  c.attack_pairs = 100;
  const Sequence s = make_single_class_attack(c);
  s.check_well_formed();
  for (const Update& u : s.updates) EXPECT_EQ(u.size, s.updates[0].size);
}

TEST(Adversarial, FragmenterAlternatesPhases) {
  FragmenterConfig c;
  c.capacity = kCap;
  c.eps = 1.0 / 16;
  c.rounds = 2;
  const Sequence s = make_fragmenter(c);
  s.check_well_formed();
  EXPECT_GT(s.size(), 50u);
}

TEST(Adversarial, SawtoothSwings) {
  SawtoothConfig c;
  c.capacity = kCap;
  c.eps = 1.0 / 16;
  c.teeth = 2;
  const Sequence s = make_sawtooth(c);
  s.check_well_formed();
  // Live mass must cross both the high and low thresholds.
  Tick mass = 0, peak = 0;
  std::unordered_map<ItemId, Tick> live;
  for (const Update& u : s.updates) {
    if (u.is_insert()) {
      live[u.id] = u.size;
      mass += u.size;
    } else {
      mass -= live.at(u.id);
      live.erase(u.id);
    }
    peak = std::max(peak, mass);
  }
  const auto budget = static_cast<double>(kCap) * (1 - c.eps);
  EXPECT_GT(static_cast<double>(peak), 0.8 * budget);
  EXPECT_LT(static_cast<double>(mass), 0.3 * budget);
}

TEST(Adversarial, MixedTinyLargeHasBothPopulations) {
  MixedTinyLargeConfig c;
  c.capacity = Tick{1} << 50;
  c.eps = 1.0 / 16;
  c.churn_updates = 1000;
  const Sequence s = make_mixed_tiny_large(c);
  s.check_well_formed();
  const auto tiny_thr = static_cast<Tick>(
      std::pow(c.eps, 4.0) * static_cast<double>(c.capacity));
  std::size_t tiny = 0, large = 0;
  for (const Update& u : s.updates) {
    (u.size <= tiny_thr ? tiny : large) += 1;
  }
  EXPECT_GT(tiny, 100u);
  EXPECT_GT(large, 100u);
}

TEST(Trace, RoundTrip) {
  ChurnConfig c;
  c.capacity = kCap;
  c.eps = 1.0 / 16;
  c.min_size = kCap / 256;
  c.max_size = kCap / 128;
  c.churn_updates = 100;
  const Sequence s = make_churn(c);
  const Sequence t = trace_from_string(trace_to_string(s));
  EXPECT_EQ(s.updates, t.updates);
  EXPECT_EQ(s.capacity, t.capacity);
  EXPECT_DOUBLE_EQ(s.eps, t.eps);
}

TEST(Trace, RejectsGarbage) {
  EXPECT_THROW(trace_from_string("X 1 2\n"), InvariantViolation);
  EXPECT_THROW(trace_from_string("I 1 2\n"), InvariantViolation);  // no header
}

}  // namespace
}  // namespace memreal
