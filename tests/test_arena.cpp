// Byte-space suite for the arena layer (ctest -L arena).
//
// The tick-vs-byte differential is the arena's correctness story: every
// registry allocator is driven through an admissible sequence on a plain
// validated cell and on two arena cells (validated and release inner
// stores) in lockstep, asserting
//
//   * bit-identical per-update tick costs and O(1) model counters,
//   * bit-identical layouts at a periodic cadence and at run end,
//   * payload stamps verifying after every memmove and on the final
//     audit (a failed stamp means a move physically clobbered a live
//     payload — the class of bug tick space cannot express),
//   * measured byte traffic inside the granule's rounding bound
//       L * bpt - M * (bpt - 1) <= moved_bytes <= L * bpt.
//
// Plus: ByteSpace rounding, ArenaStore staging/corruption detection, the
// ArenaAllocator byte facade, the vm_heap generator, the versioned trace
// format (v2 byte annotations, v1 back-compat, R expansion), sharded
// arena runs, and the arena lockstep mode of the fuzz oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "alloc/registry.h"
#include "arena/arena_allocator.h"
#include "arena/arena_cell.h"
#include "arena/arena_store.h"
#include "arena/byte_space.h"
#include "fuzz/differential.h"
#include "fuzz/fuzzer.h"
#include "harness/cell.h"
#include "harness/validated_run.h"
#include "shard/sharded_engine.h"
#include "testing.h"
#include "util/check.h"
#include "util/rng.h"
#include "workload/churn.h"
#include "workload/sequence.h"
#include "workload/trace.h"
#include "workload/vm_heap.h"

namespace memreal {
namespace {

// Small enough that the lazily grown arena stays a few MB, large enough
// that every registry band (rsum needs eps^{3/4} * capacity-sized items)
// stays nondegenerate.
constexpr Tick kCap = Tick{1} << 20;

void expect_throw_contains(const std::function<void()>& fn,
                           const std::string& substr) {
  try {
    fn();
    FAIL() << "expected InvariantViolation containing '" << substr << "'";
  } catch (const InvariantViolation& e) {
    EXPECT_NE(std::string(e.what()).find(substr), std::string::npos)
        << "message was: " << e.what();
  }
}

// -- ByteSpace ---------------------------------------------------------------

TEST(ByteSpace, MinAllocationRounding) {
  const ByteSpace s(8);
  EXPECT_EQ(s.ticks_for_bytes(0), 1u);  // min allocation: never zero ticks
  EXPECT_EQ(s.ticks_for_bytes(1), 1u);
  EXPECT_EQ(s.ticks_for_bytes(8), 1u);
  EXPECT_EQ(s.ticks_for_bytes(9), 2u);
  EXPECT_EQ(s.ticks_for_bytes(16), 2u);
  EXPECT_EQ(s.align_up(1), 8u);
  EXPECT_EQ(s.align_up(8), 8u);
  EXPECT_EQ(s.align_up(17), 24u);
  EXPECT_EQ(s.min_allocation_bytes(), 8u);
  EXPECT_EQ(s.alignment(), 8u);
}

TEST(ByteSpace, TickByteRoundTrip) {
  const ByteSpace s(64);
  EXPECT_EQ(s.byte_of(0), 0u);
  EXPECT_EQ(s.byte_of(3), 192u);
  EXPECT_EQ(s.tick_of(192), 3u);
  EXPECT_TRUE(s.aligned(128));
  EXPECT_FALSE(s.aligned(129));
  expect_throw_contains([&] { (void)s.tick_of(100); }, "not aligned");
}

TEST(ByteSpace, RoundingBoundInequality) {
  // (t - 1) * bpt < b <= t * bpt for every byte size in a granule sweep.
  for (const Tick bpt : {Tick{1}, Tick{8}, Tick{64}}) {
    const ByteSpace s(bpt);
    for (std::uint64_t b = 1; b <= 4 * bpt; ++b) {
      const Tick t = s.ticks_for_bytes(b);
      EXPECT_LT((t - 1) * bpt, b) << "b=" << b << " bpt=" << bpt;
      EXPECT_LE(b, t * bpt) << "b=" << b << " bpt=" << bpt;
    }
  }
}

// -- ArenaStore via ArenaCell ------------------------------------------------

CellConfig arena_config(const std::string& allocator, double eps,
                        Tick bytes_per_tick = 8) {
  CellConfig c;
  c.allocator = allocator;
  c.params.eps = eps;
  c.params.seed = 17;
  c.arena = true;
  c.bytes_per_tick = bytes_per_tick;
  return c;
}

TEST(ArenaStore, InsertStampsDeterministicPayload) {
  ArenaCell cell(1024, 16, arena_config("folklore-compact", 1.0 / 64));
  cell.step(Update::insert(7, 4, 25));  // 25 bytes -> 4 ticks at granule 8
  const ArenaStore& store = cell.arena();
  EXPECT_EQ(store.bytes_of(7), 25u);
  const std::span<const unsigned char> p = store.payload(7);
  ASSERT_EQ(p.size(), 25u);
  for (std::uint64_t j = 0; j < p.size(); ++j) {
    EXPECT_EQ(p[j], ArenaStore::pattern_byte(7, j)) << "byte " << j;
  }
  EXPECT_EQ(store.address_of(7) % 8, 0u);
}

TEST(ArenaStore, TickNativeInsertGetsFullGranulePayload) {
  ArenaCell cell(1024, 16, arena_config("folklore-compact", 1.0 / 64));
  cell.step(Update::insert(1, 3));  // no size_bytes: tick-native
  EXPECT_EQ(cell.arena().bytes_of(1), 24u);
}

TEST(ArenaStore, StagedBytesMustRoundToTickSize) {
  ArenaCell cell(1024, 16, arena_config("folklore-compact", 1.0 / 64));
  // 9 bytes round to 2 ticks, not 1.
  expect_throw_contains([&] { cell.step(Update::insert(1, 1, 9)); },
                        "rounds to");
}

TEST(ArenaStore, PayloadCorruptionIsCaughtByAudit) {
  ArenaCell cell(1024, 16, arena_config("folklore-compact", 1.0 / 64));
  cell.step(Update::insert(1, 2, 16));
  cell.step(Update::insert(2, 2, 11));
  const std::span<const unsigned char> p = cell.arena().payload(2);
  // The store only hands out const views; the test plants the corruption
  // a buggy memmove would leave behind.
  const_cast<unsigned char&>(p[5]) ^= 0xFF;
  expect_throw_contains([&] { cell.audit(); }, "payload");
  const_cast<unsigned char&>(p[5]) ^= 0xFF;  // heal; audit clean again
  cell.audit();
}

TEST(ArenaStore, CorruptionIsCaughtWhenTheVictimNextMoves) {
  // folklore-compact compacts once waste exceeds eps/2 (here 8 ticks):
  // corrupting the last item and deleting enough predecessors forces a
  // verified relocation of the victim.
  ArenaCell cell(1024, 16, arena_config("folklore-compact", 1.0 / 64));
  for (ItemId id = 1; id <= 5; ++id) cell.step(Update::insert(id, 3, 24));
  const std::span<const unsigned char> p = cell.arena().payload(5);
  const_cast<unsigned char&>(p[0]) ^= 0x01;
  cell.step(Update::erase(1, 3, 24));  // waste 3: no compaction yet
  cell.step(Update::erase(2, 3, 24));  // waste 6: still none
  // waste 9 > 8: the compaction run gathers item 5 and verifies it.
  expect_throw_contains([&] { cell.step(Update::erase(3, 3, 24)); },
                        "payload");
}

TEST(ArenaStore, VerifyPayloadsOffStillCountsBytes) {
  CellConfig c = arena_config("folklore-compact", 1.0 / 64);
  c.verify_payloads = false;
  ArenaCell cell(1024, 16, c);
  cell.step(Update::insert(1, 2, 16));
  const std::span<const unsigned char> p = cell.arena().payload(1);
  const_cast<unsigned char&>(p[0]) ^= 0x01;
  cell.audit();  // no payload sweep in bandwidth mode
  EXPECT_EQ(cell.arena().total_bytes_moved(), 16u);
}

TEST(ArenaStore, MovedBytesChannelReachesRunStats) {
  ArenaCell cell(1024, 16, arena_config("folklore-compact", 1.0 / 64));
  cell.step(Update::insert(1, 2, 16));  // stamps 16 bytes
  cell.step(Update::insert(2, 2, 13));  // stamps 13 bytes
  EXPECT_EQ(cell.stats().moved_bytes, 16u + 13u);
  // Deleting item 1 leaves waste 2 <= eps/2 = 8: no compaction, and the
  // byte channel must NOT charge the delete.
  cell.step(Update::erase(1, 2, 16));
  EXPECT_EQ(cell.stats().moved_bytes, 16u + 13u);
  // Re-inserting first-fits into the hole at offset 0: a fresh stamp.
  cell.step(Update::insert(3, 2, 10));
  const RunStats& stats = cell.stats();
  EXPECT_EQ(stats.moved_bytes, 16u + 13u + 10u);
  EXPECT_EQ(stats.moved_bytes, cell.arena().total_bytes_moved());
  // Per-update byte costs mirror the cumulative channel.
  EXPECT_EQ(cell.arena().last_update_bytes(), 10u);
}

// -- The tick-vs-byte differential over every registry allocator -------------

void expect_same_layout(LayoutStore& plain, LayoutStore& arena,
                        const std::string& where) {
  const std::vector<PlacedItem> a = plain.snapshot();
  const std::vector<PlacedItem> b = arena.snapshot();
  ASSERT_EQ(a.size(), b.size()) << where;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].id == b[i].id && a[i].offset == b[i].offset &&
                a[i].size == b[i].size && a[i].extent == b[i].extent)
        << where << " item " << i;
  }
}

void expect_byte_bound(const ArenaStore& store, const std::string& where) {
  const Tick bpt = store.bytes_per_tick();
  const Tick upper = store.total_moved() * bpt;
  const Tick slack = static_cast<Tick>(store.payload_moves()) * (bpt - 1);
  EXPECT_LE(store.total_bytes_moved(), upper) << where;
  EXPECT_GE(store.total_bytes_moved() + slack, upper) << where;
}

/// Plain validated cell vs arena cells over both inner stores, lockstep.
void arena_lockstep(const std::string& allocator, const Sequence& seq,
                    double delta = 0.0, Tick bytes_per_tick = 8) {
  seq.check_well_formed();
  CellConfig plain;
  plain.allocator = allocator;
  plain.params.eps = seq.eps;
  plain.params.delta = delta;
  plain.params.seed = 17;
  CellConfig with_arena = plain;
  with_arena.arena = true;
  with_arena.bytes_per_tick = bytes_per_tick;
  CellConfig release_arena = with_arena;
  release_arena.engine = "release";

  ValidatedCell base(seq.capacity, seq.eps_ticks, plain);
  ArenaCell arena_v(seq.capacity, seq.eps_ticks, with_arena);
  ArenaCell arena_r(seq.capacity, seq.eps_ticks, release_arena);

  for (std::size_t i = 0; i < seq.updates.size(); ++i) {
    const Update& u = seq.updates[i];
    double c0 = 0.0;
    double cv = 0.0;
    double cr = 0.0;
    try {
      c0 = base.step(u);
      cv = arena_v.step(u);
      cr = arena_r.step(u);
    } catch (const InvariantViolation& e) {
      FAIL() << allocator << " threw at update " << i << ": " << e.what();
    }
    ASSERT_EQ(c0, cv) << "validated-arena cost diverged at update " << i;
    ASSERT_EQ(c0, cr) << "release-arena cost diverged at update " << i;
    ASSERT_EQ(base.memory().span_end(), arena_v.memory().span_end())
        << "span diverged at update " << i;
    ASSERT_EQ(base.memory().total_moved(), arena_v.memory().total_moved())
        << "moved mass diverged at update " << i;
    if (i % 64 == 0) {
      expect_same_layout(base.memory(), arena_v.memory(),
                         "validated-arena update " + std::to_string(i));
      expect_same_layout(base.memory(), arena_r.memory(),
                         "release-arena update " + std::to_string(i));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  expect_same_layout(base.memory(), arena_v.memory(), "final validated");
  expect_same_layout(base.memory(), arena_r.memory(), "final release");
  base.audit();
  arena_v.audit();  // includes the full payload sweep
  arena_r.audit();
  expect_byte_bound(arena_v.arena(), allocator + " validated inner");
  expect_byte_bound(arena_r.arena(), allocator + " release inner");
  // Identical placements must produce identical physical traffic.
  EXPECT_EQ(arena_v.arena().total_bytes_moved(),
            arena_r.arena().total_bytes_moved());
  EXPECT_EQ(arena_v.stats().moved_bytes,
            arena_v.arena().total_bytes_moved());
}

// Arena-scale stand-in for the mixed tiny/large regime.  The stock
// generator's fixed 2000-item tiny population only has negligible mass
// when eps^4 * capacity is a handful of ticks, which no byte-backed
// capacity can afford — at arena scale it overflows the mass budget
// before churn even starts.  Same shape (tiny flexhash traffic over a
// large GEO backbone), populations sized to the arena regime.
Sequence mixed_arena_sequence(Tick capacity, double eps, std::size_t updates,
                              std::uint64_t seed) {
  const auto cap_d = static_cast<double>(capacity);
  // Combined clamps its tiny threshold to unit/16 with unit the largest
  // power of two <= (eps/2)^3 * capacity; draw tiny sizes under the
  // clamp so they land in flexhash, large ones in GEO's class bands.
  Tick unit = 1;
  const double e3 = std::pow(eps / 2.0, 3.0) * cap_d;
  while (static_cast<double>(unit) * 2.0 <= e3) unit <<= 1;
  const Tick tiny_hi = std::min(
      static_cast<Tick>(std::pow(eps, 4.0) * cap_d), unit / 16);
  const Tick large_lo = 4 * tiny_hi;
  const Tick large_hi = 16 * tiny_hi;
  SequenceBuilder b("mixed-arena", capacity, eps);
  Rng rng(seed);
  std::vector<ItemId> tiny;
  std::vector<ItemId> large;
  for (int i = 0; i < 256; ++i) tiny.push_back(b.insert(rng.next_in(1, tiny_hi)));
  for (int i = 0; i < 24; ++i) {
    large.push_back(b.insert(rng.next_in(large_lo, large_hi)));
  }
  for (std::size_t i = 0; i < updates; i += 2) {
    const bool go_tiny = rng.next_double() < 0.75;
    std::vector<ItemId>& pool = go_tiny ? tiny : large;
    const auto k = static_cast<std::size_t>(rng.next_below(pool.size()));
    b.erase_id(pool[k]);
    pool[k] = b.insert(go_tiny ? rng.next_in(1, tiny_hi)
                               : rng.next_in(large_lo, large_hi));
  }
  return b.take();
}

TEST(ArenaDifferential, EveryRegistryAllocatorMatchesTickForTick) {
  for (const std::string& name : allocator_names()) {
    SCOPED_TRACE(name);
    testing::RegimeCase c = testing::regime_case(name);
    Tick cap = kCap;
    // Arena-scale capacities (a real byte payload per tick) need coarser
    // regimes than the 2^40-tick defaults: GEO's class geometry needs
    // capacity * eps^5 * sqrt(eps) >= 1, and the tiny-item family needs
    // capacity * eps^4 >= 4096 so the smallest size class stays >= 1 tick.
    if (name == "geo") c.eps = 1.0 / 8;
    if (name == "tinyslab" || name == "flexhash") {
      c.eps = 1.0 / 8;
      cap = Tick{1} << 24;
    }
    // Combined instantiates its sub-allocators at eps/2; TinySlab needs
    // its max size >= 4096 so min_size stays a whole tick, and
    // FlexHash's update-type anchor region (num_types * 8 * unit ticks)
    // must fit inside the eps/2 slack, which together pin capacity near
    // 2^30.  That is byte-feasible only at the finest granule.
    Tick bpt = 8;
    if (name == "combined") {
      c.eps = 1.0 / 8;
      cap = Tick{1} << 30;
      bpt = 1;
    }
    try {
      const Sequence seq =
          name == "combined"
              ? mixed_arena_sequence(cap, c.eps, 1200, 101)
              : testing::regime_sequence(c, cap, 1200, 101);
      arena_lockstep(name, seq, c.delta, bpt);
    } catch (const InvariantViolation& e) {
      FAIL() << name << " setup threw: " << e.what();
    }
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(ArenaDifferential, CoarseGranuleStillMatches) {
  ChurnConfig cc;
  cc.capacity = kCap;
  cc.eps = 1.0 / 64;
  cc.min_size = kCap / 64;
  cc.max_size = kCap / 32 - 1;
  cc.churn_updates = 600;
  cc.seed = 7;
  const Sequence seq = make_churn(cc);
  for (const Tick bpt : {Tick{1}, Tick{64}}) {
    SCOPED_TRACE(bpt);
    CellConfig plain;
    plain.allocator = "simple";
    plain.params.eps = seq.eps;
    plain.params.seed = 3;
    CellConfig with_arena = plain;
    with_arena.arena = true;
    with_arena.bytes_per_tick = bpt;
    ValidatedCell base(seq.capacity, seq.eps_ticks, plain);
    ArenaCell arena(seq.capacity, seq.eps_ticks, with_arena);
    for (const Update& u : seq.updates) {
      ASSERT_EQ(base.step(u), arena.step(u));
    }
    expect_same_layout(base.memory(), arena.memory(), "final");
    arena.audit();
    expect_byte_bound(arena.arena(), "granule " + std::to_string(bpt));
    if (bpt == 1) {
      // One byte per tick: the bound collapses to exact equality.
      EXPECT_EQ(arena.arena().total_bytes_moved(),
                arena.memory().total_moved());
    }
  }
}

// -- vm_heap workload --------------------------------------------------------

VmHeapConfig small_vm_heap() {
  VmHeapConfig c;
  c.capacity = Tick{1} << 16;
  c.eps = 1.0 / 64;
  c.min_bytes = 16;
  c.max_bytes = 2048;
  c.gc_period = 128;
  c.churn_updates = 2000;
  c.seed = 5;
  return c;
}

TEST(VmHeap, ProducesWellFormedByteAnnotatedStream) {
  const Sequence seq = make_vm_heap(small_vm_heap());
  seq.check_well_formed();
  EXPECT_EQ(seq.bytes_per_tick, 8u);
  EXPECT_GE(seq.updates.size(), 2000u);
  std::size_t inserts = 0;
  std::size_t deletes = 0;
  for (const Update& u : seq.updates) {
    ASSERT_GT(u.size_bytes, 0u) << "vm_heap updates carry payload sizes";
    ASSERT_GE(u.size_bytes, 16u);
    ASSERT_LE(u.size_bytes, 2048u);
    (u.is_insert() ? inserts : deletes)++;
  }
  EXPECT_GT(inserts, 0u);
  EXPECT_GT(deletes, 0u);  // generational death + gc bursts
}

TEST(VmHeap, DeterministicForASeed) {
  const Sequence a = make_vm_heap(small_vm_heap());
  const Sequence b = make_vm_heap(small_vm_heap());
  ASSERT_EQ(a.updates.size(), b.updates.size());
  EXPECT_TRUE(std::equal(a.updates.begin(), a.updates.end(),
                         b.updates.begin()));
  VmHeapConfig other = small_vm_heap();
  other.seed = 6;
  const Sequence c = make_vm_heap(other);
  EXPECT_FALSE(a.updates.size() == c.updates.size() &&
               std::equal(a.updates.begin(), a.updates.end(),
                          c.updates.begin()));
}

TEST(VmHeap, PaletteModeDrawsAFixedSizeSet) {
  VmHeapConfig c = small_vm_heap();
  c.distinct_sizes = 5;
  const Sequence seq = make_vm_heap(c);
  std::set<Tick> sizes;
  for (const Update& u : seq.updates) sizes.insert(u.size_bytes);
  EXPECT_LE(sizes.size(), 5u);
  EXPECT_GE(sizes.size(), 2u);
}

TEST(VmHeap, GrowReallocChainsGrowByteSizes) {
  VmHeapConfig c = small_vm_heap();
  c.grow_prob = 1.0;   // every churn step reallocates
  c.gc_period = 0;     // no bursts: isolate the grow mechanism
  c.churn_updates = 400;
  const Sequence seq = make_vm_heap(c);
  // Each grow step is delete(old) immediately followed by insert(bigger).
  bool saw_growth = false;
  for (std::size_t i = 0; i + 1 < seq.updates.size(); ++i) {
    const Update& d = seq.updates[i];
    const Update& ins = seq.updates[i + 1];
    if (!d.is_insert() && ins.is_insert() && ins.size_bytes > d.size_bytes) {
      saw_growth = true;
      break;
    }
  }
  EXPECT_TRUE(saw_growth);
}

TEST(VmHeap, ReplaysThroughAnArenaCellInLockstep) {
  const Sequence seq = make_vm_heap(small_vm_heap());
  arena_lockstep("folklore-compact", seq);
  // Odd payload sizes mean the byte traffic sits strictly inside the
  // bound's interior, not pinned at L * bpt.
  CellConfig c = arena_config("folklore-compact", seq.eps);
  ArenaCell cell(seq.capacity, seq.eps_ticks, c);
  cell.run(seq.updates);
  cell.audit();
  EXPECT_LT(cell.arena().total_bytes_moved(),
            cell.memory().total_moved() * 8);
}

TEST(VmHeap, RejectsDegenerateConfigs) {
  VmHeapConfig c = small_vm_heap();
  c.min_bytes = c.max_bytes + 1;
  expect_throw_contains([&] { (void)make_vm_heap(c); }, "min_bytes");
}

// -- Versioned traces --------------------------------------------------------

TEST(TraceV2, ByteSequenceRoundTrips) {
  const Sequence seq = make_vm_heap(small_vm_heap());
  const Sequence back = trace_from_string(trace_to_string(seq));
  EXPECT_EQ(back.name, seq.name);
  EXPECT_EQ(back.capacity, seq.capacity);
  EXPECT_EQ(back.eps_ticks, seq.eps_ticks);
  EXPECT_EQ(back.bytes_per_tick, seq.bytes_per_tick);
  ASSERT_EQ(back.updates.size(), seq.updates.size());
  EXPECT_TRUE(std::equal(back.updates.begin(), back.updates.end(),
                         seq.updates.begin()));
}

TEST(TraceV2, TickNativeSequenceRoundTripsWithoutByteLines) {
  const Sequence seq = testing::regime_sequence(
      testing::regime_case("simple"), kCap, 200, 3);
  const std::string text = trace_to_string(seq);
  EXPECT_EQ(text.find("\nB "), std::string::npos);
  const Sequence back = trace_from_string(text);
  EXPECT_EQ(back.bytes_per_tick, 0u);
  ASSERT_EQ(back.updates.size(), seq.updates.size());
}

TEST(TraceV1, HeaderFirstTraceStillParses) {
  const Sequence seq = trace_from_string(
      "# legacy pre-versioning trace\n"
      "H 1024 0.0625 legacy\n"
      "I 1 2\n"
      "D 1 2\n");
  EXPECT_EQ(seq.capacity, 1024u);
  EXPECT_EQ(seq.bytes_per_tick, 0u);
  ASSERT_EQ(seq.updates.size(), 2u);
  EXPECT_EQ(seq.updates[0].size_bytes, 0u);
}

TEST(TraceV1, ByteConstructsAreRejectedNamingLineAndVersion) {
  expect_throw_contains(
      [] {
        (void)trace_from_string("H 1024 0.0625 legacy\nB 8\n");
      },
      "B line on trace line 2 requires version 2 (trace is version 1)");
  expect_throw_contains(
      [] {
        (void)trace_from_string("H 1024 0.0625 legacy\nI 1 2 9\n");
      },
      "byte-size field on trace line 2 requires version 2");
  expect_throw_contains(
      [] {
        (void)trace_from_string("H 1024 0.0625 legacy\nR 1 2 4\n");
      },
      "R (reallocate) line on trace line 2 requires version 2");
}

TEST(TraceV2, RealLocateExpandsToDeletePlusInsert) {
  const Sequence seq = trace_from_string(
      "V 2\n"
      "H 1024 0.0625 rtest\n"
      "B 8\n"
      "I 1 2 12\n"
      "R 1 2 4 25\n");
  ASSERT_EQ(seq.updates.size(), 3u);
  EXPECT_EQ(seq.updates[0], Update::insert(1, 2, 12));
  EXPECT_EQ(seq.updates[1], Update::erase(1, 2, 12));
  EXPECT_EQ(seq.updates[2], Update::insert(2, 4, 25));
  seq.check_well_formed();
}

TEST(TraceV2, RealLocateOfAbsentIdNamesTheLine) {
  expect_throw_contains(
      [] {
        (void)trace_from_string(
            "V 2\nH 1024 0.0625 rtest\nB 8\nR 9 10 2 16\n");
      },
      "reallocate of absent id 9 at line 4");
}

TEST(TraceV2, ByteFieldBeforeBLineIsRejected) {
  expect_throw_contains(
      [] {
        (void)trace_from_string("V 2\nH 1024 0.0625 t\nI 1 2 9\n");
      },
      "before a B bytes_per_tick line");
}

TEST(TraceV2, ByteSizeMustRoundToTickSize) {
  expect_throw_contains(
      [] {
        (void)trace_from_string("V 2\nH 1024 0.0625 t\nB 8\nI 1 1 9\n");
      },
      "rounds to 2 ticks, not 1");
}

TEST(TraceVersioning, MalformedVersionLinesAreRejected) {
  expect_throw_contains(
      [] { (void)trace_from_string("V 3\nH 1024 0.0625 t\n"); },
      "unsupported trace version 3");
  expect_throw_contains(
      [] { (void)trace_from_string("V 2\nV 2\nH 1024 0.0625 t\n"); },
      "must be the first directive");
  expect_throw_contains(
      [] { (void)trace_from_string("H 1024 0.0625 t\nV 2\n"); },
      "must be the first directive");
  expect_throw_contains(
      [] { (void)trace_from_string("V 2\nH 1024 0.0625 t\nB 8 extra\n"); },
      "trailing garbage");
}

// -- ArenaAllocator (the tt-metal-shaped byte facade) ------------------------

ArenaAllocatorConfig small_adapter(const std::string& allocator) {
  ArenaAllocatorConfig c;
  c.allocator = allocator;
  c.capacity_ticks = Tick{1} << 16;
  c.bytes_per_tick = 8;
  return c;
}

TEST(ArenaAllocator, AllocateReturnsAlignedStampedPayloads) {
  ArenaAllocator aa(small_adapter("folklore-compact"));
  EXPECT_EQ(aa.max_size_bytes(), (std::uint64_t{1} << 16) * 8);
  EXPECT_EQ(aa.min_allocation_size(), 8u);
  EXPECT_EQ(aa.alignment(), 8u);
  EXPECT_EQ(aa.align(13), 16u);

  const std::uint64_t need = aa.min_item_bytes() + 5;
  const auto a = aa.allocate(need);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->size_bytes, need);
  EXPECT_EQ(a->address % aa.alignment(), 0u);
  EXPECT_EQ(aa.allocation_count(), 1u);
  EXPECT_EQ(aa.allocated_bytes(), need);
  const std::span<const unsigned char> p = aa.payload(a->id);
  ASSERT_EQ(p.size(), need);
  for (std::uint64_t j = 0; j < p.size(); ++j) {
    ASSERT_EQ(p[j], ArenaStore::pattern_byte(a->id, j));
  }
  aa.audit();
}

TEST(ArenaAllocator, RejectsSizesOutsideTheServedBand) {
  ArenaAllocator aa(small_adapter("simple"));
  EXPECT_FALSE(aa.allocate(0).has_value());
  if (aa.min_item_bytes() > 1) {
    EXPECT_FALSE(aa.allocate(aa.min_item_bytes() - 1).has_value());
  }
  EXPECT_FALSE(aa.allocate(aa.max_item_bytes() + aa.alignment()).has_value());
  EXPECT_EQ(aa.allocation_count(), 0u);
}

TEST(ArenaAllocator, DeallocateByCurrentAddress) {
  ArenaAllocator aa(small_adapter("folklore-compact"));
  const auto a = aa.allocate(aa.min_item_bytes());
  const auto b = aa.allocate(aa.min_item_bytes());
  ASSERT_TRUE(a && b);
  aa.deallocate(aa.address_of(a->id));
  EXPECT_EQ(aa.allocation_count(), 1u);
  // The compacting policy may have moved b; its current address resolves.
  aa.deallocate(aa.address_of(b->id));
  EXPECT_EQ(aa.allocation_count(), 0u);
  expect_throw_contains([&] { aa.deallocate(0); }, "");
}

TEST(ArenaAllocator, IdsAreStableWhileAddressesMove) {
  ArenaAllocator aa(small_adapter("folklore-compact"));
  const auto a = aa.allocate(aa.min_item_bytes() + 1);
  const auto b = aa.allocate(aa.min_item_bytes() + 2);
  ASSERT_TRUE(a && b);
  aa.deallocate_id(a->id);  // compaction slides b down
  EXPECT_EQ(aa.address_of(b->id), 0u);
  const std::span<const unsigned char> p = aa.payload(b->id);
  for (std::uint64_t j = 0; j < p.size(); ++j) {
    ASSERT_EQ(p[j], ArenaStore::pattern_byte(b->id, j)) << "post-move";
  }
  aa.audit();
}

TEST(ArenaAllocator, AllocateAtAddressIsAttemptAndCheck) {
  ArenaAllocator aa(small_adapter("folklore-compact"));
  const auto a = aa.allocate(aa.min_item_bytes());
  ASSERT_TRUE(a.has_value());
  // folklore-compact appends at the span end: the tail range's start is
  // exactly where the next allocation will land.
  const auto ranges = aa.available_addresses(aa.min_item_bytes());
  ASSERT_FALSE(ranges.empty());
  const std::uint64_t tail = ranges.back().first;
  const auto hit = aa.allocate_at_address(tail, aa.min_item_bytes());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->address, tail);
  // Asking for any other aligned address must roll back cleanly.
  const std::size_t before = aa.allocation_count();
  const auto miss = aa.allocate_at_address(
      tail + 64 * aa.alignment(), aa.min_item_bytes());
  EXPECT_FALSE(miss.has_value());
  EXPECT_EQ(aa.allocation_count(), before);
  aa.audit();
}

TEST(ArenaAllocator, ClearFreesEverything) {
  ArenaAllocator aa(small_adapter("folklore-compact"));
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(aa.allocate(aa.min_item_bytes()).has_value());
  }
  aa.clear();
  EXPECT_EQ(aa.allocation_count(), 0u);
  EXPECT_EQ(aa.allocated_bytes(), 0u);
  EXPECT_GT(aa.stats().moved_bytes, 0u);
}

// -- Sharded arena runs ------------------------------------------------------

TEST(ArenaSharded, RoutedRunReportsByteTrafficAndAudits) {
  ShardedConfig c;
  c.allocator = "folklore-compact";
  c.shards = 3;
  c.shard_capacity = Tick{1} << 16;
  c.eps = 1.0 / 64;
  c.arena = true;
  c.bytes_per_tick = 8;
  ShardedEngine engine(c);
  const Sequence seq = testing::regime_sequence(
      testing::regime_case("folklore-compact"), c.shard_capacity, 900, 23);
  const ShardedRunStats stats = engine.run(seq);
  engine.audit();  // full payload sweep in every shard
  EXPECT_EQ(stats.shards, 3u);
  EXPECT_GT(stats.global.moved_bytes, 0u);
  Tick per_shard_bytes = 0;
  for (const RunStats& s : stats.per_shard) per_shard_bytes += s.moved_bytes;
  EXPECT_EQ(stats.global.moved_bytes, per_shard_bytes);
}

// -- Fuzz-oracle arena lockstep ----------------------------------------------

TEST(ArenaFuzz, LockstepArenaOracleAcceptsHealthySequences) {
  const Sequence seq = testing::regime_sequence(
      testing::regime_case("simple"), kCap, 400, 11);
  DifferentialConfig d;
  d.lockstep_arena = true;
  FuzzTarget t;
  t.allocator = "simple";
  t.params.eps = seq.eps;
  t.params.seed = 17;
  t.budget = allocator_info("simple").budget;
  d.targets.push_back(t);
  const auto report = run_differential(seq, d);
  EXPECT_FALSE(report.has_value())
      << to_string(report->kind) << ": " << report->message;
}

TEST(ArenaFuzz, CampaignRunsCleanAtArenaScale) {
  FuzzConfig cfg;
  cfg.engine = "arena";
  cfg.capacity = Tick{1} << 20;
  cfg.iterations = 2;
  cfg.updates_per_sequence = 120;
  cfg.mutants_per_sequence = 1;
  cfg.allocators = {"simple"};
  cfg.shrink = false;
  const FuzzSummary summary = run_fuzz(cfg);
  EXPECT_TRUE(summary.ok())
      << summary.failures.front().report.message;
  EXPECT_EQ(summary.iterations, 2u);
}

TEST(ArenaFuzz, UnknownEngineNamesArena) {
  FuzzConfig cfg;
  cfg.engine = "bogus";
  expect_throw_contains([&] { (void)run_fuzz(cfg); },
                        "(validated, release, arena)");
}

}  // namespace
}  // namespace memreal
