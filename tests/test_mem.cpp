// Unit tests for the validating memory model.
#include <gtest/gtest.h>

#include "mem/memory.h"
#include "util/check.h"

namespace memreal {
namespace {

Memory make(Tick cap = 1000, Tick eps = 100) {
  ValidationPolicy p;
  p.every_n_updates = 1;
  return Memory(cap, eps, p);
}

TEST(Memory, PlaceAndQuery) {
  Memory m = make();
  m.begin_update(50, true);
  m.place(1, 0, 50);
  EXPECT_EQ(m.end_update(), 50u);  // placing charges the item's size
  EXPECT_TRUE(m.contains(1));
  EXPECT_EQ(m.offset_of(1), 0u);
  EXPECT_EQ(m.size_of(1), 50u);
  EXPECT_EQ(m.extent_of(1), 50u);
  EXPECT_EQ(m.live_mass(), 50u);
  EXPECT_EQ(m.item_count(), 1u);
}

TEST(Memory, MoveChargesOnlyOnChange) {
  Memory m = make();
  m.begin_update(50, true);
  m.place(1, 0, 50);
  m.end_update();
  m.begin_update(10, true);
  m.place(2, 50, 10);
  m.move_to(1, 0);  // no-op: same offset
  EXPECT_EQ(m.moved_in_update(), 10u);
  m.move_to(2, 100);
  EXPECT_EQ(m.moved_in_update(), 20u);
  m.end_update();
}

TEST(Memory, RemoveIsFree) {
  Memory m = make();
  m.begin_update(50, true);
  m.place(1, 0, 50);
  m.end_update();
  m.begin_update(50, false);
  m.remove(1);
  EXPECT_EQ(m.end_update(), 0u);
  EXPECT_FALSE(m.contains(1));
  EXPECT_EQ(m.live_mass(), 0u);
}

TEST(Memory, OverlapDetected) {
  Memory m = make();
  m.begin_update(50, true);
  m.place(1, 0, 50);
  m.place(2, 25, 50);  // overlaps item 1
  EXPECT_THROW(m.end_update(), InvariantViolation);
}

TEST(Memory, TouchingIntervalsAreFine) {
  Memory m = make();
  m.begin_update(50, true);
  m.place(1, 0, 50);
  m.place(2, 50, 50);
  EXPECT_NO_THROW(m.end_update());
}

TEST(Memory, TransientOverlapAllowedWithinUpdate) {
  Memory m = make();
  m.begin_update(50, true);
  m.place(1, 0, 50);
  m.place(2, 25, 50);  // transient overlap
  m.move_to(2, 50);    // resolved before end
  EXPECT_NO_THROW(m.end_update());
}

TEST(Memory, ResizableBoundEnforced) {
  Memory m = make(1000, 100);
  m.begin_update(50, true);
  m.place(1, 200, 50);  // span 250 > live 50 + eps 100
  EXPECT_THROW(m.end_update(), InvariantViolation);
}

TEST(Memory, ResizableBoundCanBeDisabled) {
  ValidationPolicy p;
  p.every_n_updates = 1;
  p.check_resizable_bound = false;
  Memory m(1000, 100, p);
  m.begin_update(50, true);
  m.place(1, 800, 50);
  EXPECT_NO_THROW(m.end_update());
}

TEST(Memory, LoadFactorPromiseEnforced) {
  Memory m = make(1000, 100);
  m.begin_update(800, true);
  m.place(1, 0, 800);
  m.end_update();
  EXPECT_THROW(m.begin_update(150, true), InvariantViolation);
}

TEST(Memory, ExtentInflation) {
  Memory m = make();
  m.begin_update(50, true);
  m.place(1, 0, 50);
  m.set_extent(1, 80);
  m.end_update();
  EXPECT_EQ(m.extent_of(1), 80u);
  EXPECT_EQ(m.size_of(1), 50u);
  EXPECT_EQ(m.extent_mass(), 80u);
  EXPECT_EQ(m.live_mass(), 50u);
  m.begin_update(1, true);
  m.reset_extent(1);
  m.place(2, 80, 1);
  m.end_update();
  EXPECT_EQ(m.extent_of(1), 50u);
}

TEST(Memory, ExtentBelowSizeRejected) {
  Memory m = make();
  m.begin_update(50, true);
  m.place(1, 0, 50);
  EXPECT_THROW(m.set_extent(1, 49), InvariantViolation);
  m.move_to(1, 0);
  m.end_update();
}

TEST(Memory, ExtentOverlapDetected) {
  Memory m = make(1000, 500);
  m.begin_update(50, true);
  m.place(1, 0, 50);
  m.place(2, 60, 50);
  m.end_update();
  m.begin_update(1, true);
  m.set_extent(1, 70);  // [0, 70) now overlaps [60, 110)
  m.place(3, 200, 1);
  EXPECT_THROW(m.end_update(), InvariantViolation);
}

TEST(Memory, MutationOutsideUpdateRejected) {
  Memory m = make();
  EXPECT_THROW(m.place(1, 0, 50), InvariantViolation);
}

TEST(Memory, NestedUpdateRejected) {
  Memory m = make();
  m.begin_update(1, true);
  EXPECT_THROW(m.begin_update(1, true), InvariantViolation);
  m.place(1, 0, 1);
  m.end_update();
}

TEST(Memory, UnknownItemRejected) {
  Memory m = make();
  m.begin_update(1, true);
  EXPECT_THROW(m.move_to(42, 0), InvariantViolation);
  EXPECT_THROW(m.remove(42), InvariantViolation);
  m.place(1, 0, 1);
  m.end_update();
  EXPECT_THROW((void)m.offset_of(42), InvariantViolation);
}

TEST(Memory, DuplicatePlaceRejected) {
  Memory m = make();
  m.begin_update(1, true);
  m.place(1, 0, 1);
  EXPECT_THROW(m.place(1, 10, 1), InvariantViolation);
  m.end_update();
}

TEST(Memory, SnapshotSortedByOffset) {
  Memory m = make(1000, 900);
  m.begin_update(10, true);
  m.place(3, 50, 10);
  m.place(1, 0, 10);
  m.place(2, 20, 10);
  m.end_update();
  const auto snap = m.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].id, 1u);
  EXPECT_EQ(snap[1].id, 2u);
  EXPECT_EQ(snap[2].id, 3u);
}

TEST(Memory, GapsReported) {
  Memory m = make(1000, 900);
  m.begin_update(10, true);
  m.place(1, 0, 10);
  m.place(2, 30, 10);
  m.place(3, 60, 10);
  m.end_update();
  const auto gaps = m.gaps();
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_EQ(gaps[0], (std::pair<Tick, Tick>{10, 20}));
  EXPECT_EQ(gaps[1], (std::pair<Tick, Tick>{40, 20}));
}

TEST(Memory, SpanEnd) {
  Memory m = make(1000, 900);
  EXPECT_EQ(m.span_end(), 0u);
  m.begin_update(10, true);
  m.place(1, 40, 10);
  m.set_extent(1, 20);
  m.end_update();
  EXPECT_EQ(m.span_end(), 60u);
}

TEST(Memory, TotalsAccumulate) {
  Memory m = make();
  m.begin_update(10, true);
  m.place(1, 0, 10);
  m.end_update();
  m.begin_update(10, true);
  m.place(2, 10, 10);
  m.move_to(1, 20);
  m.end_update();
  EXPECT_EQ(m.total_moved(), 30u);
  EXPECT_EQ(m.update_count(), 2u);
}

TEST(Memory, PlacementBeyondCapacityRejected) {
  Memory m = make(1000, 100);
  m.begin_update(50, true);
  EXPECT_THROW(m.place(1, 980, 50), InvariantViolation);
  m.place(1, 0, 50);
  m.end_update();
}

TEST(Memory, ValidationCadenceRespected) {
  ValidationPolicy p;
  p.every_n_updates = 2;  // validate on every second update
  Memory m(1000, 100, p);
  m.begin_update(50, true);
  m.place(1, 0, 50);
  m.place(2, 25, 50);    // overlap, but not validated yet
  EXPECT_NO_THROW(m.end_update());
  m.begin_update(1, true);
  m.place(3, 500, 1);
  EXPECT_THROW(m.end_update(), InvariantViolation);
}

}  // namespace
}  // namespace memreal
