// Unit tests for the validating memory model.
#include <gtest/gtest.h>

#include <limits>

#include "mem/memory.h"
#include "util/check.h"
#include "util/types.h"

namespace memreal {
namespace {

// Default policy: incremental O(log n) checks at the end of every update.
Memory make(Tick cap = 1000, Tick eps = 100) { return Memory(cap, eps); }

TEST(Memory, PlaceAndQuery) {
  Memory m = make();
  m.begin_update(50, true);
  m.place(1, 0, 50);
  EXPECT_EQ(m.end_update(), 50u);  // placing charges the item's size
  EXPECT_TRUE(m.contains(1));
  EXPECT_EQ(m.offset_of(1), 0u);
  EXPECT_EQ(m.size_of(1), 50u);
  EXPECT_EQ(m.extent_of(1), 50u);
  EXPECT_EQ(m.live_mass(), 50u);
  EXPECT_EQ(m.item_count(), 1u);
}

TEST(Memory, MoveChargesOnlyOnChange) {
  Memory m = make();
  m.begin_update(50, true);
  m.place(1, 0, 50);
  m.end_update();
  m.begin_update(10, true);
  m.place(2, 50, 10);
  m.move_to(1, 0);  // no-op: same offset
  EXPECT_EQ(m.moved_in_update(), 10u);
  m.move_to(2, 100);
  EXPECT_EQ(m.moved_in_update(), 20u);
  m.end_update();
}

TEST(Memory, RemoveIsFree) {
  Memory m = make();
  m.begin_update(50, true);
  m.place(1, 0, 50);
  m.end_update();
  m.begin_update(50, false);
  m.remove(1);
  EXPECT_EQ(m.end_update(), 0u);
  EXPECT_FALSE(m.contains(1));
  EXPECT_EQ(m.live_mass(), 0u);
}

TEST(Memory, OverlapDetected) {
  Memory m = make();
  m.begin_update(50, true);
  m.place(1, 0, 50);
  m.place(2, 25, 50);  // overlaps item 1
  EXPECT_THROW(m.end_update(), InvariantViolation);
}

TEST(Memory, TouchingIntervalsAreFine) {
  Memory m = make();
  m.begin_update(50, true);
  m.place(1, 0, 50);
  m.place(2, 50, 50);
  EXPECT_NO_THROW(m.end_update());
}

TEST(Memory, TransientOverlapAllowedWithinUpdate) {
  Memory m = make();
  m.begin_update(50, true);
  m.place(1, 0, 50);
  m.place(2, 25, 50);  // transient overlap
  m.move_to(2, 50);    // resolved before end
  EXPECT_NO_THROW(m.end_update());
}

TEST(Memory, ResizableBoundEnforced) {
  Memory m = make(1000, 100);
  m.begin_update(50, true);
  m.place(1, 200, 50);  // span 250 > live 50 + eps 100
  EXPECT_THROW(m.end_update(), InvariantViolation);
}

TEST(Memory, ResizableBoundCanBeDisabled) {
  ValidationPolicy p;
  p.check_resizable_bound = false;
  Memory m(1000, 100, p);
  m.begin_update(50, true);
  m.place(1, 800, 50);
  EXPECT_NO_THROW(m.end_update());
}

TEST(Memory, LoadFactorPromiseEnforced) {
  Memory m = make(1000, 100);
  m.begin_update(800, true);
  m.place(1, 0, 800);
  m.end_update();
  EXPECT_THROW(m.begin_update(150, true), InvariantViolation);
}

TEST(Memory, ExtentInflation) {
  Memory m = make();
  m.begin_update(50, true);
  m.place(1, 0, 50);
  m.set_extent(1, 80);
  m.end_update();
  EXPECT_EQ(m.extent_of(1), 80u);
  EXPECT_EQ(m.size_of(1), 50u);
  EXPECT_EQ(m.extent_mass(), 80u);
  EXPECT_EQ(m.live_mass(), 50u);
  m.begin_update(1, true);
  m.reset_extent(1);
  m.place(2, 80, 1);
  m.end_update();
  EXPECT_EQ(m.extent_of(1), 50u);
}

TEST(Memory, ExtentBelowSizeRejected) {
  Memory m = make();
  m.begin_update(50, true);
  m.place(1, 0, 50);
  EXPECT_THROW(m.set_extent(1, 49), InvariantViolation);
  m.move_to(1, 0);
  m.end_update();
}

TEST(Memory, ExtentOverlapDetected) {
  Memory m = make(1000, 500);
  m.begin_update(50, true);
  m.place(1, 0, 50);
  m.place(2, 60, 50);
  m.end_update();
  m.begin_update(1, true);
  m.set_extent(1, 70);  // [0, 70) now overlaps [60, 110)
  m.place(3, 200, 1);
  EXPECT_THROW(m.end_update(), InvariantViolation);
}

TEST(Memory, MutationOutsideUpdateRejected) {
  Memory m = make();
  EXPECT_THROW(m.place(1, 0, 50), InvariantViolation);
}

TEST(Memory, NestedUpdateRejected) {
  Memory m = make();
  m.begin_update(1, true);
  EXPECT_THROW(m.begin_update(1, true), InvariantViolation);
  m.place(1, 0, 1);
  m.end_update();
}

TEST(Memory, UnknownItemRejected) {
  Memory m = make();
  m.begin_update(1, true);
  EXPECT_THROW(m.move_to(42, 0), InvariantViolation);
  EXPECT_THROW(m.remove(42), InvariantViolation);
  m.place(1, 0, 1);
  m.end_update();
  EXPECT_THROW((void)m.offset_of(42), InvariantViolation);
}

TEST(Memory, DuplicatePlaceRejected) {
  Memory m = make();
  m.begin_update(1, true);
  m.place(1, 0, 1);
  EXPECT_THROW(m.place(1, 10, 1), InvariantViolation);
  m.end_update();
}

TEST(Memory, SnapshotSortedByOffset) {
  Memory m = make(1000, 900);
  m.begin_update(10, true);
  m.place(3, 50, 10);
  m.place(1, 0, 10);
  m.place(2, 20, 10);
  m.end_update();
  const auto snap = m.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].id, 1u);
  EXPECT_EQ(snap[1].id, 2u);
  EXPECT_EQ(snap[2].id, 3u);
}

TEST(Memory, GapsReported) {
  Memory m = make(1000, 900);
  m.begin_update(10, true);
  m.place(1, 0, 10);
  m.place(2, 30, 10);
  m.place(3, 60, 10);
  m.end_update();
  const auto gaps = m.gaps();
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_EQ(gaps[0], (std::pair<Tick, Tick>{10, 20}));
  EXPECT_EQ(gaps[1], (std::pair<Tick, Tick>{40, 20}));
}

TEST(Memory, SpanEnd) {
  Memory m = make(1000, 900);
  EXPECT_EQ(m.span_end(), 0u);
  m.begin_update(10, true);
  m.place(1, 40, 10);
  m.set_extent(1, 20);
  m.end_update();
  EXPECT_EQ(m.span_end(), 60u);
}

TEST(Memory, TotalsAccumulate) {
  Memory m = make();
  m.begin_update(10, true);
  m.place(1, 0, 10);
  m.end_update();
  m.begin_update(10, true);
  m.place(2, 10, 10);
  m.move_to(1, 20);
  m.end_update();
  EXPECT_EQ(m.total_moved(), 30u);
  EXPECT_EQ(m.update_count(), 2u);
}

TEST(Memory, PlacementBeyondCapacityRejected) {
  Memory m = make(1000, 100);
  m.begin_update(50, true);
  EXPECT_THROW(m.place(1, 980, 50), InvariantViolation);
  m.place(1, 0, 50);
  m.end_update();
}

TEST(Memory, AuditCadenceRespected) {
  ValidationPolicy p;
  p.incremental = false;       // only the periodic audit runs
  p.audit_every_n_updates = 2;  // ... on every second update
  Memory m(1000, 100, p);
  m.begin_update(50, true);
  m.place(1, 0, 50);
  m.place(2, 25, 50);  // overlap, but not audited yet
  EXPECT_NO_THROW(m.end_update());
  m.begin_update(1, true);
  m.place(3, 500, 1);
  EXPECT_THROW(m.end_update(), InvariantViolation);
}

TEST(Memory, IncrementalCatchesOverlapEveryUpdate) {
  // With incremental checks on (and no audit cadence at all), an overlap
  // is rejected at the close of the very update that created it.
  ValidationPolicy p;
  p.audit_every_n_updates = 0;
  Memory m(1000, 100, p);
  m.begin_update(50, true);
  m.place(1, 0, 50);
  m.end_update();
  m.begin_update(50, true);
  m.place(2, 25, 50);
  EXPECT_THROW(m.end_update(), InvariantViolation);
}

TEST(Memory, IncrementalCatchesOverlapCreatedByMoveAndExtent) {
  Memory m(1000, 500);
  m.begin_update(10, true);
  m.place(1, 0, 10);
  m.place(2, 100, 10);
  m.place(3, 200, 10);
  m.end_update();
  m.begin_update(1, true);
  m.place(4, 300, 1);
  m.move_to(3, 105);  // lands inside item 2's extent
  EXPECT_THROW(m.end_update(), InvariantViolation);
  m.begin_update(1, true);
  m.move_to(3, 200);
  m.set_extent(1, 150);  // now spills over item 2
  EXPECT_THROW(m.end_update(), InvariantViolation);
}

TEST(Memory, IncrementalRechecksResizableBoundOnRemoval) {
  // A delete moves nothing yet can still break span <= L + eps; the
  // incremental close must re-check the global bound even when nothing
  // overlaps.
  Memory m(1000, 100);
  m.begin_update(500, true);
  m.place(1, 0, 500);
  m.end_update();
  m.begin_update(50, true);
  m.place(2, 500, 50);  // span 550 == live 550: fine
  m.end_update();
  m.begin_update(500, false);
  m.remove(1);  // span still 550 > live 50 + eps 100
  EXPECT_THROW(m.end_update(), InvariantViolation);
}

// -- Regression: unsigned wraparound in the bounds checks -----------------

TEST(Memory, PlaceOffsetNearMaxRejected) {
  // offset + extent used to wrap past the capacity comparison.
  Memory m = make();
  m.begin_update(50, true);
  EXPECT_THROW(m.place(1, std::numeric_limits<Tick>::max() - 10, 50),
               InvariantViolation);
  EXPECT_THROW(m.place(1, std::numeric_limits<Tick>::max(), 50),
               InvariantViolation);
  m.place(1, 0, 50);
  m.end_update();
}

TEST(Memory, MoveOffsetNearMaxRejected) {
  Memory m = make();
  m.begin_update(50, true);
  m.place(1, 0, 50);
  EXPECT_THROW(m.move_to(1, std::numeric_limits<Tick>::max() - 10),
               InvariantViolation);
  m.end_update();
  EXPECT_EQ(m.offset_of(1), 0u);
}

TEST(Memory, ExtentNearMaxRejected) {
  Memory m = make();
  m.begin_update(50, true);
  m.place(1, 100, 50);
  EXPECT_THROW(m.set_extent(1, std::numeric_limits<Tick>::max() - 50),
               InvariantViolation);
  m.move_to(1, 0);
  m.end_update();
  EXPECT_EQ(m.extent_of(1), 50u);
}

// -- Regression: eps truncating to zero ticks -----------------------------

TEST(Memory, ZeroEpsTicksRejected) {
  EXPECT_THROW(Memory(1000, 0), InvariantViolation);
}

TEST(Eps, TinyEpsRoundsUpToOneTick) {
  const Eps e = Eps::of(1e-12, 1000);
  EXPECT_EQ(e.ticks, 1u);  // never 0: the bound checks must stay armed
  EXPECT_EQ(Eps::of(0.25, 1000).ticks, 250u);
  EXPECT_NO_THROW(Memory(1000, Eps::of(1e-12, 1000).ticks));
}

// -- Ordered neighbor/successor queries -----------------------------------

TEST(Memory, OrderedQueries) {
  Memory m = make(1000, 900);
  m.begin_update(10, true);
  m.place(1, 0, 10);
  m.place(2, 30, 10);
  m.place(3, 60, 10);
  m.set_extent(3, 20);
  m.end_update();

  ASSERT_TRUE(m.first_item().has_value());
  EXPECT_EQ(m.first_item()->id, 1u);
  ASSERT_TRUE(m.last_item().has_value());
  EXPECT_EQ(m.last_item()->id, 3u);
  EXPECT_EQ(m.last_item()->extent, 20u);

  // item_at: covering query over extents.
  EXPECT_EQ(m.item_at(0)->id, 1u);
  EXPECT_EQ(m.item_at(9)->id, 1u);
  EXPECT_FALSE(m.item_at(10).has_value());  // gap
  EXPECT_EQ(m.item_at(75)->id, 3u);         // inside the inflated extent
  EXPECT_FALSE(m.item_at(80).has_value());

  // Successor / predecessor.
  EXPECT_EQ(m.first_at_or_after(0)->id, 1u);
  EXPECT_EQ(m.first_at_or_after(1)->id, 2u);
  EXPECT_EQ(m.first_at_or_after(30)->id, 2u);
  EXPECT_FALSE(m.first_at_or_after(61).has_value());
  EXPECT_FALSE(m.last_before(0).has_value());
  EXPECT_EQ(m.last_before(30)->id, 1u);
  EXPECT_EQ(m.last_before(31)->id, 2u);
  EXPECT_EQ(m.last_before(1000)->id, 3u);

  const auto n2 = m.neighbors_of(2);
  ASSERT_TRUE(n2.prev.has_value());
  ASSERT_TRUE(n2.next.has_value());
  EXPECT_EQ(n2.prev->id, 1u);
  EXPECT_EQ(n2.next->id, 3u);
  EXPECT_FALSE(m.neighbors_of(1).prev.has_value());
  EXPECT_FALSE(m.neighbors_of(3).next.has_value());
}

TEST(Memory, OrderedQueriesOnEmptyMemory) {
  Memory m = make();
  EXPECT_FALSE(m.first_item().has_value());
  EXPECT_FALSE(m.last_item().has_value());
  EXPECT_FALSE(m.item_at(0).has_value());
  EXPECT_FALSE(m.first_at_or_after(0).has_value());
  EXPECT_FALSE(m.last_before(1000).has_value());
}

TEST(Memory, SpanEndTracksMovesAndRemovals) {
  Memory m = make(1000, 900);
  m.begin_update(10, true);
  m.place(1, 0, 10);
  m.place(2, 50, 10);
  m.end_update();
  EXPECT_EQ(m.span_end(), 60u);
  m.begin_update(10, false);
  m.remove(2);
  m.end_update();
  EXPECT_EQ(m.span_end(), 10u);
  m.begin_update(10, true);
  m.place(3, 20, 10);
  m.set_extent(3, 40);
  m.end_update();
  EXPECT_EQ(m.span_end(), 60u);
  m.begin_update(1, true);
  m.reset_extent(3);
  m.place(4, 90, 1);
  m.end_update();
  EXPECT_EQ(m.span_end(), 91u);
}

TEST(Memory, AuditDetectsWhatIncrementalAccepted) {
  // incremental = false lets an overlap survive the bracket close;
  // an explicit audit must still reject it.
  ValidationPolicy p;
  p.incremental = false;
  Memory m(1000, 100, p);
  m.begin_update(50, true);
  m.place(1, 0, 50);
  m.place(2, 25, 50);
  EXPECT_NO_THROW(m.end_update());
  EXPECT_THROW(m.audit(), InvariantViolation);
}

}  // namespace
}  // namespace memreal
