// Tests for the engine and cost accounting (both amortization conventions
// from Section 3).
#include <gtest/gtest.h>

#include <vector>

#include "core/engine.h"
#include "mem/memory.h"
#include "testing.h"
#include "util/check.h"

namespace memreal {
namespace {

/// A trivial allocator that appends inserts and compacts on every delete —
/// predictable costs for accounting tests.
class AppendCompact final : public Allocator {
 public:
  explicit AppendCompact(LayoutStore& mem) : mem_(&mem) {}

  void insert(ItemId id, Tick size) override {
    const Tick off = order_.empty() ? 0 : mem_->end_of(order_.back());
    mem_->place(id, off, size);
    order_.push_back(id);
  }

  void erase(ItemId id) override {
    auto it = std::find(order_.begin(), order_.end(), id);
    MEMREAL_CHECK(it != order_.end());
    order_.erase(it);
    mem_->remove(id);
    Tick off = 0;
    for (ItemId x : order_) {
      mem_->move_to(x, off);
      off += mem_->extent_of(x);
    }
  }

  [[nodiscard]] std::string_view name() const override {
    return "append-compact";
  }

 private:
  LayoutStore* mem_;
  std::vector<ItemId> order_;
};

TEST(Engine, InsertCostsOne) {
  Memory mem = testing::strict_memory(1'000'000, 0.25);
  AppendCompact alloc(mem);
  Engine engine(mem, alloc);
  EXPECT_DOUBLE_EQ(engine.step(Update::insert(1, 1000)), 1.0);
  EXPECT_DOUBLE_EQ(engine.step(Update::insert(2, 500)), 1.0);
}

TEST(Engine, DeleteCostCountsCompaction) {
  Memory mem = testing::strict_memory(1'000'000, 0.25);
  AppendCompact alloc(mem);
  Engine engine(mem, alloc);
  engine.step(Update::insert(1, 1000));
  engine.step(Update::insert(2, 500));
  engine.step(Update::insert(3, 2000));
  // Deleting item 1 moves items 2 and 3: cost (500 + 2000) / 1000 = 2.5.
  EXPECT_DOUBLE_EQ(engine.step(Update::erase(1, 1000)), 2.5);
}

TEST(Engine, StatsTrackBothConventions) {
  Memory mem = testing::strict_memory(1'000'000, 0.25);
  AppendCompact alloc(mem);
  Engine engine(mem, alloc);
  engine.step(Update::insert(1, 1000));
  engine.step(Update::insert(2, 500));
  engine.step(Update::erase(1, 1000));  // moves 500: cost 0.5
  const RunStats& s = engine.stats();
  EXPECT_EQ(s.updates, 3u);
  EXPECT_EQ(s.inserts, 2u);
  EXPECT_EQ(s.deletes, 1u);
  // Convention (i): mean of per-update costs = (1 + 1 + 0.5) / 3.
  EXPECT_NEAR(s.mean_cost(), 2.5 / 3.0, 1e-12);
  // Convention (ii): total moved / total update mass = 2000 / 2500.
  EXPECT_NEAR(s.ratio_cost(), 2000.0 / 2500.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.max_cost(), 1.0);
}

TEST(Engine, DeleteOfAbsentItemRejected) {
  Memory mem = testing::strict_memory(1'000'000, 0.25);
  AppendCompact alloc(mem);
  Engine engine(mem, alloc);
  EXPECT_THROW(engine.step(Update::erase(99, 10)), InvariantViolation);
}

TEST(Engine, SizeMismatchRejected) {
  Memory mem = testing::strict_memory(1'000'000, 0.25);
  AppendCompact alloc(mem);
  Engine engine(mem, alloc);
  engine.step(Update::insert(1, 1000));
  EXPECT_THROW(engine.step(Update::erase(1, 999)), InvariantViolation);
}

TEST(Engine, OnUpdateCallbackFires) {
  Memory mem = testing::strict_memory(1'000'000, 0.25);
  AppendCompact alloc(mem);
  EngineOptions opts;
  std::vector<double> costs;
  opts.on_update = [&](std::size_t, const Update&, double c) {
    costs.push_back(c);
  };
  Engine engine(mem, alloc, opts);
  engine.step(Update::insert(1, 100));
  engine.step(Update::erase(1, 100));
  ASSERT_EQ(costs.size(), 2u);
  EXPECT_DOUBLE_EQ(costs[0], 1.0);
  EXPECT_DOUBLE_EQ(costs[1], 0.0);
}

TEST(Engine, RunAggregates) {
  Memory mem = testing::strict_memory(1'000'000, 0.25);
  AppendCompact alloc(mem);
  Engine engine(mem, alloc);
  std::vector<Update> seq{Update::insert(1, 100), Update::insert(2, 100),
                          Update::erase(1, 100), Update::erase(2, 100)};
  const RunStats s = engine.run(seq);
  EXPECT_EQ(s.updates, 4u);
  EXPECT_GE(s.wall_seconds, 0.0);
}

TEST(RunStats, MergeAddsUp) {
  RunStats a, b;
  a.record(true, 100, 100);
  b.record(false, 50, 200);
  a.merge(b);
  EXPECT_EQ(a.updates, 2u);
  EXPECT_EQ(a.moved_mass, 300u);
  EXPECT_EQ(a.update_mass, 150u);
  EXPECT_EQ(a.inserts, 1u);
  EXPECT_EQ(a.deletes, 1u);
}

TEST(Update, FactoryAndEquality) {
  const Update a = Update::insert(1, 10);
  const Update b = Update::erase(1, 10);
  EXPECT_TRUE(a.is_insert());
  EXPECT_FALSE(b.is_insert());
  EXPECT_NE(a, b);
  EXPECT_EQ(a, Update::insert(1, 10));
}

}  // namespace
}  // namespace memreal
