// SIMPLE (Theorem 3.1): size classes, covering set, swap/inflation, waste
// bound, rebuild cadence, amortized O(eps^-2/3) cost shape.
#include <gtest/gtest.h>

#include <cmath>

#include "alloc/simple.h"
#include "mem/memory.h"
#include "testing.h"
#include "workload/churn.h"

namespace memreal {
namespace {

constexpr Tick kCap = Tick{1} << 40;

Sequence regime(double eps, std::size_t updates, std::uint64_t seed) {
  return make_simple_regime(kCap, eps, updates, seed);
}

TEST(Simple, ConfigMatchesPaper) {
  Memory mem = testing::strict_memory(kCap, 1.0 / 64);
  SimpleAllocator alloc(mem, 1.0 / 64);
  // ceil(eps^{-1/3}) classes, floor(eps^{-1/3}) rebuild period.
  EXPECT_EQ(alloc.size_class_count(), 4u);  // 64^{1/3} = 4
  EXPECT_EQ(alloc.rebuild_period(), 4u);
}

TEST(Simple, SizeClassPartition) {
  Memory mem = testing::strict_memory(kCap, 1.0 / 64);
  SimpleAllocator alloc(mem, 1.0 / 64);
  const auto eps_t = mem.eps_ticks();
  EXPECT_EQ(alloc.size_class_of(eps_t), 0u);
  EXPECT_EQ(alloc.size_class_of(2 * eps_t - 1), alloc.size_class_count() - 1);
  // Classes are monotone in size.
  std::size_t prev = 0;
  for (Tick s = eps_t; s < 2 * eps_t; s += eps_t / 97) {
    const std::size_t c = alloc.size_class_of(s);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_THROW((void)alloc.size_class_of(eps_t - 1), InvariantViolation);
  EXPECT_THROW((void)alloc.size_class_of(2 * eps_t), InvariantViolation);
}

TEST(Simple, RebuildEveryPeriodUpdates) {
  Memory mem = testing::strict_memory(kCap, 1.0 / 64);
  SimpleAllocator alloc(mem, 1.0 / 64);
  Engine engine(mem, alloc);
  const Tick size = mem.eps_ticks();
  // Period is 4: updates 1, 5, 9 trigger rebuilds.
  for (ItemId i = 1; i <= 9; ++i) engine.step(Update::insert(i, size));
  EXPECT_EQ(alloc.rebuilds(), 3u);
}

TEST(Simple, InsertGoesToCoveringSet) {
  Memory mem = testing::strict_memory(kCap, 1.0 / 64);
  SimpleAllocator alloc(mem, 1.0 / 64);
  Engine engine(mem, alloc);
  engine.step(Update::insert(1, mem.eps_ticks() + 5));
  EXPECT_TRUE(alloc.in_covering(1));
}

TEST(Simple, DeleteOutsideCoveringSwapsAndInflates) {
  const double eps = 1.0 / 64;
  Memory mem = testing::strict_memory(kCap, eps);
  SimpleAllocator alloc(mem, eps);
  Engine engine(mem, alloc);
  const Tick eps_t = mem.eps_ticks();
  // Period 4.  Insert 8 items of the same class with distinct sizes; after
  // the rebuild at update 9 the covering set holds the 4 smallest; the
  // others sit in the main portion.
  for (ItemId i = 1; i <= 8; ++i) {
    engine.step(Update::insert(i, eps_t + 10 * i));
  }
  engine.step(Update::insert(9, eps_t + 1));  // triggers rebuild (update 9)
  // Items 6, 7, 8 are now outside the covering set (largest).
  ASSERT_FALSE(alloc.in_covering(7));
  const Tick slot7 = mem.offset_of(7);
  const Tick ext7 = mem.extent_of(7);
  engine.step(Update::erase(7, eps_t + 70));
  // Some smaller covering item took 7's slot with 7's extent.
  const auto snap = mem.snapshot();
  bool found = false;
  for (const auto& it : snap) {
    if (it.offset == slot7) {
      EXPECT_EQ(it.extent, ext7);
      EXPECT_LE(it.size, eps_t + 70);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Simple, WasteNeverExceedsEps) {
  const double eps = 1.0 / 32;
  const Sequence seq = regime(eps, 600, 7);
  // run_with_invariants checks waste <= eps after every update via
  // check_invariants.
  const RunStats s = testing::run_with_invariants("simple", seq);
  EXPECT_GT(s.updates, 0u);
}

TEST(Simple, LayoutContiguousInExtents) {
  const double eps = 1.0 / 32;
  const Sequence seq = regime(eps, 300, 3);
  ValidationPolicy policy;
  policy.audit_every_n_updates = 1;
  Memory mem(seq.capacity, seq.eps_ticks, policy);
  SimpleAllocator alloc(mem, eps);
  Engine engine(mem, alloc);
  engine.run(seq.updates);
  const auto snap = mem.snapshot();
  Tick off = 0;
  for (const auto& it : snap) {
    EXPECT_EQ(it.offset, off);
    off += it.extent;
  }
}

TEST(Simple, ResizableBoundHolds) {
  const double eps = 1.0 / 32;
  const Sequence seq = regime(eps, 400, 5);
  ValidationPolicy policy;
  policy.audit_every_n_updates = 1;
  Memory mem(seq.capacity, seq.eps_ticks, policy);
  SimpleAllocator alloc(mem, eps);
  Engine engine(mem, alloc);
  engine.run(seq.updates);
  EXPECT_LE(mem.span_end(), mem.live_mass() + mem.eps_ticks());
}

TEST(Simple, RejectsOutOfRegimeSizes) {
  Memory mem = testing::strict_memory(kCap, 1.0 / 64);
  SimpleAllocator alloc(mem, 1.0 / 64);
  Engine engine(mem, alloc);
  EXPECT_THROW(engine.step(Update::insert(1, mem.eps_ticks() / 2)),
               InvariantViolation);
}

TEST(Simple, CoveringSetSizeBounded) {
  const double eps = 1.0 / 64;
  const Sequence seq = regime(eps, 500, 11);
  ValidationPolicy policy;
  policy.audit_every_n_updates = 1;
  Memory mem(seq.capacity, seq.eps_ticks, policy);
  SimpleAllocator alloc(mem, eps);
  Engine engine(mem, alloc);
  std::size_t max_covering = 0;
  EngineOptions opts;
  Engine e2(mem, alloc, opts);
  for (const Update& u : seq.updates) {
    e2.step(u);
    max_covering = std::max(max_covering, alloc.covering_size());
  }
  // Lemma 3.3: per class at most 2 * floor(eps^{-1/3}) covering items.
  EXPECT_LE(max_covering,
            2 * alloc.rebuild_period() * alloc.size_class_count() +
                alloc.rebuild_period());
}

// Parameterized sweep: invariants hold across eps x seed.
struct SimpleParam {
  double eps;
  std::uint64_t seed;
};

class SimpleSweep : public ::testing::TestWithParam<SimpleParam> {};

TEST_P(SimpleSweep, InvariantsAndCostShape) {
  const auto [eps, seed] = GetParam();
  const Sequence seq = regime(eps, 500, seed);
  const RunStats s = testing::run_with_invariants("simple", seq);
  // Theorem 3.1 with slack: amortized cost O(eps^-2/3).  Constant 12 is
  // generous but still far below the folklore eps^-1 at small eps.
  EXPECT_LE(s.mean_cost(), 12.0 * std::pow(1.0 / eps, 2.0 / 3.0));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimpleSweep,
    ::testing::Values(SimpleParam{1.0 / 16, 1}, SimpleParam{1.0 / 16, 2},
                      SimpleParam{1.0 / 32, 1}, SimpleParam{1.0 / 32, 2},
                      SimpleParam{1.0 / 64, 1}, SimpleParam{1.0 / 64, 2},
                      SimpleParam{1.0 / 128, 1}, SimpleParam{1.0 / 128, 2},
                      SimpleParam{1.0 / 256, 1}, SimpleParam{1.0 / 512, 1}));

// Section 3's remark: with all sizes within a factor of two, the two
// amortized-cost conventions (mean of per-update costs vs ratio of totals)
// agree up to constants.
TEST(Simple, AmortizationConventionsAgreeOnBand) {
  const double eps = 1.0 / 128;
  const Sequence seq = regime(eps, 2000, 13);
  ValidationPolicy policy;
  policy.audit_every_n_updates = 128;
  Memory mem(seq.capacity, seq.eps_ticks, policy);
  SimpleAllocator alloc(mem, eps);
  Engine engine(mem, alloc);
  const RunStats s = engine.run(seq.updates);
  ASSERT_GT(s.ratio_cost(), 0.0);
  const double r = s.mean_cost() / s.ratio_cost();
  EXPECT_GT(r, 0.5);
  EXPECT_LT(r, 2.0);
}

TEST(Simple, AblationPeriodOverride) {
  Memory mem = testing::strict_memory(kCap, 1.0 / 64);
  SimpleAllocator alloc(mem, 1.0 / 64);
  alloc.set_rebuild_period(2);
  Engine engine(mem, alloc);
  const Tick size = mem.eps_ticks();
  for (ItemId i = 1; i <= 5; ++i) engine.step(Update::insert(i, size));
  EXPECT_EQ(alloc.rebuilds(), 3u);  // updates 1, 3, 5
}

}  // namespace
}  // namespace memreal
