// Tests for the online concurrent serving layer (src/serve): MPSC queue
// semantics, deterministic-mode bit-identity with the batch ShardedEngine
// for every registry allocator on both engine flavors, concurrent
// multi-client serving, snapshot-consistent read-side queries (including
// arena payload reads), and rejection paths.  `ctest -L serve` runs this
// suite alone; CI additionally runs it under ThreadSanitizer.
#include <atomic>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "arena/arena_store.h"
#include "serve/mpsc_queue.h"
#include "serve/serving_engine.h"
#include "testing.h"
#include "util/check.h"
#include "workload/churn.h"

namespace memreal {
namespace {

constexpr double kEps = 1.0 / 64;
/// Wide cells so every registry allocator's size classes resolve (GEO
/// needs more resolution than 2^30 at this eps — see test_shard.cpp).
constexpr Tick kWideCap = Tick{1} << 40;

ShardedConfig serve_config(const std::string& allocator,
                           const std::string& engine, std::size_t shards,
                           Tick shard_capacity = kWideCap,
                           double eps = kEps, double delta = 0.0) {
  ShardedConfig c;
  c.engine = engine;
  c.allocator = allocator;
  c.params.eps = eps;
  c.params.delta = delta;
  c.params.seed = 1;
  c.shards = shards;
  c.shard_capacity = shard_capacity;
  c.eps = eps;
  return c;
}

void expect_same_layout(const LayoutStore& a, const LayoutStore& b) {
  const auto la = a.snapshot();
  const auto lb = b.snapshot();
  ASSERT_EQ(la.size(), lb.size());
  for (std::size_t i = 0; i < la.size(); ++i) {
    EXPECT_EQ(la[i].id, lb[i].id);
    EXPECT_EQ(la[i].offset, lb[i].offset);
    EXPECT_EQ(la[i].size, lb[i].size);
    EXPECT_EQ(la[i].extent, lb[i].extent);
  }
}

// -- MPSC queue -------------------------------------------------------------

TEST(MpscQueue, SingleProducerFifo) {
  MpscQueue<int> q;
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.push(i));
  std::vector<int> got;
  ASSERT_TRUE(q.pop_all(got));
  ASSERT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[i], i);
}

TEST(MpscQueue, CloseHandsOutBacklogThenSignalsTermination) {
  MpscQueue<int> q;
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_FALSE(q.push(3));  // dropped, not enqueued
  std::vector<int> got;
  ASSERT_TRUE(q.pop_all(got));
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
  EXPECT_FALSE(q.pop_all(got));  // closed and empty
  EXPECT_TRUE(got.empty());
}

TEST(MpscQueue, MultiProducerDeliversEverythingInPerProducerOrder) {
  MpscQueue<std::pair<int, int>> q;  // (producer, sequence)
  constexpr int kProducers = 4;
  constexpr int kEach = 500;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kEach; ++i) q.push({p, i});
    });
  }
  std::vector<std::pair<int, int>> all;
  std::vector<std::pair<int, int>> batch;
  while (all.size() < kProducers * kEach && q.pop_all(batch)) {
    all.insert(all.end(), batch.begin(), batch.end());
  }
  for (std::thread& t : producers) t.join();
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kProducers * kEach));
  std::vector<int> next(kProducers, 0);
  for (const auto& [p, i] : all) {
    EXPECT_EQ(i, next[p]) << "producer " << p << " out of order";
    ++next[p];
  }
}

// -- Deterministic mode: bit-identity with the batch path -------------------

class ServeEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(ServeEquivalence, DeterministicModeMatchesBatchShardedEngine) {
  const std::string allocator = GetParam();
  // Sizes admissible for one shard (regime_sequence scales to its
  // capacity argument); the shards share the resulting live mass.
  const testing::RegimeCase rc = testing::regime_case(allocator);
  const Sequence seq = testing::regime_sequence(rc, kWideCap, 400, 21);
  ASSERT_GE(seq.size(), 400u);

  for (const std::string& engine : engine_names()) {
    SCOPED_TRACE("engine " + engine);
    const ShardedConfig config =
        serve_config(allocator, engine, 4, kWideCap, rc.eps, rc.delta);

    ShardedEngine batch(config);
    const ShardedRunStats want = batch.run(seq);
    batch.audit();

    ServingEngine serve(config);
    const std::vector<double> costs =
        serve_deterministic(serve, seq, /*lanes=*/3, /*seed=*/99);
    const ShardedRunStats got = serve.stats();
    serve.audit();
    serve.stop();

    EXPECT_EQ(costs.size(), seq.updates.size());
    EXPECT_EQ(got.global.updates, want.global.updates);
    EXPECT_EQ(got.global.moved_mass, want.global.moved_mass);
    EXPECT_EQ(got.global.update_mass, want.global.update_mass);
    EXPECT_EQ(got.fallback_routes, want.fallback_routes);
    ASSERT_EQ(got.per_shard.size(), want.per_shard.size());
    for (std::size_t s = 0; s < got.per_shard.size(); ++s) {
      const RunStats& g = got.per_shard[s];
      const RunStats& w = want.per_shard[s];
      // Identical per-shard update order means the whole cost stream is
      // bit-identical, so every derived double compares with ==.
      EXPECT_EQ(g.updates, w.updates);
      EXPECT_EQ(g.moved_mass, w.moved_mass);
      EXPECT_EQ(g.update_mass, w.update_mass);
      EXPECT_EQ(g.cost.count(), w.cost.count());
      EXPECT_EQ(g.cost.mean(), w.cost.mean());
      EXPECT_EQ(g.cost.variance(), w.cost.variance());
      EXPECT_EQ(g.cost.min(), w.cost.min());
      EXPECT_EQ(g.cost.max(), w.cost.max());
      EXPECT_EQ(g.cost.sum(), w.cost.sum());
      expect_same_layout(batch.memory(s), serve.sharded().memory(s));
    }
    // The per-request futures recompose the same total cost (summation
    // order differs from the per-shard accumulators, so compare to
    // rounding, not bitwise).
    double total = 0.0;
    for (const double c : costs) total += c;
    EXPECT_NEAR(total, got.global.cost.sum(),
                1e-9 * (1.0 + std::abs(total)));
  }
}

INSTANTIATE_TEST_SUITE_P(AllRegistryAllocators, ServeEquivalence,
                         ::testing::ValuesIn(allocator_names()));

// -- Concurrent serving -----------------------------------------------------

/// Per-client well-formed streams with globally disjoint ids: client c
/// owns ids with id % clients == c (after remapping).
std::vector<Sequence> client_streams(std::size_t clients, std::size_t shards,
                                     std::size_t updates,
                                     std::uint64_t seed) {
  std::vector<Sequence> out;
  out.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    ChurnConfig cc;
    cc.capacity = kWideCap * shards / clients;
    cc.eps = kEps;
    cc.min_size = static_cast<Tick>(kEps * static_cast<double>(kWideCap));
    cc.max_size =
        static_cast<Tick>(2 * kEps * static_cast<double>(kWideCap)) - 1;
    cc.target_load = 0.5;
    cc.churn_updates = updates;
    cc.seed = seed + c;
    Sequence s = make_churn(cc);
    for (Update& u : s.updates) {
      u.id = u.id * clients + c;  // disjoint id spaces across clients
    }
    out.push_back(std::move(s));
  }
  return out;
}

TEST(ServingEngine, ConcurrentClientsCompleteAndAudit) {
  constexpr std::size_t kClients = 4;
  ServingEngine serve(serve_config("simple", "validated", 4));
  const std::vector<Sequence> streams = client_streams(kClients, 4, 300, 5);

  std::size_t expected = 0;
  for (const Sequence& s : streams) expected += s.updates.size();

  std::atomic<std::size_t> served{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&serve, &served, &streams, c] {
      for (const Update& u : streams[c].updates) {
        const double cost = serve.submit(u).get();  // closed loop
        EXPECT_GE(cost, 0.0);
        served.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  serve.audit();
  const ShardedRunStats stats = serve.stats();
  EXPECT_EQ(served.load(), expected);
  EXPECT_EQ(stats.global.updates, expected);
  std::size_t per_shard = 0;
  for (const RunStats& s : stats.per_shard) per_shard += s.updates;
  EXPECT_EQ(per_shard, expected);
}

TEST(ServingEngine, ReadSideQueriesRaceFreeUnderLoad) {
  ServingEngine serve(serve_config("simple", "validated", 2));
  const std::vector<Sequence> streams = client_streams(1, 2, 400, 9);

  std::atomic<bool> done{false};
  std::thread reader([&] {
    // Hammer every read-side query while the workers mutate layouts;
    // under TSan this pins down the shared-lock discipline.
    Tick offset = 0;
    ItemId id = 1;
    while (!done.load(std::memory_order_relaxed)) {
      (void)serve.item_at(offset % 2, offset);
      (void)serve.neighbors_of(id);
      (void)serve.contains(id);
      offset += 4097;
      id = (id % 512) + 1;
    }
  });
  for (const Update& u : streams[0].updates) {
    (void)serve.submit(u);  // open loop: keep the queues busy
  }
  serve.drain();
  done.store(true, std::memory_order_relaxed);
  reader.join();
  serve.audit();
}

// -- Snapshot queries and arena payload reads -------------------------------

TEST(ServingEngine, QueriesObserveAppliedLayout) {
  ServingEngine serve(serve_config("simple", "validated", 2));
  const Tick size = static_cast<Tick>(kEps * static_cast<double>(kWideCap));
  EXPECT_FALSE(serve.contains(42));
  EXPECT_EQ(serve.neighbors_of(42), std::nullopt);
  serve.submit(Update::insert(42, size)).get();
  EXPECT_TRUE(serve.contains(42));
  const std::size_t shard = serve.sharded().shard_of(42);
  const auto at = serve.item_at(shard, 0);
  ASSERT_TRUE(at.has_value());
  EXPECT_EQ(at->id, 42u);
  const auto nb = serve.neighbors_of(42);
  ASSERT_TRUE(nb.has_value());
  EXPECT_FALSE(nb->prev.has_value());  // only item on the shard
  EXPECT_FALSE(nb->next.has_value());
  serve.submit(Update::erase(42, size)).get();
  EXPECT_FALSE(serve.contains(42));
}

TEST(ServingEngine, ArenaPayloadReadsMatchFillPattern) {
  constexpr Tick kArenaCap = Tick{1} << 20;
  ShardedConfig config =
      serve_config("folklore-compact", "validated", 2, kArenaCap);
  config.arena = true;
  config.bytes_per_tick = 8;

  const AllocatorInfo info = allocator_info("folklore-compact");
  ChurnConfig cc;
  cc.capacity = kArenaCap * 2;
  cc.eps = kEps;
  cc.min_size = info.sizes.min_size(kEps, kArenaCap);
  cc.max_size = info.sizes.max_size(kEps, kArenaCap) - 1;
  cc.target_load = 0.6;
  cc.churn_updates = 120;
  cc.seed = 3;
  const Sequence seq = make_churn(cc);

  ServingEngine serve(config);
  (void)serve_deterministic(serve, seq, 2, 17);
  serve.audit();

  std::unordered_set<ItemId> live;
  for (const Update& u : seq.updates) {
    if (u.is_insert()) {
      live.insert(u.id);
    } else {
      live.erase(u.id);
    }
  }
  ASSERT_FALSE(live.empty());
  for (const ItemId id : live) {
    const std::vector<unsigned char> bytes = serve.payload_of(id);
    ASSERT_FALSE(bytes.empty()) << "item " << id;
    for (std::size_t j = 0; j < bytes.size(); ++j) {
      ASSERT_EQ(bytes[j], ArenaStore::pattern_byte(id, j))
          << "item " << id << " byte " << j;
    }
  }
  // A tick-space engine reports no payloads.
  ServingEngine plain(serve_config("simple", "validated", 2));
  const Tick size = static_cast<Tick>(kEps * static_cast<double>(kWideCap));
  plain.submit(Update::insert(1, size)).get();
  EXPECT_TRUE(plain.payload_of(1).empty());
}

// -- Rejection paths --------------------------------------------------------

TEST(ServingEngine, RoutingViolationsThrowAtSubmit) {
  ServingEngine serve(serve_config("simple", "validated", 2));
  const Tick size = static_cast<Tick>(kEps * static_cast<double>(kWideCap));
  serve.submit(Update::insert(1, size)).get();
  EXPECT_THROW((void)serve.submit(Update::insert(1, size)),
               InvariantViolation);  // duplicate insert
  EXPECT_THROW((void)serve.submit(Update::erase(99, size)),
               InvariantViolation);  // delete of absent item
  const ShardedRunStats stats = serve.stats();
  EXPECT_EQ(stats.global.updates, 1u);  // rejected submits never enqueued
  serve.stop();
  EXPECT_THROW((void)serve.submit(Update::insert(2, size)),
               InvariantViolation);  // submit after stop
}

TEST(ServingEngine, CellFailuresArriveThroughTheFuture) {
  ServingEngine serve(serve_config("simple", "validated", 2));
  // SIMPLE only serves sizes in [eps, 2 eps) of capacity; a 1-tick item
  // routes fine but the cell's allocator rejects it at apply time, so
  // the violation must surface on the future, not at submit.
  std::future<double> fut = serve.submit(Update::insert(7, 1));
  EXPECT_THROW((void)fut.get(), InvariantViolation);
}

TEST(ServingEngine, StopIsIdempotentAndDrainOnIdleReturns) {
  ServingEngine serve(serve_config("simple", "validated", 2));
  serve.drain();  // nothing in flight
  serve.stop();
  serve.stop();
}

}  // namespace
}  // namespace memreal
