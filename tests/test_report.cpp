// Tests for the reproduction-report pipeline (`src/report/`,
// `tools/memreal_report`): fit recovery on synthetic data, EpsRow JSON
// round-trips, BENCH_*.json loading (including stale-schema rejection),
// the per-claim verdict rules on canned fixtures (pass / fail /
// missing-file), and the EXPERIMENTS.md marker rewriter.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "report/bench_data.h"
#include "report/markdown.h"
#include "report/verdict.h"

namespace memreal {
namespace {

namespace fs = std::filesystem;
using report::BenchFile;
using report::BenchSet;
using report::ClaimResult;
using report::ReportError;
using report::Status;

// -- fixtures -------------------------------------------------------------

/// A scratch directory removed on destruction.
struct TempDir {
  TempDir() {
    static int counter = 0;
    path = fs::temp_directory_path() /
           ("memreal_report_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  fs::path path;
};

/// Synthetic sweep rows with mean_cost = coeff * (1/eps)^exponent.
std::vector<EpsRow> power_rows(double exponent, double coeff = 2.0) {
  std::vector<EpsRow> rows;
  for (const double inv_eps : {16.0, 32.0, 64.0, 128.0, 256.0, 512.0}) {
    EpsRow r;
    r.eps = 1.0 / inv_eps;
    r.seeds = 3;
    r.updates = 1000;
    r.mean_cost = coeff * std::pow(inv_eps, exponent);
    r.max_cost = 2 * r.mean_cost;
    r.p99_cost = 1.5 * r.mean_cost;
    r.ratio_cost = r.mean_cost;
    rows.push_back(r);
  }
  return rows;
}

/// Synthetic rows with mean_cost = intercept + slope * log2(1/eps).
std::vector<EpsRow> log_rows(double slope, double intercept) {
  std::vector<EpsRow> rows;
  for (const double inv_eps : {256.0, 1024.0, 4096.0, 16384.0}) {
    EpsRow r;
    r.eps = 1.0 / inv_eps;
    r.seeds = 3;
    r.updates = 1000;
    r.mean_cost = intercept + slope * std::log2(inv_eps);
    r.max_cost = 2 * r.mean_cost;
    r.p99_cost = r.mean_cost;
    r.ratio_cost = r.mean_cost;
    rows.push_back(r);
  }
  return rows;
}

Json sweep_record(const std::string& claim, const std::string& series,
                  const std::string& allocator, const std::string& fit,
                  const std::vector<EpsRow>& rows) {
  Json rec = Json::object();
  rec.set("kind", "eps_sweep")
      .set("claim", claim)
      .set("series", series)
      .set("allocator", allocator)
      .set("workload", "synthetic")
      .set("fit", fit)
      .set("rows", eps_rows_json(rows));
  return rec;
}

/// Writes a schema-`schema` BENCH_<bench>.json holding `records`.
std::string write_bench_file(const fs::path& dir, const std::string& bench,
                             Json records, std::uint64_t schema = 2) {
  Json doc = Json::object();
  doc.set("bench", bench).set("schema", schema);
  doc.set("git_describe", "test-fixture");
  doc.set("fast_mode", true);
  Json seeds = Json::array();
  seeds.push(std::uint64_t{1});
  doc.set("seeds", std::move(seeds));
  doc.set("records", std::move(records));
  const std::string path = (dir / ("BENCH_" + bench + ".json")).string();
  std::ofstream out(path);
  out << doc.dump(2) << "\n";
  return path;
}

const ClaimResult& result_for(const std::vector<ClaimResult>& rs,
                              const std::string& id) {
  for (const ClaimResult& r : rs) {
    if (r.spec->id == id) return r;
  }
  throw std::logic_error("no claim " + id);
}

// -- fit recovery ---------------------------------------------------------

TEST(Fits, RecoversSyntheticPowerLawExponent) {
  const PowerLawFit fit = fit_cost_exponent(power_rows(2.0 / 3.0, 3.0));
  EXPECT_NEAR(fit.exponent, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(fit.log_coeff, std::log(3.0), 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Fits, RecoversSyntheticLogLinearSlope) {
  const LinearFit fit = fit_cost_log(log_rows(1.5, 2.0));
  EXPECT_NEAR(fit.slope, 1.5, 1e-9);
  EXPECT_NEAR(fit.intercept, 2.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Fits, ReportsLowR2OnNoisyData) {
  std::vector<EpsRow> rows = power_rows(1.0);
  rows[1].mean_cost *= 30;  // gross outlier
  rows[3].mean_cost /= 25;
  const PowerLawFit fit = fit_cost_exponent(rows);
  EXPECT_LT(fit.r2, 0.9);
}

// -- EpsRow JSON round-trip ----------------------------------------------

TEST(EpsRowJson, RoundTripsThroughDumpAndParse) {
  const std::vector<EpsRow> rows = power_rows(0.5);
  const std::string dumped = eps_rows_json(rows).dump(2);
  const std::vector<EpsRow> back =
      eps_rows_from_json(Json::parse(dumped));
  ASSERT_EQ(back.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_DOUBLE_EQ(back[i].eps, rows[i].eps);
    EXPECT_EQ(back[i].seeds, rows[i].seeds);
    EXPECT_EQ(back[i].updates, rows[i].updates);
    EXPECT_DOUBLE_EQ(back[i].mean_cost, rows[i].mean_cost);
    EXPECT_DOUBLE_EQ(back[i].max_cost, rows[i].max_cost);
    EXPECT_DOUBLE_EQ(back[i].p99_cost, rows[i].p99_cost);
  }
}

// -- artifact loading -----------------------------------------------------

TEST(BenchData, LoadsSchemaTwoFile) {
  TempDir dir;
  Json records = Json::array();
  records.push(sweep_record("T1", "churn-band/simple", "simple", "power",
                            power_rows(0.66)));
  write_bench_file(dir.path, "simple", std::move(records));

  const BenchSet set = report::load_bench_dir(dir.path.string());
  ASSERT_NE(set.find("simple"), nullptr);
  const BenchFile& f = *set.find("simple");
  EXPECT_EQ(f.git_describe, "test-fixture");
  EXPECT_TRUE(f.fast_mode);
  ASSERT_EQ(f.seeds.size(), 1u);
  EXPECT_NE(f.find_series("churn-band/simple"), nullptr);
  EXPECT_EQ(f.find_series("nope"), nullptr);
  EXPECT_EQ(set.records_for_claim("T1").size(), 1u);
  EXPECT_TRUE(set.records_for_claim("T2").empty());
}

TEST(BenchData, RejectsStaleSchemaWithClearError) {
  TempDir dir;
  const std::string path =
      write_bench_file(dir.path, "simple", Json::array(), /*schema=*/1);
  try {
    (void)report::load_bench_file(path);
    FAIL() << "expected ReportError";
  } catch (const ReportError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("stale"), std::string::npos) << what;
    EXPECT_NE(what.find("schema 1"), std::string::npos) << what;
    EXPECT_NE(what.find(path), std::string::npos) << what;
  }
}

TEST(BenchData, RejectsMalformedJsonNamingTheFile) {
  TempDir dir;
  const std::string path = (dir.path / "BENCH_broken.json").string();
  std::ofstream(path) << "{\"bench\": \"broken\",";
  EXPECT_THROW((void)report::load_bench_file(path), ReportError);
  EXPECT_THROW((void)report::load_bench_dir(dir.path.string()),
               ReportError);
}

TEST(BenchData, RejectsDuplicateBenchNamesAcrossFiles) {
  TempDir dir;
  write_bench_file(dir.path, "simple", Json::array());
  // A stale copy under a different filename but the same internal name.
  Json doc = Json::object();
  doc.set("bench", "simple").set("schema", std::uint64_t{2});
  doc.set("git_describe", "stale").set("fast_mode", true);
  doc.set("seeds", Json::array()).set("records", Json::array());
  std::ofstream(dir.path / "BENCH_old_simple.json") << doc.dump() << "\n";
  try {
    (void)report::load_bench_dir(dir.path.string());
    FAIL() << "expected ReportError";
  } catch (const ReportError& e) {
    EXPECT_NE(std::string(e.what()).find("already loaded"),
              std::string::npos)
        << e.what();
  }
}

TEST(BenchData, IgnoresNonBenchFiles) {
  TempDir dir;
  std::ofstream(dir.path / "notes.json") << "not json at all";
  std::ofstream(dir.path / "BENCH_x.txt") << "nope";
  const BenchSet set = report::load_bench_dir(dir.path.string());
  EXPECT_TRUE(set.by_bench.empty());
}

// -- verdict rules --------------------------------------------------------

TEST(Verdict, MissingBenchFileYieldsMissingStatus) {
  const BenchSet empty;
  const std::vector<ClaimResult> rs = report::evaluate_claims(empty);
  EXPECT_EQ(rs.size(), report::claim_specs().size());
  for (const ClaimResult& r : rs) {
    EXPECT_EQ(r.status, Status::kMissing);
    EXPECT_FALSE(r.passed());
    ASSERT_FALSE(r.checks.empty());
    EXPECT_NE(r.checks.front().find("not found"), std::string::npos);
  }
}

TEST(Verdict, SimpleClaimPassesOnPaperShapedRows) {
  TempDir dir;
  Json records = Json::array();
  records.push(sweep_record("T1", "churn-band/simple", "simple", "power",
                            power_rows(0.66, 2.0)));
  records.push(sweep_record("T1", "churn-band/folklore-compact",
                            "folklore-compact", "power",
                            power_rows(0.97, 1.2)));
  write_bench_file(dir.path, "simple", std::move(records));

  const BenchSet set = report::load_bench_dir(dir.path.string());
  const auto rs = report::evaluate_claims(set);
  const ClaimResult& t1 = result_for(rs, "T1");
  EXPECT_EQ(t1.status, Status::kPass) << [&] {
    std::string all;
    for (const auto& c : t1.checks) all += c + "\n";
    return all;
  }();
  EXPECT_NE(t1.headline.find("exponent"), std::string::npos);
}

TEST(Verdict, SimpleClaimFailsWhenExponentIsLinear) {
  TempDir dir;
  Json records = Json::array();
  records.push(sweep_record("T1", "churn-band/simple", "simple", "power",
                            power_rows(1.0, 2.0)));
  records.push(sweep_record("T1", "churn-band/folklore-compact",
                            "folklore-compact", "power",
                            power_rows(1.0, 1.2)));
  write_bench_file(dir.path, "simple", std::move(records));

  const auto rs =
      report::evaluate_claims(report::load_bench_dir(dir.path.string()));
  EXPECT_EQ(result_for(rs, "T1").status, Status::kFail);
}

TEST(Verdict, MissingSeriesInsidePresentFileFails) {
  TempDir dir;
  Json records = Json::array();
  records.push(sweep_record("T1", "churn-band/simple", "simple", "power",
                            power_rows(0.66)));
  // folklore series absent
  write_bench_file(dir.path, "simple", std::move(records));
  const auto rs =
      report::evaluate_claims(report::load_bench_dir(dir.path.string()));
  EXPECT_EQ(result_for(rs, "T1").status, Status::kFail);
}

TEST(Verdict, ThresholdBoundsPassAndFail) {
  const auto build = [](double empirical_43) {
    Json records = Json::array();
    for (const char* series : {"lemma-4.3", "lemma-4.4"}) {
      Json rec = Json::object();
      rec.set("kind", "bound_check")
          .set("claim", "T7")
          .set("series", series);
      Json rows = Json::array();
      Json row = Json::object();
      row.set("empirical",
              std::string(series) == "lemma-4.3" ? empirical_43 : 0.01)
          .set("bound", 0.05);
      rows.push(std::move(row));
      rec.set("rows", std::move(rows));
      records.push(std::move(rec));
    }
    return records;
  };

  {
    TempDir dir;
    write_bench_file(dir.path, "thresholds", build(0.02));
    const auto rs =
        report::evaluate_claims(report::load_bench_dir(dir.path.string()));
    EXPECT_EQ(result_for(rs, "T7").status, Status::kPass);
  }
  {
    TempDir dir;
    write_bench_file(dir.path, "thresholds", build(0.2));  // over the bound
    const auto rs =
        report::evaluate_claims(report::load_bench_dir(dir.path.string()));
    EXPECT_EQ(result_for(rs, "T7").status, Status::kFail);
  }
}

TEST(Verdict, RsumLogShapePassesAndPolynomialFails) {
  {
    TempDir dir;
    Json records = Json::array();
    records.push(sweep_record("T5", "random-item/rsum", "rsum", "both",
                              log_rows(0.8, 1.0)));
    write_bench_file(dir.path, "rsum", std::move(records));
    const auto rs =
        report::evaluate_claims(report::load_bench_dir(dir.path.string()));
    EXPECT_EQ(result_for(rs, "T5").status, Status::kPass);
  }
  {
    TempDir dir;
    Json records = Json::array();
    records.push(sweep_record("T5", "random-item/rsum", "rsum", "both",
                              power_rows(0.8)));  // polynomial growth
    write_bench_file(dir.path, "rsum", std::move(records));
    const auto rs =
        report::evaluate_claims(report::load_bench_dir(dir.path.string()));
    EXPECT_EQ(result_for(rs, "T5").status, Status::kFail);
  }
}

// -- markdown + markers ---------------------------------------------------

TEST(Markdown, ClaimBlockRendersVerdictTablesAndChecks) {
  TempDir dir;
  Json records = Json::array();
  records.push(sweep_record("T1", "churn-band/simple", "simple", "power",
                            power_rows(0.66)));
  records.push(sweep_record("T1", "churn-band/folklore-compact",
                            "folklore-compact", "power", power_rows(0.97)));
  write_bench_file(dir.path, "simple", std::move(records));
  const BenchSet set = report::load_bench_dir(dir.path.string());
  const auto rs = report::evaluate_claims(set);
  const std::string block =
      report::render_claim_block(set, result_for(rs, "T1"));
  EXPECT_NE(block.find("**Verdict: PASS**"), std::string::npos) << block;
  EXPECT_NE(block.find("churn-band/simple"), std::string::npos);
  EXPECT_NE(block.find("| eps |"), std::string::npos);
  EXPECT_NE(block.find("Fit: cost ~ (1/eps)^0.66"), std::string::npos);
  EXPECT_NE(block.find("Checks:"), std::string::npos);

  // Deterministic: same inputs, same bytes.
  EXPECT_EQ(block, report::render_claim_block(set, result_for(rs, "T1")));
  const std::string full = report::render_report(set, rs);
  EXPECT_EQ(full, report::render_report(set, rs));
  EXPECT_NE(full.find("## Claim verdicts"), std::string::npos);
  EXPECT_NE(full.find("test-fixture"), std::string::npos);
}

TEST(Markdown, MarkerRewriteReplacesOnlyTheBlock) {
  const std::string doc = "intro\n" + report::begin_marker("T0") +
                          "\nold stuff\n" + report::end_marker("T0") +
                          "\ntail\n";
  const auto rw =
      report::rewrite_marker_blocks(doc, {{"T0", "new block\n"}});
  EXPECT_EQ(rw.text, "intro\n" + report::begin_marker("T0") +
                         "\nnew block\n" + report::end_marker("T0") +
                         "\ntail\n");
  ASSERT_EQ(rw.rewritten.size(), 1u);
  EXPECT_TRUE(rw.unmatched.empty());

  // Idempotent: rewriting the rewritten text is a no-op.
  const auto again =
      report::rewrite_marker_blocks(rw.text, {{"T0", "new block\n"}});
  EXPECT_EQ(again.text, rw.text);
}

TEST(Markdown, MarkerRewriteReportsUnmatchedIds) {
  const auto rw = report::rewrite_marker_blocks("no markers here",
                                               {{"T3", "block\n"}});
  EXPECT_EQ(rw.text, "no markers here");
  ASSERT_EQ(rw.unmatched.size(), 1u);
  EXPECT_EQ(rw.unmatched.front(), "T3");
}

TEST(Markdown, DanglingBeginMarkerThrows) {
  const std::string doc = report::begin_marker("T2") + "\nno end";
  EXPECT_THROW((void)report::rewrite_marker_blocks(doc, {{"T2", "x\n"}}),
               ReportError);
}

// -- release-engine claim (T-REL) and throughput floor --------------------

/// "engine-throughput" series record: one row per (engine, rate) pair.
Json engine_throughput_record(
    const std::vector<std::pair<std::string, double>>& rates) {
  Json rows = Json::array();
  for (const auto& [engine, rate] : rates) {
    Json row = Json::object();
    row.set("engine", engine)
        .set("shards", std::uint64_t{1})
        .set("threads", std::uint64_t{1})
        .set("updates_per_second", rate);
    rows.push(std::move(row));
  }
  Json rec = Json::object();
  rec.set("kind", "engine_throughput")
      .set("claim", "T-REL")
      .set("series", "engine-throughput")
      .set("rows", std::move(rows));
  return rec;
}

/// "shard-scaling" series record: one row per (shard count, rate) pair.
Json shard_scaling_record(
    const std::vector<std::pair<std::uint64_t, double>>& rates) {
  Json rows = Json::array();
  for (const auto& [shards, rate] : rates) {
    Json row = Json::object();
    row.set("shards", shards).set("updates_per_second", rate);
    rows.push(std::move(row));
  }
  Json rec = Json::object();
  rec.set("kind", "shard_scaling")
      .set("claim", "T9")
      .set("series", "shard-scaling")
      .set("rows", std::move(rows));
  return rec;
}

TEST(Verdict, ReleaseClaimPassesAtFastModeBar) {
  TempDir dir;
  Json records = Json::array();
  // 6x beats the fast-mode bar of 5x (write_bench_file sets
  // fast_mode = true).
  records.push(
      engine_throughput_record({{"validated", 100000.0}, {"release", 600000.0}}));
  write_bench_file(dir.path, "shard", std::move(records));
  const auto rs =
      report::evaluate_claims(report::load_bench_dir(dir.path.string()));
  const ClaimResult& r = result_for(rs, "T-REL");
  EXPECT_EQ(r.status, Status::kPass);
  EXPECT_NE(r.headline.find("release over validated"), std::string::npos)
      << r.headline;
}

TEST(Verdict, ReleaseClaimFailsBelowFastModeBar) {
  TempDir dir;
  Json records = Json::array();
  records.push(
      engine_throughput_record({{"validated", 100000.0}, {"release", 300000.0}}));
  write_bench_file(dir.path, "shard", std::move(records));
  const auto rs =
      report::evaluate_claims(report::load_bench_dir(dir.path.string()));
  EXPECT_EQ(result_for(rs, "T-REL").status, Status::kFail);
}

TEST(Verdict, ReleaseClaimFailsWithoutBothEngines) {
  TempDir dir;
  Json records = Json::array();
  records.push(engine_throughput_record({{"validated", 100000.0}}));
  write_bench_file(dir.path, "shard", std::move(records));
  const auto rs =
      report::evaluate_claims(report::load_bench_dir(dir.path.string()));
  const ClaimResult& r = result_for(rs, "T-REL");
  EXPECT_EQ(r.status, Status::kFail);
  ASSERT_FALSE(r.checks.empty());
  EXPECT_NE(r.checks.back().find("need validated and release"),
            std::string::npos);
}

TEST(Floor, PassesWhenCurrentRatesHoldTheFloor) {
  TempDir base_dir, cur_dir;
  Json base = Json::array();
  base.push(
      engine_throughput_record({{"validated", 100000.0}, {"release", 1.0e6}}));
  base.push(shard_scaling_record({{1, 500000.0}, {4, 900000.0}}));
  const std::string base_path =
      write_bench_file(base_dir.path, "shard", std::move(base));

  Json cur = Json::array();
  // Slightly slower than baseline but above a 0.9 floor.
  cur.push(
      engine_throughput_record({{"validated", 98000.0}, {"release", 0.95e6}}));
  cur.push(shard_scaling_record({{1, 480000.0}, {4, 910000.0}}));
  write_bench_file(cur_dir.path, "shard", std::move(cur));

  const auto fr = report::check_throughput_floor(
      report::load_bench_dir(cur_dir.path.string()),
      report::load_bench_file(base_path), 0.9);
  EXPECT_TRUE(fr.ok);
  bool saw_release = false;
  for (const std::string& line : fr.lines) {
    EXPECT_EQ(line.find("FAIL"), std::string::npos) << line;
    if (line.find("engine release") != std::string::npos) {
      saw_release = true;
      EXPECT_EQ(line.rfind("ok: ", 0), 0u) << line;
    }
  }
  EXPECT_TRUE(saw_release);
}

TEST(Floor, FailsOnThroughputRegression) {
  TempDir base_dir, cur_dir;
  Json base = Json::array();
  base.push(
      engine_throughput_record({{"validated", 100000.0}, {"release", 1.0e6}}));
  const std::string base_path =
      write_bench_file(base_dir.path, "shard", std::move(base));

  Json cur = Json::array();
  // Release dropped to half the baseline: under any reasonable floor.
  cur.push(
      engine_throughput_record({{"validated", 100000.0}, {"release", 0.5e6}}));
  write_bench_file(cur_dir.path, "shard", std::move(cur));

  const auto fr = report::check_throughput_floor(
      report::load_bench_dir(cur_dir.path.string()),
      report::load_bench_file(base_path), 0.9);
  EXPECT_FALSE(fr.ok);
  bool saw_fail = false;
  for (const std::string& line : fr.lines) {
    if (line.rfind("FAIL: ", 0) == 0 &&
        line.find("engine release") != std::string::npos) {
      saw_fail = true;
    }
  }
  EXPECT_TRUE(saw_fail);
}

TEST(Floor, MissingCurrentSeriesFails) {
  TempDir base_dir, cur_dir;
  Json base = Json::array();
  base.push(
      engine_throughput_record({{"validated", 100000.0}, {"release", 1.0e6}}));
  base.push(shard_scaling_record({{1, 500000.0}}));
  const std::string base_path =
      write_bench_file(base_dir.path, "shard", std::move(base));

  Json cur = Json::array();  // current lacks shard-scaling
  cur.push(
      engine_throughput_record({{"validated", 100000.0}, {"release", 1.0e6}}));
  write_bench_file(cur_dir.path, "shard", std::move(cur));

  const auto fr = report::check_throughput_floor(
      report::load_bench_dir(cur_dir.path.string()),
      report::load_bench_file(base_path), 0.9);
  EXPECT_FALSE(fr.ok);
  bool saw = false;
  for (const std::string& line : fr.lines) {
    if (line.rfind("FAIL: ", 0) == 0 &&
        line.find("shard-scaling") != std::string::npos) {
      saw = true;
    }
  }
  EXPECT_TRUE(saw);
}

TEST(Floor, SeriesAbsentFromBaselineIsSkippedNotFailed) {
  TempDir base_dir, cur_dir;
  Json base = Json::array();  // baseline predates shard-scaling
  base.push(
      engine_throughput_record({{"validated", 100000.0}, {"release", 1.0e6}}));
  const std::string base_path =
      write_bench_file(base_dir.path, "shard", std::move(base));

  Json cur = Json::array();
  cur.push(
      engine_throughput_record({{"validated", 100000.0}, {"release", 1.0e6}}));
  cur.push(shard_scaling_record({{1, 500000.0}}));
  write_bench_file(cur_dir.path, "shard", std::move(cur));

  const auto fr = report::check_throughput_floor(
      report::load_bench_dir(cur_dir.path.string()),
      report::load_bench_file(base_path), 0.9);
  EXPECT_TRUE(fr.ok);
  bool saw_skip = false;
  for (const std::string& line : fr.lines) {
    if (line.rfind("note: ", 0) == 0 &&
        line.find("skipped") != std::string::npos) {
      saw_skip = true;
    }
  }
  EXPECT_TRUE(saw_skip);
}

TEST(Floor, MissingShardFileFails) {
  TempDir base_dir, cur_dir;  // cur_dir stays empty
  Json base = Json::array();
  base.push(
      engine_throughput_record({{"validated", 100000.0}, {"release", 1.0e6}}));
  const std::string base_path =
      write_bench_file(base_dir.path, "shard", std::move(base));

  const auto fr = report::check_throughput_floor(
      report::load_bench_dir(cur_dir.path.string()),
      report::load_bench_file(base_path), 0.9);
  EXPECT_FALSE(fr.ok);
  ASSERT_FALSE(fr.lines.empty());
  EXPECT_NE(fr.lines.front().find("BENCH_shard.json not found"),
            std::string::npos);
}

}  // namespace
}  // namespace memreal
