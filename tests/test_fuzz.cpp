// Tests for the differential fuzzing subsystem: profile-driven generation,
// well-formedness-preserving mutation, the lockstep differential oracle,
// the delta-debugging shrinker, corpus round-trips — and the
// mutation-testing sanity check: deliberately broken allocators planted
// via runtime registration must be caught within a bounded iteration
// budget and shrunk to a small reproducer.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "fuzz/corpus.h"
#include "fuzz/differential.h"
#include "fuzz/fuzzer.h"
#include "fuzz/generator.h"
#include "fuzz/mutator.h"
#include "fuzz/shrinker.h"
#include "mem/memory.h"
#include "release/slab_store.h"
#include "util/check.h"
#include "workload/sequence.h"
#include "workload/trace.h"

namespace memreal {
namespace {

constexpr Tick kCap = Tick{1} << 40;

SizeProfile band_profile() {
  return SizeProfile{1.0, 1.0, 2.0, 1.0, false};  // [eps, 2eps)
}

// -- Planted broken allocators -------------------------------------------

/// First-fit placement into the recorded gaps; non-resizable so a healthy
/// run never trips the span bound.  The planted bug: the `overlap_on`-th
/// insert is placed one tick inside the last item's extent.
class OverlapAllocator : public Allocator {
 public:
  OverlapAllocator(LayoutStore& mem, std::size_t overlap_on)
      : mem_(&mem), overlap_on_(overlap_on) {}

  void insert(ItemId id, Tick size) override {
    ++inserts_;
    Tick offset = first_fit(size);
    if (inserts_ == overlap_on_ && offset > 0) offset -= 1;
    mem_->place(id, offset, size);
  }
  void erase(ItemId id) override { mem_->remove(id); }
  [[nodiscard]] std::string_view name() const override {
    return "test-overlap";
  }
  [[nodiscard]] bool resizable() const override { return false; }

 private:
  Tick first_fit(Tick size) const {
    for (const auto& [offset, len] : mem_->gaps()) {
      if (len >= size) return offset;
    }
    return mem_->span_end();
  }

  LayoutStore* mem_;
  std::size_t overlap_on_;
  std::size_t inserts_ = 0;
};

/// First-fit, but every `skip_on`-th insert is silently dropped — the item
/// is never placed, so the accounted live mass diverges from the sequence.
class LeakyAllocator : public Allocator {
 public:
  LeakyAllocator(LayoutStore& mem, std::size_t skip_on)
      : mem_(&mem), skip_on_(skip_on) {}

  void insert(ItemId id, Tick size) override {
    ++inserts_;
    if (inserts_ % skip_on_ == 0) return;  // "forget" the placement
    for (const auto& [offset, len] : mem_->gaps()) {
      if (len >= size) {
        mem_->place(id, offset, size);
        return;
      }
    }
    mem_->place(id, mem_->span_end(), size);
  }
  void erase(ItemId id) override {
    if (mem_->contains(id)) mem_->remove(id);
  }
  [[nodiscard]] std::string_view name() const override { return "test-leaky"; }
  [[nodiscard]] bool resizable() const override { return false; }

 private:
  LayoutStore* mem_;
  std::size_t skip_on_;
  std::size_t inserts_ = 0;
};

/// Keeps a compact layout but reverses the item order on every update, so
/// nearly every live item moves every update — a cost blowout, not an
/// invariant violation.
class ThrashingAllocator : public Allocator {
 public:
  explicit ThrashingAllocator(LayoutStore& mem) : mem_(&mem) {}

  void insert(ItemId id, Tick size) override {
    mem_->place(id, mem_->span_end(), size);
    reverse_compact();
  }
  void erase(ItemId id) override {
    mem_->remove(id);
    reverse_compact();
  }
  [[nodiscard]] std::string_view name() const override {
    return "test-thrash";
  }

 private:
  void reverse_compact() {
    const auto snap = mem_->snapshot();
    Tick offset = 0;
    for (auto it = snap.rbegin(); it != snap.rend(); ++it) {
      mem_->move_to(it->id, offset);
      offset += it->extent;
    }
  }

  LayoutStore* mem_;
};

/// Registers a test allocator for the lifetime of one test.
class ScopedRegistration {
 public:
  ScopedRegistration(AllocatorInfo info, AllocatorFactory factory)
      : name_(info.name) {
    register_allocator(std::move(info), std::move(factory));
  }
  ~ScopedRegistration() { unregister_allocator(name_); }

  ScopedRegistration(const ScopedRegistration&) = delete;
  ScopedRegistration& operator=(const ScopedRegistration&) = delete;

 private:
  std::string name_;
};

AllocatorInfo test_info(const std::string& name, CostBudget budget) {
  AllocatorInfo info;
  info.name = name;
  info.sizes = band_profile();
  info.budget = budget;
  info.default_eps = 1.0 / 64;
  return info;
}

FuzzConfig planted_bug_config(const std::string& allocator) {
  FuzzConfig cfg;
  cfg.seed = 11;
  cfg.iterations = 10;
  cfg.updates_per_sequence = 60;
  cfg.allocators = {allocator};
  cfg.capacity = kCap;
  return cfg;
}

// -- Seeds ----------------------------------------------------------------

TEST(FuzzSeeds, IterationSeedIsPureAndSpreads) {
  EXPECT_EQ(iteration_seed(1, 0), iteration_seed(1, 0));
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 100; ++i) seeds.push_back(iteration_seed(1, i));
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
  EXPECT_NE(iteration_seed(1, 5), iteration_seed(2, 5));
}

TEST(FuzzSeeds, TargetSeedDependsOnName) {
  EXPECT_EQ(target_seed(7, "geo"), target_seed(7, "geo"));
  EXPECT_NE(target_seed(7, "geo"), target_seed(7, "rsum"));
  EXPECT_NE(target_seed(7, "geo"), target_seed(8, "geo"));
}

// -- Target groups --------------------------------------------------------

TEST(FuzzGroups, UniversalBaselinesJoinEveryGroup) {
  const auto groups = make_target_groups(allocator_infos());
  ASSERT_GE(groups.size(), 4u);
  for (const TargetGroup& g : groups) {
    ASSERT_FALSE(g.members.empty());
    const auto has = [&](const std::string& name) {
      return std::any_of(g.members.begin(), g.members.end(),
                         [&](const AllocatorInfo& m) {
                           return m.name == name;
                         });
    };
    EXPECT_TRUE(has("folklore-compact"));
    EXPECT_TRUE(has("folklore-windowed"));
  }
}

TEST(FuzzGroups, OnlyUniversalTargetsFormOneGroup) {
  const auto groups = make_target_groups({allocator_info("folklore-compact"),
                                          allocator_info("folklore-windowed")});
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].members.size(), 2u);
}

// -- Generator / mutator --------------------------------------------------

TEST(FuzzGenerator, ProducesWellFormedSequencesInBand) {
  GeneratorConfig cfg;
  cfg.capacity = kCap;
  cfg.eps = 1.0 / 64;
  cfg.sizes = band_profile();
  cfg.updates = 300;
  Rng rng(5);
  const Sequence seq = generate_sequence(cfg, rng, "gen");
  seq.check_well_formed();
  EXPECT_EQ(seq.size(), 300u);
  const Tick lo = cfg.sizes.min_size(cfg.eps, kCap);
  const Tick hi = cfg.sizes.max_size(cfg.eps, kCap);
  for (const Update& u : seq.updates) {
    EXPECT_GE(u.size, lo);
    EXPECT_LT(u.size, hi);
  }
}

TEST(FuzzGenerator, DeterministicBySeed) {
  GeneratorConfig cfg;
  cfg.capacity = kCap;
  cfg.sizes = band_profile();
  cfg.updates = 100;
  Rng a(9), b(9), c(10);
  EXPECT_EQ(generate_sequence(cfg, a, "g").updates,
            generate_sequence(cfg, b, "g").updates);
  EXPECT_NE(generate_sequence(cfg, a, "g").updates,
            generate_sequence(cfg, c, "g").updates);
}

TEST(FuzzGenerator, PaletteModeUsesFewDistinctSizes) {
  GeneratorConfig cfg;
  cfg.capacity = kCap;
  cfg.sizes = band_profile();
  cfg.sizes.fixed_palette = true;
  cfg.palette = 4;
  cfg.updates = 200;
  Rng rng(3);
  const Sequence seq = generate_sequence(cfg, rng, "palette");
  seq.check_well_formed();
  std::vector<Tick> sizes;
  for (const Update& u : seq.updates) sizes.push_back(u.size);
  std::sort(sizes.begin(), sizes.end());
  sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());
  EXPECT_LE(sizes.size(), 4u);
}

TEST(FuzzMutator, MutantsStayWellFormed) {
  GeneratorConfig gen;
  gen.capacity = kCap;
  gen.sizes = band_profile();
  gen.updates = 150;
  MutatorConfig mut;
  mut.sizes = gen.sizes;
  Rng rng(21);
  Sequence seq = generate_sequence(gen, rng, "mut");
  for (int i = 0; i < 50; ++i) {
    seq = mutate_sequence(seq, mut, rng);
    ASSERT_FALSE(seq.updates.empty());
    seq.check_well_formed();
  }
}

// -- Workload repair hooks ------------------------------------------------

TEST(SequenceRepair, SubsequenceDropsOrphanDeletes) {
  SequenceBuilder b("sub", 1000, 0.1);
  const ItemId a = b.insert(100);
  const ItemId c = b.insert(200);
  b.erase_id(a);
  b.erase_id(c);
  const Sequence seq = b.take();
  // Drop a's insert: its delete must be dropped with it.
  const Sequence sub = subsequence(seq, {false, true, true, true});
  sub.check_well_formed();
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.updates[0].id, c);
  EXPECT_EQ(sub.updates[1].id, c);
}

TEST(SequenceRepair, RepairDropsOverBudgetInserts) {
  SequenceBuilder b("rep", 1000, 0.1);
  b.insert(500);
  const Sequence seq = b.take();
  std::vector<Update> edited = seq.updates;
  edited.push_back(Update::insert(99, 500));  // 1000 > budget of 900
  const Sequence repaired = repair_sequence(seq, edited);
  repaired.check_well_formed();
  EXPECT_EQ(repaired.size(), 1u);
}

TEST(SequenceRepair, WithSizesRewritesDeletes) {
  SequenceBuilder b("siz", 1000, 0.1);
  const ItemId a = b.insert(100);
  b.erase_id(a);
  const Sequence seq = b.take();
  const Sequence resized = with_sizes(seq, {{a, 7}});
  resized.check_well_formed();
  ASSERT_EQ(resized.size(), 2u);
  EXPECT_EQ(resized.updates[0].size, 7u);
  EXPECT_EQ(resized.updates[1].size, 7u);
}

// -- Differential oracle --------------------------------------------------

DifferentialConfig healthy_group() {
  DifferentialConfig cfg;
  for (const char* name : {"simple", "folklore-compact"}) {
    FuzzTarget t;
    t.allocator = name;
    t.params.eps = 1.0 / 64;
    t.params.seed = 42;
    t.budget = allocator_info(name).budget;
    cfg.targets.push_back(std::move(t));
  }
  return cfg;
}

TEST(Differential, HealthyGroupPasses) {
  GeneratorConfig gen;
  gen.capacity = kCap;
  gen.sizes = band_profile();
  gen.updates = 200;
  Rng rng(8);
  const Sequence seq = generate_sequence(gen, rng, "healthy");
  EXPECT_FALSE(run_differential(seq, healthy_group()).has_value());
}

TEST(Differential, LeakyAllocatorDiverges) {
  ScopedRegistration reg(
      test_info("test-leaky", {4.0, 1.0}),
      [](LayoutStore& mem, const AllocatorParams&) {
        return std::make_unique<LeakyAllocator>(mem, 3);
      });
  GeneratorConfig gen;
  gen.capacity = kCap;
  gen.sizes = band_profile();
  gen.updates = 60;
  Rng rng(8);
  const Sequence seq = generate_sequence(gen, rng, "leaky");
  DifferentialConfig cfg;
  FuzzTarget t;
  t.allocator = "test-leaky";
  t.params.eps = 1.0 / 64;
  t.budget = {4.0, 1.0};
  cfg.targets.push_back(t);
  const auto report = run_differential(seq, cfg);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->kind, FailureKind::kDivergence);
  EXPECT_EQ(report->allocator, "test-leaky");
}

TEST(Differential, ThrashingAllocatorBlowsTheBudget) {
  ScopedRegistration reg(
      test_info("test-thrash", {0.5, 0.0}),  // bound = 0.5 * log2(64) = 3
      [](LayoutStore& mem, const AllocatorParams&) {
        return std::make_unique<ThrashingAllocator>(mem);
      });
  GeneratorConfig gen;
  gen.capacity = kCap;
  gen.sizes = band_profile();
  gen.updates = 200;
  Rng rng(4);
  const Sequence seq = generate_sequence(gen, rng, "thrash");
  DifferentialConfig cfg;
  FuzzTarget t;
  t.allocator = "test-thrash";
  t.params.eps = 1.0 / 64;
  t.budget = {0.5, 0.0};
  cfg.targets.push_back(t);
  const auto report = run_differential(seq, cfg);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->kind, FailureKind::kCostBudget);
  EXPECT_GT(report->observed_cost, report->cost_bound);
}

// -- Shrinker -------------------------------------------------------------

TEST(Shrinker, ReducesToMinimalCore) {
  SequenceBuilder b("shrink", kCap, 1.0 / 16);
  const Tick size = kCap / 100;
  for (int i = 0; i < 8; ++i) b.insert(size);
  for (int i = 0; i < 4; ++i) b.erase_at(0);
  const Sequence seq = b.take();
  // The "bug" fires once the sequence carries at least 5 inserts — the
  // same shape as a planted every-Nth-insert fault.
  const FailurePredicate fails = [](const Sequence& s) {
    std::size_t inserts = 0;
    for (const Update& u : s.updates) inserts += u.is_insert();
    return inserts >= 5;
  };
  const ShrinkResult result = shrink_sequence(seq, fails);
  EXPECT_TRUE(result.minimal);
  EXPECT_EQ(result.seq.size(), 5u);
  for (const Update& u : result.seq.updates) {
    EXPECT_TRUE(u.is_insert());
    EXPECT_EQ(u.size, 1u);  // sizes shrink to the floor too
  }
}

TEST(Shrinker, SizeReductionConvergesToThreshold) {
  SequenceBuilder b("thresh", 1000, 0.1);
  b.insert(100);
  const Sequence seq = b.take();
  const FailurePredicate fails = [](const Sequence& s) {
    return !s.updates.empty() && s.updates[0].size >= 50;
  };
  const ShrinkResult result = shrink_sequence(seq, fails);
  EXPECT_TRUE(result.minimal);
  ASSERT_EQ(result.seq.size(), 1u);
  EXPECT_EQ(result.seq.updates[0].size, 50u);
}

TEST(Shrinker, RespectsMinSizeFloor) {
  SequenceBuilder b("floor", 1000, 0.1);
  b.insert(100);
  b.insert(200);
  const Sequence seq = b.take();
  const FailurePredicate fails = [](const Sequence& s) {
    return !s.updates.empty();
  };
  ShrinkConfig cfg;
  cfg.min_size = 10;
  const ShrinkResult result = shrink_sequence(seq, fails, cfg);
  ASSERT_EQ(result.seq.size(), 1u);
  EXPECT_EQ(result.seq.updates[0].size, 10u);
}

// -- Corpus ---------------------------------------------------------------

TEST(FuzzCorpus, RoundTripsMetadataAndTrace) {
  SequenceBuilder b("corpus-roundtrip", 1000, 0.1);
  b.insert(100);
  b.erase_at(0);
  CorpusEntry entry;
  entry.seq = b.take();
  entry.allocator = "simple";
  entry.kind = "invariant-violation";
  entry.seed = 77;
  entry.iteration = 12;
  const CorpusEntry loaded = corpus_from_string(corpus_to_string(entry));
  EXPECT_EQ(loaded.allocator, "simple");
  EXPECT_EQ(loaded.kind, "invariant-violation");
  EXPECT_EQ(loaded.seed, 77u);
  EXPECT_EQ(loaded.iteration, 12u);
  EXPECT_EQ(loaded.seq.updates, entry.seq.updates);
  EXPECT_EQ(corpus_file_name(entry),
            "simple-invariant-violation-s77-i12.trace");
}

TEST(FuzzCorpus, RejectsMalformedMetadataValues) {
  const std::string trace =
      "H 1000 0.1 t\n"
      "I 1 10\n";
  EXPECT_THROW((void)corpus_from_string("#! seed=-1\n" + trace),
               InvariantViolation);
  EXPECT_THROW((void)corpus_from_string("#! iteration=12junk\n" + trace),
               InvariantViolation);
  EXPECT_THROW((void)corpus_from_string("#! seed=\n" + trace),
               InvariantViolation);
  // Out-of-range values throw too (2^64 + ...).
  EXPECT_THROW(
      (void)corpus_from_string("#! seed=99999999999999999999\n" + trace),
      InvariantViolation);
}

TEST(FuzzCorpus, SaveLoadAndList) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "memreal-corpus-test")
          .string();
  std::filesystem::remove_all(dir);
  SequenceBuilder b("corpus-disk", 1000, 0.1);
  b.insert(100);
  CorpusEntry entry;
  entry.seq = b.take();
  entry.allocator = "geo";
  entry.kind = "divergence";
  entry.seed = 1;
  entry.iteration = 2;
  const std::string path = save_corpus_entry(entry, dir);
  const auto files = list_corpus(dir);
  ASSERT_EQ(files.size(), 1u);
  EXPECT_EQ(files[0], path);
  const CorpusEntry loaded = load_corpus_entry(path);
  EXPECT_EQ(loaded.allocator, "geo");
  EXPECT_EQ(loaded.seq.updates, entry.seq.updates);
  EXPECT_TRUE(list_corpus(dir + "-does-not-exist").empty());
  std::filesystem::remove_all(dir);
}

// -- The planted-bug acceptance test --------------------------------------

TEST(FuzzPlantedBug, OverlapIsCaughtAndShrunkSmall) {
  ScopedRegistration reg(
      test_info("test-overlap", {4.0, 1.0}),
      [](LayoutStore& mem, const AllocatorParams&) {
        return std::make_unique<OverlapAllocator>(mem, 5);
      });
  const FuzzSummary summary = run_fuzz(planted_bug_config("test-overlap"));
  ASSERT_FALSE(summary.ok()) << "planted overlap bug not found within "
                             << summary.iterations << " iterations";
  const FuzzFailure& f = summary.failures.front();
  EXPECT_EQ(f.report.allocator, "test-overlap");
  EXPECT_EQ(f.report.kind, FailureKind::kInvariantViolation);
  EXPECT_LE(f.reproducer.size(), 20u)
      << "shrunk reproducer still has " << f.reproducer.size() << " updates";
  f.reproducer.check_well_formed();
  // The reproducer replays to the same failure.
  DifferentialConfig cfg;
  FuzzTarget t;
  t.allocator = "test-overlap";
  t.params.eps = 1.0 / 64;
  t.budget = {4.0, 1.0};
  cfg.targets.push_back(t);
  const auto replay = run_differential(f.reproducer, cfg);
  ASSERT_TRUE(replay.has_value());
  EXPECT_TRUE(replay->same_bug(f.report));
}

TEST(FuzzPlantedBug, FailureTracesAreIdenticalAcrossThreadCounts) {
  ScopedRegistration reg(
      test_info("test-overlap", {4.0, 1.0}),
      [](LayoutStore& mem, const AllocatorParams&) {
        return std::make_unique<OverlapAllocator>(mem, 5);
      });
  auto run = [](std::size_t threads) {
    FuzzConfig cfg = planted_bug_config("test-overlap");
    cfg.threads = threads;
    std::vector<std::string> traces;
    for (const FuzzFailure& f : run_fuzz(cfg).failures) {
      traces.push_back(trace_to_string(f.reproducer));
    }
    return traces;
  };
  const auto serial = run(1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, run(4));
  EXPECT_EQ(serial, run(0));  // all cores
}

TEST(FuzzPlantedBug, CorpusReproducerReplays) {
  ScopedRegistration reg(
      test_info("test-overlap", {4.0, 1.0}),
      [](LayoutStore& mem, const AllocatorParams&) {
        return std::make_unique<OverlapAllocator>(mem, 5);
      });
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "memreal-fuzz-replay")
          .string();
  std::filesystem::remove_all(dir);
  FuzzConfig cfg = planted_bug_config("test-overlap");
  cfg.corpus_dir = dir;
  const FuzzSummary summary = run_fuzz(cfg);
  ASSERT_FALSE(summary.ok());
  ASSERT_FALSE(summary.failures.front().corpus_path.empty());

  const FuzzSummary replay = replay_corpus(cfg, dir);
  EXPECT_EQ(replay.iterations, summary.failures.size());
  ASSERT_EQ(replay.failures.size(), summary.failures.size());
  EXPECT_EQ(replay.failures.front().report.allocator, "test-overlap");
  std::filesystem::remove_all(dir);
}

// -- Registry registration ------------------------------------------------

TEST(FuzzRegistry, RejectsDuplicateAndUnknownRegistrations) {
  ScopedRegistration reg(test_info("test-dup", {4.0, 1.0}),
                         [](LayoutStore& mem, const AllocatorParams&) {
                           return std::make_unique<ThrashingAllocator>(mem);
                         });
  EXPECT_THROW(register_allocator(test_info("test-dup", {4.0, 1.0}),
                                  [](LayoutStore& mem, const AllocatorParams&) {
                                    return std::make_unique<ThrashingAllocator>(
                                        mem);
                                  }),
               InvariantViolation);
  EXPECT_THROW(register_allocator(test_info("simple", {4.0, 1.0}),
                                  [](LayoutStore& mem, const AllocatorParams&) {
                                    return std::make_unique<ThrashingAllocator>(
                                        mem);
                                  }),
               InvariantViolation);
  EXPECT_THROW(unregister_allocator("simple"), InvariantViolation);
  EXPECT_THROW(unregister_allocator("no-such-allocator"), InvariantViolation);
  EXPECT_EQ(allocator_info("test-dup").name, "test-dup");
}

TEST(FuzzCampaign, CleanOnHealthyRegistrySmoke) {
  FuzzConfig cfg;
  cfg.seed = 2;
  cfg.iterations = 12;  // two passes over the six regime groups
  cfg.updates_per_sequence = 80;
  cfg.mutants_per_sequence = 1;
  const FuzzSummary summary = run_fuzz(cfg);
  EXPECT_TRUE(summary.ok()) << summary.failures.front().report.message;
  EXPECT_EQ(summary.iterations, 12u);
  EXPECT_GE(summary.sequences, 24u);
}

// -- Release-engine oracle mode ------------------------------------------

TEST(ReleaseOracle, HealthyGroupPassesInLockstep) {
  GeneratorConfig gen;
  gen.capacity = kCap;
  gen.sizes = band_profile();
  gen.updates = 200;
  Rng rng(11);
  const Sequence seq = generate_sequence(gen, rng, "release-healthy");
  DifferentialConfig cfg = healthy_group();
  cfg.lockstep_release = true;
  EXPECT_FALSE(run_differential(seq, cfg).has_value());
}

TEST(ReleaseOracle, PlantedSlabCorruptionIsCaughtAndShrunkSmall) {
  GeneratorConfig gen;
  gen.capacity = kCap;
  gen.sizes = band_profile();
  gen.updates = 200;
  Rng rng(13);
  const Sequence seq = generate_sequence(gen, rng, "release-tamper");

  DifferentialConfig cfg;
  FuzzTarget t;
  t.allocator = "simple";
  t.params.eps = 1.0 / 64;
  t.params.seed = 42;
  t.budget = allocator_info("simple").budget;
  cfg.targets.push_back(std::move(t));
  cfg.lockstep_release = true;
  cfg.audit_every = 8;  // tight layout-compare cadence for a small repro
  // Stateless tamper (shrink candidates replay it identically): shift the
  // lowest item's offset whenever at least three items are live — the SoA
  // record drifts from by_offset_/ends_ exactly like a slab indexing bug.
  cfg.release_tamper = [](SlabStore& store, std::size_t) {
    if (store.item_count() >= 3) store.debug_corrupt_first_offset(1);
  };

  const auto report = run_differential(seq, cfg);
  ASSERT_TRUE(report.has_value()) << "planted slab corruption not caught";
  EXPECT_EQ(report->kind, FailureKind::kEngineDivergence);
  EXPECT_EQ(report->allocator, "simple");
  EXPECT_STREQ(to_string(report->kind), "engine-divergence");

  FailurePredicate same_bug = [&](const Sequence& cand) {
    const auto r = run_differential(cand, cfg);
    return r.has_value() && r->same_bug(*report);
  };
  ShrinkConfig sc;
  sc.min_size = band_profile().min_size(1.0 / 64, kCap);
  const ShrinkResult shrunk = shrink_sequence(seq, same_bug, sc);
  shrunk.seq.check_well_formed();
  EXPECT_LE(shrunk.seq.size(), 20u)
      << "shrunk reproducer still has " << shrunk.seq.size() << " updates";
  EXPECT_TRUE(same_bug(shrunk.seq));
}

TEST(ReleaseOracle, CampaignCleanOnReleaseEngine) {
  FuzzConfig cfg;
  cfg.seed = 3;
  cfg.engine = "release";
  cfg.iterations = 6;  // one pass over the regime groups
  cfg.updates_per_sequence = 80;
  cfg.mutants_per_sequence = 1;
  const FuzzSummary summary = run_fuzz(cfg);
  EXPECT_TRUE(summary.ok()) << summary.failures.front().report.message;
}

TEST(ReleaseOracle, RejectsUnknownEngineName) {
  FuzzConfig cfg;
  cfg.engine = "debug";
  cfg.iterations = 1;
  EXPECT_THROW((void)run_fuzz(cfg), InvariantViolation);
}

}  // namespace
}  // namespace memreal
